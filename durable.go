package sgb

import (
	"errors"
	"fmt"
	"sort"

	"github.com/sgb-db/sgb/internal/incr"
	"github.com/sgb-db/sgb/internal/snapshot"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/wal"
)

// The durability subsystem. A DB opened with OpenDir logs every table
// mutation to a write-ahead log and periodically checkpoints the whole
// engine state — tables plus the incremental-grouping evaluators — so
// a crashed process reopens to exactly the prefix of statements whose
// log frames reached disk. The write path is log-after-apply: a
// statement mutates the in-memory tables first and appends its record
// before Exec acknowledges, so every logged frame describes a mutation
// that replay can re-apply verbatim (INSERT rows are logged post
// type-coercion for the same reason). The DB's writer lock serializes
// every mutation statement, so log order is apply order even under
// concurrent sessions.

const (
	// defaultCheckpointEvery is how many logged records trigger an
	// automatic checkpoint (SET checkpoint_every overrides; 0 disables).
	defaultCheckpointEvery = 1024
	// checkpointsRetained is how many snapshots Checkpoint keeps: the
	// newest plus one fallback, so a checkpoint torn by a crash never
	// strands recovery (the WAL is pruned only up to the older one).
	checkpointsRetained = 2
)

// durable holds the persistent-mode state of a DB opened with OpenDir.
// All fields are guarded by the DB's writer lock.
type durable struct {
	dir  string
	log  *wal.Log
	info RecoveryInfo
	// checkpointEvery triggers an automatic checkpoint after that many
	// logged records; 0 disables automatic checkpoints.
	checkpointEvery int
	// sinceCheckpoint counts records logged since the last checkpoint.
	sinceCheckpoint int
}

// RecoveryInfo reports what OpenDir reconstructed: which snapshot
// seeded the state, how much WAL tail was replayed on top, and how
// many incremental-grouping evaluators resumed without a rebuild.
type RecoveryInfo struct {
	// SnapshotPath is the snapshot file recovery started from; empty
	// when the directory held no loadable snapshot.
	SnapshotPath string
	// SnapshotSeq is the WAL sequence number the snapshot covered.
	SnapshotSeq uint64
	// SnapshotsSkipped counts newer snapshots that failed validation
	// (torn or corrupt) and were passed over.
	SnapshotsSkipped int
	// RecordsReplayed counts WAL records applied past the snapshot.
	RecordsReplayed int
	// RowsReplayed counts rows re-inserted by the replayed records.
	RowsReplayed int
	// EvaluatorsRestored counts incremental-grouping evaluators revived
	// from the snapshot (SET incremental queries resume where they
	// stood instead of regrouping from scratch).
	EvaluatorsRestored int
}

// OpenDir opens (creating if needed) a persistent database rooted at
// dir. Recovery runs first: the newest valid checkpoint seeds the
// tables and the incremental-grouping cache, then the WAL tail past
// the checkpoint replays through the ordinary mutation paths. A torn
// WAL tail or a corrupt newest checkpoint is repaired by falling back,
// never by guessing — corrupt bytes are detected and discarded, not
// applied. Close the returned DB to release the log.
func OpenDir(dir string) (*DB, error) {
	db := Open()
	var info RecoveryInfo

	snap, snapPath, skipped, err := snapshot.Latest(dir)
	if err != nil {
		return nil, err
	}
	info.SnapshotsSkipped = skipped
	var fromSeq uint64
	if snap != nil {
		info.SnapshotPath = snapPath
		info.SnapshotSeq = snap.Seq
		fromSeq = snap.Seq
		for _, t := range snap.Tables {
			if err := db.cat.Create(t); err != nil {
				return nil, fmt.Errorf("sgb: recovering %s: %w", snapPath, err)
			}
		}
		// Revive the checkpointed evaluators before the tail replays:
		// the replay's INSERT and DELETE maintenance then advances them
		// exactly as the live statements did. An entry that fails to
		// restore is skipped, not fatal — it rebuilds lazily at its next
		// query.
		for _, e := range snap.Incr {
			t, err := db.cat.Lookup(e.Table)
			if err != nil || e.Consumed > t.Len() {
				continue
			}
			inc, err := incr.Restore(e.State)
			if err != nil {
				continue
			}
			db.cache.add(incrKey{table: e.Table, fingerprint: e.Fingerprint},
				&incrEntry{table: t, inc: inc, consumed: e.Consumed, gen: t.Generation()})
			info.EvaluatorsRestored++
		}
	}

	if _, err := wal.Replay(dir, fromSeq, func(_ uint64, rec wal.Record) error {
		if err := db.applyRecord(rec, &info); err != nil {
			return fmt.Errorf("sgb: replaying WAL: %w", err)
		}
		info.RecordsReplayed++
		return nil
	}); err != nil {
		return nil, err
	}

	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	db.dur = &durable{dir: dir, log: log, info: info, checkpointEvery: defaultCheckpointEvery}
	return db, nil
}

// Recovery reports what OpenDir reconstructed. The zero value means
// the DB is in-memory (Open) or recovered from an empty directory.
func (db *DB) Recovery() RecoveryInfo {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.dur == nil {
		return RecoveryInfo{}
	}
	return db.dur.info
}

// Close syncs and releases the write-ahead log of a persistent DB.
// Close is idempotent and a no-op for an in-memory database, and it is
// safe to race with in-flight queries: queries never touch the log, so
// they finish normally on their snapshots while — and after — the log
// closes. A mutation statement serialized after Close applies in
// memory only (the database degrades to in-memory mode rather than
// failing).
func (db *DB) Close() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if db.dur == nil {
		return nil
	}
	err := db.dur.log.Close()
	db.dur = nil
	return err
}

// applyRecord re-applies one WAL record through the same maintenance
// paths live statements use, so replayed mutations advance the
// restored incremental-grouping evaluators exactly as the originals
// did. A record that fails to apply is a writer bug or targeted
// corruption that slipped the frame checksum; recovery stops rather
// than guess.
func (db *DB) applyRecord(rec wal.Record, info *RecoveryInfo) error {
	switch r := rec.(type) {
	case wal.CreateTable:
		schema := make(storage.Schema, len(r.Cols))
		for i, c := range r.Cols {
			schema[i] = storage.Column{Name: c.Name, Type: c.Kind}
		}
		return db.cat.Create(storage.NewTable(r.Name, schema))

	case wal.DropTable:
		db.dropIncrEntries(r.Name)
		return db.cat.Drop(r.Name)

	case wal.Insert:
		t, err := db.cat.Lookup(r.Table)
		if err != nil {
			return err
		}
		preGen := t.Generation()
		n, err := t.InsertBatch(r.Rows)
		db.refreshAppendGen(t, preGen, t.Generation())
		info.RowsReplayed += n
		return err

	case wal.Delete:
		t, err := db.cat.Lookup(r.Table)
		if err != nil {
			return err
		}
		preGen := t.Generation()
		if err := t.DeleteRows(r.Idx); err != nil {
			return err
		}
		db.noteDelete(t, preGen, t.Generation(), r.Idx)
		return nil

	default:
		return fmt.Errorf("unknown record %T", rec)
	}
}

// logRecordLocked appends one mutation record to the WAL (a no-op for
// an in-memory DB) and runs the automatic checkpoint trigger. The
// caller holds the writer lock and has already applied the mutation; a
// failed append therefore means the statement took effect in memory
// but is not durable — the error says so, and the poisoned log refuses
// further appends until the database is reopened (which recovers to
// the last durable prefix).
func (db *DB) logRecordLocked(rec wal.Record) error {
	if db.dur == nil {
		return nil
	}
	if _, err := db.dur.log.Append(rec); err != nil {
		return fmt.Errorf("sgb: statement applied in memory but not logged: %w", err)
	}
	db.dur.sinceCheckpoint++
	if db.dur.checkpointEvery > 0 && db.dur.sinceCheckpoint >= db.dur.checkpointEvery {
		return db.checkpointLocked()
	}
	return nil
}

// Checkpoint writes a snapshot of the whole engine state — every table
// plus the in-sync incremental-grouping evaluators — stamped with the
// current WAL position, then prunes snapshots beyond the retained two
// and the WAL segments older than the oldest retained one. SQL spells
// it CHECKPOINT; it also fires automatically every checkpoint_every
// logged records.
func (db *DB) Checkpoint() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked is Checkpoint under an already-held writer lock
// (the automatic trigger fires mid-statement). The lock excludes every
// concurrent mutation, so the tables and the WAL position the snapshot
// captures are one coherent state; queries running meanwhile neither
// block nor are blocked.
func (db *DB) checkpointLocked() error {
	if db.dur == nil {
		return errors.New("sgb: CHECKPOINT requires a persistent database (OpenDir)")
	}
	// The snapshot claims to cover everything up to LastSeq; make those
	// frames durable before the claim is.
	if err := db.dur.log.Sync(); err != nil {
		return err
	}
	s := &snapshot.Snapshot{Seq: db.dur.log.LastSeq()}
	for _, name := range db.cat.Names() {
		t, err := db.cat.Lookup(name)
		if err != nil {
			return err
		}
		s.Tables = append(s.Tables, t)
	}
	items := db.cache.items()
	sort.Slice(items, func(i, j int) bool {
		if items[i].key.table != items[j].key.table {
			return items[i].key.table < items[j].key.table
		}
		return items[i].key.fingerprint < items[j].key.fingerprint
	})
	for _, it := range items {
		e := it.e
		t, err := db.cat.Lookup(it.key.table)
		if err != nil {
			continue
		}
		// Read the generation before taking e.mu: Generation takes the
		// table lock (tier 20), which must never nest inside an entry
		// lock (tier 40). The value is stable here — the checkpoint runs
		// under db.wmu, so no writer can advance it.
		gen := t.Generation()
		e.mu.Lock()
		if e.inc == nil || e.table != t || e.gen != gen {
			// Lattice entries have no export format, and stale entries
			// rebuild at their next query anyway — a checkpointed copy
			// would only replay into garbage.
			e.mu.Unlock()
			continue
		}
		st, err := e.inc.ExportState()
		consumed := e.consumed
		e.mu.Unlock()
		if err != nil {
			continue
		}
		s.Incr = append(s.Incr, snapshot.IncrEntry{
			Table: it.key.table, Fingerprint: it.key.fingerprint, Consumed: consumed, State: st,
		})
	}
	if _, err := snapshot.Write(db.dur.dir, s); err != nil {
		return err
	}
	floor, err := snapshot.Prune(db.dur.dir, checkpointsRetained)
	if err != nil {
		return err
	}
	if floor > 0 {
		if err := db.dur.log.Prune(floor); err != nil {
			return err
		}
	}
	db.dur.sinceCheckpoint = 0
	return nil
}
