// One benchmark family per evaluation artifact of the paper (Tables 1
// and 2, Figures 9–12). Each family's sub-benchmarks are the series
// the corresponding figure plots (algorithm × parameter), so
//
//	go test -bench . -benchmem
//
// reproduces the relative shapes: who wins, by what factor, and how
// runtimes move with ε and data size. cmd/sgbbench prints the same
// experiments as full sweeps in tabular form.
package sgb_test

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	sgb "github.com/sgb-db/sgb"
	"github.com/sgb-db/sgb/internal/benchkit"
	"github.com/sgb-db/sgb/internal/checkin"
	"github.com/sgb-db/sgb/internal/cluster"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/tpch"
)

// benchPoints generates the uniform workload of the ε sweeps.
func benchPoints(n int, seed int64) []sgb.Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]sgb.Point, n)
	for i := range pts {
		pts[i] = sgb.Point{r.Float64() * 10, r.Float64() * 10}
	}
	return pts
}

var benchAlgs = []struct {
	name string
	alg  sgb.Algorithm
}{
	{"AllPairs", sgb.AllPairs},
	{"BoundsChecking", sgb.BoundsCheck},
	{"Index", sgb.OnTheFlyIndex},
	{"Grid", sgb.GridIndex},
}

// benchSGBAll is the common body for the Figure 9a–c families.
func benchSGBAll(b *testing.B, overlap sgb.Overlap) {
	pts := benchPoints(4000, 1)
	for _, a := range benchAlgs {
		for _, eps := range []float64{0.2, 0.5, 0.8} {
			b.Run(fmt.Sprintf("%s/eps=%.1f", a.name, eps), func(b *testing.B) {
				opt := sgb.Options{Metric: sgb.L2, Eps: eps, Overlap: overlap, Algorithm: a.alg, Seed: 1, Parallelism: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sgb.GroupByAll(pts, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9a — ε sweep, SGB-All JOIN-ANY across the three strategies.
func BenchmarkFig9a(b *testing.B) { benchSGBAll(b, sgb.JoinAny) }

// BenchmarkFig9b — ε sweep, SGB-All ELIMINATE.
func BenchmarkFig9b(b *testing.B) { benchSGBAll(b, sgb.Eliminate) }

// BenchmarkFig9c — ε sweep, SGB-All FORM-NEW-GROUP.
func BenchmarkFig9c(b *testing.B) { benchSGBAll(b, sgb.FormNewGroup) }

// BenchmarkFig9d — ε sweep, SGB-Any (All-Pairs vs Index).
func BenchmarkFig9d(b *testing.B) {
	pts := benchPoints(4000, 2)
	for _, a := range benchAlgs {
		if a.alg == sgb.BoundsCheck {
			continue // SGB-Any has no bounds-checking variant
		}
		for _, eps := range []float64{0.2, 0.5, 0.8} {
			b.Run(fmt.Sprintf("%s/eps=%.1f", a.name, eps), func(b *testing.B) {
				opt := sgb.Options{Metric: sgb.L2, Eps: eps, Algorithm: a.alg, Parallelism: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sgb.GroupByAny(pts, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGrid — the ε-grid finder head-to-head against the R-tree
// index on the Fig9a uniform workload (n=4000, ε=0.5, L2), for both
// operators, plus the flat-storage entry point that skips the []Point
// adaptation entirely.
func BenchmarkGrid(b *testing.B) {
	pts := benchPoints(4000, 1)
	flat := sgb.FromPoints(pts)
	duel := []struct {
		name string
		alg  sgb.Algorithm
	}{
		{"Index", sgb.OnTheFlyIndex},
		{"Grid", sgb.GridIndex},
	}
	for _, a := range duel {
		b.Run("All/"+a.name, func(b *testing.B) {
			opt := sgb.Options{Metric: sgb.L2, Eps: 0.5, Overlap: sgb.JoinAny, Algorithm: a.alg, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgb.GroupByAll(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, a := range duel {
		b.Run("Any/"+a.name, func(b *testing.B) {
			opt := sgb.Options{Metric: sgb.L2, Eps: 0.5, Algorithm: a.alg}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgb.GroupByAny(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("All/Grid/PointSet", func(b *testing.B) {
		opt := sgb.Options{Metric: sgb.L2, Eps: 0.5, Overlap: sgb.JoinAny, Algorithm: sgb.GridIndex, Seed: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sgb.GroupByAllSet(flat, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweep — multi-ε query sharing on the Fig9a workload
// (n=4000, L2, levels evenly spaced up to ε=0.5): one ε-lattice sweep
// answering all k levels (Lattice) versus k independent one-shot runs
// (Oneshot). The lattice builds one dendrogram below the largest level
// and cuts each level from it; the one-shot rival pays a full grouping
// per level.
func BenchmarkSweep(b *testing.B) {
	pts := benchPoints(4000, 1)
	for _, k := range []int{2, 4, 8} {
		levels := make([]float64, k)
		for i := range levels {
			levels[i] = 0.5 * float64(i+1) / float64(k)
		}
		b.Run(fmt.Sprintf("Lattice/k=%d", k), func(b *testing.B) {
			opt := sgb.Options{Metric: sgb.L2, Algorithm: sgb.GridIndex}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgb.SweepAny(pts, levels, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Oneshot/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, eps := range levels {
					opt := sgb.Options{Metric: sgb.L2, Eps: eps, Algorithm: sgb.GridIndex}
					if _, err := sgb.GroupByAny(pts, opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkParallel — the partition/evaluate/merge pipeline on the
// Fig9a workload (n=4000, ε=0.5, L2): worker sweep for both operators
// under the ε-grid strategy. w=1 is the sequential path; results are
// identical at every worker count.
func BenchmarkParallel(b *testing.B) {
	pts := benchPoints(4000, 1)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("All/Grid/w=%d", w), func(b *testing.B) {
			opt := sgb.Options{Metric: sgb.L2, Eps: 0.5, Overlap: sgb.JoinAny,
				Algorithm: sgb.GridIndex, Seed: 1, Parallelism: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgb.GroupByAll(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Any/Grid/w=%d", w), func(b *testing.B) {
			opt := sgb.Options{Metric: sgb.L2, Eps: 0.5, Algorithm: sgb.GridIndex, Parallelism: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgb.GroupByAny(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelPhases — the per-phase breakdown of the parallel
// SGB-All pipeline on the Fig9a workload: wall time per phase
// (partition / connect / arbitrate / merge, reported as *-ms/op
// metrics) at each worker count. The sequential residue (partition +
// merge) bounds the achievable speedup; the breakdown makes a scaling
// regression attributable to a phase instead of a guess.
func BenchmarkParallelPhases(b *testing.B) {
	pts := benchPoints(4000, 1)
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("All/Grid/w=%d", w), func(b *testing.B) {
			var st sgb.Stats
			opt := sgb.Options{Metric: sgb.L2, Eps: 0.5, Overlap: sgb.JoinAny,
				Algorithm: sgb.GridIndex, Seed: 1, Parallelism: w, Stats: &st}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgb.GroupByAll(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
			perOp := func(nanos int64) float64 { return float64(nanos) / 1e6 / float64(b.N) }
			b.ReportMetric(perOp(st.PartitionNanos), "partition-ms/op")
			b.ReportMetric(perOp(st.ConnectNanos), "connect-ms/op")
			b.ReportMetric(perOp(st.ArbitrateNanos), "arbitrate-ms/op")
			b.ReportMetric(perOp(st.MergeNanos), "merge-ms/op")
		})
	}
}

// BenchmarkIncremental — appending a fixed-size batch (256 points) to
// an Incremental handle preloaded with base points, against the
// one-shot cost of regrouping the whole set. Point density is held
// constant across bases (the domain area scales with base), so each
// appended point does the same local probe work at every base — the
// incremental series should stay (near-)flat as base grows, showing
// per-append cost proportional to the batch size rather than the
// accumulated dataset, while the one-shot series grows with base. The
// handle is rebuilt outside the timer whenever appends have grown it
// past 1.5× base, so every measured append runs against a retained
// set of ≈base points.
func BenchmarkIncremental(b *testing.B) {
	const batch = 256
	// span keeps density at the Fig9a workload's level (2000 points
	// over a 10×10 square) as base grows.
	span := func(base int) float64 { return 10 * math.Sqrt(float64(base)/2000) }
	points := func(seed int64, n int, span float64) *sgb.PointSet {
		r := rand.New(rand.NewSource(seed))
		ps := sgb.NewPointSet(2)
		for j := 0; j < n; j++ {
			p := ps.Extend()
			p[0], p[1] = r.Float64()*span, r.Float64()*span
		}
		return ps
	}
	// A pool of pre-built random batches, cycled through so appends
	// never re-insert identical coordinates.
	newBatches := func(seed int64, span float64) []*sgb.PointSet {
		pool := make([]*sgb.PointSet, 16)
		for i := range pool {
			pool[i] = points(seed+int64(i), batch, span)
		}
		return pool
	}
	semantics := []struct {
		name string
		mk   func(sgb.Options) (*sgb.Incremental, error)
		opt  sgb.Options
	}{
		{"Any", sgb.NewIncrementalAny,
			sgb.Options{Metric: sgb.L2, Eps: 0.5, Algorithm: sgb.GridIndex}},
		{"All", sgb.NewIncrementalAll,
			sgb.Options{Metric: sgb.L2, Eps: 0.5, Overlap: sgb.JoinAny, Algorithm: sgb.GridIndex, Seed: 1}},
	}
	for _, sem := range semantics {
		for _, base := range []int{2000, 8000, 32000} {
			basePts := points(11, base, span(base))
			b.Run(fmt.Sprintf("%s/Append/base=%d", sem.name, base), func(b *testing.B) {
				pool := newBatches(int64(base), span(base))
				var inc *sgb.Incremental
				reload := func() {
					var err error
					if inc, err = sem.mk(sem.opt); err != nil {
						b.Fatal(err)
					}
					if err := inc.AppendSet(basePts); err != nil {
						b.Fatal(err)
					}
				}
				reload()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if inc.Len() > base+base/2 {
						b.StopTimer()
						reload()
						b.StartTimer()
					}
					if err := inc.AppendSet(pool[i%len(pool)]); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/Oneshot/base=%d", sem.name, base), func(b *testing.B) {
				// The cost incremental maintenance replaces: regroup
				// base+batch points from scratch.
				full := sgb.NewPointSet(2)
				full.AppendSet(basePts)
				full.AppendSet(points(int64(base), batch, span(base)))
				opt := sem.opt
				opt.Parallelism = 1
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if sem.name == "Any" {
						_, err = sgb.GroupByAnySet(full, opt)
					} else {
						_, err = sgb.GroupByAllSet(full, opt)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWindow measures steady-state sliding-window maintenance:
// each tick appends a fresh 256-point batch, evicts oldest-first back
// down to the window size, and reads the grouping. The Maintained
// series drives an Incremental handle (append + decremental Window +
// Result); the Oneshot series pays what the window replaces —
// regrouping the whole window from scratch every tick. The workload
// is cluster-structured (benchkit.ClusterPoints, shared with the
// "window" baseline family so both measure the same shape) with the
// domain scaled to hold cluster density constant as the window grows.
// SGB-Any maintenance is localized — eviction reclusters only the
// victims' components — which is where the ≥5× steady-state win over
// per-tick one-shot comes from; SGB-All replays the order-sensitive
// arbitration over the survivors and is reported for completeness (it
// tracks the one-shot cost by construction).
func BenchmarkWindow(b *testing.B) {
	const batch = 256
	// Domain side: cluster-center density stays subcritical (expected
	// cluster-graph degree well under 1), so components stay bounded as
	// the window grows — the regime where localized deletion pays.
	span := func(window int) float64 { return 1.25 * math.Sqrt(float64(window)) }
	newBatches := func(seed int64, span float64) []*sgb.PointSet {
		pool := make([]*sgb.PointSet, 16)
		for i := range pool {
			pool[i] = benchkit.ClusterPoints(batch, span, seed+int64(i)+1)
		}
		return pool
	}
	semantics := []struct {
		name string
		mk   func(sgb.Options) (*sgb.Incremental, error)
		opt  sgb.Options
	}{
		{"Any", sgb.NewIncrementalAny,
			sgb.Options{Metric: sgb.L2, Eps: 0.5, Algorithm: sgb.GridIndex}},
		{"All", sgb.NewIncrementalAll,
			sgb.Options{Metric: sgb.L2, Eps: 0.5, Overlap: sgb.JoinAny, Algorithm: sgb.GridIndex, Seed: 1}},
	}
	for _, sem := range semantics {
		for _, window := range []int{8000, 32000} {
			sp := span(window)
			b.Run(fmt.Sprintf("%s/Maintained/w=%d", sem.name, window), func(b *testing.B) {
				pool := newBatches(int64(window), sp)
				inc, err := sem.mk(sem.opt)
				if err != nil {
					b.Fatal(err)
				}
				if err := inc.AppendSet(benchkit.ClusterPoints(window, sp, 13)); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := inc.AppendSet(pool[i%len(pool)]); err != nil {
						b.Fatal(err)
					}
					if _, err := inc.Window(window); err != nil {
						b.Fatal(err)
					}
					if _, err := inc.Result(); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/Oneshot/w=%d", sem.name, window), func(b *testing.B) {
				pool := newBatches(int64(window), sp)
				win := sgb.NewPointSet(2)
				win.AppendSet(benchkit.ClusterPoints(window, sp, 13))
				opt := sem.opt
				opt.Parallelism = 1
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Slide: admit the batch, expire the oldest points,
					// regroup the surviving window from scratch.
					win.AppendSet(pool[i%len(pool)])
					win = win.Slice(win.Len()-window, win.Len())
					var err error
					if sem.name == "Any" {
						_, err = sgb.GroupByAnySet(win, opt)
					} else {
						_, err = sgb.GroupByAllSet(win, opt)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchFig10 is the size-sweep body (ε fixed at 0.2).
func benchFig10(b *testing.B, overlap sgb.Overlap, algs []struct {
	name string
	alg  sgb.Algorithm
}, anySemantics bool) {
	for _, a := range algs {
		for _, n := range []int{2000, 4000, 8000} {
			pts := benchPoints(n, 3)
			b.Run(fmt.Sprintf("%s/n=%d", a.name, n), func(b *testing.B) {
				opt := sgb.Options{Metric: sgb.L2, Eps: 0.2, Overlap: overlap, Algorithm: a.alg, Seed: 1, Parallelism: 1}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if anySemantics {
						_, err = sgb.GroupByAny(pts, opt)
					} else {
						_, err = sgb.GroupByAll(pts, opt)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

var boundsVsIndex = benchAlgs[1:]

// BenchmarkFig10a — size sweep, SGB-All JOIN-ANY (Bounds vs Index).
func BenchmarkFig10a(b *testing.B) { benchFig10(b, sgb.JoinAny, boundsVsIndex, false) }

// BenchmarkFig10b — size sweep, SGB-All ELIMINATE.
func BenchmarkFig10b(b *testing.B) { benchFig10(b, sgb.Eliminate, boundsVsIndex, false) }

// BenchmarkFig10c — size sweep, SGB-All FORM-NEW-GROUP.
func BenchmarkFig10c(b *testing.B) { benchFig10(b, sgb.FormNewGroup, boundsVsIndex, false) }

// BenchmarkFig10d — size sweep, SGB-Any (All-Pairs vs Index vs Grid).
func BenchmarkFig10d(b *testing.B) {
	algs := []struct {
		name string
		alg  sgb.Algorithm
	}{benchAlgs[0], benchAlgs[2], benchAlgs[3]}
	benchFig10(b, sgb.JoinAny, algs, true)
}

// BenchmarkFig11 — SGB vs the clustering comparators on check-in data
// (one sub-benchmark per method; a/b select the skew profile).
func BenchmarkFig11(b *testing.B) {
	for _, profile := range []struct {
		name string
		cfg  checkin.Config
	}{
		{"a_Brightkite", checkin.Brightkite(8000)},
		{"b_Gowalla", checkin.Gowalla(8000)},
	} {
		pts := checkin.Points(profile.cfg)
		gpts := make([]geom.Point, len(pts))
		copy(gpts, pts)
		const eps = 0.2

		b.Run(profile.name+"/DBSCAN", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.DBSCAN(gpts, cluster.DBSCANConfig{Eps: eps, MinPts: 4, Metric: geom.L2}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(profile.name+"/BIRCH", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.BIRCH(gpts, cluster.BIRCHConfig{Threshold: eps, Refine: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, k := range []int{20, 40} {
			b.Run(fmt.Sprintf("%s/KMeans%d", profile.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cluster.KMeans(gpts, cluster.KMeansConfig{K: k, Seed: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		for _, v := range []struct {
			name    string
			overlap sgb.Overlap
		}{
			{"SGB-All-JoinAny", sgb.JoinAny},
			{"SGB-All-Eliminate", sgb.Eliminate},
			{"SGB-All-FormNew", sgb.FormNewGroup},
		} {
			b.Run(profile.name+"/"+v.name, func(b *testing.B) {
				opt := sgb.Options{Metric: sgb.L2, Eps: eps, Overlap: v.overlap, Algorithm: sgb.OnTheFlyIndex}
				for i := 0; i < b.N; i++ {
					if _, err := sgb.GroupByAll(pts, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(profile.name+"/SGB-Any", func(b *testing.B) {
			opt := sgb.Options{Metric: sgb.L2, Eps: eps, Algorithm: sgb.OnTheFlyIndex}
			for i := 0; i < b.N; i++ {
				if _, err := sgb.GroupByAny(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// tpchDB loads the TPC-H-like dataset once per bench family.
func tpchDB(b *testing.B, sf float64) *sgb.DB {
	b.Helper()
	db := sgb.Open()
	ds := tpch.Generate(tpch.ScaleRows(sf))
	if err := ds.Install(db.Catalog()); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchQuery(b *testing.B, db *sgb.DB, sql string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12a — GB2 (Q9) vs SGB3/SGB4 through the SQL engine.
func BenchmarkFig12a(b *testing.B) {
	db := tpchDB(b, 0.3)
	b.Run("GROUP-BY_Q9", func(b *testing.B) { benchQuery(b, db, tpch.GB2) })
	b.Run("SGB3_JoinAny", func(b *testing.B) { benchQuery(b, db, tpch.SGB34(false, 50000, "join-any")) })
	b.Run("SGB3_Eliminate", func(b *testing.B) { benchQuery(b, db, tpch.SGB34(false, 50000, "eliminate")) })
	b.Run("SGB3_FormNew", func(b *testing.B) { benchQuery(b, db, tpch.SGB34(false, 50000, "form-new")) })
	b.Run("SGB4_Any", func(b *testing.B) { benchQuery(b, db, tpch.SGB34(true, 50000, "")) })
}

// BenchmarkFig12b — GB3 (Q15) vs SGB5/SGB6 through the SQL engine.
func BenchmarkFig12b(b *testing.B) {
	db := tpchDB(b, 0.3)
	b.Run("GROUP-BY_Q15", func(b *testing.B) { benchQuery(b, db, tpch.GB3) })
	b.Run("SGB5_JoinAny", func(b *testing.B) { benchQuery(b, db, tpch.SGB56(false, 100000, "join-any")) })
	b.Run("SGB5_Eliminate", func(b *testing.B) { benchQuery(b, db, tpch.SGB56(false, 100000, "eliminate")) })
	b.Run("SGB5_FormNew", func(b *testing.B) { benchQuery(b, db, tpch.SGB56(false, 100000, "form-new")) })
	b.Run("SGB6_Any", func(b *testing.B) { benchQuery(b, db, tpch.SGB56(true, 100000, "")) })
}

// BenchmarkTable1 — the complexity table: time per strategy at two
// sizes; growth between them exposes the O(n²) vs O(n log |G|) split.
func BenchmarkTable1(b *testing.B) {
	for _, a := range benchAlgs {
		for _, n := range []int{1000, 4000} {
			pts := benchPoints(n, 5)
			b.Run(fmt.Sprintf("%s/n=%d", a.name, n), func(b *testing.B) {
				opt := sgb.Options{Metric: sgb.LInf, Eps: 0.3, Overlap: sgb.JoinAny, Algorithm: a.alg, Seed: 1, Parallelism: 1}
				for i := 0; i < b.N; i++ {
					if _, err := sgb.GroupByAll(pts, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2 — the full query suite (GB1–GB3, SGB1–SGB6).
func BenchmarkTable2(b *testing.B) {
	db := tpchDB(b, 0.3)
	queries := []struct {
		name, sql string
	}{
		{"GB1_Q18", tpch.GB1(200)},
		{"GB2_Q9", tpch.GB2},
		{"GB3_Q15", tpch.GB3},
		{"SGB1_All", tpch.SGB12(false, 2000, "join-any", 200, 30000)},
		{"SGB2_Any", tpch.SGB12(true, 2000, "", 200, 30000)},
		{"SGB3_All", tpch.SGB34(false, 50000, "join-any")},
		{"SGB4_Any", tpch.SGB34(true, 50000, "")},
		{"SGB5_All", tpch.SGB56(false, 100000, "join-any")},
		{"SGB6_Any", tpch.SGB56(true, 100000, "")},
	}
	for _, q := range queries {
		b.Run(q.name, func(b *testing.B) { benchQuery(b, db, q.sql) })
	}
}

// BenchmarkAblation quantifies the two design choices DESIGN.md calls
// out beyond the paper's algorithms: the lazy (hysteresis) refresh of
// indexed group rectangles, and the convex-hull refinement for L2.
func BenchmarkAblation(b *testing.B) {
	pts := benchPoints(6000, 7)
	b.Run("IndexRefresh/eager", func(b *testing.B) {
		opt := sgb.Options{Metric: sgb.LInf, Eps: 0.3, Algorithm: sgb.OnTheFlyIndex, IndexHysteresis: 1}
		for i := 0; i < b.N; i++ {
			if _, err := sgb.GroupByAll(pts, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IndexRefresh/hysteresis", func(b *testing.B) {
		opt := sgb.Options{Metric: sgb.LInf, Eps: 0.3, Algorithm: sgb.OnTheFlyIndex}
		for i := 0; i < b.N; i++ {
			if _, err := sgb.GroupByAll(pts, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	dense := checkin.Points(checkin.Config{Checkins: 6000, Hotspots: 6, Spread: 0.3, Seed: 2})
	b.Run("L2Refine/memberScan", func(b *testing.B) {
		opt := sgb.Options{Metric: sgb.L2, Eps: 1.0, Algorithm: sgb.OnTheFlyIndex, NoHullTest: true}
		for i := 0; i < b.N; i++ {
			if _, err := sgb.GroupByAll(dense, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("L2Refine/convexHull", func(b *testing.B) {
		opt := sgb.Options{Metric: sgb.L2, Eps: 1.0, Algorithm: sgb.OnTheFlyIndex}
		for i := 0; i < b.N; i++ {
			if _, err := sgb.GroupByAll(dense, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHarness runs each benchkit experiment end-to-end at reduced
// scale — the same code path as cmd/sgbbench, kept exercised by CI.
func BenchmarkHarness(b *testing.B) {
	for _, id := range []string{"fig9a", "fig10d", "fig11a", "fig12a", "table1", "scaling"} {
		e, ok := benchkit.Find(id)
		if !ok {
			b.Fatalf("missing experiment %s", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(benchkit.Config{Out: io.Discard, Scale: 0.05, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures crash-restart to first grouping answer on
// a persistent database: a warm start (checkpoint + short WAL tail,
// incremental evaluator revived from the snapshot) against a cold one
// (snapshots stripped: full WAL replay, regroup from scratch). The
// BENCH_<n>.json "recovery" family records the same pair at full size.
func BenchmarkRecovery(b *testing.B) {
	const n = 8192
	warm := b.TempDir()
	query, err := benchkit.SetupRecoveryDir(warm, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	cold := b.TempDir()
	if err := copyFlatDir(warm, cold); err != nil {
		b.Fatal(err)
	}
	if err := benchkit.StripSnapshots(cold); err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name, dir string
	}{{"Warm/SnapshotTail", warm}, {"Cold/FullReplay", cold}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := benchkit.TimeRecovery(tc.dir, query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServe measures wire-protocol serving under concurrent
// sessions: p50/p99 request latency and throughput at several
// connection counts, read-mostly (the shared evaluator cache's best
// case) and mixed INSERT/DELETE/query traffic. The full 1/8/32/128
// sweep with absolute numbers lives in `sgbbench -run serve` and the
// baseline snapshots; this keeps a CI-sized smoke point per workload.
func BenchmarkServe(b *testing.B) {
	for _, tc := range []struct {
		name  string
		conns int
		mixed bool
	}{
		{"Read/c=8", 8, false},
		{"Read/c=32", 32, false},
		{"Mixed/c=8", 8, true},
		{"Mixed/c=32", 32, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := benchkit.RunServeLoad(1000, tc.conns, 256, tc.mixed, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.P50.Microseconds())/1000, "p50-ms")
				b.ReportMetric(float64(res.P99.Microseconds())/1000, "p99-ms")
				b.ReportMetric(res.Throughput, "req/s")
			}
		})
	}
}

// copyFlatDir clones a flat directory (benchmark fixture helper).
func copyFlatDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
