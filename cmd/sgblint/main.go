// Command sgblint runs the engine's static-analysis suite
// (internal/analysis): lockorder, snapshotsafe, determinism,
// stickyerr, hotpath, and docs — the mechanical form of the
// invariants ARCHITECTURE.md states in prose. The whole module is
// loaded and type-checked with the standard library only, so the
// command works offline and in CI without module downloads.
//
// Usage:
//
//	go run ./cmd/sgblint [-only list] [dir ...]
//
// Directories are walked recursively ("./..." is accepted and means
// the same thing); with no arguments the whole module containing the
// current directory is checked. -only restricts the run to a
// comma-separated subset of analyzers ("lockorder,docs"); marker
// staleness is then only enforced for the analyzers that ran.
// -list prints the analyzer names and one-line docs.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/sgb-db/sgb/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "sgblint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgblint:", err)
		os.Exit(2)
	}
	prog, err := analysis.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgblint:", err)
		os.Exit(2)
	}

	targets, err := selectTargets(prog, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgblint:", err)
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(prog, targets, analyzers, analysis.SuiteNames())
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Printf("sgblint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectTargets filters the loaded program's packages to those under
// the argument directories. No arguments means every package.
func selectTargets(prog *analysis.Program, args []string) ([]*analysis.Package, error) {
	if len(args) == 0 {
		return prog.Pkgs, nil
	}
	var roots []string
	for _, arg := range args {
		arg = strings.TrimSuffix(arg, "...")
		arg = strings.TrimSuffix(arg, string(filepath.Separator))
		if arg == "" || arg == "." {
			arg = "."
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		roots = append(roots, abs)
	}
	var targets []*analysis.Package
	for _, pkg := range prog.Pkgs {
		for _, root := range roots {
			if pkg.Dir == root || strings.HasPrefix(pkg.Dir, root+string(filepath.Separator)) {
				targets = append(targets, pkg)
				break
			}
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages under %s", strings.Join(args, " "))
	}
	return targets, nil
}
