// Command sgbsql is an interactive SQL shell for the SGB engine. It
// speaks the paper's extended dialect, so similarity grouping works at
// the prompt:
//
//	sgbsql -demo
//	sgb> SELECT count(*) FROM gps
//	     GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
//	     ON-OVERLAP ELIMINATE;
//
// Statements are terminated by ';'. Preload data with -demo (the
// paper's Figure 2 points), -tpch SF (TPC-H-like tables), or
// -checkin N (synthetic geo-social check-ins).
//
// Session settings tune the similarity executor:
//
//	sgb> SET algorithm = grid;      -- allpairs | bounds | rtree | grid
//	sgb> SET parallelism = 4;       -- 0 = GOMAXPROCS (auto), 1 = sequential
//	sgb> SET seed = 7;              -- JOIN-ANY arbitration seed
//	sgb> SET incremental = on;      -- maintain SGB groupings across INSERTs
//
// With -data DIR the database is persistent: mutations append to a
// write-ahead log in DIR, CHECKPOINT (and SET checkpoint_every)
// snapshot the state, and the next start recovers everything the log
// captured. Quitting (EOF, \q, or Ctrl-C) syncs the log before exit.
//
// See docs/sql.md for the full dialect reference.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	sgb "github.com/sgb-db/sgb"
	"github.com/sgb-db/sgb/internal/checkin"
	"github.com/sgb-db/sgb/internal/tpch"
)

func main() {
	var (
		demo     = flag.Bool("demo", false, "load the Figure 2 demo table 'gps'")
		tpchSF   = flag.Float64("tpch", 0, "load TPC-H-like tables at this scale factor")
		checkins = flag.Int("checkin", 0, "load this many synthetic check-ins as 'checkins'")
		dataDir  = flag.String("data", "", "persist the database in this directory (WAL + checkpoints)")
	)
	flag.Parse()

	var db *sgb.DB
	if *dataDir != "" {
		var err error
		db, err = sgb.OpenDir(*dataDir)
		if err != nil {
			fatal(err)
		}
		printRecovery(db.Recovery(), *dataDir)
	} else {
		db = sgb.Open()
	}
	// Quitting any way — EOF, \q, or Ctrl-C — syncs and closes the WAL
	// so the last acknowledged statement is on disk.
	quit := func(code int) {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sgbsql: close:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Println()
		quit(0)
	}()
	if *demo {
		if _, err := db.TableLen("gps"); err == nil {
			fmt.Println("demo table gps already recovered from -data; keeping it")
		} else {
			must(db.Exec("CREATE TABLE gps (id INT, lat FLOAT, lon FLOAT)"))
			must(db.Exec(`INSERT INTO gps VALUES
				(1, 2, 5), (2, 3, 6), (3, 7, 5), (4, 8, 6), (5, 5, 4)`))
			fmt.Println("loaded demo table gps (5 points of the paper's Figure 2)")
		}
	}
	if *tpchSF > 0 {
		ds := tpch.Generate(tpch.ScaleRows(*tpchSF))
		if err := ds.Install(db.Catalog()); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded TPC-H-like tables at SF %g (%d lineitems)\n", *tpchSF, ds.Lineitem.Len())
	}
	if *checkins > 0 {
		t := checkin.Table("checkins", checkin.Brightkite(*checkins))
		if err := db.Catalog().Create(t); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d synthetic check-ins as table checkins\n", t.Len())
	}
	if tables := db.Tables(); len(tables) > 0 {
		fmt.Printf("tables: %s\n", strings.Join(tables, ", "))
	}
	fmt.Println(`type SQL ending with ';' — \q quits, \d lists tables`)
	fmt.Println(`session settings: SET algorithm = allpairs|bounds|rtree|grid; SET parallelism = N; SET seed = N; SET incremental = on|off`)
	if *dataDir != "" {
		fmt.Println(`durability: SET durability = always|interval|off; SET checkpoint_every = N; CHECKPOINT`)
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var stmt strings.Builder
	prompt := "sgb> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			quit(0)
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "quit", "exit":
			quit(0)
		case `\d`:
			for _, t := range db.Tables() {
				n, _ := db.TableLen(t)
				fmt.Printf("  %s (%d rows)\n", t, n)
			}
			continue
		}
		stmt.WriteString(line)
		stmt.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "  -> "
			continue
		}
		prompt = "sgb> "
		sql := stmt.String()
		stmt.Reset()
		execute(db, sql)
	}
}

func execute(db *sgb.DB, sql string) {
	upper := strings.ToUpper(strings.TrimSpace(sql))
	start := time.Now()
	if strings.HasPrefix(upper, "SELECT") {
		rows, err := db.Query(sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(strings.Join(rows.Columns, " | "))
		for _, row := range rows.Data {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d rows, %v)\n", rows.Len(), time.Since(start).Round(time.Microsecond))
		return
	}
	n, err := db.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ok (%d rows affected, %v)\n", n, time.Since(start).Round(time.Microsecond))
}

// printRecovery summarizes what OpenDir reconstructed from the data
// directory.
func printRecovery(ri sgb.RecoveryInfo, dir string) {
	if ri.SnapshotPath == "" && ri.RecordsReplayed == 0 {
		fmt.Printf("opened %s (fresh database)\n", dir)
		return
	}
	fmt.Printf("recovered %s:", dir)
	if ri.SnapshotPath != "" {
		fmt.Printf(" snapshot through seq %d", ri.SnapshotSeq)
		if ri.EvaluatorsRestored > 0 {
			fmt.Printf(" (%d incremental evaluators restored)", ri.EvaluatorsRestored)
		}
	}
	fmt.Printf(", %d WAL records (%d rows) replayed", ri.RecordsReplayed, ri.RowsReplayed)
	if ri.SnapshotsSkipped > 0 {
		fmt.Printf(", %d corrupt snapshots skipped", ri.SnapshotsSkipped)
	}
	fmt.Println()
}

func must(n int, err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgbsql:", err)
	os.Exit(1)
}
