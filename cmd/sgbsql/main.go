// Command sgbsql is an interactive SQL shell for the SGB engine. It
// speaks the paper's extended dialect, so similarity grouping works at
// the prompt:
//
//	sgbsql -demo
//	sgb> SELECT count(*) FROM gps
//	     GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
//	     ON-OVERLAP ELIMINATE;
//
// Statements are terminated by ';'. Preload data with -demo (the
// paper's Figure 2 points), -tpch SF (TPC-H-like tables), or
// -checkin N (synthetic geo-social check-ins).
//
// Session settings tune the similarity executor:
//
//	sgb> SET algorithm = grid;      -- allpairs | bounds | rtree | grid
//	sgb> SET parallelism = 4;       -- 0 = GOMAXPROCS (auto), 1 = sequential
//	sgb> SET seed = 7;              -- JOIN-ANY arbitration seed
//	sgb> SET incremental = on;      -- maintain SGB groupings across INSERTs
//
// With -data DIR the database is persistent: mutations append to a
// write-ahead log in DIR, CHECKPOINT (and SET checkpoint_every)
// snapshot the state, and the next start recovers everything the log
// captured. Quitting (EOF, \q, or Ctrl-C) syncs the log before exit.
//
// Client/server mode: -serve ADDR serves the (optionally persistent,
// optionally preloaded) database over TCP instead of opening the REPL
// — each connection gets its own session, so per-connection SET state
// never leaks between clients — and -connect ADDR runs the REPL
// against such a server instead of an embedded database. Ctrl-C on the
// server drains in-flight statements before closing.
//
// See docs/sql.md for the full dialect and wire-protocol reference.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	sgb "github.com/sgb-db/sgb"
	"github.com/sgb-db/sgb/internal/checkin"
	"github.com/sgb-db/sgb/internal/tpch"
	"github.com/sgb-db/sgb/sgbclient"
	"github.com/sgb-db/sgb/sgbserver"
)

// runner is the statement executor the REPL drives: an embedded
// session or a remote connection, selected by -connect.
type runner interface {
	Run(sql string) (*sgb.Rows, int, error)
}

func main() {
	var (
		demo     = flag.Bool("demo", false, "load the Figure 2 demo table 'gps'")
		tpchSF   = flag.Float64("tpch", 0, "load TPC-H-like tables at this scale factor")
		checkins = flag.Int("checkin", 0, "load this many synthetic check-ins as 'checkins'")
		dataDir  = flag.String("data", "", "persist the database in this directory (WAL + checkpoints)")
		serve    = flag.String("serve", "", "serve the database over TCP on this address (host:port) instead of the REPL")
		connect  = flag.String("connect", "", "run the REPL against a -serve server at this address instead of an embedded database")
	)
	flag.Parse()

	if *connect != "" {
		if *demo || *tpchSF > 0 || *checkins > 0 || *dataDir != "" || *serve != "" {
			fatal(errors.New("-connect takes no data flags: the server owns the database"))
		}
		conn, err := sgbclient.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("connected to %s (one session; SET state is private to this connection)\n", *connect)
		repl(conn, func(code int) {
			conn.Close()
			os.Exit(code)
		}, nil)
		return
	}

	var db *sgb.DB
	if *dataDir != "" {
		var err error
		db, err = sgb.OpenDir(*dataDir)
		if err != nil {
			fatal(err)
		}
		printRecovery(db.Recovery(), *dataDir)
	} else {
		db = sgb.Open()
	}
	quit := func(code int) {
		// Quitting any way — EOF, \q, or Ctrl-C — syncs and closes the
		// WAL so the last acknowledged statement is on disk.
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sgbsql: close:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}
	if *demo {
		if _, err := db.TableLen("gps"); err == nil {
			fmt.Println("demo table gps already recovered from -data; keeping it")
		} else {
			must(db.Exec("CREATE TABLE gps (id INT, lat FLOAT, lon FLOAT)"))
			must(db.Exec(`INSERT INTO gps VALUES
				(1, 2, 5), (2, 3, 6), (3, 7, 5), (4, 8, 6), (5, 5, 4)`))
			fmt.Println("loaded demo table gps (5 points of the paper's Figure 2)")
		}
	}
	if *tpchSF > 0 {
		ds := tpch.Generate(tpch.ScaleRows(*tpchSF))
		if err := ds.Install(db.Catalog()); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded TPC-H-like tables at SF %g (%d lineitems)\n", *tpchSF, ds.Lineitem.Len())
	}
	if *checkins > 0 {
		t := checkin.Table("checkins", checkin.Brightkite(*checkins))
		if err := db.Catalog().Create(t); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d synthetic check-ins as table checkins\n", t.Len())
	}
	if tables := db.Tables(); len(tables) > 0 {
		fmt.Printf("tables: %s\n", strings.Join(tables, ", "))
	}

	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fatal(err)
		}
		srv := sgbserver.New(db)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt)
		go func() {
			<-sigc
			fmt.Println("\ndraining connections...")
			srv.Shutdown()
		}()
		fmt.Printf("serving on %s — connect with: sgbsql -connect %s\n", ln.Addr(), ln.Addr())
		if err := srv.Serve(ln); !errors.Is(err, sgbserver.ErrClosed) {
			fmt.Fprintln(os.Stderr, "sgbsql: serve:", err)
			quit(1)
		}
		quit(0)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Println()
		quit(0)
	}()
	fmt.Println(`type SQL ending with ';' — \q quits, \d lists tables`)
	fmt.Println(`session settings: SET algorithm = allpairs|bounds|rtree|grid; SET parallelism = N; SET seed = N; SET incremental = on|off`)
	if *dataDir != "" {
		fmt.Println(`durability: SET durability = always|interval|off; SET checkpoint_every = N; CHECKPOINT`)
	}
	repl(db.NewSession(), quit, db)
}

// repl reads ';'-terminated statements from stdin and executes them on
// r. db is non-nil only in embedded mode, where \d can list tables
// locally.
func repl(r runner, quit func(int), db *sgb.DB) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var stmt strings.Builder
	prompt := "sgb> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			quit(0)
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "quit", "exit":
			quit(0)
		case `\d`:
			if db == nil {
				fmt.Println(`\d lists tables in embedded mode only`)
			} else {
				for _, t := range db.Tables() {
					n, _ := db.TableLen(t)
					fmt.Printf("  %s (%d rows)\n", t, n)
				}
			}
			continue
		}
		stmt.WriteString(line)
		stmt.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "  -> "
			continue
		}
		prompt = "sgb> "
		sql := stmt.String()
		stmt.Reset()
		execute(r, sql)
	}
}

func execute(r runner, sql string) {
	start := time.Now()
	rows, n, err := r.Run(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if rows == nil {
		fmt.Printf("ok (%d rows affected, %v)\n", n, time.Since(start).Round(time.Microsecond))
		return
	}
	fmt.Println(strings.Join(rows.Columns, " | "))
	for _, row := range rows.Data {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows, %v)\n", rows.Len(), time.Since(start).Round(time.Microsecond))
}

// printRecovery summarizes what OpenDir reconstructed from the data
// directory.
func printRecovery(ri sgb.RecoveryInfo, dir string) {
	if ri.SnapshotPath == "" && ri.RecordsReplayed == 0 {
		fmt.Printf("opened %s (fresh database)\n", dir)
		return
	}
	fmt.Printf("recovered %s:", dir)
	if ri.SnapshotPath != "" {
		fmt.Printf(" snapshot through seq %d", ri.SnapshotSeq)
		if ri.EvaluatorsRestored > 0 {
			fmt.Printf(" (%d incremental evaluators restored)", ri.EvaluatorsRestored)
		}
	}
	fmt.Printf(", %d WAL records (%d rows) replayed", ri.RecordsReplayed, ri.RowsReplayed)
	if ri.SnapshotsSkipped > 0 {
		fmt.Printf(", %d corrupt snapshots skipped", ri.SnapshotsSkipped)
	}
	fmt.Println()
}

func must(n int, err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgbsql:", err)
	os.Exit(1)
}
