// Command sgbbench regenerates the paper's evaluation artifacts: every
// figure (9a–d, 10a–d, 11a/b, 12a/b) and table (1, 2) is an experiment
// that prints the same rows/series the paper reports.
//
// Usage:
//
//	sgbbench -list
//	sgbbench -exp fig9a
//	sgbbench -exp all -scale 2
//
// Scale 1 is the default single-machine size (seconds per experiment);
// the paper's full workloads correspond to roughly scale 25–50.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/sgb-db/sgb/internal/benchkit"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig9a..fig12b, table1, table2), comma-separated, or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale multiplier (1.0 = default sizes)")
		seed     = flag.Int64("seed", 42, "generator seed")
		list     = flag.Bool("list", false, "list available experiments")
		baseline = flag.String("baseline", "", "write a machine-readable perf baseline (JSON) to this path and exit")
	)
	flag.Parse()

	if *baseline != "" {
		f, err := os.Create(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgbbench: %v\n", err)
			os.Exit(1)
		}
		cfg := benchkit.Config{Out: os.Stdout, Scale: *scale, Seed: *seed}
		if err := benchkit.WriteBaseline(f, cfg); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "sgbbench: baseline: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sgbbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s\n", *baseline)
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range benchkit.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: sgbbench -exp <id>")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range benchkit.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := benchkit.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sgbbench: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		cfg := benchkit.Config{Out: os.Stdout, Scale: *scale, Seed: *seed}
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "sgbbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
