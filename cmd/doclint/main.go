// Command doclint enforces the repository's documentation coverage —
// the local equivalent of revive's exported / package-comments rules,
// implemented on go/ast so CI needs no extra module downloads:
//
//   - every package must carry a package comment (by convention in its
//     doc.go, but any file's works);
//   - every exported top-level type, function, and method (on an
//     exported receiver) must have a doc comment;
//   - every exported const/var must be documented on its spec or on
//     its enclosing declaration group.
//
// Test files are exempt, as are main packages' sole main functions
// (the package comment is the command's documentation).
//
// Usage: go run ./cmd/doclint [dir ...] — directories are walked
// recursively; with no arguments the current directory tree is
// checked. Exits non-zero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, root := range roots {
		// Accept "./..." spelling for familiarity; the walk is always
		// recursive either way.
		root = strings.TrimSuffix(strings.TrimSuffix(root, "..."), string(filepath.Separator))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dir := filepath.Dir(path)
				if !seen[dir] {
					seen[dir] = true
					dirs = append(dirs, dir)
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
	}
	sort.Strings(dirs)

	var problems []string
	for _, dir := range dirs {
		problems = append(problems, lintDir(dir)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintDir checks one directory's (non-test) package.
func lintDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse: %v", dir, err)}
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		for fileName, f := range pkg.Files {
			problems = append(problems, lintFile(fset, fileName, f, name == "main")...)
		}
	}
	sort.Strings(problems)
	return problems
}

// lintFile checks one file's exported top-level declarations.
func lintFile(fset *token.FileSet, name string, f *ast.File, isMain bool) []string {
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || (isMain && d.Name.Name == "main") {
				continue
			}
			if recv := receiverType(d); recv != "" && !ast.IsExported(recv) {
				continue // method on an unexported type
			}
			if d.Doc == nil {
				report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						report(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, n := range vs.Names {
						// A doc comment on the group, the spec, or a
						// trailing line comment all count (grouped
						// enum blocks are idiomatic).
						if n.IsExported() && d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
							report(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType names the receiver's base type ("" for plain funcs).
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// funcKind distinguishes methods from functions in reports.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
