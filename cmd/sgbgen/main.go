// Command sgbgen materializes the benchmark datasets as CSV files so
// experiments can be repeated against identical data (and inspected).
//
//	sgbgen -kind tpch -sf 1 -out ./data
//	sgbgen -kind checkin -n 100000 -profile gowalla -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/sgb-db/sgb/internal/checkin"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/tpch"
)

func main() {
	var (
		kind    = flag.String("kind", "tpch", "dataset kind: tpch or checkin")
		sf      = flag.Float64("sf", 1, "TPC-H scale factor")
		n       = flag.Int("n", 100000, "check-in count")
		profile = flag.String("profile", "brightkite", "check-in profile: brightkite or gowalla")
		out     = flag.String("out", ".", "output directory")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	switch *kind {
	case "tpch":
		cfg := tpch.ScaleRows(*sf)
		cfg.Seed = *seed
		ds := tpch.Generate(cfg)
		for _, t := range ds.Tables() {
			if err := writeTable(*out, t); err != nil {
				fatal(err)
			}
		}
	case "checkin":
		var cfg checkin.Config
		switch *profile {
		case "brightkite":
			cfg = checkin.Brightkite(*n)
		case "gowalla":
			cfg = checkin.Gowalla(*n)
		default:
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		cfg.Seed = *seed
		if err := writeTable(*out, checkin.Table("checkins", cfg)); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func writeTable(dir string, t *storage.Table) error {
	path := filepath.Join(dir, t.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, t.Len())
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgbgen:", err)
	os.Exit(1)
}
