package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

func randRect(r *rand.Rand, d int, span float64) geom.Rect {
	min := make(geom.Point, d)
	max := make(geom.Point, d)
	for i := 0; i < d; i++ {
		a := r.Float64() * 100
		b := a + r.Float64()*span
		min[i], max[i] = a, b
	}
	return geom.NewRect(min, max)
}

// linearSearch is the oracle: brute-force window query.
func linearSearch(rects []geom.Rect, ids []int, w geom.Rect) []int {
	var out []int
	for i, r := range rects {
		if r.Intersects(w) {
			out = append(out, ids[i])
		}
	}
	sort.Ints(out)
	return out
}

func sortedInts(vs []any) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = v.(int)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Search(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), nil); len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
	if tr.Delete(geom.PointRect(geom.Point{0, 0}), 1) {
		t.Fatal("delete on empty tree succeeded")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New(2)
	tr.Insert(geom.PointRect(geom.Point{1, 1}), 1)
	tr.Insert(geom.PointRect(geom.Point{5, 5}), 2)
	tr.Insert(geom.PointRect(geom.Point{9, 9}), 3)
	got := sortedInts(tr.Search(geom.NewRect(geom.Point{0, 0}, geom.Point{6, 6}), nil))
	if !equalInts(got, []int{1, 2}) {
		t.Fatalf("search = %v", got)
	}
	// Touching boundary counts as intersecting.
	got = sortedInts(tr.Search(geom.NewRect(geom.Point{9, 9}, geom.Point{10, 10}), nil))
	if !equalInts(got, []int{3}) {
		t.Fatalf("boundary search = %v", got)
	}
}

// Property: search agrees with linear scan across many random trees,
// dimensions, and window sizes.
func TestSearchMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		d := 1 + r.Intn(3)
		n := 1 + r.Intn(600)
		tr := New(d)
		rects := make([]geom.Rect, n)
		ids := make([]int, n)
		for i := 0; i < n; i++ {
			rects[i] = randRect(r, d, 8)
			ids[i] = i
			tr.Insert(rects[i], i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 25; q++ {
			w := randRect(r, d, 30)
			got := sortedInts(tr.Search(w, nil))
			want := linearSearch(rects, ids, w)
			if !equalInts(got, want) {
				t.Fatalf("trial %d query %d: got %v want %v", trial, q, got, want)
			}
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	tr := New(2)
	for i := 0; i < 100; i++ {
		tr.Insert(geom.PointRect(geom.Point{float64(i), float64(i)}), i)
	}
	count := 0
	tr.Visit(geom.NewRect(geom.Point{0, 0}, geom.Point{99, 99}), func(_ geom.Rect, _ any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("visited %d, want 5", count)
	}
}

func TestAll(t *testing.T) {
	tr := New(2)
	for i := 0; i < 50; i++ {
		tr.Insert(geom.PointRect(geom.Point{float64(i % 7), float64(i % 11)}), i)
	}
	got := sortedInts(tr.All(nil))
	if len(got) != 50 {
		t.Fatalf("All returned %d entries", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("All missing id %d", i)
		}
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New(2)
	r1 := geom.PointRect(geom.Point{1, 1})
	tr.Insert(r1, 1)
	tr.Insert(geom.PointRect(geom.Point{2, 2}), 2)
	if !tr.Delete(r1, 1) {
		t.Fatal("delete failed")
	}
	if tr.Delete(r1, 1) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := sortedInts(tr.Search(geom.NewRect(geom.Point{0, 0}, geom.Point{3, 3}), nil))
	if !equalInts(got, []int{2}) {
		t.Fatalf("post-delete search = %v", got)
	}
	// Deleting with the right data but wrong rect must fail.
	tr.Insert(r1, 3)
	if tr.Delete(geom.PointRect(geom.Point{1, 1.5}), 3) {
		t.Fatal("delete with wrong rect succeeded")
	}
}

// Property: random interleaved inserts and deletes keep the tree
// consistent with a shadow map, and invariants hold throughout.
func TestInsertDeleteChurn(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		d := 1 + r.Intn(3)
		tr := New(d)
		type item struct {
			rect geom.Rect
			id   int
		}
		var live []item
		nextID := 0
		for op := 0; op < 1200; op++ {
			if len(live) == 0 || r.Float64() < 0.6 {
				it := item{rect: randRect(r, d, 6), id: nextID}
				nextID++
				tr.Insert(it.rect, it.id)
				live = append(live, it)
			} else {
				k := r.Intn(len(live))
				it := live[k]
				if !tr.Delete(it.rect, it.id) {
					t.Fatalf("trial %d op %d: delete of live item failed", trial, op)
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if tr.Len() != len(live) {
				t.Fatalf("trial %d op %d: Len=%d shadow=%d", trial, op, tr.Len(), len(live))
			}
			if op%100 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("trial %d final: %v", trial, err)
		}
		// Final consistency: search everything, compare ids.
		w := geom.NewRect(make(geom.Point, d), make(geom.Point, d))
		for i := 0; i < d; i++ {
			w.Min[i], w.Max[i] = -1e9, 1e9
		}
		got := sortedInts(tr.Search(w, nil))
		want := make([]int, len(live))
		for i, it := range live {
			want[i] = it.id
		}
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: final contents mismatch: got %d items want %d", trial, len(got), len(want))
		}
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := New(2)
	rects := make([]geom.Rect, 200)
	for i := range rects {
		rects[i] = geom.PointRect(geom.Point{float64(i), float64(-i)})
		tr.Insert(rects[i], i)
	}
	for i := range rects {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree is reusable after full drain.
	tr.Insert(rects[0], 0)
	if got := tr.Search(geom.EpsBox(geom.Point{0, 0}, 1), nil); len(got) != 1 {
		t.Fatalf("post-drain insert lost: %v", got)
	}
}

func TestDuplicateRects(t *testing.T) {
	tr := New(2)
	r1 := geom.PointRect(geom.Point{3, 3})
	tr.Insert(r1, 1)
	tr.Insert(r1, 2)
	tr.Insert(r1, 3)
	got := sortedInts(tr.Search(r1, nil))
	if !equalInts(got, []int{1, 2, 3}) {
		t.Fatalf("dup search = %v", got)
	}
	// Delete must remove exactly the entry with matching data.
	if !tr.Delete(r1, 2) {
		t.Fatal("delete dup failed")
	}
	got = sortedInts(tr.Search(r1, nil))
	if !equalInts(got, []int{1, 3}) {
		t.Fatalf("post-dup-delete search = %v", got)
	}
}

func TestFanoutValidation(t *testing.T) {
	for _, bad := range [][2]int{{1, 16}, {9, 16}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fanout %v accepted", bad)
				}
			}()
			NewWithFanout(2, bad[0], bad[1])
		}()
	}
	// Small legal fanout exercises deep trees.
	tr := NewWithFanout(2, 2, 4)
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		tr.Insert(randRect(r, 2, 5), i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 4 {
		t.Fatalf("expected deep tree, height=%d", tr.Height())
	}
}

func BenchmarkInsert10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rects := make([]geom.Rect, 10000)
	for i := range rects {
		rects[i] = randRect(r, 2, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(2)
		for j, rc := range rects {
			tr.Insert(rc, j)
		}
	}
}

func BenchmarkSearch10k(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	tr := New(2)
	for i := 0; i < 10000; i++ {
		tr.Insert(randRect(r, 2, 2), i)
	}
	w := geom.NewRect(geom.Point{40, 40}, geom.Point{60, 60})
	var buf []any
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf = tr.Search(w, buf)
	}
	_ = buf
}
