// Package rtree implements an in-memory R-tree (Guttman, SIGMOD 1984)
// with quadratic split, full deletion (condense-tree with reinsertion),
// and window (range) queries.
//
// The paper uses two such indexes:
//
//   - Groups_IX — SGB-All's on-the-fly index over the ε-All bounding
//     rectangles of the discovered groups (Procedure 5, Figure 6);
//     rectangles shrink as members join, so the index must support
//     delete + reinsert.
//   - Points_IX — SGB-Any's index over the processed points
//     (Procedure 8, Figure 8a).
//
// Invariants:
//
//   - Every node except the root holds between min and max entries
//     (CheckInvariants verifies this, along with MBR containment and
//     uniform leaf depth).
//   - Window queries return every stored rectangle intersecting the
//     window; the SGB finders treat hits as candidates and verify
//     exactly, so a coarser-than-true stored rectangle is safe — the
//     hysteresis maintenance in internal/core depends on that.
//
// The tree stores opaque references (Data) with their rectangles; it is
// not safe for concurrent mutation.
package rtree
