package rtree

import (
	"fmt"

	"github.com/sgb-db/sgb/internal/geom"
)

// Default fanout bounds. Guttman's m ≤ M/2 invariant holds.
const (
	DefaultMaxEntries = 16
	DefaultMinEntries = 4
)

// entry is either a leaf entry (child == nil, Data set) or an inner
// entry (child set) whose rect tightly bounds the child subtree.
type entry struct {
	rect  geom.Rect
	child *node
	data  any
}

type node struct {
	leaf    bool
	entries []entry
	parent  *node
	// index of this node's entry within parent.entries; maintained on
	// every mutation so that upward traversals are O(height).
	parentIdx int
}

// Tree is an R-tree over d-dimensional rectangles.
type Tree struct {
	root       *node
	dims       int
	size       int
	maxEntries int
	minEntries int
}

// New returns an empty R-tree for dims-dimensional data with default
// fanout (m=4, M=16).
func New(dims int) *Tree {
	return NewWithFanout(dims, DefaultMinEntries, DefaultMaxEntries)
}

// NewWithFanout returns an empty R-tree with the given fanout bounds.
// It panics unless 2 ≤ min ≤ max/2 (Guttman's requirement).
func NewWithFanout(dims, min, max int) *Tree {
	if dims < 1 {
		panic("rtree: dims must be >= 1")
	}
	if min < 2 || min > max/2 {
		panic(fmt.Sprintf("rtree: invalid fanout min=%d max=%d", min, max))
	}
	return &Tree{
		root:       &node{leaf: true},
		dims:       dims,
		maxEntries: max,
		minEntries: min,
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Insert adds data with bounding rectangle r.
func (t *Tree) Insert(r geom.Rect, data any) {
	if r.Dims() != t.dims {
		panic("rtree: rect dimensionality mismatch")
	}
	e := entry{rect: r.Clone(), data: data}
	leaf := t.chooseLeaf(t.root, e.rect)
	leaf.entries = append(leaf.entries, e)
	t.size++
	t.adjustUpward(leaf)
}

// chooseLeaf descends from n to the leaf whose bounding rectangle needs
// the least area enlargement to include r (ties by smallest area).
func (t *Tree) chooseLeaf(n *node, r geom.Rect) *node {
	for !n.leaf {
		bestIdx := -1
		var bestEnl, bestArea float64
		for i := range n.entries {
			enl := n.entries[i].rect.EnlargementArea(r)
			area := n.entries[i].rect.Area()
			if bestIdx == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				bestIdx, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[bestIdx].child
	}
	return n
}

// adjustUpward fixes bounding rectangles from n to the root, splitting
// overfull nodes on the way (Guttman's AdjustTree).
func (t *Tree) adjustUpward(n *node) {
	for n != nil {
		if len(n.entries) > t.maxEntries {
			left, right := t.splitNode(n)
			if n == t.root {
				newRoot := &node{leaf: false}
				attach(newRoot, left)
				attach(newRoot, right)
				t.root = newRoot
				return
			}
			parent := n.parent
			// Replace n's entry with left, append right.
			parent.entries[n.parentIdx] = entry{rect: mbr(left), child: left}
			left.parent, left.parentIdx = parent, n.parentIdx
			attach(parent, right)
			n = parent
			continue
		}
		if n.parent != nil && !refreshMBR(n) {
			// This node's bounding rectangle is unchanged, so every
			// ancestor rectangle is unchanged too.
			return
		}
		n = n.parent
	}
}

// refreshMBR recomputes n's bounding rectangle in its parent entry in
// place (the entry owns its rect) and reports whether it changed.
func refreshMBR(n *node) bool {
	e := &n.parent.entries[n.parentIdx]
	changed := false
	for d := range e.rect.Min {
		lo := n.entries[0].rect.Min[d]
		hi := n.entries[0].rect.Max[d]
		for i := 1; i < len(n.entries); i++ {
			if v := n.entries[i].rect.Min[d]; v < lo {
				lo = v
			}
			if v := n.entries[i].rect.Max[d]; v > hi {
				hi = v
			}
		}
		if e.rect.Min[d] != lo {
			e.rect.Min[d] = lo
			changed = true
		}
		if e.rect.Max[d] != hi {
			e.rect.Max[d] = hi
			changed = true
		}
	}
	return changed
}

// attach appends child as an entry of parent, wiring parent links.
func attach(parent, child *node) {
	child.parent = parent
	child.parentIdx = len(parent.entries)
	parent.entries = append(parent.entries, entry{rect: mbr(child), child: child})
}

// mbr computes the minimum bounding rectangle of a node's entries.
func mbr(n *node) geom.Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r.Extend(e.rect)
	}
	return r
}

// splitNode performs Guttman's linear split (linear-cost PickSeeds,
// least-enlargement distribution), distributing n's entries into two
// new nodes. Linear split keeps insert cost low — the on-the-fly index
// is rebuilt per query in SGB workloads, so insert throughput matters
// more than a marginally tighter packing.
func (t *Tree) splitNode(n *node) (*node, *node) {
	entries := n.entries
	dims := entries[0].rect.Dims()

	// Linear PickSeeds: in each dimension find the entry with the
	// highest low side and the one with the lowest high side; take the
	// dimension with the greatest separation normalized by total width.
	seedA, seedB := 0, 1
	bestSep := -1.0
	for d := 0; d < dims; d++ {
		highestLow, lowestHigh := 0, 0
		lo, hi := entries[0].rect.Min[d], entries[0].rect.Max[d]
		for i, e := range entries {
			if e.rect.Min[d] > entries[highestLow].rect.Min[d] {
				highestLow = i
			}
			if e.rect.Max[d] < entries[lowestHigh].rect.Max[d] {
				lowestHigh = i
			}
			if e.rect.Min[d] < lo {
				lo = e.rect.Min[d]
			}
			if e.rect.Max[d] > hi {
				hi = e.rect.Max[d]
			}
		}
		width := hi - lo
		if width <= 0 || highestLow == lowestHigh {
			continue
		}
		sep := (entries[highestLow].rect.Min[d] - entries[lowestHigh].rect.Max[d]) / width
		if sep > bestSep {
			bestSep, seedA, seedB = sep, lowestHigh, highestLow
		}
	}
	if seedA == seedB { // all rects identical; any distinct pair works
		seedB = (seedA + 1) % len(entries)
	}

	left := &node{leaf: n.leaf}
	right := &node{leaf: n.leaf}
	leftRect := entries[seedA].rect.Clone()
	rightRect := entries[seedB].rect.Clone()
	addEntry(left, entries[seedA])
	addEntry(right, entries[seedB])

	rem := len(entries) - 2 // unassigned entries, including the current one
	for i, e := range entries {
		if i == seedA || i == seedB {
			continue
		}
		// Force assignment when a side must absorb every remaining
		// entry to reach the minimum fill.
		switch {
		case len(left.entries)+rem == t.minEntries:
			addEntry(left, e)
			leftRect.Extend(e.rect)
		case len(right.entries)+rem == t.minEntries:
			addEntry(right, e)
			rightRect.Extend(e.rect)
		default:
			d1 := leftRect.EnlargementArea(e.rect)
			d2 := rightRect.EnlargementArea(e.rect)
			takeLeft := d1 < d2
			if d1 == d2 {
				takeLeft = leftRect.Area() < rightRect.Area() ||
					(leftRect.Area() == rightRect.Area() && len(left.entries) <= len(right.entries))
			}
			if takeLeft {
				addEntry(left, e)
				leftRect.Extend(e.rect)
			} else {
				addEntry(right, e)
				rightRect.Extend(e.rect)
			}
		}
		rem--
	}
	return left, right
}

// addEntry appends e to n, wiring the child's parent link for inner nodes.
func addEntry(n *node, e entry) {
	if e.child != nil {
		e.child.parent = n
		e.child.parentIdx = len(n.entries)
	}
	n.entries = append(n.entries, e)
}

// removeEntryAt deletes entry i from n, keeping parentIdx links correct.
func removeEntryAt(n *node, i int) {
	last := len(n.entries) - 1
	if i != last {
		n.entries[i] = n.entries[last]
		if c := n.entries[i].child; c != nil {
			c.parentIdx = i
		}
	}
	n.entries = n.entries[:last]
}

// Delete removes the entry whose rectangle equals r and whose data
// compares equal (==) to data. It reports whether an entry was removed.
func (t *Tree) Delete(r geom.Rect, data any) bool {
	leaf, idx := t.findLeaf(t.root, r, data)
	if leaf == nil {
		return false
	}
	removeEntryAt(leaf, idx)
	t.size--
	t.condenseTree(leaf)
	// Shrink the root: if it has a single inner child, promote it.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	return true
}

// findLeaf locates the leaf and entry index holding (r, data).
func (t *Tree) findLeaf(n *node, r geom.Rect, data any) (*node, int) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].data == data && rectsEqual(n.entries[i].rect, r) {
				return n, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].rect.ContainsRect(r) {
			if leaf, idx := t.findLeaf(n.entries[i].child, r, data); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, -1
}

func rectsEqual(a, b geom.Rect) bool {
	return a.Min.Equal(b.Min) && a.Max.Equal(b.Max)
}

// condenseTree implements Guttman's CondenseTree: underfull nodes on the
// path from leaf to root are removed and their surviving entries
// reinserted at the appropriate level.
func (t *Tree) condenseTree(n *node) {
	type orphan struct {
		e      entry
		isLeaf bool
	}
	var orphans []orphan
	for n != t.root {
		parent := n.parent
		if len(n.entries) < t.minEntries {
			removeEntryAt(parent, n.parentIdx)
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, isLeaf: n.leaf})
			}
		} else {
			parent.entries[n.parentIdx].rect = mbr(n)
		}
		n = parent
	}
	// Reinsert orphans. Leaf entries reinsert normally; subtree entries
	// reinsert all their leaf descendants (simple and correct; deletions
	// are rare relative to queries in SGB workloads).
	for _, o := range orphans {
		if o.isLeaf {
			t.size--
			t.Insert(o.e.rect, o.e.data)
		} else {
			t.reinsertSubtree(o.e.child)
		}
	}
}

func (t *Tree) reinsertSubtree(n *node) {
	if n.leaf {
		for _, e := range n.entries {
			t.size--
			t.Insert(e.rect, e.data)
		}
		return
	}
	for _, e := range n.entries {
		t.reinsertSubtree(e.child)
	}
}

// Search appends to out the data of every entry whose rectangle
// intersects window, and returns out. This is the WindowQuery of
// Procedures 5 and 8.
func (t *Tree) Search(window geom.Rect, out []any) []any {
	return t.search(t.root, window, out)
}

func (t *Tree) search(n *node, w geom.Rect, out []any) []any {
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(w) {
			continue
		}
		if n.leaf {
			out = append(out, n.entries[i].data)
		} else {
			out = t.search(n.entries[i].child, w, out)
		}
	}
	return out
}

// Visit calls fn for every entry whose rectangle intersects window,
// stopping early if fn returns false. Allocation-free alternative to
// Search for hot paths.
func (t *Tree) Visit(window geom.Rect, fn func(r geom.Rect, data any) bool) {
	t.visit(t.root, window, fn)
}

func (t *Tree) visit(n *node, w geom.Rect, fn func(geom.Rect, any) bool) bool {
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(w) {
			continue
		}
		if n.leaf {
			if !fn(n.entries[i].rect, n.entries[i].data) {
				return false
			}
		} else if !t.visit(n.entries[i].child, w, fn) {
			return false
		}
	}
	return true
}

// All appends every stored data value to out and returns it.
func (t *Tree) All(out []any) []any {
	return t.all(t.root, out)
}

func (t *Tree) all(n *node, out []any) []any {
	for i := range n.entries {
		if n.leaf {
			out = append(out, n.entries[i].data)
		} else {
			out = t.all(n.entries[i].child, out)
		}
	}
	return out
}

// Height returns the height of the tree (1 for a lone leaf root).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// CheckInvariants validates structural invariants (fanout bounds, tight
// MBRs, parent links); it is used by tests and returns a descriptive
// error, or nil when the tree is well-formed.
func (t *Tree) CheckInvariants() error {
	var walk func(n *node, depth int, isRoot bool) (int, error)
	walk = func(n *node, depth int, isRoot bool) (int, error) {
		if !isRoot && len(n.entries) < t.minEntries {
			return 0, fmt.Errorf("rtree: underfull node at depth %d: %d entries", depth, len(n.entries))
		}
		if len(n.entries) > t.maxEntries {
			return 0, fmt.Errorf("rtree: overfull node at depth %d: %d entries", depth, len(n.entries))
		}
		if n.leaf {
			return len(n.entries), nil
		}
		total := 0
		for i := range n.entries {
			c := n.entries[i].child
			if c == nil {
				return 0, fmt.Errorf("rtree: inner entry without child at depth %d", depth)
			}
			if c.parent != n || c.parentIdx != i {
				return 0, fmt.Errorf("rtree: broken parent link at depth %d entry %d", depth, i)
			}
			want := mbr(c)
			if !rectsEqual(n.entries[i].rect, want) {
				return 0, fmt.Errorf("rtree: stale MBR at depth %d entry %d: have %v want %v",
					depth, i, n.entries[i].rect, want)
			}
			cnt, err := walk(c, depth+1, false)
			if err != nil {
				return 0, err
			}
			total += cnt
		}
		return total, nil
	}
	cnt, err := walk(t.root, 0, true)
	if err != nil {
		return err
	}
	if cnt != t.size {
		return fmt.Errorf("rtree: size mismatch: counted %d, recorded %d", cnt, t.size)
	}
	return nil
}
