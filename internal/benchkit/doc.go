// Package benchkit is the experiment harness that regenerates every
// table and figure of the paper's evaluation (Section 8). Each
// experiment prints the same rows/series the paper reports —
// runtimes per similarity threshold, per data size, per method —
// as aligned text tables. The cmd/sgbbench binary and the root
// bench_test.go both drive this package.
//
// Experiments beyond the paper's set cover the growth work recorded in
// ROADMAP.md: the "scaling" experiment sweeps the parallel pipeline's
// worker counts, and the strategy comparisons pin Parallelism = 1 so
// that a named strategy measures its own evaluation shape rather than
// the auto-parallel default. Experiments that compare strategies also
// cross-check group counts between runs, so a reported speedup can
// never come from a diverged grouping.
package benchkit
