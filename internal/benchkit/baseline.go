package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// Machine-readable performance baselines: each PR that touches the hot
// path records a BENCH_<n>.json snapshot at the repo root (sgbbench
// -baseline), so the perf trajectory across the stacked PRs is data,
// not folklore. The entries cover the three benchmark families the CI
// smoke job runs — the strategy duel on the Fig9a workload, the worker
// sweep, and the incremental-append cost.

// BaselineEntry is one measured series point.
type BaselineEntry struct {
	// Family is the benchmark family ("grid", "scaling", "incremental").
	Family string `json:"family"`
	// Series names the measured configuration within the family.
	Series string `json:"series"`
	// N is the input size in points.
	N int `json:"n"`
	// Eps is the similarity threshold of the run.
	Eps float64 `json:"eps"`
	// Millis is the best-of-three wall time in milliseconds.
	Millis float64 `json:"ms"`
	// Groups is the output group count (a correctness fingerprint: two
	// baselines for one seed must agree).
	Groups int `json:"groups"`
}

// Baseline is the full snapshot written by WriteBaseline.
type Baseline struct {
	// CreatedUnix is the recording time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// GoOS / GoArch / CPUs describe the recording machine.
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// Entries holds the measured series points.
	Entries []BaselineEntry `json:"entries"`
}

// WriteBaseline measures the baseline workloads and writes the
// snapshot as indented JSON. Scale and Seed from cfg apply as in every
// experiment; timings are best-of-three to damp scheduler noise.
func WriteBaseline(w io.Writer, cfg Config) error {
	n := cfg.scaled(4000)
	pts := uniformPoints(n, 10, cfg.Seed)
	b := &Baseline{
		CreatedUnix: time.Now().Unix(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
	}

	// Family "grid": the Fig9a-workload strategy duel (sequential).
	const eps = 0.5
	for _, alg := range []struct {
		name string
		a    core.Algorithm
	}{{"All/Index", core.OnTheFlyIndex}, {"All/Grid", core.GridIndex}} {
		d, g, err := bestOf3(func() (time.Duration, int, error) { return timeSGBAll(pts, alg.a, core.JoinAny, eps) })
		if err != nil {
			return err
		}
		b.Entries = append(b.Entries, BaselineEntry{Family: "grid", Series: alg.name, N: n, Eps: eps, Millis: millis(d), Groups: g})
	}
	for _, alg := range []struct {
		name string
		a    core.Algorithm
	}{{"Any/Index", core.OnTheFlyIndex}, {"Any/Grid", core.GridIndex}} {
		d, g, err := bestOf3(func() (time.Duration, int, error) { return timeSGBAny(pts, alg.a, eps) })
		if err != nil {
			return err
		}
		b.Entries = append(b.Entries, BaselineEntry{Family: "grid", Series: alg.name, N: n, Eps: eps, Millis: millis(d), Groups: g})
	}

	// Family "scaling": the worker sweep at the scaling experiment's
	// workload.
	spts := uniformPoints(cfg.scaled(8000), 10, cfg.Seed+3)
	for _, w := range workerSweep {
		for _, anySem := range []bool{false, true} {
			series := "All"
			if anySem {
				series = "Any"
			}
			d, g, err := bestOf3(func() (time.Duration, int, error) { return timeParallel(spts, eps, w, anySem) })
			if err != nil {
				return err
			}
			b.Entries = append(b.Entries, BaselineEntry{
				Family: "scaling", Series: seriesName(series, w), N: len(spts), Eps: eps, Millis: millis(d), Groups: g,
			})
		}
	}

	// Family "incremental": appending one 256-point batch to a retained
	// base versus regrouping from scratch (SGB-Any, grid).
	base := cfg.scaled(8000)
	basePts := uniformPoints(base, 10, cfg.Seed+7)
	batch := uniformPoints(256, 10, cfg.Seed+8)
	d, g, err := bestOf3(func() (time.Duration, int, error) { return timeIncrAppend(basePts, batch, eps) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "incremental", Series: "Any/Append", N: base, Eps: eps, Millis: millis(d), Groups: g})
	all := append(append([]geom.Point(nil), basePts...), batch...)
	d, g, err = bestOf3(func() (time.Duration, int, error) { return timeSGBAny(all, core.GridIndex, eps) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "incremental", Series: "Any/Oneshot", N: base, Eps: eps, Millis: millis(d), Groups: g})

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// timeIncrAppend measures one 256-point append against a preloaded
// incremental SGB-Any evaluator (construction excluded from timing).
func timeIncrAppend(base, batch []geom.Point, eps float64) (time.Duration, int, error) {
	opt := core.Options{Metric: geom.L2, Eps: eps, Algorithm: core.GridIndex, Seed: 1, Parallelism: 1}
	ev, err := core.NewAnyEvaluator(len(base[0]), opt)
	if err != nil {
		return 0, 0, err
	}
	if err := ev.Append(geom.FromPoints(base)); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := ev.Append(geom.FromPoints(batch)); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	return elapsed, len(ev.Result().Groups), nil
}

// bestOf3 runs fn three times and keeps the fastest result.
func bestOf3(fn func() (time.Duration, int, error)) (time.Duration, int, error) {
	var best time.Duration
	var groups int
	for i := 0; i < 3; i++ {
		d, g, err := fn()
		if err != nil {
			return 0, 0, err
		}
		if i == 0 || d < best {
			best, groups = d, g
		}
	}
	return best, groups, nil
}

func millis(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func seriesName(sem string, workers int) string {
	return fmt.Sprintf("%s/w=%d", sem, workers)
}
