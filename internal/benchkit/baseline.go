package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// Machine-readable performance baselines: each PR that touches the hot
// path records a BENCH_<n>.json snapshot at the repo root (sgbbench
// -baseline), so the perf trajectory across the stacked PRs is data,
// not folklore. The entries cover the three benchmark families the CI
// smoke job runs — the strategy duel on the Fig9a workload, the worker
// sweep, and the incremental-append cost.

// BaselineEntry is one measured series point.
type BaselineEntry struct {
	// Family is the benchmark family ("grid", "scaling", "incremental",
	// "window", "sweep", "recovery", "serve").
	Family string `json:"family"`
	// Series names the measured configuration within the family.
	Series string `json:"series"`
	// N is the input size in points.
	N int `json:"n"`
	// Eps is the similarity threshold of the run.
	Eps float64 `json:"eps"`
	// Millis is the best-of-three wall time in milliseconds.
	Millis float64 `json:"ms"`
	// Groups is the output group count (a correctness fingerprint: two
	// baselines for one seed must agree).
	Groups int `json:"groups"`
	// Oversubscribed marks scaling entries whose worker count exceeds
	// the schedulable CPUs of the recording machine (gomaxprocs):
	// the workers time-slice one core, so the entry measures sharding
	// overhead, not scaling — comparisons across baselines must skip it.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
	// Phases breaks a parallel SGB-All scaling entry into its pipeline
	// phases (from the fastest timed run).
	Phases *PhaseMillis `json:"phase_ms,omitempty"`
	// P50Millis / P99Millis / Throughput are the serve family's
	// request-latency percentiles and requests-per-second; for serve
	// entries Millis holds the whole run's wall time and N the total
	// requests served. Oversubscribed marks connection counts above
	// gomaxprocs, as in the scaling family.
	P50Millis  float64 `json:"p50_ms,omitempty"`
	P99Millis  float64 `json:"p99_ms,omitempty"`
	Throughput float64 `json:"req_per_sec,omitempty"`
}

// PhaseMillis is the per-phase wall time of one parallel SGB-All run.
type PhaseMillis struct {
	Partition float64 `json:"partition"`
	Connect   float64 `json:"connect"`
	Arbitrate float64 `json:"arbitrate"`
	Merge     float64 `json:"merge"`
}

// Baseline is the full snapshot written by WriteBaseline.
type Baseline struct {
	// CreatedUnix is the recording time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// GoOS / GoArch / CPUs describe the recording machine; GoMaxProcs
	// is the schedulable-CPU limit the run saw (≤ CPUs under cgroup or
	// GOMAXPROCS caps), the bound that decides oversubscription.
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Entries holds the measured series points.
	Entries []BaselineEntry `json:"entries"`
}

// WriteBaseline measures the baseline workloads and writes the
// snapshot as indented JSON. Scale and Seed from cfg apply as in every
// experiment; timings are best-of-three to damp scheduler noise.
func WriteBaseline(w io.Writer, cfg Config) error {
	n := cfg.scaled(4000)
	pts := uniformPoints(n, 10, cfg.Seed)
	b := &Baseline{
		CreatedUnix: time.Now().Unix(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	// Family "grid": the Fig9a-workload strategy duel (sequential).
	const eps = 0.5
	for _, alg := range []struct {
		name string
		a    core.Algorithm
	}{{"All/Index", core.OnTheFlyIndex}, {"All/Grid", core.GridIndex}} {
		d, g, err := bestOf3(func() (time.Duration, int, error) { return timeSGBAll(pts, alg.a, core.JoinAny, eps) })
		if err != nil {
			return err
		}
		b.Entries = append(b.Entries, BaselineEntry{Family: "grid", Series: alg.name, N: n, Eps: eps, Millis: millis(d), Groups: g})
	}
	for _, alg := range []struct {
		name string
		a    core.Algorithm
	}{{"Any/Index", core.OnTheFlyIndex}, {"Any/Grid", core.GridIndex}} {
		d, g, err := bestOf3(func() (time.Duration, int, error) { return timeSGBAny(pts, alg.a, eps) })
		if err != nil {
			return err
		}
		b.Entries = append(b.Entries, BaselineEntry{Family: "grid", Series: alg.name, N: n, Eps: eps, Millis: millis(d), Groups: g})
	}

	// Family "scaling": the worker sweep at the scaling experiment's
	// workload.
	spts := uniformPoints(cfg.scaled(8000), 10, cfg.Seed+3)
	for _, w := range workerSweep {
		for _, anySem := range []bool{false, true} {
			series := "All"
			if anySem {
				series = "Any"
			}
			var best core.Stats
			var bestD time.Duration
			d, g, err := bestOf3(func() (time.Duration, int, error) {
				var st core.Stats
				d, g, err := timeParallel(spts, eps, w, anySem, &st)
				if err == nil && (bestD == 0 || d < bestD) {
					bestD, best = d, st
				}
				return d, g, err
			})
			if err != nil {
				return err
			}
			entry := BaselineEntry{
				Family: "scaling", Series: seriesName(series, w), N: len(spts), Eps: eps, Millis: millis(d), Groups: g,
				Oversubscribed: w > b.GoMaxProcs,
			}
			if !anySem && w > 1 {
				entry.Phases = &PhaseMillis{
					Partition: float64(best.PartitionNanos) / 1e6,
					Connect:   float64(best.ConnectNanos) / 1e6,
					Arbitrate: float64(best.ArbitrateNanos) / 1e6,
					Merge:     float64(best.MergeNanos) / 1e6,
				}
			}
			b.Entries = append(b.Entries, entry)
		}
	}

	// Family "incremental": appending one 256-point batch to a retained
	// base versus regrouping from scratch (SGB-Any, grid).
	base := cfg.scaled(8000)
	basePts := uniformPoints(base, 10, cfg.Seed+7)
	batch := uniformPoints(256, 10, cfg.Seed+8)
	d, g, err := bestOf3(func() (time.Duration, int, error) { return timeIncrAppend(basePts, batch, eps) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "incremental", Series: "Any/Append", N: base, Eps: eps, Millis: millis(d), Groups: g})
	all := append(append([]geom.Point(nil), basePts...), batch...)
	d, g, err = bestOf3(func() (time.Duration, int, error) { return timeSGBAny(all, core.GridIndex, eps) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "incremental", Series: "Any/Oneshot", N: base, Eps: eps, Millis: millis(d), Groups: g})

	// Family "window": one steady-state sliding-window tick (append a
	// 256-point batch, evict oldest-first back to the window size, read
	// the grouping) versus regrouping the window from scratch — the
	// decremental SGB-Any maintenance path over a cluster-structured
	// workload.
	wsize := cfg.scaled(8000)
	d, g, err = bestOf3(func() (time.Duration, int, error) { return timeWindowTick(wsize, eps, cfg.Seed+9, true) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "window", Series: "Any/Maintained", N: wsize, Eps: eps, Millis: millis(d), Groups: g})
	d, g, err = bestOf3(func() (time.Duration, int, error) { return timeWindowTick(wsize, eps, cfg.Seed+9, false) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "window", Series: "Any/Oneshot", N: wsize, Eps: eps, Millis: millis(d), Groups: g})

	// Family "sweep": k-level ε-lattice sweep versus k one-shot runs.
	if err := appendSweepFamily(b, cfg); err != nil {
		return err
	}

	// Family "recovery": crash-restart to first grouping answer — warm
	// (checkpoint + WAL tail + revived evaluator) versus cold (full WAL
	// replay + regroup from scratch) on one prepared directory.
	rn := cfg.scaled(32000)
	rdir, err := os.MkdirTemp("", "sgb-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(rdir)
	query, err := SetupRecoveryDir(rdir, rn, cfg.Seed+11)
	if err != nil {
		return err
	}
	coldDir := filepath.Join(rdir, "cold")
	if err := copyDir(rdir, coldDir); err != nil {
		return err
	}
	if err := StripSnapshots(coldDir); err != nil {
		return err
	}
	d, g, err = bestOf3(func() (time.Duration, int, error) { return TimeRecovery(rdir, query) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "recovery", Series: "Warm/SnapshotTail", N: rn, Eps: 0.5, Millis: millis(d), Groups: g})
	d, g, err = bestOf3(func() (time.Duration, int, error) { return TimeRecovery(coldDir, query) })
	if err != nil {
		return err
	}
	b.Entries = append(b.Entries, BaselineEntry{Family: "recovery", Series: "Cold/FullReplay", N: rn, Eps: 0.5, Millis: millis(d), Groups: g})

	// Family "serve": concurrent wire-protocol serving — p50/p99 request
	// latency and throughput over a fixed request budget at each
	// connection count, read-mostly and mixed. Not best-of-three: one
	// run per configuration already aggregates hundreds of requests.
	sn, sreq := cfg.scaled(2000), cfg.scaled(512)
	for _, mixed := range []bool{false, true} {
		for _, conns := range serveConnSweep {
			res, err := RunServeLoad(sn, conns, sreq, mixed, cfg.Seed+13)
			if err != nil {
				return err
			}
			series := "Read"
			if mixed {
				series = "Mixed"
			}
			b.Entries = append(b.Entries, BaselineEntry{
				Family: "serve", Series: fmt.Sprintf("%s/c=%d", series, conns),
				N: res.Requests, Eps: 0.5, Millis: millis(res.Wall), Groups: res.Groups,
				Oversubscribed: conns > b.GoMaxProcs,
				P50Millis:      millis(res.P50), P99Millis: millis(res.P99),
				Throughput: res.Throughput,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ClusterPoints draws n points in 16-point clusters of ~1.2 extent
// around random centers on a span × span domain — the spatially
// localized workload (MANET traces, geosocial check-ins) the sliding
// window targets. Both BenchmarkWindow and the "window" baseline
// family draw from this one generator so they measure the same
// workload; keep the span subcritical relative to ε (cluster-graph
// degree well under 1) for components to stay bounded.
func ClusterPoints(n int, span float64, seed int64) *geom.PointSet {
	r := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(2)
	for j := 0; j < n; {
		cx, cy := r.Float64()*span, r.Float64()*span
		for k := 0; k < 16 && j < n; k++ {
			p := ps.Extend()
			p[0], p[1] = cx+r.Float64()*1.2, cy+r.Float64()*1.2
			j++
		}
	}
	return ps
}

// clusterSpan is the subcritical domain side for an n-point
// ClusterPoints workload at ε = 0.5.
func clusterSpan(n int) float64 { return 2.5 * math.Sqrt(float64(n)) }

// timeWindowTick measures one steady-state window tick at the given
// live size: maintained (incremental append + decremental eviction +
// Result) or one-shot (regroup the slid window from scratch). Handle
// construction and warm-up ticks are excluded from timing.
func timeWindowTick(window int, eps float64, seed int64, maintained bool) (time.Duration, int, error) {
	const batch = 256
	opt := core.Options{Metric: geom.L2, Eps: eps, Algorithm: core.GridIndex, Seed: 1, Parallelism: 1}
	batches := make([]*geom.PointSet, 4)
	for i := range batches {
		batches[i] = ClusterPoints(batch, clusterSpan(window), seed+int64(i)+1)
	}
	if maintained {
		ev, err := core.NewAnyEvaluator(2, opt)
		if err != nil {
			return 0, 0, err
		}
		if err := ev.Append(ClusterPoints(window, clusterSpan(window), seed)); err != nil {
			return 0, 0, err
		}
		evict := func() error {
			over := ev.Len() - window
			ids := make([]int, over)
			for i := range ids {
				ids[i] = i
			}
			return ev.Remove(ids)
		}
		// Warm-up tick so the measured one runs against churned state.
		if err := ev.Append(batches[0]); err != nil {
			return 0, 0, err
		}
		if err := evict(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if err := ev.Append(batches[1]); err != nil {
			return 0, 0, err
		}
		if err := evict(); err != nil {
			return 0, 0, err
		}
		groups := len(ev.Result().Groups)
		return time.Since(start), groups, nil
	}
	win := ClusterPoints(window, clusterSpan(window), seed)
	win.AppendSet(batches[0])
	win = win.Slice(batch, win.Len())
	start := time.Now()
	win.AppendSet(batches[1])
	win = win.Slice(batch, win.Len())
	res, err := core.SGBAnySet(win, opt)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), len(res.Groups), nil
}

// timeIncrAppend measures one 256-point append against a preloaded
// incremental SGB-Any evaluator (construction excluded from timing).
func timeIncrAppend(base, batch []geom.Point, eps float64) (time.Duration, int, error) {
	opt := core.Options{Metric: geom.L2, Eps: eps, Algorithm: core.GridIndex, Seed: 1, Parallelism: 1}
	ev, err := core.NewAnyEvaluator(len(base[0]), opt)
	if err != nil {
		return 0, 0, err
	}
	if err := ev.Append(geom.FromPoints(base)); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := ev.Append(geom.FromPoints(batch)); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	return elapsed, len(ev.Result().Groups), nil
}

// bestOf3 runs fn three times and keeps the fastest result.
func bestOf3(fn func() (time.Duration, int, error)) (time.Duration, int, error) {
	var best time.Duration
	var groups int
	for i := 0; i < 3; i++ {
		d, g, err := fn()
		if err != nil {
			return 0, 0, err
		}
		if i == 0 || d < best {
			best, groups = d, g
		}
	}
	return best, groups, nil
}

func millis(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func seriesName(sem string, workers int) string {
	return fmt.Sprintf("%s/w=%d", sem, workers)
}
