package benchkit

import (
	"fmt"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/tpch"
)

// Figure 12: the overhead of SGB over the traditional GROUP BY inside
// the full SQL pipeline, across data sizes (ε = 0.2-scaled to the
// grouping-attribute ranges). 12a pits GB2 (TPC-H Q9) against
// SGB3/SGB4; 12b pits GB3 (Q15) against SGB5/SGB6. The paper reports
// JOIN-ANY at or below GROUP BY cost, ELIMINATE ≈ +15 %, FORM-NEW-GROUP
// ≈ +40 %, SGB-Any ≈ +20 %.

func init() {
	register(Experiment{
		ID:    "fig12a",
		Title: "GB2 (Q9) vs SGB3 (DISTANCE-ALL) and SGB4 (DISTANCE-ANY), size sweep",
		Expect: "SGB variants comparable to GROUP BY: JOIN-ANY ≈/faster, " +
			"ELIMINATE ≈ +15%, FORM-NEW ≈ +40%, Any ≈ +20%",
		Run: func(cfg Config) error { return runFig12(cfg, "fig12a") },
	})
	register(Experiment{
		ID:     "fig12b",
		Title:  "GB3 (Q15) vs SGB5 (DISTANCE-ALL) and SGB6 (DISTANCE-ANY), size sweep",
		Expect: "same overhead ordering as fig12a on the supplier-revenue workload",
		Run:    func(cfg Config) error { return runFig12(cfg, "fig12b") },
	})
}

func runFig12(cfg Config, id string) error {
	e, _ := Find(id)
	header(cfg, e)

	sfs := []float64{0.5 * cfg.Scale, 1 * cfg.Scale, 2 * cfg.Scale}
	// Two baselines: the paper's business-question GROUP BY query (GB2
	// or GB3), and the SGB query's own pipeline under standard GROUP BY
	// — the like-for-like baseline the overhead percentages use (the
	// queries differ in join shape, so comparing across them measures
	// the pipelines, not the grouping operator).
	t := newTable(cfg.Out, "SF", "rows(lineitem)", "GBq(ms)", "same-pipeline GBY(ms)",
		"join-any(ms)", "eliminate(ms)", "form-new(ms)", "any(ms)",
		"ovh join-any", "ovh eliminate", "ovh form-new", "ovh any")

	for _, sf := range sfs {
		cat := storage.NewCatalog()
		ds := tpch.Generate(tpch.ScaleRows(sf))
		if err := ds.Install(cat); err != nil {
			return err
		}

		var gbSQL, baseSQL, sgbAny string
		var sgbAll func(overlap string) string
		if id == "fig12a" {
			// Profit/shipment grouping attributes span ~1e5 per part;
			// ε is scaled to form meaningful groups.
			const eps = 50000
			gbSQL = tpch.GB2
			baseSQL = tpch.SGB34Baseline()
			sgbAll = func(ov string) string { return tpch.SGB34(false, eps, ov) }
			sgbAny = tpch.SGB34(true, eps, "")
		} else {
			const eps = 100000
			gbSQL = tpch.GB3
			baseSQL = tpch.SGB56Baseline()
			sgbAll = func(ov string) string { return tpch.SGB56(false, eps, ov) }
			sgbAny = tpch.SGB56(true, eps, "")
		}

		run := func(label, sql string) (float64, string, error) {
			_, d, err := runSQL(cat, sql, core.OnTheFlyIndex, cfg.Seed)
			if err != nil {
				return 0, "", fmt.Errorf("%s %s: %w", id, label, err)
			}
			return float64(d), ms(d), nil
		}
		_, gbS, err := run("business GROUP BY", gbSQL)
		if err != nil {
			return err
		}
		baseT, baseS, err := run("pipeline GROUP BY", baseSQL)
		if err != nil {
			return err
		}
		joinT, joinS, err := run("join-any", sgbAll("join-any"))
		if err != nil {
			return err
		}
		elimT, elimS, err := run("eliminate", sgbAll("eliminate"))
		if err != nil {
			return err
		}
		formT, formS, err := run("form-new", sgbAll("form-new"))
		if err != nil {
			return err
		}
		anyT, anyS, err := run("any", sgbAny)
		if err != nil {
			return err
		}

		overhead := func(sgb float64) string {
			if baseT <= 0 {
				return "-"
			}
			return fmt.Sprintf("%+.0f%%", (sgb-baseT)/baseT*100)
		}
		t.row(sf, ds.Lineitem.Len(), gbS, baseS, joinS, elimS, formS, anyS,
			overhead(joinT), overhead(elimT), overhead(formT), overhead(anyT))
	}
	t.flush()
	return nil
}
