package benchkit

import (
	"fmt"
	"math"

	"github.com/sgb-db/sgb/internal/core"
)

// Figure 10: the effect of data size on runtime at fixed ε = 0.2.
// 10a–10c compare Bounds-Checking vs the on-the-fly Index for the three
// SGB-All variants (the paper omits All-Pairs here — quadratic growth);
// 10d compares All-Pairs vs Index for SGB-Any. The paper sweeps TPC-H
// SF 1→60 (10d: 1→32); we sweep point counts with the same doubling
// structure and report per-step growth factors so the near-linear
// (Index) vs super-linear (others) shapes are visible.

func init() {
	for _, v := range []struct {
		id, title string
		overlap   core.Overlap
	}{
		{"fig10a", "size sweep, SGB-All JOIN-ANY (Bounds-Checking vs Index vs Grid)", core.JoinAny},
		{"fig10b", "size sweep, SGB-All ELIMINATE", core.Eliminate},
		{"fig10c", "size sweep, SGB-All FORM-NEW-GROUP", core.FormNewGroup},
	} {
		v := v
		register(Experiment{
			ID:    v.id,
			Title: v.title,
			Expect: "Index consistently ≈1 order of magnitude below Bounds-Checking, " +
				"with steadier (near-linear) growth",
			Run: func(cfg Config) error { return runFig10All(cfg, v.overlap) },
		})
	}
	register(Experiment{
		ID:    "fig10d",
		Title: "size sweep, SGB-Any (All-Pairs vs Index vs Grid)",
		Expect: "All-Pairs grows quadratically; Index grows near-linearly and ends " +
			"≈3 orders of magnitude faster at the largest size",
		Run: runFig10Any,
	})
}

// growth annotates t(n) vs t(n/2): the exponent log2(t2/t1) (≈1 linear,
// ≈2 quadratic).
func growth(prev, cur float64) string {
	if prev <= 0 || cur <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", math.Log2(cur/prev))
}

func runFig10All(cfg Config, ov core.Overlap) error {
	e, _ := Find(map[core.Overlap]string{
		core.JoinAny: "fig10a", core.Eliminate: "fig10b", core.FormNewGroup: "fig10c",
	}[ov])
	header(cfg, e)
	const eps = 0.2
	sizes := []int{cfg.scaled(4000), cfg.scaled(8000), cfg.scaled(16000), cfg.scaled(32000)}
	if ov != core.FormNewGroup {
		// FORM-NEW-GROUP's recursion makes the largest size expensive;
		// the other variants take one more doubling to expose the gap.
		sizes = append(sizes, cfg.scaled(64000))
	}
	fmt.Fprintf(cfg.Out, "uniform points in [0,10]^2, L2, eps=%v, ON-OVERLAP %v\n\n", eps, ov)

	t := newTable(cfg.Out, "n", "Bounds(ms)", "Index(ms)", "Grid(ms)", "Grid-speedup",
		"Bounds-growth", "Index-growth", "Grid-growth", "groups")
	var prevB, prevI, prevG float64
	for _, n := range sizes {
		pts := uniformPoints(n, 10, cfg.Seed+3)
		bc, _, err := timeSGBAll(pts, core.BoundsCheck, ov, eps)
		if err != nil {
			return err
		}
		ix, _, err := timeSGBAll(pts, core.OnTheFlyIndex, ov, eps)
		if err != nil {
			return err
		}
		gr, groups, err := timeSGBAll(pts, core.GridIndex, ov, eps)
		if err != nil {
			return err
		}
		bms, ims, gms := float64(bc.Microseconds()), float64(ix.Microseconds()), float64(gr.Microseconds())
		t.row(n, ms(bc), ms(ix), ms(gr), speedup(ix, gr),
			growth(prevB, bms), growth(prevI, ims), growth(prevG, gms), groups)
		prevB, prevI, prevG = bms, ims, gms
	}
	t.flush()
	return nil
}

func runFig10Any(cfg Config) error {
	e, _ := Find("fig10d")
	header(cfg, e)
	const eps = 0.2
	sizes := []int{cfg.scaled(4000), cfg.scaled(8000), cfg.scaled(16000),
		cfg.scaled(32000), cfg.scaled(64000)}
	fmt.Fprintf(cfg.Out, "uniform points in [0,10]^2, L2, eps=%v\n\n", eps)

	t := newTable(cfg.Out, "n", "All-Pairs(ms)", "Index(ms)", "Grid(ms)", "Grid-speedup",
		"AllPairs-growth", "Index-growth", "Grid-growth", "groups")
	var prevA, prevI, prevG float64
	for _, n := range sizes {
		pts := uniformPoints(n, 10, cfg.Seed+4)
		ap, _, err := timeSGBAny(pts, core.AllPairs, eps)
		if err != nil {
			return err
		}
		ix, _, err := timeSGBAny(pts, core.OnTheFlyIndex, eps)
		if err != nil {
			return err
		}
		gr, groups, err := timeSGBAny(pts, core.GridIndex, eps)
		if err != nil {
			return err
		}
		ams, ims, gms := float64(ap.Microseconds()), float64(ix.Microseconds()), float64(gr.Microseconds())
		t.row(n, ms(ap), ms(ix), ms(gr), speedup(ix, gr),
			growth(prevA, ams), growth(prevI, ims), growth(prevG, gms), groups)
		prevA, prevI, prevG = ams, ims, gms
	}
	t.flush()
	return nil
}
