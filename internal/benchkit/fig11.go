package benchkit

import (
	"fmt"
	"time"

	"github.com/sgb-db/sgb/internal/checkin"
	"github.com/sgb-db/sgb/internal/cluster"
	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// Figure 11: SGB vs standalone clustering (DBSCAN, BIRCH, K-means with
// K = 20 and 40) on the two social check-in datasets. The similarity
// threshold for both DBSCAN and SGB is 0.2 (as in the paper); SGB runs
// the on-the-fly index strategy. Data sizes sweep like the paper's
// 0.5–3 M (scaled).

func init() {
	register(Experiment{
		ID:    "fig11a",
		Title: "SGB vs clustering on Brightkite-like check-ins",
		Expect: "all four SGB variants 1–3 orders of magnitude faster than DBSCAN, " +
			"BIRCH, and both K-means settings at every size",
		Run: func(cfg Config) error { return runFig11(cfg, "fig11a") },
	})
	register(Experiment{
		ID:     "fig11b",
		Title:  "SGB vs clustering on Gowalla-like check-ins",
		Expect: "same ordering as fig11a with the Gowalla skew profile",
		Run:    func(cfg Config) error { return runFig11(cfg, "fig11b") },
	})
}

func runFig11(cfg Config, id string) error {
	e, _ := Find(id)
	header(cfg, e)
	const eps = 0.2
	sizes := []int{cfg.scaled(5000), cfg.scaled(10000), cfg.scaled(20000)}

	gen := checkin.Brightkite
	if id == "fig11b" {
		gen = checkin.Gowalla
	}

	t := newTable(cfg.Out, "n", "DBSCAN(ms)", "BIRCH(ms)", "KMeans20(ms)", "KMeans40(ms)",
		"SGB-All-JoinAny(ms)", "SGB-All-Elim(ms)", "SGB-All-FormNew(ms)", "SGB-Any(ms)")
	for _, n := range sizes {
		pts := checkin.Points(gen(n))

		dbscanT, err := timed(func() error {
			_, err := cluster.DBSCAN(pts, cluster.DBSCANConfig{Eps: eps, MinPts: 4, Metric: geom.L2})
			return err
		})
		if err != nil {
			return err
		}
		birchT, err := timed(func() error {
			_, err := cluster.BIRCH(pts, cluster.BIRCHConfig{Threshold: eps, Branching: 8, Refine: true})
			return err
		})
		if err != nil {
			return err
		}
		km20T, err := timed(func() error {
			_, err := cluster.KMeans(pts, cluster.KMeansConfig{K: 20, Seed: cfg.Seed})
			return err
		})
		if err != nil {
			return err
		}
		km40T, err := timed(func() error {
			_, err := cluster.KMeans(pts, cluster.KMeansConfig{K: 40, Seed: cfg.Seed})
			return err
		})
		if err != nil {
			return err
		}

		joinAny, _, err := timeSGBAll(pts, core.OnTheFlyIndex, core.JoinAny, eps)
		if err != nil {
			return err
		}
		elim, _, err := timeSGBAll(pts, core.OnTheFlyIndex, core.Eliminate, eps)
		if err != nil {
			return err
		}
		formNew, _, err := timeSGBAll(pts, core.OnTheFlyIndex, core.FormNewGroup, eps)
		if err != nil {
			return err
		}
		anyT, _, err := timeSGBAny(pts, core.OnTheFlyIndex, eps)
		if err != nil {
			return err
		}

		t.row(n, ms(dbscanT), ms(birchT), ms(km20T), ms(km40T),
			ms(joinAny), ms(elim), ms(formNew), ms(anyT))
	}
	t.flush()
	fmt.Fprintln(cfg.Out)
	return nil
}

func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
