package benchkit

import (
	"fmt"
	"runtime"
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// Beyond the paper: the parallel-scaling experiment for the partition
// → connect → arbitrate → merge pipeline. The workload is the Fig9a
// uniform sweep point (ε = 0.5, L2) so the series land next to the
// Fig9/Fig10 reproductions; the parallel and sequential runs produce
// bit-identical groupings at every worker count, so the table also
// prints the group count as a cross-check. For SGB-All the table
// breaks the run into its pipeline phases (from Stats), showing where
// a sweep stops scaling: connect and arbitrate are the parallel
// sections, partition and merge the sequential residue.

var workerSweep = []int{1, 2, 4, 8}

func init() {
	register(Experiment{
		ID:    "scaling",
		Title: "parallel scaling, workers ∈ {1,2,4,8} (SGB-All JOIN-ANY and SGB-Any, ε-Grid)",
		Expect: "speedup approaching the machine's core count for both operators: " +
			"SGB-Any components are order-independent, and SGB-All arbitrates whole " +
			"ε-connected components on workers, leaving only the ε-tile planning and " +
			"the provenance-key merge sequential",
		Run: runScaling,
	})
}

func runScaling(cfg Config) error {
	e, _ := Find("scaling")
	header(cfg, e)
	n := cfg.scaled(8000)
	pts := uniformPoints(n, 10, cfg.Seed+3)
	const eps = 0.5
	fmt.Fprintf(cfg.Out, "n = %d uniform points, ε = %.1f, L2, ε-Grid strategy\n\n", n, eps)

	// The headline table holds only worker counts the machine can
	// actually schedule: oversubscribed rows (w > GOMAXPROCS) time-slice
	// one core and measure sharding overhead, not scaling, so they'd
	// poison speedup comparisons across machines. They are still
	// measured (and recorded, flagged, in baselines) but print
	// separately below the warning.
	gmp := runtime.GOMAXPROCS(0)
	t := newTable(cfg.Out, "workers", "SGB-All(ms)", "All-speedup", "All part/conn/arb/merge(ms)",
		"SGB-Any(ms)", "Any-speedup", "groups(All/Any)")
	var over *table
	var excluded []int
	var baseAll, baseAny time.Duration
	for _, w := range workerSweep {
		var st core.Stats
		all, gAll, err := timeParallel(pts, eps, w, false, &st)
		if err != nil {
			return err
		}
		anyT, gAny, err := timeParallel(pts, eps, w, true, nil)
		if err != nil {
			return err
		}
		if w == 1 {
			baseAll, baseAny = all, anyT
		}
		phases := "sequential"
		if w > 1 {
			phases = fmt.Sprintf("%s/%s/%s/%s",
				ms(time.Duration(st.PartitionNanos)), ms(time.Duration(st.ConnectNanos)),
				ms(time.Duration(st.ArbitrateNanos)), ms(time.Duration(st.MergeNanos)))
		}
		dst := t
		if w > gmp {
			if over == nil {
				over = newTable(cfg.Out, "workers", "SGB-All(ms)", "All-speedup", "All part/conn/arb/merge(ms)",
					"SGB-Any(ms)", "Any-speedup", "groups(All/Any)")
			}
			excluded = append(excluded, w)
			dst = over
		}
		dst.row(w, ms(all), speedup(baseAll, all), phases, ms(anyT), speedup(baseAny, anyT),
			fmt.Sprintf("%d/%d", gAll, gAny))
	}
	t.flush()
	if over != nil {
		fmt.Fprintf(cfg.Out, "\nwarning: workers %v exceed GOMAXPROCS=%d — oversubscribed, excluded from the\n"+
			"headline table above (they measure time-slicing overhead, not scaling):\n\n", excluded, gmp)
		over.flush()
	}
	return nil
}

// timeParallel measures one evaluation at an explicit worker count
// (1 forces the sequential path, so the speedup column is against the
// true sequential baseline, not a one-worker parallel run). A non-nil
// stats additionally collects the run's operation counts and pipeline
// phase timings.
func timeParallel(pts []geom.Point, eps float64, workers int, anySemantics bool, stats *core.Stats) (time.Duration, int, error) {
	opt := core.Options{
		Metric:      geom.L2,
		Eps:         eps,
		Overlap:     core.JoinAny,
		Algorithm:   core.GridIndex,
		Seed:        1,
		Parallelism: workers,
		Stats:       stats,
	}
	start := time.Now()
	var res *core.Result
	var err error
	if anySemantics {
		res, err = core.SGBAny(pts, opt)
	} else {
		res, err = core.SGBAll(pts, opt)
	}
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), res.NumGroups(), nil
}
