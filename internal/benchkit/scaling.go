package benchkit

import (
	"fmt"
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// Beyond the paper: the parallel-scaling experiment for the partition
// → shard-local evaluate → merge pipeline. The workload is the Fig9a
// uniform sweep point (ε = 0.5, L2) so the series land next to the
// Fig9/Fig10 reproductions; the parallel and sequential runs produce
// identical groupings at every worker count, so the table also prints
// the group count as a cross-check.

var workerSweep = []int{1, 2, 4, 8}

func init() {
	register(Experiment{
		ID:    "scaling",
		Title: "parallel scaling, workers ∈ {1,2,4,8} (SGB-All JOIN-ANY and SGB-Any, ε-Grid)",
		Expect: "speedup approaching the machine's core count for SGB-Any; " +
			"SGB-All parallelizes its probe/refine distance work only, so it " +
			"scales until the sequential arbitration loop dominates (Amdahl)",
		Run: runScaling,
	})
}

func runScaling(cfg Config) error {
	e, _ := Find("scaling")
	header(cfg, e)
	n := cfg.scaled(8000)
	pts := uniformPoints(n, 10, cfg.Seed+3)
	const eps = 0.5
	fmt.Fprintf(cfg.Out, "n = %d uniform points, ε = %.1f, L2, ε-Grid strategy\n\n", n, eps)

	t := newTable(cfg.Out, "workers", "SGB-All(ms)", "All-speedup", "SGB-Any(ms)", "Any-speedup", "groups(All/Any)")
	var baseAll, baseAny time.Duration
	for _, w := range workerSweep {
		all, gAll, err := timeParallel(pts, eps, w, false)
		if err != nil {
			return err
		}
		anyT, gAny, err := timeParallel(pts, eps, w, true)
		if err != nil {
			return err
		}
		if w == 1 {
			baseAll, baseAny = all, anyT
		}
		t.row(w, ms(all), speedup(baseAll, all), ms(anyT), speedup(baseAny, anyT),
			fmt.Sprintf("%d/%d", gAll, gAny))
	}
	t.flush()
	return nil
}

// timeParallel measures one evaluation at an explicit worker count
// (1 forces the sequential path, so the speedup column is against the
// true sequential baseline, not a one-worker parallel run).
func timeParallel(pts []geom.Point, eps float64, workers int, anySemantics bool) (time.Duration, int, error) {
	opt := core.Options{
		Metric:      geom.L2,
		Eps:         eps,
		Overlap:     core.JoinAny,
		Algorithm:   core.GridIndex,
		Seed:        1,
		Parallelism: workers,
	}
	start := time.Now()
	var res *core.Result
	var err error
	if anySemantics {
		res, err = core.SGBAny(pts, opt)
	} else {
		res, err = core.SGBAll(pts, opt)
	}
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), res.NumGroups(), nil
}
