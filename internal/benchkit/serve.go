package benchkit

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	sgb "github.com/sgb-db/sgb"
	"github.com/sgb-db/sgb/sgbclient"
	"github.com/sgb-db/sgb/sgbserver"
)

// Beyond the paper: the concurrent-serving experiment. A wire server
// (sgbserver) fronts one shared database, and N client connections —
// each its own session — drive similarity-query traffic concurrently:
// read-mostly (every request the same SGB-Any grouping, the shared
// singleflight evaluator cache's best case) and mixed (80% queries,
// 10% INSERTs, 10% DELETEs, forcing maintenance and invalidation under
// contention). Reported per configuration: p50/p99 request latency and
// aggregate throughput. Fixed total request count across connection
// counts, so the series isolates how concurrency moves latency and
// throughput over constant work.

// serveConnSweep is the connection-count series (the 8/32/128 load
// points, plus the 1-connection baseline the throughput ratio is
// measured against).
var serveConnSweep = []int{1, 8, 32, 128}

// serveThroughputTarget is the flagged (not gated) acceptance ratio:
// read-mostly throughput at 32 connections should reach 3× the
// 1-connection baseline — on a machine with the cores to show it.
const serveThroughputTarget = 3.0

func init() {
	register(Experiment{
		ID:    "serve",
		Title: "concurrent serving: p50/p99 latency and throughput at 1/8/32/128 connections",
		Expect: "read-mostly throughput grows with connections until cores saturate " +
			"(the shared evaluator cache answers every session from one maintained " +
			"grouping); mixed traffic pays invalidation: DELETEs force rebuilds, so " +
			"p99 stretches while p50 stays near the read-mostly case",
		Run: runServe,
	})
}

func runServe(cfg Config) error {
	e, _ := Find("serve")
	header(cfg, e)
	n := cfg.scaled(2000)
	requests := cfg.scaled(512)
	gmp := runtime.GOMAXPROCS(0)
	fmt.Fprintf(cfg.Out, "n = %d preloaded points, ε = 0.5, L2, SET incremental = on per session\n", n)
	fmt.Fprintf(cfg.Out, "%d requests total per run, split across the connections\n\n", requests)

	t := newTable(cfg.Out, "workload", "conns", "requests", "p50(ms)", "p99(ms)", "req/s", "groups")
	byConns := map[bool]map[int]*ServeResult{false: {}, true: {}}
	var oversub []int
	for _, mixed := range []bool{false, true} {
		for _, conns := range serveConnSweep {
			res, err := RunServeLoad(n, conns, requests, mixed, cfg.Seed+13)
			if err != nil {
				return err
			}
			byConns[mixed][conns] = res
			name := "read"
			if mixed {
				name = "mixed"
			}
			if conns > gmp {
				name += "*"
				if !mixed {
					oversub = append(oversub, conns)
				}
			}
			t.row(name, conns, res.Requests, ms(res.P50), ms(res.P99),
				fmt.Sprintf("%.0f", res.Throughput), res.Groups)
		}
	}
	t.flush()
	if len(oversub) > 0 {
		fmt.Fprintf(cfg.Out, "\n* oversubscribed: connections exceed GOMAXPROCS=%d — these rows measure\n"+
			"  time-slicing on saturated cores, not scaling; skip them when comparing machines\n", gmp)
	}
	base, loaded := byConns[false][1], byConns[false][32]
	if base != nil && loaded != nil && base.Throughput > 0 {
		ratio := loaded.Throughput / base.Throughput
		fmt.Fprintf(cfg.Out, "\nread-mostly throughput, 32 conns vs 1: %.2fx (target ≥ %.0fx)\n",
			ratio, serveThroughputTarget)
		if ratio < serveThroughputTarget {
			if gmp < 4 {
				fmt.Fprintf(cfg.Out, "flag: below target — expected on this machine (GOMAXPROCS=%d leaves no cores to scale onto)\n", gmp)
			} else {
				fmt.Fprintf(cfg.Out, "flag: below target on a %d-proc machine — investigate lock contention on the serve path\n", gmp)
			}
		}
	}
	return nil
}

// ServeResult is one measured serving configuration.
type ServeResult struct {
	// Conns is the concurrent connection count (one session each).
	Conns int
	// Mixed reports the workload: false = read-mostly (queries only),
	// true = 80% queries / 10% INSERT / 10% DELETE.
	Mixed bool
	// Requests is the total requests completed across all connections.
	Requests int
	// P50 and P99 are request-latency percentiles over every request.
	P50, P99 time.Duration
	// Wall is the whole run's wall time (connections run concurrently).
	Wall time.Duration
	// Throughput is Requests / Wall in requests per second.
	Throughput float64
	// Groups fingerprints the final grouping for the read-mostly
	// workload (0 under mixed: concurrent interleaving makes the final
	// table contents timing-dependent).
	Groups int
}

// RunServeLoad starts a wire server over a freshly loaded n-point
// table, drives totalRequests requests through conns concurrent client
// connections, and reports latency percentiles and throughput. Every
// session runs SET incremental = on, so read traffic exercises the
// shared singleflight evaluator cache and mixed traffic exercises its
// maintenance and invalidation under concurrency.
func RunServeLoad(n, conns, totalRequests int, mixed bool, seed int64) (*ServeResult, error) {
	db := sgb.Open()
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)"); err != nil {
		return nil, err
	}
	pts := uniformPoints(n, 10, seed)
	const insertBatch = 512
	for lo := 0; lo < n; lo += insertBatch {
		hi := lo + insertBatch
		if hi > n {
			hi = n
		}
		var b strings.Builder
		b.WriteString("INSERT INTO pts VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %g, %g)", i, pts[i][0], pts[i][1])
		}
		if _, err := db.Exec(b.String()); err != nil {
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := sgbserver.New(db)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Shutdown()
		<-serveDone
	}()
	addr := ln.Addr().String()

	const query = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5 ORDER BY 1"
	perConn := totalRequests / conns
	if perConn < 1 {
		perConn = 1
	}

	var wg sync.WaitGroup
	lats := make([][]time.Duration, conns)
	errs := make([]error, conns)
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := sgbclient.Dial(addr)
			if err != nil {
				errs[c] = err
				return
			}
			defer conn.Close()
			if _, err := conn.Exec("SET incremental = on"); err != nil {
				errs[c] = err
				return
			}
			r := rand.New(rand.NewSource(seed + int64(c)*7919))
			lat := make([]time.Duration, 0, perConn)
			for i := 0; i < perConn; i++ {
				sql := query
				if mixed {
					// Mix over the global request index, not the
					// per-connection one: at high connection counts each
					// connection sends only a few requests, and a
					// per-connection i%10 would never reach the mutation
					// arms.
					switch (c*perConn + i) % 10 {
					case 8:
						// Fresh ids so inserts never collide across sessions.
						sql = fmt.Sprintf("INSERT INTO pts VALUES (%d, %g, %g)",
							1_000_000+c*100_000+i, r.Float64()*10, r.Float64()*10)
					case 9:
						// Each session deletes its own slice of preloaded ids.
						sql = fmt.Sprintf("DELETE FROM pts WHERE id = %d", (c*perConn+i)%n)
					}
				}
				t0 := time.Now()
				if _, _, err := conn.Run(sql); err != nil {
					errs[c] = fmt.Errorf("request %d: %w", i, err)
					return
				}
				lat = append(lat, time.Since(t0))
			}
			lats[c] = lat
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &ServeResult{
		Conns:      conns,
		Mixed:      mixed,
		Requests:   len(all),
		P50:        percentile(all, 50),
		P99:        percentile(all, 99),
		Wall:       wall,
		Throughput: float64(len(all)) / wall.Seconds(),
	}
	if !mixed {
		rows, err := db.Query(query)
		if err != nil {
			return nil, err
		}
		res.Groups = rows.Len()
	}
	return res, nil
}

// percentile returns the p-th percentile (nearest-rank) of sorted
// latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted)*p/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
