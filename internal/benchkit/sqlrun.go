package benchkit

import (
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/plan"
	"github.com/sgb-db/sgb/internal/sqlparser"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// runSQL plans and executes one SELECT against the catalog, timing the
// execution (planning excluded, matching how the paper reports "SGB
// response time" net of preprocessing only where it says so — planning
// cost here is microseconds either way).
func runSQL(cat *storage.Catalog, sql string, alg core.Algorithm, seed int64) ([]types.Row, time.Duration, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, 0, err
	}
	b := plan.NewBuilder(cat)
	b.SGBAlgorithm = alg
	b.SGBParallelism = 1 // strategy comparisons measure the sequential operators
	b.SGBSeed = seed
	cq, err := b.BuildSelect(sel)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	rows, err := plan.Execute(cq)
	if err != nil {
		return nil, 0, err
	}
	return rows, time.Since(start), nil
}
