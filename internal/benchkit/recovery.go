package benchkit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	sgb "github.com/sgb-db/sgb"
)

// The "recovery" family measures crash-restart cost on a persistent
// database: a warm start (newest checkpoint + the short WAL tail past
// it, incremental evaluator revived from the snapshot) against a cold
// one (no snapshots, full WAL replay, grouping rebuilt from scratch).
// The paper's engine lives inside PostgreSQL and inherits its
// recovery; here the durability subsystem is ours, so the speedup of
// checkpointed evaluator state over recomputation is an artifact worth
// tracking.

// recoveryQuery is the grouping the recovery workload resumes: a
// clustered SGB-Any grouping dense enough that regrouping dominates a
// cold start.
const recoveryQuery = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"

// SetupRecoveryDir builds a persistent database in dir: n clustered
// points checkpointed together with their incremental SGB-Any
// evaluator, plus one tail batch logged after the checkpoint. It
// returns the query a recovered session re-runs.
func SetupRecoveryDir(dir string, n int, seed int64) (string, error) {
	db, err := sgb.OpenDir(dir)
	if err != nil {
		return "", err
	}
	defer db.Close()
	for _, stmt := range []string{
		"SET durability = off", // setup is not the measured part
		"SET checkpoint_every = 0",
		"SET incremental = on",
		"CREATE TABLE pts (id INT, x FLOAT, y FLOAT)",
	} {
		if _, err := db.Exec(stmt); err != nil {
			return "", err
		}
	}
	const batch = 1024
	const tail = 256            // rows logged past the checkpoint (the replayed WAL tail)
	span := clusterSpan(n) / 50 // well past subcritical: regrouping must chase dense neighborhoods
	pts := ClusterPoints(n+tail, span, seed)
	insert := func(lo, hi int) error {
		var b strings.Builder
		b.WriteString("INSERT INTO pts VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %.6f, %.6f)", i, pts.At(i)[0], pts.At(i)[1])
		}
		_, err := db.Exec(b.String())
		return err
	}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		if err := insert(lo, hi); err != nil {
			return "", err
		}
	}
	// Group once so the evaluator exists, checkpoint it, then log one
	// batch past the checkpoint — the WAL tail a warm start replays.
	if _, err := db.Query(recoveryQuery); err != nil {
		return "", err
	}
	if _, err := db.Exec("CHECKPOINT"); err != nil {
		return "", err
	}
	if err := insert(n, n+tail); err != nil {
		return "", err
	}
	return recoveryQuery, nil
}

// StripSnapshots deletes every checkpoint from dir, forcing the next
// open into a cold full-WAL replay. The WAL still holds every record
// (SetupRecoveryDir checkpoints once, which retains all segments).
func StripSnapshots(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ck") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// TimeRecovery measures crash-restart to first answer: open the
// directory (recovery runs inside OpenDir), then re-run the grouping
// incrementally. It returns the elapsed time and the group count.
func TimeRecovery(dir, query string) (time.Duration, int, error) {
	start := time.Now()
	db, err := sgb.OpenDir(dir)
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	if _, err := db.Exec("SET incremental = on"); err != nil {
		return 0, 0, err
	}
	rows, err := db.Query(query)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), rows.Len(), nil
}

// copyDir clones the flat recovery directory (no subdirectories).
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
