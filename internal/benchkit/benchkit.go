package benchkit

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"text/tabwriter"
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the experiment's report.
	Out io.Writer
	// Scale multiplies the default workload sizes (1.0 = the default
	// single-machine sizes; the paper's full sizes correspond to
	// roughly Scale 25–50 and hours of runtime).
	Scale float64
	// Seed drives every generator in the experiment.
	Seed int64
}

func (c Config) scaled(n int) int {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	v := int(float64(n) * c.Scale)
	if v < 50 {
		v = 50
	}
	return v
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the handle used by -exp flags and bench names (e.g. "fig9a").
	ID string
	// Title is the figure/table caption.
	Title string
	// Expect summarizes the shape the paper reports, for side-by-side
	// reading with the measured output.
	Expect string
	// Run executes the experiment and writes its report.
	Run func(cfg Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find locates an experiment by ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// uniformPoints draws n points uniformly from [0,span]² — the
// "unskewed dataset" of the paper's Section 8.4 threshold sweeps.
func uniformPoints(n int, span float64, seed int64) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{r.Float64() * span, r.Float64() * span}
	}
	return pts
}

// blobPoints draws n points around n/blobSize well-separated Gaussian
// blobs (σ = 0.15, ~4 units² of territory per blob). This keeps both
// quantities that drive the Figure 9 comparisons large across the whole
// ε sweep — the number of groups |G| (≥ one per blob) and the group
// cardinality k — reproducing the density regime of the paper's 0.5 M
// record experiments at laptop-scale n.
func blobPoints(n, blobSize int, seed int64) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	nBlobs := n / blobSize
	if nBlobs < 1 {
		nBlobs = 1
	}
	span := 2 * math.Sqrt(float64(nBlobs))
	centers := make([]geom.Point, nBlobs)
	for i := range centers {
		centers[i] = geom.Point{r.Float64() * span, r.Float64() * span}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[r.Intn(nBlobs)]
		pts[i] = geom.Point{c[0] + r.NormFloat64()*0.15, c[1] + r.NormFloat64()*0.15}
	}
	return pts
}

// timeSGBAll measures one SGB-All evaluation. Strategy-comparison
// experiments pin Parallelism to 1 so each column measures the named
// sequential strategy (the paper's operator is single-threaded); the
// scaling experiment sweeps worker counts explicitly.
func timeSGBAll(pts []geom.Point, alg core.Algorithm, ov core.Overlap, eps float64) (time.Duration, int, error) {
	opt := core.Options{Metric: geom.L2, Eps: eps, Overlap: ov, Algorithm: alg, Seed: 1, Parallelism: 1}
	start := time.Now()
	res, err := core.SGBAll(pts, opt)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), res.NumGroups(), nil
}

// timeSGBAny measures one SGB-Any evaluation (sequential; see
// timeSGBAll).
func timeSGBAny(pts []geom.Point, alg core.Algorithm, eps float64) (time.Duration, int, error) {
	opt := core.Options{Metric: geom.L2, Eps: eps, Algorithm: alg, Seed: 1, Parallelism: 1}
	start := time.Now()
	res, err := core.SGBAny(pts, opt)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), res.NumGroups(), nil
}

// table is a small aligned-text report writer.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer, headers ...string) *table {
	t := &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
	for i, h := range headers {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, h)
	}
	fmt.Fprintln(t.w)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprintf(t.w, "%v", c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// ms formats a duration in milliseconds with three significant places.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// speedup formats a ratio ("12.3x").
func speedup(slow, fast time.Duration) string {
	if fast <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(slow)/float64(fast))
}

// header prints the experiment banner.
func header(cfg Config, e Experiment) {
	fmt.Fprintf(cfg.Out, "=== %s — %s ===\n", e.ID, e.Title)
	fmt.Fprintf(cfg.Out, "paper expectation: %s\n\n", e.Expect)
}
