package benchkit

import (
	"fmt"
	"math"
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// The "sweep" baseline family measures the ε-lattice payoff: answering
// a k-level EPS IN list from ONE dendrogram sweep versus k independent
// one-shot SGB-Any runs over the same points. The two series share one
// workload per k, so their ratio is the multi-query sharing speedup
// (the acceptance floor is 3× at k = 8, n = 32k).

// SweepLevels returns the k ε levels of the sweep workload: evenly
// spaced up to epsMax, so every level does real grouping work and the
// largest matches the one-shot families' threshold.
func SweepLevels(k int, epsMax float64) []float64 {
	levels := make([]float64, k)
	for i := range levels {
		levels[i] = epsMax * float64(i+1) / float64(k)
	}
	return levels
}

// timeSweepLattice measures one lattice sweep answering every level of
// epsList (build + k cuts). Returns the group count at the largest ε
// as the correctness fingerprint.
func timeSweepLattice(pts []geom.Point, epsList []float64) (time.Duration, int, error) {
	opt := core.Options{Metric: geom.L2, Algorithm: core.GridIndex, Seed: 1, Parallelism: 1}
	start := time.Now()
	results, err := core.SweepAny(pts, epsList, opt)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), results[len(results)-1].NumGroups(), nil
}

// timeSweepOneshots measures the k independent SGB-Any runs the sweep
// replaces, one per level.
func timeSweepOneshots(pts []geom.Point, epsList []float64) (time.Duration, int, error) {
	var total time.Duration
	groups := 0
	for _, eps := range epsList {
		d, g, err := timeSGBAny(pts, core.GridIndex, eps)
		if err != nil {
			return 0, 0, err
		}
		total += d
		groups = g
	}
	return total, groups, nil
}

// appendSweepFamily records the "sweep" family: for each k, the lattice
// sweep and its k-one-shot rival on an n-point uniform workload. The
// Eps column carries the largest level (the shared ε_max).
func appendSweepFamily(b *Baseline, cfg Config) error {
	n := cfg.scaled(32000)
	// Density 4 points per unit² — per-point degree ≈ 3 at ε_max —
	// with the span scaled by √n so the density holds at every scale.
	// That keeps every sweep level in the interesting regime: mostly
	// singletons at the low levels, large-but-finite clusters just
	// below the percolation threshold at ε_max, so each cut does
	// non-trivial grouping work. The Fig9a density (40 per unit²) is
	// supercritical at every level and measures nothing but one fused
	// component.
	span := math.Sqrt(float64(n) / 4)
	pts := uniformPoints(n, span, cfg.Seed+13)
	const epsMax = 0.5
	for _, k := range []int{2, 4, 8} {
		levels := SweepLevels(k, epsMax)
		d, g, err := bestOf3(func() (time.Duration, int, error) { return timeSweepLattice(pts, levels) })
		if err != nil {
			return err
		}
		b.Entries = append(b.Entries, BaselineEntry{
			Family: "sweep", Series: fmt.Sprintf("Lattice/k=%d", k), N: n, Eps: epsMax, Millis: millis(d), Groups: g,
		})
		d, g, err = bestOf3(func() (time.Duration, int, error) { return timeSweepOneshots(pts, levels) })
		if err != nil {
			return err
		}
		b.Entries = append(b.Entries, BaselineEntry{
			Family: "sweep", Series: fmt.Sprintf("Oneshot/k=%d", k), N: n, Eps: epsMax, Millis: millis(d), Groups: g,
		})
	}
	return nil
}
