package benchkit

import (
	"fmt"
	"time"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/tpch"
)

// Table 1: the complexity table for SGB-All under L∞. The empirical
// check doubles n and reports both runtime growth exponents and the
// dominant operation counters (distance computations for All-Pairs,
// rectangle tests for Bounds-Checking, index probes for the Index) —
// the measured counters track the claimed O(n²) / O(n·|G|) /
// O(n·log|G|) bounds.
//
// Table 2: the query suite — GB1–GB3 and SGB1–SGB6 run end-to-end
// through the SQL engine on the TPC-H-like dataset, reporting runtime
// and result cardinality.

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "SGB-All complexity (All-Pairs / Bounds-Checking / on-the-fly Index / ε-Grid)",
		Expect: "All-Pairs distance computations grow ~4x per doubling (O(n²)); " +
			"Bounds rect-tests grow ~2x·|G|; Index probes grow ~2x with log-factor work",
		Run: runTable1,
	})
	register(Experiment{
		ID:     "table2",
		Title:  "TPC-H query suite GB1–GB3, SGB1–SGB6",
		Expect: "SGB queries run end-to-end with runtimes comparable to their GROUP BY peers",
		Run:    runTable2,
	})
}

func runTable1(cfg Config) error {
	e, _ := Find("table1")
	header(cfg, e)
	const eps = 0.3
	sizes := []int{cfg.scaled(1000), cfg.scaled(2000), cfg.scaled(4000), cfg.scaled(8000)}
	fmt.Fprintf(cfg.Out, "uniform points in [0,10]^2, LINF, eps=%v, ON-OVERLAP JOIN-ANY\n\n", eps)

	for _, alg := range []core.Algorithm{core.AllPairs, core.BoundsCheck, core.OnTheFlyIndex, core.GridIndex} {
		fmt.Fprintf(cfg.Out, "-- %v --\n", alg)
		t := newTable(cfg.Out, "n", "time(ms)", "time-growth", "dists", "rect-tests",
			"probes", "groups")
		var prev float64
		for _, n := range sizes {
			pts := uniformPoints(n, 10, cfg.Seed+5)
			st := &core.Stats{}
			opt := core.Options{
				Metric: geom.LInf, Eps: eps, Overlap: core.JoinAny, Algorithm: alg, Stats: st,
			}
			d, groups, err := timeSGBAllOpt(pts, opt)
			if err != nil {
				return err
			}
			cur := float64(d.Microseconds())
			t.row(n, ms(d), growth(prev, cur),
				st.DistanceComputations, st.RectTests, st.IndexProbes, groups)
			prev = cur
		}
		t.flush()
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

func runTable2(cfg Config) error {
	e, _ := Find("table2")
	header(cfg, e)
	cat := storage.NewCatalog()
	ds := tpch.Generate(tpch.ScaleRows(1 * cfg.Scale))
	if err := ds.Install(cat); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "TPC-H-like data: %d customers, %d orders, %d lineitems, %d suppliers, %d parts\n\n",
		ds.Customer.Len(), ds.Orders.Len(), ds.Lineitem.Len(), ds.Supplier.Len(), ds.Part.Len())

	// Thresholds tuned to the generated distributions: l_quantity sums
	// per order reach ~175 on average, o_totalprice up to ~5e5.
	queries := []struct {
		name, sql string
	}{
		{"GB1 (Q18)", tpch.GB1(200)},
		{"GB2 (Q9)", tpch.GB2},
		{"GB3 (Q15)", tpch.GB3},
		{"SGB1 (all/join-any)", tpch.SGB12(false, 2000, "join-any", 200, 30000)},
		{"SGB1 (all/eliminate)", tpch.SGB12(false, 2000, "eliminate", 200, 30000)},
		{"SGB1 (all/form-new)", tpch.SGB12(false, 2000, "form-new", 200, 30000)},
		{"SGB2 (any)", tpch.SGB12(true, 2000, "", 200, 30000)},
		{"SGB3 (all/join-any)", tpch.SGB34(false, 50000, "join-any")},
		{"SGB3 (all/eliminate)", tpch.SGB34(false, 50000, "eliminate")},
		{"SGB3 (all/form-new)", tpch.SGB34(false, 50000, "form-new")},
		{"SGB4 (any)", tpch.SGB34(true, 50000, "")},
		{"SGB5 (all/join-any)", tpch.SGB56(false, 100000, "join-any")},
		{"SGB5 (all/eliminate)", tpch.SGB56(false, 100000, "eliminate")},
		{"SGB5 (all/form-new)", tpch.SGB56(false, 100000, "form-new")},
		{"SGB6 (any)", tpch.SGB56(true, 100000, "")},
	}
	t := newTable(cfg.Out, "query", "rows", "time(ms)")
	for _, q := range queries {
		rows, d, err := runSQL(cat, q.sql, core.OnTheFlyIndex, cfg.Seed)
		if err != nil {
			return fmt.Errorf("%s: %w", q.name, err)
		}
		t.row(q.name, len(rows), ms(d))
	}
	t.flush()
	return nil
}

// timeSGBAllOpt measures one SGB-All evaluation with explicit options.
func timeSGBAllOpt(pts []geom.Point, opt core.Options) (time.Duration, int, error) {
	start := time.Now()
	res, err := core.SGBAll(pts, opt)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), res.NumGroups(), nil
}
