package benchkit

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes every registered experiment at a
// tiny scale: the harness must complete and produce a non-trivial
// report for each figure and table of the paper.
func TestEveryExperimentRuns(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 { // fig9a–d, fig10a–d, fig11a/b, fig12a/b, table1, table2, scaling, serve
		t.Fatalf("registered experiments = %d, want 16", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{Out: &buf, Scale: 0.02, Seed: 1}
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s: report missing banner:\n%s", e.ID, out)
			}
			if len(strings.Split(out, "\n")) < 5 {
				t.Errorf("%s: suspiciously short report:\n%s", e.ID, out)
			}
		})
	}
}

// TestWriteBaseline runs the baseline recorder at a tiny scale and
// checks the JSON decodes back with every family present and matching
// group-count fingerprints across strategies of one family/workload.
func TestWriteBaseline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, Config{Out: &buf, Scale: 0.02, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(buf.Bytes(), &b); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	families := map[string]int{}
	groups := map[string]int{} // family/sem -> group count fingerprint
	for _, e := range b.Entries {
		families[e.Family]++
		if e.Millis < 0 {
			t.Errorf("%s/%s: negative timing", e.Family, e.Series)
		}
		if e.Family == "grid" {
			sem := strings.SplitN(e.Series, "/", 2)[0]
			if prev, ok := groups[sem]; ok && prev != e.Groups {
				t.Errorf("grid/%s: strategies disagree on group count: %d vs %d", sem, prev, e.Groups)
			}
			groups[sem] = e.Groups
		}
	}
	for _, fam := range []string{"grid", "scaling", "incremental", "window", "sweep", "recovery", "serve"} {
		if families[fam] == 0 {
			t.Errorf("family %q missing from baseline", fam)
		}
	}
	// Serve entries must carry the latency/throughput fields.
	for _, e := range b.Entries {
		if e.Family == "serve" && (e.Throughput <= 0 || e.P50Millis < 0 || e.P99Millis < e.P50Millis) {
			t.Errorf("serve/%s: implausible load metrics: p50=%v p99=%v tput=%v",
				e.Series, e.P50Millis, e.P99Millis, e.Throughput)
		}
	}
	// Sweep-family fingerprint: the lattice sweep and the one-shot rival
	// must agree on the group count at the shared largest level.
	sweeps := map[string]int{} // k suffix -> groups
	for _, e := range b.Entries {
		if e.Family != "sweep" {
			continue
		}
		parts := strings.SplitN(e.Series, "/", 2)
		if prev, ok := sweeps[parts[1]]; ok && prev != e.Groups {
			t.Errorf("sweep/%s: lattice and one-shot disagree on groups: %d vs %d", parts[1], prev, e.Groups)
		}
		sweeps[parts[1]] = e.Groups
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("nope"); ok {
		t.Fatal("Find accepted an unknown id")
	}
	if e, ok := Find("fig9a"); !ok || e.ID != "fig9a" {
		t.Fatalf("Find(fig9a) = %v %v", e, ok)
	}
}
