package benchkit

import (
	"fmt"

	"github.com/sgb-db/sgb/internal/core"
)

// Figure 9: the effect of the similarity threshold ε on query runtime
// for the three SGB-All overlap variants (9a JOIN-ANY, 9b ELIMINATE,
// 9c FORM-NEW-GROUP) and SGB-Any (9d). The paper runs 0.5 M records
// with ε from 0.1 to 0.9 on unskewed data; the default here is a
// scaled-down point count with the same sweep.

var epsSweep = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

func init() {
	for _, v := range []struct {
		id, title string
		overlap   core.Overlap
	}{
		{"fig9a", "ε sweep, SGB-All JOIN-ANY (All-Pairs vs Bounds-Checking vs Index vs Grid)", core.JoinAny},
		{"fig9b", "ε sweep, SGB-All ELIMINATE", core.Eliminate},
		{"fig9c", "ε sweep, SGB-All FORM-NEW-GROUP", core.FormNewGroup},
	} {
		v := v
		register(Experiment{
			ID:    v.id,
			Title: v.title,
			Expect: "Index ≈2 orders of magnitude over All-Pairs, Bounds-Checking ≈1 order; " +
				"All-Pairs falls as ε grows; Index flat across ε",
			Run: func(cfg Config) error { return runFig9All(cfg, v.overlap) },
		})
	}
	register(Experiment{
		ID:    "fig9d",
		Title: "ε sweep, SGB-Any (All-Pairs vs Index vs Grid)",
		Expect: "Index ≈2–3 orders of magnitude over All-Pairs for every ε; " +
			"All-Pairs falls slightly as ε grows, Index stays flat",
		Run: runFig9Any,
	})
}

func runFig9All(cfg Config, ov core.Overlap) error {
	e, _ := Find(map[core.Overlap]string{
		core.JoinAny: "fig9a", core.Eliminate: "fig9b", core.FormNewGroup: "fig9c",
	}[ov])
	header(cfg, e)
	n := cfg.scaled(8000)
	// Blob data reproduces the paper's density regime (0.5 M records):
	// the group count and the group cardinalities both stay large
	// across the whole ε sweep (see blobPoints).
	pts := blobPoints(n, 40, cfg.Seed+1)
	fmt.Fprintf(cfg.Out, "n = %d points around %d Gaussian blobs (40 points each), L2, ON-OVERLAP %v\n\n", n, n/40, ov)

	t := newTable(cfg.Out, "eps", "All-Pairs(ms)", "Bounds(ms)", "Index(ms)", "Grid(ms)",
		"Bounds-speedup", "Index-speedup", "Grid-speedup", "groups")
	for _, eps := range epsSweep {
		ap, _, err := timeSGBAll(pts, core.AllPairs, ov, eps)
		if err != nil {
			return err
		}
		bc, _, err := timeSGBAll(pts, core.BoundsCheck, ov, eps)
		if err != nil {
			return err
		}
		ix, _, err := timeSGBAll(pts, core.OnTheFlyIndex, ov, eps)
		if err != nil {
			return err
		}
		gr, groups, err := timeSGBAll(pts, core.GridIndex, ov, eps)
		if err != nil {
			return err
		}
		t.row(eps, ms(ap), ms(bc), ms(ix), ms(gr),
			speedup(ap, bc), speedup(ap, ix), speedup(ap, gr), groups)
	}
	t.flush()
	return nil
}

func runFig9Any(cfg Config) error {
	e, _ := Find("fig9d")
	header(cfg, e)
	n := cfg.scaled(8000)
	pts := blobPoints(n, 10, cfg.Seed+2)
	fmt.Fprintf(cfg.Out, "n = %d points around %d Gaussian blobs, L2\n\n", n, n/10)

	t := newTable(cfg.Out, "eps", "All-Pairs(ms)", "Index(ms)", "Grid(ms)",
		"Index-speedup", "Grid-speedup", "groups")
	for _, eps := range epsSweep {
		ap, _, err := timeSGBAny(pts, core.AllPairs, eps)
		if err != nil {
			return err
		}
		ix, _, err := timeSGBAny(pts, core.OnTheFlyIndex, eps)
		if err != nil {
			return err
		}
		gr, groups, err := timeSGBAny(pts, core.GridIndex, eps)
		if err != nil {
			return err
		}
		t.row(eps, ms(ap), ms(ix), ms(gr), speedup(ap, ix), speedup(ap, gr), groups)
	}
	t.flush()
	return nil
}
