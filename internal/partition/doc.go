// Package partition implements the spatial sharding stage of the
// parallel similarity group-by pipeline: partition → tile-local
// evaluate → merge. Points are split into axis-aligned blocks of
// ε-sized grid cells ("ε-tiles"): split counts are allocated greedily
// across axes in proportion to their occupied-cell extent, and each
// split axis is cut at point-count quantiles. Multi-axis tiling is
// what keeps every worker fed when no single axis is wide — the
// failure mode of stripe partitioning, where a widest axis a few cells
// across capped the shard count regardless of the requested
// parallelism.
//
// Cuts lie on ε-cell boundaries, so two points in different tiles are
// separated by at least one cut on some axis, and a within-ε pair
// bounds its per-axis gap by ε — each endpoint must then lie in one of
// the two cell layers touching that cut. Those points form the
// FRONTIER. Tile-local evaluation plus a frontier merge is therefore
// exact for connected-component (SGB-Any) semantics, and the same
// frontier reasoning bounds where cross-tile coupling can occur at all
// in the parallel SGB-All pipeline (internal/core/parallelall.go).
//
// Invariants (exercised by partition_test.go at d ∈ {2, 3, 5}):
//
//   - Exact cover: every input index appears in exactly one tile, and
//     tile interiors are disjoint blocks of the ε-cell lattice.
//   - Tile.Global maps tile-local indices back to input indices in
//     ascending order, so tile-local processing order matches global
//     input order restricted to the tile, and worker-private
//     Union-Finds fold into the global forest without translation
//     tables (unionfind.Absorb).
//   - ε-band membership: every cross-tile within-ε pair (under L2 or
//     L∞) has both endpoints in Plan.Frontier.
//   - Gather correctness: Tile.Points.At(i) equals the source point at
//     Tile.Global[i].
//
// The package is deliberately independent of the operator core: it
// knows points, ε, and a tile-count target, and returns compact
// sub-PointSets plus the local→global maps and the frontier. The core
// supplies the tile-local algorithm and the merge.
package partition
