// Package partition implements the spatial sharding stage of the
// parallel similarity group-by pipeline: partition → shard-local
// evaluate → merge. Points are split into contiguous stripes of
// ε-sized grid cells along one axis, so every shard occupies a slab of
// space at least ε wide. Two points in different shards can then be
// within ε of each other only when (a) the shards are adjacent and
// (b) both points fall in the two boundary cells touching the cut — the
// ε-bands the merge stage probes. This makes shard-local evaluation
// plus a boundary merge exact for connected-component (SGB-Any)
// semantics: every ε-edge of the similarity graph is either
// intra-shard or a band-to-band edge across one cut.
//
// Invariants:
//
//   - Each cut lies on an ε-cell boundary along the chosen (widest)
//     axis, and adjacent shards' slabs are disjoint; every input index
//     appears in exactly one shard.
//   - Shard.Global maps shard-local indices back to input indices, so
//     worker-private Union-Finds fold into the global forest without
//     translation tables (unionfind.Absorb).
//   - Boundary bands contain exactly the points of the two cell layers
//     touching a cut — a sliver of the input for any non-degenerate ε.
//
// The package is deliberately independent of the operator core: it
// knows points, ε, and a shard count, and returns compact sub-PointSets
// plus the local→global index maps and the boundary bands. The core
// supplies the shard-local algorithm and the Union-Find reduction.
package partition
