package partition

import (
	"math"
	"runtime"
	"slices"
	"sort"

	"github.com/sgb-db/sgb/internal/geom"
)

// Tile is one block of the multi-axis partitioning: a compact PointSet
// holding the tile's points (gathered in ascending global order) plus
// the mapping from local index to global input index.
type Tile struct {
	Points *geom.PointSet
	// Global maps local point index → global input index. It is
	// ascending, so tile-local evaluation order matches global input
	// order restricted to the tile.
	Global []int32
}

// Plan is a complete spatial partitioning of a PointSet into axis-
// aligned blocks of ε-cells ("ε-tiles").
type Plan struct {
	// Splits[d] is the number of coordinate intervals axis d was cut
	// into (1 = uncut). The tile lattice is their cross product; Tiles
	// holds its non-empty cells.
	Splits []int
	// Tiles holds the non-empty tiles in row-major lattice order.
	Tiles []Tile
	// TileOf maps global input index → index into Tiles.
	TileOf []int32
	// Frontier holds, in ascending order, the global ids of every point
	// whose ε-cell touches a cut on some split axis (the cell just
	// below or just above the cut). Every cross-tile within-ε pair has
	// BOTH endpoints in Frontier: two points in different tiles are
	// separated by a cut on some axis, and being within ε bounds their
	// per-axis gap by ε, so each lies in one of the two cell layers
	// touching that cut.
	Frontier []int32
	// IsFrontier flags Frontier membership per global input index.
	IsFrontier []bool
}

// Workers resolves a Parallelism setting: 0 means GOMAXPROCS, any
// other value is returned as-is (callers validate non-negativity).
func Workers(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Split partitions ps into up to k ε-tiles: split counts are allocated
// greedily across axes in proportion to their extent in ε-cells (an
// axis with few occupied cells takes few or no cuts instead of
// starving the plan, the failure mode of single-axis striping), and
// each split axis is cut at point-count quantiles so tiles stay
// balanced under skew. It returns nil when no partitioning into at
// least two non-empty tiles exists — fewer than two occupied cells on
// every axis, k < 2, or an empty input — in which case the caller
// should evaluate sequentially.
func Split(ps *geom.PointSet, eps float64, k int) *Plan {
	n := ps.Len()
	if n == 0 || k < 2 || !(eps > 0) {
		return nil
	}
	dims := ps.Dims()
	inv := 1 / eps

	// Per-point ε-cell index per axis, and each axis's occupied span.
	cells := make([][]int64, dims)
	spans := make([]int64, dims)
	for d := 0; d < dims; d++ {
		cd := make([]int64, n)
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for i := 0; i < n; i++ {
			c := cellOf(ps.At(i)[d], inv)
			cd[i] = c
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		cells[d], spans[d] = cd, hi-lo
	}

	// Allocate split counts: repeatedly give another split to the axis
	// with the largest remaining per-interval span, until the lattice
	// has at least k cells or no axis can be cut further (an axis
	// spanning s+1 cells supports at most s+1 intervals).
	splits := make([]int, dims)
	for d := range splits {
		splits[d] = 1
	}
	for product(splits) < k {
		best, bestScore := -1, 0.0
		for d := 0; d < dims; d++ {
			if int64(splits[d]) > spans[d] {
				continue // every interval would need < 1 cell
			}
			if score := float64(spans[d]) / float64(splits[d]); best < 0 || score > bestScore {
				best, bestScore = d, score
			}
		}
		if best < 0 {
			break
		}
		splits[best]++
	}

	// Cut each split axis at point-count quantiles of its cell values.
	// cuts[d][i] is the last cell of interval i (strictly increasing,
	// below the axis maximum, so every interval keeps at least one
	// cell); deduplication under skew may leave fewer intervals than
	// requested.
	cuts := make([][]int64, dims)
	anyCut := false
	var sortScratch []int64
	for d := 0; d < dims; d++ {
		if splits[d] < 2 {
			splits[d] = 1
			continue
		}
		sortScratch = append(sortScratch[:0], cells[d]...)
		slices.Sort(sortScratch)
		var cd []int64
		for s := 1; s < splits[d]; s++ {
			c := sortScratch[s*n/splits[d]]
			if c >= sortScratch[n-1] {
				// The quantile landed on the top cell; cutting just
				// below it keeps the upper interval non-empty (the span
				// check guarantees max-1 ≥ min).
				c = sortScratch[n-1] - 1
			}
			if len(cd) > 0 && c <= cd[len(cd)-1] {
				continue
			}
			cd = append(cd, c)
		}
		cuts[d] = cd
		splits[d] = len(cd) + 1
		if len(cd) > 0 {
			anyCut = true
		}
	}
	if !anyCut {
		return nil
	}

	// Row-major lattice id per point, plus frontier membership: a point
	// is frontier when, on some split axis, its cell is the last cell
	// of a bounded-above interval or the first cell above a cut.
	latticeSize := product(splits)
	latticeID := make([]int32, n)
	isFrontier := make([]bool, n)
	for i := 0; i < n; i++ {
		id := 0
		for d := 0; d < dims; d++ {
			cd := cuts[d]
			if len(cd) == 0 {
				continue
			}
			c := cells[d][i]
			iv := sort.Search(len(cd), func(j int) bool { return cd[j] >= c })
			id = id*(len(cd)+1) + iv
			if (iv < len(cd) && c == cd[iv]) || (iv > 0 && c == cd[iv-1]+1) {
				isFrontier[i] = true
			}
		}
		latticeID[i] = int32(id)
	}

	// Compact the non-empty lattice cells into Tiles (row-major order)
	// and bucket the points (ascending global order within each tile).
	tileIndex := make([]int32, latticeSize)
	for i := range tileIndex {
		tileIndex[i] = -1
	}
	counts := make([]int, 0, k)
	for i := 0; i < n; i++ {
		id := latticeID[i]
		if tileIndex[id] < 0 {
			tileIndex[id] = -2 // occupied, index assigned below
		}
	}
	nTiles := 0
	for id := range tileIndex {
		if tileIndex[id] == -2 {
			tileIndex[id] = int32(nTiles)
			counts = append(counts, 0)
			nTiles++
		}
	}
	if nTiles < 2 {
		return nil
	}
	plan := &Plan{
		Splits:     splits,
		Tiles:      make([]Tile, nTiles),
		TileOf:     make([]int32, n),
		IsFrontier: isFrontier,
	}
	for i := 0; i < n; i++ {
		t := tileIndex[latticeID[i]]
		plan.TileOf[i] = t
		counts[t]++
	}
	for t := range plan.Tiles {
		plan.Tiles[t].Global = make([]int32, 0, counts[t])
	}
	for i := 0; i < n; i++ {
		t := plan.TileOf[i]
		plan.Tiles[t].Global = append(plan.Tiles[t].Global, int32(i))
		if isFrontier[i] {
			plan.Frontier = append(plan.Frontier, int32(i))
		}
	}
	for t := range plan.Tiles {
		plan.Tiles[t].Points = ps.Gather(plan.Tiles[t].Global)
	}
	return plan
}

func product(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// cellOf quantizes one coordinate to its ε-cell index (the same
// floor(x/ε) arithmetic as internal/grid, inlined to keep the package
// free of index dependencies).
func cellOf(x, inv float64) int64 {
	return int64(math.Floor(x * inv))
}
