package partition

import (
	"math"
	"runtime"
	"slices"
	"sort"

	"github.com/sgb-db/sgb/internal/geom"
)

// Shard is one slab of the input: a compact PointSet holding the
// shard's points (gathered in ascending global order) plus the mapping
// from local index to global input index.
type Shard struct {
	Points *geom.PointSet
	// Global maps local point index → global input index. It is
	// ascending, so shard-local evaluation order matches global input
	// order restricted to the shard.
	Global []int32
}

// Boundary is the ε-band pair around one cut between adjacent shards:
// Left holds the global ids of points in the last cell of the lower
// shard, Right those in the first cell of the upper shard. Every
// cross-shard within-ε pair has its endpoints in these two bands.
type Boundary struct {
	Left, Right []int32
}

// Plan is a complete spatial partitioning of a PointSet.
type Plan struct {
	// Axis is the stripe axis (the dimension with the widest extent in
	// cells, so cuts have the most room).
	Axis int
	// Shards holds the slabs in ascending coordinate order.
	Shards []Shard
	// Bounds[i] is the band pair between Shards[i] and Shards[i+1].
	Bounds []Boundary
}

// Workers resolves a Parallelism setting: 0 means GOMAXPROCS, any
// other value is returned as-is (callers validate non-negativity).
func Workers(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// Split partitions ps into up to k stripes of ε-cells along the widest
// axis, cutting at point-count quantiles so shards stay balanced under
// skew. It returns nil when no exact partitioning into at least two
// shards exists — fewer than two occupied cells along every axis, k < 2,
// or an empty input — in which case the caller should evaluate
// sequentially.
func Split(ps *geom.PointSet, eps float64, k int) *Plan {
	n := ps.Len()
	if n == 0 || k < 2 || !(eps > 0) {
		return nil
	}
	dims := ps.Dims()
	inv := 1 / eps

	// Pick the stripe axis: widest extent in cells.
	axis, bestSpan := -1, int64(0)
	for d := 0; d < dims; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := ps.At(i)[d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := cellOf(hi, inv) - cellOf(lo, inv)
		if span > bestSpan || axis < 0 {
			axis, bestSpan = d, span
		}
	}
	if bestSpan < 1 {
		// Every point shares one cell on every axis: nothing to cut.
		return nil
	}

	// Per-point stripe cell, plus a sorted copy for quantile cuts.
	cells := make([]int64, n)
	for i := 0; i < n; i++ {
		cells[i] = cellOf(ps.At(i)[axis], inv)
	}
	sorted := append([]int64(nil), cells...)
	slices.Sort(sorted)

	// Cuts are "last cell of shard s": strictly increasing, below the
	// global maximum (so every shard keeps at least one cell).
	var cuts []int64
	for s := 1; s < k; s++ {
		c := sorted[s*n/k]
		if c >= sorted[n-1] {
			break
		}
		if len(cuts) > 0 && c <= cuts[len(cuts)-1] {
			continue
		}
		cuts = append(cuts, c)
	}
	if len(cuts) == 0 {
		return nil
	}

	nShards := len(cuts) + 1
	shardOf := func(c int64) int {
		// First shard whose cut is ≥ c; the last shard is unbounded.
		return sort.Search(len(cuts), func(i int) bool { return cuts[i] >= c })
	}

	plan := &Plan{Axis: axis, Shards: make([]Shard, nShards), Bounds: make([]Boundary, len(cuts))}
	for i := 0; i < n; i++ {
		c := cells[i]
		s := shardOf(c)
		sh := &plan.Shards[s]
		sh.Global = append(sh.Global, int32(i))
		// Band membership: the last cell of shard s feeds Bounds[s].Left,
		// the cell just above cut s-1 feeds Bounds[s-1].Right.
		if s < len(cuts) && c == cuts[s] {
			plan.Bounds[s].Left = append(plan.Bounds[s].Left, int32(i))
		}
		if s > 0 && c == cuts[s-1]+1 {
			plan.Bounds[s-1].Right = append(plan.Bounds[s-1].Right, int32(i))
		}
	}
	for s := range plan.Shards {
		plan.Shards[s].Points = ps.Gather(plan.Shards[s].Global)
	}
	return plan
}

// cellOf quantizes one coordinate to its ε-cell index (the same
// floor(x/ε) arithmetic as internal/grid, inlined to keep the package
// free of index dependencies).
func cellOf(x, inv float64) int64 {
	return int64(math.Floor(x * inv))
}
