package partition

import (
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

func randSet(r *rand.Rand, n, d int, span float64) *geom.PointSet {
	ps := geom.NewPointSetCap(d, n)
	for i := 0; i < n; i++ {
		p := ps.Extend()
		for j := range p {
			p[j] = r.Float64() * span
		}
	}
	return ps
}

// TestSplitPartitionsInput checks the structural invariants: every
// input index lands in exactly one tile (exact cover), tile Global
// maps are ascending, gathered sub-PointSets match their sources,
// tiles are non-empty, and TileOf agrees with the tile buckets.
func TestSplitPartitionsInput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 3, 5} {
		for _, k := range []int{2, 4, 8} {
			ps := randSet(r, 500, d, 10)
			plan := Split(ps, 0.5, k)
			if plan == nil {
				t.Fatalf("d=%d k=%d: expected a plan for a 20-cell-wide input", d, k)
			}
			if len(plan.Tiles) < 2 {
				t.Fatalf("d=%d k=%d: got %d tiles", d, k, len(plan.Tiles))
			}
			if got := product(plan.Splits); got < len(plan.Tiles) {
				t.Fatalf("d=%d k=%d: %d tiles exceed the %d-cell lattice", d, k, len(plan.Tiles), got)
			}
			seen := make([]bool, ps.Len())
			for ti, tile := range plan.Tiles {
				if tile.Points.Len() == 0 {
					t.Fatalf("tile %d is empty", ti)
				}
				if tile.Points.Len() != len(tile.Global) {
					t.Fatalf("tile %d: %d points vs %d global ids", ti, tile.Points.Len(), len(tile.Global))
				}
				prev := int32(-1)
				for li, gi := range tile.Global {
					if gi <= prev {
						t.Fatalf("tile %d: Global not ascending", ti)
					}
					prev = gi
					if seen[gi] {
						t.Fatalf("point %d assigned twice", gi)
					}
					seen[gi] = true
					if plan.TileOf[gi] != int32(ti) {
						t.Fatalf("TileOf[%d] = %d, want %d", gi, plan.TileOf[gi], ti)
					}
					if !tile.Points.At(li).Equal(ps.At(int(gi))) {
						t.Fatalf("tile %d local %d: gathered point differs from source %d", ti, li, gi)
					}
				}
			}
			for i, ok := range seen {
				if !ok {
					t.Fatalf("point %d assigned to no tile", i)
				}
			}
		}
	}
}

// TestSplitFrontierIsExact is the correctness core: every cross-tile
// within-ε pair must have BOTH endpoints in the frontier, under both
// metrics, at d ∈ {2, 3, 5}.
func TestSplitFrontierIsExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, d := range []int{2, 3, 5} {
		for _, m := range []geom.Metric{geom.L2, geom.LInf} {
			for trial := 0; trial < 3; trial++ {
				eps := 0.2 + r.Float64()*0.5
				ps := randSet(r, 400, d, 8)
				plan := Split(ps, eps, 4+4*trial)
				if plan == nil {
					t.Fatal("expected a plan")
				}
				if len(plan.Frontier) == 0 {
					t.Fatal("a split plan must have a frontier")
				}
				for fi, gi := range plan.Frontier {
					if fi > 0 && gi <= plan.Frontier[fi-1] {
						t.Fatal("frontier ids not ascending")
					}
					if !plan.IsFrontier[gi] {
						t.Fatalf("IsFrontier[%d] disagrees with Frontier list", gi)
					}
				}
				for i := 0; i < ps.Len(); i++ {
					for j := i + 1; j < ps.Len(); j++ {
						if !ps.Within(m, i, j, eps) || plan.TileOf[i] == plan.TileOf[j] {
							continue
						}
						if !plan.IsFrontier[i] || !plan.IsFrontier[j] {
							t.Fatalf("d=%d: cross-tile within-ε pair (%d,%d) not fully in frontier", d, i, j)
						}
					}
				}
			}
		}
	}
}

// TestSplitMultiAxis pins the starving-axis fix: when every axis spans
// only two occupied ε-cells, single-axis striping caps at 2 shards,
// but the multi-axis plan reaches 2^d tiles.
func TestSplitMultiAxis(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 3} {
		ps := randSet(r, 600, d, 2) // ε=1: exactly cells {0,1} per axis
		plan := Split(ps, 1, 1<<d)
		if plan == nil {
			t.Fatalf("d=%d: expected a plan", d)
		}
		want := 1 << d
		if len(plan.Tiles) != want {
			t.Fatalf("d=%d: got %d tiles, want %d (every axis cut)", d, len(plan.Tiles), want)
		}
		for axis, s := range plan.Splits {
			if s != 2 {
				t.Fatalf("d=%d: axis %d split into %d intervals, want 2", d, axis, s)
			}
		}
	}
}

func TestSplitDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	if Split(geom.NewPointSet(2), 1, 4) != nil {
		t.Fatal("empty input must not split")
	}
	ps := randSet(r, 100, 2, 10)
	if Split(ps, 1, 1) != nil {
		t.Fatal("k=1 must not split")
	}
	// ε larger than the whole extent: one occupied cell per axis.
	tight := geom.NewPointSetCap(2, 10)
	for i := 0; i < 10; i++ {
		p := tight.Extend()
		p[0] = 0.1 + 0.05*float64(i)
		p[1] = 0.2
	}
	if Split(tight, 100, 4) != nil {
		t.Fatal("single-cell input must not split")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must resolve GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit worker counts pass through")
	}
}
