package partition

import (
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

func randSet(r *rand.Rand, n, d int, span float64) *geom.PointSet {
	ps := geom.NewPointSetCap(d, n)
	for i := 0; i < n; i++ {
		p := ps.Extend()
		for j := range p {
			p[j] = r.Float64() * span
		}
	}
	return ps
}

// TestSplitPartitionsInput checks the structural invariants: every
// input index lands in exactly one shard, shard Global maps are
// ascending, shard points match their sources, and shards are
// non-empty.
func TestSplitPartitionsInput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 3, 5} {
		for _, k := range []int{2, 4, 8} {
			ps := randSet(r, 500, d, 10)
			plan := Split(ps, 0.5, k)
			if plan == nil {
				t.Fatalf("d=%d k=%d: expected a plan for a 20-cell-wide input", d, k)
			}
			if len(plan.Shards) < 2 || len(plan.Shards) > k {
				t.Fatalf("d=%d k=%d: got %d shards", d, k, len(plan.Shards))
			}
			if len(plan.Bounds) != len(plan.Shards)-1 {
				t.Fatalf("want %d boundaries, got %d", len(plan.Shards)-1, len(plan.Bounds))
			}
			seen := make([]bool, ps.Len())
			for si, sh := range plan.Shards {
				if sh.Points.Len() == 0 {
					t.Fatalf("shard %d is empty", si)
				}
				if sh.Points.Len() != len(sh.Global) {
					t.Fatalf("shard %d: %d points vs %d global ids", si, sh.Points.Len(), len(sh.Global))
				}
				prev := int32(-1)
				for li, gi := range sh.Global {
					if gi <= prev {
						t.Fatalf("shard %d: Global not ascending", si)
					}
					prev = gi
					if seen[gi] {
						t.Fatalf("point %d assigned twice", gi)
					}
					seen[gi] = true
					if !sh.Points.At(li).Equal(ps.At(int(gi))) {
						t.Fatalf("shard %d local %d: gathered point differs from source %d", si, li, gi)
					}
				}
			}
			for i, ok := range seen {
				if !ok {
					t.Fatalf("point %d assigned to no shard", i)
				}
			}
		}
	}
}

// TestSplitBoundariesAreExact is the correctness core: every
// cross-shard within-ε pair must have both endpoints in the boundary
// bands of the cut between their (necessarily adjacent) shards.
func TestSplitBoundariesAreExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, m := range []geom.Metric{geom.L2, geom.LInf} {
		for trial := 0; trial < 5; trial++ {
			eps := 0.2 + r.Float64()*0.5
			ps := randSet(r, 400, 2, 8)
			plan := Split(ps, eps, 4)
			if plan == nil {
				t.Fatal("expected a plan")
			}
			shardOf := make([]int, ps.Len())
			for si, sh := range plan.Shards {
				for _, gi := range sh.Global {
					shardOf[gi] = si
				}
			}
			inBand := make([]map[int32]bool, len(plan.Bounds))
			for bi, b := range plan.Bounds {
				inBand[bi] = make(map[int32]bool)
				for _, l := range b.Left {
					inBand[bi][l] = true
				}
				for _, r := range b.Right {
					inBand[bi][r] = true
				}
			}
			for i := 0; i < ps.Len(); i++ {
				for j := i + 1; j < ps.Len(); j++ {
					if !ps.Within(m, i, j, eps) || shardOf[i] == shardOf[j] {
						continue
					}
					lo, hi := shardOf[i], shardOf[j]
					if lo > hi {
						lo, hi = hi, lo
					}
					if hi != lo+1 {
						t.Fatalf("within-ε pair (%d,%d) spans non-adjacent shards %d and %d", i, j, lo, hi)
					}
					if !inBand[lo][int32(i)] || !inBand[lo][int32(j)] {
						t.Fatalf("cross pair (%d,%d) not covered by boundary %d bands", i, j, lo)
					}
				}
			}
		}
	}
}

func TestSplitDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	if Split(geom.NewPointSet(2), 1, 4) != nil {
		t.Fatal("empty input must not split")
	}
	ps := randSet(r, 100, 2, 10)
	if Split(ps, 1, 1) != nil {
		t.Fatal("k=1 must not split")
	}
	// ε larger than the whole extent: one occupied cell per axis.
	tight := geom.NewPointSetCap(2, 10)
	for i := 0; i < 10; i++ {
		p := tight.Extend()
		p[0] = 0.1 + 0.05*float64(i)
		p[1] = 0.2
	}
	if Split(tight, 100, 4) != nil {
		t.Fatal("single-cell input must not split")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must resolve GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit worker counts pass through")
	}
}
