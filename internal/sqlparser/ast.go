package sqlparser

import (
	"fmt"
	"strings"

	"github.com/sgb-db/sgb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  *GroupByClause
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection: an expression with an optional alias,
// or the bare star.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM-clause item.
type TableRef interface{ tableRef() }

// BaseTable references a named table.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

// SubqueryTable is a derived table: (SELECT ...) AS alias.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryTable) tableRef() {}

// JoinTable is an explicit INNER JOIN with an ON condition.
type JoinTable struct {
	Left, Right TableRef
	Cond        Expr
}

func (*JoinTable) tableRef() {}

// Semantics selects the similarity grouping operator.
type Semantics int

const (
	// SemanticsAll is DISTANCE-TO-ALL (clique groups).
	SemanticsAll Semantics = iota
	// SemanticsAny is DISTANCE-TO-ANY (connected components).
	SemanticsAny
)

// OverlapAction is the ON-OVERLAP arbitration for SGB-All.
type OverlapAction int

const (
	OverlapJoinAny      OverlapAction = iota // insert into one arbitrary candidate group
	OverlapEliminate                         // drop overlapping points
	OverlapFormNewGroup                      // regroup overlapping points among themselves
)

// MetricName is the distance function keyword.
type MetricName int

const (
	MetricL2   MetricName = iota // L2 / LTWO: Euclidean
	MetricLInf                   // LINF / LONE: maximum (Chebyshev)
)

// GroupByClause covers both standard grouping (Similarity == nil) and
// similarity grouping.
type GroupByClause struct {
	Exprs      []Expr
	Similarity *SimilarityClause
}

// SimilarityClause carries the SGB grouping parameters. Exactly one of
// Eps (WITHIN e: a single threshold) and EpsList (EPS IN (e1, e2, ...):
// an ε sweep, DISTANCE-TO-ANY only) is set. Cube marks a trailing
// SIMILARITY CUBE BY EPS rollup over the sweep levels.
type SimilarityClause struct {
	Semantics Semantics
	Metric    MetricName
	Eps       Expr
	EpsList   []Expr
	Cube      bool
	Overlap   OverlapAction
}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column definition.
type ColumnDef struct {
	Name string
	Type types.Kind
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt() {}

// DeleteStmt is DELETE FROM name [WHERE expr]. A nil Where deletes
// every row.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// SetStmt is SET name = value (also SET name TO value): a session
// setting such as ALGORITHM or PARALLELISM. Value keeps the raw token
// text ("grid", "4", "-1"); the engine interprets it per setting.
type SetStmt struct {
	Name  string
	Value string
}

func (*SetStmt) stmt() {}

// CheckpointStmt is CHECKPOINT: snapshot a persistent database's state
// now and prune the log it covers.
type CheckpointStmt struct{}

func (*CheckpointStmt) stmt() {}

// Expr is a SQL expression node.
type Expr interface {
	expr()
	String() string
}

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

func (*ColumnRef) expr() {}

// String renders the reference as [table.]name.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct{ Val types.Value }

func (*Literal) expr() {}

// String renders the literal in SQL syntax (quoted for text/date).
func (l *Literal) String() string {
	if l.Val.Kind == types.KindText {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	if l.Val.Kind == types.KindDate {
		return "date '" + l.Val.String() + "'"
	}
	return l.Val.String()
}

// BinaryExpr is a binary operation: arithmetic (+ - * / %),
// comparison (= <> < <= > >=), or logical (AND OR).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) expr() {}

// String renders the operation parenthesized.
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string
	E  Expr
}

func (*UnaryExpr) expr() {}

// String renders the operation parenthesized.
func (u *UnaryExpr) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }

// FuncCall is a function or aggregate invocation; Star marks count(*).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

func (*FuncCall) expr() {}

// String renders the call, with * for count(*).
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// InExpr is `expr [NOT] IN (values...)` or `expr [NOT] IN (subquery)`.
type InExpr struct {
	E    Expr
	List []Expr      // non-nil for a value list
	Sub  *SelectStmt // non-nil for a subquery
	Neg  bool
}

func (*InExpr) expr() {}

// String renders the membership test (subqueries elided).
func (i *InExpr) String() string {
	not := ""
	if i.Neg {
		not = " NOT"
	}
	if i.Sub != nil {
		return fmt.Sprintf("(%s%s IN (<subquery>))", i.E, not)
	}
	parts := make([]string, len(i.List))
	for k, e := range i.List {
		parts[k] = e.String()
	}
	return fmt.Sprintf("(%s%s IN (%s))", i.E, not, strings.Join(parts, ", "))
}

// BetweenExpr is `expr BETWEEN lo AND hi`.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Neg       bool
}

func (*BetweenExpr) expr() {}

// String renders the range test parenthesized.
func (b *BetweenExpr) String() string {
	not := ""
	if b.Neg {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", b.E, not, b.Lo, b.Hi)
}
