package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/sgb-db/sgb/internal/types"
)

// Parse parses a single SQL statement (a trailing semicolon is
// tolerated).
func Parse(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected input after statement: %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []Token
	i    int
}

func newParser(src string) (*parser, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// at reports whether the current token matches kind (and text, when
// non-empty; keyword/symbol text comparison).
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// accept consumes the token if it matches.
func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind TokenKind, text string) error {
	if p.accept(kind, text) {
		return nil
	}
	return p.errorf("expected %q, found %q", text, p.peek().Text)
}

func (p *parser) atKeyword(kw string) bool     { return p.at(TokKeyword, kw) }
func (p *parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("CREATE"):
		return p.parseCreateTable()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("DROP"):
		return p.parseDropTable()
	case p.atIdentWord("DELETE"):
		// DELETE, like SET below, is deliberately NOT a reserved word —
		// existing schemas may use "delete" as a column or table name.
		// Statement-lead dispatch off the bare identifier is unambiguous.
		return p.parseDelete()
	case p.atIdentWord("SET"):
		// SET is deliberately NOT a reserved word — existing schemas may
		// use "set" (or "to") as column or table names. No other
		// statement form begins with a bare identifier, so dispatching
		// on the leading word is unambiguous.
		return p.parseSet()
	case p.atIdentWord("CHECKPOINT"):
		// CHECKPOINT follows the SET/DELETE pattern: a bare-identifier
		// statement lead, not a reserved word.
		p.next()
		return &CheckpointStmt{}, nil
	default:
		return nil, p.errorf("expected SELECT, CREATE, INSERT, DELETE, DROP, SET, or CHECKPOINT, found %q", p.peek().Text)
	}
}

// atIdentWord reports whether the current token is an identifier
// spelling word (case-insensitive).
func (p *parser) atIdentWord(word string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, word)
}

// parseSet parses SET name = value (or SET name TO value). The value
// is a single identifier, keyword, number (optionally negated), or
// string token, captured as raw text for the engine to interpret.
func (p *parser) parseSet() (*SetStmt, error) {
	p.next() // the SET word, verified by the caller
	name := p.peek()
	if name.Kind != TokIdent && name.Kind != TokKeyword {
		return nil, p.errorf("expected a setting name after SET, found %q", name.Text)
	}
	p.next()
	if !p.accept(TokSymbol, "=") {
		if !p.atIdentWord("TO") {
			return nil, p.errorf("expected '=' or TO after SET %s", name.Text)
		}
		p.next()
	}
	neg := p.accept(TokSymbol, "-")
	val := p.peek()
	switch val.Kind {
	case TokIdent, TokKeyword, TokNumber, TokString:
		p.next()
	default:
		return nil, p.errorf("expected a value for SET %s, found %q", name.Text, val.Text)
	}
	text := val.Text
	if neg {
		if val.Kind != TokNumber {
			return nil, p.errorf("unexpected '-' before SET value %q", val.Text)
		}
		text = "-" + text
	}
	return &SetStmt{Name: name.Text, Value: text}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		gb, err := p.parseGroupBy()
		if err != nil {
			return nil, err
		}
		sel.GroupBy = gb
	}

	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("LIMIT expects a number, found %q", t.Text)
		}
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = &n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != TokIdent {
			return SelectItem{}, p.errorf("expected alias after AS, found %q", t.Text)
		}
		p.next()
		item.Alias = t.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	ref, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		inner := p.atKeyword("INNER")
		if inner {
			p.next()
		}
		if !p.acceptKeyword("JOIN") {
			if inner {
				return nil, p.errorf("expected JOIN after INNER")
			}
			return ref, nil
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ref = &JoinTable{Left: ref, Right: right, Cond: cond}
	}
}

func (p *parser) parsePrimaryTableRef() (TableRef, error) {
	if p.accept(TokSymbol, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		alias, err := p.parseTableAlias()
		if err != nil {
			return nil, err
		}
		if alias == "" {
			return nil, p.errorf("derived table requires an alias")
		}
		return &SubqueryTable{Select: sub, Alias: alias}, nil
	}
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected table name, found %q", t.Text)
	}
	p.next()
	alias, err := p.parseTableAlias()
	if err != nil {
		return nil, err
	}
	return &BaseTable{Name: t.Text, Alias: alias}, nil
}

func (p *parser) parseTableAlias() (string, error) {
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != TokIdent {
			return "", p.errorf("expected alias after AS, found %q", t.Text)
		}
		p.next()
		return t.Text, nil
	}
	if p.at(TokIdent, "") {
		return p.next().Text, nil
	}
	return "", nil
}

// parseGroupBy parses the grouping expressions plus the optional
// similarity clause of Section 4.
func (p *parser) parseGroupBy() (*GroupByClause, error) {
	gb := &GroupByClause{}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		gb.Exprs = append(gb.Exprs, e)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	var sem Semantics
	switch {
	case p.acceptKeyword("DISTANCE-TO-ALL"), p.acceptKeyword("DISTANCE-ALL"):
		sem = SemanticsAll
	case p.acceptKeyword("DISTANCE-TO-ANY"), p.acceptKeyword("DISTANCE-ANY"):
		sem = SemanticsAny
	default:
		return gb, nil // standard GROUP BY
	}
	sim := &SimilarityClause{Semantics: sem, Metric: MetricL2}

	// Optional metric directly after the operator keyword.
	if m, ok := p.parseMetricName(); ok {
		sim.Metric = m
	}
	// Threshold: WITHIN e (single ε) or EPS IN (e1, e2, ...) (ε sweep).
	// EPS is deliberately NOT a reserved word — schemas may use "eps" as
	// a column name — so it is recognized contextually, like SET/DELETE:
	// in this position only WITHIN or EPS IN can follow, making the
	// bare-identifier dispatch unambiguous.
	if p.atIdentWord("EPS") {
		p.next()
		if err := p.expect(TokKeyword, "IN"); err != nil {
			return nil, err
		}
		if sem == SemanticsAll {
			return nil, p.errorf("DISTANCE-TO-ALL does not support EPS IN: ε sweeps exist for DISTANCE-TO-ANY only, whose groups nest as ε grows")
		}
		if err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		if p.at(TokSymbol, ")") {
			return nil, p.errorf("EPS IN list must name at least one ε level")
		}
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			sim.EpsList = append(sim.EpsList, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	} else {
		if err := p.expect(TokKeyword, "WITHIN"); err != nil {
			return nil, err
		}
		eps, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		sim.Eps = eps
	}

	// Table 2 spelling: trailing USING lone/ltwo.
	if p.acceptKeyword("USING") {
		m, ok := p.parseMetricName()
		if !ok {
			return nil, p.errorf("expected metric after USING, found %q", p.peek().Text)
		}
		sim.Metric = m
	}

	// ON-OVERLAP clause ("ON OVERLAP" also accepted); SGB-Any takes none.
	hasOverlap := p.acceptKeyword("ON-OVERLAP")
	if !hasOverlap && p.atKeyword("ON") {
		save := p.i
		p.next()
		if p.acceptKeyword("OVERLAP") {
			hasOverlap = true
		} else {
			p.i = save
		}
	}
	if hasOverlap {
		if sem == SemanticsAny {
			return nil, p.errorf("DISTANCE-TO-ANY does not take an ON-OVERLAP clause")
		}
		switch {
		case p.acceptKeyword("JOIN-ANY"):
			sim.Overlap = OverlapJoinAny
		case p.acceptKeyword("ELIMINATE"):
			sim.Overlap = OverlapEliminate
		case p.acceptKeyword("FORM-NEW-GROUP"), p.acceptKeyword("FORM-NEW"):
			sim.Overlap = OverlapFormNewGroup
		default:
			return nil, p.errorf("expected JOIN-ANY, ELIMINATE, or FORM-NEW-GROUP, found %q", p.peek().Text)
		}
	}

	// Trailing rollup: SIMILARITY CUBE BY EPS emits one aggregate row
	// per sweep level. SIMILARITY and CUBE are contextual identifier
	// words (not reserved; a bare identifier here is a syntax error
	// anyway), so the save/restore mirrors the "ON OVERLAP" handling.
	if p.atIdentWord("SIMILARITY") {
		save := p.i
		p.next()
		if p.atIdentWord("CUBE") {
			p.next()
			if err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			if !p.atIdentWord("EPS") {
				return nil, p.errorf("expected EPS after SIMILARITY CUBE BY, found %q", p.peek().Text)
			}
			p.next()
			if len(sim.EpsList) == 0 {
				return nil, p.errorf("SIMILARITY CUBE BY EPS requires an EPS IN (...) sweep list")
			}
			sim.Cube = true
		} else {
			p.i = save
		}
	}
	gb.Similarity = sim
	return gb, nil
}

// parseMetricName accepts L2/LTWO (Euclidean) and LINF/LONE (maximum).
func (p *parser) parseMetricName() (MetricName, bool) {
	switch {
	case p.acceptKeyword("L2"), p.acceptKeyword("LTWO"):
		return MetricL2, true
	case p.acceptKeyword("LINF"), p.acceptKeyword("LONE"):
		return MetricLInf, true
	default:
		return MetricL2, false
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected table name, found %q", t.Text)
	}
	p.next()
	stmt := &CreateTableStmt{Name: t.Text}
	if err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		ct := p.peek()
		if ct.Kind != TokIdent {
			return nil, p.errorf("expected column name, found %q", ct.Text)
		}
		p.next()
		tt := p.peek()
		if tt.Kind != TokIdent && tt.Kind != TokKeyword {
			return nil, p.errorf("expected column type, found %q", tt.Text)
		}
		p.next()
		kind, err := types.ParseKind(tt.Text)
		if err != nil {
			return nil, p.errorf("unknown column type %q", tt.Text)
		}
		stmt.Columns = append(stmt.Columns, ColumnDef{Name: ct.Text, Type: kind})
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected table name, found %q", t.Text)
	}
	p.next()
	stmt := &InsertStmt{Table: t.Text}
	if p.accept(TokSymbol, "(") {
		for {
			ct := p.peek()
			if ct.Kind != TokIdent {
				return nil, p.errorf("expected column name, found %q", ct.Text)
			}
			p.next()
			stmt.Columns = append(stmt.Columns, ct.Text)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return stmt, nil
}

// parseDelete parses DELETE FROM name [WHERE expr].
func (p *parser) parseDelete() (Statement, error) {
	p.next() // the DELETE word, verified by the caller
	if err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected table name, found %q", t.Text)
	}
	p.next()
	stmt := &DeleteStmt{Table: t.Text}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	p.next() // DROP
	if err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected table name, found %q", t.Text)
	}
	p.next()
	return &DropTableStmt{Name: t.Text}, nil
}

// Expression grammar, lowest precedence first.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// [NOT] IN / BETWEEN
	neg := false
	if p.atKeyword("NOT") && p.i+1 < len(p.toks) &&
		(p.toks[p.i+1].Text == "IN" || p.toks[p.i+1].Text == "BETWEEN") {
		p.next()
		neg = true
	}
	if p.acceptKeyword("IN") {
		return p.parseInTail(l, neg)
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Neg: neg}, nil
	}
	if neg {
		return nil, p.errorf("expected IN or BETWEEN after NOT")
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			norm := op
			if norm == "!=" {
				norm = "<>"
			}
			return &BinaryExpr{Op: norm, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseInTail(l Expr, neg bool) (Expr, error) {
	if err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	if p.atKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, Sub: sub, Neg: neg}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return &InExpr{E: l, List: list, Neg: neg}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "+"):
			op = "+"
		case p.accept(TokSymbol, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "*"):
			op = "*"
		case p.accept(TokSymbol, "/"):
			op = "/"
		case p.accept(TokSymbol, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	if p.accept(TokSymbol, "+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Val: types.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Literal{Val: types.Int(n)}, nil

	case TokString:
		p.next()
		return &Literal{Val: types.Text(t.Text)}, nil

	case TokKeyword:
		// Date-part keywords double as scalar function names (year(d)).
		if (t.Text == "YEAR" || t.Text == "MONTH" || t.Text == "DAY" || t.Text == "WEEK") &&
			p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == TokSymbol && p.toks[p.i+1].Text == "(" {
			p.next()
			p.next() // consume "("
			f := &FuncCall{Name: strings.ToLower(t.Text)}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		switch t.Text {
		case "TRUE":
			p.next()
			return &Literal{Val: types.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: types.Bool(false)}, nil
		case "NULL":
			p.next()
			return &Literal{Val: types.Null()}, nil
		case "DATE":
			p.next()
			st := p.peek()
			if st.Kind != TokString {
				return nil, p.errorf("DATE expects a quoted literal, found %q", st.Text)
			}
			p.next()
			v, err := types.ParseDate(st.Text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return &Literal{Val: v}, nil
		case "INTERVAL":
			p.next()
			st := p.peek()
			if st.Kind != TokString && st.Kind != TokNumber {
				return nil, p.errorf("INTERVAL expects a quoted count, found %q", st.Text)
			}
			p.next()
			ut := p.peek()
			if ut.Kind != TokKeyword && ut.Kind != TokIdent {
				return nil, p.errorf("INTERVAL expects a unit, found %q", ut.Text)
			}
			p.next()
			v, err := types.ParseInterval(st.Text, ut.Text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return &Literal{Val: v}, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)

	case TokIdent:
		p.next()
		// Function call?
		if p.accept(TokSymbol, "(") {
			f := &FuncCall{Name: strings.ToLower(t.Text)}
			if p.accept(TokSymbol, "*") {
				f.Star = true
				if err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
				return f, nil
			}
			if p.accept(TokSymbol, ")") {
				// count() — the paper's Table 2 spelling of count(*).
				if f.Name == "count" {
					f.Star = true
					return f, nil
				}
				return nil, p.errorf("function %s requires arguments", f.Name)
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Args = append(f.Args, e)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
			if err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		// Qualified column?
		if p.accept(TokSymbol, ".") {
			ct := p.peek()
			if ct.Kind != TokIdent {
				return nil, p.errorf("expected column after %q., found %q", t.Text, ct.Text)
			}
			p.next()
			return &ColumnRef{Table: t.Text, Name: ct.Text}, nil
		}
		return &ColumnRef{Name: t.Text}, nil

	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}
