package sqlparser

import (
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/types"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sel
}

func TestBasicSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b AS bee, count(*) FROM t WHERE a > 3 LIMIT 10")
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "bee" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	fc, ok := sel.Items[2].Expr.(*FuncCall)
	if !ok || !fc.Star || fc.Name != "count" {
		t.Errorf("count(*) parsed as %#v", sel.Items[2].Expr)
	}
	if sel.Limit == nil || *sel.Limit != 10 {
		t.Errorf("limit = %v", sel.Limit)
	}
	if sel.Where == nil {
		t.Error("missing WHERE")
	}
}

func TestSGBAllClause(t *testing.T) {
	sel := mustSelect(t, `
		SELECT count(*) FROM GPSPoints
		GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3
		ON-OVERLAP FORM-NEW-GROUP`)
	gb := sel.GroupBy
	if gb == nil || gb.Similarity == nil {
		t.Fatal("missing similarity clause")
	}
	sim := gb.Similarity
	if sim.Semantics != SemanticsAll || sim.Metric != MetricLInf || sim.Overlap != OverlapFormNewGroup {
		t.Errorf("clause = %+v", sim)
	}
	if len(gb.Exprs) != 2 {
		t.Errorf("grouping exprs = %d", len(gb.Exprs))
	}
	lit, ok := sim.Eps.(*Literal)
	if !ok || lit.Val.I != 3 {
		t.Errorf("eps = %v", sim.Eps)
	}
}

func TestSGBAnyClause(t *testing.T) {
	sel := mustSelect(t, `
		SELECT count(*) FROM GPSPoints
		GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 3`)
	sim := sel.GroupBy.Similarity
	if sim == nil || sim.Semantics != SemanticsAny || sim.Metric != MetricL2 {
		t.Fatalf("clause = %+v", sim)
	}
}

func TestSGBAnyRejectsOverlap(t *testing.T) {
	_, err := ParseSelect(`SELECT count(*) FROM t
		GROUP BY a, b DISTANCE-TO-ANY WITHIN 1 ON-OVERLAP ELIMINATE`)
	if err == nil {
		t.Fatal("accepted ON-OVERLAP with DISTANCE-TO-ANY")
	}
}

// TestTable2Spelling covers the abbreviated forms used in the paper's
// Table 2 queries: DISTANCE-ALL, USING ltwo/lone, "on overlap", FORM-NEW.
func TestTable2Spelling(t *testing.T) {
	sel := mustSelect(t, `
		SELECT count(), sum(tprof), sum(stime)
		FROM profit
		GROUP BY tprof, stime DISTANCE-ALL WITHIN 0.5 USING ltwo
		on overlap form-new`)
	sim := sel.GroupBy.Similarity
	if sim == nil {
		t.Fatal("missing similarity clause")
	}
	if sim.Semantics != SemanticsAll || sim.Metric != MetricL2 || sim.Overlap != OverlapFormNewGroup {
		t.Errorf("clause = %+v", sim)
	}
	// count() ≡ count(*).
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Star {
		t.Error("count() not normalized to count(*)")
	}

	sel = mustSelect(t, `
		SELECT sum(x) FROM t
		GROUP BY a, b DISTANCE-ANY WITHIN 2 USING lone`)
	if sel.GroupBy.Similarity.Metric != MetricLInf {
		t.Error("lone not mapped to LINF")
	}
}

// TestHyphenBacktracking: identifier minus identifier must not be eaten
// by the hyphen-keyword fusion (l_receiptdate-l_shipdate in SGB3).
func TestHyphenBacktracking(t *testing.T) {
	sel := mustSelect(t, "SELECT sum(l_receiptdate-l_shipdate) FROM lineitem")
	fc := sel.Items[0].Expr.(*FuncCall)
	be, ok := fc.Args[0].(*BinaryExpr)
	if !ok || be.Op != "-" {
		t.Fatalf("arg parsed as %#v", fc.Args[0])
	}
	// A word starting a hyphen keyword prefix but not completing one.
	sel = mustSelect(t, "SELECT distance-cost FROM t")
	be, ok = sel.Items[0].Expr.(*BinaryExpr)
	if !ok || be.Op != "-" {
		t.Fatalf("distance-cost parsed as %#v", sel.Items[0].Expr)
	}
}

func TestDerivedTableAndJoin(t *testing.T) {
	sel := mustSelect(t, `
		SELECT r1.a, r2.b
		FROM (SELECT a FROM t1 WHERE a > 0) AS r1, t2 r2
		WHERE r1.a = r2.a`)
	if len(sel.From) != 2 {
		t.Fatalf("from = %d", len(sel.From))
	}
	if _, ok := sel.From[0].(*SubqueryTable); !ok {
		t.Errorf("first ref = %#v", sel.From[0])
	}
	bt, ok := sel.From[1].(*BaseTable)
	if !ok || bt.Alias != "r2" {
		t.Errorf("second ref = %#v", sel.From[1])
	}

	sel = mustSelect(t, "SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y")
	jt, ok := sel.From[0].(*JoinTable)
	if !ok {
		t.Fatalf("join = %#v", sel.From[0])
	}
	if _, ok := jt.Left.(*JoinTable); !ok {
		t.Error("left-deep join expected")
	}
}

func TestInSubquery(t *testing.T) {
	sel := mustSelect(t, `
		SELECT o_orderkey FROM orders
		WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey
		                     HAVING sum(l_quantity) > 300)`)
	in, ok := sel.Where.(*InExpr)
	if !ok || in.Sub == nil {
		t.Fatalf("where = %#v", sel.Where)
	}
	if in.Sub.Having == nil {
		t.Error("subquery HAVING lost")
	}
	sel = mustSelect(t, "SELECT * FROM t WHERE a NOT IN (1, 2, 3)")
	in = sel.Where.(*InExpr)
	if !in.Neg || len(in.List) != 3 {
		t.Errorf("not-in = %#v", in)
	}
}

func TestDateAndInterval(t *testing.T) {
	sel := mustSelect(t, `
		SELECT * FROM lineitem
		WHERE l_shipdate > date '1995-01-01'
		  AND l_shipdate < date '1996-01-01' + interval '10' month`)
	and := sel.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("where = %v", sel.Where)
	}
	right := and.R.(*BinaryExpr)
	plus := right.R.(*BinaryExpr)
	iv := plus.R.(*Literal)
	if iv.Val.Kind != types.KindInterval || iv.Val.I != 10 {
		t.Errorf("interval = %v", iv.Val)
	}
	left := and.L.(*BinaryExpr)
	d := left.R.(*Literal)
	if d.Val.Kind != types.KindDate || d.Val.String() != "1995-01-01" {
		t.Errorf("date = %v", d.Val)
	}
	// Bracketed TPC-H template dates also parse.
	sel = mustSelect(t, "SELECT * FROM t WHERE d > date '[1995-03-15]'")
	cmp := sel.Where.(*BinaryExpr)
	if cmp.R.(*Literal).Val.String() != "1995-03-15" {
		t.Errorf("bracketed date = %v", cmp.R)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a + b * c - d / 2 FROM t")
	// Expect ((a + (b*c)) - (d/2)).
	e := sel.Items[0].Expr.(*BinaryExpr)
	if e.Op != "-" {
		t.Fatalf("top op = %s", e.Op)
	}
	l := e.L.(*BinaryExpr)
	if l.Op != "+" || l.R.(*BinaryExpr).Op != "*" {
		t.Errorf("left = %v", l)
	}
	if e.R.(*BinaryExpr).Op != "/" {
		t.Errorf("right = %v", e.R)
	}

	sel = mustSelect(t, "SELECT * FROM t WHERE NOT a = 1 OR b = 2 AND c = 3")
	or := sel.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %s", or.Op)
	}
	if _, ok := or.L.(*UnaryExpr); !ok {
		t.Errorf("NOT binding wrong: %v", or.L)
	}
	if or.R.(*BinaryExpr).Op != "AND" {
		t.Errorf("AND binding wrong: %v", or.R)
	}
}

func TestBetween(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b = 2")
	and := sel.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top = %v", sel.Where)
	}
	if _, ok := and.L.(*BetweenExpr); !ok {
		t.Errorf("between = %#v", and.L)
	}
}

func TestCreateInsertDrop(t *testing.T) {
	stmt, err := Parse("CREATE TABLE pts (id INT, lat FLOAT, lon FLOAT, name TEXT, d DATE)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "pts" || len(ct.Columns) != 5 {
		t.Fatalf("create = %+v", ct)
	}
	if ct.Columns[4].Type != types.KindDate {
		t.Errorf("date column type = %v", ct.Columns[4].Type)
	}

	stmt, err = Parse("INSERT INTO pts (id, lat) VALUES (1, 2.5), (2, -3.5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	u := ins.Rows[1][1].(*UnaryExpr)
	if u.Op != "-" {
		t.Errorf("negative literal = %#v", ins.Rows[1][1])
	}

	stmt, err = Parse("DROP TABLE pts;")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropTableStmt).Name != "pts" {
		t.Errorf("drop = %+v", stmt)
	}
}

func TestStringEscapes(t *testing.T) {
	sel := mustSelect(t, "SELECT 'it''s' FROM t")
	lit := sel.Items[0].Expr.(*Literal)
	if lit.Val.S != "it's" {
		t.Errorf("escaped string = %q", lit.Val.S)
	}
}

func TestComments(t *testing.T) {
	sel := mustSelect(t, `SELECT a -- trailing comment
		FROM t -- another
		WHERE a = 1`)
	if sel.Where == nil {
		t.Error("comment swallowed the query")
	}
}

func TestSetStatement(t *testing.T) {
	cases := []struct {
		src, name, value string
	}{
		{"SET algorithm = grid", "algorithm", "grid"},
		{"SET ALGORITHM TO rtree;", "ALGORITHM", "rtree"},
		{"SET parallelism = 4", "parallelism", "4"},
		{"SET parallelism = 0", "parallelism", "0"},
		{"SET seed = -3", "seed", "-3"},
		{"SET whatever = 'text'", "whatever", "text"},
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		set, ok := stmt.(*SetStmt)
		if !ok {
			t.Fatalf("%q: got %T, want *SetStmt", c.src, stmt)
		}
		if set.Name != c.name || set.Value != c.value {
			t.Errorf("%q: got (%q, %q), want (%q, %q)", c.src, set.Name, set.Value, c.name, c.value)
		}
	}
	for _, bad := range []string{"SET", "SET x", "SET x =", "SET = 3", "SET x - 3", "SET x = -foo"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted invalid SET: %q", bad)
		}
	}
	// SET and TO are not reserved: schemas using them as identifiers
	// must keep parsing.
	for _, ok := range []string{
		"SELECT set, to FROM flights",
		"CREATE TABLE flights (origin FLOAT, to FLOAT)",
		"SELECT a FROM set",
	} {
		if _, err := Parse(ok); err != nil {
			t.Errorf("%q: %v", ok, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM (SELECT b FROM t)",     // derived table needs alias
		"SELECT a FROM t GROUP BY a WITHIN 3", // WITHIN without operator
		"SELECT a FROM t LIMIT x",
		"SELECT 'unterminated FROM t",
		"UPDATE t SET a = 1",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT a b c FROM t",
		"SELECT count(*) FROM t GROUP BY a DISTANCE-TO-ALL WITHIN", // missing eps
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid SQL: %q", src)
		}
	}
}

// TestPaperQuerySuite parses every query shape from the paper verbatim
// (Queries 1–3 and the Table 2 SGB forms).
func TestPaperQuerySuite(t *testing.T) {
	queries := []string{
		// Query 1 (MANET, SGB-Any).
		`SELECT ST_Polygon(Device_lat, Device_long)
		 FROM MobileDevices
		 GROUP BY Device_lat, Device_long
		 DISTANCE-TO-ANY L2 WITHIN 30`,
		// Query 2 (MANET gateways).
		`SELECT COUNT(*)
		 FROM MobileDevices
		 GROUP BY Device_lat, Device_long
		 DISTANCE-TO-ALL L2 WITHIN 30
		 ON-OVERLAP FORM-NEW-GROUP`,
		// Query 3 (location-based groups).
		`SELECT List_ID(user_id), ST_Polygon(User_lat, User_long)
		 FROM Users_Frequent_Location
		 GROUP BY User_lat, User_long
		 DISTANCE-TO-ALL L2 WITHIN 0.5
		 ON-OVERLAP ELIMINATE`,
		// SGB1/2 core shape (Table 2).
		`SELECT max(ab), min(tp), max(tp), avg(ab), array_agg(c_custkey)
		 FROM (SELECT c_custkey, c_acctbal AS ab FROM Customer WHERE c_acctbal > 100) AS R1,
		      (SELECT o_custkey, sum(o_totalprice) AS tp FROM Orders, Lineitem
		       WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
		                            GROUP BY l_orderkey HAVING sum(l_quantity) > 300)
		         AND o_orderkey = l_orderkey AND o_totalprice > 30000
		       GROUP BY o_custkey) AS R2
		 WHERE R1.c_custkey = R2.o_custkey
		 GROUP BY ab, tp DISTANCE-ALL WITHIN 10 USING ltwo
		 ON OVERLAP JOIN-ANY`,
		// SGB3/4 core shape.
		`SELECT count(), sum(tprof), sum(stime)
		 FROM (SELECT ps_partkey AS partkey,
		              sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS tprof,
		              sum(l_receiptdate - l_shipdate) AS stime
		       FROM lineitem, partsupp, supplier
		       WHERE ps_partkey = l_partkey AND s_suppkey = ps_suppkey
		       GROUP BY ps_partkey) AS profit
		 GROUP BY tprof, stime DISTANCE-ANY WITHIN 5 USING ltwo`,
		// SGB5/6 core shape.
		`SELECT array_agg(suppkey), sum(trevenue)
		 FROM (SELECT l_suppkey AS suppkey,
		              sum(l_extendedprice * (1 - l_discount)) AS trevenue
		       FROM Lineitem
		       WHERE l_shipdate > date '1995-01-01'
		         AND l_shipdate < date '1996-01-01' + interval '10' month
		       GROUP BY l_suppkey) AS r
		 GROUP BY trevenue, acctbal DISTANCE-ALL WITHIN 100 USING ltwo
		 ON OVERLAP ELIMINATE`,
	}
	for i, q := range queries {
		if _, err := ParseSelect(q); err != nil {
			t.Errorf("paper query %d failed to parse: %v\n%s", i+1, err, q)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// String() output re-parses to an equivalent tree (smoke check on a
	// few representative expressions).
	exprs := []string{
		"SELECT (a + b) * 2 FROM t",
		"SELECT count(*) FROM t",
		"SELECT sum(a - b) FROM t",
	}
	for _, src := range exprs {
		sel := mustSelect(t, src)
		printed := sel.Items[0].Expr.String()
		re := mustSelect(t, "SELECT "+printed+" FROM t")
		if re.Items[0].Expr.String() != printed {
			t.Errorf("round trip: %q -> %q", printed, re.Items[0].Expr.String())
		}
	}
	if !strings.Contains((&InExpr{E: &ColumnRef{Name: "a"}, Sub: &SelectStmt{}}).String(), "subquery") {
		t.Error("InExpr.String subquery form")
	}
}
