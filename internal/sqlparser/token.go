package sqlparser

import "strings"

// TokenKind classifies lexemes.
type TokenKind int

const (
	TokEOF     TokenKind = iota // end of input
	TokIdent                    // identifier (table, column, alias)
	TokNumber                   // numeric literal
	TokString                   // single-quoted string literal
	TokKeyword                  // reserved word or joined SGB keyword
	TokSymbol                   // punctuation and operators
)

// Token is one lexeme with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

// keywords is the reserved-word set. Function names (count, sum, ...)
// are deliberately not reserved; they lex as identifiers and are
// recognized syntactically by the call parentheses.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true, "CREATE": true,
	"TABLE": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DROP": true, "DATE": true, "INTERVAL": true, "WITHIN": true,
	"USING": true, "DISTINCT": true, "OVERLAP": true, "ELIMINATE": true,
	"TRUE": true, "FALSE": true, "NULL": true, "BETWEEN": true,
	"YEAR": true, "MONTH": true, "DAY": true, "WEEK": true,
	"L2": true, "LINF": true, "LONE": true, "LTWO": true,
}

// hyphenKeywords are multi-part keywords joined by '-'; the lexer fuses
// them into single tokens, backing off when the chain is really an
// arithmetic expression over identifiers (a-b).
var hyphenKeywords = map[string]bool{
	"DISTANCE-TO-ALL": true,
	"DISTANCE-TO-ANY": true,
	"DISTANCE-ALL":    true,
	"DISTANCE-ANY":    true,
	"ON-OVERLAP":      true,
	"JOIN-ANY":        true,
	"FORM-NEW-GROUP":  true,
	"FORM-NEW":        true,
}

// hyphenPrefix reports whether s (upper case) is a proper prefix of a
// known hyphenated keyword at a part boundary.
func hyphenPrefix(s string) bool {
	for k := range hyphenKeywords {
		if strings.HasPrefix(k, s+"-") {
			return true
		}
	}
	return false
}
