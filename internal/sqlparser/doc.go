// Package sqlparser implements the lexer, AST, and recursive-descent
// parser for the SGB-extended SQL dialect of the paper: standard
// SELECT/INSERT/CREATE plus the similarity grouping clauses
//
//	GROUP BY a, b DISTANCE-TO-ALL [L2|LINF] WITHIN ε
//	         ON-OVERLAP [JOIN-ANY|ELIMINATE|FORM-NEW-GROUP]
//	GROUP BY a, b DISTANCE-TO-ANY [L2|LINF] WITHIN ε
//
// including the abbreviated spellings used in the paper's Table 2
// (DISTANCE-ALL, USING ltwo/lone, "on overlap join-any", FORM-NEW),
// plus the engine's session statements (SET algorithm | parallelism |
// seed | incremental). See docs/sql.md for the full grammar.
//
// Parsing is deliberately permissive about keywords: SET and TO are
// not reserved (statements dispatch off the leading identifier), so
// schemas using them as column or table names still parse. The parser
// produces pure syntax — semantic checks (table existence, typing,
// constant-ness of ε) belong to internal/plan.
package sqlparser
