package sqlparser

import "testing"

// TestParseDelete covers the DELETE FROM grammar.
func TestParseDelete(t *testing.T) {
	stmt, err := Parse("DELETE FROM sensors WHERE x < 3 AND id IN (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	del, ok := stmt.(*DeleteStmt)
	if !ok {
		t.Fatalf("parsed %T, want *DeleteStmt", stmt)
	}
	if del.Table != "sensors" || del.Where == nil {
		t.Fatalf("parsed %+v", del)
	}
	if got := del.Where.String(); got != "((x < 3) AND (id IN (1, 2)))" {
		t.Fatalf("Where = %s", got)
	}

	stmt, err = Parse("delete from t;")
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(*DeleteStmt); del.Table != "t" || del.Where != nil {
		t.Fatalf("bare delete parsed %+v", del)
	}

	for _, bad := range []string{
		"DELETE sensors",
		"DELETE FROM",
		"DELETE FROM t WHERE",
		"DELETE FROM t extra",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}

	// DELETE is not reserved: schemas using it as an identifier still
	// parse (the statement dispatch matches it only in lead position).
	stmt, err = Parse("SELECT delete FROM t WHERE delete > 1")
	if err != nil {
		t.Fatalf("identifier use of delete: %v", err)
	}
	sel := stmt.(*SelectStmt)
	if ref, ok := sel.Items[0].Expr.(*ColumnRef); !ok || ref.Name != "delete" {
		t.Fatalf("projection parsed as %#v, want column ref delete", sel.Items[0].Expr)
	}
	if _, err := Parse("CREATE TABLE delete (x INT)"); err != nil {
		t.Fatalf("table named delete: %v", err)
	}
}
