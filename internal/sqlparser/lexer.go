package sqlparser

import (
	"fmt"
	"strings"
)

// lexer scans the input into tokens.
type lexer struct {
	src []byte
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: []byte(src)} }

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// next scans the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isLetter(c):
		return l.scanWord(start), nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.scanNumber(start)
	case c == '\'':
		return l.scanString(start)
	}
	// Operators and punctuation, longest first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = string(l.src[l.pos : l.pos+2])
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
	}
	switch c {
	case ',', '(', ')', '*', '+', '-', '/', '=', '<', '>', '.', ';', '%':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isSpace(c) {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

// scanWord scans an identifier or keyword, fusing hyphenated similarity
// keywords (DISTANCE-TO-ALL, ON-OVERLAP, ...) into single tokens. The
// fusion backtracks, so arithmetic over identifiers (a-b) still lexes
// as three tokens.
func (l *lexer) scanWord(start int) Token {
	for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
		l.pos++
	}
	word := string(l.src[start:l.pos])
	upper := strings.ToUpper(word)

	// Attempt hyphen-keyword fusion.
	if hyphenPrefix(upper) {
		joined := upper
		endOfBest := -1
		bestJoined := ""
		save := l.pos
		for l.pos < len(l.src) && l.src[l.pos] == '-' &&
			l.pos+1 < len(l.src) && isLetter(l.src[l.pos+1]) {
			l.pos++ // consume '-'
			ps := l.pos
			for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
				l.pos++
			}
			joined = joined + "-" + strings.ToUpper(string(l.src[ps:l.pos]))
			if hyphenKeywords[joined] {
				endOfBest = l.pos
				bestJoined = joined
			}
			if !hyphenPrefix(joined) {
				break
			}
		}
		if endOfBest >= 0 {
			l.pos = endOfBest
			return Token{Kind: TokKeyword, Text: bestJoined, Pos: start}
		}
		l.pos = save
	}

	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}
}

func (l *lexer) scanNumber(start int) (Token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.src) &&
			(isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+'):
			seenExp = true
			l.pos++
			if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
				l.pos++
			}
		default:
			return Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Pos: start}, nil
		}
	}
	return Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Pos: start}, nil
}

func (l *lexer) scanString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

// lexAll tokenizes the whole input (the parser works on the slice).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
