package sqlparser

import "testing"

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestLexBasicTokens(t *testing.T) {
	toks := lex(t, "SELECT a, 1.5, 'str' FROM t WHERE a <= 3;")
	kinds := []TokenKind{
		TokKeyword, TokIdent, TokSymbol, TokNumber, TokSymbol, TokString,
		TokKeyword, TokIdent, TokKeyword, TokIdent, TokSymbol, TokNumber,
		TokSymbol, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v (%q), want kind %v", i, toks[i].Kind, toks[i].Text, k)
		}
	}
}

func TestLexHyphenKeywordFusion(t *testing.T) {
	cases := map[string]string{
		"DISTANCE-TO-ALL": "DISTANCE-TO-ALL",
		"distance-to-any": "DISTANCE-TO-ANY",
		"Distance-All":    "DISTANCE-ALL",
		"ON-OVERLAP":      "ON-OVERLAP",
		"JOIN-ANY":        "JOIN-ANY",
		"FORM-NEW-GROUP":  "FORM-NEW-GROUP",
		"FORM-NEW":        "FORM-NEW",
	}
	for src, want := range cases {
		toks := lex(t, src)
		if toks[0].Kind != TokKeyword || toks[0].Text != want {
			t.Errorf("lex(%q) = %v %q", src, toks[0].Kind, toks[0].Text)
		}
		if toks[1].Kind != TokEOF {
			t.Errorf("lex(%q) left trailing tokens", src)
		}
	}
}

func TestLexHyphenBackoff(t *testing.T) {
	// distance-cost: DISTANCE is a hyphen-keyword prefix but the chain
	// does not complete a keyword — must lex as ident '-' ident.
	toks := lex(t, "distance-cost")
	if len(toks) != 4 || toks[0].Kind != TokIdent || toks[1].Text != "-" || toks[2].Kind != TokIdent {
		t.Fatalf("backoff = %v", toks)
	}
	// form-newish: FORM-NEW matches a prefix of the chain; the fusion
	// must take the longest complete keyword and stop cleanly.
	toks = lex(t, "form-new-group-x")
	if toks[0].Text != "FORM-NEW-GROUP" || toks[1].Text != "-" || toks[2].Text != "x" {
		t.Fatalf("longest match = %v", toks)
	}
	// a-b where neither part starts a keyword.
	toks = lex(t, "a-b")
	if len(toks) != 4 || toks[1].Text != "-" {
		t.Fatalf("plain minus = %v", toks)
	}
}

func TestLexNumbers(t *testing.T) {
	for src, want := range map[string]string{
		"42":     "42",
		"3.25":   "3.25",
		".5":     ".5",
		"1e6":    "1e6",
		"2.5e-3": "2.5e-3",
		"7E+2":   "7E+2",
	} {
		toks := lex(t, src)
		if toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("lex(%q) = %q", src, toks[0].Text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, "a -- comment to end of line\nb")
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments = %v", toks)
	}
	// A lone '-' is still a minus.
	toks = lex(t, "a - b")
	if toks[1].Text != "-" {
		t.Fatalf("minus = %v", toks)
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks := lex(t, "<= >= <> != < > =")
	want := []string{"<=", ">=", "<>", "!=", "<", ">", "="}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lexAll("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lexAll("a @ b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := lex(t, "'a''b'")
	if toks[0].Kind != TokString || toks[0].Text != "a'b" {
		t.Fatalf("escape = %q", toks[0].Text)
	}
}

func TestTokenPositions(t *testing.T) {
	toks := lex(t, "SELECT a")
	if toks[0].Pos != 0 || toks[1].Pos != 7 {
		t.Fatalf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}
