package sqlparser

import (
	"strings"
	"testing"
)

func TestEpsInClause(t *testing.T) {
	sel := mustSelect(t, `
		SELECT eps, count(*) FROM gps
		GROUP BY lat, lon DISTANCE-TO-ANY L2 EPS IN (0.5, 1, 2.5)`)
	sim := sel.GroupBy.Similarity
	if sim == nil || sim.Semantics != SemanticsAny || sim.Metric != MetricL2 {
		t.Fatalf("clause = %+v", sim)
	}
	if sim.Eps != nil {
		t.Errorf("EPS IN clause also set the single-ε field: %v", sim.Eps)
	}
	if len(sim.EpsList) != 3 {
		t.Fatalf("eps list = %d entries", len(sim.EpsList))
	}
	if sim.Cube {
		t.Error("Cube set without SIMILARITY CUBE BY EPS")
	}
	// Levels stay in source order at the AST layer (the planner sorts).
	want := []float64{0.5, 1, 2.5}
	for i, e := range sim.EpsList {
		lit, ok := e.(*Literal)
		if !ok {
			t.Fatalf("level %d is %T, want literal", i, e)
		}
		got := lit.Val.F
		if lit.Val.F == 0 {
			got = float64(lit.Val.I)
		}
		if got != want[i] {
			t.Errorf("level %d = %v, want %v", i, got, want[i])
		}
	}
}

func TestSimilarityCubeClause(t *testing.T) {
	sel := mustSelect(t, `
		SELECT * FROM gps
		GROUP BY lat, lon DISTANCE-TO-ANY EPS IN (1, 2) SIMILARITY CUBE BY EPS`)
	sim := sel.GroupBy.Similarity
	if sim == nil || !sim.Cube {
		t.Fatalf("cube not parsed: %+v", sim)
	}
	if len(sim.EpsList) != 2 {
		t.Errorf("eps list = %d entries", len(sim.EpsList))
	}
}

func TestEpsInParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`SELECT count(*) FROM t GROUP BY x DISTANCE-TO-ANY EPS IN ()`,
			"at least one"},
		{`SELECT count(*) FROM t GROUP BY x DISTANCE-TO-ALL EPS IN (1, 2)`,
			"DISTANCE-TO-ANY only"},
		{`SELECT * FROM t GROUP BY x DISTANCE-TO-ANY WITHIN 1 SIMILARITY CUBE BY EPS`,
			"requires an EPS IN"},
		{`SELECT count(*) FROM t GROUP BY x DISTANCE-TO-ANY EPS IN (1 2)`,
			""},
		{`SELECT count(*) FROM t GROUP BY x DISTANCE-TO-ANY EPS IN (1, 2`,
			""},
		{`SELECT * FROM t GROUP BY x DISTANCE-TO-ANY EPS IN (1, 2) SIMILARITY CUBE BY epsilon`,
			""},
		{`SELECT * FROM t GROUP BY x DISTANCE-TO-ANY EPS IN (1, 2) SIMILARITY ROLLUP BY EPS`,
			""},
	}
	for _, c := range cases {
		_, err := ParseSelect(c.src)
		if err == nil {
			t.Errorf("accepted %q", c.src)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("parse %q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

// TestEpsContextualKeywords: EPS, SIMILARITY, and CUBE are contextual
// words — plain identifier positions must keep accepting them.
func TestEpsContextualKeywords(t *testing.T) {
	sel := mustSelect(t, `SELECT eps, similarity FROM cube WHERE eps IN (1, 2)`)
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if _, ok := sel.Where.(*InExpr); !ok {
		t.Errorf("WHERE eps IN (...) parsed as %T", sel.Where)
	}
	// An ordinary GROUP BY on a column named eps still works.
	sel = mustSelect(t, `SELECT eps, count(*) FROM t GROUP BY eps`)
	if sel.GroupBy == nil || sel.GroupBy.Similarity != nil {
		t.Fatalf("plain GROUP BY eps: %+v", sel.GroupBy)
	}
}
