// Package convexhull provides the two-dimensional convex-hull machinery
// behind the paper's Convex Hull Test (Procedure 6): the refinement step
// that removes false positives when SGB-All runs under the L2 metric.
//
// Given a group g whose points all passed the ε-All rectangle filter, the
// test exploits two facts proved in Section 6.4 of the paper:
//
//  1. any point inside the hull of g is within diam(g) ≤ ε of every
//     member, and
//  2. for a point x outside the hull, the member farthest from x is a
//     hull vertex, so checking x against that single vertex decides
//     membership.
//
// Hulls are built with Andrew's monotone chain (O(k log k)) into
// caller-owned storage: Scratch.ComputeInto reuses both the hull's
// vertex buffer and the scratch sort/chain buffers, so the rebuild-heavy
// SGB-All path stops allocating once the buffers have grown. Contains
// and Farthest run on the cached hull; Farthest compares squared
// distances (sqrt-free). Only meaningful in two dimensions — higher-d
// groups refine by exact member scans instead (see internal/core).
package convexhull
