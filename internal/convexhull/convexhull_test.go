package convexhull

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

func pts(coords ...float64) []geom.Point {
	out := make([]geom.Point, 0, len(coords)/2)
	for i := 0; i+1 < len(coords); i += 2 {
		out = append(out, geom.Point{coords[i], coords[i+1]})
	}
	return out
}

func TestEmptyAndSingle(t *testing.T) {
	h := Compute(nil)
	if h.Len() != 0 {
		t.Fatalf("empty hull has %d vertices", h.Len())
	}
	if h.Contains(geom.Point{0, 0}) {
		t.Fatal("empty hull contains a point")
	}
	if v, d := h.Farthest(geom.Point{0, 0}, geom.L2); v != nil || d != 0 {
		t.Fatal("empty hull farthest should be nil")
	}

	h = Compute(pts(3, 4))
	if h.Len() != 1 {
		t.Fatalf("single hull has %d vertices", h.Len())
	}
	if !h.Contains(geom.Point{3, 4}) || h.Contains(geom.Point{3, 5}) {
		t.Fatal("single-point containment wrong")
	}
}

func TestTwoPointsAndCollinear(t *testing.T) {
	h := Compute(pts(0, 0, 2, 2))
	if h.Len() != 2 {
		t.Fatalf("segment hull has %d vertices", h.Len())
	}
	if !h.Contains(geom.Point{1, 1}) {
		t.Fatal("midpoint should be on segment")
	}
	if h.Contains(geom.Point{1, 1.1}) {
		t.Fatal("off-segment point contained")
	}

	// All-collinear set collapses to its two extremes.
	h = Compute(pts(0, 0, 1, 1, 2, 2, 3, 3, -1, -1))
	if h.Len() != 2 {
		t.Fatalf("collinear hull has %d vertices: %v", h.Len(), h.Vertices())
	}
	if got := h.Diameter(geom.L2); math.Abs(got-4*math.Sqrt2) > 1e-12 {
		t.Fatalf("collinear diameter = %v", got)
	}
}

func TestSquareHull(t *testing.T) {
	// Square corners plus interior/edge points.
	input := pts(0, 0, 4, 0, 4, 4, 0, 4, 2, 2, 2, 0, 1, 3)
	h := Compute(input)
	if h.Len() != 4 {
		t.Fatalf("square hull has %d vertices: %v", h.Len(), h.Vertices())
	}
	if !h.Contains(geom.Point{2, 2}) || !h.Contains(geom.Point{0, 0}) || !h.Contains(geom.Point{4, 2}) {
		t.Fatal("containment failed for inside/corner/edge point")
	}
	if h.Contains(geom.Point{4.01, 2}) {
		t.Fatal("outside point contained")
	}
	if d := h.Diameter(geom.L2); math.Abs(d-4*math.Sqrt2) > 1e-12 {
		t.Fatalf("diameter = %v", d)
	}
	if d := h.Diameter(geom.LInf); d != 4 {
		t.Fatalf("LInf diameter = %v", d)
	}
	v, d := h.Farthest(geom.Point{-1, -1}, geom.L2)
	if !v.Equal(geom.Point{4, 4}) {
		t.Fatalf("farthest = %v (d=%v)", v, d)
	}
}

func TestDuplicatePoints(t *testing.T) {
	h := Compute(pts(1, 1, 1, 1, 1, 1, 2, 2, 2, 2))
	if h.Len() != 2 {
		t.Fatalf("dup hull has %d vertices", h.Len())
	}
}

func randPoints(r *rand.Rand, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{r.Float64()*10 - 5, r.Float64()*10 - 5}
	}
	return out
}

// Property: the hull contains every input point; hull vertices are a
// subset of the input; walking the boundary never makes a clockwise turn.
func TestHullProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		input := randPoints(r, 1+r.Intn(60))
		h := Compute(input)
		for _, p := range input {
			if !h.Contains(p) {
				t.Fatalf("trial %d: hull does not contain input point %v", trial, p)
			}
		}
		inputSet := make(map[[2]float64]bool)
		for _, p := range input {
			inputSet[[2]float64{p[0], p[1]}] = true
		}
		vs := h.Vertices()
		for _, v := range vs {
			if !inputSet[[2]float64{v[0], v[1]}] {
				t.Fatalf("trial %d: hull vertex %v not an input point", trial, v)
			}
		}
		if len(vs) >= 3 {
			for i := range vs {
				a, b, c := vs[i], vs[(i+1)%len(vs)], vs[(i+2)%len(vs)]
				if cross(a, b, c) <= 0 {
					t.Fatalf("trial %d: non-CCW turn at %v %v %v", trial, a, b, c)
				}
			}
		}
	}
}

// Property: Diameter equals the brute-force max pairwise distance over
// the original points, and Farthest matches the brute-force farthest,
// for both metrics — the two facts the Convex Hull Test relies on.
func TestDiameterAndFarthestMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		input := randPoints(r, 2+r.Intn(50))
		h := Compute(input)
		for _, m := range []geom.Metric{geom.L2, geom.LInf} {
			var want float64
			for i := range input {
				for j := i + 1; j < len(input); j++ {
					if d := m.Dist(input[i], input[j]); d > want {
						want = d
					}
				}
			}
			if got := h.Diameter(m); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d %v: diameter %v != brute %v", trial, m, got, want)
			}
			q := geom.Point{r.Float64()*30 - 15, r.Float64()*30 - 15}
			var wantFar float64
			for _, p := range input {
				if d := m.Dist(q, p); d > wantFar {
					wantFar = d
				}
			}
			if _, got := h.Farthest(q, m); math.Abs(got-wantFar) > 1e-9 {
				t.Fatalf("trial %d %v: farthest %v != brute %v", trial, m, got, wantFar)
			}
		}
	}
}

// Property: containment test agrees with a brute-force half-plane check
// built from the hull itself applied to random probes.
func TestContainsAgainstHalfPlanes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		input := randPoints(r, 3+r.Intn(40))
		h := Compute(input)
		vs := h.Vertices()
		if len(vs) < 3 {
			continue
		}
		for probe := 0; probe < 50; probe++ {
			q := geom.Point{r.Float64()*14 - 7, r.Float64()*14 - 7}
			want := true
			for i := range vs {
				if cross(vs[i], vs[(i+1)%len(vs)], q) < 0 {
					want = false
					break
				}
			}
			if got := h.Contains(q); got != want {
				t.Fatalf("trial %d: Contains(%v) = %v, want %v", trial, q, got, want)
			}
		}
	}
}

func BenchmarkCompute1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	input := randPoints(r, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(input)
	}
}

// TestScratchReuseMatchesCompute drives one Scratch and one Hull
// through many rebuilds of varying size — the SGB-All group-rebuild
// pattern — and checks every result against a fresh Compute.
func TestScratchReuseMatchesCompute(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var sc Scratch
	reused := &Hull{}
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(40)
		in := make([]geom.Point, n)
		for i := range in {
			// Snapped coordinates exercise duplicates and collinear runs.
			in[i] = geom.Point{float64(r.Intn(8)), float64(r.Intn(8))}
		}
		want := Compute(in)
		sc.ComputeInto(reused, in)
		if reused.Len() != want.Len() {
			t.Fatalf("trial %d: %d vertices, want %d", trial, reused.Len(), want.Len())
		}
		for i, v := range reused.Vertices() {
			if !v.Equal(want.Vertices()[i]) {
				t.Fatalf("trial %d vertex %d: %v, want %v", trial, i, v, want.Vertices()[i])
			}
		}
	}
}

// TestScratchAllocs verifies rebuilds stop allocating once the buffers
// have grown (the satellite's point: large-group hull rebuilds were a
// per-rebuild allocation source).
func TestScratchAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	in := make([]geom.Point, 200)
	for i := range in {
		in[i] = geom.Point{r.Float64() * 10, r.Float64() * 10}
	}
	var sc Scratch
	h := &Hull{}
	sc.ComputeInto(h, in) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		sc.ComputeInto(h, in)
	})
	if allocs > 1 { // SortFunc's closure may escape on some toolchains
		t.Fatalf("steady-state rebuild allocates %.0f times per run", allocs)
	}
}
