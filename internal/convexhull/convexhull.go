package convexhull

import (
	"cmp"
	"math"
	"slices"

	"github.com/sgb-db/sgb/internal/geom"
)

// Hull is the convex hull of a set of 2-D points, stored as vertices in
// counter-clockwise order with no three collinear vertices.
type Hull struct {
	vertices []geom.Point
}

// cross returns the z-component of (b-a) × (c-a): positive when a→b→c
// turns counter-clockwise, negative when clockwise, zero when collinear.
func cross(a, b, c geom.Point) float64 {
	return (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
}

// Compute builds the convex hull of pts using Andrew's monotone chain
// (O(m log m)). Input points must be 2-D; duplicates are tolerated.
// Degenerate inputs (0, 1, 2 points, or all-collinear sets) yield hulls
// with fewer than three vertices, which every query method handles.
func Compute(pts []geom.Point) *Hull {
	var sc Scratch
	h := &Hull{}
	sc.ComputeInto(h, pts)
	return h
}

// Scratch holds the transient buffers of a hull computation — the
// sorted point copy and the two monotone chains — so repeated rebuilds
// (SGB-All recomputes a group's hull after every membership change
// once the group outgrows the member-scan shortcut) stop allocating
// after the buffers reach steady-state size. The zero value is ready
// to use; a Scratch is not safe for concurrent use.
type Scratch struct {
	pts          []geom.Point
	lower, upper []geom.Point
}

// ComputeInto rebuilds dst as the convex hull of pts, equivalent to
// *dst = *Compute(pts) but reusing both sc's buffers and dst's vertex
// storage. dst keeps views of the input points, exactly like Compute.
func (sc *Scratch) ComputeInto(dst *Hull, pts []geom.Point) {
	dst.vertices = dst.vertices[:0]
	if len(pts) == 0 {
		return
	}
	// Sort a copy lexicographically by (x, y).
	sorted := append(sc.pts[:0], pts...)
	sc.pts = sorted[:0]
	slices.SortFunc(sorted, func(a, b geom.Point) int {
		if a[0] != b[0] {
			return cmp.Compare(a[0], b[0])
		}
		return cmp.Compare(a[1], b[1])
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		last := uniq[len(uniq)-1]
		if p[0] != last[0] || p[1] != last[1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) <= 2 {
		dst.vertices = append(dst.vertices, uniq...)
		return
	}

	// Lower hull.
	lower := sc.lower[:0]
	for _, p := range uniq {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	sc.lower = lower[:0]
	// Upper hull.
	upper := sc.upper[:0]
	for i := len(uniq) - 1; i >= 0; i-- {
		p := uniq[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	sc.upper = upper[:0]
	// Concatenate, dropping each chain's last point (duplicated ends).
	hull := append(dst.vertices, lower[:len(lower)-1]...)
	hull = append(hull, upper[:len(upper)-1]...)
	if len(hull) > 2 && collinearLoop(hull) {
		// All points collinear: keep the two extremes only.
		e := extreme(hull)
		hull = append(hull[:0], hull[0], e)
	}
	dst.vertices = hull
}

// collinearLoop reports whether every vertex triple is collinear.
func collinearLoop(vs []geom.Point) bool {
	for i := 2; i < len(vs); i++ {
		if cross(vs[0], vs[1], vs[i]) != 0 {
			return false
		}
	}
	return true
}

// extreme returns the vertex farthest from vs[0].
func extreme(vs []geom.Point) geom.Point {
	best, bd := vs[0], -1.0
	for _, v := range vs[1:] {
		if d := geom.L2.Dist(vs[0], v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

// Vertices returns the hull vertices in counter-clockwise order.
// The returned slice is owned by the hull; callers must not mutate it.
func (h *Hull) Vertices() []geom.Point { return h.vertices }

// Len returns the number of hull vertices.
func (h *Hull) Len() int { return len(h.vertices) }

// Contains reports whether p lies inside or on the hull boundary.
func (h *Hull) Contains(p geom.Point) bool {
	vs := h.vertices
	switch len(vs) {
	case 0:
		return false
	case 1:
		return vs[0][0] == p[0] && vs[0][1] == p[1]
	case 2:
		return onSegment(vs[0], vs[1], p)
	}
	prev := vs[len(vs)-1]
	for _, v := range vs {
		if cross(prev, v, p) < 0 {
			return false
		}
		prev = v
	}
	return true
}

// onSegment reports whether p lies on the closed segment ab.
func onSegment(a, b, p geom.Point) bool {
	if cross(a, b, p) != 0 {
		return false
	}
	return math.Min(a[0], b[0]) <= p[0] && p[0] <= math.Max(a[0], b[0]) &&
		math.Min(a[1], b[1]) <= p[1] && p[1] <= math.Max(a[1], b[1])
}

// Farthest returns the hull vertex with maximum metric distance from p
// and that distance. This realizes getMaxDistElem of Procedure 6: the
// farthest point of a convex set from any query point is a vertex of its
// hull, so scanning the h = O(log k) expected vertices suffices.
// Returns (nil, 0) on an empty hull.
func (h *Hull) Farthest(p geom.Point, m geom.Metric) (geom.Point, float64) {
	if m == geom.L2 {
		// Maximize the squared distance and take one square root at
		// the end — sqrt is monotone, so the winning vertex and the
		// reported distance are identical to the per-vertex form.
		var best geom.Point
		bd := -1.0
		px, py := p[0], p[1]
		for _, v := range h.vertices {
			dx := v[0] - px
			dy := v[1] - py
			if d := dx*dx + dy*dy; d > bd {
				best, bd = v, d
			}
		}
		if best == nil {
			return nil, 0
		}
		return best, math.Sqrt(bd)
	}
	var best geom.Point
	bd := -1.0
	for _, v := range h.vertices {
		if d := m.Dist(p, v); d > bd {
			best, bd = v, d
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bd
}

// Diameter returns the maximum pairwise metric distance between hull
// vertices — i.e. the diameter of the original point set, since extreme
// pairs are hull vertices. Uses the O(h²) vertex scan; h is tiny
// (expected O(log k)) in SGB workloads.
func (h *Hull) Diameter(m geom.Metric) float64 {
	var d float64
	vs := h.vertices
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if dd := m.Dist(vs[i], vs[j]); dd > d {
				d = dd
			}
		}
	}
	return d
}
