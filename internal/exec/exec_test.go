package exec

import (
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

func col(i int) Scalar {
	return func(row types.Row) (types.Value, error) { return row[i], nil }
}

func constant(v types.Value) Scalar {
	return func(types.Row) (types.Value, error) { return v, nil }
}

func rowsOf(vals ...[]int64) []types.Row {
	out := make([]types.Row, len(vals))
	for i, vs := range vals {
		r := make(types.Row, len(vs))
		for j, v := range vs {
			r[j] = types.Int(v)
		}
		out[i] = r
	}
	return out
}

func TestSeqScan(t *testing.T) {
	tab := storage.NewTable("t", storage.Schema{{Name: "a", Type: types.KindInt}})
	tab.MustInsert(types.Row{types.Int(1)})
	tab.MustInsert(types.Row{types.Int(2)})
	got, err := Run(&SeqScan{Table: tab})
	if err != nil || len(got) != 2 {
		t.Fatalf("scan: %v, %v", got, err)
	}
	// Re-open rescans.
	got, err = Run(&SeqScan{Table: tab})
	if err != nil || len(got) != 2 {
		t.Fatalf("rescan: %v, %v", got, err)
	}
}

func TestFilterProjectLimit(t *testing.T) {
	src := &ValuesOp{Rows: rowsOf([]int64{1}, []int64{2}, []int64{3}, []int64{4})}
	pred := func(row types.Row) (types.Value, error) {
		return types.Bool(row[0].I%2 == 0), nil
	}
	double := func(row types.Row) (types.Value, error) {
		return types.Int(row[0].I * 2), nil
	}
	op := &Limit{N: 1, Input: &Project{Exprs: []Scalar{double}, Input: &Filter{Pred: pred, Input: src}}}
	got, err := Run(op)
	if err != nil || len(got) != 1 || got[0][0].I != 4 {
		t.Fatalf("pipeline: %v, %v", got, err)
	}
}

func TestDistinctOp(t *testing.T) {
	src := &ValuesOp{Rows: rowsOf([]int64{1, 2}, []int64{1, 2}, []int64{1, 3})}
	got, err := Run(&Distinct{Input: src})
	if err != nil || len(got) != 2 {
		t.Fatalf("distinct: %v, %v", got, err)
	}
	// Int/Float canonicalization: 2 and 2.0 are duplicates.
	mixed := &ValuesOp{Rows: []types.Row{{types.Int(2)}, {types.Float(2)}}}
	got, err = Run(&Distinct{Input: mixed})
	if err != nil || len(got) != 1 {
		t.Fatalf("mixed distinct: %v, %v", got, err)
	}
}

func TestSortOp(t *testing.T) {
	src := &ValuesOp{Rows: rowsOf([]int64{3, 1}, []int64{1, 2}, []int64{3, 0}, []int64{2, 5})}
	op := &Sort{Input: src, Keys: []SortKey{{Expr: col(0), Desc: true}, {Expr: col(1)}}}
	got, err := Run(op)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{3, 0}, {3, 1}, {2, 5}, {1, 2}}
	for i, w := range want {
		if got[i][0].I != w[0] || got[i][1].I != w[1] {
			t.Fatalf("sort[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestHashJoinOp(t *testing.T) {
	left := &ValuesOp{Rows: rowsOf([]int64{1, 10}, []int64{2, 20}, []int64{2, 21})}
	right := &ValuesOp{Rows: rowsOf([]int64{2, 200}, []int64{3, 300}, []int64{2, 201})}
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys:  []Scalar{col(0)},
		RightKeys: []Scalar{col(0)},
	}
	got, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // keys 2x2 matching
		t.Fatalf("join rows = %d: %v", len(got), got)
	}
	for _, row := range got {
		if len(row) != 4 || row[0].I != row[2].I {
			t.Fatalf("bad join row %v", row)
		}
	}
	// Residual filters out half.
	j2 := &HashJoin{
		Left: left, Right: right,
		LeftKeys:  []Scalar{col(0)},
		RightKeys: []Scalar{col(0)},
		Residual: func(row types.Row) (types.Value, error) {
			return types.Bool(row[1].I == 20 && row[3].I == 200), nil
		},
	}
	got, err = Run(j2)
	if err != nil || len(got) != 1 {
		t.Fatalf("residual join: %v, %v", got, err)
	}
}

func TestNestedLoopJoinOp(t *testing.T) {
	left := &ValuesOp{Rows: rowsOf([]int64{1}, []int64{2})}
	right := &ValuesOp{Rows: rowsOf([]int64{10}, []int64{20})}
	// Cross join (nil cond).
	got, err := Run(&NestedLoopJoin{Left: left, Right: right})
	if err != nil || len(got) != 4 {
		t.Fatalf("cross: %v, %v", got, err)
	}
	// Conditional.
	got, err = Run(&NestedLoopJoin{
		Left:  &ValuesOp{Rows: rowsOf([]int64{1}, []int64{2})},
		Right: &ValuesOp{Rows: rowsOf([]int64{10}, []int64{20})},
		Cond: func(row types.Row) (types.Value, error) {
			return types.Bool(row[0].I*10 == row[1].I), nil
		},
	})
	if err != nil || len(got) != 2 {
		t.Fatalf("cond: %v, %v", got, err)
	}
}

func TestHashAggGrouped(t *testing.T) {
	src := &ValuesOp{Rows: rowsOf(
		[]int64{1, 10}, []int64{1, 20}, []int64{2, 5}, []int64{2, 7}, []int64{3, 1},
	)}
	agg := &HashAgg{
		Input:  src,
		Groups: []Scalar{col(0)},
		Aggs: []AggSpec{
			{Kind: AggCountStar},
			{Kind: AggSum, Args: []Scalar{col(1)}},
			{Kind: AggMin, Args: []Scalar{col(1)}},
			{Kind: AggMax, Args: []Scalar{col(1)}},
			{Kind: AggAvg, Args: []Scalar{col(1)}},
		},
	}
	got, err := Run(agg)
	if err != nil || len(got) != 3 {
		t.Fatalf("agg: %v, %v", got, err)
	}
	// First-seen group order: group 1 first.
	r := got[0]
	if r[0].I != 1 || r[1].I != 2 || r[2].I != 30 || r[3].I != 10 || r[4].I != 20 || r[5].F != 15 {
		t.Fatalf("group 1 = %v", r)
	}
}

func TestHashAggScalarOverEmpty(t *testing.T) {
	agg := &HashAgg{
		Input: &ValuesOp{},
		Aggs: []AggSpec{
			{Kind: AggCountStar},
			{Kind: AggSum, Args: []Scalar{col(0)}},
			{Kind: AggMin, Args: []Scalar{col(0)}},
		},
	}
	got, err := Run(agg)
	if err != nil || len(got) != 1 {
		t.Fatalf("scalar agg: %v, %v", got, err)
	}
	if got[0][0].I != 0 || !got[0][1].IsNull() || !got[0][2].IsNull() {
		t.Fatalf("empty-input aggregates = %v", got[0])
	}
}

func TestAggNullHandling(t *testing.T) {
	src := &ValuesOp{Rows: []types.Row{
		{types.Int(1)}, {types.Null()}, {types.Int(3)},
	}}
	agg := &HashAgg{
		Input: src,
		Aggs: []AggSpec{
			{Kind: AggCountStar},
			{Kind: AggCount, Args: []Scalar{col(0)}},
			{Kind: AggSum, Args: []Scalar{col(0)}},
			{Kind: AggAvg, Args: []Scalar{col(0)}},
		},
	}
	got, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	r := got[0]
	if r[0].I != 3 || r[1].I != 2 || r[2].I != 4 || r[3].F != 2 {
		t.Fatalf("null handling = %v", r)
	}
}

func TestSumIntOverflowToFloatPromotion(t *testing.T) {
	src := &ValuesOp{Rows: []types.Row{
		{types.Int(1)}, {types.Float(0.5)},
	}}
	agg := &HashAgg{Input: src, Aggs: []AggSpec{{Kind: AggSum, Args: []Scalar{col(0)}}}}
	got, err := Run(agg)
	if err != nil || got[0][0].Kind != types.KindFloat || got[0][0].F != 1.5 {
		t.Fatalf("promotion = %v, %v", got, err)
	}
}

func TestArrayAggAndPolygon(t *testing.T) {
	src := &ValuesOp{Rows: []types.Row{
		{types.Int(1), types.Float(0), types.Float(0)},
		{types.Int(2), types.Float(4), types.Float(0)},
		{types.Int(3), types.Float(0), types.Float(4)},
	}}
	agg := &HashAgg{Input: src, Aggs: []AggSpec{
		{Kind: AggArrayAgg, Args: []Scalar{col(0)}},
		{Kind: AggSTPolygon, Args: []Scalar{col(1), col(2)}},
	}}
	got, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].S != "[1, 2, 3]" {
		t.Errorf("array_agg = %q", got[0][0].S)
	}
	poly := got[0][1].S
	if !strings.HasPrefix(poly, "POLYGON((") || !strings.HasSuffix(poly, "))") {
		t.Errorf("polygon = %q", poly)
	}
	// Ring closes on the first vertex.
	inner := strings.TrimSuffix(strings.TrimPrefix(poly, "POLYGON(("), "))")
	verts := strings.Split(inner, ", ")
	if verts[0] != verts[len(verts)-1] {
		t.Errorf("unclosed ring: %q", poly)
	}
}

func TestPolygonEmptyAndAggValidation(t *testing.T) {
	agg := &HashAgg{Input: &ValuesOp{}, Aggs: []AggSpec{
		{Kind: AggSTPolygon, Args: []Scalar{col(0), col(1)}},
	}}
	got, err := Run(agg)
	if err != nil || got[0][0].S != "POLYGON EMPTY" {
		t.Fatalf("empty polygon: %v, %v", got, err)
	}
	bad := &HashAgg{Input: &ValuesOp{}, Aggs: []AggSpec{
		{Kind: AggSum}, // missing arg
	}}
	if _, err := Run(bad); err == nil {
		t.Error("sum without args accepted")
	}
	bad2 := &HashAgg{Input: &ValuesOp{}, Aggs: []AggSpec{
		{Kind: AggSTPolygon, Args: []Scalar{col(0)}},
	}}
	if _, err := Run(bad2); err == nil {
		t.Error("st_polygon with one arg accepted")
	}
	bad3 := &HashAgg{Input: &ValuesOp{}, Aggs: []AggSpec{
		{Kind: AggCountStar, Args: []Scalar{col(0)}},
	}}
	if _, err := Run(bad3); err == nil {
		t.Error("count(*) with args accepted")
	}
}

func TestParseAggKind(t *testing.T) {
	for name, want := range map[string]AggKind{
		"count": AggCount, "SUM": AggSum, "Avg": AggAvg, "min": AggMin,
		"max": AggMax, "array_agg": AggArrayAgg, "list_id": AggArrayAgg,
		"st_polygon": AggSTPolygon,
	} {
		got, ok := ParseAggKind(name)
		if !ok || got != want {
			t.Errorf("ParseAggKind(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseAggKind("year"); ok {
		t.Error("year treated as aggregate")
	}
}

func TestSGBOperatorNode(t *testing.T) {
	// The Figure 2 points through the executor node directly.
	src := &ValuesOp{Rows: []types.Row{
		{types.Float(2), types.Float(5)},
		{types.Float(3), types.Float(6)},
		{types.Float(7), types.Float(5)},
		{types.Float(8), types.Float(6)},
		{types.Float(5), types.Float(4)},
	}}
	node := &SGB{
		Input:      src,
		GroupExprs: []Scalar{col(0), col(1)},
		Opt: core.Options{
			Metric: geom.LInf, Eps: 3, Overlap: core.Eliminate,
			Algorithm: core.OnTheFlyIndex,
		},
		Aggs: []AggSpec{{Kind: AggCountStar}},
	}
	got, err := Run(node)
	if err != nil || len(got) != 2 {
		t.Fatalf("sgb node: %v, %v", got, err)
	}
	if got[0][0].I != 2 || got[1][0].I != 2 {
		t.Fatalf("counts = %v", got)
	}
	// NULL grouping attribute errors.
	nullSrc := &ValuesOp{Rows: []types.Row{{types.Null(), types.Float(1)}}}
	node.Input = nullSrc
	if _, err := Run(node); err == nil {
		t.Error("NULL grouping attribute accepted")
	}
	// Text grouping attribute errors.
	textSrc := &ValuesOp{Rows: []types.Row{{types.Text("x"), types.Float(1)}}}
	node.Input = textSrc
	if _, err := Run(node); err == nil {
		t.Error("text grouping attribute accepted")
	}
}
