package exec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// Scalar is a compiled scalar expression evaluated against a row.
type Scalar func(types.Row) (types.Value, error)

// Operator is a Volcano iterator. Next returns a nil row at end of
// stream. Rows returned by Next are owned by the caller.
type Operator interface {
	Open() error
	Next() (types.Row, error)
	Close() error
}

// Run drains op and returns all rows (Open/Close included).
func Run(op Operator) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	for {
		row, err := op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// SeqScan scans an in-memory table. Open captures the table's
// snapshot (rows + generation) in one coherent read, so the scan —
// and everything computed from it — observes exactly one table state
// even while concurrent statements mutate the table.
type SeqScan struct {
	Table *storage.Table
	rows  []types.Row
	gen   int64
	pos   int
}

// Open captures the table snapshot and resets the scan.
func (s *SeqScan) Open() error {
	s.rows, s.gen = s.Table.Snapshot()
	s.pos = 0
	return nil
}

// SnapshotGen returns the generation of the snapshot Open captured.
// The engine's incremental-cache hooks use it to stamp cached
// evaluator state with the exact table version the scanned rows came
// from (reading Table.Generation at grouping time instead would race
// with concurrent mutations).
func (s *SeqScan) SnapshotGen() int64 { return s.gen }

// Next returns the next snapshot row. The returned slice aliases table
// storage; downstream operators treat rows as immutable.
func (s *SeqScan) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close is a no-op.
func (s *SeqScan) Close() error { return nil }

// ValuesOp emits a fixed set of rows (used for tests and VALUES).
type ValuesOp struct {
	Rows []types.Row
	pos  int
}

// Open rewinds to the first literal row.
func (v *ValuesOp) Open() error { v.pos = 0; return nil }

// Next emits the literal rows in order.
func (v *ValuesOp) Next() (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	row := v.Rows[v.pos]
	v.pos++
	return row, nil
}

// Close is a no-op.
func (v *ValuesOp) Close() error { return nil }

// Filter emits input rows for which Pred is TRUE.
type Filter struct {
	Input Operator
	Pred  Scalar
}

// Open opens the input.
func (f *Filter) Open() error { return f.Input.Open() }

// Close closes the input.
func (f *Filter) Close() error { return f.Input.Close() }

// Next emits the next input row whose predicate is truthy.
func (f *Filter) Next() (types.Row, error) {
	for {
		row, err := f.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.Pred(row)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return row, nil
		}
	}
}

// Project computes one output value per expression.
type Project struct {
	Input Operator
	Exprs []Scalar
}

// Open opens the input.
func (p *Project) Open() error { return p.Input.Open() }

// Close closes the input.
func (p *Project) Close() error { return p.Input.Close() }

// Next evaluates the projection expressions over the next input row.
func (p *Project) Next() (types.Row, error) {
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Limit emits at most N rows.
type Limit struct {
	Input Operator
	N     int64
	seen  int64
}

// Open opens the input and resets the row budget.
func (l *Limit) Open() error { l.seen = 0; return l.Input.Open() }

// Close closes the input.
func (l *Limit) Close() error { return l.Input.Close() }

// Next passes rows through until N have been emitted.
func (l *Limit) Next() (types.Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Distinct removes duplicate rows (full-row comparison).
type Distinct struct {
	Input Operator
	seen  map[string]bool
}

// Open opens the input and clears the seen-row set.
func (d *Distinct) Open() error {
	d.seen = make(map[string]bool)
	return d.Input.Open()
}

// Close closes the input.
func (d *Distinct) Close() error { return d.Input.Close() }

// Next emits input rows whose encoded form has not been seen.
func (d *Distinct) Next() (types.Row, error) {
	for {
		row, err := d.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		key := rowKey(row)
		if !d.seen[key] {
			d.seen[key] = true
			return row, nil
		}
	}
}

// rowKey builds a hashable row identity (numeric kinds canonicalized).
func rowKey(row types.Row) string {
	var b strings.Builder
	for _, v := range row {
		k := v.Key()
		fmt.Fprintf(&b, "%d:%v|", int(k.Kind), k)
	}
	return b.String()
}

// SortKey is one ORDER BY key over the input row.
type SortKey struct {
	Expr Scalar
	Desc bool
}

// Sort materializes and sorts its input.
type Sort struct {
	Input Operator
	Keys  []SortKey
	rows  []types.Row
	pos   int
}

// Open materializes and sorts the entire input.
func (s *Sort) Open() error {
	s.pos = 0
	s.rows = nil
	if err := s.Input.Open(); err != nil {
		return err
	}
	defer s.Input.Close()
	type keyed struct {
		row  types.Row
		keys []types.Value
	}
	var all []keyed
	for {
		row, err := s.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		ks := make([]types.Value, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.Expr(row)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		all = append(all, keyed{row: row, keys: ks})
	}
	var sortErr error
	sort.SliceStable(all, func(i, j int) bool {
		for k := range s.Keys {
			c, err := types.Compare(all[i].keys[k], all[j].keys[k])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c == 0 {
				continue
			}
			if s.Keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	s.rows = make([]types.Row, len(all))
	for i, k := range all {
		s.rows[i] = k.row
	}
	return nil
}

// Next emits the sorted rows in order.
func (s *Sort) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close releases the sorted materialization.
func (s *Sort) Close() error { s.rows = nil; return nil }
