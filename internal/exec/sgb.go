package exec

import (
	"fmt"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/types"
)

// SGB is the executor node for the similarity group-by operators. Like
// the paper's PostgreSQL extension it materializes the input into a
// tuple store (the ELIMINATE and FORM-NEW-GROUP semantics can only be
// finalized "after processing the complete dataset"), extracts the
// grouping attributes as multi-dimensional points, runs SGB-All or
// SGB-Any from internal/core, and then folds the configured aggregates
// over each output group. Output rows carry the aggregate results in
// spec order.
//
// Opt.Parallelism (threaded down from the planner's SGBParallelism /
// the engine's SET parallelism session setting) selects the worker
// count of core's partition → connect → arbitrate → merge pipeline;
// the node's own plumbing is oblivious to it, and output rows are
// bit-identical at every setting for both operators (including
// JOIN-ANY draws under a fixed seed).
type SGB struct {
	Input Operator
	// GroupExprs are the d grouping-attribute expressions (numeric).
	GroupExprs []Scalar
	// Any selects SGB-Any; otherwise SGB-All.
	Any bool
	// Opt carries metric, ε, overlap clause, algorithm, and seed.
	Opt core.Options
	// Aggs are computed per output group.
	Aggs []AggSpec
	// Group, when non-nil, computes the grouping instead of the
	// one-shot core entry points — the engine's incremental
	// maintenance hook (plan.Builder.SGBIncr): the planner installs a
	// closure that appends only the input's new suffix to cached
	// per-table evaluator state. The closure must return a grouping
	// equal to a one-shot evaluation over the given points.
	Group GroupFunc

	// EpsList, when non-empty, runs an ε sweep instead of a single
	// evaluation (EPS IN (...); SGB-Any only): one shared dendrogram
	// answers every level, and the node emits each level's aggregate
	// rows with the level's ε prepended as output column 0 (the planner
	// binds aggregates at base 1 and exposes the pseudo-column "eps").
	// Levels are expected in ascending order — the planner sorts them —
	// and rows are emitted level by level in that order.
	EpsList []float64
	// Cube replaces per-group aggregate rows with one rollup row per ε
	// level: (eps, group_count, largest_group, grouped_fraction) — the
	// SIMILARITY CUBE BY EPS output. Aggs must be empty.
	Cube bool
	// SweepGroup, when non-nil, computes every sweep level from shared
	// cached state instead of core.SweepAnySet — the engine's
	// ε-lattice cache hook (plan.Builder.SGBSweep). Results align with
	// EpsList.
	SweepGroup SweepFunc

	out []types.Row
	pos int
}

// GroupFunc computes the similarity grouping over the node's
// materialized points (indices in the result refer into the set). gen
// is the generation of the table snapshot the points were scanned
// from (-1 when the input was not a table scan): cached evaluator
// state synchronized with these points is synchronized with exactly
// that table version, so the hook stamps entries with gen instead of
// re-reading the live generation, which concurrent mutations may have
// advanced past the scanned rows.
type GroupFunc func(points *geom.PointSet, gen int64) (*core.Result, error)

// SweepFunc computes the grouping at every ε level of an EPS IN sweep
// over the node's materialized points, aligned with SGB.EpsList. gen
// is the scan's snapshot generation, as for GroupFunc.
type SweepFunc func(points *geom.PointSet, gen int64) ([]*core.Result, error)

// snapshotGen reports the snapshot generation of the node's input, or
// -1 when the input does not scan a table (the planner installs the
// cache hooks only over bare table scans, so -1 reaches a hook only in
// hand-built plans, which then bypass cached state).
func (s *SGB) snapshotGen() int64 {
	if sc, ok := s.Input.(*SeqScan); ok {
		return sc.SnapshotGen()
	}
	return -1
}

// Open materializes the input, extracts the grouping points, runs the
// similarity operator (or the incremental Group hook), and folds the
// aggregates over each output group.
func (s *SGB) Open() error {
	s.out = nil
	s.pos = 0
	for _, a := range s.Aggs {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	if len(s.GroupExprs) == 0 {
		return fmt.Errorf("exec: similarity grouping requires at least one grouping attribute")
	}
	if err := s.Input.Open(); err != nil {
		return err
	}
	defer s.Input.Close()

	// TupleStore + point extraction. The grouping attributes go
	// straight into a flat PointSet — one contiguous buffer with stride
	// d — so the operator core never chases per-row coordinate slices.
	var rows []types.Row
	points := geom.NewPointSet(len(s.GroupExprs))
	for {
		row, err := s.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		p := points.Extend()
		for i, g := range s.GroupExprs {
			v, err := g(row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return fmt.Errorf("exec: NULL similarity grouping attribute in row %d", len(rows))
			}
			f, err := v.AsFloat()
			if err != nil {
				return fmt.Errorf("exec: similarity grouping attribute %d: %v", i+1, err)
			}
			p[i] = f
		}
		rows = append(rows, row)
	}

	if len(s.EpsList) > 0 {
		return s.openSweep(rows, points)
	}

	var res *core.Result
	var err error
	switch {
	case s.Group != nil:
		res, err = s.Group(points, s.snapshotGen())
	case s.Any:
		res, err = core.SGBAnySet(points, s.Opt)
	default:
		res, err = core.SGBAllSet(points, s.Opt)
	}
	if err != nil {
		return err
	}

	for _, g := range res.Groups {
		out, err := s.foldAggs(rows, g, nil)
		if err != nil {
			return err
		}
		s.out = append(s.out, out)
	}
	return nil
}

// foldAggs folds the node's aggregates over one group's rows, placing
// the results after the given prefix values (the sweep path prepends
// the level's ε).
func (s *SGB) foldAggs(rows []types.Row, g core.Group, prefix []types.Value) (types.Row, error) {
	accs := make([]accumulator, len(s.Aggs))
	for i, a := range s.Aggs {
		accs[i] = a.newAccumulator()
	}
	for _, m := range g.Members {
		for _, acc := range accs {
			if err := acc.add(rows[m]); err != nil {
				return nil, err
			}
		}
	}
	out := make(types.Row, 0, len(prefix)+len(s.Aggs))
	out = append(out, prefix...)
	for _, acc := range accs {
		out = append(out, acc.result())
	}
	return out, nil
}

// openSweep evaluates every EPS IN level from one shared dendrogram
// (via the SweepGroup cache hook or core.SweepAnySet) and emits the
// per-level output: aggregate rows with ε prepended, or — under Cube —
// one (eps, group_count, largest_group, grouped_fraction) rollup row
// per level.
func (s *SGB) openSweep(rows []types.Row, points *geom.PointSet) error {
	if !s.Any {
		return fmt.Errorf("exec: EPS IN sweeps exist for DISTANCE-TO-ANY only")
	}
	var results []*core.Result
	var err error
	if s.SweepGroup != nil {
		results, err = s.SweepGroup(points, s.snapshotGen())
	} else {
		results, err = core.SweepAnySet(points, s.EpsList, s.Opt)
	}
	if err != nil {
		return err
	}
	if len(results) != len(s.EpsList) {
		return fmt.Errorf("exec: sweep returned %d levels, want %d", len(results), len(s.EpsList))
	}
	for li, res := range results {
		eps := types.Float(s.EpsList[li])
		if s.Cube {
			largest, grouped := 0, 0
			for _, g := range res.Groups {
				if len(g.Members) > largest {
					largest = len(g.Members)
				}
				if len(g.Members) >= 2 {
					grouped += len(g.Members)
				}
			}
			frac := 0.0
			if n := len(rows); n > 0 {
				frac = float64(grouped) / float64(n)
			}
			s.out = append(s.out, types.Row{
				eps,
				types.Int(int64(len(res.Groups))),
				types.Int(int64(largest)),
				types.Float(frac),
			})
			continue
		}
		for _, g := range res.Groups {
			out, err := s.foldAggs(rows, g, []types.Value{eps})
			if err != nil {
				return err
			}
			s.out = append(s.out, out)
		}
	}
	return nil
}

// Next emits one aggregate row per output group, in group order.
func (s *SGB) Next() (types.Row, error) {
	if s.pos >= len(s.out) {
		return nil, nil
	}
	row := s.out[s.pos]
	s.pos++
	return row, nil
}

// Close releases the materialized output.
func (s *SGB) Close() error { s.out = nil; return nil }
