package exec

import (
	"github.com/sgb-db/sgb/internal/types"
)

// HashJoin is an inner equi-join: it builds a hash table on the left
// input's key values and probes with the right input. Output rows are
// the concatenation leftRow ++ rightRow. An optional Residual predicate
// (over the concatenated row) filters matches with non-equi conditions.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []Scalar
	Residual            Scalar // may be nil

	table   map[string][]types.Row
	current []types.Row // pending matches for the current probe row
	probe   types.Row
	idx     int
}

// Open materializes and hashes the left (build) side.
func (j *HashJoin) Open() error {
	j.table = make(map[string][]types.Row)
	j.current = nil
	j.idx = 0
	if err := j.Left.Open(); err != nil {
		return err
	}
	defer j.Left.Close()
	for {
		row, err := j.Left.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key, err := evalKey(j.LeftKeys, row)
		if err != nil {
			return err
		}
		j.table[key] = append(j.table[key], row)
	}
	return j.Right.Open()
}

// Close releases the hash table and closes the probe side.
func (j *HashJoin) Close() error { j.table = nil; return j.Right.Close() }

// Next probes the hash table with right rows, emitting build ++ probe
// rows that satisfy the residual predicate.
func (j *HashJoin) Next() (types.Row, error) {
	for {
		for j.idx < len(j.current) {
			build := j.current[j.idx]
			j.idx++
			out := make(types.Row, 0, len(build)+len(j.probe))
			out = append(out, build...)
			out = append(out, j.probe...)
			if j.Residual != nil {
				v, err := j.Residual(out)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			return out, nil
		}
		probe, err := j.Right.Next()
		if err != nil || probe == nil {
			return nil, err
		}
		key, err := evalKey(j.RightKeys, probe)
		if err != nil {
			return nil, err
		}
		j.probe = probe
		j.current = j.table[key]
		j.idx = 0
	}
}

// evalKey evaluates the key expressions and encodes them for hashing.
func evalKey(keys []Scalar, row types.Row) (string, error) {
	vals := make(types.Row, len(keys))
	for i, k := range keys {
		v, err := k(row)
		if err != nil {
			return "", err
		}
		vals[i] = v
	}
	return rowKey(vals), nil
}

// NestedLoopJoin is the fallback inner join for conditions without
// equi-join keys: the right side is materialized once and rescanned per
// left row; Cond (may be nil = cross join) filters the concatenation.
type NestedLoopJoin struct {
	Left, Right Operator
	Cond        Scalar

	rightRows []types.Row
	leftRow   types.Row
	idx       int
}

// Open opens the outer side and materializes the inner side.
func (j *NestedLoopJoin) Open() error {
	j.leftRow = nil
	j.idx = 0
	if err := j.Right.Open(); err != nil {
		return err
	}
	defer j.Right.Close()
	j.rightRows = nil
	for {
		row, err := j.Right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		j.rightRows = append(j.rightRows, row)
	}
	return j.Left.Open()
}

// Close releases the inner materialization and closes the outer side.
func (j *NestedLoopJoin) Close() error { j.rightRows = nil; return j.Left.Close() }

// Next emits the next left ++ right row pair passing the condition.
func (j *NestedLoopJoin) Next() (types.Row, error) {
	for {
		if j.leftRow == nil {
			row, err := j.Left.Next()
			if err != nil || row == nil {
				return nil, err
			}
			j.leftRow = row
			j.idx = 0
		}
		for j.idx < len(j.rightRows) {
			right := j.rightRows[j.idx]
			j.idx++
			out := make(types.Row, 0, len(j.leftRow)+len(right))
			out = append(out, j.leftRow...)
			out = append(out, right...)
			if j.Cond != nil {
				v, err := j.Cond(out)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			return out, nil
		}
		j.leftRow = nil
	}
}
