// Package exec implements the Volcano-style (iterator) executor that
// plays the role of PostgreSQL's executor in the paper's prototype:
// sequential scans, filters, projections, hash joins, standard hash
// aggregation, sorting, and the two similarity group-by operator nodes
// (see sgb.go). Operators consume compiled scalar closures rather than
// AST nodes; the planner (internal/plan) produces both.
//
// The SGB node is blocking, like the paper's: ELIMINATE and
// FORM-NEW-GROUP can only be finalized "after processing the complete
// dataset", so Open materializes the input into a tuple store, extracts
// the grouping attributes into a flat geom.PointSet, runs the operator
// core, and folds the configured aggregates over each output group.
// When its Group hook is set (the engine's incremental maintenance
// path, installed by the planner for bare single-table scans), the
// grouping comes from cached per-table state that absorbs only the
// input's new suffix instead of a one-shot core call; the hook must
// return a grouping equal to the one-shot evaluation, so downstream
// aggregation is oblivious to how the groups were obtained.
//
// Invariants: operators follow the Open / Next (nil row = exhausted) /
// Close contract, may be re-Opened after Close, and never mutate input
// rows they did not allocate.
package exec
