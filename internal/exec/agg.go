package exec

import (
	"fmt"
	"strings"

	"github.com/sgb-db/sgb/internal/convexhull"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/types"
)

// AggKind enumerates the supported aggregate functions — the standard
// five plus the paper's user-defined aggregates: array_agg / List-ID
// (Query 3) and ST_Polygon (Queries 1 and 3), which returns the WKT
// polygon of the group's convex hull.
type AggKind int

const (
	AggCountStar AggKind = iota // count(*): rows in the group
	AggCount                    // count(e): non-NULL values
	AggSum                      // sum(e)
	AggAvg                      // avg(e)
	AggMin                      // min(e)
	AggMax                      // max(e)
	AggArrayAgg                 // array_agg(e): values joined in row order
	AggSTPolygon                // st_polygon: WKT hull of the group's points
)

// ParseAggKind maps a function name to its aggregate kind; ok is false
// for non-aggregate functions.
func ParseAggKind(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg", "average", "mean":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "array_agg", "list_id":
		return AggArrayAgg, true
	case "st_polygon":
		return AggSTPolygon, true
	default:
		return 0, false
	}
}

// AggSpec is one aggregate computation: the kind plus its compiled
// argument expressions (empty for count(*); two for st_polygon).
type AggSpec struct {
	Kind AggKind
	Args []Scalar
}

// Validate checks the arity.
func (a AggSpec) Validate() error {
	switch a.Kind {
	case AggCountStar:
		if len(a.Args) != 0 {
			return fmt.Errorf("exec: count(*) takes no arguments")
		}
	case AggSTPolygon:
		if len(a.Args) != 2 {
			return fmt.Errorf("exec: st_polygon takes exactly two arguments")
		}
	default:
		if len(a.Args) != 1 {
			return fmt.Errorf("exec: aggregate takes exactly one argument")
		}
	}
	return nil
}

// accumulator folds rows into one aggregate value.
type accumulator interface {
	add(row types.Row) error
	result() types.Value
}

func (a AggSpec) newAccumulator() accumulator {
	switch a.Kind {
	case AggCountStar:
		return &countAcc{}
	case AggCount:
		return &countAcc{arg: a.Args[0]}
	case AggSum:
		return &sumAcc{arg: a.Args[0]}
	case AggAvg:
		return &avgAcc{arg: a.Args[0]}
	case AggMin:
		return &minmaxAcc{arg: a.Args[0], min: true}
	case AggMax:
		return &minmaxAcc{arg: a.Args[0]}
	case AggArrayAgg:
		return &arrayAcc{arg: a.Args[0]}
	case AggSTPolygon:
		return &polygonAcc{x: a.Args[0], y: a.Args[1]}
	default:
		panic("exec: unknown aggregate")
	}
}

type countAcc struct {
	arg Scalar // nil for count(*)
	n   int64
}

func (c *countAcc) add(row types.Row) error {
	if c.arg != nil {
		v, err := c.arg(row)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
	}
	c.n++
	return nil
}
func (c *countAcc) result() types.Value { return types.Int(c.n) }

// sumAcc keeps integer sums exact, promoting to float on the first
// float input (SQL numeric promotion).
type sumAcc struct {
	arg     Scalar
	anyRow  bool
	isFloat bool
	i       int64
	f       float64
}

func (s *sumAcc) add(row types.Row) error {
	v, err := s.arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	s.anyRow = true
	switch v.Kind {
	case types.KindInt:
		s.i += v.I
		s.f += float64(v.I)
	case types.KindFloat:
		s.isFloat = true
		s.f += v.F
	default:
		return fmt.Errorf("exec: sum over non-numeric %s", v.Kind)
	}
	return nil
}
func (s *sumAcc) result() types.Value {
	if !s.anyRow {
		return types.Null()
	}
	if s.isFloat {
		return types.Float(s.f)
	}
	return types.Int(s.i)
}

type avgAcc struct {
	arg Scalar
	sum float64
	n   int64
}

func (a *avgAcc) add(row types.Row) error {
	v, err := a.arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	f, err := v.AsFloat()
	if err != nil {
		return err
	}
	a.sum += f
	a.n++
	return nil
}
func (a *avgAcc) result() types.Value {
	if a.n == 0 {
		return types.Null()
	}
	return types.Float(a.sum / float64(a.n))
}

type minmaxAcc struct {
	arg  Scalar
	min  bool
	best types.Value
	seen bool
}

func (m *minmaxAcc) add(row types.Row) error {
	v, err := m.arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if !m.seen {
		m.best, m.seen = v, true
		return nil
	}
	c, err := types.Compare(v, m.best)
	if err != nil {
		return err
	}
	if (m.min && c < 0) || (!m.min && c > 0) {
		m.best = v
	}
	return nil
}
func (m *minmaxAcc) result() types.Value {
	if !m.seen {
		return types.Null()
	}
	return m.best
}

// arrayAcc realizes array_agg / List-ID: it renders the collected
// values as "[v1, v2, ...]" text (the engine has no array type; the
// paper's List-ID likewise "returns a list that contains all the
// user-ids within a group").
type arrayAcc struct {
	arg  Scalar
	vals []string
}

func (a *arrayAcc) add(row types.Row) error {
	v, err := a.arg(row)
	if err != nil {
		return err
	}
	a.vals = append(a.vals, v.String())
	return nil
}
func (a *arrayAcc) result() types.Value {
	return types.Text("[" + strings.Join(a.vals, ", ") + "]")
}

// polygonAcc realizes ST_Polygon(x, y): the WKT polygon of the convex
// hull of the group's points — "a polygon that encompasses the group's
// geographical location" (Query 3).
type polygonAcc struct {
	x, y Scalar
	pts  []geom.Point
}

func (p *polygonAcc) add(row types.Row) error {
	xv, err := p.x(row)
	if err != nil {
		return err
	}
	yv, err := p.y(row)
	if err != nil {
		return err
	}
	xf, err := xv.AsFloat()
	if err != nil {
		return err
	}
	yf, err := yv.AsFloat()
	if err != nil {
		return err
	}
	p.pts = append(p.pts, geom.Point{xf, yf})
	return nil
}

func (p *polygonAcc) result() types.Value {
	hull := convexhull.Compute(p.pts)
	vs := hull.Vertices()
	if len(vs) == 0 {
		return types.Text("POLYGON EMPTY")
	}
	var b strings.Builder
	b.WriteString("POLYGON((")
	for i, v := range vs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g %g", v[0], v[1])
	}
	// Close the ring.
	fmt.Fprintf(&b, ", %g %g", vs[0][0], vs[0][1])
	b.WriteString("))")
	return types.Text(b.String())
}

// HashAgg is the standard (equality) GROUP BY operator: one output row
// per distinct grouping key, laid out as groupValues ++ aggResults.
// With no grouping keys it degenerates to a single-row scalar aggregate
// (emitted even for empty input, per SQL).
type HashAgg struct {
	Input  Operator
	Groups []Scalar
	Aggs   []AggSpec

	out []types.Row
	pos int
}

// Open drains the input, accumulating one aggregate row per group key.
func (h *HashAgg) Open() error {
	h.out = nil
	h.pos = 0
	for _, a := range h.Aggs {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	if err := h.Input.Open(); err != nil {
		return err
	}
	defer h.Input.Close()

	type bucket struct {
		keyVals types.Row
		accs    []accumulator
	}
	buckets := make(map[string]*bucket)
	var order []string // deterministic output: first-seen order

	newAccs := func() []accumulator {
		accs := make([]accumulator, len(h.Aggs))
		for i, a := range h.Aggs {
			accs[i] = a.newAccumulator()
		}
		return accs
	}

	for {
		row, err := h.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keyVals := make(types.Row, len(h.Groups))
		for i, g := range h.Groups {
			v, err := g(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		key := rowKey(keyVals)
		b, ok := buckets[key]
		if !ok {
			b = &bucket{keyVals: keyVals, accs: newAccs()}
			buckets[key] = b
			order = append(order, key)
		}
		for _, acc := range b.accs {
			if err := acc.add(row); err != nil {
				return err
			}
		}
	}

	if len(buckets) == 0 && len(h.Groups) == 0 {
		// Scalar aggregate over empty input still yields one row.
		accs := newAccs()
		row := make(types.Row, len(h.Aggs))
		for i, acc := range accs {
			row[i] = acc.result()
		}
		h.out = append(h.out, row)
		return nil
	}

	for _, key := range order {
		b := buckets[key]
		row := make(types.Row, 0, len(b.keyVals)+len(h.Aggs))
		row = append(row, b.keyVals...)
		for _, acc := range b.accs {
			row = append(row, acc.result())
		}
		h.out = append(h.out, row)
	}
	return nil
}

// Next emits the grouped rows in first-seen key order.
func (h *HashAgg) Next() (types.Row, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	row := h.out[h.pos]
	h.pos++
	return row, nil
}

// Close releases the materialized output.
func (h *HashAgg) Close() error { h.out = nil; return nil }
