package storage

import (
	"math"
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/types"
)

func testTable() *Table {
	t := NewTable("t", Schema{{Name: "id", Type: types.KindInt}, {Name: "x", Type: types.KindFloat}})
	for i := 0; i < 6; i++ {
		t.MustInsert(types.Row{types.Int(int64(i)), types.Float(float64(i))})
	}
	return t
}

// TestDeleteRows covers compaction order, validation, and the
// untouched-on-error guarantee.
func TestDeleteRows(t *testing.T) {
	tab := testTable()
	if err := tab.DeleteRows([]int{1, 4}); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 3, 5}
	if tab.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(want))
	}
	for i, id := range want {
		if tab.Rows[i][0].I != id {
			t.Fatalf("row %d = %v, want id %d", i, tab.Rows[i], id)
		}
	}
	if err := tab.DeleteRows(nil); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{-1}, {4}, {1, 1}, {2, 1}} {
		gen := tab.Generation()
		if err := tab.DeleteRows(bad); err == nil {
			t.Fatalf("DeleteRows(%v): want error", bad)
		}
		if tab.Generation() != gen || tab.Len() != 4 {
			t.Fatalf("failed DeleteRows(%v) mutated the table", bad)
		}
	}
}

// TestDeleteRowsDuplicateIndex pins the distinct rejection for
// duplicated indices: a duplicate means the caller double-counted a
// row, and the error must say so rather than blaming sort order.
func TestDeleteRowsDuplicateIndex(t *testing.T) {
	tab := testTable()
	err := tab.DeleteRows([]int{0, 2, 2, 4})
	if err == nil {
		t.Fatal("duplicate delete index accepted")
	}
	if !strings.Contains(err.Error(), "duplicate delete index 2") {
		t.Fatalf("duplicate error reads %q, want the duplicate called out", err)
	}
	err = tab.DeleteRows([]int{3, 1})
	if err == nil {
		t.Fatal("unsorted delete indices accepted")
	}
	if !strings.Contains(err.Error(), "sorted ascending") || strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("disorder error reads %q, want the sortable mistake called out", err)
	}
	if tab.Len() != 6 {
		t.Fatal("failed deletes mutated the table")
	}
}

// TestGeneration pins the counter contract: every successful mutation
// bumps it, failed ones do not, and a delete + reinsert restoring the
// row count still leaves a different generation — the property the
// engine's incremental cache staleness fix rests on.
func TestGeneration(t *testing.T) {
	tab := testTable()
	g0 := tab.Generation()
	if g0 == 0 {
		t.Fatal("inserts did not bump the generation")
	}
	if err := tab.DeleteRows([]int{5}); err != nil {
		t.Fatal(err)
	}
	g1 := tab.Generation()
	if g1 <= g0 {
		t.Fatalf("delete did not bump: %d -> %d", g0, g1)
	}
	tab.MustInsert(types.Row{types.Int(99), types.Float(9)})
	if tab.Len() != 6 {
		t.Fatalf("Len = %d, want restored 6", tab.Len())
	}
	if tab.Generation() <= g1 || tab.Generation() == g0 {
		t.Fatalf("delete+reinsert restored generation %d (was %d)", tab.Generation(), g0)
	}
	// Failed mutations leave the counter alone.
	gen := tab.Generation()
	if err := tab.Insert(types.Row{types.Int(1)}); err == nil {
		t.Fatal("want arity error")
	}
	if err := tab.Insert(types.Row{types.Int(1), types.Float(math.NaN())}); err == nil {
		t.Fatal("want non-finite error")
	}
	if tab.Generation() != gen {
		t.Fatal("failed inserts bumped the generation")
	}
}
