package storage

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/types"
)

func demoTable() *Table {
	t := NewTable("pts", Schema{
		{Name: "id", Type: types.KindInt},
		{Name: "x", Type: types.KindFloat},
		{Name: "name", Type: types.KindText},
		{Name: "flag", Type: types.KindBool},
		{Name: "d", Type: types.KindDate},
	})
	t.MustInsert(types.Row{types.Int(1), types.Float(1.5), types.Text("a"), types.Bool(true), types.Date(100)})
	t.MustInsert(types.Row{types.Int(2), types.Float(-2.5), types.Text("b,c"), types.Bool(false), types.Date(-5)})
	t.MustInsert(types.Row{types.Int(3), types.Null(), types.Null(), types.Null(), types.Null()})
	return t
}

func TestSchemaColumnIndex(t *testing.T) {
	s := demoTable().Schema
	if s.ColumnIndex("X") != 1 { // case-insensitive
		t.Errorf("ColumnIndex(X) = %d", s.ColumnIndex("X"))
	}
	if s.ColumnIndex("missing") != -1 {
		t.Error("missing column found")
	}
	names := s.Names()
	if len(names) != 5 || names[0] != "id" {
		t.Errorf("Names = %v", names)
	}
}

func TestInsertValidation(t *testing.T) {
	tab := NewTable("t", Schema{
		{Name: "a", Type: types.KindInt},
		{Name: "b", Type: types.KindFloat},
	})
	if err := tab.Insert(types.Row{types.Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tab.Insert(types.Row{types.Text("x"), types.Float(1)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	// Int coerces to float columns.
	if err := tab.Insert(types.Row{types.Int(1), types.Int(2)}); err != nil {
		t.Errorf("int→float coercion failed: %v", err)
	}
	if tab.Rows[0][1].Kind != types.KindFloat {
		t.Error("coercion did not rewrite the value")
	}
	// Float does not coerce to int columns.
	if err := tab.Insert(types.Row{types.Float(1.5), types.Float(2)}); err == nil {
		t.Error("float→int accepted")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tab := demoTable()
	if err := c.Create(tab); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(demoTable()); err == nil {
		t.Error("duplicate create accepted")
	}
	got, err := c.Lookup("PTS") // case-insensitive
	if err != nil || got != tab {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("lookup of missing table succeeded")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "pts" {
		t.Errorf("Names = %v", names)
	}
	if err := c.Drop("pts"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("pts"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := demoTable()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("pts2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("rows = %d, want %d", back.Len(), tab.Len())
	}
	for i, row := range tab.Rows {
		for j, v := range row {
			if back.Rows[i][j] != v {
				t.Errorf("cell (%d,%d): %v != %v", i, j, back.Rows[i][j], v)
			}
		}
	}
	if back.Schema[4].Type != types.KindDate {
		t.Errorf("schema type lost: %v", back.Schema[4])
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"",                     // no header
		"a\n1\n",               // header cell without type
		"a:INT\nx\n",           // bad int
		"a:FLOAT\nx\n",         // bad float
		"a:BOOL\nmaybe\n",      // bad bool
		"a:DATE\n1995-13-01\n", // bad date
		"a:WIDGET\n1\n",        // unknown type
		"a:INT,b:INT\n1\n",     // arity mismatch (csv reader catches)
	}
	for _, src := range bad {
		if _, err := ReadCSV("t", strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV accepted %q", src)
		}
	}
	// NULL cells round-trip.
	good := "a:INT\nNULL\n"
	tab, err := ReadCSV("t", strings.NewReader(good))
	if err != nil || !tab.Rows[0][0].IsNull() {
		t.Errorf("NULL cell: %v, %v", tab, err)
	}
}

// TestReadCSVErrorPositions pins that every rejection names where it
// happened — header column, or data row plus column — and that no
// malformed input panics.
func TestReadCSVErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // substrings the error must contain
	}{
		{"empty input", "", []string{"empty CSV input"}},
		{"typeless header cell", "a:INT,b\n", []string{"header column 2", `"b"`}},
		{"empty header name", ":INT\n", []string{"header column 1"}},
		{"unknown header type", "a:WIDGET\n", []string{"header column 1"}},
		{"bad int cell", "a:INT,b:INT\n1,2\n3,x\n", []string{"row 2", `column "b"`, "bad int"}},
		{"bad float cell", "a:FLOAT\n0.5\nnope\n", []string{"row 2", `column "a"`, "bad float"}},
		{"bad bool cell", "a:BOOL\nmaybe\n", []string{"row 1", `column "a"`, "bad bool"}},
		{"bad date cell", "a:DATE\n1995-13-01\n", []string{"row 1", `column "a"`}},
		{"non-finite float", "a:FLOAT\n1.5\n+Inf\n", []string{"row 2", "non-finite"}},
		{"NaN float", "a:FLOAT\nNaN\n", []string{"row 1", "non-finite"}},
		{"ragged row short", "a:INT,b:INT\n1,2\n3\n", []string{"row 2"}},
		{"ragged row long", "a:INT,b:INT\n1,2\n3,4,5\n", []string{"row 2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV("t", strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("ReadCSV accepted %q", tc.src)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}
