// Package storage provides the in-memory relational substrate: column
// schemas, row-oriented tables, and the catalog the planner resolves
// table names against. The paper's prototype lives inside PostgreSQL's
// heap storage; here an in-memory table plays that role (the SGB
// experiments are CPU-bound on the operators, not on I/O). Rows append
// in insertion order and delete by copy-on-write replacement, and
// every mutation bumps a per-table generation counter that the
// engine's incremental grouping cache keys on. Tables carry their own
// RW lock: mutations are exclusive per table, and Snapshot gives
// concurrent readers an immutable (rows, generation) view, so a slow
// grouping query never blocks — and is never corrupted by — writers.
package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/sgb-db/sgb/internal/types"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type types.Kind
}

// Schema is an ordered column list.
type Schema []Column

// ColumnIndex returns the position of the named column (case
// insensitive), or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Table is an in-memory relation: rows append in insertion order, and
// DeleteRows replaces them preserving that order. Every mutation bumps
// a monotonic generation counter, which the engine's incremental
// grouping cache keys on — two reads of a table observing the same
// generation have observed the same rows.
//
// Concurrency: the mutation methods (Insert, InsertBatch, DeleteRows)
// take the table's write lock, and Snapshot returns an immutable
// (rows, generation) view under the read lock, so concurrent readers
// never observe a half-applied statement. The immutability of a
// snapshot rests on two rules: appends only ever write past the
// snapshot's length, and DeleteRows allocates a fresh row slice
// instead of compacting in place (copy-on-write), leaving every
// previously handed-out view intact. Direct access to the exported
// Rows field is reserved for single-writer contexts (data generators,
// recovery, checkpointing under the engine's writer lock).
type Table struct {
	Name   string
	Schema Schema
	Rows   []types.Row

	mu  sync.RWMutex
	gen int64
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Generation returns the table's monotonic mutation counter. It bumps
// on every Insert and DeleteRows, so cached derived state (the
// engine's incremental grouping entries) can detect any mutation it
// did not itself track — including a delete followed by inserts that
// restore the old row count, which a length check alone cannot see.
func (t *Table) Generation() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// Snapshot returns the table's rows and generation as one coherent
// pair. The returned slice is a capacity-capped view that no later
// mutation modifies: appends write past its length and DeleteRows
// replaces the backing array, so the view stays exactly the rows of
// the returned generation for as long as the caller holds it. Queries
// read tables only through snapshots — a grouping over a snapshot
// never blocks (and is never corrupted by) concurrent mutation.
func (t *Table) Snapshot() ([]types.Row, int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Rows[:len(t.Rows):len(t.Rows)], t.gen
}

// Insert appends a row after arity and kind checks (integers are
// coerced to floats for FLOAT columns and vice versa is rejected;
// NULLs are accepted everywhere). Non-finite float values (NaN, ±Inf)
// are rejected: they would poison similarity grouping over the column
// (NaN compares false with everything; both break the ε-grid's cell
// quantization), and no supported workload produces them legitimately.
func (t *Table) Insert(row types.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(row)
}

// InsertBatch appends rows one statement's worth at a time: the whole
// batch applies under one write-lock acquisition, so a concurrent
// Snapshot observes either none of the statement's rows or the prefix
// that had applied when the statement finished — never a mid-statement
// state. Like the row-at-a-time path, a failing row stops the batch
// and leaves the prefix applied; the returned count says how many rows
// made it in.
func (t *Table) InsertBatch(rows []types.Row) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, row := range rows {
		if err := t.insertLocked(row); err != nil {
			return i, err
		}
	}
	return len(rows), nil
}

func (t *Table) insertLocked(row types.Row) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("storage: %s expects %d values, got %d", t.Name, len(t.Schema), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		want := t.Schema[i].Type
		if v.Kind == want {
			if want == types.KindFloat && !finite(v.F) {
				return fmt.Errorf("storage: %s.%s rejects non-finite value %v", t.Name, t.Schema[i].Name, v.F)
			}
			continue
		}
		if want == types.KindFloat && v.Kind == types.KindInt {
			row[i] = types.Float(float64(v.I))
			continue
		}
		return fmt.Errorf("storage: %s.%s expects %s, got %s",
			t.Name, t.Schema[i].Name, want, v.Kind)
	}
	t.Rows = append(t.Rows, row)
	t.gen++
	return nil
}

// finite reports whether f is neither NaN nor ±Inf.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// DeleteRows removes the rows at the given indices (sorted ascending,
// distinct, in range), keeping the survivors in order, and bumps the
// generation counter once. It validates before mutating, so a failed
// call leaves the table untouched. The survivors land in a freshly
// allocated slice (copy-on-write) so row views handed out by earlier
// Snapshot calls stay intact.
func (t *Table) DeleteRows(idx []int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(idx) == 0 {
		return nil
	}
	for k, i := range idx {
		if i < 0 || i >= len(t.Rows) {
			return fmt.Errorf("storage: %s: delete index %d out of range [0, %d)", t.Name, i, len(t.Rows))
		}
		if k > 0 {
			// Distinguish duplicates from mere disorder: a duplicate
			// usually means the caller double-counted a row (and silently
			// deduplicating would hide that bug), while disorder is a
			// sortable mistake.
			if idx[k-1] == i {
				return fmt.Errorf("storage: %s: duplicate delete index %d", t.Name, i)
			}
			if idx[k-1] > i {
				return fmt.Errorf("storage: %s: delete indices must be sorted ascending (%d after %d)", t.Name, i, idx[k-1])
			}
		}
	}
	kept := make([]types.Row, 0, len(t.Rows)-len(idx))
	next := 0
	for i, row := range t.Rows {
		if next < len(idx) && i == idx[next] {
			next++
			continue
		}
		kept = append(kept, row)
	}
	t.Rows = kept
	t.gen++
	return nil
}

// MustInsert panics on insertion failure; for generators and tests.
func (t *Table) MustInsert(row types.Row) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.Rows)
}

// Catalog maps table names (case insensitive) to tables. Safe for
// concurrent readers with exclusive writers.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new table; it fails if the name is taken.
func (c *Catalog) Create(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, exists := c.tables[key]; exists {
		return fmt.Errorf("storage: table %q already exists", t.Name)
	}
	c.tables[key] = t
	return nil
}

// Drop removes a table; it fails if the table is absent.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; !exists {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// Lookup resolves a table name.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %q does not exist", name)
	}
	return t, nil
}

// Names lists registered tables, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// WriteCSV serializes the table (header row of "name:type" cells, then
// data rows) so generated datasets can be saved and reloaded.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Schema))
	rows, _ := t.Snapshot()
	for _, row := range rows {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a table previously produced by WriteCSV. Every
// rejection carries its position — the header column or the 1-based
// data row and column name — so a bad cell in a large file is
// findable: malformed cells, non-finite floats, ragged rows, and a
// missing or malformed header all report where, never panic.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("storage: empty CSV input (missing header)")
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV header: %w", err)
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		parts := strings.SplitN(h, ":", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("storage: CSV header column %d: malformed cell %q (want name:type)", i+1, h)
		}
		kind, err := types.ParseKind(parts[1])
		if err != nil {
			return nil, fmt.Errorf("storage: CSV header column %d: %w", i+1, err)
		}
		schema[i] = Column{Name: parts[0], Type: kind}
	}
	t := NewTable(name, schema)
	for rowNum := 1; ; rowNum++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Ragged rows land here: the csv reader enforces the header's
			// field count on every record.
			return nil, fmt.Errorf("storage: CSV row %d: %w", rowNum, err)
		}
		row := make(types.Row, len(rec))
		for i, cell := range rec {
			v, err := parseCell(cell, schema[i].Type)
			if err != nil {
				return nil, fmt.Errorf("storage: CSV row %d, column %q: %w", rowNum, schema[i].Name, err)
			}
			row[i] = v
		}
		if err := t.Insert(row); err != nil {
			// Insert rejections (non-finite floats, kind mismatches) carry
			// the column; add the row.
			return nil, fmt.Errorf("storage: CSV row %d: %w", rowNum, err)
		}
	}
	return t, nil
}

// parseCell parses one CSV cell; errors are unpositioned (ReadCSV
// wraps them with row and column).
func parseCell(cell string, kind types.Kind) (types.Value, error) {
	if cell == "NULL" {
		return types.Null(), nil
	}
	switch kind {
	case types.KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("bad int %q", cell)
		}
		return types.Int(i), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("bad float %q", cell)
		}
		return types.Float(f), nil
	case types.KindText:
		return types.Text(cell), nil
	case types.KindBool:
		switch cell {
		case "true":
			return types.Bool(true), nil
		case "false":
			return types.Bool(false), nil
		}
		return types.Value{}, fmt.Errorf("bad bool %q", cell)
	case types.KindDate:
		return types.ParseDate(cell)
	default:
		return types.Value{}, fmt.Errorf("unsupported CSV kind %s", kind)
	}
}
