// Package types defines the SQL value model shared by the storage
// engine, planner, and executor: 64-bit integers, floats, text,
// booleans, calendar dates, and month/day intervals — the types the
// paper's TPC-H and check-in workloads require.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the SQL value types.
type Kind int

const (
	KindNull     Kind = iota // SQL NULL
	KindInt                  // 64-bit integer
	KindFloat                // 64-bit float
	KindText                 // string
	KindBool                 // boolean
	KindDate                 // calendar date, stored as days since 1970-01-01
	KindInterval             // calendar interval (months and/or days)
)

// String names the kind as in DDL.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOL"
	case KindDate:
		return "DATE"
	case KindInterval:
		return "INTERVAL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a DDL type name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return KindText, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "DATE":
		return KindDate, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type %q", s)
	}
}

// Value is a SQL value. The struct is comparable (usable as a map key);
// the active representation depends on Kind:
//
//	KindInt      → I
//	KindFloat    → F
//	KindText     → S
//	KindBool     → B
//	KindDate     → I (days since epoch)
//	KindInterval → I (months) and F (days)
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Row is one tuple.
type Row = []Value

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Text returns a text value.
func Text(s string) Value { return Value{Kind: KindText, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Date returns a date value from days since 1970-01-01.
func Date(days int64) Value { return Value{Kind: KindDate, I: days} }

// Interval returns a calendar interval.
func Interval(months int64, days float64) Value {
	return Value{Kind: KindInterval, I: months, F: days}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsNumeric reports whether v is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value of v as float64 (dates convert to
// their day number, which makes them usable as SGB grouping attributes).
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KindInt, KindDate:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	case KindBool:
		if v.B {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("types: %s is not numeric", v.Kind)
	}
}

// AsInt returns the value as int64.
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt, KindDate:
		return v.I, nil
	case KindFloat:
		return int64(v.F), nil
	default:
		return 0, fmt.Errorf("types: %s is not an integer", v.Kind)
	}
}

// Truthy interprets v as a predicate result: only TRUE is truthy; NULL
// and FALSE are not.
func (v Value) Truthy() bool { return v.Kind == KindBool && v.B }

// String formats the value for result printing.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindText:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindDate:
		y, m, d := CivilFromDays(v.I)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	case KindInterval:
		return fmt.Sprintf("%d months %g days", v.I, v.F)
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// Key canonicalizes v for hashing (map keys): integers and dates fold
// into floats so that 2 = 2.0 hashes identically. Exact for magnitudes
// below 2⁵³, far beyond any key this engine generates.
func (v Value) Key() Value {
	switch v.Kind {
	case KindInt, KindDate:
		return Float(float64(v.I))
	default:
		return v
	}
}

// Compare orders a against b: -1, 0, +1. Numeric kinds (including
// dates) compare numerically; text lexicographically; bools false<true.
// NULL sorts before everything. Cross-kind comparisons between
// non-numeric kinds are an error.
func Compare(a, b Value) (int, error) {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0, nil
		case a.Kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	numeric := func(v Value) bool { return v.IsNumeric() || v.Kind == KindDate }
	switch {
	case numeric(a) && numeric(b):
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	case a.Kind == KindText && b.Kind == KindText:
		return strings.Compare(a.S, b.S), nil
	case a.Kind == KindBool && b.Kind == KindBool:
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("types: cannot compare %s with %s", a.Kind, b.Kind)
	}
}

// Arithmetic evaluates a op b for op in +,-,*,/ with int/float
// promotion and date±interval / date-date support.
func Arithmetic(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	// Calendar arithmetic first.
	if a.Kind == KindDate || b.Kind == KindDate {
		return dateArith(op, a, b)
	}
	if a.Kind == KindInterval || b.Kind == KindInterval {
		return Value{}, fmt.Errorf("types: interval arithmetic requires a date operand")
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, fmt.Errorf("types: %c requires numeric operands, got %s and %s", op, a.Kind, b.Kind)
	}
	if a.Kind == KindInt && b.Kind == KindInt && op != '/' {
		switch op {
		case '+':
			return Int(a.I + b.I), nil
		case '-':
			return Int(a.I - b.I), nil
		case '*':
			return Int(a.I * b.I), nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch op {
	case '+':
		return Float(af + bf), nil
	case '-':
		return Float(af - bf), nil
	case '*':
		return Float(af * bf), nil
	case '/':
		if bf == 0 {
			return Value{}, fmt.Errorf("types: division by zero")
		}
		return Float(af / bf), nil
	default:
		return Value{}, fmt.Errorf("types: unknown operator %c", op)
	}
}

func dateArith(op byte, a, b Value) (Value, error) {
	switch {
	case a.Kind == KindDate && b.Kind == KindDate && op == '-':
		return Int(a.I - b.I), nil // difference in days
	case a.Kind == KindDate && b.Kind == KindInterval && (op == '+' || op == '-'):
		sign := int64(1)
		if op == '-' {
			sign = -1
		}
		days := AddMonths(a.I, sign*b.I)
		days += sign * int64(b.F)
		return Date(days), nil
	case a.Kind == KindDate && b.IsNumeric() && (op == '+' || op == '-'):
		bi, _ := b.AsInt()
		if op == '-' {
			bi = -bi
		}
		return Date(a.I + bi), nil
	default:
		return Value{}, fmt.Errorf("types: unsupported date arithmetic %s %c %s", a.Kind, op, b.Kind)
	}
}
