package types

import (
	"testing"
	"testing/quick"
)

func TestCivilRoundTripKnownDates(t *testing.T) {
	cases := []struct {
		y, m, d int
		days    int64
	}{
		{1970, 1, 1, 0},
		{1970, 1, 2, 1},
		{1969, 12, 31, -1},
		{2000, 2, 29, 11016}, // leap day
		{1992, 1, 1, 8035},   // TPC-H start date
		{1998, 8, 2, 10440},  // TPC-H end date
	}
	for _, c := range cases {
		if got := DaysFromCivil(c.y, c.m, c.d); got != c.days {
			t.Errorf("DaysFromCivil(%d-%d-%d) = %d, want %d", c.y, c.m, c.d, got, c.days)
		}
		y, m, d := CivilFromDays(c.days)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("CivilFromDays(%d) = %d-%d-%d", c.days, y, m, d)
		}
	}
}

// Property: DaysFromCivil and CivilFromDays are inverse over a wide
// range, and consecutive days map to valid consecutive dates.
func TestCivilRoundTripQuick(t *testing.T) {
	f := func(offset int32) bool {
		days := int64(offset % 200000) // ±547 years around 1970
		y, m, d := CivilFromDays(days)
		return DaysFromCivil(y, m, d) == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLeapYears(t *testing.T) {
	for _, c := range []struct {
		y    int
		leap bool
	}{
		{2000, true}, {1900, false}, {1996, true}, {1999, false}, {2400, true},
	} {
		if got := isLeap(c.y); got != c.leap {
			t.Errorf("isLeap(%d) = %v", c.y, got)
		}
	}
	if daysInMonth(2000, 2) != 29 || daysInMonth(1900, 2) != 28 || daysInMonth(1999, 4) != 30 {
		t.Error("daysInMonth wrong")
	}
}

func TestAddMonths(t *testing.T) {
	cases := []struct {
		from   string
		months int64
		want   string
	}{
		{"1995-01-15", 1, "1995-02-15"},
		{"1995-01-31", 1, "1995-02-28"}, // clamp
		{"1996-01-31", 1, "1996-02-29"}, // clamp to leap day
		{"1995-11-30", 3, "1996-02-29"},
		{"1995-06-15", -7, "1994-11-15"},
		{"1995-01-15", 12, "1996-01-15"},
		{"1995-01-15", -13, "1993-12-15"},
	}
	for _, c := range cases {
		from, err := ParseDate(c.from)
		if err != nil {
			t.Fatal(err)
		}
		got := Date(AddMonths(from.I, c.months))
		if got.String() != c.want {
			t.Errorf("%s + %d months = %s, want %s", c.from, c.months, got, c.want)
		}
	}
}

func TestParseDate(t *testing.T) {
	good := map[string]string{
		"1995-03-15":   "1995-03-15",
		"[1995-03-15]": "1995-03-15", // TPC-H template brackets
		" 2000-02-29 ": "2000-02-29",
	}
	for in, want := range good {
		v, err := ParseDate(in)
		if err != nil || v.String() != want {
			t.Errorf("ParseDate(%q) = %v, %v", in, v, err)
		}
	}
	bad := []string{"", "1995", "1995-13-01", "1995-02-30", "1999-02-29", "x-y-z", "1995/03/15"}
	for _, in := range bad {
		if _, err := ParseDate(in); err == nil {
			t.Errorf("ParseDate accepted %q", in)
		}
	}
}

func TestParseInterval(t *testing.T) {
	v, err := ParseInterval("10", "month")
	if err != nil || v.I != 10 || v.F != 0 {
		t.Fatalf("interval month = %v, %v", v, err)
	}
	v, err = ParseInterval("2", "years")
	if err != nil || v.I != 24 {
		t.Fatalf("interval years = %v, %v", v, err)
	}
	v, err = ParseInterval("3", "week")
	if err != nil || v.F != 21 {
		t.Fatalf("interval weeks = %v, %v", v, err)
	}
	v, err = ParseInterval("'5'", "day")
	if err != nil || v.F != 5 {
		t.Fatalf("quoted interval = %v, %v", v, err)
	}
	if _, err := ParseInterval("x", "day"); err == nil {
		t.Error("bad count accepted")
	}
	if _, err := ParseInterval("1", "fortnight"); err == nil {
		t.Error("bad unit accepted")
	}
}
