package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindText: "TEXT", KindBool: "BOOL", KindDate: "DATE", KindInterval: "INTERVAL",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "bigint": KindInt,
		"float": KindFloat, "DOUBLE": KindFloat, "decimal": KindFloat,
		"text": KindText, "VARCHAR": KindText,
		"bool": KindBool, "date": KindDate,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind accepted blob")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-42), "-42"},
		{Float(2.5), "2.5"},
		{Text("hi"), "hi"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Date(DaysFromCivil(1995, 3, 15)), "1995-03-15"},
		{Interval(10, 0), "10 months 0 days"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, err := Int(7).AsFloat(); err != nil || f != 7 {
		t.Errorf("Int.AsFloat = %v, %v", f, err)
	}
	if f, err := Bool(true).AsFloat(); err != nil || f != 1 {
		t.Errorf("Bool.AsFloat = %v, %v", f, err)
	}
	if _, err := Text("x").AsFloat(); err == nil {
		t.Error("Text.AsFloat accepted")
	}
	if i, err := Float(3.9).AsInt(); err != nil || i != 3 {
		t.Errorf("Float.AsInt = %v, %v", i, err)
	}
	if _, err := Text("x").AsInt(); err == nil {
		t.Error("Text.AsInt accepted")
	}
}

func TestCompare(t *testing.T) {
	mustCmp := func(a, b Value, want int) {
		t.Helper()
		got, err := Compare(a, b)
		if err != nil || got != want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", a, b, got, err, want)
		}
	}
	mustCmp(Int(1), Int(2), -1)
	mustCmp(Int(2), Float(2.0), 0) // cross numeric kinds
	mustCmp(Float(3), Int(2), 1)
	mustCmp(Text("a"), Text("b"), -1)
	mustCmp(Bool(false), Bool(true), -1)
	mustCmp(Date(5), Date(5), 0)
	mustCmp(Date(5), Int(6), -1) // dates compare numerically
	mustCmp(Null(), Int(1), -1)
	mustCmp(Null(), Null(), 0)
	if _, err := Compare(Text("a"), Int(1)); err == nil {
		t.Error("cross-kind compare accepted")
	}
}

func TestArithmetic(t *testing.T) {
	check := func(op byte, a, b, want Value) {
		t.Helper()
		got, err := Arithmetic(op, a, b)
		if err != nil {
			t.Fatalf("%v %c %v: %v", a, op, b, err)
		}
		if got != want {
			t.Errorf("%v %c %v = %v, want %v", a, op, b, got, want)
		}
	}
	check('+', Int(2), Int(3), Int(5))
	check('-', Int(2), Int(3), Int(-1))
	check('*', Int(4), Int(3), Int(12))
	check('/', Int(7), Int(2), Float(3.5)) // SQL-style / promotes
	check('+', Float(1.5), Int(1), Float(2.5))
	check('*', Float(2), Float(3), Float(6))

	if _, err := Arithmetic('/', Int(1), Int(0)); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := Arithmetic('+', Text("a"), Int(1)); err == nil {
		t.Error("text arithmetic accepted")
	}
	if v, err := Arithmetic('+', Null(), Int(1)); err != nil || !v.IsNull() {
		t.Errorf("NULL propagation: %v, %v", v, err)
	}
}

func TestDateArithmetic(t *testing.T) {
	d1 := Date(DaysFromCivil(1995, 1, 31))
	d2 := Date(DaysFromCivil(1995, 3, 2))
	diff, err := Arithmetic('-', d2, d1)
	if err != nil || diff.Kind != KindInt || diff.I != 30 {
		t.Fatalf("date diff = %v, %v", diff, err)
	}
	// Date + interval months (with day clamping: Jan 31 + 1 mo = Feb 28).
	plus, err := Arithmetic('+', d1, Interval(1, 0))
	if err != nil || plus.String() != "1995-02-28" {
		t.Fatalf("date+1mo = %v, %v", plus, err)
	}
	// Date - interval.
	minus, err := Arithmetic('-', d2, Interval(0, 2))
	if err != nil || minus.String() != "1995-02-28" {
		t.Fatalf("date-2d = %v, %v", minus, err)
	}
	// Date + integer days.
	pd, err := Arithmetic('+', d1, Int(1))
	if err != nil || pd.String() != "1995-02-01" {
		t.Fatalf("date+1 = %v, %v", pd, err)
	}
	// Date + date is invalid.
	if _, err := Arithmetic('+', d1, d2); err == nil {
		t.Error("date+date accepted")
	}
	// Interval without a date operand is invalid.
	if _, err := Arithmetic('+', Interval(1, 0), Int(1)); err == nil {
		t.Error("interval+int accepted")
	}
}

func TestKeyNormalization(t *testing.T) {
	if Int(2).Key() != Float(2).Key() {
		t.Error("2 and 2.0 hash differently")
	}
	if Date(100).Key() != Float(100).Key() {
		t.Error("date does not normalize")
	}
	if Text("2").Key() == Float(2).Key() {
		t.Error("text collides with numeric")
	}
}

func TestTruthy(t *testing.T) {
	if !Bool(true).Truthy() || Bool(false).Truthy() || Null().Truthy() || Int(1).Truthy() {
		t.Error("Truthy semantics wrong")
	}
}

// Property: Compare is antisymmetric and transitive over numerics.
func TestCompareProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c1, err1 := Compare(Float(a), Float(b))
		c2, err2 := Compare(Float(b), Float(a))
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
