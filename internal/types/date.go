package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Civil-calendar conversions using the days-from-civil algorithm
// (proleptic Gregorian, days relative to 1970-01-01). Implemented
// directly rather than via time.Time so date values stay pure integers
// with no timezone semantics — appropriate for TPC-H-style data.

// DaysFromCivil converts a calendar date to days since 1970-01-01.
func DaysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// CivilFromDays converts days since 1970-01-01 back to (y, m, d).
func CivilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// AddMonths shifts a day number by calendar months, clamping the day of
// month (Jan 31 + 1 month = Feb 28/29), matching SQL interval rules.
func AddMonths(days, months int64) int64 {
	y, m, d := CivilFromDays(days)
	total := int64(y)*12 + int64(m-1) + months
	ny := int(total / 12)
	nm := int(total%12) + 1
	if nm <= 0 { // negative month wrap
		nm += 12
		ny--
	}
	if dim := daysInMonth(ny, nm); d > dim {
		d = dim
	}
	return DaysFromCivil(ny, nm, d)
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if isLeap(y) {
			return 29
		}
		return 28
	}
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}

// ParseDate parses "YYYY-MM-DD" (tolerating the bracketed TPC-H
// template form "[YYYY-MM-DD]") into a date value.
func ParseDate(s string) (Value, error) {
	s = strings.Trim(strings.TrimSpace(s), "[]")
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Value{}, fmt.Errorf("types: invalid date %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil ||
		m < 1 || m > 12 || d < 1 || d > daysInMonth(y, m) {
		return Value{}, fmt.Errorf("types: invalid date %q", s)
	}
	return Date(DaysFromCivil(y, m, d)), nil
}

// ParseInterval parses an interval count with a unit keyword
// (year/month/day/week).
func ParseInterval(count string, unit string) (Value, error) {
	n, err := strconv.ParseInt(strings.TrimSpace(strings.Trim(count, "'")), 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("types: invalid interval count %q", count)
	}
	switch strings.ToLower(unit) {
	case "year", "years":
		return Interval(12*n, 0), nil
	case "month", "months":
		return Interval(n, 0), nil
	case "day", "days":
		return Interval(0, float64(n)), nil
	case "week", "weeks":
		return Interval(0, float64(7*n)), nil
	default:
		return Value{}, fmt.Errorf("types: unknown interval unit %q", unit)
	}
}
