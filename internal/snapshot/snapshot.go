// Package snapshot writes and reads checkpoint files: a point-in-time
// image of the engine's durable state — every table plus the retained
// incremental-grouping evaluators — stamped with the WAL sequence
// number it covers. Recovery loads the newest valid snapshot and
// replays only the WAL tail past its stamp, instead of cold-regrouping
// the whole log.
//
// # File format
//
// A snapshot is one file, snap-<seq>.ck, where <seq> is the covered
// WAL sequence number (zero-padded so lexical order is seq order):
//
//	8 bytes  magic "SGBSNAP1"
//	u32      format version (currently 1)
//	u64      covered WAL sequence number
//	payload  tables, then incremental-cache entries (wal row codec)
//	u32      CRC32-C of everything before it
//
// Writes are atomic: the image is assembled in a temp file in the same
// directory, fsynced, renamed into place, and the directory fsynced —
// a crash mid-checkpoint leaves either the old snapshot set or the new
// one, never a half-written file that parses. The trailing whole-file
// CRC makes torn or corrupted snapshots detectable, and recovery falls
// back to the previous retained snapshot when the newest fails its
// check (the engine retains two for exactly that reason).
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/sgb-db/sgb/internal/incr"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/wal"
)

const (
	magic      = "SGBSNAP1"
	version    = 1
	filePrefix = "snap-"
	fileSuffix = ".ck"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is the in-memory image a checkpoint serializes: the covered
// WAL sequence number, every table, and the incremental-grouping cache
// entries whose evaluators are worth restoring.
type Snapshot struct {
	Seq    uint64
	Tables []*storage.Table
	Incr   []IncrEntry
}

// IncrEntry is one retained incremental-grouping evaluator: the table
// and option fingerprint that key it, how many of the table's rows the
// evaluator has consumed, and the exported evaluator state.
type IncrEntry struct {
	Table       string
	Fingerprint string
	Consumed    int
	State       *incr.State
}

// Path returns the snapshot file name covering seq inside dir.
func Path(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", filePrefix, seq, fileSuffix))
}

// Write atomically persists s into dir and returns the file path.
func Write(dir string, s *Snapshot) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	b := make([]byte, 0, 4096)
	b = append(b, magic...)
	b = wal.AppendU32(b, version)
	b = wal.AppendU64(b, s.Seq)
	var err error
	if b, err = appendPayload(b, s); err != nil {
		return "", err
	}
	b = wal.AppendU32(b, crc32.Checksum(b, castagnoli))

	final := Path(dir, s.Seq)
	tmp, err := os.CreateTemp(dir, ".snap-tmp-*")
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(b); err != nil {
		cleanup()
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("snapshot: %w", err)
	}
	syncDir(dir)
	return final, nil
}

// Load reads and validates one snapshot file. Any corruption — bad
// magic, unknown version, CRC mismatch, or a payload that does not
// decode — is an error; Load never returns a partially decoded image.
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	hdr := len(magic) + 4 + 8
	if len(b) < hdr+4 || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: %s: not a snapshot file", path)
	}
	if got := binary.LittleEndian.Uint32(b[len(b)-4:]); got != crc32.Checksum(b[:len(b)-4], castagnoli) {
		return nil, fmt.Errorf("snapshot: %s: checksum mismatch", path)
	}
	if v := binary.LittleEndian.Uint32(b[len(magic):]); v != version {
		return nil, fmt.Errorf("snapshot: %s: unsupported version %d", path, v)
	}
	s := &Snapshot{Seq: binary.LittleEndian.Uint64(b[len(magic)+4:])}
	d := wal.NewDecoder(b[hdr : len(b)-4])
	if err := decodePayload(d, s); err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("snapshot: %s: %d trailing payload bytes", path, d.Len())
	}
	return s, nil
}

// Info names one snapshot file and the WAL sequence its name claims to
// cover (validation happens at Load time).
type Info struct {
	Path string
	Seq  uint64
}

// List returns the snapshot files of dir, oldest first. A missing
// directory is an empty list.
func List(dir string) ([]Info, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var infos []Info
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix), 10, 64)
		if err != nil {
			continue
		}
		infos = append(infos, Info{Path: filepath.Join(dir, name), Seq: seq})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Seq < infos[j].Seq })
	return infos, nil
}

// Latest loads the newest valid snapshot of dir, skipping (but not
// deleting) corrupt ones so a torn checkpoint falls back to its
// predecessor. It returns the snapshot, its path, and how many newer
// snapshots were skipped as corrupt; all zero values when dir holds no
// loadable snapshot.
func Latest(dir string) (*Snapshot, string, int, error) {
	infos, err := List(dir)
	if err != nil {
		return nil, "", 0, err
	}
	skipped := 0
	for i := len(infos) - 1; i >= 0; i-- {
		s, err := Load(infos[i].Path)
		if err != nil {
			skipped++
			continue
		}
		return s, infos[i].Path, skipped, nil
	}
	return nil, "", skipped, nil
}

// Prune deletes the oldest snapshots beyond the keep newest and
// returns the smallest sequence number still covered by a retained
// snapshot (0 when none remain). The caller may drop WAL segments up
// to that sequence: even if the newest snapshot turns out corrupt at
// recovery, the oldest retained one plus the remaining WAL reconstruct
// everything.
func Prune(dir string, keep int) (uint64, error) {
	infos, err := List(dir)
	if err != nil {
		return 0, err
	}
	if keep < 1 {
		keep = 1
	}
	for len(infos) > keep {
		if err := os.Remove(infos[0].Path); err != nil {
			return 0, fmt.Errorf("snapshot: %w", err)
		}
		infos = infos[1:]
	}
	if len(infos) == 0 {
		return 0, nil
	}
	return infos[0].Seq, nil
}

// syncDir best-effort fsyncs a directory so a rename survives a crash.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
