package snapshot

import (
	"errors"
	"fmt"
	"math"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/incr"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
	"github.com/sgb-db/sgb/internal/wal"
)

// The payload codec. Built on the wal row codec so table rows share
// one binary form between log frames and checkpoints. Decoding is
// defensive throughout: the trailing CRC has already been verified
// when these run, but a truncated count or out-of-range byte must
// still surface as an error, never a panic — the core/incr Restore
// constructors re-validate the semantic invariants on top.

// evaluator-kind tags inside an encoded incr.State.
const (
	evalNone byte = iota
	evalAll
	evalAny
)

func appendPayload(b []byte, s *Snapshot) ([]byte, error) {
	b = wal.AppendU32(b, uint32(len(s.Tables)))
	for _, t := range s.Tables {
		b = wal.AppendString(b, t.Name)
		b = wal.AppendU32(b, uint32(len(t.Schema)))
		for _, c := range t.Schema {
			b = wal.AppendString(b, c.Name)
			b = append(b, byte(c.Type))
		}
		rows, _ := t.Snapshot()
		b = wal.AppendU64(b, uint64(len(rows)))
		for _, row := range rows {
			b = wal.AppendRow(b, row)
		}
	}
	b = wal.AppendU32(b, uint32(len(s.Incr)))
	for _, e := range s.Incr {
		if e.State == nil {
			return nil, errors.New("snapshot: incremental entry without state")
		}
		b = wal.AppendString(b, e.Table)
		b = wal.AppendString(b, e.Fingerprint)
		b = wal.AppendU64(b, uint64(e.Consumed))
		b = appendIncrState(b, e.State)
	}
	return b, nil
}

func decodePayload(d *wal.Decoder, s *Snapshot) error {
	nt := d.Count()
	for i := 0; i < nt && d.Err() == nil; i++ {
		name := d.String()
		nc := d.Count()
		schema := make(storage.Schema, 0, nc)
		for j := 0; j < nc && d.Err() == nil; j++ {
			schema = append(schema, storage.Column{Name: d.String(), Type: types.Kind(d.Byte())})
		}
		nr := int(d.U64())
		t := storage.NewTable(name, schema)
		t.Rows = make([]types.Row, 0, clampCap(nr)) //sgblint:allow snapshotsafe recovery-time rebuild of a table not yet published to any catalog
		for j := 0; j < nr && d.Err() == nil; j++ {
			t.Rows = append(t.Rows, d.Row()) //sgblint:allow snapshotsafe recovery-time rebuild of a table not yet published to any catalog
		}
		s.Tables = append(s.Tables, t)
	}
	ne := d.Count()
	for i := 0; i < ne && d.Err() == nil; i++ {
		e := IncrEntry{Table: d.String(), Fingerprint: d.String(), Consumed: int(d.U64())}
		st, err := decodeIncrState(d)
		if err != nil {
			return err
		}
		e.State = st
		s.Incr = append(s.Incr, e)
	}
	return d.Err()
}

// clampCap bounds a decoded preallocation hint so a corrupt length
// cannot drive a huge make; the slice still grows to the real size.
func clampCap(n int) int {
	const max = 1 << 20
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}

func appendOptions(b []byte, o core.Options) []byte {
	b = append(b, byte(o.Metric), byte(o.Overlap), byte(o.Algorithm))
	b = wal.AppendU64(b, math.Float64bits(o.Eps))
	b = wal.AppendU64(b, uint64(o.Seed))
	b = wal.AppendU64(b, uint64(o.Parallelism))
	b = wal.AppendU64(b, math.Float64bits(o.IndexHysteresis))
	if o.NoHullTest {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func decodeOptions(d *wal.Decoder) core.Options {
	var o core.Options
	o.Metric = geom.Metric(d.Byte())
	o.Overlap = core.Overlap(d.Byte())
	o.Algorithm = core.Algorithm(d.Byte())
	o.Eps = math.Float64frombits(d.U64())
	o.Seed = int64(d.U64())
	o.Parallelism = int(d.U64())
	o.IndexHysteresis = math.Float64frombits(d.U64())
	o.NoHullTest = d.Byte() != 0
	return o
}

// appendFloats / appendInt32s / appendBools: count-prefixed slabs with
// a presence byte where nil and empty differ semantically (the
// evaluator states use nil live/alive as "identity / all alive").

func appendFloats(b []byte, xs []float64) []byte {
	b = wal.AppendU32(b, uint32(len(xs)))
	for _, x := range xs {
		b = wal.AppendU64(b, math.Float64bits(x))
	}
	return b
}

func decodeFloats(d *wal.Decoder) []float64 {
	n := d.Count()
	if d.Err() != nil {
		return nil
	}
	out := make([]float64, 0, clampCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, math.Float64frombits(d.U64()))
	}
	return out
}

func appendInt32sOpt(b []byte, xs []int32) []byte {
	if xs == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = wal.AppendU32(b, uint32(len(xs)))
	for _, x := range xs {
		b = wal.AppendU32(b, uint32(x))
	}
	return b
}

func decodeInt32sOpt(d *wal.Decoder) []int32 {
	if d.Byte() == 0 {
		return nil
	}
	return decodeInt32s(d)
}

func decodeInt32s(d *wal.Decoder) []int32 {
	n := d.Count()
	if d.Err() != nil {
		return nil
	}
	out := make([]int32, 0, clampCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, int32(d.U32()))
	}
	return out
}

func appendInt32s(b []byte, xs []int32) []byte {
	b = wal.AppendU32(b, uint32(len(xs)))
	for _, x := range xs {
		b = wal.AppendU32(b, uint32(x))
	}
	return b
}

func appendBoolsOpt(b []byte, xs []bool) []byte {
	if xs == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = wal.AppendU32(b, uint32(len(xs)))
	for _, x := range xs {
		if x {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func decodeBoolsOpt(d *wal.Decoder) []bool {
	if d.Byte() == 0 {
		return nil
	}
	n := d.Count()
	if d.Err() != nil {
		return nil
	}
	out := make([]bool, 0, clampCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.Byte() != 0)
	}
	return out
}

func appendInt8s(b []byte, xs []int8) []byte {
	b = wal.AppendU32(b, uint32(len(xs)))
	for _, x := range xs {
		b = append(b, byte(x))
	}
	return b
}

func decodeInt8s(d *wal.Decoder) []int8 {
	n := d.Count()
	if d.Err() != nil {
		return nil
	}
	out := make([]int8, 0, clampCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, int8(d.Byte()))
	}
	return out
}

func appendIncrState(b []byte, s *incr.State) []byte {
	b = append(b, byte(s.Sem))
	b = appendOptions(b, s.Opt)
	switch {
	case s.All != nil:
		b = append(b, evalAll)
		b = appendAllState(b, s.All)
	case s.Any != nil:
		b = append(b, evalAny)
		b = appendAnyState(b, s.Any)
	default:
		b = append(b, evalNone)
	}
	return b
}

func decodeIncrState(d *wal.Decoder) (*incr.State, error) {
	s := &incr.State{Sem: incr.Semantics(d.Byte())}
	s.Opt = decodeOptions(d)
	switch kind := d.Byte(); kind {
	case evalNone:
	case evalAll:
		s.All = decodeAllState(d)
	case evalAny:
		s.Any = decodeAnyState(d)
	default:
		if d.Err() == nil {
			return nil, fmt.Errorf("snapshot: unknown evaluator kind %d", kind)
		}
	}
	return s, d.Err()
}

func appendAnyState(b []byte, s *core.AnyState) []byte {
	b = appendOptions(b, s.Opt)
	b = wal.AppendU32(b, uint32(s.Dims))
	b = appendFloats(b, s.Data)
	b = appendInt32sOpt(b, s.Live)
	b = appendBoolsOpt(b, s.Alive)
	b = wal.AppendU64(b, uint64(s.Dead))
	b = appendInt32s(b, s.UFParent)
	b = appendInt8s(b, s.UFRank)
	b = wal.AppendU64(b, uint64(s.UFCount))
	return b
}

func decodeAnyState(d *wal.Decoder) *core.AnyState {
	s := &core.AnyState{}
	s.Opt = decodeOptions(d)
	s.Dims = int(d.U32())
	s.Data = decodeFloats(d)
	s.Live = decodeInt32sOpt(d)
	s.Alive = decodeBoolsOpt(d)
	s.Dead = int(d.U64())
	s.UFParent = decodeInt32s(d)
	s.UFRank = decodeInt8s(d)
	s.UFCount = int(d.U64())
	return s
}

func appendAllState(b []byte, s *core.AllState) []byte {
	b = appendOptions(b, s.Opt)
	b = wal.AppendU32(b, uint32(s.Dims))
	b = appendFloats(b, s.Data)
	b = appendInt32sOpt(b, s.Live)
	b = wal.AppendU64(b, uint64(s.Dead))
	b = wal.AppendU64(b, s.RandState)
	b = wal.AppendU64(b, uint64(s.StageFloor))
	b = appendInt32s(b, s.Eliminated)
	b = appendInt32s(b, s.Deferred)
	b = wal.AppendU32(b, uint32(len(s.Groups)))
	for _, g := range s.Groups {
		b = appendInt32s(b, g)
	}
	return b
}

func decodeAllState(d *wal.Decoder) *core.AllState {
	s := &core.AllState{}
	s.Opt = decodeOptions(d)
	s.Dims = int(d.U32())
	s.Data = decodeFloats(d)
	s.Live = decodeInt32sOpt(d)
	s.Dead = int(d.U64())
	s.RandState = d.U64()
	s.StageFloor = int(d.U64())
	s.Eliminated = decodeInt32s(d)
	s.Deferred = decodeInt32s(d)
	n := d.Count()
	if d.Err() == nil {
		s.Groups = make([][]int32, 0, clampCap(n))
		for i := 0; i < n && d.Err() == nil; i++ {
			g := decodeInt32s(d)
			if len(g) == 0 {
				g = nil // hole: empty entry
			}
			s.Groups = append(s.Groups, g)
		}
	}
	return s
}
