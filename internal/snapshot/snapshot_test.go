package snapshot

import (
	"math/rand"
	"os"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/incr"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// sampleSnapshot builds a snapshot with two tables and two live
// incremental evaluators (one per semantics), exercising every payload
// section.
func sampleSnapshot(t *testing.T, seq uint64) *Snapshot {
	t.Helper()
	pts := storage.NewTable("pts", storage.Schema{
		{Name: "id", Type: types.KindInt},
		{Name: "x", Type: types.KindFloat},
		{Name: "y", Type: types.KindFloat},
		{Name: "tag", Type: types.KindText},
	})
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		pts.MustInsert(types.Row{
			types.Int(int64(i)),
			types.Float(float64(r.Intn(8)) + 0.5*r.Float64()),
			types.Float(float64(r.Intn(8)) + 0.5*r.Float64()),
			types.Text("t"),
		})
	}
	empty := storage.NewTable("empty", storage.Schema{{Name: "v", Type: types.KindFloat}})

	mkIncr := func(sem incr.Semantics, opt core.Options) *incr.State {
		x, err := incr.New(sem, opt)
		if err != nil {
			t.Fatal(err)
		}
		ps := geom.NewPointSetCap(2, pts.Len())
		for _, row := range pts.Rows {
			p := ps.Extend()
			p[0], p[1] = row[1].F, row[2].F
		}
		if err := x.AppendSet(ps); err != nil {
			t.Fatal(err)
		}
		if err := x.Remove([]int{0, 3, 17}); err != nil {
			t.Fatal(err)
		}
		st, err := x.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	return &Snapshot{
		Seq:    seq,
		Tables: []*storage.Table{pts, empty},
		Incr: []IncrEntry{
			{
				Table:       "pts",
				Fingerprint: "any|grid",
				Consumed:    40,
				State:       mkIncr(incr.Any, core.Options{Metric: geom.L2, Eps: 1.0, Algorithm: core.GridIndex}),
			},
			{
				Table:       "pts",
				Fingerprint: "all|join-any",
				Consumed:    40,
				State:       mkIncr(incr.All, core.Options{Metric: geom.LInf, Eps: 1.2, Overlap: core.JoinAny, Algorithm: core.GridIndex, Seed: 5}),
			},
		},
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleSnapshot(t, 37)
	path, err := Write(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != want.Seq {
		t.Fatalf("seq = %d, want %d", got.Seq, want.Seq)
	}
	if len(got.Tables) != len(want.Tables) {
		t.Fatalf("tables = %d, want %d", len(got.Tables), len(want.Tables))
	}
	for i, wt := range want.Tables {
		gt := got.Tables[i]
		if gt.Name != wt.Name || !reflect.DeepEqual(gt.Schema, wt.Schema) {
			t.Fatalf("table %d header mismatch", i)
		}
		if len(gt.Rows) != len(wt.Rows) {
			t.Fatalf("table %s rows = %d, want %d", wt.Name, len(gt.Rows), len(wt.Rows))
		}
		for j := range wt.Rows {
			if !reflect.DeepEqual(gt.Rows[j], wt.Rows[j]) {
				t.Fatalf("table %s row %d mismatch", wt.Name, j)
			}
		}
	}
	if len(got.Incr) != len(want.Incr) {
		t.Fatalf("incr entries = %d, want %d", len(got.Incr), len(want.Incr))
	}
	for i, we := range want.Incr {
		ge := got.Incr[i]
		if ge.Table != we.Table || ge.Fingerprint != we.Fingerprint || ge.Consumed != we.Consumed {
			t.Fatalf("entry %d keys mismatch: %+v", i, ge)
		}
		// The decoded state must restore to a working handle producing
		// the same grouping as one restored from the original state.
		xa, err := incr.Restore(we.State)
		if err != nil {
			t.Fatal(err)
		}
		xb, err := incr.Restore(ge.State)
		if err != nil {
			t.Fatalf("entry %d: decoded state does not restore: %v", i, err)
		}
		ra, _ := xa.Result()
		rb, _ := xb.Result()
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("entry %d: restored groupings diverge", i)
		}
	}
}

// TestCorruptionDetection flips or truncates bytes across the file and
// checks Load always fails — a snapshot is all-or-nothing.
func TestCorruptionDetection(t *testing.T) {
	dir := t.TempDir()
	path, err := Write(dir, sampleSnapshot(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(whole)/97 + 1
	for pos := 0; pos < len(whole); pos += step {
		garbled := append([]byte(nil), whole...)
		garbled[pos] ^= 0x41
		if err := os.WriteFile(path, garbled, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("flip at %d: corrupt snapshot loaded", pos)
		}
	}
	for cut := 0; cut < len(whole); cut += step {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("truncation at %d: torn snapshot loaded", cut)
		}
	}
}

// TestLatestFallsBack corrupts the newest snapshot and checks Latest
// returns the previous one, reporting the skip.
func TestLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, sampleSnapshot(t, 10)); err != nil {
		t.Fatal(err)
	}
	newest, err := Write(dir, sampleSnapshot(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s, path, skipped, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Seq != 10 {
		t.Fatalf("Latest fell back to %+v, want seq 10", s)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if path != Path(dir, 10) {
		t.Fatalf("path = %s", path)
	}
}

func TestLatestEmpty(t *testing.T) {
	s, path, skipped, err := Latest(t.TempDir() + "/nonexistent")
	if err != nil || s != nil || path != "" || skipped != 0 {
		t.Fatalf("Latest on missing dir: %v %v %q %d", s, err, path, skipped)
	}
}

func TestPruneRetention(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{3, 9, 15, 22} {
		if _, err := Write(dir, &Snapshot{Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	floor, err := Prune(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 15 {
		t.Fatalf("retained floor = %d, want 15", floor)
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Seq != 15 || infos[1].Seq != 22 {
		t.Fatalf("retained %+v", infos)
	}
}
