// Package wire is the framed client/server protocol of the SQL
// engine. It reuses the write-ahead log's framing discipline — every
// message travels as a 4-byte little-endian payload length, a 4-byte
// CRC32C (Castagnoli) of the payload, and the payload itself — so a
// torn or corrupted TCP stream is detected at the frame boundary
// instead of being half-decoded, and the row codec is the WAL's value
// codec verbatim (internal/wal.AppendRow / Decoder).
//
// The conversation is strict request/response: the client sends one
// Query frame (a SQL statement) and reads exactly one response frame —
// Rows for a SELECT, Count for DDL/DML, Err for a failure. Session
// state (SET algorithm, parallelism, incremental, ...) lives
// server-side, one session per connection.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/sgb-db/sgb/internal/types"
	"github.com/sgb-db/sgb/internal/wal"
)

// Message types, the first byte of every frame payload.
const (
	// MsgQuery carries one SQL statement, client to server.
	MsgQuery = byte(1)
	// MsgRows answers a SELECT: column names plus result rows.
	MsgRows = byte(2)
	// MsgCount answers DDL/DML: the affected-row count.
	MsgCount = byte(3)
	// MsgErr answers any failed statement with its error text.
	MsgErr = byte(4)
)

// MaxFrame bounds a frame payload. A peer announcing a larger frame is
// broken or hostile; the reader rejects the frame before allocating.
const MaxFrame = 1 << 26

// frameHdr is the frame header size: payload length + CRC32C.
const frameHdr = 8

// castagnoli is the CRC32C polynomial table (matching the WAL's frame
// checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one framed payload: length, CRC32C, payload. The
// single Write call keeps the frame atomic with respect to the
// net.Conn's own write serialization.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	buf := make([]byte, frameHdr, frameHdr+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one framed payload, verifying its length bound and
// checksum. io.EOF surfaces unchanged when the stream ends cleanly at
// a frame boundary (a closing peer); any mid-frame truncation or
// checksum mismatch is an error.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHdr]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading %d-byte frame payload: %w", n, err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("wire: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// EncodeQuery encodes a SQL statement frame payload.
func EncodeQuery(sql string) []byte {
	b := []byte{MsgQuery}
	return wal.AppendString(b, sql)
}

// DecodeQuery decodes a MsgQuery payload.
func DecodeQuery(payload []byte) (string, error) {
	d := wal.NewDecoder(payload)
	if t := d.Byte(); t != MsgQuery {
		return "", fmt.Errorf("wire: expected query frame, got message type %d", t)
	}
	sql := d.String()
	if err := d.Err(); err != nil {
		return "", err
	}
	if d.Len() != 0 {
		return "", fmt.Errorf("wire: %d trailing bytes after query", d.Len())
	}
	return sql, nil
}

// Response is one decoded server answer. Exactly one shape is
// populated: Columns+Data for a row set, Count for a mutation, Err for
// a failure (the statement-level error, distinct from transport
// errors).
type Response struct {
	Columns []string
	Data    []types.Row
	Count   int
	Err     string
}

// EncodeRows encodes a SELECT answer.
func EncodeRows(cols []string, rows []types.Row) []byte {
	b := []byte{MsgRows}
	b = wal.AppendU32(b, uint32(len(cols)))
	for _, c := range cols {
		b = wal.AppendString(b, c)
	}
	b = wal.AppendU32(b, uint32(len(rows)))
	for _, r := range rows {
		b = wal.AppendRow(b, r)
	}
	return b
}

// EncodeCount encodes a DDL/DML answer.
func EncodeCount(n int) []byte {
	b := []byte{MsgCount}
	return wal.AppendU64(b, uint64(n))
}

// EncodeErr encodes a statement failure.
func EncodeErr(err error) []byte {
	b := []byte{MsgErr}
	return wal.AppendString(b, err.Error())
}

// DecodeResponse decodes any server answer frame.
func DecodeResponse(payload []byte) (*Response, error) {
	d := wal.NewDecoder(payload)
	resp := &Response{}
	switch t := d.Byte(); t {
	case MsgRows:
		ncols := d.Count()
		resp.Columns = make([]string, 0, ncols)
		for i := 0; i < ncols; i++ {
			resp.Columns = append(resp.Columns, d.String())
		}
		nrows := d.Count()
		resp.Data = make([]types.Row, 0, nrows)
		for i := 0; i < nrows; i++ {
			resp.Data = append(resp.Data, d.Row())
		}
		resp.Count = len(resp.Data)
	case MsgCount:
		resp.Count = int(d.U64())
	case MsgErr:
		resp.Err = d.String()
	default:
		return nil, fmt.Errorf("wire: unknown response message type %d", t)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after response", d.Len())
	}
	return resp, nil
}
