package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{},
		{0x42},
		bytes.Repeat([]byte("similarity"), 100),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %x, want %x", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("clean end of stream: got %v, want io.EOF", err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("the payload under test")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload bit: the checksum must catch it.
	raw[len(raw)-1] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt payload: got %v, want checksum mismatch", err)
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("cut short")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 5, len(raw) - 1} {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("truncation at %d bytes: got %v, want a mid-frame error", cut, err)
		}
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// A header announcing an absurd payload must be rejected before any
	// allocation happens.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: got %v, want limit error", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	const sql = "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.5"
	got, err := DecodeQuery(EncodeQuery(sql))
	if err != nil {
		t.Fatal(err)
	}
	if got != sql {
		t.Fatalf("got %q, want %q", got, sql)
	}
	if _, err := DecodeQuery(EncodeCount(3)); err == nil {
		t.Fatal("count frame decoded as query")
	}
	if _, err := DecodeQuery(append(EncodeQuery("x"), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cols := []string{"eps", "count"}
	rows := []types.Row{
		{types.Float(0.5), types.Int(3)},
		{types.Float(1.0), types.Int(1)},
		{types.Null(), types.Text("grouped")},
	}
	resp, err := DecodeResponse(EncodeRows(cols, rows))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Columns, cols) || !reflect.DeepEqual(resp.Data, rows) || resp.Count != len(rows) {
		t.Fatalf("rows response mangled: %+v", resp)
	}

	resp, err = DecodeResponse(EncodeCount(42))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != 42 || resp.Err != "" || resp.Data != nil {
		t.Fatalf("count response mangled: %+v", resp)
	}

	resp, err = DecodeResponse(EncodeErr(errors.New("sgb: no such table")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "sgb: no such table" {
		t.Fatalf("error response mangled: %+v", resp)
	}

	if _, err := DecodeResponse([]byte{0x7F}); err == nil {
		t.Fatal("unknown message type accepted")
	}
	if _, err := DecodeResponse(append(EncodeCount(1), 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
