package analysis_test

import (
	"testing"

	"github.com/sgb-db/sgb/internal/analysis"
	"github.com/sgb-db/sgb/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture: the // want expectations prove
// at least one true positive and the unannotated declarations prove a
// clean pass (the harness fails on any unexpected diagnostic).

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/lockorder", "github.com/sgb-db/sgb/fixture/lockorder", analysis.LockOrder)
}

func TestSnapshotSafe(t *testing.T) {
	analysistest.Run(t, "testdata/snapshotsafe", "github.com/sgb-db/sgb/fixture/snapshotsafe", analysis.SnapshotSafe)
}

func TestStickyErr(t *testing.T) {
	analysistest.Run(t, "testdata/stickyerr", "github.com/sgb-db/sgb/fixture/stickyerr", analysis.StickyErr)
}

// TestDeterminism loads the fixture under an internal/core import
// path so it falls inside the analyzer's result-affecting scope.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/determinism", "github.com/sgb-db/sgb/internal/core", analysis.Determinism)
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata/hotpath", "github.com/sgb-db/sgb/fixture/hotpath", analysis.HotPath)
}

func TestDocs(t *testing.T) {
	analysistest.Run(t, "testdata/docs", "github.com/sgb-db/sgb/fixture/docs", analysis.Docs)
}

// TestMarkers exercises the //sgblint:allow protocol itself: markers
// without a reason or naming unknown analyzers are rejected, a
// justified marker suppresses, and an unused marker is stale.
func TestMarkers(t *testing.T) {
	analysistest.Run(t, "testdata/markers", "github.com/sgb-db/sgb/internal/core", analysis.Determinism)
}

// TestSuite pins the suite's composition: six analyzers, stable names.
func TestSuite(t *testing.T) {
	got := analysis.SuiteNames()
	want := []string{"lockorder", "snapshotsafe", "determinism", "stickyerr", "hotpath", "docs"}
	if len(got) != len(want) {
		t.Fatalf("SuiteNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SuiteNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
