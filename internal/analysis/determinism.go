package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The determinism analyzer. The engine promises bit-identical output
// for identical input: SGB arbitration resolves ties by a strict
// (Key, A, B) total order, the ε-lattice's merge heights are a pure
// function of the data, and the wire protocol serializes result rows
// in a defined order. Three things quietly break that promise — map
// iteration order feeding anything ordered, wall-clock reads in
// result-affecting code, and draws from the global math/rand state.
// The analyzer bans all three in the result-affecting packages; a
// range over a map that is genuinely order-insensitive (feeding a
// commutative fold, or sorted immediately after) is silenced in
// place with a //sgblint:allow determinism marker stating that.

// Determinism bans map-order, wall-clock, and global-rand
// nondeterminism in result-affecting packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no map-iteration order, time.Now, or global math/rand in result-affecting packages",
	Run:  runDeterminism,
}

// determinismScopes lists the import-path suffixes of the
// result-affecting packages.
var determinismScopes = []string{
	"/internal/core",
	"/internal/lattice",
	"/internal/exec",
	"/internal/partition",
}

// inDeterminismScope reports whether the package is result-affecting:
// the module root (the engine package itself) or one of the listed
// subsystems.
func inDeterminismScope(prog *Program, pkg *Package) bool {
	if pkg.Path == prog.ModulePath {
		return true
	}
	for _, s := range determinismScopes {
		if strings.HasSuffix(pkg.Path, s) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) {
	if !inDeterminismScope(pass.Prog, pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; sort keys first or justify with //sgblint:allow determinism")
					}
				}
			case *ast.CallExpr:
				if fn := calledFunc(info, n); fn != nil {
					checkDeterminismCall(pass, n, fn)
				}
			}
			return true
		})
	}
}

// calledFunc resolves the called function object, if statically known.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return staticCallee(info, call)
}

// randDrawExempt lists math/rand functions that construct generators
// rather than draw from the shared global source; local generators
// seeded deterministically are fine.
var randDrawExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	// Methods on a locally constructed *rand.Rand are deterministic
	// when the seed is; only package-level draws hit the global state.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch pkg.Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now in result-affecting code; results must be a pure function of the input")
		}
	case "math/rand", "math/rand/v2":
		if !randDrawExempt[fn.Name()] {
			pass.Reportf(call.Pos(), "global math/rand draw (%s.%s) in result-affecting code; use a locally seeded rand.Rand", pkg.Path(), fn.Name())
		}
	}
}
