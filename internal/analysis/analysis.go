package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker. Run is invoked once per
// target package with a Pass scoped to that package; whole-program
// state (call graphs, lock summaries) is shared through
// Program.Shared so the first pass builds it and the rest reuse it.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //sgblint:allow markers.
	Name string
	// Doc is a one-line description shown by sgblint's analyzer list.
	Doc string
	// Run reports the analyzer's findings on pass.Pkg via pass.Reportf.
	Run func(pass *Pass)
}

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	// Pos locates the finding in the source tree.
	Pos token.Position
	// Analyzer is the reporting analyzer's name ("sgblint" for the
	// driver's own marker-hygiene findings).
	Analyzer string
	// Message states the violation.
	Message string
}

// String formats the diagnostic in the conventional
// file:line:col: [analyzer] message shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the package's non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and object maps.
	Info *types.Info
}

// Program is a loaded module (or fixture) — every package the driver
// type-checked, in dependency order — plus a memo space for
// whole-program computations.
type Program struct {
	// Fset is the file set all packages and diagnostics share.
	Fset *token.FileSet
	// ModulePath is the module's import path (from go.mod).
	ModulePath string
	// ModuleRoot is the module's root directory.
	ModuleRoot string
	// Pkgs lists the loaded packages, dependencies before dependents.
	Pkgs []*Package

	byPath map[string]*Package
	shared map[string]any
}

// Package returns the loaded package with the given import path, or
// nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Shared memoizes a whole-program computation under key: the first
// caller runs build, later callers get the same value. The driver is
// single-threaded, so no locking is needed.
func (p *Program) Shared(key string, build func() any) any {
	if v, ok := p.shared[key]; ok {
		return v
	}
	v := build()
	p.shared[key] = v
	return v
}

// Pass is one analyzer's view of one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Prog is the whole loaded program (for cross-package state).
	Prog *Program
	// Pkg is the package under analysis; report only on its files.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// unparen strips any number of enclosing parentheses from an
// expression (ast.Unparen needs go1.22; the module targets go1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Suite returns the engine's full analyzer set, the one cmd/sgblint
// runs and the one //sgblint:allow markers are validated against.
func Suite() []*Analyzer {
	return []*Analyzer{
		LockOrder,
		SnapshotSafe,
		Determinism,
		StickyErr,
		HotPath,
		Docs,
	}
}

// SuiteNames returns the names of every analyzer in Suite.
func SuiteNames() []string {
	var names []string
	for _, a := range Suite() {
		names = append(names, a.Name)
	}
	return names
}
