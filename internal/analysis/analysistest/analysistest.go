// Package analysistest runs analyzers over testdata fixtures and
// checks their diagnostics against // want expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest but built on
// the repository's own stdlib-only framework.
//
// A fixture is a directory of Go files. Each expected diagnostic is
// declared on the line it occurs with a trailing comment:
//
//	t.mu.Lock() // want `lock order inversion`
//
// The quoted text (double quotes or backquotes; several per line for
// several diagnostics) is an unanchored regular expression matched
// against the diagnostic message. Every diagnostic must match a want
// on its line and every want must match a diagnostic; either
// mismatch fails the test.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/analysis"
)

// want is one expectation: a message pattern pinned to a line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads fixtureDir as a package under importPath (resolving its
// module-local imports against the enclosing module), runs the given
// analyzers plus the driver's marker protocol, and compares the
// diagnostics with the fixture's // want expectations.
func Run(t *testing.T, fixtureDir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	moduleRoot, _, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	prog, err := analysis.LoadFixture(moduleRoot, fixtureDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	pkg := prog.Package(importPath)
	if pkg == nil {
		t.Fatalf("fixture package %s not loaded", importPath)
	}
	diags := analysis.RunAnalyzers(prog, []*analysis.Package{pkg}, analyzers, analysis.SuiteNames())

	wants, err := collectWants(fixtureDir)
	if err != nil {
		t.Fatalf("parsing want expectations: %v", err)
	}
	byLine := map[[2]string][]*want{}
	for _, w := range wants {
		k := [2]string{w.file, strconv.Itoa(w.line)}
		byLine[k] = append(byLine[k], w)
	}
	for _, d := range diags {
		k := [2]string{d.Pos.Filename, strconv.Itoa(d.Pos.Line)}
		matched := false
		for _, w := range byLine[k] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// wantMarker introduces expectations in fixture source lines.
const wantMarker = "// want "

// collectWants parses every // want expectation in the fixture
// directory's non-test Go files.
func collectWants(dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			patterns, err := parsePatterns(line[idx+len(wantMarker):])
			if err != nil {
				return nil, &wantError{path, i + 1, err}
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, &wantError{path, i + 1, err}
				}
				wants = append(wants, &want{file: path, line: i + 1, re: re, raw: p})
			}
		}
	}
	return wants, nil
}

// wantError locates a malformed expectation.
type wantError struct {
	file string
	line int
	err  error
}

func (e *wantError) Error() string {
	return e.file + ":" + strconv.Itoa(e.line) + ": " + e.err.Error()
}

// parsePatterns reads the sequence of quoted patterns after // want:
// "..." or `...`, separated by spaces.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"', '`':
			end := strings.IndexByte(s[1:], s[0])
			if end < 0 {
				return nil, strconv.ErrSyntax
			}
			lit := s[:end+2]
			unq, err := strconv.Unquote(lit)
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = s[end+2:]
		default:
			return nil, strconv.ErrSyntax
		}
	}
}
