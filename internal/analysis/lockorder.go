package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The lockorder analyzer. ARCHITECTURE.md's locking discipline says
// the engine's locks nest in exactly one order — DB.wmu outermost,
// then the storage locks (Catalog.mu, Table.mu), then the evaluator
// cache's evictMu, shard locks, and entry locks innermost. The
// analyzer assigns each documented lock a numeric tier, tracks the
// held set through every function body (branch bodies fork the state,
// defers of Unlock pin a lock to the function's end), and checks two
// rules at every acquisition: the new lock's tier must be strictly
// greater than every held tier (acquiring outward is an inversion),
// and no held class may be acquired again (self-deadlock). Calls are
// checked interprocedurally: every function gets a fixpoint summary
// of the lock classes it may acquire (directly or through callees),
// and calling a function whose summary reaches a tier at or below a
// held tier is flagged at the call site. Dynamic calls (interface
// methods, function values) have no summary and are not tracked —
// keep lock-holding regions free of them.

// lockClass is one documented lock tier. Classification is by
// (receiver type name, field name): the names are unique in this
// repository, and name-based matching lets the analysistest fixtures
// model the hierarchy without importing unexported engine types.
type lockClass struct {
	tier int
	name string
}

// lockClasses maps [type name, field name] to the documented tier.
// Lower tiers are outermost: wmu(10) > Catalog/Table mu(20) >
// evictMu(25) > shard mu(30) > entry mu(40).
var lockClasses = map[[2]string]lockClass{
	{"DB", "wmu"}:            {10, "DB.wmu"},
	{"Catalog", "mu"}:        {20, "storage.Catalog.mu"},
	{"Table", "mu"}:          {20, "storage.Table.mu"},
	{"evalCache", "evictMu"}: {25, "evalCache.evictMu"},
	{"cacheShard", "mu"}:     {30, "cacheShard.mu"},
	{"incrEntry", "mu"}:      {40, "incrEntry.mu"},
}

// LockOrder checks every lock acquisition against the documented
// partial order, including locks acquired by callees.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the documented lock order: wmu > table.mu > shard.mu > entry.mu",
	Run:  runLockOrder,
}

// lockSummaries is the whole-program map from function object to the
// set of lock classes the function may acquire, transitively.
type lockSummaries struct {
	acquires map[*types.Func]map[lockClass]bool
	decls    map[*types.Func]*ast.FuncDecl
	infos    map[*types.Func]*types.Info
}

func runLockOrder(pass *Pass) {
	sums := pass.Prog.Shared("lockorder.summaries", func() any {
		return buildLockSummaries(pass.Prog)
	}).(*lockSummaries)

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, info: pass.Pkg.Info, sums: sums}
			w.walkBody(fd.Body)
			// Function literals run in an unknown lock context; check
			// their bodies independently with nothing held. A literal
			// nested in a literal is queued again by its parent's walk.
			for len(w.lits) > 0 {
				lit := w.lits[0]
				w.lits = w.lits[1:]
				w.held = map[lockClass]token.Pos{}
				w.walkStmts(lit.Body.List)
			}
		}
	}
}

// buildLockSummaries computes the may-acquire fixpoint over every
// function in the program.
func buildLockSummaries(prog *Program) *lockSummaries {
	s := &lockSummaries{
		acquires: map[*types.Func]map[lockClass]bool{},
		decls:    map[*types.Func]*ast.FuncDecl{},
		infos:    map[*types.Func]*types.Info{},
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s.decls[obj] = fd
				s.infos[obj] = pkg.Info
				direct := map[lockClass]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if class, op, ok := lockOp(pkg.Info, call); ok && op == opLock {
							direct[class] = true
						}
					}
					return true
				})
				s.acquires[obj] = direct
			}
		}
	}
	// Fixpoint: propagate callee acquisitions to callers until stable.
	for changed := true; changed; {
		changed = false
		for obj, fd := range s.decls {
			info := s.infos[obj]
			acq := s.acquires[obj]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(info, call)
				if callee == nil {
					return true
				}
				for class := range s.acquires[callee] {
					if !acq[class] {
						acq[class] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return s
}

// staticCallee resolves a call expression to a statically known
// function or method object, or nil (builtins, function values,
// interface methods, type conversions).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// lockOpKind distinguishes acquisitions from releases.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
)

// lockOp reports whether call is Lock/RLock/TryLock (or the Unlock
// forms) on one of the documented lock fields, and which class.
func lockOp(info *types.Info, call *ast.CallExpr) (lockClass, lockOpKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, 0, false
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return lockClass{}, 0, false
	}
	field, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, 0, false
	}
	tv, ok := info.Types[field.X]
	if !ok {
		return lockClass{}, 0, false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return lockClass{}, 0, false
	}
	class, ok := lockClasses[[2]string{named.Obj().Name(), field.Sel.Name}]
	if !ok {
		return lockClass{}, 0, false
	}
	return class, op, true
}

// lockWalker tracks the held lock set through one function body.
// Statements in a block update the state in order; branch bodies (if,
// for, switch cases, select comms) run on a copy, so an early-exit
// unlock inside a branch neither leaks out of it nor erases the
// fallthrough path's state. That makes the analysis an
// under-approximation on exotic flow, and exact on the engine's
// straight-line lock/defer-unlock idioms.
type lockWalker struct {
	pass *Pass
	info *types.Info
	sums *lockSummaries
	held map[lockClass]token.Pos
	lits []*ast.FuncLit
}

func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	w.held = map[lockClass]token.Pos{}
	w.walkStmts(body.List)
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

// fork runs the walk on a copy of the held set and discards the
// branch's effects.
func (w *lockWalker) fork(run func()) {
	saved := w.held
	forked := make(map[lockClass]token.Pos, len(saved))
	for k, v := range saved {
		forked[k] = v
	}
	w.held = forked
	run()
	w.held = saved
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.ExprStmt:
		w.walkExpr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.walkExpr(e)
		}
		for _, e := range st.Lhs {
			w.walkExpr(e)
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init)
		w.walkExpr(st.Cond)
		w.fork(func() { w.walkStmts(st.Body.List) })
		if st.Else != nil {
			w.fork(func() { w.walkStmt(st.Else) })
		}
	case *ast.ForStmt:
		w.walkStmt(st.Init)
		if st.Cond != nil {
			w.walkExpr(st.Cond)
		}
		w.fork(func() {
			w.walkStmts(st.Body.List)
			w.walkStmt(st.Post)
		})
	case *ast.RangeStmt:
		w.walkExpr(st.X)
		w.fork(func() { w.walkStmts(st.Body.List) })
	case *ast.SwitchStmt:
		w.walkStmt(st.Init)
		if st.Tag != nil {
			w.walkExpr(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			w.fork(func() {
				for _, e := range cc.List {
					w.walkExpr(e)
				}
				w.walkStmts(cc.Body)
			})
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init)
		w.walkStmt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			w.fork(func() { w.walkStmts(cc.Body) })
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			w.fork(func() {
				w.walkStmt(cc.Comm)
				w.walkStmts(cc.Body)
			})
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.walkExpr(e)
		}
	case *ast.DeferStmt:
		w.walkDefer(st.Call)
	case *ast.GoStmt:
		// The goroutine runs concurrently; its body is checked
		// independently (queued if it is a literal), and its
		// acquisitions are not part of this goroutine's held set.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		}
		for _, arg := range st.Call.Args {
			w.walkExpr(arg)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.IncDecStmt:
		w.walkExpr(st.X)
	case *ast.SendStmt:
		w.walkExpr(st.Chan)
		w.walkExpr(st.Value)
	}
}

// walkDefer handles `defer x.Unlock()` (the lock stays held to the
// function's end — no state change, which models exactly that) and
// checks any other deferred call like a normal call site.
func (w *lockWalker) walkDefer(call *ast.CallExpr) {
	if _, op, ok := lockOp(w.info, call); ok && op == opUnlock {
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.lits = append(w.lits, lit)
		return
	}
	w.checkCall(call)
}

// walkExpr scans an expression in source order for lock operations
// and call sites, skipping function literals (queued for independent
// analysis).
func (w *lockWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, op, ok := lockOp(w.info, call); ok {
			switch op {
			case opLock:
				w.checkAcquire(class, call.Pos())
				w.held[class] = call.Pos()
			case opUnlock:
				delete(w.held, class)
			}
			return false
		}
		w.checkCall(call)
		return true
	})
}

// checkAcquire flags acquiring class while a same-or-inner tier is
// held.
func (w *lockWalker) checkAcquire(class lockClass, pos token.Pos) {
	for held := range w.held {
		switch {
		case held == class:
			w.pass.Reportf(pos, "%s acquired while already held (self-deadlock)", class.name)
		case held.tier == class.tier:
			w.pass.Reportf(pos, "%s acquired while holding same-tier %s; same-tier locks must not nest", class.name, held.name)
		case held.tier > class.tier:
			w.pass.Reportf(pos, "lock order inversion: acquiring %s (tier %d) while holding %s (tier %d); documented order is wmu > table.mu > shard.mu > entry.mu",
				class.name, class.tier, held.name, held.tier)
		}
	}
}

// checkCall flags calling a function whose may-acquire summary
// reaches a tier at or below a held tier.
func (w *lockWalker) checkCall(call *ast.CallExpr) {
	if len(w.held) == 0 {
		return
	}
	callee := staticCallee(w.info, call)
	if callee == nil {
		return
	}
	for class := range w.sums.acquires[callee] {
		for held := range w.held {
			if held.tier >= class.tier {
				w.pass.Reportf(call.Pos(), "call to %s may acquire %s (tier %d) while holding %s (tier %d)",
					callee.Name(), class.name, class.tier, held.name, held.tier)
			}
		}
	}
}
