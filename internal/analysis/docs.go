package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The docs analyzer: cmd/doclint folded into the suite so one lint
// entry point covers everything. The rules are unchanged — every
// package carries a package comment; every exported top-level type,
// function, and method on an exported receiver has a doc comment;
// every exported const/var is documented on its spec, its enclosing
// group, or a trailing line comment (grouped enum blocks are
// idiomatic). A main package's main function is exempt: the package
// comment is the command's documentation.

// Docs enforces documentation coverage on packages and exported
// declarations.
var Docs = &Analyzer{
	Name: "docs",
	Doc:  "package comments and doc comments on every exported declaration",
	Run:  runDocs,
}

func runDocs(pass *Pass) {
	hasPkgDoc := false
	for _, f := range pass.Pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(pass.Pkg.Files) > 0 {
		pass.Reportf(pass.Pkg.Files[0].Package, "package %s has no package comment", pass.Pkg.Types.Name())
	}
	isMain := pass.Pkg.Types.Name() == "main"
	for _, f := range pass.Pkg.Files {
		lintDocsFile(pass, f, isMain)
	}
}

// lintDocsFile checks one file's exported top-level declarations.
func lintDocsFile(pass *Pass, f *ast.File, isMain bool) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || (isMain && d.Name.Name == "main") {
				continue
			}
			if recv := receiverTypeName(d); recv != "" && !ast.IsExported(recv) {
				continue // method on an unexported type
			}
			if d.Doc == nil {
				pass.Reportf(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						pass.Reportf(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, n := range vs.Names {
						if n.IsExported() && d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
							pass.Reportf(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
						}
					}
				}
			}
		}
	}
}

// receiverTypeName names the receiver's base type ("" for plain
// funcs).
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// funcKind distinguishes methods from functions in reports.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
