package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The hotpath analyzer. The distance kernels, grid probes, and
// arbitration inner loops run once per candidate pair — millions of
// times per query — and the engine keeps them allocation-free so the
// garbage collector never stalls a scan. A function declares that
// contract with a //sgb:allocfree directive in its doc comment, and
// the analyzer rejects the constructs that silently put allocations
// back: fmt calls (every verb boxes its operand), closures that
// capture enclosing variables (the captured variables move to the
// heap), conversions to interface types (boxing), implicit boxing of
// call arguments into interface parameters, and appends that can
// grow a slice other than a local being reassigned in place
// (x = append(x, ...) reuses capacity; anything else escapes).
// A //sgb:allocfree comment that is not a function's doc comment is
// itself flagged so the contract cannot silently detach from its
// function.

// HotPath enforces the //sgb:allocfree contract on marked functions.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //sgb:allocfree may not allocate: no fmt, closures, interface boxing, or escaping append",
	Run:  runHotPath,
}

// allocFreeDirective is the doc-comment marker for allocation-free
// functions.
const allocFreeDirective = "//sgb:allocfree"

func runHotPath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		// Directives attached to function doc comments are the valid
		// placements; any other //sgb:allocfree comment is adrift.
		valid := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if c := allocFreeComment(fd.Doc); c != nil {
				valid[c] = true
				if fd.Body != nil {
					checkAllocFree(pass, fd)
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), allocFreeDirective) && !valid[c] {
					pass.Reportf(c.Pos(), "//sgb:allocfree must be part of a function's doc comment; this one marks nothing")
				}
			}
		}
	}
}

// allocFreeComment returns the //sgb:allocfree directive in a doc
// group, or nil.
func allocFreeComment(doc *ast.CommentGroup) *ast.Comment {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), allocFreeDirective) {
			return c
		}
	}
	return nil
}

// checkAllocFree applies the allocation rules to one marked function.
func checkAllocFree(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// Appends of the form x = append(x, ...) or x = append(x[:i], ...)
	// reuse the destination's capacity; collect those call nodes first
	// so every other append is flagged.
	allowedAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
			return true
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		src := call.Args[0]
		if sl, ok := src.(*ast.SliceExpr); ok {
			src = sl.X
		}
		if id, ok := src.(*ast.Ident); ok && id.Name == dst.Name {
			allowedAppend[call] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesEnclosing(info, n, fd) {
				pass.Reportf(n.Pos(), "closure capturing enclosing variables in //sgb:allocfree function %s; captured variables escape to the heap", fd.Name.Name)
			}
			return true
		case *ast.CallExpr:
			checkAllocFreeCall(pass, fd, n, allowedAppend)
			// Child calls are still visited via the default return.
		}
		return true
	})
}

// checkAllocFreeCall applies the call-site rules: fmt, append form,
// interface conversions, implicit boxing.
func checkAllocFreeCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, allowedAppend map[*ast.CallExpr]bool) {
	info := pass.Pkg.Info
	if fn := staticCallee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in //sgb:allocfree function %s; fmt boxes every operand", fn.Name(), fd.Name.Name)
		return // the boxing is the fmt call's fault, not each argument's
	}
	if isBuiltin(info, call, "append") {
		if !allowedAppend[call] {
			pass.Reportf(call.Pos(), "append that may grow an escaping slice in //sgb:allocfree function %s; only x = append(x, ...) reuses capacity", fd.Name.Name)
		}
		return
	}
	// Explicit conversion to an interface type: any(x), io.Writer(w).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && !types.IsInterface(atv.Type) {
				pass.Reportf(call.Pos(), "conversion to interface type in //sgb:allocfree function %s boxes its operand", fd.Name.Name)
			}
		}
		return
	}
	// Implicit boxing: a non-interface argument passed to an interface
	// parameter. Builtins (panic, delete, ...) are exempt — panic is
	// the documented escape hatch for invariant violations.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if atv, ok := info.Types[arg]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
			pass.Reportf(arg.Pos(), "argument boxed into interface parameter in //sgb:allocfree function %s", fd.Name.Name)
		}
	}
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// capturesEnclosing reports whether lit references a variable
// declared in fd but outside lit.
func capturesEnclosing(info *types.Info, lit *ast.FuncLit, fd *ast.FuncDecl) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= fd.Pos() && pos < lit.Pos() {
			captured = true
			return false
		}
		return true
	})
	return captured
}
