package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader. Packages are parsed with go/parser and type-checked
// with go/types; imports of other module packages resolve recursively
// through the same loader, and everything else (the standard library)
// resolves through the stdlib source importer — no export data, no
// network, no golang.org/x/tools dependency. Only non-test files are
// loaded: the invariants the suite enforces are about the shipped
// engine, and tests legitimately use maps, time, and math/rand.

// loader loads and memoizes packages for one Program.
type loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	order      []*Package
	loading    map[string]bool
}

func newLoader(moduleRoot, modulePath string) *loader {
	l := &loader{
		fset:       token.NewFileSet(),
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer: module-local paths load through
// the loader, everything else through the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.isLocal(path) {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) isLocal(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// dirFor maps a module-local import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleRoot
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
}

// loadPath loads (or returns the memoized) module-local package.
func (l *loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.loadDir(l.dirFor(path), path)
}

// loadDir parses and type-checks the non-test files of one directory
// under the given import path.
func (l *loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// goFiles lists a directory's non-test .go files, sorted.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (l *loader) program() *Program {
	prog := &Program{
		Fset:       l.fset,
		ModulePath: l.modulePath,
		ModuleRoot: l.moduleRoot,
		Pkgs:       l.order,
		byPath:     l.pkgs,
		shared:     map[string]any{},
	}
	return prog
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			mp := modulePathOf(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// modulePathOf extracts the module path from go.mod content.
func modulePathOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				return unq
			}
			return rest
		}
	}
	return ""
}

// LoadModule loads every package of the module rooted at (or above)
// dir: each directory holding non-test .go files becomes one package,
// dependencies loading before dependents. Directories named testdata
// or vendor and hidden or underscore-prefixed directories are
// skipped, matching the go tool's walking rules.
func LoadModule(dir string) (*Program, error) {
	root, modPath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.loadDir(d, path); err != nil {
			return nil, err
		}
	}
	return l.program(), nil
}

// LoadFixture loads a single directory (an analysistest fixture) as a
// package under the given import path, resolving its module-local
// imports against the module rooted at moduleRoot. The returned
// Program holds the fixture package plus its dependencies.
func LoadFixture(moduleRoot, fixtureDir, importPath string) (*Program, error) {
	_, modPath, err := FindModuleRoot(moduleRoot)
	if err != nil {
		return nil, err
	}
	l := newLoader(moduleRoot, modPath)
	if _, err := l.loadDir(fixtureDir, importPath); err != nil {
		return nil, err
	}
	return l.program(), nil
}
