// Package core is a determinism fixture; its import path places it
// inside the analyzer's result-affecting scope.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// mapOrder feeds map iteration order into an ordered result.
func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys also ranges the map, but the justification marker states
// why the order cannot leak — suppressed, clean.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { //sgblint:allow determinism keys are sorted before any ordered use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// clock reads the wall clock in result-affecting code.
func clock() int64 {
	return time.Now().UnixNano() // want `time.Now in result-affecting code`
}

// draw pulls from the shared global PRNG.
func draw() int {
	return rand.Intn(10) // want `global math/rand draw`
}

// seeded uses a locally seeded generator — clean.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}
