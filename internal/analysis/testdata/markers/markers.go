// Package core exercises the //sgblint:allow marker protocol itself:
// markers with no reason, unknown analyzer names, and stale markers
// are errors. The import path places the package in the determinism
// analyzer's scope so markers have something to suppress.
package core

// suppressed carries a well-formed marker — clean.
func suppressed(m map[string]int) int {
	n := 0
	for range m { //sgblint:allow determinism counting is commutative; order cannot affect the total
		n++
	}
	return n
}

// noReason's marker is rejected, and the finding it would have
// silenced still reports.
func noReason(m map[string]int) int {
	n := 0
	for range m { //sgblint:allow determinism // want `marker has no reason` `map iteration order`
		n++
	}
	return n
}

// unknownName names an analyzer the suite does not contain.
func unknownName(m map[string]int) int {
	n := 0
	for range m { //sgblint:allow determinsm sorted later // want `unknown analyzer "determinsm"` `map iteration order`
		n++
	}
	return n
}

// nameless has no analyzer name at all.
func nameless(m map[string]int) int {
	n := 0
	for range m { //sgblint:allow // want `missing analyzer name` `map iteration order`
		n++
	}
	return n
}

// stale is a well-formed marker with nothing to suppress.
func stale(x int) int {
	return x + 1 //sgblint:allow determinism nothing here needs suppressing // want `stale //sgblint:allow determinism marker`
}
