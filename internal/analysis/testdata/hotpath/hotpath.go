// Package fixture exercises the hotpath analyzer's //sgb:allocfree
// contract.
package fixture

import "fmt"

// dot is a clean kernel: arithmetic, indexing, a capacity-reusing
// append idiom — nothing allocates.
//
//sgb:allocfree
func dot(p, q []float64) float64 {
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// grow reuses its destination's capacity — the one allowed append
// form — clean.
//
//sgb:allocfree
func grow(dst []int32, v int32) []int32 {
	dst = append(dst, v)
	return dst
}

// guard panics on invariant violation; the panic builtin is exempt
// from boxing checks — clean.
//
//sgb:allocfree
func guard(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// debug formats — every fmt verb boxes.
//
//sgb:allocfree
func debug(x int) {
	fmt.Println(x) // want `fmt.Println call`
}

type bag struct {
	items []int32
}

// escape appends through a pointer field; the slice escapes.
//
//sgb:allocfree
func escape(b *bag, v int32) {
	b.items = append(b.items, v) // want `append that may grow an escaping slice`
}

// capture returns a closure over its locals; they move to the heap.
//
//sgb:allocfree
func capture(vals []int32) func() int32 {
	i := 0
	return func() int32 { // want `closure capturing enclosing variables`
		v := vals[i]
		i++
		return v
	}
}

// box converts to an interface explicitly.
//
//sgb:allocfree
func box(x int) any {
	return any(x) // want `conversion to interface type`
}

func sink(v any) { _ = v }

// implicitBox passes a concrete value to an interface parameter.
//
//sgb:allocfree
func implicitBox(x int) {
	sink(x) // want `argument boxed into interface parameter`
}

//sgb:allocfree  — adrift: not a function's doc comment. // want `marks nothing`
var speed int

// unmarked may allocate freely — clean.
func unmarked(x int) string {
	return fmt.Sprint(x)
}
