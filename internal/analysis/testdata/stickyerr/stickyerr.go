// Package fixture exercises the stickyerr analyzer against the real
// wal.Log type.
package fixture

import "github.com/sgb-db/sgb/internal/wal"

// discarded drops the append error on the floor.
func discarded(l *wal.Log, rec wal.Record) {
	l.Append(rec) // want `error from wal.Log.Append discarded`
}

// blanked discards the error through the blank identifier.
func blanked(l *wal.Log, rec wal.Record) uint64 {
	seq, _ := l.Append(rec) // want `error from wal.Log.Append assigned to _`
	return seq
}

// deferred drops a deferred Close's error.
func deferred(l *wal.Log) {
	defer l.Close() // want `error from deferred wal.Log.Close discarded`
}

// checked consumes every error — clean.
func checked(l *wal.Log, rec wal.Record) error {
	if _, err := l.Append(rec); err != nil {
		return err
	}
	if err := l.Sync(); err != nil {
		return err
	}
	return l.Close()
}
