package fixture // want `package fixture has no package comment`

// Documented carries a doc comment — clean.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

// Limit is documented — clean.
const Limit = 10

// Exported is documented — clean.
func Exported() {}

func Bare() {} // want `exported function Bare has no doc comment`

type helper struct{}

// Exported methods on unexported receivers are exempt — clean.
func (h helper) Exported() {}

// Method documents the documented method — clean.
func (d Documented) Method() {}

func (d Documented) Loose() {} // want `exported method Loose has no doc comment`
