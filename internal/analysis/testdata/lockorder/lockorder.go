// Package fixture exercises the lockorder analyzer: the lock types
// mirror the engine's hierarchy by name (classification is by type
// and field name), so the fixture needs no engine imports.
package fixture

import "sync"

// DB mirrors the engine's DB: wmu is the tier-10 writer lock.
type DB struct {
	wmu sync.Mutex
}

// Table mirrors storage.Table: mu is a tier-20 lock.
type Table struct {
	mu sync.RWMutex
}

type cacheShard struct {
	mu sync.Mutex
}

type incrEntry struct {
	mu sync.Mutex
}

// ordered acquires strictly inward — clean.
func ordered(db *DB, t *Table, s *cacheShard, e *incrEntry) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	s.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	s.mu.Unlock()
}

// inverted takes a table lock while holding an entry lock.
func inverted(t *Table, e *incrEntry) {
	e.mu.Lock()
	t.mu.RLock() // want `lock order inversion`
	t.mu.RUnlock()
	e.mu.Unlock()
}

// double reacquires a held lock.
func double(db *DB) {
	db.wmu.Lock()
	db.wmu.Lock() // want `self-deadlock`
	db.wmu.Unlock()
	db.wmu.Unlock()
}

// branches locks wmu in two switch arms; the arms are alternatives,
// not a sequence, so this is clean — the walker forks per branch.
func branches(db *DB, mode int) {
	switch mode {
	case 0:
		db.wmu.Lock()
		defer db.wmu.Unlock()
	case 1:
		db.wmu.Lock()
		defer db.wmu.Unlock()
	}
}

// unlockThenLock releases before reacquiring — clean.
func unlockThenLock(e *incrEntry, t *Table) {
	e.mu.Lock()
	e.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}

// takesTable acquires the tier-20 table lock; callers holding an
// inner lock must not call it.
func takesTable(t *Table) {
	t.mu.Lock()
	t.mu.Unlock()
}

// callInversion holds the entry lock across a call that acquires the
// table lock — an inversion through the call graph.
func callInversion(t *Table, e *incrEntry) {
	e.mu.Lock()
	takesTable(t) // want `may acquire`
	e.mu.Unlock()
}

// viaHelper is the transitive case: helper itself calls takesTable.
func viaHelper(t *Table, e *incrEntry) {
	e.mu.Lock()
	helper(t) // want `may acquire`
	e.mu.Unlock()
}

func helper(t *Table) {
	takesTable(t)
}

// goroutineBody runs its closure concurrently; the closure's
// acquisitions are not part of the spawner's held set — clean.
func goroutineBody(db *DB, t *Table) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	go func() {
		t.mu.Lock()
		t.mu.Unlock()
	}()
}
