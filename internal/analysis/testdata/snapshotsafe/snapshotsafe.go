// Package fixture exercises the snapshotsafe analyzer against the
// real storage.Table type.
package fixture

import (
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// direct reads the row slice without a snapshot.
func direct(t *storage.Table) int {
	return len(t.Rows) // want `direct access to storage.Table.Rows`
}

// directRange iterates the row slice without a snapshot.
func directRange(t *storage.Table) int {
	n := 0
	for range t.Rows { // want `direct access to storage.Table.Rows`
		n++
	}
	return n
}

// viaSnapshot is the sanctioned read path — clean.
func viaSnapshot(t *storage.Table) int {
	rows, _ := t.Snapshot()
	return len(rows)
}

// rebuild models the snapshot codec's recovery-time write, justified
// in place.
func rebuild(t *storage.Table, rows []types.Row) {
	t.Rows = rows //sgblint:allow snapshotsafe fixture models the recovery-time rebuild before publication
}

// otherRows proves the rule keys on storage.Table, not on any field
// named Rows — clean.
type rowHolder struct {
	Rows []int
}

func otherRows(h *rowHolder) int {
	return len(h.Rows)
}
