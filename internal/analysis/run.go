package analysis

import (
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// The driver: runs analyzers over target packages, then applies the
// //sgblint:allow marker protocol. A well-formed marker
//
//	//sgblint:allow <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the marker's own line and
// the line directly below (so it works both as a trailing comment and
// as a standalone line above the finding). Marker hygiene is itself
// enforced: a marker with no reason, or naming an analyzer the suite
// does not contain, is an error; a well-formed marker that suppressed
// nothing is stale and reported so silenced findings cannot outlive
// the code they excused.

// allowPrefix introduces a suppression marker comment.
const allowPrefix = "sgblint:allow"

// allowMarker is one parsed //sgblint:allow comment.
type allowMarker struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// collectMarkers parses every //sgblint:allow marker in the package's
// files, reporting malformed ones immediately. known lists the
// analyzer names markers may reference.
func collectMarkers(prog *Program, pkg *Package, known map[string]bool, diags *[]Diagnostic) []*allowMarker {
	var markers []*allowMarker
	report := func(pos token.Position, msg string) {
		*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "sgblint", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				body := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				// Fixture files carry // want expectations on marker
				// lines; they are commentary, not reason text.
				if i := strings.Index(body, "// want"); i >= 0 {
					body = strings.TrimSpace(body[:i])
				}
				name, reason, _ := strings.Cut(body, " ")
				reason = strings.TrimSpace(reason)
				if name == "" {
					report(pos, "malformed //sgblint:allow marker: missing analyzer name")
					continue
				}
				if !known[name] {
					report(pos, "//sgblint:allow names unknown analyzer "+strconv.Quote(name))
					continue
				}
				if reason == "" {
					report(pos, "//sgblint:allow "+name+" marker has no reason; every suppression must say why")
					continue
				}
				markers = append(markers, &allowMarker{pos: pos, analyzer: name, reason: reason})
			}
		}
	}
	return markers
}

// RunAnalyzers runs each analyzer over each target package, applies
// the //sgblint:allow marker protocol, and returns the surviving
// diagnostics sorted by position. known lists every analyzer name
// markers may legitimately reference — pass SuiteNames() so a marker
// for an analyzer outside this run is neither "unknown" nor "stale".
func RunAnalyzers(prog *Program, targets []*Package, analyzers []*Analyzer, known []string) []Diagnostic {
	knownSet := map[string]bool{}
	for _, n := range known {
		knownSet[n] = true
	}
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var raw []Diagnostic
	var markerDiags []Diagnostic
	var markers []*allowMarker
	for _, pkg := range targets {
		markers = append(markers, collectMarkers(prog, pkg, knownSet, &markerDiags)...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
	}

	// Suppression: a marker covers its own line and the next one.
	byLine := map[[2]any][]*allowMarker{}
	for _, m := range markers {
		for _, line := range []int{m.pos.Line, m.pos.Line + 1} {
			k := [2]any{m.pos.Filename, line}
			byLine[k] = append(byLine[k], m)
		}
	}
	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, m := range byLine[[2]any{d.Pos.Filename, d.Pos.Line}] {
			if m.analyzer == d.Analyzer {
				m.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	// Staleness: only meaningful for markers whose analyzer actually
	// ran — a partial run (sgblint -only, analysistest) must not
	// condemn markers it never gave a chance to match.
	for _, m := range markers {
		if !m.used && running[m.analyzer] {
			out = append(out, Diagnostic{
				Pos:      m.pos,
				Analyzer: "sgblint",
				Message:  "stale //sgblint:allow " + m.analyzer + " marker: it suppresses nothing; remove it",
			})
		}
	}
	out = append(out, markerDiags...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dedupe: whole-program analyzers may surface one site twice.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}
