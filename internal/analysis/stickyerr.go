package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The stickyerr analyzer. wal.Log has sticky failure semantics: once
// an Append or Sync fails, the log is poisoned and every later call
// returns ErrLogFailed — the durability layer relies on callers
// noticing the first failure to stop acknowledging writes that will
// never be recoverable. Discarding the error from a Log method
// therefore doesn't just lose one error, it silently converts a
// durable database into a lossy one. The analyzer flags every call
// to a (*wal.Log) method with an error result whose error is
// discarded: a bare expression statement, a blank identifier in the
// error position, or a defer/go of such a call. internal/wal itself
// is exempt (it implements the stickiness).

// StickyErr flags discarded errors from wal.Log's sticky-error
// methods.
var StickyErr = &Analyzer{
	Name: "stickyerr",
	Doc:  "errors from wal.Log methods must be checked; a failed append poisons the log",
	Run:  runStickyErr,
}

// walPkgSuffix identifies the package that owns Log and is exempt.
const walPkgSuffix = "/internal/wal"

func runStickyErr(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, walPkgSuffix) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := walLogCall(info, call); ok {
						pass.Reportf(call.Pos(), "error from wal.Log.%s discarded; a failed WAL operation poisons the log and must be handled", name)
					}
				}
				return false
			case *ast.DeferStmt:
				if name, ok := walLogCall(info, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "error from deferred wal.Log.%s discarded; a failed WAL operation poisons the log and must be handled", name)
				}
				return false
			case *ast.GoStmt:
				if name, ok := walLogCall(info, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "error from wal.Log.%s discarded in go statement; a failed WAL operation poisons the log and must be handled", name)
				}
				return true
			case *ast.AssignStmt:
				checkStickyAssign(pass, n)
				return true
			}
			return true
		})
	}
}

// checkStickyAssign flags `_` in the error position of a wal.Log call
// assignment, e.g. `seq, _ := log.Append(rec)`.
func checkStickyAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := walLogCall(pass.Pkg.Info, call)
	if !ok {
		return
	}
	// The error is the last result; flag when that position is blank.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(call.Pos(), "error from wal.Log.%s assigned to _; a failed WAL operation poisons the log and must be handled", name)
	}
}

// walLogCall reports whether call invokes a method on wal.Log (value
// or pointer receiver) whose last result is error, returning the
// method name.
func walLogCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Log" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), walPkgSuffix) {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	if !isErrorType(res.At(res.Len() - 1).Type()) {
		return "", false
	}
	return fn.Name(), true
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
