package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The snapshotsafe analyzer. storage.Table's row slice is guarded by
// the table lock and a generation counter; readers get a consistent
// view only through Snapshot(), and writers go through the mutation
// API (Append, DeleteWhere) which bumps the generation. A query path
// that reads t.Rows directly can observe a half-applied write and,
// worse, silently defeats the evaluator cache's generation check.
// The analyzer flags every selection of the Rows field on
// storage.Table outside internal/storage itself. The snapshot codec
// is the one legitimate outside writer (it rebuilds tables during
// recovery, before the database is shared) and carries justified
// //sgblint:allow markers.

// SnapshotSafe flags direct storage.Table.Rows access outside
// internal/storage.
var SnapshotSafe = &Analyzer{
	Name: "snapshotsafe",
	Doc:  "table rows must be reached via Snapshot() or the mutation API outside internal/storage",
	Run:  runSnapshotSafe,
}

// storagePkgSuffix identifies the package that owns Table and is
// exempt from the rule.
const storagePkgSuffix = "/internal/storage"

func runSnapshotSafe(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, storagePkgSuffix) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Rows" {
				return true
			}
			selection, ok := pass.Pkg.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if !isStorageTable(selection.Recv()) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "direct access to storage.Table.Rows outside internal/storage; use Snapshot() or the mutation API")
			return true
		})
	}
}

// isStorageTable reports whether t is storage.Table or a pointer to
// it.
func isStorageTable(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Table" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), storagePkgSuffix)
}
