// Package analysis is the engine's repo-specific static-analysis
// suite: a small go/analysis-style framework (stdlib only — go/ast,
// go/parser, go/types with the source importer, so CI and local runs
// need no module downloads) plus the six analyzers that mechanically
// enforce the invariants ARCHITECTURE.md states in prose:
//
//   - lockorder: every Lock/RLock acquisition site respects the
//     documented partial order DB.wmu > Catalog.mu/Table.mu >
//     evalCache.evictMu > cacheShard.mu > incrEntry.mu, including
//     locks acquired by callees while a lock is held; inversions and
//     double acquisitions are flagged.
//   - snapshotsafe: outside internal/storage, table row storage is
//     reached only through Snapshot() or the mutation API — a direct
//     storage.Table.Rows access in a query path is an error.
//   - determinism: in the result-affecting packages (internal/core,
//     internal/lattice, internal/exec, internal/partition, and the
//     root engine package) no map iteration without a justification,
//     no time.Now, no global math/rand draws — the bit-identical
//     reproducibility contract of SGB arbitration and the ε-lattice's
//     strict (Key, A, B) total order must not leak iteration order.
//   - stickyerr: a failed wal.Log append poisons the log; call sites
//     must consume the returned error, never discard it.
//   - hotpath: functions marked //sgb:allocfree (distance kernels,
//     grid probes) may not contain fmt calls, closures capturing
//     enclosing variables, interface conversions, or appends that can
//     grow an escaping slice.
//   - docs: the former cmd/doclint — package comments and doc
//     comments on every exported declaration.
//
// False positives are silenced in place with a justified marker:
//
//	//sgblint:allow <analyzer> <reason>
//
// on the offending line or the line above. A marker without a reason
// is itself an error, as is a marker that no longer suppresses
// anything (staleness) or names an unknown analyzer.
//
// Command cmd/sgblint drives the suite; internal/analysis/analysistest
// runs a single analyzer over a testdata fixture with // want
// expectations.
package analysis
