package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Segment layout: an 8-byte magic, the 8-byte sequence number of the
// segment's first frame, then frames back to back. Frame layout:
// 4-byte payload length, 4-byte CRC32-C of the payload, payload.
const (
	segMagic  = "SGBWAL1\n"
	segHdrLen = len(segMagic) + 8
	frameHdr  = 8
	segPrefix = "wal-"
	segSuffix = ".seg"
	// maxFrame bounds a single record; a length field above it is
	// corruption, not a real frame.
	maxFrame = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when Append flushes to stable storage.
type SyncPolicy int

// The sync policies (SET durability = always | interval | off).
const (
	// SyncAlways fsyncs after every append: every acknowledged
	// statement survives a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when Options.Interval has elapsed since the
	// last sync: a bounded window of acknowledged statements may be
	// lost, appends cost a write but rarely a flush.
	SyncInterval
	// SyncOff never fsyncs from Append: contents survive a process
	// crash (the OS holds them) but not a machine crash.
	SyncOff
)

// String spells the policy as SET durability accepts it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// File is the writable handle a Log appends frames through. *os.File
// satisfies it; tests substitute a FaultFile to inject torn writes and
// failed fsyncs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options tunes a Log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (a segment may
	// exceed it by one frame). 0 selects 4 MiB.
	SegmentSize int64
	// Policy is the append sync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval flush spacing. 0 selects 100ms.
	Interval time.Duration
	// OpenFile opens a segment file for appending; nil selects os
	// creation. Tests interpose failpoint writers here.
	OpenFile func(path string) (File, error)
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string) (File, error) {
			return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		}
	}
	return o
}

// segment describes one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
	// validLen is the byte offset of the end of the last valid frame
	// (set by the open-time scan).
	validLen int64
	frames   int // valid frame count
	// tornTail records that the scan found bytes past the last valid
	// frame — a torn or corrupt frame that ends the log.
	tornTail bool
}

// Log is an append-only segmented WAL opened over a directory. It is
// not safe for concurrent use; the engine serializes mutations.
type Log struct {
	dir  string
	opt  Options
	segs []segment

	f        File // current segment handle (append mode)
	fPath    string
	fSize    int64
	lastSeq  uint64 // sequence number of the last appended frame (0 = none)
	lastSync time.Time
	failed   error // sticky: a torn append poisons the log
}

// ErrLogFailed wraps the first append failure; every later Append and
// Sync returns it. A log that tore a frame mid-write has no well-known
// end offset anymore — the process must recover by reopening, which
// repairs the tail.
var ErrLogFailed = errors.New("wal: log failed; reopen to recover")

// Open opens (creating if needed) the WAL in dir, repairs any torn
// tail left by a crash — the file is truncated after the last valid
// frame and any segments beyond the first corruption are deleted — and
// positions for appending. The returned log's LastSeq reports the
// sequence number of the last surviving frame.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, lastSync: time.Now()}
	// Validate segments in order; the first corruption ends the log.
	for i := range segs {
		s := &segs[i]
		if err := scanSegment(s); err != nil {
			// Unreadable header: the segment contributes nothing. Frames
			// in later segments would replay over a hole, so drop them.
			removeSegments(segs[i:])
			segs = segs[:i]
			break
		}
		if s.tornTail {
			if err := os.Truncate(s.path, s.validLen); err != nil {
				return nil, fmt.Errorf("wal: repairing torn tail of %s: %w", s.path, err)
			}
			s.tornTail = false
			// A torn frame ends the log: later segments are unreachable.
			removeSegments(segs[i+1:])
			segs = segs[:i+1]
			break
		}
	}
	l.segs = segs
	if n := len(segs); n > 0 {
		last := segs[n-1]
		l.lastSeq = last.firstSeq + uint64(last.frames) - 1
		f, err := opt.OpenFile(last.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.fPath, l.fSize = f, last.path, last.validLen
	}
	return l, nil
}

// removeSegments best-effort deletes segment files (used when repair
// drops unreachable segments).
func removeSegments(segs []segment) {
	for _, s := range segs {
		os.Remove(s.path)
	}
}

// scanDir lists the segment files of dir sorted by first sequence
// number.
func scanDir(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanSegment walks a segment's frames, recording the valid length and
// frame count. It returns an error only when the header itself is
// unreadable; torn or corrupt frames merely end the valid region.
func scanSegment(s *segment) error {
	b, err := os.ReadFile(s.path)
	if err != nil {
		return err
	}
	if len(b) < segHdrLen || string(b[:len(segMagic)]) != segMagic {
		return fmt.Errorf("wal: %s: bad segment header", s.path)
	}
	hdrSeq := binary.LittleEndian.Uint64(b[len(segMagic):segHdrLen])
	if hdrSeq != s.firstSeq {
		return fmt.Errorf("wal: %s: header sequence %d does not match file name", s.path, hdrSeq)
	}
	off := int64(segHdrLen)
	for {
		n, ok := validFrame(b, off)
		if !ok {
			if int64(len(b)) > off {
				s.tornTail = true
			}
			break
		}
		off += n
		s.frames++
	}
	s.validLen = off
	return nil
}

// validFrame checks the frame starting at off and returns its total
// length. ok is false at a clean end, a torn frame, or a corrupt one.
func validFrame(b []byte, off int64) (int64, bool) {
	if int64(len(b)) < off+frameHdr {
		return 0, false
	}
	length := binary.LittleEndian.Uint32(b[off:])
	crc := binary.LittleEndian.Uint32(b[off+4:])
	if length == 0 || length > maxFrame {
		return 0, false
	}
	end := off + frameHdr + int64(length)
	if int64(len(b)) < end {
		return 0, false
	}
	if crc32.Checksum(b[off+frameHdr:end], castagnoli) != crc {
		return 0, false
	}
	return frameHdr + int64(length), true
}

// LastSeq returns the sequence number of the last appended (or
// recovered) frame; 0 means the log is empty.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Position returns the current append position (segment path and byte
// offset) — the frame-boundary coordinates the kill-matrix tests crash
// at.
func (l *Log) Position() (path string, off int64) { return l.fPath, l.fSize }

// SetPolicy switches the sync policy (SET durability). Tightening to
// SyncAlways syncs immediately so the promise holds from this
// statement on.
func (l *Log) SetPolicy(p SyncPolicy) error {
	l.opt.Policy = p
	if p == SyncAlways {
		return l.Sync()
	}
	return nil
}

// Policy returns the current sync policy.
func (l *Log) Policy() SyncPolicy { return l.opt.Policy }

// Append encodes rec as one frame, writes it to the current segment
// (rotating first when full), and applies the sync policy. It returns
// the frame's sequence number. A write failure poisons the log: the
// on-disk tail may be torn, so every later Append fails with
// ErrLogFailed until the log is reopened (which repairs the tail).
func (l *Log) Append(rec Record) (uint64, error) {
	if l.failed != nil {
		return 0, l.failed
	}
	payload := EncodeRecord(rec)
	frame := make([]byte, frameHdr+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHdr:], payload)

	if l.f == nil || l.fSize >= l.opt.SegmentSize {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.fail(err)
		return 0, l.failed
	}
	l.fSize += int64(len(frame))
	l.lastSeq++
	cur := &l.segs[len(l.segs)-1]
	cur.frames++
	cur.validLen = l.fSize

	switch l.opt.Policy {
	case SyncAlways:
		if err := l.Sync(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.Interval {
			if err := l.Sync(); err != nil {
				return 0, err
			}
		}
	}
	return l.lastSeq, nil
}

// fail poisons the log after a write error.
func (l *Log) fail(cause error) {
	if l.failed == nil {
		l.failed = fmt.Errorf("%w: %w", ErrLogFailed, cause)
	}
}

// rotate closes the current segment (synced) and starts the next one,
// whose first frame will be lastSeq+1.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.fail(err)
			return l.failed
		}
		if err := l.f.Close(); err != nil {
			l.fail(err)
			return l.failed
		}
		l.f = nil
	}
	firstSeq := l.lastSeq + 1
	path := filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix))
	f, err := l.opt.OpenFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, segHdrLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], firstSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		l.fail(err)
		return l.failed
	}
	l.f, l.fPath, l.fSize = f, path, int64(segHdrLen)
	l.segs = append(l.segs, segment{path: path, firstSeq: firstSeq, validLen: int64(segHdrLen)})
	syncDir(l.dir)
	return nil
}

// Sync flushes the current segment to stable storage.
func (l *Log) Sync() error {
	if l.failed != nil {
		return l.failed
	}
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.fail(err)
		return l.failed
	}
	l.lastSync = time.Now()
	return nil
}

// Close syncs and closes the log. The log is unusable afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Prune deletes segments every frame of which has sequence number
// ≤ seq (because the next segment starts at or below seq+1). The
// checkpointer calls it with the covered sequence of the oldest
// retained snapshot, so recovery can always fall back that far.
func (l *Log) Prune(seq uint64) error {
	n := 0
	for n+1 < len(l.segs) && l.segs[n+1].firstSeq <= seq+1 {
		if err := os.Remove(l.segs[n].path); err != nil {
			return fmt.Errorf("wal: prune: %w", err)
		}
		n++
	}
	if n > 0 {
		l.segs = append(l.segs[:0], l.segs[n:]...)
		syncDir(l.dir)
	}
	return nil
}

// Replay decodes every valid frame with sequence number > fromSeq in
// order, invoking fn with each record. It reads the segment files
// directly (callable before or after Open on the same directory) and
// stops cleanly at the first torn or corrupt frame — corruption is
// never replayed. It returns the sequence number of the last frame
// delivered (or fromSeq if none).
func Replay(dir string, fromSeq uint64, fn func(seq uint64, rec Record) error) (uint64, error) {
	segs, err := scanDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return fromSeq, nil
		}
		return fromSeq, err
	}
	last := fromSeq
	for i := range segs {
		s := &segs[i]
		b, err := os.ReadFile(s.path)
		if err != nil {
			return last, fmt.Errorf("wal: %w", err)
		}
		if len(b) < segHdrLen || string(b[:len(segMagic)]) != segMagic {
			return last, nil // unreadable segment ends the log
		}
		seq := s.firstSeq - 1
		// Skip whole segments the snapshot already covers.
		if i+1 < len(segs) && segs[i+1].firstSeq <= fromSeq+1 {
			continue
		}
		off := int64(segHdrLen)
		for {
			n, ok := validFrame(b, off)
			if !ok {
				if int64(len(b)) > off {
					return last, nil // torn/corrupt frame ends the log
				}
				break
			}
			seq++
			if seq > fromSeq {
				rec, err := DecodeRecord(b[off+frameHdr : off+n])
				if err != nil {
					// The frame passed its checksum but does not decode: a
					// writer bug or targeted corruption. Stop rather than
					// guess.
					return last, nil
				}
				if err := fn(seq, rec); err != nil {
					return last, err
				}
				last = seq
			}
			off += n
		}
	}
	return last, nil
}

// syncDir fsyncs a directory so file creations, deletions, and renames
// inside it are durable. Errors are ignored: some filesystems and
// platforms reject directory fsync, and the fallback behavior (the
// metadata flushes on the next journal commit) is the pre-existing
// state of the art.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
