package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/types"
)

// fuzzSeedSegment builds a well-formed segment holding the sample
// records — the honest-log seed the fuzzer mutates.
func fuzzSeedSegment() []byte {
	b := make([]byte, segHdrLen)
	copy(b, segMagic)
	binary.LittleEndian.PutUint64(b[len(segMagic):], 1)
	for _, rec := range sampleRecords() {
		payload := EncodeRecord(rec)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
		b = append(b, payload...)
	}
	return b
}

// FuzzWALReader feeds arbitrary bytes to the segment reader as a
// segment file. The reader must never panic, never return an error for
// mere corruption (it stops cleanly instead), and any records it does
// yield must decode consistently on a second pass (determinism).
func FuzzWALReader(f *testing.F) {
	seed := fuzzSeedSegment()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])  // torn final frame
	f.Add(seed[:segHdrLen])    // header only
	f.Add([]byte{})            // empty file
	f.Add([]byte("SGBWAL1\n")) // magic, no sequence
	garbled := append([]byte(nil), seed...)
	garbled[segHdrLen+5] ^= 0x10 // corrupt first frame's CRC region
	f.Add(garbled)
	short := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(short[segHdrLen:], 1<<30) // absurd length
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segPrefix+"00000000000000000001"+segSuffix)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		var first []Record
		if _, err := Replay(dir, 0, func(seq uint64, rec Record) error {
			first = append(first, rec)
			return nil
		}); err != nil {
			t.Fatalf("Replay returned error on corrupt input: %v", err)
		}
		var second []Record
		if _, err := Replay(dir, 0, func(seq uint64, rec Record) error {
			second = append(second, rec)
			return nil
		}); err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("non-deterministic replay")
		}
		// Open must also cope: repair the tail, stay appendable.
		l, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		if _, err := l.Append(DropTable{Name: "fz"}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		l.Close()
	})
}

// FuzzRecordDecode hammers the record codec directly: arbitrary
// payloads must decode or error, never panic, and successful decodes
// must re-encode to a decodable record.
func FuzzRecordDecode(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(EncodeRecord(rec))
	}
	f.Add([]byte{byte(RecInsert)})
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return
		}
		re := EncodeRecord(rec)
		rec2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("decode/encode/decode mismatch")
		}
	})
}

// TestTypesRowAlias pins the codec's assumption that types.Row is a
// value slice (the decoder rebuilds rows without aliasing the input).
func TestTypesRowAlias(t *testing.T) {
	row := types.Row{types.Int(1)}
	b := AppendRow(nil, row)
	d := NewDecoder(b)
	got := d.Row()
	row[0] = types.Int(2)
	if got[0].I != 1 {
		t.Fatal("decoded row aliases the encoder input")
	}
}
