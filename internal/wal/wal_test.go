package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/types"
)

func sampleRecords() []Record {
	return []Record{
		CreateTable{Name: "pts", Cols: []ColDef{{Name: "id", Kind: types.KindInt}, {Name: "x", Kind: types.KindFloat}}},
		Insert{Table: "pts", Rows: []types.Row{
			{types.Int(1), types.Float(2.5)},
			{types.Int(2), types.Null()},
		}},
		Insert{Table: "pts", Rows: []types.Row{
			{types.Int(3), types.Float(-0.25)},
		}},
		Delete{Table: "pts", Idx: []int{0, 2}},
		DropTable{Name: "pts"},
	}
}

// replayAll collects every record in dir after fromSeq.
func replayAll(t *testing.T, dir string, fromSeq uint64) []Record {
	t.Helper()
	out := []Record{} // non-nil so DeepEqual against recs[:0] holds
	if _, err := Replay(dir, fromSeq, func(seq uint64, rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		payload := EncodeRecord(rec)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("DecodeRecord(%T): %v", rec, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip mismatch: got %#v want %#v", got, rec)
		}
	}
}

func TestValueRoundTrip(t *testing.T) {
	values := []types.Value{
		types.Null(), types.Int(-7), types.Int(1 << 60), types.Float(3.14159),
		types.Float(-0.0), types.Text(""), types.Text("héllo, wörld"),
		types.Bool(true), types.Bool(false), types.Date(20000), types.Interval(13, 2.5),
	}
	b := AppendRow(nil, values)
	d := NewDecoder(b)
	got := d.Row()
	if err := d.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, types.Row(values)) {
		t.Fatalf("row mismatch:\n got %#v\nwant %#v", got, values)
	}
	if d.Len() != 0 {
		t.Fatalf("%d trailing bytes", d.Len())
	}
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for i, rec := range recs {
		seq, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir, 0); !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay mismatch:\n got %#v\nwant %#v", got, recs)
	}
	// Partial replay skips the covered prefix.
	if got := replayAll(t, dir, 3); !reflect.DeepEqual(got, recs[3:]) {
		t.Fatalf("tail replay mismatch: got %#v", got)
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every frame rotates.
	l, err := Open(dir, Options{Policy: SyncOff, SegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := segmentCount(t, dir); got != len(recs) {
		t.Fatalf("segments = %d, want %d", got, len(recs))
	}
	// Prune through seq 3: segments holding frames 1..3 go, 4..5 stay.
	if err := l.Prune(3); err != nil {
		t.Fatal(err)
	}
	if got := segmentCount(t, dir); got != 2 {
		t.Fatalf("segments after prune = %d, want 2", got)
	}
	if got := replayAll(t, dir, 3); !reflect.DeepEqual(got, recs[3:]) {
		t.Fatalf("post-prune tail mismatch: got %#v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen continues the sequence.
	l2, err := Open(dir, Options{Policy: SyncOff, SegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != uint64(len(recs)) {
		t.Fatalf("LastSeq = %d, want %d", l2.LastSeq(), len(recs))
	}
	if seq, err := l2.Append(DropTable{Name: "x"}); err != nil || seq != uint64(len(recs)+1) {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
}

func segmentCount(t *testing.T, dir string) int {
	t.Helper()
	segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

// TestTornTailRecovery truncates the log at every byte offset of its
// single segment and checks the reader always recovers the longest
// prefix of full frames — never an error, never a partial record.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	boundaries := []int64{int64(segHdrLen)}
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		_, off := l.Position()
		boundaries = append(boundaries, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, readSingleSegment(t, dir))
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(whole)); cut++ {
		sub := t.TempDir()
		subSeg := filepath.Join(sub, filepath.Base(segPath))
		if err := os.WriteFile(subSeg, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// How many full frames survive the cut?
		want := 0
		for want < len(recs) && boundaries[want+1] <= cut {
			want++
		}
		got := replayAll(t, sub, 0)
		if cut < int64(segHdrLen) {
			want = 0 // unreadable header: empty log
		}
		if len(got) != want {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), want)
		}
		if !reflect.DeepEqual(got, recs[:want]) {
			t.Fatalf("cut %d: record mismatch", cut)
		}
		// Open must repair the tail and then append cleanly.
		l2, err := Open(sub, Options{Policy: SyncOff})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if _, err := l2.Append(DropTable{Name: "t"}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		l2.Close()
		after := replayAll(t, sub, 0)
		if len(after) != want+1 {
			t.Fatalf("cut %d: after repair+append got %d records, want %d", cut, len(after), want+1)
		}
	}
}

// TestGarbledFrameDetection flips one byte at a time across the
// segment and checks the reader never yields a wrong record: every
// replayed prefix must match the original records.
func TestGarbledFrameDetection(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, readSingleSegment(t, dir))
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(whole); pos++ {
		garbled := append([]byte(nil), whole...)
		garbled[pos] ^= 0x5A
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(segPath)), garbled, 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, sub, 0)
		if len(got) > len(recs) {
			t.Fatalf("pos %d: replayed %d records from %d-record log", pos, len(got), len(recs))
		}
		if !reflect.DeepEqual(got, recs[:len(got)]) {
			t.Fatalf("pos %d: corrupt record slipped through", pos)
		}
	}
}

func readSingleSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, found %d", len(segs))
	}
	return filepath.Base(segs[0].path)
}

func TestFaultInjectionTornWrite(t *testing.T) {
	for _, garble := range []bool{false, true} {
		recs := sampleRecords()
		// First, measure the clean stream length.
		clean := t.TempDir()
		l, err := Open(clean, Options{Policy: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		_, total := l.Position()
		l.Close()

		for cut := int64(0); cut < total; cut += 7 {
			ff := NewFaultFile()
			ff.FailWriteAt = cut
			ff.Garble = garble
			dir := t.TempDir()
			fl, err := Open(dir, Options{Policy: SyncOff, OpenFile: ff.Wrap(defaultOpen)})
			if err != nil {
				t.Fatal(err)
			}
			var appendErr error
			applied := 0
			for _, rec := range recs {
				if _, err := fl.Append(rec); err != nil {
					appendErr = err
					break
				}
				applied++
			}
			if appendErr == nil {
				t.Fatalf("cut %d: fault never tripped", cut)
			}
			if !errors.Is(appendErr, ErrInjected) && !errors.Is(appendErr, ErrLogFailed) {
				t.Fatalf("cut %d: unexpected error %v", cut, appendErr)
			}
			// The log is poisoned: later appends fail fast.
			if _, err := fl.Append(DropTable{Name: "x"}); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("cut %d: poisoned log accepted append: %v", cut, err)
			}
			// Recovery yields a prefix of the applied records.
			got := replayAll(t, dir, 0)
			if len(got) > applied {
				t.Fatalf("cut %d: recovered %d records but only %d were acked", cut, len(got), applied)
			}
			if !reflect.DeepEqual(got, recs[:len(got)]) {
				t.Fatalf("cut %d: recovered records diverge", cut)
			}
		}
	}
}

func TestFaultInjectionFailedSync(t *testing.T) {
	ff := NewFaultFile()
	ff.FailSyncN = 2
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, OpenFile: ff.Wrap(defaultOpen)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(DropTable{Name: "a"}); err != nil {
		t.Fatalf("first append (sync 1): %v", err)
	}
	if _, err := l.Append(DropTable{Name: "b"}); !errors.Is(err, ErrInjected) && !errors.Is(err, ErrLogFailed) {
		t.Fatalf("second append should fail its sync, got %v", err)
	}
	if _, err := l.Append(DropTable{Name: "c"}); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("log should be poisoned after failed sync, got %v", err)
	}
	// Both frames were written (the sync, not the write, failed);
	// recovery may surface them — but never anything else.
	got := replayAll(t, dir, 0)
	want := []Record{DropTable{Name: "a"}, DropTable{Name: "b"}}
	if !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatalf("recovered %#v", got)
	}
}

func defaultOpen(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func TestSetPolicy(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(DropTable{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := l.SetPolicy(SyncAlways); err != nil {
		t.Fatal(err)
	}
	if l.Policy() != SyncAlways {
		t.Fatalf("policy = %v", l.Policy())
	}
}
