package wal

import (
	"errors"
	"fmt"
)

// ErrInjected is the cause FaultFile surfaces when a configured
// failpoint trips.
var ErrInjected = errors.New("wal: injected fault")

// FaultFile is a failpoint writer wrapper: it forwards to an
// underlying File until a configured fault trips, then simulates a
// crash — the triggering write is torn (a prefix reaches the file,
// optionally with its last byte garbled) and every later operation
// fails. Install it through Options.OpenFile to drive the
// crash-recovery kill-matrix without killing the process.
//
// Offsets count bytes written through this wrapper (across every file
// it opens, in open order), so a test can aim a fault at any absolute
// byte of the log stream — mid-frame, at a frame boundary, inside a
// segment header — without knowing the segment layout.
type FaultFile struct {
	// FailWriteAt tears the write that would carry the stream past this
	// byte count: bytes up to the limit are written, the rest is
	// dropped, and the write returns ErrInjected. < 0 disables.
	FailWriteAt int64
	// Garble flips the bits of the byte at FailWriteAt-1 (the last byte
	// that still reaches the file), turning the torn write into a
	// corrupt one — the CRC-detection case rather than the short-read
	// case.
	Garble bool
	// FailSyncN fails the Nth Sync call (1-based) with ErrInjected and
	// trips the failpoint. 0 disables.
	FailSyncN int

	written int64
	syncs   int
	tripped bool
}

// NewFaultFile returns a FaultFile with every failpoint disarmed;
// configure the one the test needs before wiring it into Options.
func NewFaultFile() *FaultFile { return &FaultFile{FailWriteAt: -1} }

// Wrap returns an OpenFile hook that routes every opened segment
// through ff. The wrapper reuses ff's counters across files, so the
// configured offsets address the concatenated stream.
func (ff *FaultFile) Wrap(open func(path string) (File, error)) func(path string) (File, error) {
	return func(path string) (File, error) {
		f, err := open(path)
		if err != nil {
			return nil, err
		}
		return &faultHandle{ff: ff, f: f}, nil
	}
}

// Tripped reports whether a failpoint has fired.
func (ff *FaultFile) Tripped() bool { return ff.tripped }

// Written returns the total bytes written through the wrapper.
func (ff *FaultFile) Written() int64 { return ff.written }

// faultHandle is the per-file view of a FaultFile.
type faultHandle struct {
	ff *FaultFile
	f  File
}

func (h *faultHandle) Write(p []byte) (int, error) {
	ff := h.ff
	if ff.tripped {
		return 0, fmt.Errorf("%w (already tripped)", ErrInjected)
	}
	if ff.FailWriteAt >= 0 && ff.written+int64(len(p)) > ff.FailWriteAt {
		keep := int(ff.FailWriteAt - ff.written)
		if keep < 0 {
			keep = 0
		}
		torn := p[:keep]
		if ff.Garble && keep > 0 {
			torn = append([]byte(nil), torn...)
			torn[keep-1] ^= 0xFF
		}
		n, _ := h.f.Write(torn)
		h.f.Sync() // make the torn prefix visible to the recovery scan
		ff.written += int64(n)
		ff.tripped = true
		return n, fmt.Errorf("%w: write torn at byte %d", ErrInjected, ff.FailWriteAt)
	}
	n, err := h.f.Write(p)
	ff.written += int64(n)
	if err != nil {
		ff.tripped = true
	}
	return n, err
}

func (h *faultHandle) Sync() error {
	ff := h.ff
	if ff.tripped {
		return fmt.Errorf("%w (already tripped)", ErrInjected)
	}
	ff.syncs++
	if ff.FailSyncN > 0 && ff.syncs == ff.FailSyncN {
		ff.tripped = true
		return fmt.Errorf("%w: sync %d failed", ErrInjected, ff.syncs)
	}
	return h.f.Sync()
}

func (h *faultHandle) Close() error { return h.f.Close() }
