package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/sgb-db/sgb/internal/types"
)

// The row codec: a compact, self-describing binary encoding of
// types.Value rows shared by the WAL record bodies and the snapshot
// table sections. Integers are fixed-width little-endian — mutation
// records are dominated by float coordinates, so varint squeezing
// would buy little and cost branchy decode loops.

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendValue appends one SQL value: a kind byte followed by the
// kind's payload (nothing for NULL, 8 bytes for ints / floats / dates,
// 1 byte for bools, a length-prefixed string for text, 16 bytes for
// intervals).
func AppendValue(b []byte, v types.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case types.KindNull:
	case types.KindInt, types.KindDate:
		b = AppendU64(b, uint64(v.I))
	case types.KindFloat:
		b = AppendU64(b, math.Float64bits(v.F))
	case types.KindText:
		b = AppendString(b, v.S)
	case types.KindBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case types.KindInterval:
		b = AppendU64(b, uint64(v.I))
		b = AppendU64(b, math.Float64bits(v.F))
	default:
		// Unknown kinds cannot round-trip; encode as NULL would silently
		// lose data, so make the frame undecodable instead.
		b = append(b, 0xFF)
	}
	return b
}

// AppendRow appends a value-count prefix and then each value.
func AppendRow(b []byte, row types.Row) []byte {
	b = AppendU32(b, uint32(len(row)))
	for _, v := range row {
		b = AppendValue(b, v)
	}
	return b
}

// maxDecodeCount bounds every decoded count and string length: a
// corrupt frame that survives the CRC check (or a fuzzer input) must
// not drive a multi-gigabyte allocation.
const maxDecodeCount = 1 << 26

// Decoder consumes the codec's encodings from a byte slice. Decode
// errors stick: after the first failure every method returns zero
// values and Err reports the cause, so call sites read fields linearly
// and check once.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder returns a decoder over b (which is not copied).
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unconsumed bytes.
func (d *Decoder) Len() int { return len(d.b) }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: decode: "+format, args...)
	}
}

// Byte consumes one byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// U32 consumes a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("truncated uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

// U64 consumes a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// Count consumes a uint32 used as an element count, bounds-checked so
// corrupt input cannot provoke huge allocations.
func (d *Decoder) Count() int {
	n := d.U32()
	if d.err == nil && n > maxDecodeCount {
		d.fail("count %d exceeds limit", n)
		return 0
	}
	return int(n)
}

// String consumes a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Count()
	if d.err != nil {
		return ""
	}
	if len(d.b) < n {
		d.fail("truncated string of length %d", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Value consumes one SQL value.
func (d *Decoder) Value() types.Value {
	kind := types.Kind(d.Byte())
	if d.err != nil {
		return types.Value{}
	}
	switch kind {
	case types.KindNull:
		return types.Null()
	case types.KindInt:
		return types.Int(int64(d.U64()))
	case types.KindDate:
		return types.Date(int64(d.U64()))
	case types.KindFloat:
		return types.Float(math.Float64frombits(d.U64()))
	case types.KindText:
		return types.Text(d.String())
	case types.KindBool:
		return types.Bool(d.Byte() != 0)
	case types.KindInterval:
		i := int64(d.U64())
		f := math.Float64frombits(d.U64())
		return types.Interval(i, f)
	default:
		d.fail("unknown value kind %d", int(kind))
		return types.Value{}
	}
}

// Row consumes one encoded row.
func (d *Decoder) Row() types.Row {
	n := d.Count()
	if d.err != nil {
		return nil
	}
	row := make(types.Row, 0, n)
	for i := 0; i < n; i++ {
		row = append(row, d.Value())
		if d.err != nil {
			return nil
		}
	}
	return row
}

// Record types: one logical table mutation per WAL frame. Frames are
// written after the in-memory mutation succeeded and before the
// statement is acknowledged, so a frame in the log always describes a
// mutation replay can re-apply verbatim.

// RecordType tags a WAL frame payload.
type RecordType byte

// The WAL record kinds.
const (
	RecCreateTable RecordType = 1 + iota
	RecInsert
	RecDelete
	RecDropTable
)

// Record is one logical table mutation.
type Record interface{ recordType() RecordType }

// ColDef is one column of a CreateTable record.
type ColDef struct {
	Name string
	Kind types.Kind
}

// CreateTable records a CREATE TABLE.
type CreateTable struct {
	Name string
	Cols []ColDef
}

// Insert records the rows one INSERT statement (or bulk load) appended
// to a table, in insertion order and post type-coercion — replaying
// them through the ordinary insert path reproduces the stored rows
// exactly.
type Insert struct {
	Table string
	Rows  []types.Row
}

// Delete records the row indices one DELETE statement removed (sorted
// ascending, as storage.Table.DeleteRows requires).
type Delete struct {
	Table string
	Idx   []int
}

// DropTable records a DROP TABLE.
type DropTable struct {
	Name string
}

func (CreateTable) recordType() RecordType { return RecCreateTable }
func (Insert) recordType() RecordType      { return RecInsert }
func (Delete) recordType() RecordType      { return RecDelete }
func (DropTable) recordType() RecordType   { return RecDropTable }

// EncodeRecord serializes a record into a frame payload.
func EncodeRecord(rec Record) []byte {
	b := []byte{byte(rec.recordType())}
	switch r := rec.(type) {
	case CreateTable:
		b = AppendString(b, r.Name)
		b = AppendU32(b, uint32(len(r.Cols)))
		for _, c := range r.Cols {
			b = AppendString(b, c.Name)
			b = append(b, byte(c.Kind))
		}
	case Insert:
		b = AppendString(b, r.Table)
		b = AppendU32(b, uint32(len(r.Rows)))
		for _, row := range r.Rows {
			b = AppendRow(b, row)
		}
	case Delete:
		b = AppendString(b, r.Table)
		b = AppendU32(b, uint32(len(r.Idx)))
		for _, i := range r.Idx {
			b = AppendU64(b, uint64(i))
		}
	case DropTable:
		b = AppendString(b, r.Name)
	default:
		panic(fmt.Sprintf("wal: unknown record %T", rec))
	}
	return b
}

// DecodeRecord parses a frame payload back into a record.
func DecodeRecord(payload []byte) (Record, error) {
	d := NewDecoder(payload)
	switch rt := RecordType(d.Byte()); rt {
	case RecCreateTable:
		r := CreateTable{Name: d.String()}
		n := d.Count()
		for i := 0; i < n && d.Err() == nil; i++ {
			r.Cols = append(r.Cols, ColDef{Name: d.String(), Kind: types.Kind(d.Byte())})
		}
		return finishRecord(r, d)
	case RecInsert:
		r := Insert{Table: d.String()}
		n := d.Count()
		for i := 0; i < n && d.Err() == nil; i++ {
			r.Rows = append(r.Rows, d.Row())
		}
		return finishRecord(r, d)
	case RecDelete:
		r := Delete{Table: d.String()}
		n := d.Count()
		for i := 0; i < n && d.Err() == nil; i++ {
			r.Idx = append(r.Idx, int(d.U64()))
		}
		return finishRecord(r, d)
	case RecDropTable:
		return finishRecord(DropTable{Name: d.String()}, d)
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", byte(rt))
	}
}

// finishRecord enforces that a payload decoded cleanly and completely;
// trailing garbage means the frame does not hold what its length
// claims.
func finishRecord(rec Record, d *Decoder) (Record, error) {
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("wal: record has %d trailing bytes", d.Len())
	}
	return rec, nil
}
