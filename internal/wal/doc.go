// Package wal implements the engine's write-ahead log: an append-only,
// segmented log of logical table mutations (CREATE TABLE, INSERT,
// DELETE, DROP TABLE) that makes acknowledged statements survive a
// process crash. Together with package snapshot it forms the
// durability subsystem — recovery loads the newest valid checkpoint
// and replays the log tail through the engine's ordinary mutation
// paths, rather than regrouping every table from scratch.
//
// # Framing
//
// Each record is one frame: a 4-byte little-endian payload length, a
// 4-byte CRC32-C of the payload, then the payload (record type byte
// followed by the record body, values encoded by the row codec in
// codec.go). Frames never span segments. The reader validates length
// and checksum per frame and stops cleanly at the first torn or
// corrupt frame — a crash mid-write can only ever cost the suffix from
// the torn frame on, never a prefix, and corruption is detected rather
// than replayed.
//
// # Segments
//
// The log rotates into fixed-size segment files named
// wal-<firstSeq>.seg; each segment's header records the sequence
// number of its first frame, so replay can skip whole segments below a
// checkpoint's covered sequence and checkpointing can delete segments
// the newest retained snapshots fully cover (Prune).
//
// # Sync policy
//
// Append durability is tunable (SET durability at the SQL layer):
// SyncAlways fsyncs after every append (every acknowledged statement
// survives), SyncInterval fsyncs when the configured interval has
// elapsed since the last sync (bounded loss window, much cheaper), and
// SyncOff leaves flushing to the OS (contents survive process crashes
// but not machine crashes). Close and rotation always sync.
//
// # Fault injection
//
// Options.OpenFile lets tests interpose a failpoint writer (FaultFile)
// that tears or garbles a write at a chosen byte offset or fails the
// Nth fsync, driving the crash-recovery kill-matrix tests without
// killing the process.
package wal
