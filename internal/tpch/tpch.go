// Package tpch generates TPC-H-like relational data for the paper's
// performance-evaluation queries (Table 2: GB1–GB3 and SGB1–SGB6).
//
// Substitution note (documented in DESIGN.md §4): the paper runs dbgen
// at scale factors 1–60 (up to 60 GB). This generator reproduces the
// schema and value distributions the queries touch — uniform keys,
// dbgen's part/supplier association, lineitem-derived order totals,
// uniform dates over 1992–1998 — at row counts that fit a single
// machine, expressed through a fractional scale factor. SGB runtime
// depends on the grouping-attribute point distribution and cardinality,
// both of which are preserved.
package tpch

import (
	"fmt"
	"math/rand"

	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// Config sets the table cardinalities (every other distribution
// parameter follows dbgen's shape).
type Config struct {
	Customers int
	Orders    int
	Suppliers int
	Parts     int
	Seed      int64
	// MaxLinesPerOrder bounds lineitems per order (dbgen: 1–7).
	MaxLinesPerOrder int
}

// ScaleRows maps a TPC-H scale factor to row counts using dbgen's
// ratios (SF 1 = 150 k customers, 1.5 M orders, 10 k suppliers,
// 200 k parts), scaled down 100× so that SF 1 here ≈ dbgen SF 0.01 —
// the evaluation sweeps SF just like Figures 10 and 12 do.
func ScaleRows(sf float64) Config {
	clamp := func(v float64, lo int) int {
		n := int(v)
		if n < lo {
			return lo
		}
		return n
	}
	return Config{
		Customers:        clamp(1500*sf, 10),
		Orders:           clamp(15000*sf, 100),
		Suppliers:        clamp(100*sf, 5),
		Parts:            clamp(2000*sf, 20),
		Seed:             42,
		MaxLinesPerOrder: 7,
	}
}

// Dataset holds the generated tables.
type Dataset struct {
	Customer *storage.Table
	Orders   *storage.Table
	Lineitem *storage.Table
	Supplier *storage.Table
	Part     *storage.Table
	PartSupp *storage.Table
	Nation   *storage.Table
}

// Install registers every table in the catalog.
func (d *Dataset) Install(cat *storage.Catalog) error {
	for _, t := range []*storage.Table{
		d.Customer, d.Orders, d.Lineitem, d.Supplier, d.Part, d.PartSupp, d.Nation,
	} {
		if err := cat.Create(t); err != nil {
			return err
		}
	}
	return nil
}

// Tables returns the tables in a stable order.
func (d *Dataset) Tables() []*storage.Table {
	return []*storage.Table{
		d.Customer, d.Orders, d.Lineitem, d.Supplier, d.Part, d.PartSupp, d.Nation,
	}
}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
	"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
	"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
	"UNITED STATES",
}

var partTypes = []string{
	"STANDARD BRASS", "SMALL STEEL", "MEDIUM COPPER", "LARGE TIN",
	"ECONOMY NICKEL", "PROMO BRASS", "STANDARD STEEL", "SMALL COPPER",
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

// Generate builds the dataset deterministically from cfg.Seed.
func Generate(cfg Config) *Dataset {
	if cfg.MaxLinesPerOrder <= 0 {
		cfg.MaxLinesPerOrder = 7
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{}

	// nation
	d.Nation = storage.NewTable("nation", storage.Schema{
		{Name: "n_nationkey", Type: types.KindInt},
		{Name: "n_name", Type: types.KindText},
		{Name: "n_regionkey", Type: types.KindInt},
	})
	for i, name := range nationNames {
		d.Nation.MustInsert(types.Row{types.Int(int64(i)), types.Text(name), types.Int(int64(i % 5))})
	}

	// supplier
	d.Supplier = storage.NewTable("supplier", storage.Schema{
		{Name: "s_suppkey", Type: types.KindInt},
		{Name: "s_name", Type: types.KindText},
		{Name: "s_nationkey", Type: types.KindInt},
		{Name: "s_acctbal", Type: types.KindFloat},
	})
	for i := 1; i <= cfg.Suppliers; i++ {
		d.Supplier.MustInsert(types.Row{
			types.Int(int64(i)),
			types.Text(fmt.Sprintf("Supplier#%09d", i)),
			types.Int(int64(r.Intn(len(nationNames)))),
			types.Float(money(r, -999.99, 9999.99)),
		})
	}

	// part
	d.Part = storage.NewTable("part", storage.Schema{
		{Name: "p_partkey", Type: types.KindInt},
		{Name: "p_name", Type: types.KindText},
		{Name: "p_type", Type: types.KindText},
		{Name: "p_retailprice", Type: types.KindFloat},
	})
	retail := make([]float64, cfg.Parts+1)
	for i := 1; i <= cfg.Parts; i++ {
		// dbgen: 900 + (partkey/10)%2001 cents offset pattern.
		price := 900.0 + float64((i*7)%1100) + float64(i%100)/100
		retail[i] = price
		d.Part.MustInsert(types.Row{
			types.Int(int64(i)),
			types.Text(fmt.Sprintf("part %d", i)),
			types.Text(partTypes[i%len(partTypes)]),
			types.Float(price),
		})
	}

	// partsupp: dbgen associates each part with 4 suppliers via the
	// (partkey + i*(S/4)) formula.
	d.PartSupp = storage.NewTable("partsupp", storage.Schema{
		{Name: "ps_partkey", Type: types.KindInt},
		{Name: "ps_suppkey", Type: types.KindInt},
		{Name: "ps_availqty", Type: types.KindInt},
		{Name: "ps_supplycost", Type: types.KindFloat},
	})
	for p := 1; p <= cfg.Parts; p++ {
		for i := 0; i < 4; i++ {
			d.PartSupp.MustInsert(types.Row{
				types.Int(int64(p)),
				types.Int(int64(supplierFor(p, i, cfg.Suppliers))),
				types.Int(int64(1 + r.Intn(9999))),
				types.Float(money(r, 1, 1000)),
			})
		}
	}

	// customer
	d.Customer = storage.NewTable("customer", storage.Schema{
		{Name: "c_custkey", Type: types.KindInt},
		{Name: "c_name", Type: types.KindText},
		{Name: "c_acctbal", Type: types.KindFloat},
		{Name: "c_nationkey", Type: types.KindInt},
		{Name: "c_mktsegment", Type: types.KindText},
	})
	for i := 1; i <= cfg.Customers; i++ {
		d.Customer.MustInsert(types.Row{
			types.Int(int64(i)),
			types.Text(fmt.Sprintf("Customer#%09d", i)),
			types.Float(money(r, -999.99, 9999.99)),
			types.Int(int64(r.Intn(len(nationNames)))),
			types.Text(segments[r.Intn(len(segments))]),
		})
	}

	// orders + lineitem (o_totalprice derived from its lines, as dbgen).
	d.Orders = storage.NewTable("orders", storage.Schema{
		{Name: "o_orderkey", Type: types.KindInt},
		{Name: "o_custkey", Type: types.KindInt},
		{Name: "o_totalprice", Type: types.KindFloat},
		{Name: "o_orderdate", Type: types.KindDate},
		{Name: "o_orderstatus", Type: types.KindText},
	})
	d.Lineitem = storage.NewTable("lineitem", storage.Schema{
		{Name: "l_orderkey", Type: types.KindInt},
		{Name: "l_partkey", Type: types.KindInt},
		{Name: "l_suppkey", Type: types.KindInt},
		{Name: "l_linenumber", Type: types.KindInt},
		{Name: "l_quantity", Type: types.KindFloat},
		{Name: "l_extendedprice", Type: types.KindFloat},
		{Name: "l_discount", Type: types.KindFloat},
		{Name: "l_tax", Type: types.KindFloat},
		{Name: "l_shipdate", Type: types.KindDate},
		{Name: "l_commitdate", Type: types.KindDate},
		{Name: "l_receiptdate", Type: types.KindDate},
	})
	startDate := types.DaysFromCivil(1992, 1, 1)
	endDate := types.DaysFromCivil(1998, 8, 2)
	for o := 1; o <= cfg.Orders; o++ {
		cust := 1 + r.Intn(cfg.Customers)
		orderDate := startDate + int64(r.Intn(int(endDate-startDate-151)))
		nlines := 1 + r.Intn(cfg.MaxLinesPerOrder)
		total := 0.0
		for l := 1; l <= nlines; l++ {
			part := 1 + r.Intn(cfg.Parts)
			supp := supplierFor(part, r.Intn(4), cfg.Suppliers)
			qty := float64(1 + r.Intn(50))
			ext := qty * retail[part]
			disc := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			ship := orderDate + int64(1+r.Intn(121))
			commit := orderDate + int64(30+r.Intn(61))
			receipt := ship + int64(1+r.Intn(30))
			total += ext * (1 + tax) * (1 - disc)
			d.Lineitem.MustInsert(types.Row{
				types.Int(int64(o)),
				types.Int(int64(part)),
				types.Int(int64(supp)),
				types.Int(int64(l)),
				types.Float(qty),
				types.Float(ext),
				types.Float(disc),
				types.Float(tax),
				types.Date(ship),
				types.Date(commit),
				types.Date(receipt),
			})
		}
		status := "O"
		if r.Intn(2) == 0 {
			status = "F"
		}
		d.Orders.MustInsert(types.Row{
			types.Int(int64(o)),
			types.Int(int64(cust)),
			types.Float(total),
			types.Date(orderDate),
			types.Text(status),
		})
	}
	return d
}

// supplierFor reproduces dbgen's part→supplier association.
func supplierFor(part, i, suppliers int) int {
	return (part+i*((suppliers/4)+(part-1)/suppliers))%suppliers + 1
}

// money draws a uniform amount rounded to cents.
func money(r *rand.Rand, lo, hi float64) float64 {
	v := lo + r.Float64()*(hi-lo)
	return float64(int64(v*100)) / 100
}
