package tpch

import "fmt"

// The Table 2 query suite: the three standard-GROUP-BY business
// questions (GB1 = TPC-H Q18, GB2 = Q9, GB3 = Q15) and the six
// similarity variants (SGB1–SGB6). Divergences from the verbatim paper
// text, forced by engine scope or by typos in the paper's listing, are
// noted inline; all preserve the queries' shape and cost profile.

// GB1 is TPC-H Q18 (large-volume customers). The quantity threshold is
// a parameter because our scaled dataset is far smaller than SF 1.
func GB1(qtyThreshold float64) string {
	return fmt.Sprintf(`
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity)
FROM customer, orders, lineitem
WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                     GROUP BY l_orderkey HAVING sum(l_quantity) > %v)
  AND c_custkey = o_custkey AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100`, qtyThreshold)
}

// GB2 is TPC-H Q9 (product-type profit by nation and year). The paper's
// LIKE filter on p_name is replaced by an equality filter on p_type
// (our engine has no LIKE; the filter selectivity is comparable).
const GB2 = `
SELECT n_name, year(o_orderdate) AS o_year,
       sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS profit
FROM lineitem, part, supplier, partsupp, orders, nation
WHERE p_partkey = l_partkey
  AND s_suppkey = l_suppkey
  AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey
  AND o_orderkey = l_orderkey
  AND s_nationkey = n_nationkey
  AND p_type = 'STANDARD BRASS'
GROUP BY n_name, year(o_orderdate)
ORDER BY n_name, o_year DESC`

// GB3 is TPC-H Q15 (top supplier by revenue). Q15's scalar subquery
// (revenue = max(revenue)) is expressed as ORDER BY ... LIMIT 1, which
// returns the same top supplier without scalar-subquery support.
const GB3 = `
SELECT s_suppkey, s_name, r.total_revenue
FROM supplier,
     (SELECT l_suppkey AS supplier_no,
             sum(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem
      WHERE l_shipdate >= date '1995-01-01'
        AND l_shipdate < date '1995-01-01' + interval '3' month
      GROUP BY l_suppkey) AS r
WHERE s_suppkey = r.supplier_no
ORDER BY total_revenue DESC
LIMIT 1`

// sgbTail renders the similarity grouping clause: semantics is
// "DISTANCE-ALL" or "DISTANCE-ANY"; overlap is "join-any", "eliminate",
// or "form-new" ("" for DISTANCE-ANY).
func sgbTail(semantics string, eps float64, overlap string) string {
	s := fmt.Sprintf("GROUP BY %%s DISTANCE-%s WITHIN %v USING ltwo", semantics, eps)
	if overlap != "" {
		s += " ON OVERLAP " + overlap
	}
	return s
}

// SGB12 renders SGB1 (DISTANCE-ALL with the given overlap clause) or
// SGB2 (DISTANCE-ANY, overlap = "") — customers with similar buying
// power and account balance. The paper's `sum(l_quantity) > 3000`
// and `o_totalprice > 30000` constants are parameters here (qty, minPrice)
// so the query selects a meaningful subset at reduced scale.
func SGB12(any bool, eps float64, overlap string, qty, minPrice float64) string {
	sem, ov := "ALL", overlap
	if any {
		sem, ov = "ANY", ""
	}
	tail := fmt.Sprintf(sgbTail(sem, eps, ov), "ab, tp")
	return fmt.Sprintf(`
SELECT max(ab), min(tp), max(tp), avg(ab), array_agg(R1.c_custkey)
FROM (SELECT c_custkey, c_acctbal AS ab FROM customer WHERE c_acctbal > 100) AS R1,
     (SELECT o_custkey, sum(o_totalprice) AS tp FROM orders, lineitem
      WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                           GROUP BY l_orderkey HAVING sum(l_quantity) > %v)
        AND o_orderkey = l_orderkey AND o_totalprice > %v
      GROUP BY o_custkey) AS R2
WHERE R1.c_custkey = R2.o_custkey
%s`, qty, minPrice, tail)
}

// sgb34Body is SGB3/SGB4's pipeline with the grouping clause left open.
const sgb34Body = `
SELECT count(), sum(tprof), sum(stime)
FROM (SELECT ps_partkey AS partkey,
             sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS tprof,
             sum(l_receiptdate - l_shipdate) AS stime
      FROM lineitem, partsupp, supplier
      WHERE ps_partkey = l_partkey AND s_suppkey = ps_suppkey
      GROUP BY ps_partkey) AS profit
%s`

// SGB34 renders SGB3 (DISTANCE-ALL) or SGB4 (DISTANCE-ANY): parts with
// similar profit and shipment time.
func SGB34(any bool, eps float64, overlap string) string {
	sem, ov := "ALL", overlap
	if any {
		sem, ov = "ANY", ""
	}
	tail := fmt.Sprintf(sgbTail(sem, eps, ov), "tprof, stime")
	return fmt.Sprintf(sgb34Body, tail)
}

// SGB34Baseline is SGB3's exact pipeline with standard (equality)
// GROUP BY in place of the similarity clause — the like-for-like
// baseline for the operator-overhead comparison of Figure 12a.
func SGB34Baseline() string {
	return fmt.Sprintf(sgb34Body, "GROUP BY tprof, stime")
}

// SGB56Baseline is SGB5's pipeline under standard GROUP BY (Fig. 12b).
func SGB56Baseline() string {
	return fmt.Sprintf(sgb56Body, "GROUP BY trevenue, sacct")
}

// SGB56 renders SGB5 (DISTANCE-ALL) or SGB6 (DISTANCE-ANY): suppliers
// with similar revenue contribution and account balance. The paper's
// listing reads s_acctbal from lineitem without joining supplier; we
// add the join the query needs.
func SGB56(any bool, eps float64, overlap string) string {
	sem, ov := "ALL", overlap
	if any {
		sem, ov = "ANY", ""
	}
	tail := fmt.Sprintf(sgbTail(sem, eps, ov), "trevenue, sacct")
	return fmt.Sprintf(sgb56Body, tail)
}

// sgb56Body is SGB5/SGB6's pipeline with the grouping clause left open.
const sgb56Body = `
SELECT array_agg(suppkey), sum(trevenue), sum(sacct)
FROM (SELECT l_suppkey AS suppkey,
             sum(l_extendedprice * (1 - l_discount)) AS trevenue,
             sum(s_acctbal) AS sacct
      FROM lineitem, supplier
      WHERE s_suppkey = l_suppkey
        AND l_shipdate > date '1995-01-01'
        AND l_shipdate < date '1996-01-01' + interval '10' month
      GROUP BY l_suppkey) AS r
%s`
