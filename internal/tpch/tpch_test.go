package tpch

import (
	"math"
	"testing"

	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

func TestScaleRows(t *testing.T) {
	c := ScaleRows(1)
	if c.Customers != 1500 || c.Orders != 15000 || c.Suppliers != 100 || c.Parts != 2000 {
		t.Fatalf("SF1 config = %+v", c)
	}
	// dbgen ratios hold: orders = 10x customers.
	if c.Orders != 10*c.Customers {
		t.Error("order/customer ratio broken")
	}
	// Minimums at tiny SF.
	c = ScaleRows(0.0001)
	if c.Customers < 10 || c.Suppliers < 5 {
		t.Fatalf("tiny SF config = %+v", c)
	}
}

func TestGenerateCardinalities(t *testing.T) {
	cfg := ScaleRows(0.1)
	d := Generate(cfg)
	if d.Customer.Len() != cfg.Customers {
		t.Errorf("customers = %d, want %d", d.Customer.Len(), cfg.Customers)
	}
	if d.Orders.Len() != cfg.Orders {
		t.Errorf("orders = %d, want %d", d.Orders.Len(), cfg.Orders)
	}
	if d.Supplier.Len() != cfg.Suppliers || d.Part.Len() != cfg.Parts {
		t.Error("supplier/part counts wrong")
	}
	if d.PartSupp.Len() != 4*cfg.Parts {
		t.Errorf("partsupp = %d, want %d", d.PartSupp.Len(), 4*cfg.Parts)
	}
	if d.Nation.Len() != 25 {
		t.Errorf("nations = %d", d.Nation.Len())
	}
	// Lineitems average 1–7 per order.
	ratio := float64(d.Lineitem.Len()) / float64(d.Orders.Len())
	if ratio < 1 || ratio > 7 {
		t.Errorf("lineitems per order = %v", ratio)
	}
}

func TestReferentialIntegrity(t *testing.T) {
	cfg := ScaleRows(0.05)
	d := Generate(cfg)
	// Every lineitem references a live order, part, and supplier; every
	// (partkey, suppkey) pair exists in partsupp — the join the SGB3
	// query depends on.
	ps := make(map[[2]int64]bool)
	for _, row := range d.PartSupp.Rows {
		ps[[2]int64{row[0].I, row[1].I}] = true
		if row[1].I < 1 || row[1].I > int64(cfg.Suppliers) {
			t.Fatalf("partsupp suppkey out of range: %v", row[1].I)
		}
	}
	for _, row := range d.Lineitem.Rows {
		ok := row[0].I >= 1 && row[0].I <= int64(cfg.Orders)
		if !ok {
			t.Fatalf("lineitem orderkey out of range: %v", row[0].I)
		}
		if !ps[[2]int64{row[1].I, row[2].I}] {
			t.Fatalf("lineitem (part=%d, supp=%d) missing from partsupp", row[1].I, row[2].I)
		}
	}
	for _, row := range d.Orders.Rows {
		if row[1].I < 1 || row[1].I > int64(cfg.Customers) {
			t.Fatalf("order custkey out of range: %v", row[1].I)
		}
	}
}

func TestOrderTotalsDerivedFromLineitems(t *testing.T) {
	d := Generate(Config{Customers: 20, Orders: 50, Suppliers: 8, Parts: 30, Seed: 3})
	// o_totalprice = Σ ext*(1+tax)*(1-disc) over the order's lines.
	sums := make(map[int64]float64)
	for _, row := range d.Lineitem.Rows {
		ext, disc, tax := row[5].F, row[6].F, row[7].F
		sums[row[0].I] += ext * (1 + tax) * (1 - disc)
	}
	for _, row := range d.Orders.Rows {
		want := sums[row[0].I]
		if math.Abs(row[2].F-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("order %d totalprice %v != derived %v", row[0].I, row[2].F, want)
		}
	}
	// Ship < receipt for every line.
	for _, row := range d.Lineitem.Rows {
		if row[8].I >= row[10].I {
			t.Fatalf("shipdate %v not before receiptdate %v", row[8], row[10])
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Customers: 15, Orders: 40, Suppliers: 6, Parts: 25, Seed: 9}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Lineitem.Len() != b.Lineitem.Len() {
		t.Fatal("nondeterministic lineitem count")
	}
	for i := range a.Lineitem.Rows {
		for j := range a.Lineitem.Rows[i] {
			if a.Lineitem.Rows[i][j] != b.Lineitem.Rows[i][j] {
				t.Fatalf("nondeterministic cell (%d,%d)", i, j)
			}
		}
	}
}

func TestInstall(t *testing.T) {
	cat := storage.NewCatalog()
	d := Generate(Config{Customers: 10, Orders: 20, Suppliers: 5, Parts: 10, Seed: 1})
	if err := d.Install(cat); err != nil {
		t.Fatal(err)
	}
	names := cat.Names()
	want := []string{"customer", "lineitem", "nation", "orders", "part", "partsupp", "supplier"}
	if len(names) != len(want) {
		t.Fatalf("catalog names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("catalog names = %v", names)
		}
	}
	// Double install fails cleanly.
	if err := d.Install(cat); err == nil {
		t.Error("double install accepted")
	}
	if len(d.Tables()) != 7 {
		t.Errorf("Tables() = %d", len(d.Tables()))
	}
}

func TestSupplierForInRange(t *testing.T) {
	for _, s := range []int{4, 5, 7, 100} {
		for p := 1; p <= 40; p++ {
			for i := 0; i < 4; i++ {
				got := supplierFor(p, i, s)
				if got < 1 || got > s {
					t.Fatalf("supplierFor(%d,%d,%d) = %d out of range", p, i, s, got)
				}
			}
		}
	}
}

func TestQueriesRenderValidSQL(t *testing.T) {
	// The rendered query strings must at least be non-empty and contain
	// their defining clauses (full parse/execution is covered by the
	// engine integration tests and benchkit).
	if q := GB1(300); len(q) == 0 {
		t.Error("GB1 empty")
	}
	for _, q := range []string{
		SGB12(false, 1, "join-any", 100, 1000),
		SGB12(true, 1, "", 100, 1000),
		SGB34(false, 1, "eliminate"),
		SGB34(true, 1, ""),
		SGB56(false, 1, "form-new"),
		SGB56(true, 1, ""),
	} {
		if len(q) == 0 {
			t.Fatal("empty SGB query")
		}
	}
	if !contains(SGB12(false, 1, "join-any", 1, 1), "DISTANCE-ALL") {
		t.Error("SGB1 missing DISTANCE-ALL")
	}
	if !contains(SGB12(true, 1, "", 1, 1), "DISTANCE-ANY") {
		t.Error("SGB2 missing DISTANCE-ANY")
	}
	if contains(SGB34(true, 1, ""), "OVERLAP") {
		t.Error("SGB4 (ANY) must not carry an overlap clause")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestInsertIntoSQLValue(t *testing.T) {
	// Generated values fit their declared column kinds (MustInsert
	// would have panicked otherwise), and dates land in TPC-H range.
	d := Generate(Config{Customers: 10, Orders: 30, Suppliers: 5, Parts: 10, Seed: 2})
	lo := types.DaysFromCivil(1992, 1, 1)
	hi := types.DaysFromCivil(1999, 1, 1)
	for _, row := range d.Orders.Rows {
		if row[3].I < lo || row[3].I > hi {
			t.Fatalf("orderdate %v out of range", row[3])
		}
	}
}
