package unionfind

// UF is a disjoint-set forest over the integers [0, Len()).
// The zero value is an empty forest; use Add or MakeSet to grow it.
type UF struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// New returns a forest with n singleton sets {0}, {1}, ..., {n-1}.
func New(n int) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Add appends a fresh singleton set and returns its element id.
func (u *UF) Add() int {
	id := len(u.parent)
	u.parent = append(u.parent, int32(id))
	u.rank = append(u.rank, 0)
	u.count++
	return id
}

// Len returns the number of elements in the forest.
func (u *UF) Len() int { return len(u.parent) }

// Count returns the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Find returns the representative (root) of x's set, compressing the
// path along the way.
func (u *UF) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression: point every node on the walk at the root.
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y and returns the root of the
// merged set. It is a no-op (returning the common root) when x and y
// are already in the same set.
func (u *UF) Union(x, y int) int {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return rx
	}
	// Union by rank: attach the shorter tree under the taller one.
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return rx
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Reset detaches x into a fresh singleton set and counts it as one.
// It is only sound as a batch operation over entire sets: the caller
// must Reset every member of each affected set (after decrementing
// count once per affected set via DropSets), otherwise surviving
// parent pointers would still lead into the detached element. The
// decremental SGB-Any maintenance uses exactly that discipline — it
// resets all members of every component touched by a deletion and then
// re-unions the survivors.
func (u *UF) Reset(x int) {
	u.parent[x] = int32(x)
	u.rank[x] = 0
	u.count++
}

// DropSets lowers the set count by n — the bookkeeping prologue of a
// Reset batch: the caller is about to dissolve n whole sets, and each
// Reset re-counts one element as a fresh singleton.
func (u *UF) DropSets(n int) { u.count -= n }

// Edge is one union request (a within-ε pair) produced by a parallel
// evaluation stage; batches of edges are applied to a shared forest by
// UnionEdges during the single-threaded merge.
type Edge struct{ A, B int32 }

// UnionEdges applies a batch of edges and returns how many actually
// merged two distinct sets. The forest is not safe for concurrent
// mutation — parallel producers emit Edge batches and one goroutine
// reduces them here.
func (u *UF) UnionEdges(edges []Edge) int {
	merged := 0
	for _, e := range edges {
		a, b := int(e.A), int(e.B)
		if u.Find(a) != u.Find(b) {
			u.Union(a, b)
			merged++
		}
	}
	return merged
}

// Absorb merges another forest's partition into u through an index map:
// local element i of o corresponds to global element global[i] of u.
// Used by the shard-local evaluate stage — each worker builds a private
// forest over its shard, and the merge stage folds the shard partitions
// into the global one.
func (u *UF) Absorb(o *UF, global []int32) {
	for i := range global {
		if r := o.Find(i); r != i {
			u.Union(int(global[i]), int(global[r]))
		}
	}
}

// Snapshot returns copies of the forest's internal arrays and its set
// count, for serialization. The copies do not alias the forest; later
// mutations leave them untouched.
func (u *UF) Snapshot() (parent []int32, rank []int8, count int) {
	parent = append([]int32(nil), u.parent...)
	rank = append([]int8(nil), u.rank...)
	return parent, rank, u.count
}

// Restore rebuilds a forest from a Snapshot, adopting (not copying) the
// slices. It validates that every parent pointer is in range and that
// count is plausible, so a corrupt snapshot cannot build a forest whose
// Find loops out of bounds.
func Restore(parent []int32, rank []int8, count int) (*UF, bool) {
	if len(parent) != len(rank) || count < 0 || count > len(parent) {
		return nil, false
	}
	for _, p := range parent {
		if p < 0 || int(p) >= len(parent) {
			return nil, false
		}
	}
	return &UF{parent: parent, rank: rank, count: count}, true
}

// Sets returns the current partition as a map from root id to the
// sorted-by-insertion slice of member ids. Intended for result
// extraction and tests; O(n).
func (u *UF) Sets() map[int][]int {
	sets := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		sets[r] = append(sets[r], i)
	}
	return sets
}
