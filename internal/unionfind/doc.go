// Package unionfind implements a disjoint-set forest with union by rank
// and path compression (Tarjan & van Leeuwen). The SGB-Any executor uses
// it "to keep track of existing, newly created, and merged groups"
// (Procedure 8 / Figure 8b of the paper): when an input point bridges
// several groups, their roots are redirected to a single representative.
//
// Amortized cost per operation is O(α(n)) where α is the inverse
// Ackermann function (α(n) ≤ 4 for any realistic n), which is what gives
// SGB-Any its O(n log n) average-case bound.
//
// Beyond the paper's one-shot use, the forest is the merge substrate of
// the parallel pipeline and the incremental evaluator:
//
//   - UnionEdges applies batches of within-ε edges emitted by parallel
//     boundary probes (single-threaded reduction; the forest is not
//     safe for concurrent mutation).
//   - Absorb folds a worker-private forest over a shard into the global
//     one through the shard's local→global index map.
//   - Add grows the forest one singleton at a time, which is what lets
//     incremental SGB-Any (internal/core's AnyEvaluator) absorb
//     appended points without rebuilding.
//   - Reset (with the DropSets bookkeeping prologue) detaches whole
//     sets back into singletons, which is what lets decremental
//     SGB-Any dissolve exactly the components a deletion touched and
//     re-union their survivors.
//
// Union is commutative and associative over the resulting partition, so
// any merge order — sequential, sharded, or append-interleaved — yields
// the same components.
package unionfind
