package unionfind

import "testing"

// TestResetBatch pins the Reset batch discipline: dissolving whole
// sets (DropSets once per set, Reset once per member) detaches every
// member into a counted singleton, leaves other sets untouched, and
// supports re-unioning a subset of the old members.
func TestResetBatch(t *testing.T) {
	u := New(6)
	u.Union(0, 1)
	u.Union(1, 2) // {0,1,2}
	u.Union(3, 4) // {3,4}, {5}
	if u.Count() != 3 {
		t.Fatalf("Count = %d, want 3", u.Count())
	}

	// Dissolve {0,1,2}: one set dropped, three singletons re-counted.
	u.DropSets(1)
	for _, x := range []int{0, 1, 2} {
		u.Reset(x)
	}
	if u.Count() != 5 {
		t.Fatalf("Count after dissolve = %d, want 5", u.Count())
	}
	for _, x := range []int{0, 1, 2} {
		if u.Find(x) != x {
			t.Fatalf("Find(%d) = %d after Reset, want itself", x, u.Find(x))
		}
	}
	if !u.Same(3, 4) || u.Same(0, 1) {
		t.Fatal("dissolving one set disturbed another")
	}

	// Re-union the survivors {1, 2}; 0 stays detached.
	u.Union(1, 2)
	if u.Count() != 4 || !u.Same(1, 2) || u.Same(0, 1) {
		t.Fatalf("re-union: Count = %d, Same(1,2) = %v, Same(0,1) = %v",
			u.Count(), u.Same(1, 2), u.Same(0, 1))
	}
}
