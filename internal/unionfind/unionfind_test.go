package unionfind

import (
	"math/rand"
	"testing"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Count() != 5 || u.Len() != 5 {
		t.Fatalf("Count=%d Len=%d", u.Count(), u.Len())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Fatalf("Find(%d) = %d", i, u.Find(i))
		}
	}
}

func TestUnionBasics(t *testing.T) {
	u := New(6)
	u.Union(0, 1)
	u.Union(2, 3)
	if !u.Same(0, 1) || !u.Same(2, 3) {
		t.Fatal("expected merged pairs")
	}
	if u.Same(0, 2) {
		t.Fatal("unexpected merge")
	}
	if u.Count() != 4 {
		t.Fatalf("Count = %d, want 4", u.Count())
	}
	u.Union(1, 3) // bridges both pairs
	if !u.Same(0, 2) || u.Count() != 3 {
		t.Fatalf("bridge failed: Same=%v Count=%d", u.Same(0, 2), u.Count())
	}
	// Union of already-joined elements is a no-op.
	before := u.Count()
	u.Union(0, 3)
	if u.Count() != before {
		t.Fatal("redundant union changed count")
	}
}

func TestAdd(t *testing.T) {
	u := New(2)
	id := u.Add()
	if id != 2 || u.Len() != 3 || u.Count() != 3 {
		t.Fatalf("Add: id=%d Len=%d Count=%d", id, u.Len(), u.Count())
	}
	u.Union(id, 0)
	if !u.Same(2, 0) {
		t.Fatal("added element not merged")
	}
}

func TestSets(t *testing.T) {
	u := New(5)
	u.Union(0, 4)
	u.Union(1, 2)
	sets := u.Sets()
	if len(sets) != 3 {
		t.Fatalf("got %d sets, want 3", len(sets))
	}
	total := 0
	for _, members := range sets {
		total += len(members)
	}
	if total != 5 {
		t.Fatalf("members total %d, want 5", total)
	}
}

// Property test: compare against a naive quadratic implementation over
// random union sequences.
func TestAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(120)
		u := New(n)
		// naive: label array, merge = relabel
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		ops := r.Intn(4 * n)
		for k := 0; k < ops; k++ {
			a, b := r.Intn(n), r.Intn(n)
			u.Union(a, b)
			la, lb := label[a], label[b]
			if la != lb {
				for i := range label {
					if label[i] == lb {
						label[i] = la
					}
				}
			}
		}
		// Verify every pair agrees.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(i, j) != (label[i] == label[j]) {
					t.Fatalf("trial %d: disagreement at (%d,%d)", trial, i, j)
				}
			}
		}
		// Count agrees with the number of distinct labels.
		distinct := make(map[int]bool)
		for _, l := range label {
			distinct[l] = true
		}
		if u.Count() != len(distinct) {
			t.Fatalf("trial %d: Count=%d naive=%d", trial, u.Count(), len(distinct))
		}
	}
}

func TestPathCompressionKeepsRootsStable(t *testing.T) {
	u := New(1000)
	for i := 1; i < 1000; i++ {
		u.Union(i-1, i)
	}
	root := u.Find(0)
	for i := 0; i < 1000; i++ {
		if u.Find(i) != root {
			t.Fatalf("Find(%d) = %d, want %d", i, u.Find(i), root)
		}
	}
	if u.Count() != 1 {
		t.Fatalf("Count = %d", u.Count())
	}
}

func BenchmarkUnionFind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u := New(10000)
		for j := 1; j < 10000; j++ {
			u.Union(j-1, j)
		}
		_ = u.Find(9999)
	}
}

func TestSnapshotRestore(t *testing.T) {
	u := New(6)
	u.Union(0, 1)
	u.Union(2, 3)
	u.Union(1, 3)
	parent, rank, count := u.Snapshot()
	v, ok := Restore(parent, rank, count)
	if !ok {
		t.Fatal("Restore rejected a valid snapshot")
	}
	if v.Count() != u.Count() || v.Len() != u.Len() {
		t.Fatalf("restored count/len = %d/%d, want %d/%d", v.Count(), v.Len(), u.Count(), u.Len())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if u.Same(i, j) != v.Same(i, j) {
				t.Fatalf("partition diverges at (%d,%d)", i, j)
			}
		}
	}
	// Snapshot copies: mutating the restored forest leaves u alone.
	v.Union(4, 5)
	if u.Count() == v.Count() {
		t.Fatal("snapshot aliases the source forest")
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	cases := []struct {
		parent []int32
		rank   []int8
		count  int
	}{
		{[]int32{0, 1}, []int8{0}, 2},     // length mismatch
		{[]int32{0, 5}, []int8{0, 0}, 2},  // parent out of range
		{[]int32{0, -1}, []int8{0, 0}, 2}, // negative parent
		{[]int32{0, 1}, []int8{0, 0}, 3},  // count too large
		{[]int32{0, 1}, []int8{0, 0}, -1}, // negative count
	}
	for i, c := range cases {
		if _, ok := Restore(c.parent, c.rank, c.count); ok {
			t.Fatalf("case %d: corrupt snapshot accepted", i)
		}
	}
}
