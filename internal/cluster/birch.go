package cluster

import (
	"errors"
	"math"

	"github.com/sgb-db/sgb/internal/geom"
)

// BIRCHConfig configures the CF-tree construction.
type BIRCHConfig struct {
	// Threshold is the maximum radius of a leaf clustering feature;
	// points farther than this from an existing CF centroid start a
	// new subcluster.
	Threshold float64
	// Branching is the maximum number of CF entries per tree node
	// (default 8, the classic B).
	Branching int
	// Refine enables the global refinement pass (BIRCH phase 4): after
	// the CF-tree scan, every point is reassigned to its nearest leaf
	// centroid in a second full data scan. The paper's runtime argument
	// — clustering "scan[s] the data more than once" — relies on it, so
	// it defaults on in the benches.
	Refine bool
}

// BIRCHResult reports the leaf subclusters of the CF-tree.
type BIRCHResult struct {
	// Centroids of the leaf clustering features.
	Centroids []geom.Point
	// Sizes[i] is the number of points absorbed by centroid i.
	Sizes []int
	// Assign maps each input index to a centroid (only when Refine).
	Assign []int
	// Scans is the number of full passes over the data (1 or 2).
	Scans int
}

// cf is a clustering feature: (N, LS, SS) — count, linear sum, and
// squared sum — exactly the triple of Zhang et al. [10].
type cf struct {
	n  int
	ls []float64
	ss float64
}

func newCF(d int) *cf { return &cf{ls: make([]float64, d)} }

func (c *cf) add(p geom.Point) {
	c.n++
	for i, v := range p {
		c.ls[i] += v
		c.ss += v * v
	}
}

func (c *cf) centroid() geom.Point {
	out := make(geom.Point, len(c.ls))
	for i, v := range c.ls {
		out[i] = v / float64(c.n)
	}
	return out
}

// radius is the CF radius sqrt(SS/N - ||LS/N||²): the average distance
// of members to the centroid.
func (c *cf) radius() float64 {
	var norm2 float64
	for _, v := range c.ls {
		m := v / float64(c.n)
		norm2 += m * m
	}
	r2 := c.ss/float64(c.n) - norm2
	if r2 < 0 {
		return 0
	}
	return math.Sqrt(r2)
}

// radiusWith returns the radius the CF would have after absorbing p,
// without mutating it.
func (c *cf) radiusWith(p geom.Point) float64 {
	n := float64(c.n + 1)
	ss := c.ss
	var norm2 float64
	for i, v := range c.ls {
		ls := v + p[i]
		ss0 := p[i] * p[i]
		ss += ss0
		m := ls / n
		norm2 += m * m
	}
	r2 := ss/n - norm2
	if r2 < 0 {
		return 0
	}
	return math.Sqrt(r2)
}

// bnode is a CF-tree node: leaves hold CF entries, inner nodes hold
// child pointers summarized by their own CFs.
type bnode struct {
	leaf     bool
	cfs      []*cf
	children []*bnode
}

// BIRCH builds a CF-tree in one data scan (phase 1) and optionally
// performs the global reassignment scan (phase 4). The leaf clustering
// features are the output clusters.
func BIRCH(points []geom.Point, cfg BIRCHConfig) (*BIRCHResult, error) {
	if cfg.Threshold <= 0 {
		return nil, errors.New("cluster: BIRCH threshold must be positive")
	}
	if cfg.Branching < 2 {
		cfg.Branching = 8
	}
	res := &BIRCHResult{Scans: 1}
	if len(points) == 0 {
		return res, nil
	}
	d := len(points[0])
	root := &bnode{leaf: true}
	for _, p := range points {
		root = insertCF(root, p, d, cfg)
	}
	collectLeaves(root, res)
	if cfg.Refine {
		res.Scans = 2
		res.Assign = make([]int, len(points))
		for i := range res.Sizes {
			res.Sizes[i] = 0
		}
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c, ctr := range res.Centroids {
				if dd := sq(p, ctr); dd < bd {
					best, bd = c, dd
				}
			}
			res.Assign[i] = best
			res.Sizes[best]++
		}
	}
	return res, nil
}

// insertCF descends to the closest leaf CF; absorbs p if the radius
// stays under the threshold, otherwise adds a new CF, splitting nodes
// that exceed the branching factor. Returns the (possibly new) root.
func insertCF(root *bnode, p geom.Point, d int, cfg BIRCHConfig) *bnode {
	split := insertRec(root, p, d, cfg)
	if split == nil {
		return root
	}
	// Root split: grow the tree upward.
	newRoot := &bnode{leaf: false}
	newRoot.children = []*bnode{root, split}
	newRoot.cfs = []*cf{summarize(root, d), summarize(split, d)}
	return newRoot
}

// insertRec inserts p under n; a non-nil return is a new sibling
// produced by splitting n.
func insertRec(n *bnode, p geom.Point, d int, cfg BIRCHConfig) *bnode {
	if n.leaf {
		// Closest CF entry by centroid distance.
		best, bd := -1, math.Inf(1)
		for i, c := range n.cfs {
			if dd := sq(p, c.centroid()); dd < bd {
				best, bd = i, dd
			}
		}
		if best >= 0 && n.cfs[best].radiusWith(p) <= cfg.Threshold {
			n.cfs[best].add(p)
			return nil
		}
		nc := newCF(d)
		nc.add(p)
		n.cfs = append(n.cfs, nc)
		if len(n.cfs) <= cfg.Branching {
			return nil
		}
		return splitLeaf(n, d)
	}
	// Inner node: descend into the closest child summary.
	best, bd := 0, math.Inf(1)
	for i, c := range n.cfs {
		if dd := sq(p, c.centroid()); dd < bd {
			best, bd = i, dd
		}
	}
	n.cfs[best].add(p)
	if sibling := insertRec(n.children[best], p, d, cfg); sibling != nil {
		n.children = append(n.children, sibling)
		n.cfs[best] = summarize(n.children[best], d)
		n.cfs = append(n.cfs, summarize(sibling, d))
		if len(n.children) > cfg.Branching {
			return splitInner(n, d)
		}
	}
	return nil
}

// splitLeaf splits an overfull leaf by the farthest-pair heuristic of
// the BIRCH paper: the two most distant CFs seed the halves.
func splitLeaf(n *bnode, d int) *bnode {
	a, b := farthestPair(n.cfs)
	left := &bnode{leaf: true}
	right := &bnode{leaf: true}
	for i, c := range n.cfs {
		if goesLeft(i, a, b, c, n.cfs) {
			left.cfs = append(left.cfs, c)
		} else {
			right.cfs = append(right.cfs, c)
		}
	}
	*n = *left
	return right
}

func splitInner(n *bnode, d int) *bnode {
	a, b := farthestPair(n.cfs)
	left := &bnode{leaf: false}
	right := &bnode{leaf: false}
	for i, c := range n.cfs {
		if goesLeft(i, a, b, c, n.cfs) {
			left.cfs = append(left.cfs, c)
			left.children = append(left.children, n.children[i])
		} else {
			right.cfs = append(right.cfs, c)
			right.children = append(right.children, n.children[i])
		}
	}
	*n = *left
	return right
}

// goesLeft assigns entry i to the seed-a half unless it is seed b or
// strictly closer to seed b; pinning the seeds guarantees both halves
// are nonempty even for coincident centroids.
func goesLeft(i, a, b int, c *cf, cfs []*cf) bool {
	if i == a {
		return true
	}
	if i == b {
		return false
	}
	return sq(c.centroid(), cfs[a].centroid()) <= sq(c.centroid(), cfs[b].centroid())
}

func farthestPair(cfs []*cf) (int, int) {
	a, b, worst := 0, 1, -1.0
	for i := 0; i < len(cfs); i++ {
		for j := i + 1; j < len(cfs); j++ {
			if dd := sq(cfs[i].centroid(), cfs[j].centroid()); dd > worst {
				a, b, worst = i, j, dd
			}
		}
	}
	return a, b
}

// summarize folds a subtree into a single CF.
func summarize(n *bnode, d int) *cf {
	out := newCF(d)
	var rec func(*bnode)
	rec = func(m *bnode) {
		if m.leaf {
			for _, c := range m.cfs {
				out.n += c.n
				out.ss += c.ss
				for i, v := range c.ls {
					out.ls[i] += v
				}
			}
			return
		}
		for _, ch := range m.children {
			rec(ch)
		}
	}
	rec(n)
	return out
}

func collectLeaves(n *bnode, res *BIRCHResult) {
	if n.leaf {
		for _, c := range n.cfs {
			res.Centroids = append(res.Centroids, c.centroid())
			res.Sizes = append(res.Sizes, c.n)
		}
		return
	}
	for _, ch := range n.children {
		collectLeaves(ch, res)
	}
}
