package cluster

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// threeBlobs produces three well-separated Gaussian clusters.
func threeBlobs(r *rand.Rand, perCluster int) ([]geom.Point, []int) {
	centers := []geom.Point{{0, 0}, {10, 10}, {-10, 12}}
	var pts []geom.Point
	var truth []int
	for c, ctr := range centers {
		for i := 0; i < perCluster; i++ {
			pts = append(pts, geom.Point{
				ctr[0] + r.NormFloat64()*0.5,
				ctr[1] + r.NormFloat64()*0.5,
			})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts, truth := threeBlobs(r, 100)
	res, err := KMeans(pts, KMeansConfig{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 || len(res.Assign) != len(pts) {
		t.Fatalf("shape: %d centroids, %d assigns", len(res.Centroids), len(res.Assign))
	}
	// Every ground-truth cluster must map to exactly one k-means label.
	label := map[int]int{}
	for i, g := range truth {
		if prev, ok := label[g]; ok {
			if prev != res.Assign[i] {
				t.Fatalf("cluster %d split across labels %d and %d", g, prev, res.Assign[i])
			}
		} else {
			label[g] = res.Assign[i]
		}
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans([]geom.Point{{1, 1}}, KMeansConfig{K: 0}); err == nil {
		t.Fatal("accepted K=0")
	}
	// K > n clamps.
	res, err := KMeans([]geom.Point{{1, 1}, {2, 2}}, KMeansConfig{K: 10, Seed: 1})
	if err != nil || len(res.Centroids) != 2 {
		t.Fatalf("clamp failed: %v %v", res, err)
	}
	// Empty input.
	res, err = KMeans(nil, KMeansConfig{K: 3})
	if err != nil || len(res.Assign) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts, _ := threeBlobs(r, 50)
	a, _ := KMeans(pts, KMeansConfig{K: 3, Seed: 11})
	b, _ := KMeans(pts, KMeansConfig{K: 3, Seed: 11})
	if math.Abs(a.Inertia-b.Inertia) > 1e-12 {
		t.Fatal("same seed gave different inertia")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed gave different assignment")
		}
	}
}

func TestDBSCANRecoversBlobsAndNoise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts, truth := threeBlobs(r, 80)
	// Add isolated noise points far from the blobs.
	pts = append(pts, geom.Point{50, 50}, geom.Point{-60, -60})
	truth = append(truth, Noise, Noise)
	res, err := DBSCAN(pts, DBSCANConfig{Eps: 1.0, MinPts: 4, Metric: geom.L2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 3 {
		t.Fatalf("found %d clusters, want 3", res.NumClusters)
	}
	for i := len(pts) - 2; i < len(pts); i++ {
		if res.Labels[i] != Noise {
			t.Fatalf("noise point %d labeled %d", i, res.Labels[i])
		}
	}
	// Cluster purity: each true blob maps to one DBSCAN label.
	label := map[int]int{}
	for i, g := range truth {
		if g == Noise {
			continue
		}
		if prev, ok := label[g]; ok && prev != res.Labels[i] {
			t.Fatalf("blob %d split", g)
		} else if !ok {
			label[g] = res.Labels[i]
		}
	}
	if res.RegionQueries < int64(len(pts)) {
		t.Fatalf("RegionQueries = %d, want >= n", res.RegionQueries)
	}
}

// naiveDBSCAN is an O(n²) oracle implementation.
func naiveDBSCAN(points []geom.Point, eps float64, minPts int) []int {
	n := len(points)
	labels := make([]int, n)
	const unvisited = -2
	for i := range labels {
		labels[i] = unvisited
	}
	region := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if geom.L2.Within(points[i], points[j], eps) {
				out = append(out, j)
			}
		}
		return out
	}
	c := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nbrs := region(i)
		if len(nbrs) < minPts {
			labels[i] = Noise
			continue
		}
		labels[i] = c
		queue := append([]int(nil), nbrs...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = c
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = c
			nb := region(j)
			if len(nb) >= minPts {
				queue = append(queue, nb...)
			}
		}
		c++
	}
	return labels
}

// TestDBSCANMatchesNaive: same clusters as the quadratic reference on
// random data (labels may permute; compare the partition).
func TestDBSCANMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 30 + r.Intn(150)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{r.Float64() * 8, r.Float64() * 8}
		}
		eps := 0.3 + r.Float64()*0.7
		minPts := 2 + r.Intn(4)
		res, err := DBSCAN(pts, DBSCANConfig{Eps: eps, MinPts: minPts, Metric: geom.L2})
		if err != nil {
			t.Fatal(err)
		}
		want := naiveDBSCAN(pts, eps, minPts)
		// Noise sets must match exactly.
		for i := range want {
			if (want[i] == Noise) != (res.Labels[i] == Noise) {
				t.Fatalf("trial %d: noise disagreement at %d (naive=%d got=%d)",
					trial, i, want[i], res.Labels[i])
			}
		}
		// Same-cluster relation must match for core/border points.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if want[i] == Noise || want[j] == Noise {
					continue
				}
				if (want[i] == want[j]) != (res.Labels[i] == res.Labels[j]) {
					t.Fatalf("trial %d: pair (%d,%d) cluster relation differs", trial, i, j)
				}
			}
		}
	}
}

func TestDBSCANValidation(t *testing.T) {
	if _, err := DBSCAN([]geom.Point{{1, 1}}, DBSCANConfig{Eps: 0}); err == nil {
		t.Fatal("accepted eps=0")
	}
	res, err := DBSCAN(nil, DBSCANConfig{Eps: 1})
	if err != nil || res.NumClusters != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
}

func TestBIRCHAbsorbsTightClusters(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts, _ := threeBlobs(r, 120)
	res, err := BIRCH(pts, BIRCHConfig{Threshold: 1.2, Branching: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) == 0 {
		t.Fatal("no centroids")
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Fatalf("CF sizes sum to %d, want %d", total, len(pts))
	}
	// Coarse quality: far fewer leaf CFs than points, and at least 3.
	if len(res.Centroids) < 3 || len(res.Centroids) > len(pts)/4 {
		t.Fatalf("suspicious centroid count %d for %d points", len(res.Centroids), len(pts))
	}
}

func TestBIRCHRefineAssigns(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts, _ := threeBlobs(r, 60)
	res, err := BIRCH(pts, BIRCHConfig{Threshold: 1.0, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scans != 2 {
		t.Fatalf("Scans = %d, want 2", res.Scans)
	}
	if len(res.Assign) != len(pts) {
		t.Fatalf("Assign len %d", len(res.Assign))
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Fatalf("refined sizes sum to %d, want %d", total, len(pts))
	}
}

func TestBIRCHValidation(t *testing.T) {
	if _, err := BIRCH([]geom.Point{{1, 1}}, BIRCHConfig{Threshold: 0}); err == nil {
		t.Fatal("accepted threshold=0")
	}
	res, err := BIRCH(nil, BIRCHConfig{Threshold: 1})
	if err != nil || len(res.Centroids) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
}

func TestBIRCHManyIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{1, 1}
	}
	res, err := BIRCH(pts, BIRCHConfig{Threshold: 0.5, Branching: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 1 || res.Sizes[0] != 500 {
		t.Fatalf("identical points: %d centroids, sizes %v", len(res.Centroids), res.Sizes)
	}
}
