package cluster

import (
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// TestKMeansEmptyClusterReseed: pathological seeding where a centroid
// loses every point still converges (the empty cluster reseeds).
func TestKMeansEmptyClusterReseed(t *testing.T) {
	// Many coincident points force duplicate centroids → empty clusters.
	pts := make([]geom.Point, 60)
	for i := range pts {
		pts[i] = geom.Point{float64(i % 2), 0} // only two distinct locations
	}
	res, err := KMeans(pts, KMeansConfig{K: 5, Seed: 4, MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 60 {
		t.Fatalf("assign len = %d", len(res.Assign))
	}
	// Inertia must be finite and small (points sit on two spots).
	if res.Inertia > 60 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
}

func TestKMeansAllIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 30)
	for i := range pts {
		pts[i] = geom.Point{3, 3}
	}
	res, err := KMeans(pts, KMeansConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia = %v", res.Inertia)
	}
}

func TestDBSCANLInfMetric(t *testing.T) {
	// Two points at LInf distance 1 but L2 distance ~1.41.
	pts := []geom.Point{
		{0, 0}, {1, 1}, {0.5, 0.5}, {0.2, 0.8},
		{10, 10}, {11, 11}, {10.5, 10.5}, {10.2, 10.8},
	}
	res, err := DBSCAN(pts, DBSCANConfig{Eps: 1, MinPts: 3, Metric: geom.LInf})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("LInf clusters = %d (labels %v)", res.NumClusters, res.Labels)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := []geom.Point{{0, 0}, {100, 100}, {-100, 50}}
	res, err := DBSCAN(pts, DBSCANConfig{Eps: 1, MinPts: 2, Metric: geom.L2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Fatalf("clusters = %d", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != Noise {
			t.Fatalf("point %d labeled %d", i, l)
		}
	}
}

// TestBIRCHDeepTreeSplits drives enough spread data through a small
// branching factor to force inner-node splits and root growth.
func TestBIRCHDeepTreeSplits(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	pts := make([]geom.Point, 3000)
	for i := range pts {
		pts[i] = geom.Point{r.Float64() * 100, r.Float64() * 100}
	}
	res, err := BIRCH(pts, BIRCHConfig{Threshold: 0.8, Branching: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Fatalf("CF sizes sum %d != %d", total, len(pts))
	}
	if len(res.Centroids) < 100 {
		t.Fatalf("expected many leaf CFs on spread data, got %d", len(res.Centroids))
	}
	// Every centroid lies in the data's bounding box.
	for _, c := range res.Centroids {
		if c[0] < 0 || c[0] > 100 || c[1] < 0 || c[1] > 100 {
			t.Fatalf("centroid out of range: %v", c)
		}
	}
}

// TestBIRCHRadiusMath checks the CF radius identities directly.
func TestBIRCHRadiusMath(t *testing.T) {
	c := newCF(2)
	c.add(geom.Point{0, 0})
	if c.radius() != 0 {
		t.Fatalf("singleton radius = %v", c.radius())
	}
	// Adding the same point keeps radius 0.
	if r := c.radiusWith(geom.Point{0, 0}); r != 0 {
		t.Fatalf("radiusWith same = %v", r)
	}
	// Two points at distance 2: centroid in the middle, radius 1.
	c.add(geom.Point{2, 0})
	if got := c.radius(); got < 0.999 || got > 1.001 {
		t.Fatalf("pair radius = %v", got)
	}
	ctr := c.centroid()
	if ctr[0] != 1 || ctr[1] != 0 {
		t.Fatalf("centroid = %v", ctr)
	}
	// radiusWith must not mutate.
	before := c.n
	_ = c.radiusWith(geom.Point{10, 10})
	if c.n != before {
		t.Fatal("radiusWith mutated the CF")
	}
}

func TestGoesLeftPinsSeeds(t *testing.T) {
	cfs := []*cf{newCF(2), newCF(2), newCF(2)}
	for i, c := range cfs {
		c.add(geom.Point{float64(i), 0})
	}
	if !goesLeft(0, 0, 2, cfs[0], cfs) {
		t.Error("seed a not pinned left")
	}
	if goesLeft(2, 0, 2, cfs[2], cfs) {
		t.Error("seed b not pinned right")
	}
}
