// Package cluster implements the three standalone clustering
// comparators the paper benchmarks SGB against in Figure 11: K-means
// (partitioning), DBSCAN (density-based, R-tree accelerated), and BIRCH
// (hierarchical, CF-tree). They are deliberately conventional
// implementations: the experiment's point is that multi-scan clustering
// loses to the one-pass SGB operators by orders of magnitude.
package cluster

import (
	"errors"
	"math"
	"math/rand"

	"github.com/sgb-db/sgb/internal/geom"
)

// KMeansResult reports the outcome of Lloyd's algorithm.
type KMeansResult struct {
	// Centroids holds the final K cluster centers.
	Centroids []geom.Point
	// Assign maps each input index to its centroid index.
	Assign []int
	// Iterations is the number of full data scans performed.
	Iterations int
	// Inertia is the final sum of squared distances to assigned centers.
	Inertia float64
}

// KMeansConfig configures KMeans.
type KMeansConfig struct {
	K       int   // number of clusters (required, ≥ 1)
	MaxIter int   // scan budget (default 50, the usual convergence cap)
	Seed    int64 // PRNG seed for k-means++ initialization
	Tol     float64
}

// KMeans clusters points with Lloyd's algorithm and k-means++ seeding
// (Kanungo et al. [9] in the paper's bibliography describes the
// standard implementation we mirror). Each iteration is a full scan of
// the data — the structural reason Figure 11 shows K-means losing to
// the single-pass SGB operators.
func KMeans(points []geom.Point, cfg KMeansConfig) (*KMeansResult, error) {
	if cfg.K < 1 {
		return nil, errors.New("cluster: K must be >= 1")
	}
	if len(points) == 0 {
		return &KMeansResult{}, nil
	}
	if cfg.K > len(points) {
		cfg.K = len(points)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	d := len(points[0])
	r := rand.New(rand.NewSource(cfg.Seed))

	centroids := seedPlusPlus(points, cfg.K, r)
	assign := make([]int, len(points))
	counts := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for i := range sums {
		sums[i] = make([]float64, d)
	}

	var inertia float64
	iterations := 0
	prev := math.Inf(1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		iterations++
		inertia = 0
		for i := range counts {
			counts[i] = 0
			for j := range sums[i] {
				sums[i][j] = 0
			}
		}
		// Assignment scan.
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				if dd := sq(p, ctr); dd < bestD {
					best, bestD = c, dd
				}
			}
			assign[i] = best
			inertia += bestD
			counts[best]++
			for j := range p {
				sums[best][j] += p[j]
			}
		}
		// Update step; empty clusters re-seed from a random point.
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				centroids[c] = points[r.Intn(len(points))].Clone()
				continue
			}
			for j := 0; j < d; j++ {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if math.Abs(prev-inertia) <= cfg.Tol*(1+inertia) {
			break
		}
		prev = inertia
	}
	return &KMeansResult{
		Centroids:  centroids,
		Assign:     assign,
		Iterations: iterations,
		Inertia:    inertia,
	}, nil
}

// seedPlusPlus picks initial centers with the k-means++ distribution.
func seedPlusPlus(points []geom.Point, k int, r *rand.Rand) []geom.Point {
	centroids := make([]geom.Point, 0, k)
	centroids = append(centroids, points[r.Intn(len(points))].Clone())
	dist := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if dd := sq(p, c); dd < best {
					best = dd
				}
			}
			dist[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with chosen centers; duplicate one.
			centroids = append(centroids, points[r.Intn(len(points))].Clone())
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, dd := range dist {
			acc += dd
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick].Clone())
	}
	return centroids
}

// sq is the squared Euclidean distance (cheaper than geom.L2.Dist for
// the inner loops here).
func sq(p, q geom.Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}
