package cluster

import (
	"errors"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/rtree"
)

// Noise is the DBSCAN label for points in no cluster.
const Noise = -1

// DBSCANResult reports cluster labels per input index: 0..K-1 for
// cluster members, Noise (-1) for noise points.
type DBSCANResult struct {
	Labels      []int
	NumClusters int
	// RegionQueries counts ε-neighborhood lookups (≥ one per point;
	// the multi-visit behavior the paper contrasts with one-pass SGB).
	RegionQueries int64
}

// DBSCANConfig configures DBSCAN.
type DBSCANConfig struct {
	Eps    float64     // neighborhood radius
	MinPts int         // core-point density threshold (default 4)
	Metric geom.Metric // geom.L2 (paper default) or geom.LInf
}

// DBSCAN is the density-based clustering of Ester et al. [12], with
// ε-neighborhood queries answered by an R-tree — matching the paper's
// "state-of-the-art implementation of DBSCAN with an R-tree" comparator.
func DBSCAN(points []geom.Point, cfg DBSCANConfig) (*DBSCANResult, error) {
	if cfg.Eps <= 0 {
		return nil, errors.New("cluster: DBSCAN eps must be positive")
	}
	if cfg.MinPts <= 0 {
		cfg.MinPts = 4
	}
	n := len(points)
	res := &DBSCANResult{Labels: make([]int, n)}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		return res, nil
	}

	ix := rtree.New(len(points[0]))
	for i, p := range points {
		ix.Insert(geom.PointRect(p), i)
	}

	regionQuery := func(i int, out []int) []int {
		res.RegionQueries++
		box := geom.EpsBox(points[i], cfg.Eps)
		ix.Visit(box, func(_ geom.Rect, data any) bool {
			j := data.(int)
			if cfg.Metric.Within(points[i], points[j], cfg.Eps) {
				out = append(out, j)
			}
			return true
		})
		return out
	}

	const unvisited = -2
	state := make([]int, n) // unvisited / Noise / cluster id
	for i := range state {
		state[i] = unvisited
	}

	cluster := 0
	var seeds []int
	for i := 0; i < n; i++ {
		if state[i] != unvisited {
			continue
		}
		seeds = regionQuery(i, seeds[:0])
		if len(seeds) < cfg.MinPts {
			state[i] = Noise
			continue
		}
		// Start a new cluster and expand it breadth-first.
		state[i] = cluster
		queue := append([]int(nil), seeds...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if state[j] == Noise {
				state[j] = cluster // border point
			}
			if state[j] != unvisited {
				continue
			}
			state[j] = cluster
			nbrs := regionQuery(j, nil)
			if len(nbrs) >= cfg.MinPts {
				queue = append(queue, nbrs...)
			}
		}
		cluster++
	}
	for i, s := range state {
		if s >= 0 {
			res.Labels[i] = s
		}
	}
	res.NumClusters = cluster
	return res, nil
}
