// Package checkin synthesizes geo-social check-in data standing in for
// the Brightkite and Gowalla SNAP datasets the paper's Figure 11 uses.
//
// Substitution note (DESIGN.md §4): the real datasets are 4.5 M and
// 6.4 M check-ins of (user, timestamp, latitude, longitude). Their
// property that drives SGB and clustering cost is spatial skew: users
// check in around a power-law-sized set of urban hot-spots. This
// generator reproduces exactly that — hot-spot centers drawn worldwide,
// hot-spot popularity ∝ 1/rank (Zipf), Gaussian scatter around each
// center — with deterministic seeding.
package checkin

import (
	"math/rand"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// Config controls the generator.
type Config struct {
	// Checkins is the number of rows/points to generate.
	Checkins int
	// Users is the number of distinct user ids (default Checkins/50).
	Users int
	// Hotspots is the number of urban centers (default 200).
	Hotspots int
	// Spread is the Gaussian sigma around a hot-spot in degrees
	// (default 0.05 ≈ 5 km).
	Spread float64
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = c.Checkins/50 + 1
	}
	if c.Hotspots <= 0 {
		c.Hotspots = 200
	}
	if c.Spread <= 0 {
		c.Spread = 0.05
	}
	return c
}

// Brightkite returns the configuration approximating the Brightkite
// dataset's skew (fewer, denser hot-spots), scaled to n check-ins.
// The spread matches a greater-metropolitan extent (~0.5° ≈ 50 km):
// check-ins cluster by region but one ε = 0.2 similarity ball covers a
// neighborhood, not a whole city — the regime the paper's Figure 11
// operates in (its FORM-NEW-GROUP recursion stays shallow there; see
// EXPERIMENTS.md for what happens on denser data).
func Brightkite(n int) Config {
	// Venue count scales with the data (the real dataset has ~6
	// check-ins per venue), keeping per-ε-ball density roughly flat as
	// n grows — as it is in the real data.
	return Config{Checkins: n, Hotspots: maxInt(60, n/25), Spread: 0.5, Seed: 7}
}

// Gowalla returns the configuration approximating Gowalla (more
// hot-spots, wider scatter), scaled to n check-ins.
func Gowalla(n int) Config {
	return Config{Checkins: n, Hotspots: maxInt(80, n/20), Spread: 0.8, Seed: 11}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Points generates just the (latitude, longitude) points — the form the
// operator-level benchmarks consume.
func Points(cfg Config) []geom.Point {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]geom.Point, cfg.Hotspots)
	for i := range centers {
		centers[i] = geom.Point{
			r.Float64()*130 - 60,  // latitude in [-60, 70]
			r.Float64()*360 - 180, // longitude in [-180, 180]
		}
	}
	// Zipf popularity over hot-spots. The exponent is mild: the head
	// city gets a few× the median's traffic, not a constant fraction of
	// the whole feed (matching venue popularity in the SNAP data).
	zipf := rand.NewZipf(r, 1.05, 4, uint64(cfg.Hotspots-1))
	pts := make([]geom.Point, cfg.Checkins)
	for i := range pts {
		c := centers[int(zipf.Uint64())]
		pts[i] = geom.Point{
			c[0] + r.NormFloat64()*cfg.Spread,
			c[1] + r.NormFloat64()*cfg.Spread,
		}
	}
	return pts
}

// Table generates a check-in relation with schema
// (user_id INT, latitude FLOAT, longitude FLOAT, checkin_date DATE),
// named name — loadable into the SQL engine for Query 1–3 style
// workloads.
func Table(name string, cfg Config) *storage.Table {
	cfg = cfg.withDefaults()
	pts := Points(cfg)
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	t := storage.NewTable(name, storage.Schema{
		{Name: "user_id", Type: types.KindInt},
		{Name: "latitude", Type: types.KindFloat},
		{Name: "longitude", Type: types.KindFloat},
		{Name: "checkin_date", Type: types.KindDate},
	})
	start := types.DaysFromCivil(2008, 4, 1) // Brightkite's collection start
	for _, p := range pts {
		t.MustInsert(types.Row{
			types.Int(int64(1 + r.Intn(cfg.Users))),
			types.Float(p[0]),
			types.Float(p[1]),
			types.Date(start + int64(r.Intn(900))),
		})
	}
	return t
}
