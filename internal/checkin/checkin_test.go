package checkin

import (
	"math"
	"testing"
)

func TestPointsDeterministic(t *testing.T) {
	a := Points(Config{Checkins: 500, Seed: 5})
	b := Points(Config{Checkins: 500, Seed: 5})
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("nondeterministic point %d", i)
		}
	}
	c := Points(Config{Checkins: 500, Seed: 6})
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPointsBounds(t *testing.T) {
	pts := Points(Brightkite(2000))
	if len(pts) != 2000 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		// Hot-spot centers are within world bounds; scatter is tiny, so
		// allow a degree of slack.
		if p[0] < -61 || p[0] > 71 || p[1] < -181 || p[1] > 181 {
			t.Fatalf("point out of bounds: %v", p)
		}
	}
}

// TestSpatialSkew: check-ins must be clustered (the property Figure 11
// depends on). A large fraction of points should have a near neighbor
// far closer than uniform data would allow.
func TestSpatialSkew(t *testing.T) {
	pts := Points(Brightkite(1500))
	close := 0
	for i := 1; i < len(pts); i += 3 {
		// Distance to the previous sampled point's hot spot is not
		// meaningful; instead test nearest-of-50-random.
		best := math.Inf(1)
		for j := 0; j < 50; j++ {
			k := (i*31 + j*97) % len(pts)
			if k == i {
				continue
			}
			dx := pts[i][0] - pts[k][0]
			dy := pts[i][1] - pts[k][1]
			if d := math.Hypot(dx, dy); d < best {
				best = d
			}
		}
		if best < 2 {
			close++
		}
	}
	// Uniform world-scale data would give ~π·2²/46800 ≈ 0.03% odds per
	// sample (≈1.3% over 50 samples); clustered data shares hot-spots
	// far more often. Require a wide margin over the uniform baseline.
	sampled := len(pts) / 3
	if close < sampled/5 {
		t.Fatalf("only %d/%d sampled points have a close neighbor — data not skewed", close, sampled)
	}
}

func TestProfilesDiffer(t *testing.T) {
	b := Brightkite(100)
	g := Gowalla(100)
	if b.Hotspots == g.Hotspots || b.Spread == g.Spread {
		t.Error("profiles indistinguishable")
	}
}

func TestTable(t *testing.T) {
	tab := Table("checkins", Config{Checkins: 300, Users: 40, Seed: 2})
	if tab.Len() != 300 {
		t.Fatalf("rows = %d", tab.Len())
	}
	if tab.Schema.ColumnIndex("latitude") != 1 || tab.Schema.ColumnIndex("checkin_date") != 3 {
		t.Fatalf("schema = %v", tab.Schema.Names())
	}
	for _, row := range tab.Rows {
		if row[0].I < 1 || row[0].I > 40 {
			t.Fatalf("user id out of range: %v", row[0])
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := (Config{Checkins: 1000}).withDefaults()
	if cfg.Users <= 0 || cfg.Hotspots <= 0 || cfg.Spread <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}
