package geom

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// cellIdxTest mirrors the quantization MortonPerm applies.
func cellIdxTest(x, inv float64) int64 {
	return int64(math.Floor(x * inv))
}

// TestMortonRoundTrip: encode → decode is the identity for coordinates
// within the per-dimension bit budget, across dimensionalities
// including the formerly unsupported d > 4 range.
func TestMortonRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 8} {
		bits := mortonBits(d)
		limit := uint64(1) << bits
		if bits >= 63 {
			limit = 1 << 62
		}
		cells := make([]int64, d)
		back := make([]int64, d)
		for trial := 0; trial < 2000; trial++ {
			for i := range cells {
				cells[i] = int64(r.Uint64() % limit)
			}
			key := MortonKey(cells)
			mortonDecode(key, d, back)
			if !slices.Equal(cells, back) {
				t.Fatalf("d=%d: decode(encode(%v)) = %v (key %x)", d, cells, back, key)
			}
			if again := MortonKey(back); again != key {
				t.Fatalf("d=%d: re-encode %x != %x", d, again, key)
			}
		}
	}
}

// TestMortonFastPathsMatchGeneric pins the d = 2/3 bit-spread fast
// paths against the generic interleaving loop.
func TestMortonFastPathsMatchGeneric(t *testing.T) {
	generic := func(cells []int64) uint64 {
		d := len(cells)
		bits := mortonBits(d)
		var key uint64
		for i, c := range cells {
			u := uint64(c) & (1<<bits - 1)
			for b := uint(0); b < bits; b++ {
				key |= (u >> b & 1) << (b*uint(d) + uint(i))
			}
		}
		return key
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		c2 := []int64{int64(r.Uint64() >> 32), int64(r.Uint64() >> 32)}
		if got, want := MortonKey(c2), generic(c2); got != want {
			t.Fatalf("d=2 %v: %x != %x", c2, got, want)
		}
		c3 := []int64{int64(r.Uint64() % (1 << 21)), int64(r.Uint64() % (1 << 21)), int64(r.Uint64() % (1 << 21))}
		if got, want := MortonKey(c3), generic(c3); got != want {
			t.Fatalf("d=3 %v: %x != %x", c3, got, want)
		}
	}
}

// TestMortonKeyLocality: within one quadrant-aligned block, every key
// of the block precedes every key outside it along the same axis —
// the prefix property of the Z-curve the layout optimization relies
// on (spot-checked on power-of-two blocks).
func TestMortonKeyLocality(t *testing.T) {
	// All cells of the 2-D block [0,4)² must sort before any cell with
	// a coordinate ≥ 4 whose other coordinate is < 4... in Z-order the
	// [0,4)² block occupies one contiguous key range.
	var blockMax, outsideMin uint64 = 0, ^uint64(0)
	for x := int64(0); x < 8; x++ {
		for y := int64(0); y < 8; y++ {
			k := MortonKey([]int64{x, y})
			if x < 4 && y < 4 {
				if k > blockMax {
					blockMax = k
				}
			} else if k < outsideMin {
				outsideMin = k
			}
		}
	}
	if blockMax >= outsideMin {
		t.Fatalf("Z-order block not contiguous: blockMax %d >= outsideMin %d", blockMax, outsideMin)
	}
}

// TestMortonPerm: the returned slice is a permutation ordered by
// (normalized key, input index), and an input already in Morton order
// returns nil.
func TestMortonPerm(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 40; trial++ {
			n := 2 + r.Intn(300)
			ps := NewPointSetCap(d, n)
			for i := 0; i < n; i++ {
				p := ps.Extend()
				for j := range p {
					p[j] = r.Float64()*40 - 20
				}
			}
			cellSize := 0.25 + r.Float64()
			perm := MortonPerm(ps, cellSize)
			if perm == nil {
				continue // already ordered (possible on tiny inputs)
			}
			if len(perm) != n {
				t.Fatalf("d=%d: perm length %d, want %d", d, len(perm), n)
			}
			seen := make([]bool, n)
			for _, v := range perm {
				if v < 0 || int(v) >= n || seen[v] {
					t.Fatalf("d=%d: not a permutation: %v", d, perm)
				}
				seen[v] = true
			}
			keys := mortonKeysOf(ps, cellSize)
			for k := 1; k < n; k++ {
				a, b := perm[k-1], perm[k]
				if keys[a] > keys[b] || (keys[a] == keys[b] && a > b) {
					t.Fatalf("d=%d: perm not sorted by (key, index) at %d", d, k)
				}
			}
			// Re-running on the gathered set must report "already
			// ordered".
			if again := MortonPerm(ps.Gather(perm), cellSize); again != nil {
				t.Fatalf("d=%d: permuted set not recognized as ordered", d)
			}
		}
	}
}

// mortonKeysOf recomputes the normalized Morton keys the same way
// MortonPerm does, for verification.
func mortonKeysOf(ps *PointSet, cellSize float64) []uint64 {
	n, d := ps.Len(), ps.Dims()
	inv := 1 / cellSize
	mins := make([]int64, d)
	for j := 0; j < d; j++ {
		mins[j] = int64(1) << 62
		for i := 0; i < n; i++ {
			if c := cellIdxTest(ps.At(i)[j], inv); c < mins[j] {
				mins[j] = c
			}
		}
	}
	keys := make([]uint64, n)
	cells := make([]int64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			cells[j] = cellIdxTest(ps.At(i)[j], inv) - mins[j]
		}
		keys[i] = MortonKey(cells)
	}
	return keys
}

// FuzzMortonRoundTrip fuzzes the encode/decode pair at d = 2 and 3.
func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(3))
	f.Add(^uint64(0), uint64(1)<<40, uint64(12345))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		c2 := []int64{int64(a & 0xFFFFFFFF), int64(b & 0xFFFFFFFF)}
		back2 := make([]int64, 2)
		mortonDecode(MortonKey(c2), 2, back2)
		if back2[0] != c2[0] || back2[1] != c2[1] {
			t.Fatalf("d=2 round trip %v -> %v", c2, back2)
		}
		c3 := []int64{int64(a % (1 << 21)), int64(b % (1 << 21)), int64(c % (1 << 21))}
		back3 := make([]int64, 3)
		mortonDecode(MortonKey(c3), 3, back3)
		if back3[0] != c3[0] || back3[1] != c3[1] || back3[2] != c3[2] {
			t.Fatalf("d=3 round trip %v -> %v", c3, back3)
		}
	})
}
