package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in d-dimensional space. Points are immutable by
// convention: operators never modify a caller's coordinates.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String formats the point as "(x1, x2, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Metric identifies a Minkowski distance function δ (Definition 1).
type Metric int

const (
	// L2 is the Euclidean distance δ2(p,q) = sqrt(Σ (p_y - q_y)²).
	L2 Metric = iota
	// LInf is the maximum distance δ∞(p,q) = max_y |p_y - q_y|.
	LInf
)

// String returns the SQL keyword for the metric ("L2" or "LINF").
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case LInf:
		return "LINF"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Dist computes δ(p, q) under the metric. Panics if dimensions differ;
// mixing dimensionalities is a programming error, not a data error.
func (m Metric) Dist(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	return m.distCoords(p, q)
}

// distCoords is Dist over raw coordinate slices of equal length, with
// the d=2 and d=3 cases unrolled (the paper's target dimensionalities;
// the unrolled bodies keep the loop counter and bounds checks out of
// the innermost kernel).
//
//sgb:allocfree
func (m Metric) distCoords(p, q []float64) float64 {
	switch m {
	case L2:
		switch len(p) {
		case 2:
			dx := p[0] - q[0]
			dy := p[1] - q[1]
			return math.Sqrt(dx*dx + dy*dy)
		case 3:
			dx := p[0] - q[0]
			dy := p[1] - q[1]
			dz := p[2] - q[2]
			return math.Sqrt(dx*dx + dy*dy + dz*dz)
		}
		var s float64
		for i := range p {
			d := p[i] - q[i]
			s += d * d
		}
		return math.Sqrt(s)
	case LInf:
		// The unrolled cases keep the generic loop's comparison shape
		// (d > mx, never math.Max) so non-finite coordinates decide
		// identically at every dimensionality.
		switch len(p) {
		case 2:
			var mx float64
			if d := math.Abs(p[0] - q[0]); d > mx {
				mx = d
			}
			if d := math.Abs(p[1] - q[1]); d > mx {
				mx = d
			}
			return mx
		case 3:
			var mx float64
			if d := math.Abs(p[0] - q[0]); d > mx {
				mx = d
			}
			if d := math.Abs(p[1] - q[1]); d > mx {
				mx = d
			}
			if d := math.Abs(p[2] - q[2]); d > mx {
				mx = d
			}
			return mx
		}
		var mx float64
		for i := range p {
			d := math.Abs(p[i] - q[i])
			if d > mx {
				mx = d
			}
		}
		return mx
	default:
		panic("geom: unknown metric")
	}
}

// Within reports the similarity predicate ξδ,ε(p, q): δ(p,q) ≤ eps
// (Definition 2). For L2 it avoids the square root.
func (m Metric) Within(p, q Point, eps float64) bool {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	return m.withinCoords(p, q, eps)
}

// withinCoords is Within over raw coordinate slices of equal length,
// unrolled for d=2/d=3. The accumulation order matches the generic
// loop, so the unrolled kernels decide every boundary case the same
// way bit-for-bit.
//
//sgb:allocfree
func (m Metric) withinCoords(p, q []float64, eps float64) bool {
	switch m {
	case L2:
		switch len(p) {
		case 2:
			dx := p[0] - q[0]
			dy := p[1] - q[1]
			return dx*dx+dy*dy <= eps*eps
		case 3:
			dx := p[0] - q[0]
			dy := p[1] - q[1]
			dz := p[2] - q[2]
			return dx*dx+dy*dy+dz*dz <= eps*eps
		}
		var s float64
		e2 := eps * eps
		for i := range p {
			d := p[i] - q[i]
			s += d * d
			if s > e2 {
				return false
			}
		}
		return s <= e2
	case LInf:
		// Comparisons mirror the generic loop's `d > eps` rejection
		// (not `d <= eps` acceptance), so non-finite coordinates
		// decide identically at every dimensionality.
		switch len(p) {
		case 2:
			if math.Abs(p[0]-q[0]) > eps {
				return false
			}
			return !(math.Abs(p[1]-q[1]) > eps)
		case 3:
			if math.Abs(p[0]-q[0]) > eps {
				return false
			}
			if math.Abs(p[1]-q[1]) > eps {
				return false
			}
			return !(math.Abs(p[2]-q[2]) > eps)
		}
		for i := range p {
			if d := math.Abs(p[i] - q[i]); d > eps {
				return false
			}
		}
		return true
	default:
		panic("geom: unknown metric")
	}
}

// DistKey returns the comparison key the similarity predicate tests
// against EpsKey(eps): the squared distance for L2 (the sqrt-free form
// withinCoords compares) and the maximum coordinate difference for L∞.
// Keys order exactly as distances do, and DistKey(p, q) <= EpsKey(eps)
// decides identically to Within(p, q, eps) — the accumulation shapes
// below mirror withinCoords term for term, so boundary cases cannot
// diverge. The ε-lattice dendrogram stores merge heights in key space
// so that lattice cuts reproduce one-shot groupings exactly.
func (m Metric) DistKey(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	return m.distKeyCoords(p, q)
}

// distKeyCoords is DistKey over raw coordinate slices of equal length.
// The L2 kernels accumulate in withinCoords's order without the early
// exit (partial sums only grow, so the full sum decides every s > e2
// rejection identically); L∞ already compares raw distances.
//
//sgb:allocfree
func (m Metric) distKeyCoords(p, q []float64) float64 {
	if m == L2 {
		switch len(p) {
		case 2:
			dx := p[0] - q[0]
			dy := p[1] - q[1]
			return dx*dx + dy*dy
		case 3:
			dx := p[0] - q[0]
			dy := p[1] - q[1]
			dz := p[2] - q[2]
			return dx*dx + dy*dy + dz*dz
		}
		var s float64
		for i := range p {
			d := p[i] - q[i]
			s += d * d
		}
		return s
	}
	return m.distCoords(p, q)
}

// EpsKey maps a similarity threshold into DistKey's comparison space:
// eps*eps for L2 (the exact product withinCoords compares against) and
// eps unchanged for L∞.
//
//sgb:allocfree
func (m Metric) EpsKey(eps float64) float64 {
	if m == L2 {
		return eps * eps
	}
	return eps
}

// Rect is an axis-aligned d-dimensional rectangle given by its lower
// (Min) and upper (Max) corners. A Rect is valid when Min[i] <= Max[i]
// in every dimension; an "empty" rectangle (from an intersection that
// vanished) has Min[i] > Max[i] in at least one dimension.
type Rect struct {
	Min, Max Point
}

// NewRect returns a rectangle with the given corners. It panics when
// the corner dimensionalities differ.
func NewRect(min, max Point) Rect {
	if len(min) != len(max) {
		panic("geom: rect corner dimension mismatch")
	}
	return Rect{Min: min, Max: max}
}

// PointRect returns the degenerate rectangle containing exactly p.
func PointRect(p Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// EpsBox returns the ε-box of p: [p_i - eps, p_i + eps] in every
// dimension. Under L∞ this is exactly the set of points within eps of p;
// under L2 it is a conservative superset (the circumscribing box of the
// ε-ball), which is what the filter step of the paper's filter-refine
// paradigm relies on.
func EpsBox(p Point, eps float64) Rect {
	min := make(Point, len(p))
	max := make(Point, len(p))
	for i, v := range p {
		min[i] = v - eps
		max[i] = v + eps
	}
	return Rect{Min: min, Max: max}
}

// EpsBoxInto fills dst with the ε-box of p, reusing dst's corner
// storage when the dimensionalities already match — the allocation-free
// variant of EpsBox for per-probe scratch rectangles.
func EpsBoxInto(dst *Rect, p Point, eps float64) {
	if len(dst.Min) != len(p) {
		dst.Min = make(Point, len(p))
		dst.Max = make(Point, len(p))
	}
	for i, v := range p {
		dst.Min[i] = v - eps
		dst.Max[i] = v + eps
	}
}

// ShrinkToEpsBox intersects r in place with the ε-box of p — the ε-All
// bounding-rectangle maintenance step of a member insert (Figure 5),
// without materializing the ε-box or the intersection.
func (r *Rect) ShrinkToEpsBox(p Point, eps float64) {
	for i, v := range p {
		if lo := v - eps; lo > r.Min[i] {
			r.Min[i] = lo
		}
		if hi := v + eps; hi < r.Max[i] {
			r.Max[i] = hi
		}
	}
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool {
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return true
		}
	}
	return false
}

// Contains reports whether p lies inside r (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point
// (touching boundaries count, matching the ≤ similarity predicate).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of r and s. The result may be
// empty (check IsEmpty). This is the operation that shrinks a group's
// ε-All bounding rectangle as members join (Figure 5 of the paper);
// correctness of the bounds-checking approach "follows from the fact
// that the rectangles are closed under intersection".
func (r Rect) Intersect(s Rect) Rect {
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Max(r.Min[i], s.Min[i])
		max[i] = math.Min(r.Max[i], s.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// Union returns the smallest rectangle enclosing both r and s.
func (r Rect) Union(s Rect) Rect {
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Min))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], s.Min[i])
		max[i] = math.Max(r.Max[i], s.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// Extend grows r in place to also cover s.
func (r *Rect) Extend(s Rect) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// ExtendPoint grows r in place to also cover p.
func (r *Rect) ExtendPoint(p Point) {
	for i := range r.Min {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
}

// Area returns the d-dimensional volume of r (0 for empty rectangles).
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		side := r.Max[i] - r.Min[i]
		if side < 0 {
			return 0
		}
		a *= side
	}
	return a
}

// Margin returns the sum of the side lengths (perimeter/2 in 2-D).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		if side := r.Max[i] - r.Min[i]; side > 0 {
			m += side
		}
	}
	return m
}

// EnlargementArea returns the area increase of r if extended to cover
// s, computed without materializing the union (R-tree hot path).
func (r Rect) EnlargementArea(s Rect) float64 {
	union, area := 1.0, 1.0
	for i := range r.Min {
		lo := r.Min[i]
		if s.Min[i] < lo {
			lo = s.Min[i]
		}
		hi := r.Max[i]
		if s.Max[i] > hi {
			hi = s.Max[i]
		}
		union *= hi - lo
		side := r.Max[i] - r.Min[i]
		if side < 0 {
			side = 0
		}
		area *= side
	}
	return union - area
}

// UnionArea returns the area of the union rectangle of r and s without
// materializing it.
func (r Rect) UnionArea(s Rect) float64 {
	union := 1.0
	for i := range r.Min {
		lo := r.Min[i]
		if s.Min[i] < lo {
			lo = s.Min[i]
		}
		hi := r.Max[i]
		if s.Max[i] > hi {
			hi = s.Max[i]
		}
		union *= hi - lo
	}
	return union
}

// String formats the rectangle as "[min; max]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s; %s]", r.Min, r.Max)
}
