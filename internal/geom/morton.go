package geom

import "math"

// Morton (Z-order) preprocessing: sorting a PointSet by the interleaved
// bits of its ε-cell coordinates places points of neighboring cells
// next to each other in memory, so a scan that probes each point's cell
// neighborhood (the SGB-Any grid evaluation) touches the same directory
// slots and id slabs again and again while they are cache-resident.
// The permutation is pure preprocessing: consumers evaluate over the
// permuted set and remap member ids back to input order on output.

// mortonBits returns the bits of precision per dimension that fit one
// 64-bit key.
func mortonBits(d int) uint {
	return uint(64 / d)
}

// MortonKey interleaves the low 64/d bits of each of the d cell
// coordinates into a single Z-order key: bit b of coordinate i lands at
// key position b*d + i. Coordinates are expected to be non-negative
// (already normalized against their per-dimension minimum); higher bits
// beyond the per-dimension budget are dropped, which can only alias
// distant cells onto nearby keys — a sort-quality concern, never a
// correctness one.
func MortonKey(cells []int64) uint64 {
	switch len(cells) {
	case 1:
		return uint64(cells[0])
	case 2:
		return spread2(uint64(cells[0])) | spread2(uint64(cells[1]))<<1
	case 3:
		return spread3(uint64(cells[0])) | spread3(uint64(cells[1]))<<1 | spread3(uint64(cells[2]))<<2
	}
	d := len(cells)
	bits := mortonBits(d)
	var key uint64
	for i, c := range cells {
		u := uint64(c) & (1<<bits - 1)
		for b := uint(0); b < bits; b++ {
			key |= (u >> b & 1) << (b*uint(d) + uint(i))
		}
	}
	return key
}

// mortonDecode is the inverse of MortonKey for coordinates within the
// per-dimension bit budget; the round-trip property tests pin the pair
// against each other.
func mortonDecode(key uint64, d int, cells []int64) {
	bits := mortonBits(d)
	for i := 0; i < d; i++ {
		var u uint64
		for b := uint(0); b < bits; b++ {
			u |= (key >> (b*uint(d) + uint(i)) & 1) << b
		}
		cells[i] = int64(u)
	}
}

// spread2 spaces the low 32 bits of x to the even bit positions.
func spread2(x uint64) uint64 {
	x &= 0xFFFFFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// spread3 spaces the low 21 bits of x to every third bit position.
func spread3(x uint64) uint64 {
	x &= 0x1FFFFF
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// MortonPerm returns the permutation that orders ps's points by the
// Z-order key of their cellSize-quantized coordinates: perm[k] is the
// input index of the k-th point in Morton order. Cell coordinates are
// normalized against their per-dimension minimum before interleaving,
// and key ties (shared or aliased cells) break by input index, so the
// permutation is deterministic for a given input. It returns nil when
// there is nothing to reorder — fewer than two points, or an input
// that is already in Morton order.
func MortonPerm(ps *PointSet, cellSize float64) []int32 {
	n := ps.Len()
	d := ps.Dims()
	if n < 2 || !(cellSize > 0) {
		return nil
	}
	inv := 1 / cellSize

	// Per-dimension minimum cell: floor is monotone, so the minimum
	// cell is the cell of the minimum coordinate.
	mins := make([]int64, d)
	for j := 0; j < d; j++ {
		lo := math.Inf(1)
		for i := 0; i < n; i++ {
			if v := ps.At(i)[j]; v < lo {
				lo = v
			}
		}
		mins[j] = int64(math.Floor(lo * inv))
	}

	keys := make([]uint64, n)
	cells := make([]int64, d)
	for i := 0; i < n; i++ {
		p := ps.At(i)
		for j := 0; j < d; j++ {
			cells[j] = int64(math.Floor(p[j]*inv)) - mins[j]
		}
		keys[i] = MortonKey(cells)
	}

	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sortPermByKey(perm, keys)
	for i := range perm {
		if perm[i] != int32(i) {
			return perm
		}
	}
	return nil // already in Morton order: save the caller a copy
}

// sortPermByKey sorts perm by (keys[perm[i]], perm[i]) — an LSD radix
// sort over the key bytes plus a final stable property from the
// index-seeded input, avoiding comparison-sort overhead on the O(n)
// preprocessing path.
func sortPermByKey(perm []int32, keys []uint64) {
	n := len(perm)
	tmp := make([]int32, n)
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		// Skip passes whose byte is constant across all keys.
		first := keys[perm[0]] >> shift & 0xFF
		constant := true
		for _, id := range perm {
			if keys[id]>>shift&0xFF != first {
				constant = false
				break
			}
		}
		if constant {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, id := range perm {
			counts[keys[id]>>shift&0xFF]++
		}
		pos := 0
		for i := range counts {
			c := counts[i]
			counts[i] = pos
			pos += c
		}
		for _, id := range perm {
			b := keys[id] >> shift & 0xFF
			tmp[counts[b]] = id
			counts[b]++
		}
		copy(perm, tmp)
	}
}
