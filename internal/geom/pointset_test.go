package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPointSetBasics(t *testing.T) {
	ps := NewPointSet(3)
	if ps.Len() != 0 || ps.Dims() != 3 {
		t.Fatalf("empty set: Len=%d Dims=%d", ps.Len(), ps.Dims())
	}
	ps.AppendPoint(Point{1, 2, 3})
	dst := ps.Extend()
	dst[0], dst[1], dst[2] = 4, 5, 6
	if ps.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ps.Len())
	}
	if !ps.At(0).Equal(Point{1, 2, 3}) || !ps.At(1).Equal(Point{4, 5, 6}) {
		t.Fatalf("At views wrong: %v %v", ps.At(0), ps.At(1))
	}
	pts := ps.Points()
	if len(pts) != 2 || !pts[1].Equal(Point{4, 5, 6}) {
		t.Fatalf("Points() = %v", pts)
	}
}

func TestFromPointsCopies(t *testing.T) {
	in := []Point{{1, 2}, {3, 4}, {5, 6}}
	ps := FromPoints(in)
	if ps.Len() != 3 || ps.Dims() != 2 {
		t.Fatalf("Len=%d Dims=%d", ps.Len(), ps.Dims())
	}
	for i := range in {
		if !ps.At(i).Equal(in[i]) {
			t.Fatalf("At(%d) = %v, want %v", i, ps.At(i), in[i])
		}
	}
	if FromPoints(nil).Len() != 0 {
		t.Fatal("FromPoints(nil) not empty")
	}
}

// TestFromPointsZeroCopy: points sliced from one flat buffer are
// adopted without copying.
func TestFromPointsZeroCopy(t *testing.T) {
	flat := []float64{1, 2, 3, 4, 5, 6}
	in := []Point{flat[0:2], flat[2:4], flat[4:6]}
	ps := FromPoints(in)
	if &ps.At(0)[0] != &flat[0] || &ps.At(2)[0] != &flat[4] {
		t.Fatal("expected the flat buffer to be adopted zero-copy")
	}

	// Same coordinates from separate allocations must be copied, not
	// aliased.
	sep := []Point{{1, 2}, {3, 4}, {5, 6}}
	ps2 := FromPoints(sep)
	if &ps2.At(1)[0] == &sep[1][0] {
		t.Fatal("separately allocated points must be copied")
	}
}

func TestWrap(t *testing.T) {
	ps := Wrap(2, []float64{1, 2, 3, 4})
	if ps.Len() != 2 || !ps.At(1).Equal(Point{3, 4}) {
		t.Fatalf("Wrap: %v", ps.At(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap accepted a ragged buffer")
		}
	}()
	Wrap(2, []float64{1, 2, 3})
}

// TestKernelEquivalence: the unrolled d=2/d=3 kernels must agree with a
// straightforward reference implementation on random inputs, including
// the boundary δ = ε exactly.
func TestKernelEquivalence(t *testing.T) {
	refDist := func(m Metric, p, q Point) float64 {
		switch m {
		case L2:
			var s float64
			for i := range p {
				d := p[i] - q[i]
				s += d * d
			}
			return math.Sqrt(s)
		default:
			var mx float64
			for i := range p {
				if d := math.Abs(p[i] - q[i]); d > mx {
					mx = d
				}
			}
			return mx
		}
	}
	r := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 4, 7} {
		for _, m := range []Metric{L2, LInf} {
			for trial := 0; trial < 200; trial++ {
				p := make(Point, d)
				q := make(Point, d)
				for i := 0; i < d; i++ {
					p[i] = r.Float64()*20 - 10
					q[i] = r.Float64()*20 - 10
				}
				if got, want := m.Dist(p, q), refDist(m, p, q); got != want {
					t.Fatalf("d=%d %v: Dist=%v want %v", d, m, got, want)
				}
				eps := r.Float64() * 15
				if got, want := m.Within(p, q, eps), m.Dist(p, q) <= eps; got != want {
					t.Fatalf("d=%d %v eps=%v: Within=%v Dist=%v", d, m, eps, got, m.Dist(p, q))
				}
				// Exact-boundary case: a point at distance exactly ε
				// along one axis must be within (zero origin keeps the
				// difference exactly representable).
				z := make(Point, d)
				b := make(Point, d)
				b[0] = eps
				if !m.Within(z, b, eps) {
					t.Fatalf("d=%d %v: boundary δ=ε not within", d, m)
				}
				// Non-finite coordinates must decide exactly like the
				// reference loops regardless of dimensionality (the
				// unrolled kernels must not invert NaN comparisons).
				for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
					n := q.Clone()
					n[d-1] = bad
					if got, want := m.Dist(p, n), refDist(m, p, n); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
						t.Fatalf("d=%d %v coord=%v: Dist=%v want %v", d, m, bad, got, want)
					}
					refWithin := true
					for i := range p {
						if math.Abs(p[i]-n[i]) > eps && m == LInf {
							refWithin = false
						}
					}
					if m == L2 {
						var s float64
						for i := range p {
							dd := p[i] - n[i]
							s += dd * dd
						}
						refWithin = s <= eps*eps
					}
					if got := m.Within(p, n, eps); got != refWithin {
						t.Fatalf("d=%d %v coord=%v: Within=%v want %v", d, m, bad, got, refWithin)
					}
				}
			}
		}
	}
}

func TestPointSetDistWithin(t *testing.T) {
	ps := FromPoints([]Point{{0, 0}, {3, 4}})
	if got := ps.Dist(L2, 0, 1); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if !ps.Within(L2, 0, 1, 5) || ps.Within(L2, 0, 1, 4.999) {
		t.Fatal("Within thresholds wrong")
	}
	if got := ps.Dist(LInf, 0, 1); got != 4 {
		t.Fatalf("LInf Dist = %v, want 4", got)
	}
}

func TestEpsBoxIntoAndShrink(t *testing.T) {
	var box Rect
	EpsBoxInto(&box, Point{1, 2}, 0.5)
	if !box.Min.Equal(Point{0.5, 1.5}) || !box.Max.Equal(Point{1.5, 2.5}) {
		t.Fatalf("EpsBoxInto: %v", box)
	}
	// Reuse must not reallocate the corners.
	min0 := &box.Min[0]
	EpsBoxInto(&box, Point{3, 3}, 1)
	if &box.Min[0] != min0 {
		t.Fatal("EpsBoxInto reallocated matching-dims corners")
	}

	r := EpsBox(Point{0, 0}, 2)
	r.ShrinkToEpsBox(Point{1, 1}, 2)
	want := EpsBox(Point{0, 0}, 2).Intersect(EpsBox(Point{1, 1}, 2))
	if !r.Min.Equal(want.Min) || !r.Max.Equal(want.Max) {
		t.Fatalf("ShrinkToEpsBox = %v, want %v", r, want)
	}
}

func TestGather(t *testing.T) {
	ps := NewPointSet(2)
	for i := 0; i < 5; i++ {
		ps.AppendPoint(Point{float64(i), float64(i) * 10})
	}
	sub := ps.Gather([]int32{4, 0, 2})
	if sub.Len() != 3 || sub.Dims() != 2 {
		t.Fatalf("gathered %d points of dim %d", sub.Len(), sub.Dims())
	}
	for k, want := range []int{4, 0, 2} {
		if !sub.At(k).Equal(ps.At(want)) {
			t.Fatalf("gathered point %d = %v, want copy of %v", k, sub.At(k), ps.At(want))
		}
	}
	// The gather owns its storage: mutating the source must not leak in.
	ps.At(4)[0] = -99
	if sub.At(0)[0] == -99 {
		t.Fatal("Gather aliases the source buffer")
	}
	if empty := ps.Gather(nil); empty.Len() != 0 {
		t.Fatal("empty gather should have no points")
	}
}
