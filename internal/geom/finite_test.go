package geom

import (
	"math"
	"strings"
	"testing"
)

// TestCheckFinite covers the ingestion guard: finite sets pass, and
// the first offending coordinate is reported by point and axis.
func TestCheckFinite(t *testing.T) {
	ok := FromPoints([]Point{{0, 1}, {-2.5, 3e8}})
	if err := ok.CheckFinite(); err != nil {
		t.Fatalf("finite set rejected: %v", err)
	}
	if err := NewPointSet(3).CheckFinite(); err != nil {
		t.Fatalf("empty set rejected: %v", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		ps := FromPoints([]Point{{0, 0}, {1, bad}})
		err := ps.CheckFinite()
		if err == nil {
			t.Fatalf("CheckFinite accepted %v", bad)
		}
		if !strings.Contains(err.Error(), "point 1") || !strings.Contains(err.Error(), "coordinate 1") {
			t.Fatalf("error %q does not locate the offending coordinate", err)
		}
	}
}
