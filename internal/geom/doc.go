// Package geom provides the multi-dimensional points, rectangles, and
// Minkowski distance metrics that underlie the similarity group-by
// operators. The paper (Definition 1) works in a metric space 〈D, δ〉
// with δ one of the Minkowski distances; it evaluates L2 (Euclidean)
// and L∞ (maximum) in two and three dimensions. This package supports
// any dimensionality d ≥ 1.
//
// Point storage comes in two shapes: []Point for API convenience, and
// the flat PointSet — one contiguous []float64 buffer with stride d —
// that every operator hot path runs on. PointSet supports zero-copy
// adaptation from contiguous []Point data (FromPoints), sub-set
// gathers for the parallel pipeline's shards (Gather), views for
// suffix hand-off (Slice), and batch appends for the incremental
// evaluators (AppendSet).
//
// Invariants:
//
//   - Points are immutable by convention; PointSet.At returns
//     read-only views into the backing buffer.
//   - All points of a PointSet share one dimensionality; mixing is a
//     programming error (panic), not a data error.
//   - EpsBox(p, ε) is the closed axis-aligned box of side 2ε centered
//     on p: it equals the ε-ball under L∞ and over-approximates it
//     under L2, which is why L2 strategies refine candidates exactly.
//   - Distance kernels are dimension-specialized (d = 2/3 unrolled)
//     and Within avoids the square root under L2.
//
// The package also provides Morton (Z-order) preprocessing
// (MortonKey, MortonPerm): a deterministic permutation ordering a
// PointSet by the interleaved bits of its cellSize-quantized
// coordinates. The SGB-Any grid evaluation sorts its input through it
// so consecutive cell-neighborhood probes stay cache-resident, and
// remaps member ids back to input order on output.
package geom
