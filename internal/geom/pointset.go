package geom

import (
	"fmt"
	"math"
)

// PointSet is flat storage for a sequence of points of uniform
// dimensionality: one contiguous []float64 backing buffer with stride
// Dims. It replaces []Point on the operators' hot paths — probing a
// point is a bounds-checked slice of the backing array rather than a
// pointer chase to a separately allocated coordinate slice, so member
// scans walk memory sequentially and the distance kernels stay in
// cache.
//
// A PointSet with zero points may have dimensionality 0 (unknown); any
// non-empty PointSet has Dims ≥ 1.
type PointSet struct {
	dims int
	data []float64
}

// NewPointSet returns an empty PointSet for dims-dimensional points.
func NewPointSet(dims int) *PointSet {
	if dims < 1 {
		panic("geom: PointSet dims must be >= 1")
	}
	return &PointSet{dims: dims}
}

// NewPointSetCap returns an empty PointSet with capacity preallocated
// for n points.
func NewPointSetCap(dims, n int) *PointSet {
	ps := NewPointSet(dims)
	ps.data = make([]float64, 0, dims*n)
	return ps
}

// Wrap adopts data as the backing buffer of a PointSet without
// copying. len(data) must be a multiple of dims. The caller must not
// alias mutations into the buffer afterwards.
func Wrap(dims int, data []float64) *PointSet {
	if dims < 1 {
		panic("geom: PointSet dims must be >= 1")
	}
	if len(data)%dims != 0 {
		panic(fmt.Sprintf("geom: Wrap: %d coordinates is not a multiple of dims %d", len(data), dims))
	}
	return &PointSet{dims: dims, data: data}
}

// FromPoints builds a PointSet from a point slice. When the points
// already alias one contiguous backing array in order (pts[i] ==
// base[i*d : (i+1)*d], as produced by slicing a flat buffer) the buffer
// is adopted zero-copy; otherwise the coordinates are copied once into
// a fresh flat buffer. Points must share one dimensionality ≥ 1; the
// operators validate that before converting.
func FromPoints(pts []Point) *PointSet {
	if len(pts) == 0 {
		return &PointSet{}
	}
	d := len(pts[0])
	if d == 0 {
		panic("geom: FromPoints: zero-dimensional point")
	}
	if flat := contiguous(pts, d); flat != nil {
		return &PointSet{dims: d, data: flat}
	}
	ps := NewPointSetCap(d, len(pts))
	for _, p := range pts {
		if len(p) != d {
			panic(fmt.Sprintf("geom: FromPoints: mixed dimensionality %d vs %d", len(p), d))
		}
		ps.data = append(ps.data, p...)
	}
	return ps
}

// contiguous reports whether pts views one flat backing array at
// stride d, returning that array if so. The check stays within the
// capacity of pts[0], so it never compares addresses across distinct
// allocations.
func contiguous(pts []Point, d int) []float64 {
	n := len(pts)
	if cap(pts[0]) < n*d {
		return nil
	}
	base := pts[0][:n*d]
	for i, p := range pts {
		if len(p) != d || &p[0] != &base[i*d] {
			return nil
		}
	}
	return base
}

// Dims returns the dimensionality (0 only for an empty set built from
// no points).
func (s *PointSet) Dims() int { return s.dims }

// Len returns the number of stored points.
func (s *PointSet) Len() int {
	if s.dims == 0 {
		return 0
	}
	return len(s.data) / s.dims
}

// At returns point i as a view into the backing buffer — no copy, no
// allocation. The view must be treated as read-only.
func (s *PointSet) At(i int) Point {
	d := s.dims
	return s.data[i*d : i*d+d : i*d+d]
}

// AppendPoint copies p onto the end of the set. Panics on a
// dimensionality mismatch.
func (s *PointSet) AppendPoint(p Point) {
	if len(p) != s.dims {
		panic(fmt.Sprintf("geom: AppendPoint: dimension %d, want %d", len(p), s.dims))
	}
	s.data = append(s.data, p...)
}

// Extend appends one zeroed point and returns its mutable view, so
// callers can fill coordinates in place without a scratch slice.
func (s *PointSet) Extend() Point {
	n := len(s.data)
	for i := 0; i < s.dims; i++ {
		s.data = append(s.data, 0)
	}
	return s.data[n : n+s.dims : n+s.dims]
}

// AppendSet copies every point of other onto the end of the set — the
// batch-append entry of the incremental evaluators. Panics on a
// dimensionality mismatch; an empty other is a no-op. When the
// receiver is empty with unknown dimensionality (built from no
// points), it adopts other's dimensionality.
func (s *PointSet) AppendSet(other *PointSet) {
	if other == nil || other.Len() == 0 {
		return
	}
	if s.dims == 0 && len(s.data) == 0 {
		s.dims = other.dims
	}
	if other.dims != s.dims {
		panic(fmt.Sprintf("geom: AppendSet: dimension %d, want %d", other.dims, s.dims))
	}
	s.data = append(s.data, other.data...)
}

// Slice returns a view of points [i, j) sharing the receiver's backing
// buffer — no copy. The view must be treated as read-only, and appends
// to the receiver may or may not be visible through it; use it
// immediately (the incremental SQL path slices the freshly extracted
// suffix of a query's points to hand to AppendSet, which copies).
func (s *PointSet) Slice(i, j int) *PointSet {
	if i < 0 || j < i || j > s.Len() {
		panic(fmt.Sprintf("geom: Slice [%d, %d) out of range [0, %d)", i, j, s.Len()))
	}
	d := s.dims
	return &PointSet{dims: d, data: s.data[i*d : j*d : j*d]}
}

// Gather returns a compact PointSet holding the points at the given
// indices, in index order — the sub-PointSet materialization the
// partition stage of the parallel pipeline hands each shard. The
// result owns its buffer; mutating the source afterwards does not
// affect it.
func (s *PointSet) Gather(indices []int32) *PointSet {
	out := NewPointSetCap(s.dims, len(indices))
	for _, i := range indices {
		out.data = append(out.data, s.At(int(i))...)
	}
	return out
}

// Data returns the flat backing buffer (stride Dims) — the
// serialization view the checkpoint writer copies out. The returned
// slice aliases the set's storage: treat it as read-only, and use it
// before the next append (which may move the buffer).
func (s *PointSet) Data() []float64 { return s.data }

// Points materializes the set as a []Point of zero-copy views.
func (s *PointSet) Points() []Point {
	out := make([]Point, s.Len())
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// CheckFinite reports the first non-finite coordinate in the set, if
// any. NaN and ±Inf coordinates have no place in a similarity
// grouping: NaN compares false with everything (so a point could be
// "within ε of no point including itself"), and both poison the
// ε-grid's integer cell quantization and the Morton key bit-spread.
// The operators reject them at ingestion instead of computing garbage.
func (s *PointSet) CheckFinite() error {
	d := s.dims
	for i, v := range s.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("geom: point %d has non-finite coordinate %d (%v)", i/d, i%d, v)
		}
	}
	return nil
}

// Dist computes δ(points[i], points[j]) under m.
func (s *PointSet) Dist(m Metric, i, j int) float64 {
	return m.distCoords(s.At(i), s.At(j))
}

// Within reports δ(points[i], points[j]) ≤ eps under m.
func (s *PointSet) Within(m Metric, i, j int, eps float64) bool {
	return m.withinCoords(s.At(i), s.At(j), eps)
}

// DistKey computes the metric comparison key of (points[i], points[j])
// — the value Within tests against m.EpsKey(eps). See Metric.DistKey.
func (s *PointSet) DistKey(m Metric, i, j int) float64 {
	return m.distKeyCoords(s.At(i), s.At(j))
}
