package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestL2Dist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{1, 1}, 2 * math.Sqrt2},
		{Point{0, 0, 0}, Point{1, 2, 2}, 3},
		{Point{5}, Point{2}, 3},
	}
	for _, c := range cases {
		if got := L2.Dist(c.p, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("L2(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestLInfDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 4},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 5}, Point{3, 4}, 5},
		{Point{0, 0, 0}, Point{1, -7, 2}, 7},
	}
	for _, c := range cases {
		if got := LInf.Dist(c.p, c.q); got != c.want {
			t.Errorf("LInf(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2.Dist(Point{1, 2}, Point{1, 2, 3})
}

func randPoint(r *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = r.Float64()*20 - 10
	}
	return p
}

// Property: Within(p, q, eps) agrees with Dist(p, q) <= eps for both
// metrics (Within short-circuits; this proves the fast path is exact).
func TestWithinMatchesDist(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range []Metric{L2, LInf} {
		for i := 0; i < 2000; i++ {
			d := 1 + r.Intn(4)
			p, q := randPoint(r, d), randPoint(r, d)
			eps := r.Float64() * 15
			if got, want := m.Within(p, q, eps), m.Dist(p, q) <= eps; got != want {
				t.Fatalf("%v.Within(%v,%v,%v) = %v, dist = %v", m, p, q, eps, got, m.Dist(p, q))
			}
		}
	}
}

// Property: metric axioms — non-negativity, identity, symmetry, and the
// triangle inequality (Definition 1 of the paper).
func TestMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, m := range []Metric{L2, LInf} {
		for i := 0; i < 2000; i++ {
			d := 1 + r.Intn(4)
			a, b, c := randPoint(r, d), randPoint(r, d), randPoint(r, d)
			if m.Dist(a, b) < 0 {
				t.Fatalf("%v: negative distance", m)
			}
			if m.Dist(a, a) != 0 {
				t.Fatalf("%v: d(a,a) != 0", m)
			}
			if math.Abs(m.Dist(a, b)-m.Dist(b, a)) > 1e-12 {
				t.Fatalf("%v: asymmetric", m)
			}
			if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c)+1e-9 {
				t.Fatalf("%v: triangle inequality violated", m)
			}
		}
	}
}

func TestL2NeverExceedsLInfScaled(t *testing.T) {
	// L∞ ≤ L2 ≤ sqrt(d)·L∞ — the containment the ε-box filter relies on.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d := 1 + r.Intn(4)
		p, q := randPoint(r, d), randPoint(r, d)
		linf, l2 := LInf.Dist(p, q), L2.Dist(p, q)
		if linf > l2+1e-12 {
			t.Fatalf("LInf %v > L2 %v", linf, l2)
		}
		if l2 > math.Sqrt(float64(d))*linf+1e-9 {
			t.Fatalf("L2 %v > sqrt(d)*LInf %v", l2, math.Sqrt(float64(d))*linf)
		}
	}
}

func TestEpsBox(t *testing.T) {
	b := EpsBox(Point{1, 2}, 3)
	if !b.Min.Equal(Point{-2, -1}) || !b.Max.Equal(Point{4, 5}) {
		t.Fatalf("EpsBox = %v", b)
	}
	// ε-box ≡ L∞ ball: membership in the box equals LInf.Within.
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		p, q := randPoint(r, 2), randPoint(r, 2)
		eps := r.Float64() * 10
		if got, want := EpsBox(p, eps).Contains(q), LInf.Within(p, q, eps); got != want {
			t.Fatalf("box containment %v != LInf within %v for p=%v q=%v eps=%v", got, want, p, q, eps)
		}
	}
}

func TestRectOps(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{4, 4})
	b := NewRect(Point{2, 2}, Point{6, 6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("expected intersection")
	}
	i := a.Intersect(b)
	if !i.Min.Equal(Point{2, 2}) || !i.Max.Equal(Point{4, 4}) {
		t.Fatalf("Intersect = %v", i)
	}
	u := a.Union(b)
	if !u.Min.Equal(Point{0, 0}) || !u.Max.Equal(Point{6, 6}) {
		t.Fatalf("Union = %v", u)
	}
	far := NewRect(Point{10, 10}, Point{11, 11})
	if a.Intersects(far) {
		t.Fatal("unexpected intersection")
	}
	if !a.Intersect(far).IsEmpty() {
		t.Fatal("expected empty intersection")
	}
	if a.Area() != 16 || u.Area() != 36 {
		t.Fatalf("areas: %v %v", a.Area(), u.Area())
	}
	if a.Margin() != 8 {
		t.Fatalf("margin: %v", a.Margin())
	}
	// Touching boundaries intersect (matches the ≤ predicate).
	touch := NewRect(Point{4, 0}, Point{8, 4})
	if !a.Intersects(touch) {
		t.Fatal("touching rects must intersect")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	for _, c := range []struct {
		p  Point
		in bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true},
		{Point{2, 2}, true},
		{Point{2.0001, 1}, false},
		{Point{-0.0001, 1}, false},
	} {
		if got := r.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
	}
}

func TestRectExtend(t *testing.T) {
	r := PointRect(Point{1, 1})
	r.ExtendPoint(Point{3, 0})
	r.ExtendPoint(Point{-1, 2})
	if !r.Min.Equal(Point{-1, 0}) || !r.Max.Equal(Point{3, 2}) {
		t.Fatalf("Extend = %v", r)
	}
	s := NewRect(Point{0, 0}, Point{5, 5})
	r.Extend(s)
	if !r.Min.Equal(Point{-1, 0}) || !r.Max.Equal(Point{5, 5}) {
		t.Fatalf("Extend rect = %v", r)
	}
}

// Property via testing/quick: intersection is commutative and contained
// in both operands; union contains both operands.
func TestRectAlgebraQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		norm := func(a, b float64) (float64, float64) {
			if a > b {
				return b, a
			}
			return a, b
		}
		ax, bx = norm(ax, bx)
		ay, by = norm(ay, by)
		cx, dx = norm(cx, dx)
		cy, dy = norm(cy, dy)
		r := NewRect(Point{ax, ay}, Point{bx, by})
		s := NewRect(Point{cx, cy}, Point{dx, dy})
		i1, i2 := r.Intersect(s), s.Intersect(r)
		if i1.IsEmpty() != i2.IsEmpty() {
			return false
		}
		if !i1.IsEmpty() && (!r.ContainsRect(i1) || !s.ContainsRect(i1)) {
			return false
		}
		u := r.Union(s)
		return u.ContainsRect(r) && u.ContainsRect(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	r := NewRect(Point{0, 0}, Point{1, 1})
	s := r.Clone()
	s.Min[0] = -5
	if r.Min[0] != 0 {
		t.Fatal("Rect Clone aliases the original")
	}
}

func TestStringFormats(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("Point.String = %q", got)
	}
	if got := L2.String(); got != "L2" {
		t.Errorf("L2.String = %q", got)
	}
	if got := LInf.String(); got != "LINF" {
		t.Errorf("LInf.String = %q", got)
	}
	if got := NewRect(Point{0}, Point{1}).String(); got != "[(0); (1)]" {
		t.Errorf("Rect.String = %q", got)
	}
}
