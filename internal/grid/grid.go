package grid

import (
	"fmt"
	"math"

	"github.com/sgb-db/sgb/internal/geom"
)

// MaxDims bounds the supported dimensionality: cell keys are fixed-size
// arrays so they can be Go map keys without hashing collisions or
// per-key allocation. The paper evaluates d ∈ {2, 3}; callers fall back
// to the R-tree strategies above MaxDims.
const MaxDims = 4

// Cell addresses one grid cell by its integer coordinates
// (floor(x_i / cellSize)); unused trailing dimensions stay zero.
type Cell [MaxDims]int64

// Table is a uniform hash grid mapping occupied cells to id lists.
type Table struct {
	dims  int
	inv   float64 // 1 / cellSize
	cells map[Cell][]int32
}

// New returns an empty grid over dims-dimensional space with the given
// cell side length.
func New(dims int, cellSize float64) *Table {
	if dims < 1 || dims > MaxDims {
		panic(fmt.Sprintf("grid: dims %d outside [1, %d]", dims, MaxDims))
	}
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		panic("grid: cell size must be positive and finite")
	}
	return &Table{dims: dims, inv: 1 / cellSize, cells: make(map[Cell][]int32)}
}

// Dims returns the grid's dimensionality.
func (t *Table) Dims() int { return t.dims }

// CellOf returns the home cell of p (p must have the grid's
// dimensionality; extra coordinates are ignored).
func (t *Table) CellOf(p []float64) Cell {
	var c Cell
	for i := 0; i < t.dims; i++ {
		c[i] = int64(math.Floor(p[i] * t.inv))
	}
	return c
}

// RangeOf returns the inclusive cell range covered by rectangle r.
// Quantization is monotone, so every point of r has its home cell
// inside [lo, hi].
func (t *Table) RangeOf(r geom.Rect) (lo, hi Cell) {
	for i := 0; i < t.dims; i++ {
		lo[i] = int64(math.Floor(r.Min[i] * t.inv))
		hi[i] = int64(math.Floor(r.Max[i] * t.inv))
	}
	return lo, hi
}

// RangeOfBox returns the inclusive cell range covered by the box
// [center-radius, center+radius] without materializing the rectangle —
// the per-probe neighborhood computation of the finders.
func (t *Table) RangeOfBox(center []float64, radius float64) (lo, hi Cell) {
	for i := 0; i < t.dims; i++ {
		lo[i] = int64(math.Floor((center[i] - radius) * t.inv))
		hi[i] = int64(math.Floor((center[i] + radius) * t.inv))
	}
	return lo, hi
}

// Add registers id in cell c.
func (t *Table) Add(c Cell, id int32) {
	t.cells[c] = append(t.cells[c], id)
}

// Remove unregisters id from cell c (swap-delete; cell id order is not
// meaningful — consumers that need determinism sort collected ids).
// It is a no-op if id is not present.
func (t *Table) Remove(c Cell, id int32) {
	ids := t.cells[c]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			if len(ids) == 0 {
				delete(t.cells, c)
			} else {
				t.cells[c] = ids
			}
			return
		}
	}
}

// AddRange registers id in every cell of the inclusive range [lo, hi].
func (t *Table) AddRange(lo, hi Cell, id int32) {
	t.visitRange(lo, hi, func(c Cell) { t.Add(c, id) })
}

// RemoveRange unregisters id from every cell of [lo, hi].
func (t *Table) RemoveRange(lo, hi Cell, id int32) {
	t.visitRange(lo, hi, func(c Cell) { t.Remove(c, id) })
}

// visitRange walks the cell range with an odometer over the grid's
// dimensions.
func (t *Table) visitRange(lo, hi Cell, fn func(Cell)) {
	cur := lo
	for {
		fn(cur)
		i := 0
		for ; i < t.dims; i++ {
			if cur[i] < hi[i] {
				cur[i]++
				break
			}
			cur[i] = lo[i]
		}
		if i == t.dims {
			return
		}
	}
}

// Collect appends the ids registered in every cell of [lo, hi] to buf
// and returns it. Ids registered in several cells of the range appear
// once per cell; callers dedup after sorting.
func (t *Table) Collect(lo, hi Cell, buf []int32) []int32 {
	t.visitRange(lo, hi, func(c Cell) {
		buf = append(buf, t.cells[c]...)
	})
	return buf
}

// CollectCell appends the ids registered in cell c to buf.
func (t *Table) CollectCell(c Cell, buf []int32) []int32 {
	return append(buf, t.cells[c]...)
}

// OccupiedCells returns the number of non-empty cells.
func (t *Table) OccupiedCells() int { return len(t.cells) }

// Reset empties the grid, dropping all registrations.
func (t *Table) Reset() {
	clear(t.cells)
}
