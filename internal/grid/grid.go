package grid

import (
	"fmt"
	"math"

	"github.com/sgb-db/sgb/internal/geom"
)

// slabIDs is the id capacity of one slab. With the two header fields a
// slab is exactly 64 bytes — one cache line — so walking a cell's chain
// touches one line per slab.
const slabIDs = 14

// slab is one pooled chunk of a cell's id list. Cells chain slabs
// head-first: the head slab is partially filled (n in [1, slabIDs]),
// every later slab in the chain is full. Freed slabs are threaded onto
// the table's freelist through next, so steady-state Add/Remove churn
// recycles chunks instead of allocating.
type slab struct {
	next int32 // next slab in the chain (or freelist), -1 = none
	n    int32 // ids used in this slab
	ids  [slabIDs]int32
}

// slot is one entry of the open-addressed cell directory. A slot with
// off < 0 has never held a cell; a slot with off >= 0 and head < 0 is a
// dead cell (its id list emptied) that stays addressable until the next
// rebuild compacts it away — the tombstone-free deletion scheme.
type slot struct {
	hash uint64 // cached cell hash: skips coordinate compares on probe
	off  int32  // cell index into the coords arena, -1 = free slot
	head int32  // head slab of the id list, -1 = empty
}

// Cursor is per-caller scratch for the read-only probe entry points
// (CollectBox). The table itself holds no probe state, so any number of
// goroutines may probe one table concurrently as long as each brings
// its own Cursor — the parallel adjacency build does exactly that.
// The zero value is ready to use.
type Cursor struct {
	lo, hi, cur []int64
}

// Table is a uniform ε-cell hash grid over points of any
// dimensionality: a flat, open-addressed directory maps occupied cells
// (keyed by a 64-bit hash of their integer coordinates, verified
// against the coordinate arena on probe) to id lists stored in pooled
// slabs. Linear probing over a power-of-two capacity keeps lookups to
// one or two cache lines; the directory rebuilds — dropping cells whose
// lists emptied — when the load factor passes 3/4, so no tombstones are
// ever chased. Add, Remove, and Collect are allocation-free in steady
// state.
type Table struct {
	dims int
	inv  float64 // 1 / cellSize

	slots []slot
	mask  uint64
	used  int // slots holding a cell, live or dead
	live  int // cells with a non-empty id list

	coords []int64 // cell coordinates, dims per cell, indexed by slot.off
	slabs  []slab
	free   int32 // slab freelist head, -1 = empty

	cur []int64 // odometer scratch for the mutating range walks (d >= 4)
}

// minSlots is the initial directory capacity (power of two).
const minSlots = 64

// New returns an empty grid over dims-dimensional space with the given
// cell side length. Any dims >= 1 is supported.
func New(dims int, cellSize float64) *Table {
	return NewCap(dims, cellSize, 0)
}

// NewCap is New with a capacity hint: the directory is pre-sized for
// about cells occupied cells, so bulk loads skip the doubling rebuilds.
func NewCap(dims int, cellSize float64, cells int) *Table {
	if dims < 1 {
		panic(fmt.Sprintf("grid: dims %d must be >= 1", dims))
	}
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		panic("grid: cell size must be positive and finite")
	}
	slots := minSlots
	for slots*3 < cells*4 { // size for load factor <= 3/4 at the hint
		slots *= 2
	}
	t := &Table{
		dims:  dims,
		inv:   1 / cellSize,
		slots: make([]slot, slots),
		mask:  uint64(slots - 1),
		free:  -1,
		cur:   make([]int64, dims),
	}
	for i := range t.slots {
		t.slots[i].off = -1
	}
	return t
}

// Dims returns the grid's dimensionality.
func (t *Table) Dims() int { return t.dims }

// cellIdx quantizes one coordinate to its cell index. Quantization is
// monotone, so the cell range of a rectangle covers the home cell of
// every point inside it.
//
//sgb:allocfree
func (t *Table) cellIdx(x float64) int64 {
	return int64(math.Floor(x * t.inv))
}

// CellOf fills dst with the home cell of p and returns it (dst is
// reused when its capacity suffices).
func (t *Table) CellOf(p []float64, dst []int64) []int64 {
	dst = resizeCells(dst, t.dims)
	for i := 0; i < t.dims; i++ {
		dst[i] = t.cellIdx(p[i])
	}
	return dst
}

// RangeOf fills lo, hi with the inclusive cell range covered by
// rectangle r and returns them (reused when capacity suffices).
func (t *Table) RangeOf(r geom.Rect, lo, hi []int64) ([]int64, []int64) {
	lo, hi = resizeCells(lo, t.dims), resizeCells(hi, t.dims)
	for i := 0; i < t.dims; i++ {
		lo[i] = t.cellIdx(r.Min[i])
		hi[i] = t.cellIdx(r.Max[i])
	}
	return lo, hi
}

// RangeOfBox fills lo, hi with the inclusive cell range covered by the
// box [center-radius, center+radius] — the per-probe neighborhood of
// the finders — and returns them.
func (t *Table) RangeOfBox(center []float64, radius float64, lo, hi []int64) ([]int64, []int64) {
	lo, hi = resizeCells(lo, t.dims), resizeCells(hi, t.dims)
	for i := 0; i < t.dims; i++ {
		lo[i] = t.cellIdx(center[i] - radius)
		hi[i] = t.cellIdx(center[i] + radius)
	}
	return lo, hi
}

func resizeCells(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// Hashing: each coordinate is folded into a running 64-bit state with a
// multiply + splitmix64 finalizer. The per-axis chaining is what lets
// the specialized d = 2/3 range loops hoist the partial hash of the
// outer coordinates out of the inner loop.

const hashSeed = 0x9AE16A3B2F90404F
const hashMul = 0x9E3779B97F4A7C15

//sgb:allocfree
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

//sgb:allocfree
func hashNext(h uint64, c int64) uint64 {
	return mix64(h + uint64(c)*hashMul)
}

//sgb:allocfree
func (t *Table) hashCoords(c []int64) uint64 {
	h := uint64(hashSeed)
	for _, v := range c {
		h = hashNext(h, v)
	}
	return h
}

// findSlot locates the slot of cell c (pre-hashed as h), or -1. The
// directory always keeps free slots (load factor <= 3/4), so the linear
// probe terminates.
//
//sgb:allocfree
func (t *Table) findSlot(h uint64, c []int64) int32 {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.off < 0 {
			return -1
		}
		if s.hash == h && t.coordsEqual(s.off, c) {
			return int32(i)
		}
		i = (i + 1) & t.mask
	}
}

// findSlot2 / findSlot3 are findSlot with the coordinate compare
// unrolled, so the d = 2/3 probe loops never materialize a coordinate
// slice.
//
//sgb:allocfree
func (t *Table) findSlot2(h uint64, x, y int64) int32 {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.off < 0 {
			return -1
		}
		if s.hash == h {
			b := int(s.off) * 2
			if t.coords[b] == x && t.coords[b+1] == y {
				return int32(i)
			}
		}
		i = (i + 1) & t.mask
	}
}

//sgb:allocfree
func (t *Table) findSlot3(h uint64, x, y, z int64) int32 {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.off < 0 {
			return -1
		}
		if s.hash == h {
			b := int(s.off) * 3
			if t.coords[b] == x && t.coords[b+1] == y && t.coords[b+2] == z {
				return int32(i)
			}
		}
		i = (i + 1) & t.mask
	}
}

//sgb:allocfree
func (t *Table) coordsEqual(off int32, c []int64) bool {
	b := int(off) * t.dims
	for k, v := range c {
		if t.coords[b+k] != v {
			return false
		}
	}
	return true
}

// ensureSlot returns the slot of cell c, creating it if absent. A
// rebuild may run first to keep the load factor below 3/4.
func (t *Table) ensureSlot(h uint64, c []int64) int32 {
	if (t.used+1)*4 > len(t.slots)*3 {
		t.rebuild()
	}
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.off < 0 {
			off := int32(len(t.coords) / t.dims)
			t.coords = append(t.coords, c...)
			*s = slot{hash: h, off: off, head: -1}
			t.used++
			return int32(i)
		}
		if s.hash == h && t.coordsEqual(s.off, c) {
			return int32(i)
		}
		i = (i + 1) & t.mask
	}
}

// rebuild re-inserts every live cell into a fresh directory, compacting
// the coordinate arena and dropping dead cells — deletion happens here,
// in bulk, instead of through per-slot tombstones. Capacity doubles
// only when the live cells alone would keep the new directory more than
// half full.
func (t *Table) rebuild() {
	newCap := len(t.slots)
	for (t.live+1)*2 > newCap {
		newCap *= 2
	}
	slots := make([]slot, newCap)
	for i := range slots {
		slots[i].off = -1
	}
	coords := make([]int64, 0, t.live*t.dims)
	mask := uint64(newCap - 1)
	for _, s := range t.slots {
		if s.off < 0 || s.head < 0 {
			continue
		}
		off := int32(len(coords) / t.dims)
		b := int(s.off) * t.dims
		coords = append(coords, t.coords[b:b+t.dims]...)
		i := s.hash & mask
		for slots[i].off >= 0 {
			i = (i + 1) & mask
		}
		slots[i] = slot{hash: s.hash, off: off, head: s.head}
	}
	t.slots, t.coords, t.mask = slots, coords, mask
	t.used = t.live
}

// allocSlab pops the freelist or grows the slab arena.
func (t *Table) allocSlab() int32 {
	if t.free >= 0 {
		i := t.free
		t.free = t.slabs[i].next
		return i
	}
	t.slabs = append(t.slabs, slab{})
	return int32(len(t.slabs) - 1)
}

// addToCell appends id to the slot's id list.
func (t *Table) addToCell(si int32, id int32) {
	s := &t.slots[si]
	if s.head >= 0 {
		if sl := &t.slabs[s.head]; sl.n < slabIDs {
			sl.ids[sl.n] = id
			sl.n++
			return
		}
	} else {
		t.live++
	}
	ns := t.allocSlab()
	t.slabs[ns] = slab{next: s.head, n: 1}
	t.slabs[ns].ids[0] = id
	s.head = ns
}

// removeFromCell deletes one occurrence of id from the slot's id list
// (order within a cell is not meaningful, so the hole is filled with
// the most recently added id). No-op when id is absent.
func (t *Table) removeFromCell(si int32, id int32) {
	s := &t.slots[si]
	h := s.head
	if h < 0 {
		return
	}
	for cur := h; cur >= 0; cur = t.slabs[cur].next {
		sl := &t.slabs[cur]
		for k := sl.n - 1; k >= 0; k-- {
			if sl.ids[k] != id {
				continue
			}
			head := &t.slabs[h]
			sl.ids[k] = head.ids[head.n-1]
			head.n--
			if head.n == 0 {
				s.head = head.next
				head.next = t.free
				t.free = h
				if s.head < 0 {
					t.live--
				}
			}
			return
		}
	}
}

// appendCell appends the slot's ids to buf.
//
//sgb:allocfree
func (t *Table) appendCell(si int32, buf []int32) []int32 {
	for cur := t.slots[si].head; cur >= 0; {
		sl := &t.slabs[cur]
		buf = append(buf, sl.ids[:sl.n]...)
		cur = sl.next
	}
	return buf
}

// Add registers id in cell c.
func (t *Table) Add(c []int64, id int32) {
	t.addToCell(t.ensureSlot(t.hashCoords(c), c), id)
}

// AddPoint registers id in the home cell of p without the caller
// materializing the cell coordinates — the SGB-Any / adjacency-build
// registration path.
func (t *Table) AddPoint(p []float64, id int32) {
	switch t.dims {
	case 2:
		x, y := t.cellIdx(p[0]), t.cellIdx(p[1])
		t.cur[0], t.cur[1] = x, y
		t.addToCell(t.ensureSlot(hashNext(hashNext(hashSeed, x), y), t.cur), id)
	case 3:
		x, y, z := t.cellIdx(p[0]), t.cellIdx(p[1]), t.cellIdx(p[2])
		t.cur[0], t.cur[1], t.cur[2] = x, y, z
		t.addToCell(t.ensureSlot(hashNext(hashNext(hashNext(hashSeed, x), y), z), t.cur), id)
	default:
		t.addToCell(t.ensureSlot(t.hashCoords(t.CellOf(p, t.cur)), t.cur), id)
	}
}

// Remove unregisters id from cell c. It is a no-op if id is not
// present. A cell whose list empties turns dead and is dropped by the
// next rebuild or Reset; until then it answers probes with an empty
// list.
func (t *Table) Remove(c []int64, id int32) {
	if si := t.findSlot(t.hashCoords(c), c); si >= 0 {
		t.removeFromCell(si, id)
	}
}

// RemovePoint unregisters id from the home cell of p — the inverse of
// AddPoint, used by decremental SGB-Any maintenance when a point is
// deleted from the live set.
func (t *Table) RemovePoint(p []float64, id int32) {
	switch t.dims {
	case 1:
		x := t.cellIdx(p[0])
		if si := t.findSlot1(hashNext(hashSeed, x), x); si >= 0 {
			t.removeFromCell(si, id)
		}
	case 2:
		x, y := t.cellIdx(p[0]), t.cellIdx(p[1])
		if si := t.findSlot2(hashNext(hashNext(hashSeed, x), y), x, y); si >= 0 {
			t.removeFromCell(si, id)
		}
	case 3:
		x, y, z := t.cellIdx(p[0]), t.cellIdx(p[1]), t.cellIdx(p[2])
		if si := t.findSlot3(hashNext(hashNext(hashNext(hashSeed, x), y), z), x, y, z); si >= 0 {
			t.removeFromCell(si, id)
		}
	default:
		t.Remove(t.CellOf(p, t.cur), id)
	}
}

// AddRange registers id in every cell of the inclusive range [lo, hi].
// The range walk is inlined per dimensionality — single loop nest for
// d <= 3, an odometer for higher d — so registration makes no indirect
// calls.
func (t *Table) AddRange(lo, hi []int64, id int32) {
	switch t.dims {
	case 1:
		c := t.cur
		for x := lo[0]; x <= hi[0]; x++ {
			c[0] = x
			t.addToCell(t.ensureSlot(hashNext(hashSeed, x), c), id)
		}
	case 2:
		c := t.cur
		for x := lo[0]; x <= hi[0]; x++ {
			hx := hashNext(hashSeed, x)
			c[0] = x
			for y := lo[1]; y <= hi[1]; y++ {
				c[1] = y
				t.addToCell(t.ensureSlot(hashNext(hx, y), c), id)
			}
		}
	case 3:
		c := t.cur
		for x := lo[0]; x <= hi[0]; x++ {
			hx := hashNext(hashSeed, x)
			c[0] = x
			for y := lo[1]; y <= hi[1]; y++ {
				hy := hashNext(hx, y)
				c[1] = y
				for z := lo[2]; z <= hi[2]; z++ {
					c[2] = z
					t.addToCell(t.ensureSlot(hashNext(hy, z), c), id)
				}
			}
		}
	default:
		cur := t.cur
		copy(cur, lo)
		for {
			t.addToCell(t.ensureSlot(t.hashCoords(cur), cur), id)
			if !advance(cur, lo, hi) {
				return
			}
		}
	}
}

// RemoveRange unregisters id from every cell of [lo, hi].
func (t *Table) RemoveRange(lo, hi []int64, id int32) {
	switch t.dims {
	case 1:
		for x := lo[0]; x <= hi[0]; x++ {
			if si := t.findSlot1(hashNext(hashSeed, x), x); si >= 0 {
				t.removeFromCell(si, id)
			}
		}
	case 2:
		for x := lo[0]; x <= hi[0]; x++ {
			hx := hashNext(hashSeed, x)
			for y := lo[1]; y <= hi[1]; y++ {
				if si := t.findSlot2(hashNext(hx, y), x, y); si >= 0 {
					t.removeFromCell(si, id)
				}
			}
		}
	case 3:
		for x := lo[0]; x <= hi[0]; x++ {
			hx := hashNext(hashSeed, x)
			for y := lo[1]; y <= hi[1]; y++ {
				hy := hashNext(hx, y)
				for z := lo[2]; z <= hi[2]; z++ {
					if si := t.findSlot3(hashNext(hy, z), x, y, z); si >= 0 {
						t.removeFromCell(si, id)
					}
				}
			}
		}
	default:
		cur := t.cur
		copy(cur, lo)
		for {
			if si := t.findSlot(t.hashCoords(cur), cur); si >= 0 {
				t.removeFromCell(si, id)
			}
			if !advance(cur, lo, hi) {
				return
			}
		}
	}
}

// advance steps an odometer cursor through the inclusive range [lo, hi],
// returning false after the last cell.
func advance(cur, lo, hi []int64) bool {
	for i := range cur {
		if cur[i] < hi[i] {
			cur[i]++
			return true
		}
		cur[i] = lo[i]
	}
	return false
}

// Collect appends the ids registered in every cell of [lo, hi] to buf
// and returns it. Ids registered in several cells of the range appear
// once per cell; callers needing uniqueness dedup. Collect uses the
// table's own odometer scratch for d >= 4 — concurrent probers use
// CollectBox with private Cursors instead.
func (t *Table) Collect(lo, hi []int64, buf []int32) []int32 {
	return t.collectRange(lo, hi, t.cur, buf)
}

// CollectBox appends the ids registered in the cells covered by the box
// [center-radius, center+radius] — the probe neighborhood — to buf.
// The d = 1/2/3 cases run as plain loop nests over scalar coordinates;
// higher dimensionalities walk an odometer over cur's scratch, so
// concurrent probes of a read-only table stay race-free as long as each
// goroutine brings its own Cursor.
func (t *Table) CollectBox(cur *Cursor, center []float64, radius float64, buf []int32) []int32 {
	switch t.dims {
	case 1:
		x0, x1 := t.cellIdx(center[0]-radius), t.cellIdx(center[0]+radius)
		for x := x0; x <= x1; x++ {
			if si := t.findSlot1(hashNext(hashSeed, x), x); si >= 0 {
				buf = t.appendCell(si, buf)
			}
		}
		return buf
	case 2:
		x0, x1 := t.cellIdx(center[0]-radius), t.cellIdx(center[0]+radius)
		y0, y1 := t.cellIdx(center[1]-radius), t.cellIdx(center[1]+radius)
		for x := x0; x <= x1; x++ {
			hx := hashNext(hashSeed, x)
			for y := y0; y <= y1; y++ {
				if si := t.findSlot2(hashNext(hx, y), x, y); si >= 0 {
					buf = t.appendCell(si, buf)
				}
			}
		}
		return buf
	case 3:
		x0, x1 := t.cellIdx(center[0]-radius), t.cellIdx(center[0]+radius)
		y0, y1 := t.cellIdx(center[1]-radius), t.cellIdx(center[1]+radius)
		z0, z1 := t.cellIdx(center[2]-radius), t.cellIdx(center[2]+radius)
		for x := x0; x <= x1; x++ {
			hx := hashNext(hashSeed, x)
			for y := y0; y <= y1; y++ {
				hy := hashNext(hx, y)
				for z := z0; z <= z1; z++ {
					if si := t.findSlot3(hashNext(hy, z), x, y, z); si >= 0 {
						buf = t.appendCell(si, buf)
					}
				}
			}
		}
		return buf
	default:
		cur.lo, cur.hi = t.RangeOfBox(center, radius, cur.lo, cur.hi)
		cur.cur = resizeCells(cur.cur, t.dims)
		return t.collectRange(cur.lo, cur.hi, cur.cur, buf)
	}
}

// findSlot1 is the one-dimensional findSlot.
//
//sgb:allocfree
func (t *Table) findSlot1(h uint64, x int64) int32 {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.off < 0 {
			return -1
		}
		if s.hash == h && t.coords[s.off] == x {
			return int32(i)
		}
		i = (i + 1) & t.mask
	}
}

// collectRange is the range walk behind Collect and the generic-d arm
// of CollectBox, with the odometer cursor supplied by the caller.
func (t *Table) collectRange(lo, hi, cur []int64, buf []int32) []int32 {
	switch t.dims {
	case 1:
		for x := lo[0]; x <= hi[0]; x++ {
			if si := t.findSlot1(hashNext(hashSeed, x), x); si >= 0 {
				buf = t.appendCell(si, buf)
			}
		}
	case 2:
		for x := lo[0]; x <= hi[0]; x++ {
			hx := hashNext(hashSeed, x)
			for y := lo[1]; y <= hi[1]; y++ {
				if si := t.findSlot2(hashNext(hx, y), x, y); si >= 0 {
					buf = t.appendCell(si, buf)
				}
			}
		}
	case 3:
		for x := lo[0]; x <= hi[0]; x++ {
			hx := hashNext(hashSeed, x)
			for y := lo[1]; y <= hi[1]; y++ {
				hy := hashNext(hx, y)
				for z := lo[2]; z <= hi[2]; z++ {
					if si := t.findSlot3(hashNext(hy, z), x, y, z); si >= 0 {
						buf = t.appendCell(si, buf)
					}
				}
			}
		}
	default:
		copy(cur, lo)
		for {
			if si := t.findSlot(t.hashCoords(cur), cur); si >= 0 {
				buf = t.appendCell(si, buf)
			}
			if !advance(cur, lo, hi) {
				break
			}
		}
	}
	return buf
}

// CollectCell appends the ids registered in cell c to buf.
func (t *Table) CollectCell(c []int64, buf []int32) []int32 {
	if si := t.findSlot(t.hashCoords(c), c); si >= 0 {
		buf = t.appendCell(si, buf)
	}
	return buf
}

// CollectPointCell appends the ids registered in the home cell of p to
// buf — the single-cell probe of the SGB-All JOIN-ANY path.
func (t *Table) CollectPointCell(p []float64, buf []int32) []int32 {
	switch t.dims {
	case 1:
		x := t.cellIdx(p[0])
		if si := t.findSlot1(hashNext(hashSeed, x), x); si >= 0 {
			buf = t.appendCell(si, buf)
		}
	case 2:
		x, y := t.cellIdx(p[0]), t.cellIdx(p[1])
		if si := t.findSlot2(hashNext(hashNext(hashSeed, x), y), x, y); si >= 0 {
			buf = t.appendCell(si, buf)
		}
	case 3:
		x, y, z := t.cellIdx(p[0]), t.cellIdx(p[1]), t.cellIdx(p[2])
		if si := t.findSlot3(hashNext(hashNext(hashNext(hashSeed, x), y), z), x, y, z); si >= 0 {
			buf = t.appendCell(si, buf)
		}
	default:
		c := t.CellOf(p, t.cur)
		if si := t.findSlot(t.hashCoords(c), c); si >= 0 {
			buf = t.appendCell(si, buf)
		}
	}
	return buf
}

// OccupiedCells returns the number of cells with a non-empty id list.
func (t *Table) OccupiedCells() int { return t.live }

// Reset empties the grid, dropping all registrations but keeping the
// directory, arena, and slab capacity for reuse.
func (t *Table) Reset() {
	for i := range t.slots {
		t.slots[i].off = -1
	}
	t.used, t.live = 0, 0
	t.coords = t.coords[:0]
	t.slabs = t.slabs[:0]
	t.free = -1
}
