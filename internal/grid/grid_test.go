package grid

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

func TestCellOfQuantization(t *testing.T) {
	g := New(2, 0.5)
	cases := []struct {
		p    []float64
		want Cell
	}{
		{[]float64{0, 0}, Cell{0, 0}},
		{[]float64{0.49, 0.99}, Cell{0, 1}},
		{[]float64{0.5, 1.0}, Cell{1, 2}},
		{[]float64{-0.01, -0.5}, Cell{-1, -1}},
		{[]float64{-0.51, 2.3}, Cell{-2, 4}},
	}
	for _, c := range cases {
		if got := g.CellOf(c.p); got != c.want {
			t.Errorf("CellOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAddRemoveCollect(t *testing.T) {
	g := New(2, 1)
	c := Cell{3, 4}
	g.Add(c, 1)
	g.Add(c, 2)
	g.Add(Cell{3, 5}, 3)
	got := g.CollectCell(c, nil)
	slices.Sort(got)
	if !slices.Equal(got, []int32{1, 2}) {
		t.Fatalf("CollectCell = %v", got)
	}
	g.Remove(c, 1)
	if got := g.CollectCell(c, nil); !slices.Equal(got, []int32{2}) {
		t.Fatalf("after Remove: %v", got)
	}
	g.Remove(c, 2)
	if g.OccupiedCells() != 1 {
		t.Fatalf("empty cell not pruned: %d occupied", g.OccupiedCells())
	}
	g.Remove(c, 99) // absent id: no-op
}

func TestRangeRegistration(t *testing.T) {
	g := New(2, 1)
	// A 2ε-sided rectangle covers up to 3 cells per axis.
	r := geom.NewRect(geom.Point{0.5, 0.5}, geom.Point{2.5, 2.5})
	lo, hi := g.RangeOf(r)
	if lo != (Cell{0, 0}) || hi != (Cell{2, 2}) {
		t.Fatalf("RangeOf = %v..%v", lo, hi)
	}
	g.AddRange(lo, hi, 7)
	if g.OccupiedCells() != 9 {
		t.Fatalf("AddRange registered %d cells, want 9", g.OccupiedCells())
	}
	got := g.Collect(lo, hi, nil)
	if len(got) != 9 {
		t.Fatalf("Collect found %d entries, want 9", len(got))
	}
	g.RemoveRange(lo, hi, 7)
	if g.OccupiedCells() != 0 {
		t.Fatalf("RemoveRange left %d cells", g.OccupiedCells())
	}
}

// TestNeighborhoodCoversEps is the correctness property the finders
// rely on: for random points p, q with δ∞(p,q) ≤ ε, q's home cell lies
// inside the cell range of [p-ε, p+ε].
func TestNeighborhoodCoversEps(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4} {
		for trial := 0; trial < 2000; trial++ {
			eps := math.Ldexp(r.Float64()+0.1, r.Intn(8)-4) // spread of scales
			g := New(d, eps)
			p := make([]float64, d)
			q := make([]float64, d)
			for i := 0; i < d; i++ {
				p[i] = r.Float64()*200 - 100
				// q within eps of p on every axis (inclusive boundary
				// sometimes, via exact offsets of ±eps).
				switch r.Intn(4) {
				case 0:
					q[i] = p[i] - eps
				case 1:
					q[i] = p[i] + eps
				default:
					q[i] = p[i] + (r.Float64()*2-1)*eps
				}
			}
			within := true
			for i := 0; i < d; i++ {
				if math.Abs(p[i]-q[i]) > eps {
					within = false
				}
			}
			if !within {
				continue // FP rounding pushed the offset outside ε
			}
			lo, hi := g.RangeOfBox(p, eps)
			c := g.CellOf(q)
			for i := 0; i < d; i++ {
				if c[i] < lo[i] || c[i] > hi[i] {
					t.Fatalf("d=%d eps=%v: cell %v of %v outside range %v..%v of %v",
						d, eps, c, q, lo, hi, p)
				}
			}
		}
	}
}

// TestRangeOfMonotone: any point inside a rectangle maps to a cell
// inside the rectangle's range (the registration invariant).
func TestRangeOfMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		g := New(3, 0.25+r.Float64())
		min := geom.Point{r.Float64()*20 - 10, r.Float64()*20 - 10, r.Float64()*20 - 10}
		max := min.Clone()
		for i := range max {
			max[i] += r.Float64() * 2
		}
		rect := geom.NewRect(min, max)
		lo, hi := g.RangeOf(rect)
		p := make([]float64, 3)
		for i := range p {
			p[i] = min[i] + r.Float64()*(max[i]-min[i])
		}
		c := g.CellOf(p)
		for i := 0; i < 3; i++ {
			if c[i] < lo[i] || c[i] > hi[i] {
				t.Fatalf("point %v of %v quantized outside %v..%v", p, rect, lo, hi)
			}
		}
	}
}

func TestReset(t *testing.T) {
	g := New(1, 1)
	g.Add(Cell{1}, 1)
	g.Add(Cell{2}, 2)
	g.Reset()
	if g.OccupiedCells() != 0 {
		t.Fatal("Reset left occupied cells")
	}
	if got := g.CollectCell(Cell{1}, nil); len(got) != 0 {
		t.Fatalf("Reset left ids: %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(MaxDims+1, 1) },
		func() { New(2, 0) },
		func() { New(2, math.Inf(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
