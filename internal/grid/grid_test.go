package grid

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

func TestCellOfQuantization(t *testing.T) {
	g := New(2, 0.5)
	cases := []struct {
		p    []float64
		want []int64
	}{
		{[]float64{0, 0}, []int64{0, 0}},
		{[]float64{0.49, 0.99}, []int64{0, 1}},
		{[]float64{0.5, 1.0}, []int64{1, 2}},
		{[]float64{-0.01, -0.5}, []int64{-1, -1}},
		{[]float64{-0.51, 2.3}, []int64{-2, 4}},
	}
	for _, c := range cases {
		if got := g.CellOf(c.p, nil); !slices.Equal(got, c.want) {
			t.Errorf("CellOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAddRemoveCollect(t *testing.T) {
	g := New(2, 1)
	c := []int64{3, 4}
	g.Add(c, 1)
	g.Add(c, 2)
	g.Add([]int64{3, 5}, 3)
	got := g.CollectCell(c, nil)
	slices.Sort(got)
	if !slices.Equal(got, []int32{1, 2}) {
		t.Fatalf("CollectCell = %v", got)
	}
	g.Remove(c, 1)
	if got := g.CollectCell(c, nil); !slices.Equal(got, []int32{2}) {
		t.Fatalf("after Remove: %v", got)
	}
	g.Remove(c, 2)
	if g.OccupiedCells() != 1 {
		t.Fatalf("empty cell not pruned: %d occupied", g.OccupiedCells())
	}
	g.Remove(c, 99) // absent id: no-op
}

func TestRangeRegistration(t *testing.T) {
	g := New(2, 1)
	// A 2ε-sided rectangle covers up to 3 cells per axis.
	r := geom.NewRect(geom.Point{0.5, 0.5}, geom.Point{2.5, 2.5})
	lo, hi := g.RangeOf(r, nil, nil)
	if !slices.Equal(lo, []int64{0, 0}) || !slices.Equal(hi, []int64{2, 2}) {
		t.Fatalf("RangeOf = %v..%v", lo, hi)
	}
	g.AddRange(lo, hi, 7)
	if g.OccupiedCells() != 9 {
		t.Fatalf("AddRange registered %d cells, want 9", g.OccupiedCells())
	}
	got := g.Collect(lo, hi, nil)
	if len(got) != 9 {
		t.Fatalf("Collect found %d entries, want 9", len(got))
	}
	g.RemoveRange(lo, hi, 7)
	if g.OccupiedCells() != 0 {
		t.Fatalf("RemoveRange left %d cells", g.OccupiedCells())
	}
}

// TestNeighborhoodCoversEps is the correctness property the finders
// rely on: for random points p, q with δ∞(p,q) ≤ ε, q's home cell lies
// inside the cell range of [p-ε, p+ε]. Now exercised well beyond the
// old MaxDims = 4 cap.
func TestNeighborhoodCoversEps(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 8} {
		for trial := 0; trial < 1000; trial++ {
			eps := math.Ldexp(r.Float64()+0.1, r.Intn(8)-4) // spread of scales
			g := New(d, eps)
			p := make([]float64, d)
			q := make([]float64, d)
			for i := 0; i < d; i++ {
				p[i] = r.Float64()*200 - 100
				// q within eps of p on every axis (inclusive boundary
				// sometimes, via exact offsets of ±eps).
				switch r.Intn(4) {
				case 0:
					q[i] = p[i] - eps
				case 1:
					q[i] = p[i] + eps
				default:
					q[i] = p[i] + (r.Float64()*2-1)*eps
				}
			}
			within := true
			for i := 0; i < d; i++ {
				if math.Abs(p[i]-q[i]) > eps {
					within = false
				}
			}
			if !within {
				continue // FP rounding pushed the offset outside ε
			}
			lo, hi := g.RangeOfBox(p, eps, nil, nil)
			c := g.CellOf(q, nil)
			for i := 0; i < d; i++ {
				if c[i] < lo[i] || c[i] > hi[i] {
					t.Fatalf("d=%d eps=%v: cell %v of %v outside range %v..%v of %v",
						d, eps, c, q, lo, hi, p)
				}
			}
		}
	}
}

// TestRangeOfMonotone: any point inside a rectangle maps to a cell
// inside the rectangle's range (the registration invariant).
func TestRangeOfMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var lo, hi, c []int64
	for trial := 0; trial < 2000; trial++ {
		g := New(3, 0.25+r.Float64())
		min := geom.Point{r.Float64()*20 - 10, r.Float64()*20 - 10, r.Float64()*20 - 10}
		max := min.Clone()
		for i := range max {
			max[i] += r.Float64() * 2
		}
		rect := geom.NewRect(min, max)
		lo, hi = g.RangeOf(rect, lo, hi)
		p := make([]float64, 3)
		for i := range p {
			p[i] = min[i] + r.Float64()*(max[i]-min[i])
		}
		c = g.CellOf(p, c)
		for i := 0; i < 3; i++ {
			if c[i] < lo[i] || c[i] > hi[i] {
				t.Fatalf("point %v of %v quantized outside %v..%v", p, rect, lo, hi)
			}
		}
	}
}

func TestReset(t *testing.T) {
	g := New(1, 1)
	g.Add([]int64{1}, 1)
	g.Add([]int64{2}, 2)
	g.Reset()
	if g.OccupiedCells() != 0 {
		t.Fatal("Reset left occupied cells")
	}
	if got := g.CollectCell([]int64{1}, nil); len(got) != 0 {
		t.Fatalf("Reset left ids: %v", got)
	}
	// The table must stay fully usable after Reset.
	g.Add([]int64{1}, 9)
	if got := g.CollectCell([]int64{1}, nil); !slices.Equal(got, []int32{9}) {
		t.Fatalf("post-Reset Add lost: %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(2, 0) },
		func() { New(2, math.Inf(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	// Dimensionalities beyond the old cap are now valid.
	if g := New(12, 1); g.Dims() != 12 {
		t.Fatal("high-dimensional table rejected")
	}
}

// refGrid is the trivially correct reference the open-addressed table
// is cross-checked against: a Go map from stringified coordinates to id
// multisets.
type refGrid map[string][]int32

func refKey(c []int64) string { return fmt.Sprint(c) }

func (r refGrid) add(c []int64, id int32) { r[refKey(c)] = append(r[refKey(c)], id) }

func (r refGrid) remove(c []int64, id int32) {
	k := refKey(c)
	ids := r[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			if len(ids) == 0 {
				delete(r, k)
			} else {
				r[k] = ids
			}
			return
		}
	}
}

func sortedCopy(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	slices.Sort(out)
	return out
}

// TestCrossCheckAgainstMapReference drives randomized Add / Remove /
// AddRange / RemoveRange / Collect / Reset traffic over a tiny
// coordinate universe — forcing hash-slot collisions, dead cells, and
// load-factor rebuilds — and demands multiset-identical Collect results
// and OccupiedCells counts against the map reference at every probe.
func TestCrossCheckAgainstMapReference(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(100 + d)))
			g := New(d, 1)
			ref := refGrid{}
			randCell := func() []int64 {
				c := make([]int64, d)
				for i := range c {
					c[i] = int64(r.Intn(5) - 2) // 5^d universe: dense collisions at low d
				}
				return c
			}
			randRange := func() (lo, hi []int64) {
				lo, hi = randCell(), make([]int64, d)
				for i := range hi {
					hi[i] = lo[i] + int64(r.Intn(3))
				}
				return lo, hi
			}
			type reg struct {
				lo, hi []int64
				id     int32
			}
			var ranges []reg
			for op := 0; op < 20000; op++ {
				switch r.Intn(10) {
				case 0, 1, 2:
					c, id := randCell(), int32(r.Intn(50))
					g.Add(c, id)
					ref.add(c, id)
				case 3:
					c, id := randCell(), int32(r.Intn(50))
					g.Remove(c, id)
					ref.remove(c, id)
				case 4, 5:
					lo, hi := randRange()
					id := int32(r.Intn(50))
					g.AddRange(lo, hi, id)
					cur := append([]int64(nil), lo...)
					for {
						ref.add(cur, id)
						if !advance(cur, lo, hi) {
							break
						}
					}
					ranges = append(ranges, reg{lo, hi, id})
				case 6:
					if len(ranges) == 0 {
						continue
					}
					k := r.Intn(len(ranges))
					rg := ranges[k]
					ranges[k] = ranges[len(ranges)-1]
					ranges = ranges[:len(ranges)-1]
					g.RemoveRange(rg.lo, rg.hi, rg.id)
					cur := append([]int64(nil), rg.lo...)
					for {
						ref.remove(cur, rg.id)
						if !advance(cur, rg.lo, rg.hi) {
							break
						}
					}
				case 7:
					if r.Intn(200) == 0 {
						g.Reset()
						clear(ref)
						ranges = ranges[:0]
					}
				default:
					// Probe: a random cell and a random range.
					c := randCell()
					if got, want := sortedCopy(g.CollectCell(c, nil)), sortedCopy(ref[refKey(c)]); !slices.Equal(got, want) {
						t.Fatalf("op %d: CollectCell(%v) = %v, want %v", op, c, got, want)
					}
					lo, hi := randRange()
					var want []int32
					cur := append([]int64(nil), lo...)
					for {
						want = append(want, ref[refKey(cur)]...)
						if !advance(cur, lo, hi) {
							break
						}
					}
					if got := sortedCopy(g.Collect(lo, hi, nil)); !slices.Equal(got, sortedCopy(want)) {
						t.Fatalf("op %d: Collect(%v..%v) = %v, want %v", op, lo, hi, got, want)
					}
				}
				if g.OccupiedCells() != len(ref) {
					t.Fatalf("op %d: OccupiedCells = %d, reference has %d", op, g.OccupiedCells(), len(ref))
				}
			}
		})
	}
}

// TestCollectBoxMatchesCollect: the scalar-specialized probe and the
// range walk agree on random point sets at every dimensionality.
func TestCollectBoxMatchesCollect(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, d := range []int{1, 2, 3, 4, 6} {
		g := New(d, 0.5)
		pts := make([][]float64, 400)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				p[j] = r.Float64()*6 - 3
			}
			pts[i] = p
			g.AddPoint(p, int32(i))
		}
		var cur Cursor
		var lo, hi []int64
		for trial := 0; trial < 200; trial++ {
			center := pts[r.Intn(len(pts))]
			radius := r.Float64()
			got := sortedCopy(g.CollectBox(&cur, center, radius, nil))
			lo, hi = g.RangeOfBox(center, radius, lo, hi)
			want := sortedCopy(g.Collect(lo, hi, nil))
			if !slices.Equal(got, want) {
				t.Fatalf("d=%d: CollectBox %v != Collect %v", d, got, want)
			}
		}
	}
}

// TestRebuildGrowth: a bulk load far past the initial directory
// capacity must keep every registration addressable (the doubling
// rebuild path), and a NewCap-hinted table must agree.
func TestRebuildGrowth(t *testing.T) {
	n := 20000
	g := New(2, 1)
	h := NewCap(2, 1, n)
	for i := 0; i < n; i++ {
		c := []int64{int64(i % 199), int64(i / 199)}
		g.Add(c, int32(i))
		h.Add(c, int32(i))
	}
	if g.OccupiedCells() != h.OccupiedCells() {
		t.Fatalf("occupied mismatch: %d vs %d", g.OccupiedCells(), h.OccupiedCells())
	}
	for i := 0; i < n; i += 37 {
		c := []int64{int64(i % 199), int64(i / 199)}
		got := g.CollectCell(c, nil)
		if !slices.Contains(got, int32(i)) {
			t.Fatalf("id %d lost after growth rebuilds (cell %v has %v)", i, c, got)
		}
	}
}

// TestDeadCellCompaction: heavy add/remove churn over a shifting window
// of cells must not grow the directory without bound — dead cells are
// dropped by the load-factor rebuild, so the slot count stays within a
// small multiple of the live cell count.
func TestDeadCellCompaction(t *testing.T) {
	g := New(1, 1)
	for i := 0; i < 100000; i++ {
		g.Add([]int64{int64(i)}, int32(i))
		if i >= 16 {
			g.Remove([]int64{int64(i - 16)}, int32(i-16))
		}
	}
	if g.OccupiedCells() != 16 {
		t.Fatalf("live cells = %d, want 16", g.OccupiedCells())
	}
	if len(g.slots) > 1024 {
		t.Fatalf("directory grew to %d slots for 16 live cells: dead cells not compacted", len(g.slots))
	}
}

// TestSlabChainLongCell: one cell holding far more ids than a single
// slab, including interleaved removals from chain interiors.
func TestSlabChainLongCell(t *testing.T) {
	g := New(2, 1)
	c := []int64{0, 0}
	const n = 10 * slabIDs
	for i := 0; i < n; i++ {
		g.Add(c, int32(i))
	}
	// Remove every third id (from chain interiors as well as the head).
	want := []int32{}
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			g.Remove(c, int32(i))
		} else {
			want = append(want, int32(i))
		}
	}
	got := sortedCopy(g.CollectCell(c, nil))
	if !slices.Equal(got, want) {
		t.Fatalf("after chained removals: got %d ids, want %d (%v)", len(got), len(want), got)
	}
}

// TestBulkLoadMatchesIncremental checks that a bulk-loaded table
// answers probes with exactly the id sets of an AddPoint-built one —
// the Morton-major layout is a performance property, not a semantic
// one — and that it stays mutable afterwards.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 5} {
		n := 400
		ps := geom.NewPointSetCap(d, n)
		for i := 0; i < n; i++ {
			p := ps.Extend()
			for j := range p {
				p[j] = r.Float64()*8 - 4
			}
		}
		bulk := BulkLoad(ps, 0.5)
		inc := New(d, 0.5)
		for i := 0; i < n; i++ {
			inc.AddPoint(ps.At(i), int32(i))
		}
		if bulk.OccupiedCells() != inc.OccupiedCells() {
			t.Fatalf("d=%d: bulk %d cells vs incremental %d", d, bulk.OccupiedCells(), inc.OccupiedCells())
		}
		var cur Cursor
		var b1, b2 []int32
		for i := 0; i < n; i++ {
			b1 = bulk.CollectBox(&cur, ps.At(i), 0.5, b1[:0])
			b2 = inc.CollectBox(&cur, ps.At(i), 0.5, b2[:0])
			slices.Sort(b1)
			slices.Sort(b2)
			if !slices.Equal(b1, b2) {
				t.Fatalf("d=%d probe %d: bulk %v vs incremental %v", d, i, b1, b2)
			}
		}
		// Mutability after bulk load: remove half, re-probe.
		for i := 0; i < n; i += 2 {
			bulk.RemovePoint(ps.At(i), int32(i))
			inc.RemovePoint(ps.At(i), int32(i))
		}
		for i := 1; i < n; i += 7 {
			b1 = bulk.CollectBox(&cur, ps.At(i), 0.5, b1[:0])
			b2 = inc.CollectBox(&cur, ps.At(i), 0.5, b2[:0])
			slices.Sort(b1)
			slices.Sort(b2)
			if !slices.Equal(b1, b2) {
				t.Fatalf("d=%d post-remove probe %d: bulk %v vs incremental %v", d, i, b1, b2)
			}
		}
	}
}
