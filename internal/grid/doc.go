// Package grid implements a uniform hash grid with ε-sized cells — the
// textbook probe structure for fixed-radius similarity queries. Space
// is partitioned into axis-aligned cubes of side cellSize (the
// operators use cellSize = ε); each occupied cell maps to the ids
// registered in it. Everything within ε of a point then lies in the
// 3^d cell neighborhood of its home cell, so a probe is a handful of
// map lookups over contiguous id slices instead of an R-tree descent.
// This is the structure behind the GridIndex strategy (internal/core),
// the fastest on the paper's low-dimensional workloads (Section 8's
// d ∈ {2, 3}).
//
// The grid is deliberately minimal: int32 ids (the operators index
// input positions and group ids, both bounded by the input size), cell
// keys as fixed-size int64 coordinate arrays, and no concurrency.
// Registration supports rectangles spanning several cells (SGB-All
// registers each group's ε-All bounding rectangle, whose sides are at
// most 2ε, in every cell it covers — at most 3^d cells).
//
// Invariants:
//
//   - Quantization is monotone (floor(x/cellSize)), so the cell range
//     of a rectangle covers the home cell of every point inside it —
//     probes may over-approximate but never miss.
//   - MaxDims (4) bounds the dimensionality: cell keys are fixed-size
//     arrays usable as Go map keys without hashing collisions or
//     per-key allocation. Callers fall back to internal/rtree above.
//   - Id order within a cell is not meaningful (Remove swap-deletes);
//     consumers needing determinism sort collected ids, which the
//     SGB-All grid finder exploits as its dedup key.
package grid
