// Package grid implements a uniform hash grid with ε-sized cells — the
// textbook probe structure for fixed-radius similarity queries. Space
// is partitioned into axis-aligned cubes of side cellSize (the
// operators use cellSize = ε); each occupied cell maps to the ids
// registered in it. Everything within ε of a point then lies in the
// 3^d cell neighborhood of its home cell, so a probe is a handful of
// directory lookups over contiguous id slabs instead of an R-tree
// descent. This is the structure behind the GridIndex strategy
// (internal/core), the fastest on the paper's workloads.
//
// Layout. The cell directory is a flat, open-addressed hash table:
// cells are keyed by a 64-bit hash of their integer coordinates
// (linear probing over a power-of-two capacity, hash cached per slot,
// coordinates verified against a flat arena on probe), so any
// dimensionality is supported — there is no fixed-size-key cap, and no
// R-tree fallback above d = 4 anymore. Per-cell id lists live in
// pooled 64-byte slabs (a chunked arena threaded through a freelist),
// so Add/Remove/Collect are allocation-free in steady state. Deletion
// is tombstone-free: a cell whose list empties merely turns dead and
// is dropped in bulk when the load factor passing 3/4 triggers a
// rebuild. The range walks (Collect, CollectBox, AddRange,
// RemoveRange) are inlined per dimensionality — plain loop nests with
// hoisted partial hashes for d = 1/2/3, an odometer for higher d — so
// the hottest loops make no indirect calls.
//
// Invariants:
//
//   - Quantization is monotone (floor(x/cellSize)), so the cell range
//     of a rectangle covers the home cell of every point inside it —
//     probes may over-approximate but never miss.
//   - Id order within a cell is not meaningful (Remove back-fills the
//     hole from the head slab); consumers that need determinism dedup
//     and sort collected ids, as the SGB-All grid finder does.
//   - Read-only probes (CollectBox) are safe from many goroutines at
//     once when each brings its own Cursor; mutations are
//     single-threaded.
package grid
