package grid

import (
	"slices"

	"github.com/sgb-db/sgb/internal/geom"
)

// BulkLoad builds a table over every point of ps (ids 0..Len-1, home
// cells) with a Morton-major slab layout: points are registered in
// Z-order of their home cells, so each cell's id list occupies a
// contiguous run of slabs in the arena and spatially adjacent cells
// sit in adjacent runs. Probe loops walk cell chains in the order a
// box visit touches cells, so chain-following stays within hardware
// prefetch distance — the point of bulk loading over per-point
// AddPoint, whose interleaved allocation scatters a cell's chain
// across the arena. The table is fully mutable afterwards; later
// Add/Remove churn degrades the layout gracefully.
func BulkLoad(ps *geom.PointSet, cellSize float64) *Table {
	n := ps.Len()
	t := NewCap(ps.Dims(), cellSize, n/2)
	if n == 0 {
		return t
	}
	d := ps.Dims()

	// Home-cell coordinates per point, and the per-axis minimum for the
	// Morton bias (codes interleave unsigned offsets from the corner).
	cells := make([]int64, n*d)
	mins := make([]int64, d)
	for k := range mins {
		mins[k] = int64(1) << 62
	}
	for i := 0; i < n; i++ {
		p := ps.At(i)
		row := cells[i*d : (i+1)*d]
		for k := 0; k < d; k++ {
			c := t.cellIdx(p[k])
			row[k] = c
			if c < mins[k] {
				mins[k] = c
			}
		}
	}

	// Sort ids by the Morton code of their home cell. Equal codes (same
	// cell — the common case that matters) stay grouped; the sort is by
	// (code, id) so the layout is deterministic.
	bits := 64 / d
	mask := uint64(1)<<bits - 1
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		row := cells[i*d : (i+1)*d]
		var code uint64
		for k := 0; k < d; k++ {
			v := uint64(row[k]-mins[k]) & mask
			for b := 0; b < bits; b++ {
				code |= ((v >> b) & 1) << (b*d + k)
			}
		}
		keys[i] = code
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		ka, kb := keys[a], keys[b]
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		default:
			return int(a) - int(b)
		}
	})

	// Register in Z-order: all ids of one cell arrive consecutively, and
	// the arena has no freelist yet, so every chain is a contiguous
	// (descending, head-first) slab run.
	for _, id := range order {
		t.AddPoint(ps.At(int(id)), id)
	}
	return t
}
