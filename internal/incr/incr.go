package incr

import (
	"errors"
	"fmt"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// Semantics selects which similarity group-by operator an Incremental
// maintains.
type Semantics int

const (
	// All maintains SGB-All (DISTANCE-TO-ALL clique groups with
	// ON-OVERLAP arbitration).
	All Semantics = iota
	// Any maintains SGB-Any (DISTANCE-TO-ANY connected components).
	Any
)

// String returns the SQL clause spelling of the semantics.
func (s Semantics) String() string {
	switch s {
	case All:
		return "DISTANCE-TO-ALL"
	case Any:
		return "DISTANCE-TO-ANY"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// ErrOptionsMutated is returned by Append and Result when the handle's
// Opt field no longer matches the options it was created from. The
// retained grouping state embodies those options (ε, metric, overlap
// clause, strategy, seed); silently continuing under different ones
// would produce a grouping no one-shot evaluation matches, so the
// mutation is refused. Create a new handle to change options.
var ErrOptionsMutated = errors.New("incr: Options mutated after creation; incremental state embodies the original options — create a new Incremental instead")

// Incremental maintains a similarity grouping under appends and
// removals. Create one with New, feed it batches with Append or
// AppendSet, delete points with Remove (or the sliding-window
// conveniences Window and WindowBy), and read the current grouping
// with Result — equivalent, at every step, to a one-shot evaluation
// over the surviving points in arrival order (identical components for
// SGB-Any; identical groups, member order, and JOIN-ANY arbitration
// draws for SGB-All under equal seeds).
//
// Point ids are live ids: Result numbers the surviving points
// 0..Len()-1 in arrival order, Remove accepts those numbers, and after
// a removal the survivors renumber compactly — the id space always
// matches what a from-scratch evaluation over the survivors would
// report.
//
// The dimensionality is fixed by the first non-empty batch (and stays
// fixed even if every point is later removed); until then the handle
// is empty and Result returns an empty grouping. Appends evaluate
// sequentially (Options.Parallelism is ignored): the point of
// incremental maintenance is that per-append work scales with the
// batch, not the retained set, so there is nothing worth sharding. An
// Incremental is not safe for concurrent use.
type Incremental struct {
	// Opt is the options snapshot the handle was created from, exposed
	// for inspection. It must not be modified: Append and Result fail
	// with ErrOptionsMutated if it no longer matches the creation-time
	// snapshot.
	Opt core.Options

	snap core.Options // creation-time copy Opt is checked against
	sem  Semantics
	dims int // 0 until the first non-empty batch fixes it

	all *core.AllEvaluator
	any *core.AnyEvaluator
}

// New returns an empty incremental grouping handle for the given
// operator semantics and options. The options are validated eagerly
// (including the SGB-Any rejection of Bounds-Checking) so a
// misconfigured handle fails at creation, not mid-stream.
func New(sem Semantics, opt core.Options) (*Incremental, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if sem != All && sem != Any {
		return nil, fmt.Errorf("incr: unknown semantics %d", int(sem))
	}
	if sem == Any && opt.Algorithm == core.BoundsCheck {
		// Surface the one-shot operator's rejection at handle creation
		// rather than mid-stream at the first append.
		return nil, core.ErrBoundsCheckAny
	}
	return &Incremental{Opt: opt, snap: opt, sem: sem}, nil
}

// Semantics returns the operator the handle maintains.
func (x *Incremental) Semantics() Semantics { return x.sem }

// Len returns the number of live points (appended and not removed).
func (x *Incremental) Len() int {
	switch {
	case x.all != nil:
		return x.all.Len()
	case x.any != nil:
		return x.any.Len()
	default:
		return 0
	}
}

// Dims returns the point dimensionality, or 0 while no batch has been
// appended yet.
func (x *Incremental) Dims() int { return x.dims }

// Append absorbs a batch of points given as a []Point slice. All
// points must share the handle's dimensionality (fixed by the first
// batch). See AppendSet for the flat-storage variant.
func (x *Incremental) Append(points []geom.Point) error {
	if len(points) == 0 {
		return nil
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return fmt.Errorf("incr: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	if d == 0 {
		return errors.New("incr: zero-dimensional point")
	}
	return x.AppendSet(geom.FromPoints(points))
}

// AppendSet absorbs a batch of points in flat storage. The points are
// copied; the caller's set is not retained. An empty batch is a
// no-op.
func (x *Incremental) AppendSet(ps *geom.PointSet) error {
	if ps == nil || ps.Len() == 0 {
		return nil
	}
	if x.Opt != x.snap {
		return ErrOptionsMutated
	}
	if err := x.ensure(ps.Dims()); err != nil {
		return err
	}
	if x.all != nil {
		return x.all.Append(ps)
	}
	return x.any.Append(ps)
}

// ensure lazily creates the underlying evaluator once the first batch
// reveals the dimensionality, and rejects mismatched later batches.
func (x *Incremental) ensure(dims int) error {
	if x.dims != 0 {
		if dims != x.dims {
			return fmt.Errorf("incr: appended points have dimension %d, want %d", dims, x.dims)
		}
		return nil
	}
	opt := x.snap
	opt.Parallelism = 1 // appends evaluate sequentially by design
	var err error
	if x.sem == All {
		x.all, err = core.NewAllEvaluator(dims, opt)
	} else {
		x.any, err = core.NewAnyEvaluator(dims, opt)
	}
	if err != nil {
		return err
	}
	x.dims = dims
	return nil
}

// Remove deletes the points with the given live ids (the numbering
// Result reports: surviving points 0..Len()-1 in arrival order) and
// repairs the grouping. For SGB-Any the repair is localized to the
// victims' components (deletion can only split a component); for
// SGB-All the arbitration is replayed over the survivors, the only
// maintenance that stays bit-identical to a from-scratch run (see
// core's decremental notes). Ids renumber compactly after the call.
// An empty batch is a no-op; out-of-range or duplicate ids fail
// without mutating the handle.
func (x *Incremental) Remove(ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	if x.Opt != x.snap {
		return ErrOptionsMutated
	}
	switch {
	case x.all != nil:
		return x.all.Remove(ids)
	case x.any != nil:
		return x.any.Remove(ids)
	default:
		return fmt.Errorf("incr: Remove id out of range [0, 0)")
	}
}

// Window evicts oldest-first until at most n points remain — the
// count-based sliding window. It returns how many points were evicted.
func (x *Incremental) Window(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("incr: window size must be >= 0, got %d", n)
	}
	if x.Opt != x.snap {
		return 0, ErrOptionsMutated
	}
	evict := x.Len() - n
	if evict <= 0 {
		return 0, nil
	}
	ids := make([]int, evict)
	for i := range ids {
		ids[i] = i
	}
	if err := x.Remove(ids); err != nil {
		return 0, err
	}
	return evict, nil
}

// WindowBy evicts the longest oldest-first prefix of live points for
// which pred returns true — the predicate-based sliding window (expire
// by timestamp when a coordinate carries one, by distance from a
// moving origin, ...). Eviction stops at the first point pred keeps,
// preserving arrival order semantics: a window is a suffix of the
// stream. It returns how many points were evicted.
func (x *Incremental) WindowBy(pred func(p geom.Point) bool) (int, error) {
	if pred == nil {
		return 0, fmt.Errorf("incr: WindowBy predicate must not be nil")
	}
	if x.Opt != x.snap {
		return 0, ErrOptionsMutated
	}
	n := x.Len()
	evict := 0
	for evict < n && pred(x.liveAt(evict)) {
		evict++
	}
	if evict == 0 {
		return 0, nil
	}
	ids := make([]int, evict)
	for i := range ids {
		ids[i] = i
	}
	if err := x.Remove(ids); err != nil {
		return 0, err
	}
	return evict, nil
}

// liveAt returns the point with live id i; only called with a live
// evaluator (Len() > 0 implies one exists).
func (x *Incremental) liveAt(i int) geom.Point {
	if x.all != nil {
		return x.all.LiveAt(i)
	}
	return x.any.LiveAt(i)
}

// Result materializes the current grouping. The result owns its
// slices; it stays valid across later appends, and repeated calls are
// independent (under FORM-NEW-GROUP each call replays the deferred-set
// recursion on a clone of the retained state). Before any append it
// returns an empty grouping.
func (x *Incremental) Result() (*core.Result, error) {
	if x.Opt != x.snap {
		return nil, ErrOptionsMutated
	}
	switch {
	case x.all != nil:
		return x.all.Result(), nil
	case x.any != nil:
		return x.any.Result(), nil
	default:
		return &core.Result{}, nil
	}
}
