// Package incr provides incremental similarity group-by maintenance:
// the Incremental handle keeps a live grouping that absorbs appended
// point batches and sheds removed points, so after every Append,
// Remove, or window eviction the grouping equals a one-shot SGB
// evaluation over the surviving points in arrival order — without
// ever regrouping from scratch (SGB-Any; SGB-All deletion replays,
// see below). It is the subsystem behind the public
// sgb.NewIncrementalAll / NewIncrementalAny constructors and the SQL
// engine's SET incremental INSERT/DELETE-maintenance path (db.go's
// per-table cache).
//
// Why this is sound, per operator:
//
//   - SGB-Any: connected components of the ε-similarity graph are
//     independent of arrival order (the companion paper on
//     order-independent SGB semantics, PAPERS.md), and the live
//     ε-grid/R-tree plus the Union-Find forest both support appends
//     natively — so appending just keeps running the same per-point
//     step (core.AnyEvaluator). The same semantics make deletion
//     well-defined and local: removing a point can only split its own
//     component, so Remove dissolves and reclusters just the affected
//     components (core/decremental.go).
//   - SGB-All: the operator is order-sensitive, but its processing
//     order IS arrival order, which appending extends. The retained
//     state (groups, finder index, arbitration PRNG) after k points is
//     identical to a one-shot run's state at point k, so replaying
//     only the new points continues the identical trajectory
//     (core.AllEvaluator). FORM-NEW-GROUP's end-of-input recursion
//     over the deferred set S′ is the one end-of-stream step; Result
//     replays it on a throwaway clone so the retained main-pass state
//     stays appendable. Deletion, by contrast, changes which points
//     were present during arbitration, so Remove replays the
//     surviving points — the only maintenance that stays bit-identical
//     to a from-scratch run.
//
// Sliding windows ride on Remove: Window(n) evicts oldest-first down
// to n live points, WindowBy(pred) evicts the longest oldest-first
// prefix matching a predicate. Ids are live ids throughout — Result
// numbers survivors 0..Len()-1 in arrival order and Remove accepts
// those numbers, renumbering compactly afterwards.
//
// Invariants the handle enforces:
//
//   - Options are fixed at creation; Append/Remove/Result fail with
//     ErrOptionsMutated if the exposed Opt field was modified (retained
//     state embodies ε, metric, overlap, strategy, and seed).
//   - Dimensionality is fixed by the first non-empty batch (even
//     across a full eviction); later mismatches are rejected.
//   - Results own their slices: a materialized Result is never aliased
//     by later appends or removals.
package incr
