package incr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// randomPoints draws n points uniform in [0, span)^dims.
func randomPoints(rng *rand.Rand, n, dims int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

// splitBatches cuts points into batches at the given cut offsets
// (strictly increasing, within (0, len)).
func splitBatches(points []geom.Point, cuts []int) [][]geom.Point {
	var batches [][]geom.Point
	prev := 0
	for _, c := range cuts {
		batches = append(batches, points[prev:c])
		prev = c
	}
	return append(batches, points[prev:])
}

// randomCuts draws k sorted distinct cut offsets in (0, n).
func randomCuts(rng *rand.Rand, n, k int) []int {
	seen := map[int]bool{}
	var cuts []int
	for len(cuts) < k && len(seen) < n-1 {
		c := 1 + rng.Intn(n-1)
		if !seen[c] {
			seen[c] = true
			cuts = append(cuts, c)
		}
	}
	for i := range cuts {
		for j := i + 1; j < len(cuts); j++ {
			if cuts[j] < cuts[i] {
				cuts[i], cuts[j] = cuts[j], cuts[i]
			}
		}
	}
	return cuts
}

// oneShot runs the reference one-shot operator over the full input.
func oneShot(t *testing.T, sem Semantics, points []geom.Point, opt core.Options) *core.Result {
	t.Helper()
	var res *core.Result
	var err error
	if sem == All {
		res, err = core.SGBAll(points, opt)
	} else {
		res, err = core.SGBAny(points, opt)
	}
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	return res
}

// incremental replays the same input through an Incremental handle in
// the given batches, reading Result after every batch (so intermediate
// materializations are exercised too) and returning the final one.
func incremental(t *testing.T, sem Semantics, batches [][]geom.Point, opt core.Options) *core.Result {
	t.Helper()
	inc, err := New(sem, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var res *core.Result
	for bi, b := range batches {
		if err := inc.Append(b); err != nil {
			t.Fatalf("Append batch %d: %v", bi, err)
		}
		if res, err = inc.Result(); err != nil {
			t.Fatalf("Result after batch %d: %v", bi, err)
		}
	}
	return res
}

// TestIncrementalEquivalence is the randomized incremental↔batch
// equivalence suite: over {L2, L∞} × every ON-OVERLAP semantics (plus
// SGB-Any) × d ∈ {1, 2, 3} × several batch splits (single batch,
// random multi-way splits, point-at-a-time), the incremental grouping
// must equal the one-shot grouping over the concatenated input —
// deep-equal groups including member order and ELIMINATE victims.
func TestIncrementalEquivalence(t *testing.T) {
	type semCase struct {
		sem     Semantics
		overlap core.Overlap
		name    string
	}
	semCases := []semCase{
		{All, core.JoinAny, "All-JoinAny"},
		{All, core.Eliminate, "All-Eliminate"},
		{All, core.FormNewGroup, "All-FormNewGroup"},
		{Any, core.JoinAny, "Any"},
	}
	algos := []core.Algorithm{core.GridIndex, core.OnTheFlyIndex, core.AllPairs}

	for _, metric := range []geom.Metric{geom.L2, geom.LInf} {
		for dims := 1; dims <= 3; dims++ {
			for _, sc := range semCases {
				name := fmt.Sprintf("%s/%s/d=%d", sc.name, metric, dims)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(dims)*1000 + int64(sc.sem)*100 + int64(sc.overlap)*10 + int64(metric)))
					for trial := 0; trial < 4; trial++ {
						n := 60 + rng.Intn(140)
						// Span chosen so ε = 1 yields a mix of merges,
						// overlaps, and isolated points.
						points := randomPoints(rng, n, dims, 12)
						opt := core.Options{
							Metric:    metric,
							Eps:       1,
							Overlap:   sc.overlap,
							Algorithm: algos[trial%len(algos)],
							Seed:      int64(trial + 1),
						}
						want := oneShot(t, sc.sem, points, opt)

						splits := [][]int{
							nil,                     // single batch
							randomCuts(rng, n, 3),   // a few batches
							randomCuts(rng, n, n/4), // many small batches
							func() []int { // point at a time
								cuts := make([]int, n-1)
								for i := range cuts {
									cuts[i] = i + 1
								}
								return cuts
							}(),
						}
						for si, cuts := range splits {
							got := incremental(t, sc.sem, splitBatches(points, cuts), opt)
							if !reflect.DeepEqual(normalize(want), normalize(got)) {
								t.Fatalf("trial %d split %d (%v, n=%d): incremental grouping diverges\none-shot: %v elim %v\nincremental: %v elim %v",
									trial, si, opt.Algorithm, n, want.Groups, want.Eliminated, got.Groups, got.Eliminated)
							}
						}
					}
				})
			}
		}
	}
}

// normalize maps a result to a comparable shape (nil vs empty slices).
func normalize(r *core.Result) [2]any {
	groups := r.Groups
	if len(groups) == 0 {
		groups = nil
	}
	elim := r.Eliminated
	if len(elim) == 0 {
		elim = nil
	}
	return [2]any{groups, elim}
}

// TestOptionsMutationRejected is the regression test that mutating the
// handle's Opt field after creation yields a clear error instead of a
// silently inconsistent grouping.
func TestOptionsMutationRejected(t *testing.T) {
	inc, err := New(All, core.Options{Metric: geom.L2, Eps: 1, Algorithm: core.GridIndex})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Append([]geom.Point{{0, 0}, {0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	inc.Opt.Eps = 2 // the footgun
	if err := inc.Append([]geom.Point{{1, 1}}); err != ErrOptionsMutated {
		t.Fatalf("Append after Opt mutation: got %v, want ErrOptionsMutated", err)
	}
	if _, err := inc.Result(); err != ErrOptionsMutated {
		t.Fatalf("Result after Opt mutation: got %v, want ErrOptionsMutated", err)
	}
	inc.Opt.Eps = 1 // restoring the snapshot heals the handle
	if err := inc.Append([]geom.Point{{1, 1}}); err != nil {
		t.Fatalf("Append after restoring Opt: %v", err)
	}
}

// TestIncrementalErrors covers the handle's validation surface.
func TestIncrementalErrors(t *testing.T) {
	if _, err := New(All, core.Options{Metric: geom.L2, Eps: -1}); err == nil {
		t.Fatal("want error for invalid ε")
	}
	if _, err := New(Any, core.Options{Metric: geom.L2, Eps: 1, Algorithm: core.BoundsCheck}); err == nil {
		t.Fatal("want error for SGB-Any Bounds-Checking")
	}
	if _, err := New(Semantics(9), core.Options{Metric: geom.L2, Eps: 1}); err == nil {
		t.Fatal("want error for unknown semantics")
	}

	inc, err := New(Any, core.Options{Metric: geom.L2, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inc.Result()
	if err != nil || len(res.Groups) != 0 {
		t.Fatalf("empty handle Result = %v, %v; want empty grouping", res, err)
	}
	if err := inc.Append([]geom.Point{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if inc.Dims() != 2 || inc.Len() != 1 {
		t.Fatalf("Dims/Len = %d/%d, want 2/1", inc.Dims(), inc.Len())
	}
	if err := inc.Append([]geom.Point{{1, 2, 3}}); err == nil {
		t.Fatal("want error for dimensionality mismatch")
	}
	if err := inc.Append([]geom.Point{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for mixed dimensionality within a batch")
	}
}

// TestResultIsolation asserts that a materialized Result is not
// aliased by later appends (the resumable state keeps evolving).
func TestResultIsolation(t *testing.T) {
	for _, sem := range []Semantics{All, Any} {
		inc, err := New(sem, core.Options{Metric: geom.LInf, Eps: 1.5, Overlap: core.Eliminate, Algorithm: core.GridIndex})
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Append([]geom.Point{{0, 0}, {1, 1}}); err != nil {
			t.Fatal(err)
		}
		before, err := inc.Result()
		if err != nil {
			t.Fatal(err)
		}
		snapshot := fmt.Sprint(before.Groups, before.Eliminated)
		if err := inc.Append(randomPoints(rand.New(rand.NewSource(7)), 50, 2, 3)); err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(before.Groups, before.Eliminated); got != snapshot {
			t.Fatalf("%v: earlier Result mutated by later Append:\nbefore %s\nafter  %s", sem, snapshot, got)
		}
	}
}
