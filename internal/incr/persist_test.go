package incr

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

func incrBatch(r *rand.Rand, dims, n int) *geom.PointSet {
	ps := geom.NewPointSetCap(dims, n)
	for i := 0; i < n; i++ {
		p := ps.Extend()
		for d := range p {
			p[d] = float64(r.Intn(10)) + 0.3*r.Float64()
		}
	}
	return ps
}

func sameIncrResult(t *testing.T, label string, a, b *Incremental) {
	t.Helper()
	ra, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("%s: results diverge\n original: %+v\n restored: %+v", label, ra, rb)
	}
}

// TestIncrementalExportRestore round-trips handles of both semantics
// mid-stream and checks restored handles stay in lockstep with the
// originals under further appends, removals, and windowing.
func TestIncrementalExportRestore(t *testing.T) {
	cases := []struct {
		name string
		sem  Semantics
		opt  core.Options
	}{
		{"any-grid", Any, core.Options{Metric: geom.L2, Eps: 1.0, Algorithm: core.GridIndex}},
		{"all-join-any", All, core.Options{Metric: geom.LInf, Eps: 1.2, Overlap: core.JoinAny, Algorithm: core.GridIndex, Seed: 77}},
		{"all-eliminate", All, core.Options{Metric: geom.L2, Eps: 1.2, Overlap: core.Eliminate, Algorithm: core.GridIndex}},
		{"all-form-new", All, core.Options{Metric: geom.L2, Eps: 1.2, Overlap: core.FormNewGroup, Algorithm: core.GridIndex}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(21))
			x, err := New(tc.sem, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < 3; b++ {
				if err := x.AppendSet(incrBatch(r, 2, 50)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := x.Window(120); err != nil {
				t.Fatal(err)
			}

			st, err := x.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			y, err := Restore(st)
			if err != nil {
				t.Fatal(err)
			}
			if y.Semantics() != tc.sem || y.Dims() != x.Dims() || y.Len() != x.Len() {
				t.Fatalf("restored shape: sem=%v dims=%d len=%d, want %v/%d/%d",
					y.Semantics(), y.Dims(), y.Len(), tc.sem, x.Dims(), x.Len())
			}
			sameIncrResult(t, "post-restore", x, y)

			r2 := rand.New(rand.NewSource(9))
			for step := 0; step < 3; step++ {
				batch := incrBatch(r2, 2, 30)
				if err := x.AppendSet(batch); err != nil {
					t.Fatal(err)
				}
				if err := y.AppendSet(batch); err != nil {
					t.Fatal(err)
				}
				if _, err := x.Window(100); err != nil {
					t.Fatal(err)
				}
				if _, err := y.Window(100); err != nil {
					t.Fatal(err)
				}
				sameIncrResult(t, "step", x, y)
			}
		})
	}
}

// TestIncrementalExportEmpty round-trips a handle no batch has touched:
// dimensionality stays unfixed and the restored handle accepts any.
func TestIncrementalExportEmpty(t *testing.T) {
	x, err := New(Any, core.Options{Metric: geom.L2, Eps: 0.5, Algorithm: core.GridIndex})
	if err != nil {
		t.Fatal(err)
	}
	st, err := x.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if st.All != nil || st.Any != nil {
		t.Fatal("empty handle exported an evaluator")
	}
	y, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dims() != 0 || y.Len() != 0 {
		t.Fatalf("restored empty handle has dims=%d len=%d", y.Dims(), y.Len())
	}
	if err := y.AppendSet(incrBatch(rand.New(rand.NewSource(1)), 3, 10)); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalRestoreRejects covers the handle-level corruption
// paths (the evaluator-level ones live in core's persist tests).
func TestIncrementalRestoreRejects(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x, err := New(All, core.Options{Metric: geom.L2, Eps: 1.0, Overlap: core.JoinAny, Algorithm: core.GridIndex})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.AppendSet(incrBatch(r, 2, 20)); err != nil {
		t.Fatal(err)
	}
	st, err := x.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	wrongSem := *st
	wrongSem.Sem = Any
	if _, err := Restore(&wrongSem); err == nil {
		t.Error("semantics/evaluator mismatch accepted")
	}
	badOpt := *st
	badOpt.Opt.Eps = 0
	if _, err := Restore(&badOpt); err == nil {
		t.Error("invalid options accepted")
	}
	// A mutated handle must refuse to export.
	x.Opt.Eps = 9
	if _, err := x.ExportState(); err != ErrOptionsMutated {
		t.Errorf("mutated handle exported: %v", err)
	}
}
