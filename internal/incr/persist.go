package incr

import (
	"errors"
	"fmt"

	"github.com/sgb-db/sgb/internal/core"
)

// State is the portable snapshot of an Incremental handle: the
// semantics, the creation-time options, and — once the first batch has
// fixed the dimensionality — the underlying evaluator's exported state.
// The checkpoint writer serializes it; Restore rebuilds a handle that
// continues exactly where the original stood.
type State struct {
	Sem Semantics
	Opt core.Options // creation-time snapshot, Stats stripped
	// Exactly one of All/Any is non-nil once a batch has been appended;
	// both nil for a still-empty handle.
	All *core.AllState
	Any *core.AnyState
}

// ExportState snapshots the handle. It fails if the public Opt field
// was mutated (the same guard Append and Result apply — a snapshot of
// inconsistent state would be unrecoverable garbage).
func (x *Incremental) ExportState() (*State, error) {
	if x.Opt != x.snap {
		return nil, ErrOptionsMutated
	}
	opt := x.snap
	opt.Stats = nil
	s := &State{Sem: x.sem, Opt: opt}
	switch {
	case x.all != nil:
		s.All = x.all.ExportState()
	case x.any != nil:
		s.Any = x.any.ExportState()
	}
	return s, nil
}

// Restore rebuilds an Incremental from a snapshot. Corrupt snapshots
// (both evaluators present, semantics/evaluator mismatch, or an
// evaluator state the core restore rejects) return an error.
func Restore(s *State) (*Incremental, error) {
	if s == nil {
		return nil, errors.New("incr: nil state")
	}
	x, err := New(s.Sem, s.Opt)
	if err != nil {
		return nil, err
	}
	if s.All != nil && s.Any != nil {
		return nil, errors.New("incr: state holds both evaluator kinds")
	}
	switch {
	case s.All != nil:
		if s.Sem != All {
			return nil, fmt.Errorf("incr: %v state with an SGB-All evaluator", s.Sem)
		}
		x.all, err = core.RestoreAllEvaluator(s.All)
		if err != nil {
			return nil, err
		}
		x.dims = s.All.Dims
	case s.Any != nil:
		if s.Sem != Any {
			return nil, fmt.Errorf("incr: %v state with an SGB-Any evaluator", s.Sem)
		}
		x.any, err = core.RestoreAnyEvaluator(s.Any)
		if err != nil {
			return nil, err
		}
		x.dims = s.Any.Dims
	}
	return x, nil
}
