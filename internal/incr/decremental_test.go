package incr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/geom"
)

// oneShotLive runs the reference one-shot operator over the surviving
// points.
func oneShotLive(t *testing.T, sem Semantics, points []geom.Point, opt core.Options) *core.Result {
	t.Helper()
	if len(points) == 0 {
		return &core.Result{}
	}
	return oneShot(t, sem, points, opt)
}

// TestDecrementalHandleEquivalence drives Incremental handles with
// randomized interleaved append/remove/window traffic and cross-checks
// every step against a from-scratch evaluation of the surviving
// points, across both operators, all ON-OVERLAP semantics, both
// metrics, and d ∈ {1, 2, 3, 5}.
func TestDecrementalHandleEquivalence(t *testing.T) {
	type semCase struct {
		sem     Semantics
		overlap core.Overlap
		name    string
	}
	semCases := []semCase{
		{All, core.JoinAny, "All-JoinAny"},
		{All, core.Eliminate, "All-Eliminate"},
		{All, core.FormNewGroup, "All-FormNewGroup"},
		{Any, core.JoinAny, "Any"},
	}
	algos := []core.Algorithm{core.GridIndex, core.OnTheFlyIndex, core.AllPairs}
	for _, metric := range []geom.Metric{geom.L2, geom.LInf} {
		for _, dims := range []int{1, 2, 3, 5} {
			for sci, sc := range semCases {
				name := fmt.Sprintf("%s/%s/d=%d", sc.name, metric, dims)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(dims)*1000 + int64(sci)*100 + int64(metric)))
					opt := core.Options{
						Metric:    metric,
						Eps:       1,
						Overlap:   sc.overlap,
						Algorithm: algos[(dims+sci)%len(algos)],
						Seed:      11,
					}
					inc, err := New(sc.sem, opt)
					if err != nil {
						t.Fatal(err)
					}
					var live []geom.Point
					for step := 0; step < 20; step++ {
						switch {
						case len(live) == 0 || rng.Intn(3) != 0:
							batch := randomPoints(rng, 10+rng.Intn(40), dims, 8)
							if err := inc.Append(batch); err != nil {
								t.Fatalf("step %d: Append: %v", step, err)
							}
							live = append(live, batch...)
						case rng.Intn(2) == 0:
							k := 1 + rng.Intn(len(live))
							ids := rng.Perm(len(live))[:k]
							if err := inc.Remove(ids); err != nil {
								t.Fatalf("step %d: Remove: %v", step, err)
							}
							dead := make(map[int]bool, k)
							for _, id := range ids {
								dead[id] = true
							}
							kept := live[:0]
							for i, p := range live {
								if !dead[i] {
									kept = append(kept, p)
								}
							}
							live = kept
						default:
							n := rng.Intn(len(live) + 1)
							evicted, err := inc.Window(n)
							if err != nil {
								t.Fatalf("step %d: Window(%d): %v", step, n, err)
							}
							if want := max(0, len(live)-n); evicted != want {
								t.Fatalf("step %d: Window(%d) evicted %d, want %d", step, n, evicted, want)
							}
							live = append([]geom.Point(nil), live[len(live)-min(n, len(live)):]...)
						}
						if inc.Len() != len(live) {
							t.Fatalf("step %d: Len = %d, want %d", step, inc.Len(), len(live))
						}
						want := oneShotLive(t, sc.sem, live, opt)
						got, err := inc.Result()
						if err != nil {
							t.Fatalf("step %d: Result: %v", step, err)
						}
						if !reflect.DeepEqual(normalize(want), normalize(got)) {
							t.Fatalf("step %d (n=%d): maintained grouping diverges\nfrom-scratch: %v elim %v\nmaintained:   %v elim %v",
								step, len(live), want.Groups, want.Eliminated, got.Groups, got.Eliminated)
						}
					}
				})
			}
		}
	}
}

// TestWindowBy pins the predicate window: points carry their arrival
// round in coordinate 0, and expiring rounds < 2 evicts exactly the
// two oldest batches.
func TestWindowBy(t *testing.T) {
	inc, err := New(Any, core.Options{Metric: geom.LInf, Eps: 0.4, Algorithm: core.GridIndex})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		batch := make([]geom.Point, 3)
		for i := range batch {
			batch[i] = geom.Point{float64(round), float64(i)}
		}
		if err := inc.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	evicted, err := inc.WindowBy(func(p geom.Point) bool { return p[0] < 2 })
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 6 || inc.Len() != 6 {
		t.Fatalf("WindowBy evicted %d (len %d), want 6 (len 6)", evicted, inc.Len())
	}
	// The prefix rule: eviction stops at the first kept point even if
	// later points match.
	evicted, err = inc.WindowBy(func(p geom.Point) bool { return p[1] == 2 })
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 0 {
		t.Fatalf("WindowBy over a non-prefix match evicted %d, want 0", evicted)
	}
	if _, err := inc.WindowBy(nil); err == nil {
		t.Fatal("want error for nil WindowBy predicate")
	}
}

// TestWindowErrors covers the window/remove validation surface.
func TestWindowErrors(t *testing.T) {
	inc, err := New(Any, core.Options{Metric: geom.L2, Eps: 1, Algorithm: core.GridIndex})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Window(-1); err == nil {
		t.Fatal("want error for negative window")
	}
	// Window on an empty handle is a no-op.
	if n, err := inc.Window(5); err != nil || n != 0 {
		t.Fatalf("Window on empty handle = %d, %v", n, err)
	}
	// Remove on an empty handle with ids fails; the empty batch is fine.
	if err := inc.Remove([]int{0}); err == nil {
		t.Fatal("want error for Remove on empty handle")
	}
	if err := inc.Remove(nil); err != nil {
		t.Fatal(err)
	}
	if err := inc.Append([]geom.Point{{0, 0}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Remove([]int{2}); err == nil {
		t.Fatal("want error for out-of-range id")
	}
	if err := inc.Remove([]int{0, 0}); err == nil {
		t.Fatal("want error for duplicate ids")
	}
	// Opt mutation is refused on the decremental surface too.
	inc.Opt.Eps = 9
	if err := inc.Remove([]int{0}); err != ErrOptionsMutated {
		t.Fatalf("Remove after Opt mutation: got %v, want ErrOptionsMutated", err)
	}
	if _, err := inc.Window(0); err != ErrOptionsMutated {
		t.Fatalf("Window after Opt mutation: got %v, want ErrOptionsMutated", err)
	}
	if _, err := inc.WindowBy(func(geom.Point) bool { return true }); err != ErrOptionsMutated {
		t.Fatalf("WindowBy after Opt mutation: got %v, want ErrOptionsMutated", err)
	}
}

// TestEmptyResultWellFormed pins that Result before any successful
// append returns a well-formed empty result — never nil, never a
// panic — for both semantics, and that draining the handle via Remove
// returns it to that same well-formed empty shape.
func TestEmptyResultWellFormed(t *testing.T) {
	for _, sem := range []Semantics{All, Any} {
		inc, err := New(sem, core.Options{Metric: geom.L2, Eps: 1, Algorithm: core.GridIndex})
		if err != nil {
			t.Fatal(err)
		}
		res, err := inc.Result()
		if err != nil {
			t.Fatalf("%v: Result on fresh handle: %v", sem, err)
		}
		if res == nil || len(res.Groups) != 0 || len(res.Eliminated) != 0 {
			t.Fatalf("%v: Result on fresh handle = %+v, want well-formed empty", sem, res)
		}
		if err := inc.Append([]geom.Point{{1, 1}, {2, 2}}); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Window(0); err != nil {
			t.Fatal(err)
		}
		res, err = inc.Result()
		if err != nil || res == nil || len(res.Groups) != 0 {
			t.Fatalf("%v: Result after draining = %+v, %v; want well-formed empty", sem, res, err)
		}
	}
}

// TestAppendAfterRemoveDimsPinned is the regression that removing
// every point does not unpin the handle's dimensionality: the first
// batch fixes it for the handle's lifetime, so a differently-shaped
// batch after a full eviction must still be rejected.
func TestAppendAfterRemoveDimsPinned(t *testing.T) {
	for _, sem := range []Semantics{All, Any} {
		inc, err := New(sem, core.Options{Metric: geom.L2, Eps: 1, Algorithm: core.GridIndex})
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Append([]geom.Point{{0, 0}, {3, 3}}); err != nil {
			t.Fatal(err)
		}
		if err := inc.Remove([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
		if inc.Len() != 0 || inc.Dims() != 2 {
			t.Fatalf("%v: after full removal Len/Dims = %d/%d, want 0/2", sem, inc.Len(), inc.Dims())
		}
		if err := inc.AppendSet(geom.FromPoints([]geom.Point{{1, 2, 3}})); err == nil {
			t.Fatalf("%v: AppendSet with d=3 after draining a d=2 handle must fail", sem)
		}
		if err := inc.Append([]geom.Point{{5, 5}}); err != nil {
			t.Fatalf("%v: matching-dims append after draining: %v", sem, err)
		}
		if inc.Len() != 1 {
			t.Fatalf("%v: Len = %d, want 1", sem, inc.Len())
		}
	}
}
