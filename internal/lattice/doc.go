// Package lattice answers every similarity threshold ε ≤ ε_max from
// one pass over the data: the ε-lattice of SGB-Any groupings.
//
// SGB-Any groups are the connected components of the ε-proximity
// graph, and components only merge as ε grows — groupings at ε₁ < ε₂
// nest. One Kruskal-style sweep therefore captures the whole family:
// enumerate candidate edges below ε_max with the uniform ε_max-cell
// grid (probe the 3^d neighborhood of each point before registering
// it, so each unordered pair surfaces exactly once and the O(n²) edge
// set is never materialized), sort by distance key, and fold through a
// Union-Find recording the height of every merge. The resulting
// Dendrogram answers GroupsAt(ε) for any level with a binary search
// over merge heights plus an amortized prefix replay — near-constant
// query cost beyond the O(n) materialization of the answer itself.
//
// Memory stays bounded by minimum-spanning-forest compaction: under a
// fixed total edge order, MSF(S ∪ T) ⊆ MSF(MSF(S) ∪ T), so the edge
// buffer can be filtered to at most n−1 forest edges whenever it grows
// — exactly, not approximately — which also makes Append incremental.
//
// Heights live in geom.Metric.DistKey space (squared distance for L2),
// the same comparison basis Metric.Within uses, so lattice levels are
// bit-for-bit identical to independent one-shot SGB-Any runs.
package lattice
