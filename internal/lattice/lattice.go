package lattice

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// Stats counts the work a sweep performed. The core evaluator folds
// these into its operator-level core.Stats block; keeping a local type
// avoids an import cycle (core wraps lattice, not the reverse).
type Stats struct {
	// DistanceComputations counts exact distance-key evaluations
	// against grid candidates.
	DistanceComputations int64
	// IndexProbes counts ε_max-box grid probes (one per point).
	IndexProbes int64
	// IndexUpdates counts grid cell registrations (one per point).
	IndexUpdates int64
	// Compactions counts MSF filter passes over the edge buffer.
	Compactions int64
	// EdgesRetained is the edge count surviving the last compaction
	// (at most n-1: the minimum spanning forest of everything seen).
	EdgesRetained int64
}

func (s *Stats) add(dist, probes, updates int64) {
	if s != nil {
		s.DistanceComputations += dist
		s.IndexProbes += probes
		s.IndexUpdates += updates
	}
}

// Edge is one candidate ε-graph edge: points A < B at comparison-key
// distance Key (geom.Metric.DistKey space: squared distance for L2,
// max coordinate difference for L∞).
type Edge struct {
	A, B int32
	Key  float64
}

// edgeLess is the strict total order every Kruskal pass uses:
// (Key, A, B). A CONSISTENT total order is what makes the streaming
// MSF compaction exact even under distance ties — the greedy forest of
// a matroid under a fixed total order satisfies
// MSF(S ∪ T) ⊆ MSF(MSF(S) ∪ T), so edges discarded by an early
// compaction can never become merges later.
func edgeLess(a, b Edge) int {
	switch {
	case a.Key != b.Key:
		if a.Key < b.Key {
			return -1
		}
		return 1
	case a.A != b.A:
		return int(a.A) - int(b.A)
	default:
		return int(a.B) - int(b.B)
	}
}

// Merge is one dendrogram merge event: processing edges in
// nondecreasing key order, the components containing points A and B
// fused at height Key. Heights are in metric key space (see
// geom.Metric.DistKey); they are nondecreasing across the merge list.
type Merge struct {
	A, B int32
	Key  float64
}

// Sweep accumulates the ε_max-bounded single-linkage structure of a
// point stream: each appended point is probed against a uniform
// ε_max-cell grid (never materializing the O(n²) pair set — only pairs
// within the 3^d-cell neighborhood are examined), and the surviving
// candidate edges are periodically compacted to the minimum spanning
// forest of everything seen, so memory stays O(n). Dendrogram()
// finalizes the structure for querying; Append invalidates it.
//
// A Sweep is not safe for concurrent use.
type Sweep struct {
	dims      int
	metric    geom.Metric
	epsMax    float64
	epsMaxKey float64

	ps  *geom.PointSet // owned copy of every appended point
	tab *grid.Table
	cur grid.Cursor
	buf []int32

	edges   []Edge // MSF of all seen edges, plus the uncompacted tail
	sorted  int    // length of the sorted retained prefix of edges
	scratch []Edge // radix double buffer, reused across compactions
	merged  []Edge // prefix+tail merge buffer, reused across compactions

	// Early-discard filter: the connectivity of the kept edges with key
	// ≤ filterKey (the ε_max/2 threshold). An arriving edge with a
	// LARGER key whose endpoints are already connected here is redundant
	// at every cut — the connecting path's keys are all strictly smaller
	// — and is dropped before ever touching the edge buffer. On
	// clustered inputs (where components form far below ε_max) this
	// keeps the sort/compact volume near the forest size; one filter
	// keeps the hot parent array small enough to stay cached.
	filterKey float64
	filter    *unionfind.UF

	// CompactEvery overrides the edge-buffer compaction threshold
	// (0 selects the adaptive default). Exposed for tests that force
	// many compactions on small inputs.
	CompactEvery int

	dend *Dendrogram // cached finalization; nil after a mutation
}

// NewSweep returns an empty sweep over dims-dimensional points under
// the given metric, able to answer any threshold ε ≤ epsMax.
func NewSweep(dims int, metric geom.Metric, epsMax float64) (*Sweep, error) {
	if dims < 1 {
		return nil, errors.New("lattice: dimensionality must be >= 1")
	}
	if metric != geom.L2 && metric != geom.LInf {
		return nil, errors.New("lattice: unknown distance metric")
	}
	if !(epsMax > 0) || math.IsInf(epsMax, 1) {
		return nil, errors.New("lattice: ε_max must be positive and finite")
	}
	s := &Sweep{
		dims:      dims,
		metric:    metric,
		epsMax:    epsMax,
		epsMaxKey: metric.EpsKey(epsMax),
		ps:        geom.NewPointSet(dims),
		tab:       grid.New(dims, epsMax),
	}
	s.filterKey = metric.EpsKey(epsMax / 2)
	s.filter = unionfind.New(0)
	return s, nil
}

// Dims returns the sweep's point dimensionality.
func (s *Sweep) Dims() int { return s.dims }

// Len returns the number of absorbed points.
func (s *Sweep) Len() int { return s.ps.Len() }

// EpsMax returns the largest answerable threshold.
func (s *Sweep) EpsMax() float64 { return s.epsMax }

// Metric returns the sweep's distance metric.
func (s *Sweep) Metric() geom.Metric { return s.metric }

// Append absorbs a batch of points (ids continue the arrival order:
// the first point of the first batch is 0). The batch is copied. Work
// counters accumulate into st when non-nil. The caller is responsible
// for dimensional and finiteness validation (core.LatticeEvaluator
// performs both).
func (s *Sweep) Append(batch *geom.PointSet, st *Stats) error {
	if batch == nil || batch.Len() == 0 {
		return nil
	}
	if batch.Dims() != s.dims {
		return fmt.Errorf("lattice: appended points have dimension %d, want %d", batch.Dims(), s.dims)
	}
	base := s.ps.Len()
	s.ps.AppendSet(batch)
	s.dend = nil

	// Morton-order the batch's processing (probe locality: consecutive
	// probes touch adjacent ε_max-cells). Edge correctness is order-free
	// — each unordered pair is examined exactly once because a point is
	// probed before it is registered — so the permutation never leaks
	// into the recorded ids.
	var perm []int32
	if batch.Len() >= 32 {
		perm = geom.MortonPerm(batch, s.epsMax)
	}
	for s.filter.Len() < s.ps.Len() {
		s.filter.Add()
	}

	var dist, probes, updates int64
	threshold := s.compactThreshold()
	for k := 0; k < batch.Len(); k++ {
		idx := k
		if perm != nil {
			idx = int(perm[k])
		}
		i := base + idx
		p := s.ps.At(i)
		probes++
		s.buf = s.tab.CollectBox(&s.cur, p, s.epsMax, s.buf[:0])
		for _, j32 := range s.buf {
			j := int(j32)
			dist++
			key := s.ps.DistKey(s.metric, i, j)
			if key <= s.epsMaxKey {
				if key > s.filterKey {
					if s.filter.Same(i, j) {
						continue // redundant at a strictly smaller threshold
					}
				} else {
					s.filter.Union(i, j)
				}
				a, b := int32(i), j32
				if b < a {
					a, b = b, a
				}
				s.edges = append(s.edges, Edge{A: a, B: b, Key: key})
			}
		}
		updates++
		s.tab.AddPoint(p, int32(i))
		if len(s.edges) >= threshold {
			s.compact(st)
			threshold = s.compactThreshold()
		}
	}
	st.add(dist, probes, updates)
	return nil
}

// compactThreshold is the edge-buffer size that triggers an MSF filter
// pass: a few multiples of the forest bound n-1, so compaction cost
// amortizes against the probes that filled the buffer.
func (s *Sweep) compactThreshold() int {
	if s.CompactEvery > 0 {
		return s.CompactEvery
	}
	t := 4 * s.ps.Len()
	if t < 4096 {
		t = 4096
	}
	return t
}

// sortTail sorts one uncompacted edge run by the strict (Key, A, B)
// total order. Small runs use the comparison sort; larger ones an LSD
// radix sort on the key's IEEE-754 bit pattern (non-negative float64s
// order identically to their bit patterns) in 11-bit digits — six
// linear passes instead of the comparator-driven O(m log m) that
// dominated the whole sweep build — then a run scan that re-sorts the
// rare equal-key runs by (A, B). Single-digit passes (every edge
// agreeing, common in the high exponent bits) are detected by their
// histogram and skipped.
func (s *Sweep) sortTail(tail []Edge) {
	if len(tail) < 512 {
		slices.SortFunc(tail, edgeLess)
		return
	}
	if cap(s.scratch) < len(tail) {
		s.scratch = make([]Edge, len(tail))
	}
	// Radix only the TOP 32 key bits (exponent + high mantissa): three
	// 11-bit passes order the buffer up to ties in those bits, and the
	// run scan below finishes the rare equal-prefix runs exactly. Low
	// mantissa bits almost never decide the order of distinct random
	// distances, so this halves the pass count of a full 64-bit sort.
	src, dst := tail, s.scratch[:len(tail)]
	var counts [2048]int
	for shift := 32; shift < 64; shift += 11 {
		for i := range counts {
			counts[i] = 0
		}
		for i := range src {
			counts[(math.Float64bits(src[i].Key)>>shift)&2047]++
		}
		if counts[(math.Float64bits(src[0].Key)>>shift)&2047] == len(src) {
			continue
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for i := range src {
			d := (math.Float64bits(src[i].Key) >> shift) & 2047
			dst[counts[d]] = src[i]
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &tail[0] {
		copy(tail, src)
	}
	// Runs sharing the radixed high bits keep insertion order; finish
	// them with the exact comparator (low mantissa bits, then the
	// (A, B) tie-break). Runs are overwhelmingly length 1, so this is
	// one linear scan.
	for i := 0; i < len(tail); {
		hi := math.Float64bits(tail[i].Key) >> 32
		j := i + 1
		for j < len(tail) && math.Float64bits(tail[j].Key)>>32 == hi {
			j++
		}
		if j-i > 1 {
			slices.SortFunc(tail[i:j], edgeLess)
		}
		i = j
	}
}

// compact reduces the edge buffer to the minimum spanning forest of
// every edge seen so far: the already-sorted retained prefix (the
// previous compaction's forest) merges with the freshly sorted new
// tail, and a Kruskal pass over the merged order keeps exactly the
// edges that join two distinct components. Afterwards the buffer is
// sorted and holds at most n-1 edges — each edge is radix-sorted once
// over its lifetime and only ever re-merged afterwards.
func (s *Sweep) compact(st *Stats) {
	prefix, tail := s.edges[:s.sorted], s.edges[s.sorted:]
	s.sortTail(tail)
	if cap(s.merged) < len(s.edges) {
		s.merged = make([]Edge, 0, cap(s.edges))
	}
	m := s.merged[:0]
	i, j := 0, 0
	for i < len(prefix) && j < len(tail) {
		if edgeLess(prefix[i], tail[j]) <= 0 {
			m = append(m, prefix[i])
			i++
		} else {
			m = append(m, tail[j])
			j++
		}
	}
	m = append(m, prefix[i:]...)
	m = append(m, tail[j:]...)
	uf := unionfind.New(s.ps.Len())
	w := 0
	for _, e := range m {
		if uf.Find(int(e.A)) != uf.Find(int(e.B)) {
			uf.Union(int(e.A), int(e.B))
			s.edges[w] = e
			w++
		}
	}
	s.merged = m[:0]
	s.edges = s.edges[:w]
	s.sorted = w
	if st != nil {
		st.Compactions++
		st.EdgesRetained = int64(w)
	}
}

// Dendrogram finalizes and returns the merge structure of everything
// appended so far. The result owns its merge list and stays valid (and
// answerable) across later Appends; it is recomputed lazily after each
// mutation. After the final compaction the edge buffer IS the sorted
// minimum spanning forest, and every MSF edge merges two components by
// definition — so the sorted edges are exactly the merge list.
func (s *Sweep) Dendrogram() *Dendrogram {
	if s.dend == nil {
		s.compact(nil)
		merges := make([]Merge, len(s.edges))
		for i, e := range s.edges {
			merges[i] = Merge{A: e.A, B: e.B, Key: e.Key}
		}
		s.dend = &Dendrogram{
			n:         s.ps.Len(),
			metric:    s.metric,
			merges:    merges,
			epsMax:    s.epsMax,
			epsMaxKey: s.epsMaxKey,
		}
	}
	return s.dend
}

// Dendrogram is the queryable single-linkage merge structure below
// ε_max: one Union-Find sweep's worth of merge events in nondecreasing
// height order. Any threshold ε ≤ ε_max cuts the list by binary search
// — the merges with height ≤ ε are exactly the unions a one-shot
// SGB-Any run at ε would perform, so GroupsAt(ε) reproduces that run's
// components bit for bit (heights live in geom.Metric.DistKey space,
// the comparison basis Within uses).
//
// Queries share replay scratch (ascending sweeps reuse the previous
// cut's forest); a Dendrogram is therefore not safe for concurrent
// use, but stays valid across later Sweep.Appends (which produce a new
// Dendrogram rather than mutating this one).
type Dendrogram struct {
	n         int
	metric    geom.Metric
	merges    []Merge
	epsMax    float64
	epsMaxKey float64

	// Replay scratch: uf holds the partition after applying
	// merges[:applied]. A query for a smaller cut resets and replays;
	// ascending query sequences (the common sweep) extend incrementally
	// — total replay work over a whole ascending sweep is one pass.
	uf      *unionfind.UF
	applied int
	slots   []int32
	sizes   []int32
	roots   []int32
}

// Len returns the number of points the dendrogram spans.
func (d *Dendrogram) Len() int { return d.n }

// EpsMax returns the largest answerable threshold.
func (d *Dendrogram) EpsMax() float64 { return d.epsMax }

// Merges returns the merge list in nondecreasing height order. The
// slice is owned by the dendrogram; treat it as read-only.
func (d *Dendrogram) Merges() []Merge { return d.merges }

// ErrEpsAboveMax rejects queries beyond the sweep's ε_max: the edge
// enumeration never looked past it, so merges above are unknown.
var ErrEpsAboveMax = errors.New("lattice: ε exceeds the sweep's ε_max")

// Cut returns the number of merges applied at threshold eps — the
// binary-searched prefix of the merge list with height ≤ EpsKey(eps).
// The group count at eps is Len() - Cut(eps): every merge fuses
// exactly two components.
func (d *Dendrogram) Cut(eps float64) (int, error) {
	if !(eps > 0) || math.IsNaN(eps) {
		return 0, errors.New("lattice: threshold ε must be positive")
	}
	if eps > d.epsMax {
		return 0, ErrEpsAboveMax
	}
	key := d.metric.EpsKey(eps)
	return sort.Search(len(d.merges), func(i int) bool { return d.merges[i].Key > key }), nil
}

// replayTo brings the scratch forest to exactly the first cut merges.
func (d *Dendrogram) replayTo(cut int) {
	if d.uf == nil || cut < d.applied {
		d.uf = unionfind.New(d.n)
		d.applied = 0
	}
	for _, m := range d.merges[d.applied:cut] {
		d.uf.Union(int(m.A), int(m.B))
	}
	d.applied = cut
}

// GroupsAt materializes the grouping at threshold eps ≤ EpsMax() in
// the canonical SGB-Any order: groups sorted by smallest member id,
// members ascending. The result owns its slices. The cut itself is a
// binary search plus an (amortized) prefix replay; the O(n) term is
// the materialization every grouping answer pays anyway.
func (d *Dendrogram) GroupsAt(eps float64) ([][]int, error) {
	cut, err := d.Cut(eps)
	if err != nil {
		return nil, err
	}
	d.replayTo(cut)
	if d.slots == nil {
		d.slots = make([]int32, d.n)
		d.sizes = make([]int32, d.n)
		d.roots = make([]int32, d.n)
	}
	slots, sizes, roots := d.slots, d.sizes, d.roots
	for i := range slots {
		slots[i] = -1
	}
	// Pass 1: assign slots in canonical order (first-seen root while
	// scanning ids ascending = groups ordered by smallest member) and
	// count group sizes, caching each point's root.
	ng := int32(0)
	for i := 0; i < d.n; i++ {
		r := int32(d.uf.Find(i))
		roots[i] = r
		s := slots[r]
		if s < 0 {
			s = ng
			slots[r] = s
			ng++
		}
		sizes[s]++
	}
	// Pass 2: carve one flat backing array into exactly-sized member
	// slices and fill them — no per-member append regrowth.
	backing := make([]int, d.n)
	groups := make([][]int, ng)
	off := 0
	for s := int32(0); s < ng; s++ {
		sz := int(sizes[s])
		groups[s] = backing[off : off : off+sz]
		off += sz
		sizes[s] = 0
	}
	for i := 0; i < d.n; i++ {
		s := slots[roots[i]]
		groups[s] = append(groups[s], i)
	}
	return groups, nil
}

// Summary is one ε level's aggregate row — the SIMILARITY CUBE BY EPS
// rollup unit.
type Summary struct {
	// Eps is the level's threshold.
	Eps float64
	// Groups is the number of groups (connected components) at Eps.
	Groups int
	// Largest is the largest group's cardinality (0 for no points).
	Largest int
	// GroupedFraction is the fraction of points whose group has at
	// least two members (0 for no points).
	GroupedFraction float64
}

// SummaryAt computes the aggregate row of one ε level without
// materializing its groups.
func (d *Dendrogram) SummaryAt(eps float64) (Summary, error) {
	cut, err := d.Cut(eps)
	if err != nil {
		return Summary{}, err
	}
	d.replayTo(cut)
	if d.sizes == nil {
		d.sizes = make([]int32, d.n)
	}
	sizes := d.sizes
	for i := range sizes {
		sizes[i] = 0
	}
	for i := 0; i < d.n; i++ {
		sizes[d.uf.Find(i)]++
	}
	sum := Summary{Eps: eps, Groups: d.n - cut}
	grouped := 0
	for _, c := range sizes {
		if int(c) > sum.Largest {
			sum.Largest = int(c)
		}
		if c >= 2 {
			grouped += int(c)
		}
	}
	if d.n > 0 {
		sum.GroupedFraction = float64(grouped) / float64(d.n)
	}
	return sum, nil
}
