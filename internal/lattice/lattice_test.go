package lattice

import (
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/unionfind"
)

func randomSet(rng *rand.Rand, n, dims int, span float64) *geom.PointSet {
	ps := geom.NewPointSetCap(dims, n)
	for i := 0; i < n; i++ {
		p := ps.Extend()
		for d := range p {
			p[d] = rng.Float64() * span
		}
	}
	return ps
}

// bruteGroups is the O(n²) reference: ε-connected components via
// Union-Find over exact Within tests, canonical order.
func bruteGroups(ps *geom.PointSet, m geom.Metric, eps float64) [][]int {
	n := ps.Len()
	uf := unionfind.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ps.Within(m, i, j, eps) {
				uf.Union(i, j)
			}
		}
	}
	slot := make(map[int]int)
	groups := make([][]int, 0)
	for i := 0; i < n; i++ {
		r := uf.Find(i)
		s, ok := slot[r]
		if !ok {
			s = len(groups)
			slot[r] = s
			groups = append(groups, nil)
		}
		groups[s] = append(groups[s], i)
	}
	return groups
}

func buildSweep(t testing.TB, ps *geom.PointSet, m geom.Metric, epsMax float64, compactEvery int) *Sweep {
	s, err := NewSweep(ps.Dims(), m, epsMax)
	if err != nil {
		t.Fatalf("NewSweep: %v", err)
	}
	s.CompactEvery = compactEvery
	if err := s.Append(ps, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	return s
}

func TestSweepMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, m := range []geom.Metric{geom.L2, geom.LInf} {
		for _, dims := range []int{1, 2, 3, 5} {
			n := 60 + rng.Intn(60)
			ps := randomSet(rng, n, dims, 10)
			epsMax := 2.0
			d := buildSweep(t, ps, m, epsMax, 0).Dendrogram()
			for _, eps := range []float64{0.05, 0.3, 0.7, 1.1, 1.6, epsMax} {
				got, err := d.GroupsAt(eps)
				if err != nil {
					t.Fatalf("%v d=%d GroupsAt(%v): %v", m, dims, eps, err)
				}
				want := bruteGroups(ps, m, eps)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v d=%d eps=%v: lattice groups diverge from brute force\ngot  %v\nwant %v", m, dims, eps, got, want)
				}
			}
		}
	}
}

func TestMergeHeightsNondecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := randomSet(rng, 200, 3, 8)
	d := buildSweep(t, ps, geom.L2, 3.0, 0).Dendrogram()
	merges := d.Merges()
	if len(merges) == 0 {
		t.Fatal("expected merges on a dense random set")
	}
	for i := 1; i < len(merges); i++ {
		if merges[i].Key < merges[i-1].Key {
			t.Fatalf("merge %d height %v < previous %v", i, merges[i].Key, merges[i-1].Key)
		}
	}
	for _, mg := range merges {
		if mg.Key > geom.L2.EpsKey(3.0) {
			t.Fatalf("merge height %v exceeds ε_max key", mg.Key)
		}
	}
}

// TestRefinement: groups at ε₁ < ε₂ refine — every ε₁-group sits
// inside exactly one ε₂-group.
func TestRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ps := randomSet(rng, 150, 2, 6)
	d := buildSweep(t, ps, geom.L2, 2.5, 0).Dendrogram()
	levels := []float64{0.1, 0.4, 0.9, 1.5, 2.5}
	prevOwner := map[int]int(nil)
	for _, eps := range levels {
		groups, err := d.GroupsAt(eps)
		if err != nil {
			t.Fatal(err)
		}
		owner := make(map[int]int, ps.Len())
		for gi, g := range groups {
			for _, p := range g {
				owner[p] = gi
			}
		}
		if prevOwner != nil {
			// Two points together at the smaller ε stay together here.
			byPrev := make(map[int]int)
			for p, pg := range prevOwner {
				if cg, ok := byPrev[pg]; ok {
					if owner[p] != cg {
						t.Fatalf("eps=%v: group %d from previous level split across coarser groups %d and %d", eps, pg, cg, owner[p])
					}
				} else {
					byPrev[pg] = owner[p]
				}
			}
		}
		prevOwner = owner
	}
}

// TestDescendingThenAscendingQueries exercises the replay-scratch
// reset path (query order must not affect answers).
func TestDescendingThenAscendingQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	ps := randomSet(rng, 120, 2, 6)
	d := buildSweep(t, ps, geom.L2, 2.0, 0).Dendrogram()
	levels := []float64{1.8, 0.3, 1.2, 0.3, 2.0, 0.05}
	for _, eps := range levels {
		got, err := d.GroupsAt(eps)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteGroups(ps, geom.L2, eps); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%v after mixed-order queries: groups diverge", eps)
		}
	}
}

// TestCompactionExactness: aggressive compaction (tiny buffer) must
// not change any answer — the MSF filter is exact, not lossy.
func TestCompactionExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ps := randomSet(rng, 180, 3, 5)
	loose := buildSweep(t, ps, geom.L2, 2.0, 0).Dendrogram()
	tight := buildSweep(t, ps, geom.L2, 2.0, 8).Dendrogram()
	if !reflect.DeepEqual(loose.Merges(), tight.Merges()) {
		t.Fatal("merge lists diverge under aggressive compaction")
	}
}

// TestBatchedAppendEquivalence: appending in many batches equals one
// batch (ids follow arrival order either way).
func TestBatchedAppendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	ps := randomSet(rng, 160, 2, 6)
	whole := buildSweep(t, ps, geom.LInf, 1.5, 0).Dendrogram()

	s, err := NewSweep(2, geom.LInf, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < ps.Len(); lo += 37 {
		hi := lo + 37
		if hi > ps.Len() {
			hi = ps.Len()
		}
		if err := s.Append(ps.Slice(lo, hi), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(whole.Merges(), s.Dendrogram().Merges()) {
		t.Fatal("batched appends diverge from single append")
	}
}

func TestSummaryAt(t *testing.T) {
	ps := geom.NewPointSet(1)
	for _, x := range []float64{0, 0.5, 1.0, 5, 5.2, 9} {
		ps.AppendPoint(geom.Point{x})
	}
	d := buildSweep(t, ps, geom.L2, 1.0, 0).Dendrogram()
	sum, err := d.SummaryAt(0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Groups: {0, 0.5, 1.0}, {5, 5.2}, {9}.
	if sum.Groups != 3 || sum.Largest != 3 {
		t.Fatalf("got %+v, want 3 groups largest 3", sum)
	}
	if want := 5.0 / 6.0; math.Abs(sum.GroupedFraction-want) > 1e-15 {
		t.Fatalf("grouped fraction %v, want %v", sum.GroupedFraction, want)
	}
}

func TestQueryValidation(t *testing.T) {
	ps := randomSet(rand.New(rand.NewSource(47)), 10, 2, 1)
	d := buildSweep(t, ps, geom.L2, 1.0, 0).Dendrogram()
	if _, err := d.GroupsAt(1.5); err != ErrEpsAboveMax {
		t.Fatalf("eps above max: got %v", err)
	}
	if _, err := d.GroupsAt(0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := d.GroupsAt(math.NaN()); err == nil {
		t.Fatal("NaN eps accepted")
	}
	if _, err := NewSweep(0, geom.L2, 1); err == nil {
		t.Fatal("dims=0 accepted")
	}
	if _, err := NewSweep(2, geom.L2, 0); err == nil {
		t.Fatal("ε_max=0 accepted")
	}
	if _, err := NewSweep(2, geom.L2, math.Inf(1)); err == nil {
		t.Fatal("ε_max=+Inf accepted")
	}
}

func TestAppendAfterDendrogram(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a, b := randomSet(rng, 80, 2, 5), randomSet(rng, 80, 2, 5)
	s := buildSweep(t, a, geom.L2, 1.5, 0)
	before := s.Dendrogram()
	beforeMerges := len(before.Merges())
	if err := s.Append(b, nil); err != nil {
		t.Fatal(err)
	}
	// The old dendrogram stays intact and answerable.
	if len(before.Merges()) != beforeMerges {
		t.Fatal("earlier dendrogram mutated by Append")
	}
	if _, err := before.GroupsAt(1.0); err != nil {
		t.Fatal(err)
	}
	// The new one covers both batches and matches brute force.
	all := geom.NewPointSet(2)
	all.AppendSet(a)
	all.AppendSet(b)
	got, err := s.Dendrogram().GroupsAt(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteGroups(all, geom.L2, 1.0); !reflect.DeepEqual(got, want) {
		t.Fatal("post-append dendrogram diverges from brute force")
	}
}

func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	ps := randomSet(rng, 100, 2, 3)
	s, err := NewSweep(2, geom.L2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := s.Append(ps, &st); err != nil {
		t.Fatal(err)
	}
	if st.IndexProbes != 100 || st.IndexUpdates != 100 {
		t.Fatalf("probes/updates %d/%d, want 100/100", st.IndexProbes, st.IndexUpdates)
	}
	if st.DistanceComputations == 0 {
		t.Fatal("no distance computations recorded on a dense set")
	}
}

// FuzzDendrogram decodes arbitrary bytes into a small point set and
// checks the structural invariants: heights nondecreasing and capped
// at the ε_max key, every level matching the brute-force components,
// and refinement across an ascending level pair.
func FuzzDendrogram(f *testing.F) {
	seed := func(vals ...uint16) []byte {
		b := make([]byte, 2*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint16(b[2*i:], v)
		}
		return b
	}
	f.Add(seed(0, 1, 2, 3, 4, 5, 6, 7), uint8(2), false)
	f.Add(seed(100, 100, 100, 101, 9000, 9001), uint8(1), false)
	f.Add(seed(0, 0, 0, 0, 0, 0, 0, 0, 0, 0), uint8(5), true)
	f.Add(seed(65535, 0, 32768, 16384, 8192, 4096, 2048, 1024), uint8(3), true)
	f.Fuzz(func(t *testing.T, raw []byte, dimByte uint8, linf bool) {
		dims := 1 + int(dimByte)%5
		coords := len(raw) / 2
		n := coords / dims
		if n == 0 {
			return
		}
		if n > 64 {
			n = 64
		}
		m := geom.L2
		if linf {
			m = geom.LInf
		}
		ps := geom.NewPointSetCap(dims, n)
		for i := 0; i < n; i++ {
			p := ps.Extend()
			for d := range p {
				v := binary.LittleEndian.Uint16(raw[2*(i*dims+d):])
				p[d] = float64(v) / 4096 // span [0, 16)
			}
		}
		const epsMax = 3.0
		s, err := NewSweep(dims, m, epsMax)
		if err != nil {
			t.Fatal(err)
		}
		s.CompactEvery = 16 // force frequent MSF filtering
		if err := s.Append(ps, nil); err != nil {
			t.Fatal(err)
		}
		d := s.Dendrogram()
		merges := d.Merges()
		maxKey := m.EpsKey(epsMax)
		for i, mg := range merges {
			if i > 0 && mg.Key < merges[i-1].Key {
				t.Fatalf("heights decrease at %d", i)
			}
			if mg.Key > maxKey {
				t.Fatalf("height %v above ε_max key %v", mg.Key, maxKey)
			}
		}
		eps1, eps2 := 0.7, 2.1
		g1, err := d.GroupsAt(eps1)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := d.GroupsAt(eps2)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{eps1, eps2, epsMax} {
			got, err := d.GroupsAt(eps)
			if err != nil {
				t.Fatal(err)
			}
			if want := bruteGroups(ps, m, eps); !reflect.DeepEqual(got, want) {
				t.Fatalf("eps=%v: diverges from brute force", eps)
			}
		}
		owner2 := make([]int, n)
		for gi, g := range g2 {
			for _, p := range g {
				owner2[p] = gi
			}
		}
		for _, g := range g1 {
			for _, p := range g[1:] {
				if owner2[p] != owner2[g[0]] {
					t.Fatalf("refinement violated: fine group %v split at coarser ε", g)
				}
			}
		}
	})
}
