package plan

import (
	"fmt"
	"math"
	"strings"

	"github.com/sgb-db/sgb/internal/exec"
	"github.com/sgb-db/sgb/internal/sqlparser"
	"github.com/sgb-db/sgb/internal/types"
)

// Column identifies one column of an intermediate row: an optional
// qualifier (table name or alias) and the column name.
type Column struct {
	Qual string
	Name string
}

// Env is the ordered column layout of an operator's output rows.
type Env []Column

// resolve finds the row index for a (possibly qualified) reference.
func (e Env) resolve(ref *sqlparser.ColumnRef) (int, error) {
	found := -1
	for i, c := range e {
		if !strings.EqualFold(c.Name, ref.Name) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(c.Qual, ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("plan: ambiguous column reference %q", ref.String())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %q", ref.String())
	}
	return found, nil
}

// subqueryPlanner plans nested SELECTs (for IN subqueries).
type subqueryPlanner interface {
	planSubquery(sel *sqlparser.SelectStmt) (exec.Operator, Env, error)
}

// compiler turns AST expressions into exec.Scalar closures. The
// optional hook intercepts nodes before structural compilation; the
// aggregate binder uses it to rewrite aggregate calls and grouping
// expressions into references to the aggregation output row.
type compiler struct {
	env  Env
	sp   subqueryPlanner
	hook func(e sqlparser.Expr) (exec.Scalar, bool, error)
}

// compileScalar compiles an expression against env. Aggregate function
// calls are rejected; grouped queries compile through the agg binder.
func compileScalar(e sqlparser.Expr, env Env, sp subqueryPlanner) (exec.Scalar, error) {
	return (&compiler{env: env, sp: sp}).compile(e)
}

func (c *compiler) compile(e sqlparser.Expr) (exec.Scalar, error) {
	if c.hook != nil {
		if s, ok, err := c.hook(e); err != nil {
			return nil, err
		} else if ok {
			return s, nil
		}
	}
	switch x := e.(type) {
	case *sqlparser.Literal:
		v := x.Val
		return func(types.Row) (types.Value, error) { return v, nil }, nil

	case *sqlparser.ColumnRef:
		idx, err := c.env.resolve(x)
		if err != nil {
			return nil, err
		}
		return func(row types.Row) (types.Value, error) { return row[idx], nil }, nil

	case *sqlparser.UnaryExpr:
		inner, err := c.compile(x.E)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return func(row types.Row) (types.Value, error) {
				v, err := inner(row)
				if err != nil {
					return types.Value{}, err
				}
				return types.Arithmetic('-', types.Int(0), v)
			}, nil
		case "NOT":
			return func(row types.Row) (types.Value, error) {
				v, err := inner(row)
				if err != nil {
					return types.Value{}, err
				}
				if v.IsNull() {
					return types.Null(), nil
				}
				return types.Bool(!v.Truthy()), nil
			}, nil
		default:
			return nil, fmt.Errorf("plan: unknown unary operator %q", x.Op)
		}

	case *sqlparser.BinaryExpr:
		return c.compileBinary(x)

	case *sqlparser.BetweenExpr:
		ev, err := c.compile(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := c.compile(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compile(x.Hi)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(row types.Row) (types.Value, error) {
			v, err := ev(row)
			if err != nil {
				return types.Value{}, err
			}
			lv, err := lo(row)
			if err != nil {
				return types.Value{}, err
			}
			hv, err := hi(row)
			if err != nil {
				return types.Value{}, err
			}
			c1, err := types.Compare(v, lv)
			if err != nil {
				return types.Value{}, err
			}
			c2, err := types.Compare(v, hv)
			if err != nil {
				return types.Value{}, err
			}
			in := c1 >= 0 && c2 <= 0
			return types.Bool(in != neg), nil
		}, nil

	case *sqlparser.InExpr:
		return c.compileIn(x)

	case *sqlparser.FuncCall:
		if _, isAgg := exec.ParseAggKind(x.Name); isAgg {
			return nil, fmt.Errorf("plan: aggregate %s() is not allowed here", x.Name)
		}
		return c.compileScalarFunc(x)

	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// compileScalarFunc compiles the built-in scalar functions: the date
// part extractors TPC-H queries need (year/month/day) and basic math.
func (c *compiler) compileScalarFunc(x *sqlparser.FuncCall) (exec.Scalar, error) {
	name := strings.ToLower(x.Name)
	arity := map[string]int{
		"year": 1, "month": 1, "day": 1,
		"abs": 1, "sqrt": 1, "floor": 1, "ceil": 1,
	}
	want, ok := arity[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown function %q", x.Name)
	}
	if x.Star || len(x.Args) != want {
		return nil, fmt.Errorf("plan: %s() takes exactly %d argument(s)", name, want)
	}
	arg, err := c.compile(x.Args[0])
	if err != nil {
		return nil, err
	}
	return func(row types.Row) (types.Value, error) {
		v, err := arg(row)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		switch name {
		case "year", "month", "day":
			if v.Kind != types.KindDate {
				return types.Value{}, fmt.Errorf("plan: %s() requires a DATE argument, got %s", name, v.Kind)
			}
			y, m, d := types.CivilFromDays(v.I)
			switch name {
			case "year":
				return types.Int(int64(y)), nil
			case "month":
				return types.Int(int64(m)), nil
			default:
				return types.Int(int64(d)), nil
			}
		case "abs":
			if v.Kind == types.KindInt {
				if v.I < 0 {
					return types.Int(-v.I), nil
				}
				return v, nil
			}
			f, err := v.AsFloat()
			if err != nil {
				return types.Value{}, err
			}
			return types.Float(math.Abs(f)), nil
		default: // sqrt, floor, ceil
			f, err := v.AsFloat()
			if err != nil {
				return types.Value{}, err
			}
			switch name {
			case "sqrt":
				if f < 0 {
					return types.Value{}, fmt.Errorf("plan: sqrt of negative value")
				}
				return types.Float(math.Sqrt(f)), nil
			case "floor":
				return types.Float(math.Floor(f)), nil
			default:
				return types.Float(math.Ceil(f)), nil
			}
		}
	}, nil
}

func (c *compiler) compileBinary(x *sqlparser.BinaryExpr) (exec.Scalar, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/":
		op := x.Op[0]
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			return types.Arithmetic(op, lv, rv)
		}, nil
	case "%":
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			li, err := lv.AsInt()
			if err != nil {
				return types.Value{}, err
			}
			ri, err := rv.AsInt()
			if err != nil {
				return types.Value{}, err
			}
			if ri == 0 {
				return types.Value{}, fmt.Errorf("plan: modulo by zero")
			}
			return types.Int(li % ri), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := x.Op
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			cmp, err := types.Compare(lv, rv)
			if err != nil {
				return types.Value{}, err
			}
			var out bool
			switch op {
			case "=":
				out = cmp == 0
			case "<>":
				out = cmp != 0
			case "<":
				out = cmp < 0
			case "<=":
				out = cmp <= 0
			case ">":
				out = cmp > 0
			case ">=":
				out = cmp >= 0
			}
			return types.Bool(out), nil
		}, nil
	case "AND":
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			if !lv.IsNull() && !lv.Truthy() {
				return types.Bool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return types.Bool(lv.Truthy() && rv.Truthy()), nil
		}, nil
	case "OR":
		return func(row types.Row) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			if !lv.IsNull() && lv.Truthy() {
				return types.Bool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null(), nil
			}
			return types.Bool(lv.Truthy() || rv.Truthy()), nil
		}, nil
	default:
		return nil, fmt.Errorf("plan: unknown binary operator %q", x.Op)
	}
}

// compileIn compiles value-list and subquery IN predicates. Subqueries
// are planned eagerly but executed lazily, once, on first evaluation
// (the materialized set is then shared by every probe). Correlated
// subqueries are not supported.
func (c *compiler) compileIn(x *sqlparser.InExpr) (exec.Scalar, error) {
	probe, err := c.compile(x.E)
	if err != nil {
		return nil, err
	}
	neg := x.Neg

	if x.Sub != nil {
		if c.sp == nil {
			return nil, fmt.Errorf("plan: subquery not allowed in this context")
		}
		subOp, subEnv, err := c.sp.planSubquery(x.Sub)
		if err != nil {
			return nil, err
		}
		if len(subEnv) != 1 {
			return nil, fmt.Errorf("plan: IN subquery must return exactly one column, got %d", len(subEnv))
		}
		var set map[types.Value]bool
		return func(row types.Row) (types.Value, error) {
			if set == nil {
				rows, err := exec.Run(subOp)
				if err != nil {
					return types.Value{}, err
				}
				set = make(map[types.Value]bool, len(rows))
				for _, r := range rows {
					set[r[0].Key()] = true
				}
			}
			v, err := probe(row)
			if err != nil {
				return types.Value{}, err
			}
			if v.IsNull() {
				return types.Null(), nil
			}
			return types.Bool(set[v.Key()] != neg), nil
		}, nil
	}

	elems := make([]exec.Scalar, len(x.List))
	for i, le := range x.List {
		ce, err := c.compile(le)
		if err != nil {
			return nil, err
		}
		elems[i] = ce
	}
	return func(row types.Row) (types.Value, error) {
		v, err := probe(row)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		for _, el := range elems {
			ev, err := el(row)
			if err != nil {
				return types.Value{}, err
			}
			cmp, err := types.Compare(v, ev)
			if err != nil {
				return types.Value{}, err
			}
			if cmp == 0 {
				return types.Bool(!neg), nil
			}
		}
		return types.Bool(neg), nil
	}, nil
}

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlparser.Expr{e}
}

// containsAggregate reports whether the expression tree contains an
// aggregate function call.
func containsAggregate(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if _, ok := exec.ParseAggKind(x.Name); ok {
			return true
		}
		for _, a := range x.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *sqlparser.UnaryExpr:
		return containsAggregate(x.E)
	case *sqlparser.BetweenExpr:
		return containsAggregate(x.E) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	case *sqlparser.InExpr:
		if containsAggregate(x.E) {
			return true
		}
		for _, l := range x.List {
			if containsAggregate(l) {
				return true
			}
		}
	}
	return false
}

// aggBinder compiles post-aggregation expressions (select items and
// HAVING) against the aggregation output layout:
//
//	[group₀ … group_{K-1}, agg₀ … agg_{M-1}]   (standard GROUP BY)
//	[agg₀ … agg_{M-1}]                          (similarity GROUP BY)
//
// Aggregate calls are deduplicated by their printed form; grouping
// expressions are matched structurally the same way. Column references
// outside both are errors.
type aggBinder struct {
	baseEnv   Env // pre-aggregation input layout (for agg arguments)
	sp        subqueryPlanner
	groupKeys []string // printed grouping expressions ("" entries disallow matching)
	aggBase   int      // index of agg₀ in the output row (K or 0)
	aggs      []exec.AggSpec
	aggKeys   []string
}

func (b *aggBinder) compile(e sqlparser.Expr) (exec.Scalar, error) {
	c := &compiler{env: nil, sp: b.sp, hook: b.hook}
	s, err := c.compile(e)
	if err != nil && strings.Contains(err.Error(), "unknown column") {
		return nil, fmt.Errorf("%v (it must appear in GROUP BY or inside an aggregate)", err)
	}
	return s, err
}

func (b *aggBinder) hook(e sqlparser.Expr) (exec.Scalar, bool, error) {
	// Grouping-expression match (standard GROUP BY only).
	printed := e.String()
	for i, gk := range b.groupKeys {
		if gk != "" && strings.EqualFold(gk, printed) {
			idx := i
			return func(row types.Row) (types.Value, error) { return row[idx], nil }, true, nil
		}
	}
	// Aggregate call.
	fc, ok := e.(*sqlparser.FuncCall)
	if !ok {
		return nil, false, nil
	}
	kind, isAgg := exec.ParseAggKind(fc.Name)
	if !isAgg {
		return nil, false, nil
	}
	if fc.Star {
		kind = exec.AggCountStar
	}
	key := strings.ToLower(fc.String())
	for i, k := range b.aggKeys {
		if k == key {
			idx := b.aggBase + i
			return func(row types.Row) (types.Value, error) { return row[idx], nil }, true, nil
		}
	}
	spec := exec.AggSpec{Kind: kind}
	for _, arg := range fc.Args {
		cs, err := compileScalar(arg, b.baseEnv, b.sp)
		if err != nil {
			return nil, false, err
		}
		spec.Args = append(spec.Args, cs)
	}
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	idx := b.aggBase + len(b.aggs)
	b.aggs = append(b.aggs, spec)
	b.aggKeys = append(b.aggKeys, key)
	return func(row types.Row) (types.Value, error) { return row[idx], nil }, true, nil
}
