// Package plan compiles parsed SQL into executable operator trees: it
// binds column references, compiles expressions to closures, extracts
// equi-join keys from WHERE conjuncts, rewrites aggregate expressions
// against grouped outputs, and instantiates the similarity group-by
// nodes with the operator options from the SGB clauses. It is the
// counterpart of the paper's "Planner and Optimizer routines [that] use
// the extended query-tree to create a similarity-aware plan-tree".
//
// Similarity-specific planning decisions made here:
//
//   - Strategy selection: the engine default is the ε-grid
//     (GridIndex), valid at any number of grouping attributes (cell
//     keys are hashed — the old d > 4 R-tree fallback is gone);
//     SGB-Any never receives Bounds-Checking (Section 7.1).
//   - The WITHIN threshold must fold to a positive numeric constant at
//     plan time.
//   - Incremental maintenance hook: when Builder.SGBIncr is set (the
//     engine's SET incremental path), similarity group-by queries over
//     a bare single-table scan — one base table, no WHERE, no join —
//     have their grouping delegated to cached per-table state. The
//     shape restriction is the soundness condition: only then is the
//     extracted point sequence a prefix-stable, append-only image of
//     the table.
package plan
