package plan

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/exec"
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/sqlparser"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// CompiledQuery is an executable query with its output column names.
type CompiledQuery struct {
	Root    exec.Operator
	Columns []string
}

// Builder compiles SELECT statements against a catalog.
type Builder struct {
	Catalog *storage.Catalog
	// SGBAlgorithm selects the evaluation strategy for similarity
	// group-by nodes. The planner default is GridIndex — the fastest
	// strategy at every dimensionality now that cell keys are hashed —
	// and benchmarks override it to compare All-Pairs, Bounds-Checking,
	// and the R-tree.
	SGBAlgorithm core.Algorithm
	// SGBParallelism is the worker count of the similarity group-by
	// pipeline: 0 (the planner default) lets the operator pick
	// GOMAXPROCS workers on large inputs, 1 forces sequential
	// evaluation, ≥ 2 forces that many workers.
	SGBParallelism int
	// SGBSeed seeds JOIN-ANY arbitration.
	SGBSeed int64
	// SGBStats, when non-nil, accumulates operator statistics.
	SGBStats *core.Stats
	// SGBIncr, when non-nil, is consulted for similarity group-by
	// queries whose input is a bare single-table scan (one base table,
	// no WHERE, no join): it may return a GroupFunc that maintains
	// cached incremental state for the table across queries — the
	// engine's INSERT-maintenance path. The shape restriction is what
	// makes caching sound: only then is the extracted point sequence a
	// prefix-stable, append-only image of the table. exprKey
	// fingerprints the grouping expressions; opt is the fully resolved
	// operator configuration.
	SGBIncr func(table, exprKey string, anySem bool, opt core.Options) exec.GroupFunc
	// SGBSweep is SGBIncr's ε-sweep sibling: consulted for EPS IN
	// queries over the same cacheable bare-scan shape, it may return a
	// SweepFunc backed by a shared per-table dendrogram (one lattice
	// entry serves every ε list below its ε_max — the cache key
	// deliberately excludes ε). epsList arrives validated and in
	// ascending order; opt.Eps is its maximum.
	SGBSweep func(table, exprKey string, epsList []float64, opt core.Options) exec.SweepFunc
}

// NewBuilder returns a Builder with the default (ε-grid) SGB strategy.
func NewBuilder(cat *storage.Catalog) *Builder {
	return &Builder{Catalog: cat, SGBAlgorithm: core.GridIndex}
}

// CompileTableExpr compiles an expression against a base table's row
// layout — the DELETE ... WHERE evaluation path, where the predicate
// runs row by row against the stored tuples rather than through an
// operator tree. Subqueries (WHERE id IN (SELECT ...)) plan against
// the builder's catalog as usual.
func (b *Builder) CompileTableExpr(t *storage.Table, e sqlparser.Expr) (exec.Scalar, error) {
	env := make(Env, len(t.Schema))
	for i, c := range t.Schema {
		env[i] = Column{Qual: t.Name, Name: c.Name}
	}
	return compileScalar(e, env, b)
}

// BuildSelect compiles a SELECT into an operator tree.
func (b *Builder) BuildSelect(sel *sqlparser.SelectStmt) (*CompiledQuery, error) {
	op, env, err := b.planSelect(sel)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(env))
	for i, c := range env {
		cols[i] = c.Name
	}
	return &CompiledQuery{Root: op, Columns: cols}, nil
}

// planSubquery implements subqueryPlanner.
func (b *Builder) planSubquery(sel *sqlparser.SelectStmt) (exec.Operator, Env, error) {
	return b.planSelect(sel)
}

// plannedInput is one FROM item: its operator, column layout, and a
// row-count estimate (-1 when unknown) used to pick hash-join build
// sides.
type plannedInput struct {
	op  exec.Operator
	env Env
	est int
}

func (b *Builder) planSelect(sel *sqlparser.SelectStmt) (exec.Operator, Env, error) {
	// FROM clause.
	var conjuncts []sqlparser.Expr
	if sel.Where != nil {
		conjuncts = splitConjuncts(sel.Where)
	}
	var current plannedInput
	switch {
	case len(sel.From) == 0:
		current = plannedInput{op: &exec.ValuesOp{Rows: []types.Row{{}}}, est: 1}
	default:
		inputs := make([]plannedInput, len(sel.From))
		for i, ref := range sel.From {
			in, err := b.planTableRef(ref)
			if err != nil {
				return nil, nil, err
			}
			inputs[i] = in
		}
		// Predicate pushdown: single-input conjuncts filter before joins.
		for i := range inputs {
			inputs[i], conjuncts = b.pushFilters(inputs[i], conjuncts)
		}
		// Left-deep join folding in FROM order.
		current = inputs[0]
		for _, next := range inputs[1:] {
			joined, rest, err := b.join(current, next, conjuncts)
			if err != nil {
				return nil, nil, err
			}
			current, conjuncts = joined, rest
		}
	}
	// Residual WHERE conjuncts (e.g. IN subqueries, cross-input
	// non-equi predicates).
	for _, cj := range conjuncts {
		pred, err := compileScalar(cj, current.env, b)
		if err != nil {
			return nil, nil, err
		}
		current.op = &exec.Filter{Input: current.op, Pred: pred}
	}

	// Grouping and projection.
	hasAggs := sel.Having != nil && containsAggregate(sel.Having)
	for _, item := range sel.Items {
		if !item.Star && containsAggregate(item.Expr) {
			hasAggs = true
		}
	}
	var (
		op     exec.Operator
		outEnv Env
		err    error
	)
	switch {
	case sel.GroupBy != nil && sel.GroupBy.Similarity != nil:
		op, outEnv, err = b.planSimilarityGroupBy(sel, current)
	case sel.GroupBy != nil || hasAggs:
		op, outEnv, err = b.planGroupBy(sel, current)
	default:
		if sel.Having != nil {
			return nil, nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
		}
		op, outEnv, err = b.planProjection(sel, current)
	}
	if err != nil {
		return nil, nil, err
	}

	if sel.Distinct {
		op = &exec.Distinct{Input: op}
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(sel.OrderBy))
		for i, item := range sel.OrderBy {
			s, err := b.compileOrderKey(item.Expr, outEnv)
			if err != nil {
				return nil, nil, err
			}
			keys[i] = exec.SortKey{Expr: s, Desc: item.Desc}
		}
		op = &exec.Sort{Input: op, Keys: keys}
	}
	if sel.Limit != nil {
		op = &exec.Limit{Input: op, N: *sel.Limit}
	}
	return op, outEnv, nil
}

// compileOrderKey resolves an ORDER BY key against the output schema
// (select aliases and names), with ordinal support (ORDER BY 2).
func (b *Builder) compileOrderKey(e sqlparser.Expr, outEnv Env) (exec.Scalar, error) {
	if lit, ok := e.(*sqlparser.Literal); ok && lit.Val.Kind == types.KindInt {
		idx := int(lit.Val.I) - 1
		if idx < 0 || idx >= len(outEnv) {
			return nil, fmt.Errorf("plan: ORDER BY position %d out of range", lit.Val.I)
		}
		return func(row types.Row) (types.Value, error) { return row[idx], nil }, nil
	}
	return compileScalar(e, outEnv, b)
}

func (b *Builder) planTableRef(ref sqlparser.TableRef) (plannedInput, error) {
	switch r := ref.(type) {
	case *sqlparser.BaseTable:
		t, err := b.Catalog.Lookup(r.Name)
		if err != nil {
			return plannedInput{}, err
		}
		qual := r.Name
		if r.Alias != "" {
			qual = r.Alias
		}
		env := make(Env, len(t.Schema))
		for i, c := range t.Schema {
			env[i] = Column{Qual: qual, Name: c.Name}
		}
		return plannedInput{op: &exec.SeqScan{Table: t}, env: env, est: t.Len()}, nil

	case *sqlparser.SubqueryTable:
		op, env, err := b.planSelect(r.Select)
		if err != nil {
			return plannedInput{}, err
		}
		requal := make(Env, len(env))
		for i, c := range env {
			requal[i] = Column{Qual: r.Alias, Name: c.Name}
		}
		return plannedInput{op: op, env: requal, est: -1}, nil

	case *sqlparser.JoinTable:
		left, err := b.planTableRef(r.Left)
		if err != nil {
			return plannedInput{}, err
		}
		right, err := b.planTableRef(r.Right)
		if err != nil {
			return plannedInput{}, err
		}
		joined, rest, err := b.join(left, right, splitConjuncts(r.Cond))
		if err != nil {
			return plannedInput{}, err
		}
		// ON-clause conjuncts must all apply within this join.
		for _, cj := range rest {
			pred, err := compileScalar(cj, joined.env, b)
			if err != nil {
				return plannedInput{}, err
			}
			joined.op = &exec.Filter{Input: joined.op, Pred: pred}
		}
		return joined, nil

	default:
		return plannedInput{}, fmt.Errorf("plan: unsupported table reference %T", ref)
	}
}

// pushFilters attaches every conjunct that references only this input
// as a pre-join filter, returning the remaining conjuncts.
func (b *Builder) pushFilters(in plannedInput, conjuncts []sqlparser.Expr) (plannedInput, []sqlparser.Expr) {
	var rest []sqlparser.Expr
	for _, cj := range conjuncts {
		if pred, err := compileScalar(cj, in.env, b); err == nil {
			in.op = &exec.Filter{Input: in.op, Pred: pred}
		} else {
			rest = append(rest, cj)
		}
	}
	return in, rest
}

// join combines two inputs: conjuncts of the form left.x = right.y
// become hash-join keys; other conjuncts that reference only the
// combined row become residual predicates; the rest are returned for
// later placement. Without equi keys the join degrades to a nested
// loop. The smaller estimated side becomes the hash build side.
func (b *Builder) join(l, r plannedInput, conjuncts []sqlparser.Expr) (plannedInput, []sqlparser.Expr, error) {
	// Pick the build side (hash table) — smaller estimate, defaulting
	// to the left input. Output layout is build ++ probe.
	build, probe := l, r
	if l.est < 0 || (r.est >= 0 && r.est < l.est) {
		build, probe = r, l
	}
	env := append(append(Env{}, build.env...), probe.env...)

	var buildKeys, probeKeys []exec.Scalar
	var residuals []exec.Scalar
	var rest []sqlparser.Expr
	for _, cj := range conjuncts {
		if bk, pk, ok := b.equiKeys(cj, build.env, probe.env); ok {
			buildKeys = append(buildKeys, bk)
			probeKeys = append(probeKeys, pk)
			continue
		}
		if pred, err := compileScalar(cj, env, b); err == nil {
			residuals = append(residuals, pred)
			continue
		}
		rest = append(rest, cj)
	}

	est := -1
	if build.est >= 0 && probe.est >= 0 {
		est = max(build.est, probe.est)
	}
	if len(buildKeys) > 0 {
		residual := andAll(residuals)
		op := &exec.HashJoin{
			Left: build.op, Right: probe.op,
			LeftKeys: buildKeys, RightKeys: probeKeys,
			Residual: residual,
		}
		return plannedInput{op: op, env: env, est: est}, rest, nil
	}
	op := &exec.NestedLoopJoin{Left: build.op, Right: probe.op, Cond: andAll(residuals)}
	return plannedInput{op: op, env: env, est: est}, rest, nil
}

// equiKeys recognizes `a = b` with one side referencing only the build
// env and the other only the probe env.
func (b *Builder) equiKeys(cj sqlparser.Expr, buildEnv, probeEnv Env) (bk, pk exec.Scalar, ok bool) {
	eq, isEq := cj.(*sqlparser.BinaryExpr)
	if !isEq || eq.Op != "=" {
		return nil, nil, false
	}
	lOnBuild, el1 := compileScalar(eq.L, buildEnv, b)
	rOnProbe, er1 := compileScalar(eq.R, probeEnv, b)
	if el1 == nil && er1 == nil {
		return lOnBuild, rOnProbe, true
	}
	lOnProbe, el2 := compileScalar(eq.L, probeEnv, b)
	rOnBuild, er2 := compileScalar(eq.R, buildEnv, b)
	if el2 == nil && er2 == nil {
		return rOnBuild, lOnProbe, true
	}
	return nil, nil, false
}

// andAll folds predicates into a single conjunction (nil when empty).
func andAll(preds []exec.Scalar) exec.Scalar {
	if len(preds) == 0 {
		return nil
	}
	if len(preds) == 1 {
		return preds[0]
	}
	return func(row types.Row) (types.Value, error) {
		for _, p := range preds {
			v, err := p(row)
			if err != nil {
				return types.Value{}, err
			}
			if !v.Truthy() {
				return types.Bool(false), nil
			}
		}
		return types.Bool(true), nil
	}
}

// planProjection handles SELECT without grouping or aggregation.
func (b *Builder) planProjection(sel *sqlparser.SelectStmt, in plannedInput) (exec.Operator, Env, error) {
	var exprs []exec.Scalar
	var outEnv Env
	for i, item := range sel.Items {
		if item.Star {
			for j, c := range in.env {
				idx := j
				exprs = append(exprs, func(row types.Row) (types.Value, error) { return row[idx], nil })
				outEnv = append(outEnv, Column{Name: c.Name})
			}
			continue
		}
		s, err := compileScalar(item.Expr, in.env, b)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, s)
		outEnv = append(outEnv, Column{Name: outputName(item, i)})
	}
	return &exec.Project{Input: in.op, Exprs: exprs}, outEnv, nil
}

// planGroupBy handles standard GROUP BY and scalar aggregation.
func (b *Builder) planGroupBy(sel *sqlparser.SelectStmt, in plannedInput) (exec.Operator, Env, error) {
	var groupExprs []sqlparser.Expr
	if sel.GroupBy != nil {
		groupExprs = sel.GroupBy.Exprs
	}
	groups := make([]exec.Scalar, len(groupExprs))
	groupKeys := make([]string, len(groupExprs))
	for i, ge := range groupExprs {
		s, err := compileScalar(ge, in.env, b)
		if err != nil {
			return nil, nil, err
		}
		groups[i] = s
		groupKeys[i] = ge.String()
	}

	binder := &aggBinder{baseEnv: in.env, sp: b, groupKeys: groupKeys, aggBase: len(groupExprs)}
	selScalars, outEnv, err := b.compileSelectItems(sel, binder)
	if err != nil {
		return nil, nil, err
	}
	var havingPred exec.Scalar
	if sel.Having != nil {
		havingPred, err = binder.compile(sel.Having)
		if err != nil {
			return nil, nil, err
		}
	}

	var op exec.Operator = &exec.HashAgg{Input: in.op, Groups: groups, Aggs: binder.aggs}
	if havingPred != nil {
		op = &exec.Filter{Input: op, Pred: havingPred}
	}
	return &exec.Project{Input: op, Exprs: selScalars}, outEnv, nil
}

// planSimilarityGroupBy builds the SGB-All / SGB-Any plan node.
func (b *Builder) planSimilarityGroupBy(sel *sqlparser.SelectStmt, in plannedInput) (exec.Operator, Env, error) {
	gb := sel.GroupBy
	sim := gb.Similarity

	groupExprs := make([]exec.Scalar, len(gb.Exprs))
	for i, ge := range gb.Exprs {
		s, err := compileScalar(ge, in.env, b)
		if err != nil {
			return nil, nil, err
		}
		groupExprs[i] = s
	}

	opt := core.Options{
		Algorithm:   b.SGBAlgorithm,
		Parallelism: b.SGBParallelism,
		Seed:        b.SGBSeed,
		Stats:       b.SGBStats,
	}
	switch sim.Metric {
	case sqlparser.MetricL2:
		opt.Metric = geom.L2
	case sqlparser.MetricLInf:
		opt.Metric = geom.LInf
	}
	switch sim.Overlap {
	case sqlparser.OverlapJoinAny:
		opt.Overlap = core.JoinAny
	case sqlparser.OverlapEliminate:
		opt.Overlap = core.Eliminate
	case sqlparser.OverlapFormNewGroup:
		opt.Overlap = core.FormNewGroup
	}
	if sim.Semantics == sqlparser.SemanticsAny && opt.Algorithm == core.BoundsCheck {
		// SGB-Any has no bounds-checking variant (Section 7.1).
		opt.Algorithm = core.OnTheFlyIndex
	}

	if len(sim.EpsList) > 0 {
		return b.planEpsSweep(sel, in, gb, sim, groupExprs, opt)
	}

	// ε must be a positive numeric constant.
	epsScalar, err := compileScalar(sim.Eps, nil, b)
	if err != nil {
		return nil, nil, fmt.Errorf("plan: WITHIN threshold must be a constant: %v", err)
	}
	epsVal, err := epsScalar(nil)
	if err != nil {
		return nil, nil, err
	}
	eps, err := epsVal.AsFloat()
	if err != nil || eps <= 0 {
		return nil, nil, fmt.Errorf("plan: WITHIN threshold must be a positive number, got %v", epsVal)
	}
	opt.Eps = eps

	// Similarity grouping exposes no grouping columns: every select
	// item and the HAVING clause must be built from aggregates.
	binder := &aggBinder{baseEnv: in.env, sp: b, aggBase: 0}
	selScalars, outEnv, err := b.compileSelectItems(sel, binder)
	if err != nil {
		return nil, nil, err
	}
	var havingPred exec.Scalar
	if sel.Having != nil {
		havingPred, err = binder.compile(sel.Having)
		if err != nil {
			return nil, nil, err
		}
	}

	sgbNode := &exec.SGB{
		Input:      in.op,
		GroupExprs: groupExprs,
		Any:        sim.Semantics == sqlparser.SemanticsAny,
		Opt:        opt,
		Aggs:       binder.aggs,
	}
	// Incremental maintenance applies only to the cacheable shape: a
	// bare scan of one base table with no filtering, so the operator's
	// input is exactly the table's rows in insertion order and a later
	// query's input extends an earlier one's purely by appending.
	if b.SGBIncr != nil && sel.Where == nil && len(sel.From) == 1 {
		if bt, ok := sel.From[0].(*sqlparser.BaseTable); ok {
			keys := make([]string, len(gb.Exprs))
			for i, ge := range gb.Exprs {
				keys[i] = ge.String()
			}
			sgbNode.Group = b.SGBIncr(bt.Name, strings.Join(keys, ","), sgbNode.Any, opt)
		}
	}
	var op exec.Operator = sgbNode
	if havingPred != nil {
		op = &exec.Filter{Input: op, Pred: havingPred}
	}
	return &exec.Project{Input: op, Exprs: selScalars}, outEnv, nil
}

// planEpsSweep lowers the EPS IN (...) / SIMILARITY CUBE BY EPS forms
// of the similarity clause: every level is answered from one shared
// dendrogram, rows are emitted level by level in ascending ε order,
// and the level's ε rides along as output column 0 — exposed to the
// projection and HAVING as the pseudo-column "eps" (cube queries
// instead get the fixed rollup schema and must be SELECT *).
func (b *Builder) planEpsSweep(sel *sqlparser.SelectStmt, in plannedInput, gb *sqlparser.GroupByClause, sim *sqlparser.SimilarityClause, groupExprs []exec.Scalar, opt core.Options) (exec.Operator, Env, error) {
	epsList := make([]float64, len(sim.EpsList))
	for i, e := range sim.EpsList {
		s, err := compileScalar(e, nil, b)
		if err != nil {
			return nil, nil, fmt.Errorf("plan: EPS IN level %d must be a constant: %v", i+1, err)
		}
		v, err := s(nil)
		if err != nil {
			return nil, nil, err
		}
		f, err := v.AsFloat()
		if err != nil {
			return nil, nil, fmt.Errorf("plan: EPS IN level %d must be numeric, got %v", i+1, v)
		}
		epsList[i] = f
	}
	// Named validation errors shared with the Go API: non-positive,
	// duplicate (checked before sorting so the message reflects the
	// query's spelling).
	if err := core.ValidateEpsList(epsList); err != nil {
		return nil, nil, err
	}
	sort.Float64s(epsList)
	opt.Eps = epsList[len(epsList)-1] // the sweep's ε_max

	sgbNode := &exec.SGB{
		Input:      in.op,
		GroupExprs: groupExprs,
		Any:        true,
		Opt:        opt,
		EpsList:    epsList,
		Cube:       sim.Cube,
	}

	var (
		selScalars []exec.Scalar
		outEnv     Env
		havingPred exec.Scalar
		err        error
	)
	if sim.Cube {
		// The cube defines its own row schema; the query must take it
		// as-is.
		if len(sel.Items) != 1 || !sel.Items[0].Star {
			return nil, nil, fmt.Errorf("plan: SIMILARITY CUBE BY EPS requires SELECT * (the cube emits its own schema: eps, group_count, largest_group, grouped_fraction)")
		}
		if sel.Having != nil {
			return nil, nil, fmt.Errorf("plan: HAVING is not supported with SIMILARITY CUBE BY EPS")
		}
		for i := 0; i < 4; i++ {
			idx := i
			selScalars = append(selScalars, func(row types.Row) (types.Value, error) { return row[idx], nil })
		}
		outEnv = Env{
			{Name: "eps"},
			{Name: "group_count"},
			{Name: "largest_group"},
			{Name: "grouped_fraction"},
		}
	} else {
		binder := &aggBinder{baseEnv: in.env, sp: b, groupKeys: []string{"eps"}, aggBase: 1}
		selScalars, outEnv, err = b.compileSelectItems(sel, binder)
		if err != nil {
			return nil, nil, err
		}
		if sel.Having != nil {
			havingPred, err = binder.compile(sel.Having)
			if err != nil {
				return nil, nil, err
			}
		}
		sgbNode.Aggs = binder.aggs
	}

	// The shared-dendrogram cache applies to the same shape SGBIncr
	// requires: a bare single-table scan, whose point sequence is an
	// append-only image of the table.
	if b.SGBSweep != nil && sel.Where == nil && len(sel.From) == 1 {
		if bt, ok := sel.From[0].(*sqlparser.BaseTable); ok {
			keys := make([]string, len(gb.Exprs))
			for i, ge := range gb.Exprs {
				keys[i] = ge.String()
			}
			sgbNode.SweepGroup = b.SGBSweep(bt.Name, strings.Join(keys, ","), epsList, opt)
		}
	}
	var op exec.Operator = sgbNode
	if havingPred != nil {
		op = &exec.Filter{Input: op, Pred: havingPred}
	}
	return &exec.Project{Input: op, Exprs: selScalars}, outEnv, nil
}

// compileSelectItems compiles the projection through the agg binder.
func (b *Builder) compileSelectItems(sel *sqlparser.SelectStmt, binder *aggBinder) ([]exec.Scalar, Env, error) {
	var scalars []exec.Scalar
	var outEnv Env
	for i, item := range sel.Items {
		if item.Star {
			return nil, nil, fmt.Errorf("plan: SELECT * is incompatible with grouping/aggregation")
		}
		s, err := binder.compile(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		scalars = append(scalars, s)
		outEnv = append(outEnv, Column{Name: outputName(item, i)})
	}
	return scalars, outEnv, nil
}

// outputName derives the result column name for a select item.
func outputName(item sqlparser.SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparser.ColumnRef:
		return e.Name
	case *sqlparser.FuncCall:
		return e.Name
	default:
		return fmt.Sprintf("col%d", i+1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
