package plan

import (
	"github.com/sgb-db/sgb/internal/exec"
	"github.com/sgb-db/sgb/internal/sqlparser"
	"github.com/sgb-db/sgb/internal/types"
)

// CompileConstant evaluates a row-independent expression (literals and
// arithmetic over them, including date/interval math). Used for
// INSERT ... VALUES and similarity thresholds.
func CompileConstant(e sqlparser.Expr) (types.Value, error) {
	s, err := compileScalar(e, nil, nil)
	if err != nil {
		return types.Value{}, err
	}
	return s(nil)
}

// Execute drains a compiled query into a fully materialized result.
func Execute(cq *CompiledQuery) ([]types.Row, error) {
	return exec.Run(cq.Root)
}
