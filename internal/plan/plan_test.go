package plan

import (
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/core"
	"github.com/sgb-db/sgb/internal/exec"
	"github.com/sgb-db/sgb/internal/sqlparser"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	users := storage.NewTable("users", storage.Schema{
		{Name: "uid", Type: types.KindInt},
		{Name: "name", Type: types.KindText},
		{Name: "bal", Type: types.KindFloat},
	})
	users.MustInsert(types.Row{types.Int(1), types.Text("ann"), types.Float(10)})
	users.MustInsert(types.Row{types.Int(2), types.Text("bob"), types.Float(20)})
	users.MustInsert(types.Row{types.Int(3), types.Text("eve"), types.Float(30)})
	orders := storage.NewTable("orders", storage.Schema{
		{Name: "oid", Type: types.KindInt},
		{Name: "uid", Type: types.KindInt},
		{Name: "amt", Type: types.KindFloat},
	})
	orders.MustInsert(types.Row{types.Int(100), types.Int(1), types.Float(5)})
	orders.MustInsert(types.Row{types.Int(101), types.Int(2), types.Float(7)})
	orders.MustInsert(types.Row{types.Int(102), types.Int(1), types.Float(9)})
	if err := cat.Create(users); err != nil {
		t.Fatal(err)
	}
	if err := cat.Create(orders); err != nil {
		t.Fatal(err)
	}
	return cat
}

func runQuery(t *testing.T, cat *storage.Catalog, sql string) ([]types.Row, []string) {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cq, err := NewBuilder(cat).BuildSelect(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rows, err := Execute(cq)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return rows, cq.Columns
}

func mustFail(t *testing.T, cat *storage.Catalog, sql, wantSub string) {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	cq, err := NewBuilder(cat).BuildSelect(sel)
	if err == nil {
		_, err = Execute(cq)
	}
	if err == nil {
		t.Fatalf("query %q did not fail", sql)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("query %q error %q does not contain %q", sql, err, wantSub)
	}
}

func TestColumnResolution(t *testing.T) {
	cat := testCatalog(t)
	// Qualified and unqualified references, alias qualification.
	rows, cols := runQuery(t, cat, "SELECT u.name, bal FROM users u WHERE u.uid = 2")
	if len(rows) != 1 || rows[0][0].S != "bob" || rows[0][1].F != 20 {
		t.Fatalf("rows = %v", rows)
	}
	if cols[0] != "name" || cols[1] != "bal" {
		t.Fatalf("cols = %v", cols)
	}
	// Ambiguity across join inputs.
	mustFail(t, cat, "SELECT uid FROM users, orders WHERE users.uid = orders.uid", "ambiguous")
	// Unknown column.
	mustFail(t, cat, "SELECT ghost FROM users", "unknown column")
	// Unknown qualifier.
	mustFail(t, cat, "SELECT x.uid FROM users", "unknown column")
}

func TestJoinKeyExtraction(t *testing.T) {
	cat := testCatalog(t)
	// Equi conjunct becomes a hash join; non-equi residual still applies.
	rows, _ := runQuery(t, cat, `
		SELECT name, amt FROM users, orders
		WHERE users.uid = orders.uid AND amt > 5 ORDER BY amt`)
	if len(rows) != 2 || rows[0][1].F != 7 || rows[1][1].F != 9 {
		t.Fatalf("rows = %v", rows)
	}
	// Swapped operand order still extracts keys.
	rows, _ = runQuery(t, cat, `
		SELECT count(*) FROM users, orders WHERE orders.uid = users.uid`)
	if rows[0][0].I != 3 {
		t.Fatalf("swapped keys: %v", rows)
	}
}

func TestAggregateRewriting(t *testing.T) {
	cat := testCatalog(t)
	// The same aggregate expression in SELECT and HAVING is computed once;
	// arithmetic over aggregates works.
	rows, _ := runQuery(t, cat, `
		SELECT uid, sum(amt) + 1, count(*) FROM orders
		GROUP BY uid HAVING sum(amt) > 6 ORDER BY uid`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 1 || rows[0][1].F != 15 || rows[0][2].I != 2 {
		t.Fatalf("group 1 = %v", rows[0])
	}
	// Grouping expression reuse in select (structural match).
	rows, _ = runQuery(t, cat, `
		SELECT uid % 2, count(*) FROM orders GROUP BY uid % 2 ORDER BY 1`)
	if len(rows) != 2 {
		t.Fatalf("mod groups = %v", rows)
	}
	// Bare column that is neither grouped nor aggregated is an error.
	mustFail(t, cat, "SELECT amt FROM orders GROUP BY uid", "GROUP BY")
}

func TestSimilarityPlanning(t *testing.T) {
	cat := testCatalog(t)
	pts := storage.NewTable("pts", storage.Schema{
		{Name: "x", Type: types.KindFloat},
		{Name: "y", Type: types.KindFloat},
	})
	for _, p := range [][2]float64{{0, 0}, {1, 1}, {10, 10}, {11, 11}} {
		pts.MustInsert(types.Row{types.Float(p[0]), types.Float(p[1])})
	}
	if err := cat.Create(pts); err != nil {
		t.Fatal(err)
	}
	rows, _ := runQuery(t, cat, `
		SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 2 ON-OVERLAP JOIN-ANY`)
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 2 {
		t.Fatalf("sgb rows = %v", rows)
	}
	// ε must be a positive constant.
	mustFail(t, cat, `SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0`, "positive")
	mustFail(t, cat, `SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN x`, "constant")
	// ε can be a constant expression.
	rows, _ = runQuery(t, cat, `
		SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1 + 1`)
	if len(rows) != 2 {
		t.Fatalf("const-expr eps rows = %v", rows)
	}
	// Bare columns are rejected under similarity grouping.
	mustFail(t, cat, `SELECT x FROM pts
		GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1`, "")
	// SELECT * is rejected with grouping.
	mustFail(t, cat, `SELECT * FROM pts
		GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1`, "")
}

func TestBuilderAlgorithmOverride(t *testing.T) {
	cat := testCatalog(t)
	pts := storage.NewTable("p2", storage.Schema{
		{Name: "x", Type: types.KindFloat},
		{Name: "y", Type: types.KindFloat},
	})
	for i := 0; i < 50; i++ {
		pts.MustInsert(types.Row{types.Float(float64(i % 7)), types.Float(float64(i % 5))})
	}
	if err := cat.Create(pts); err != nil {
		t.Fatal(err)
	}
	sel, err := sqlparser.ParseSelect(`SELECT count(*) FROM p2
		GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.5`)
	if err != nil {
		t.Fatal(err)
	}
	// BoundsCheck silently upgrades to the index for SGB-Any.
	b := NewBuilder(cat)
	b.SGBAlgorithm = core.BoundsCheck
	st := &core.Stats{}
	b.SGBStats = st
	cq, err := b.BuildSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(cq); err != nil {
		t.Fatalf("bounds-check any: %v", err)
	}
	if st.IndexProbes == 0 {
		t.Error("stats did not flow through the builder")
	}
}

func TestBuilderDefaultsAndHighDim(t *testing.T) {
	cat := testCatalog(t)
	if b := NewBuilder(cat); b.SGBAlgorithm != core.GridIndex {
		t.Fatalf("planner default algorithm = %v, want GridIndex", b.SGBAlgorithm)
	}
	// Five grouping attributes: the hashed-cell grid handles any
	// dimensionality, so the plan keeps the GridIndex strategy (the old
	// d > 4 R-tree fallback is gone) and must still execute.
	wide := storage.NewTable("p5", storage.Schema{
		{Name: "a", Type: types.KindFloat},
		{Name: "b", Type: types.KindFloat},
		{Name: "c", Type: types.KindFloat},
		{Name: "d", Type: types.KindFloat},
		{Name: "e", Type: types.KindFloat},
	})
	for i := 0; i < 40; i++ {
		f := types.Float(float64(i % 6))
		wide.MustInsert(types.Row{f, f, f, f, f})
	}
	if err := cat.Create(wide); err != nil {
		t.Fatal(err)
	}
	sel, err := sqlparser.ParseSelect(`SELECT count(*) FROM p5
		GROUP BY a, b, c, d, e DISTANCE-TO-ANY L2 WITHIN 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(cat)
	b.SGBParallelism = 3 // threads through to core.Options
	cq, err := b.BuildSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	if proj, ok := cq.Root.(*exec.Project); ok {
		if sgbNode, ok := proj.Input.(*exec.SGB); !ok || sgbNode.Opt.Algorithm != core.GridIndex {
			t.Fatalf("5-d plan did not keep the GridIndex strategy")
		}
	} else {
		t.Fatalf("unexpected plan root %T", cq.Root)
	}
	rows, err := Execute(cq)
	if err != nil {
		t.Fatalf("5-d similarity grouping: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d groups, want 6", len(rows))
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	cat := testCatalog(t)
	rows, _ := runQuery(t, cat, "SELECT name, bal AS b FROM users ORDER BY 2 DESC")
	if rows[0][0].S != "eve" {
		t.Fatalf("ordinal sort = %v", rows)
	}
	rows, _ = runQuery(t, cat, "SELECT name, bal AS b FROM users ORDER BY b")
	if rows[0][0].S != "ann" {
		t.Fatalf("alias sort = %v", rows)
	}
	mustFail(t, cat, "SELECT name FROM users ORDER BY 5", "out of range")
}

func TestConstantCompilation(t *testing.T) {
	e, err := sqlparser.ParseSelect("SELECT 2 * 3 + 1")
	if err != nil {
		t.Fatal(err)
	}
	v, err := CompileConstant(e.Items[0].Expr)
	if err != nil || v.I != 7 {
		t.Fatalf("const = %v, %v", v, err)
	}
	// Date arithmetic folds too.
	e, err = sqlparser.ParseSelect("SELECT date '1995-01-01' + interval '1' month")
	if err != nil {
		t.Fatal(err)
	}
	v, err = CompileConstant(e.Items[0].Expr)
	if err != nil || v.String() != "1995-02-01" {
		t.Fatalf("const date = %v, %v", v, err)
	}
}

func TestScalarFunctions(t *testing.T) {
	cat := testCatalog(t)
	ship := storage.NewTable("ship", storage.Schema{
		{Name: "d", Type: types.KindDate},
		{Name: "v", Type: types.KindFloat},
	})
	dv, _ := types.ParseDate("1995-03-15")
	ship.MustInsert(types.Row{dv, types.Float(-2.25)})
	if err := cat.Create(ship); err != nil {
		t.Fatal(err)
	}
	rows, _ := runQuery(t, cat,
		"SELECT year(d), month(d), day(d), abs(v), floor(v), ceil(v), sqrt(4) FROM ship")
	r := rows[0]
	if r[0].I != 1995 || r[1].I != 3 || r[2].I != 15 {
		t.Fatalf("date parts = %v", r)
	}
	if r[3].F != 2.25 || r[4].F != -3 || r[5].F != -2 || r[6].F != 2 {
		t.Fatalf("math funcs = %v", r)
	}
	mustFail(t, cat, "SELECT year(v) FROM ship", "DATE")
	mustFail(t, cat, "SELECT sqrt(v) FROM ship", "negative")
	mustFail(t, cat, "SELECT nosuchfn(v) FROM ship", "unknown function")
	mustFail(t, cat, "SELECT abs(v, v) FROM ship", "argument")
}

func TestGroupByYearFunction(t *testing.T) {
	// The GB2/Q9 pattern: grouping by a scalar function of a column and
	// reusing it in the projection.
	cat := storage.NewCatalog()
	tbl := storage.NewTable("ev", storage.Schema{
		{Name: "d", Type: types.KindDate},
		{Name: "amt", Type: types.KindInt},
	})
	for _, row := range []struct {
		date string
		amt  int64
	}{
		{"1995-01-10", 5}, {"1995-06-10", 7}, {"1996-01-10", 1},
	} {
		dv, _ := types.ParseDate(row.date)
		tbl.MustInsert(types.Row{dv, types.Int(row.amt)})
	}
	if err := cat.Create(tbl); err != nil {
		t.Fatal(err)
	}
	rows, _ := runQuery(t, cat, `
		SELECT year(d) AS y, sum(amt) FROM ev GROUP BY year(d) ORDER BY y`)
	if len(rows) != 2 || rows[0][0].I != 1995 || rows[0][1].I != 12 || rows[1][1].I != 1 {
		t.Fatalf("year grouping = %v", rows)
	}
}

func TestNoFromSelect(t *testing.T) {
	cat := storage.NewCatalog()
	rows, cols := runQuery(t, cat, "SELECT 1 + 1 AS two, 'x'")
	if len(rows) != 1 || rows[0][0].I != 2 || rows[0][1].S != "x" {
		t.Fatalf("no-from = %v", rows)
	}
	if cols[0] != "two" {
		t.Fatalf("cols = %v", cols)
	}
}

func TestHavingWithoutGroupByRejected(t *testing.T) {
	cat := testCatalog(t)
	mustFail(t, cat, "SELECT name FROM users HAVING name = 'ann'", "HAVING")
}
