package plan

import (
	"testing"

	"github.com/sgb-db/sgb/internal/sqlparser"
	"github.com/sgb-db/sgb/internal/storage"
	"github.com/sgb-db/sgb/internal/types"
)

// exprCatalog builds a single-table catalog for expression tests.
func exprCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	tbl := storage.NewTable("t", storage.Schema{
		{Name: "a", Type: types.KindInt},
		{Name: "b", Type: types.KindInt},
		{Name: "s", Type: types.KindText},
		{Name: "f", Type: types.KindFloat},
	})
	tbl.MustInsert(types.Row{types.Int(1), types.Int(10), types.Text("x"), types.Float(1.5)})
	tbl.MustInsert(types.Row{types.Int(2), types.Int(20), types.Text("y"), types.Float(-2.5)})
	tbl.MustInsert(types.Row{types.Int(3), types.Int(30), types.Null(), types.Null()})
	if err := cat.Create(tbl); err != nil {
		t.Fatal(err)
	}
	return cat
}

func queryVals(t *testing.T, cat *storage.Catalog, sql string) []types.Row {
	t.Helper()
	rows, _ := runQuery(t, cat, sql)
	return rows
}

func TestComparisonOperators(t *testing.T) {
	cat := exprCatalog(t)
	cases := []struct {
		where string
		want  int
	}{
		{"a = 2", 1},
		{"a <> 2", 2},
		{"a != 2", 2},
		{"a < 2", 1},
		{"a <= 2", 2},
		{"a > 2", 1},
		{"a >= 2", 2},
		{"a BETWEEN 2 AND 3", 2},
		{"a NOT BETWEEN 2 AND 3", 1},
		{"a IN (1, 3)", 2},
		{"a NOT IN (1, 3)", 1},
		{"NOT a = 1", 2},
		{"a = 1 OR a = 3", 2},
		{"a = 1 AND b = 10", 1},
		{"a = 1 AND b = 20", 0},
		{"TRUE", 3},
		{"FALSE", 0},
	}
	for _, c := range cases {
		rows := queryVals(t, cat, "SELECT a FROM t WHERE "+c.where)
		if len(rows) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(rows), c.want)
		}
	}
}

func TestNullComparisonSemantics(t *testing.T) {
	cat := exprCatalog(t)
	// s IS NULL on row 3: comparisons with NULL are not TRUE, so the
	// row never qualifies, even under NOT.
	if rows := queryVals(t, cat, "SELECT a FROM t WHERE s = 'x'"); len(rows) != 1 {
		t.Errorf("null =: %d rows", len(rows))
	}
	if rows := queryVals(t, cat, "SELECT a FROM t WHERE NOT s = 'x'"); len(rows) != 1 {
		t.Errorf("null NOT: %d rows", len(rows))
	}
	if rows := queryVals(t, cat, "SELECT a FROM t WHERE s IN ('x', 'y')"); len(rows) != 2 {
		t.Errorf("null IN: %d rows", len(rows))
	}
	// NULL propagates through arithmetic.
	rows := queryVals(t, cat, "SELECT f + 1 FROM t WHERE a = 3")
	if !rows[0][0].IsNull() {
		t.Errorf("NULL arithmetic = %v", rows[0][0])
	}
}

func TestArithmeticExpressions(t *testing.T) {
	cat := exprCatalog(t)
	rows := queryVals(t, cat, "SELECT a + b * 2, b / 4, b % 3, -a FROM t WHERE a = 2")
	r := rows[0]
	if r[0].I != 42 {
		t.Errorf("a+b*2 = %v", r[0])
	}
	if r[1].F != 5 {
		t.Errorf("b/4 = %v", r[1])
	}
	if r[2].I != 2 {
		t.Errorf("b%%3 = %v", r[2])
	}
	if r[3].I != -2 {
		t.Errorf("-a = %v", r[3])
	}
	mustFail(t, cat, "SELECT b % 0 FROM t", "modulo")
	mustFail(t, cat, "SELECT b / 0 FROM t", "division")
	mustFail(t, cat, "SELECT s + 1 FROM t WHERE a = 1", "numeric")
	mustFail(t, cat, "SELECT s < 1 FROM t WHERE a = 1", "compare")
}

func TestInSubqueryMultiColumnRejected(t *testing.T) {
	cat := exprCatalog(t)
	mustFail(t, cat, "SELECT a FROM t WHERE a IN (SELECT a, b FROM t)", "one column")
}

func TestNotInSubquery(t *testing.T) {
	cat := exprCatalog(t)
	rows := queryVals(t, cat,
		"SELECT a FROM t WHERE a NOT IN (SELECT a FROM t WHERE b >= 20)")
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("not-in subquery = %v", rows)
	}
}

func TestExplicitJoinWithResidualOn(t *testing.T) {
	cat := exprCatalog(t)
	two := storage.NewTable("u", storage.Schema{
		{Name: "a", Type: types.KindInt},
		{Name: "tag", Type: types.KindText},
	})
	two.MustInsert(types.Row{types.Int(1), types.Text("one")})
	two.MustInsert(types.Row{types.Int(2), types.Text("two")})
	if err := cat.Create(two); err != nil {
		t.Fatal(err)
	}
	// ON carries an equi key plus a residual condition.
	rows := queryVals(t, cat, `
		SELECT tag FROM t JOIN u ON t.a = u.a AND t.b > 10`)
	if len(rows) != 1 || rows[0][0].S != "two" {
		t.Fatalf("join residual = %v", rows)
	}
	// Pure cross join via nested loops (no equi keys at all).
	rows = queryVals(t, cat, "SELECT count(*) FROM t, u WHERE t.b > u.a")
	if rows[0][0].I != 6 {
		t.Fatalf("cross count = %v", rows)
	}
}

func TestDistinctThroughPlanner(t *testing.T) {
	cat := exprCatalog(t)
	rows := queryVals(t, cat, "SELECT DISTINCT b / 10 FROM t ORDER BY 1")
	if len(rows) != 3 {
		t.Fatalf("distinct = %v", rows)
	}
	rows = queryVals(t, cat, "SELECT DISTINCT 1 FROM t")
	if len(rows) != 1 {
		t.Fatalf("distinct const = %v", rows)
	}
}

func TestSplitConjuncts(t *testing.T) {
	sel, err := sqlparser.ParseSelect("SELECT 1 FROM t WHERE a = 1 AND (b = 2 AND s = 'x') AND f > 0")
	if err != nil {
		t.Fatal(err)
	}
	cj := splitConjuncts(sel.Where)
	if len(cj) != 4 {
		t.Fatalf("conjuncts = %d", len(cj))
	}
	// OR is not split.
	sel, _ = sqlparser.ParseSelect("SELECT 1 FROM t WHERE a = 1 OR b = 2")
	if got := splitConjuncts(sel.Where); len(got) != 1 {
		t.Fatalf("OR split = %d", len(got))
	}
}

func TestContainsAggregate(t *testing.T) {
	cases := map[string]bool{
		"count(*)":               true,
		"sum(a) + 1":             true,
		"1 + 2":                  false,
		"a BETWEEN 1 AND max(b)": true,
		"a IN (1, min(b))":       true,
		"NOT max(a) > 1":         true,
		"abs(a)":                 false,
		"year(a)":                false,
	}
	for src, want := range cases {
		sel, err := sqlparser.ParseSelect("SELECT " + src + " FROM t")
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if got := containsAggregate(sel.Items[0].Expr); got != want {
			t.Errorf("containsAggregate(%q) = %v", src, got)
		}
	}
}

func TestSGBOverlapClausesThroughPlanner(t *testing.T) {
	cat := storage.NewCatalog()
	pts := storage.NewTable("pts", storage.Schema{
		{Name: "x", Type: types.KindFloat},
		{Name: "y", Type: types.KindFloat},
	})
	for _, p := range [][2]float64{{2, 5}, {3, 6}, {7, 5}, {8, 6}, {5, 4}} {
		pts.MustInsert(types.Row{types.Float(p[0]), types.Float(p[1])})
	}
	if err := cat.Create(pts); err != nil {
		t.Fatal(err)
	}
	for clause, wantGroups := range map[string]int{
		"ON-OVERLAP JOIN-ANY":       2,
		"ON-OVERLAP ELIMINATE":      2,
		"ON-OVERLAP FORM-NEW-GROUP": 3,
	} {
		rows := queryVals(t, cat, `SELECT count(*) FROM pts
			GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 `+clause)
		if len(rows) != wantGroups {
			t.Errorf("%s: %d groups, want %d", clause, len(rows), wantGroups)
		}
	}
	// HAVING over the SGB output.
	rows := queryVals(t, cat, `SELECT count(*) FROM pts
		GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3
		ON-OVERLAP FORM-NEW-GROUP HAVING count(*) > 1`)
	if len(rows) != 2 {
		t.Errorf("SGB having = %v", rows)
	}
}
