package core

import (
	"slices"
	"sync"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
)

// Parallel SGB-All splits the operator into the pipeline's two halves:
//
//	evaluate — the candidate-probe/refine phase. All of the operator's
//	  distance work asks one static question: which points are within ε
//	  of point i? That is the ε-adjacency of the input, independent of
//	  any grouping decision, so worker goroutines precompute it over
//	  chunks of the input (each probing a shared read-only ε-grid).
//	merge — the paper's arbitration loop, kept strictly sequential in
//	  arrival order. With adjacency in hand, FindCloseGroups degrades to
//	  set counting: a live group is a candidate iff every member is a
//	  neighbor of pi, and an overlap group iff at least one is.
//
// Because the counting reproduces the exact candidate and overlap sets
// of Procedures 4–6 (in the same group-creation order), every
// ON-OVERLAP semantics — including the seeded JOIN-ANY arbitration —
// is bit-identical to the sequential strategies.

// adjacency is the ε-neighbor lists of the input in CSR layout: point
// i's neighbors are ids[off[i]:off[i+1]].
type adjacency struct {
	off []int
	ids []int32
}

func (a *adjacency) neighbors(i int) []int32 { return a.ids[a.off[i]:a.off[i+1]] }

// buildAdjacency computes the ε-adjacency with the given worker count.
// Workers own contiguous point ranges and probe a shared, read-only
// ε-grid (each worker brings its own grid.Cursor, so the concurrent
// probes share no scratch); every candidate is verified by an exact
// distance test, so the lists are exact under both metrics.
//
// With half set, only neighbors j < i are stored: under JOIN-ANY and
// ELIMINATE there is a single arbitration pass in input order, so when
// pi is probed every placed point has a smaller index — the forward
// half of the lists would never be consulted. FORM-NEW-GROUP's
// recursive stages re-process deferred points out of index order and
// need the full lists.
//
// The CSR is Θ(Σ ε-degree) memory — up to Θ(n²) on dense or large-ε
// inputs where the sequential path needs only O(n). Under automatic
// parallelism (Parallelism = 0) a sampled degree estimate guards the
// build: when the projected edge count exceeds adjEdgeBudget,
// buildAdjacency returns nil and the caller stays sequential. An
// explicit Parallelism ≥ 2 is taken as informed consent and skips the
// guard.
func buildAdjacency(ps *geom.PointSet, opt Options, workers int, half bool) *adjacency {
	n := ps.Len()
	metric, eps := opt.Metric, opt.Eps
	// An explicit AllPairs request keeps its naive evaluation shape —
	// every pair tested, just chunked across workers — so a
	// parallelized baseline still measures the baseline. Every other
	// strategy probes the shared grid (when dimensionality allows).
	var tab *grid.Table
	if opt.Algorithm != AllPairs {
		tab = grid.NewCap(ps.Dims(), eps, n)
		for i := 0; i < n; i++ {
			tab.AddPoint(ps.At(i), int32(i))
		}
	}
	if opt.Parallelism == 0 && !adjacencyFits(ps, opt, tab) {
		return nil
	}

	type chunk struct {
		lo, hi int
		ids    []int32
		counts []int32
		stats  Stats
	}
	chunks := make([]chunk, 0, workers)
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo < hi {
			chunks = append(chunks, chunk{lo: lo, hi: hi})
		}
	}
	var wg sync.WaitGroup
	for ci := range chunks {
		wg.Add(1)
		go func(c *chunk) {
			defer wg.Done()
			var cur grid.Cursor
			var buf []int32
			for i := c.lo; i < c.hi; i++ {
				p := ps.At(i)
				start := len(c.ids)
				if tab != nil {
					c.stats.addProbe(1)
					buf = tab.CollectBox(&cur, p, eps, buf[:0])
					for _, j := range buf {
						if int(j) == i || (half && int(j) > i) {
							continue
						}
						c.stats.addDist(1)
						if metric.Within(p, ps.At(int(j)), eps) {
							c.ids = append(c.ids, j)
						}
					}
				} else {
					hi := n
					if half {
						hi = i
					}
					for j := 0; j < hi; j++ {
						if j == i {
							continue
						}
						c.stats.addDist(1)
						if metric.Within(p, ps.At(j), eps) {
							c.ids = append(c.ids, int32(j))
						}
					}
				}
				c.counts = append(c.counts, int32(len(c.ids)-start))
			}
		}(&chunks[ci])
	}
	wg.Wait()

	adj := &adjacency{off: make([]int, n+1)}
	total := 0
	for ci := range chunks {
		total += len(chunks[ci].ids)
		opt.Stats.merge(&chunks[ci].stats)
	}
	adj.ids = make([]int32, 0, total)
	pos := 0
	for ci := range chunks {
		c := &chunks[ci]
		for k, cnt := range c.counts {
			adj.off[c.lo+k] = pos
			pos += int(cnt)
		}
		adj.ids = append(adj.ids, c.ids...)
	}
	adj.off[n] = pos
	return adj
}

// adjEdgeBudget caps the adjacency CSR under automatic parallelism:
// 1<<26 int32 neighbor ids ≈ 256 MB. Beyond it the sequential finder's
// O(n) working set is the safer default.
const adjEdgeBudget = 1 << 26

// adjacencyFits estimates the total ε-degree by exactly probing a
// small evenly spaced sample of points against the prebuilt grid and
// extrapolating. A few hundred probes — noise next to the build
// itself.
func adjacencyFits(ps *geom.PointSet, opt Options, tab *grid.Table) bool {
	n := ps.Len()
	sample := 512
	if sample > n {
		sample = n
	}
	metric, eps := opt.Metric, opt.Eps
	var cur grid.Cursor
	var buf []int32
	var degs int64
	for s := 0; s < sample; s++ {
		i := s * n / sample
		p := ps.At(i)
		if tab != nil {
			buf = tab.CollectBox(&cur, p, eps, buf[:0])
			for _, j := range buf {
				if int(j) != i && metric.Within(p, ps.At(int(j)), eps) {
					degs++
				}
			}
		} else {
			for j := 0; j < n; j++ {
				if j != i && ps.Within(metric, i, j, eps) {
					degs++
				}
			}
		}
	}
	// ×2 safety factor on the extrapolation: sampled degrees undercount
	// whenever the sample misses the dense clusters.
	return 2*degs*int64(n)/int64(sample) <= adjEdgeBudget
}

// adjFinder is the FindCloseGroups over precomputed ε-adjacency: it
// counts, per live group, how many members are neighbors of pi. A full
// count is a candidate (every member within ε — the distance-to-all
// predicate, already refined exactly during the build), a partial
// count an overlap group. No distances are computed on the sequential
// path.
type adjFinder struct {
	adj *adjacency

	// Per-group neighbor counters, epoch-guarded so a probe touches
	// only the groups its neighbors belong to.
	cnt   []int32
	mark  []uint32
	epoch uint32

	gids       []int32
	cands, ovs []*group
}

func newAdjFinder(adj *adjacency) *adjFinder { return &adjFinder{adj: adj} }

func (f *adjFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	// No probe counted here: the only index probe for pi already
	// happened in buildAdjacency; this phase is pure counting.
	needOverlap := st.opt.Overlap != JoinAny
	if n := len(st.groups); n > len(f.cnt) {
		f.cnt = append(f.cnt, make([]int32, n-len(f.cnt))...)
		f.mark = append(f.mark, make([]uint32, n-len(f.mark))...)
	}
	f.epoch++
	if f.epoch == 0 { // wrapped: invalidate stale marks
		clear(f.mark)
		f.epoch = 1
	}
	f.gids = f.gids[:0]
	for _, j := range f.adj.neighbors(pi) {
		gid := st.pointGroup[j]
		if gid < 0 || int(gid) < st.stageFloor {
			continue
		}
		if f.mark[gid] != f.epoch {
			f.mark[gid] = f.epoch
			f.cnt[gid] = 0
			f.gids = append(f.gids, gid)
		}
		f.cnt[gid]++
	}
	// Group-creation order, matching every other finder, so JOIN-ANY
	// arbitration consumes the PRNG identically.
	slices.Sort(f.gids)
	f.cands, f.ovs = f.cands[:0], f.ovs[:0]
	for _, gid := range f.gids {
		g := st.groups[gid]
		if g == nil {
			continue
		}
		if int(f.cnt[gid]) == len(g.members) {
			f.cands = append(f.cands, g)
		} else if needOverlap {
			f.ovs = append(f.ovs, g)
		}
	}
	return f.cands, f.ovs
}

// The adjacency is static and groups are tracked through
// st.pointGroup, so group mutations need no auxiliary maintenance.
func (f *adjFinder) groupCreated(st *sgbAllState, g *group) {}
func (f *adjFinder) groupChanged(st *sgbAllState, g *group) {}
func (f *adjFinder) groupRemoved(st *sgbAllState, g *group) {}
func (f *adjFinder) stageReset(st *sgbAllState)             {}
