package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// persistBatch builds a deterministic pseudo-random batch of n
// dims-dimensional points clustered enough that groups form and overlap
// arbitration actually fires.
func persistBatch(r *rand.Rand, dims, n int) *geom.PointSet {
	ps := geom.NewPointSetCap(dims, n)
	for i := 0; i < n; i++ {
		p := ps.Extend()
		for d := range p {
			p[d] = float64(r.Intn(12)) + 0.25*r.Float64()
		}
	}
	return ps
}

// removalIDs picks k distinct live ids, sorted ascending.
func removalIDs(r *rand.Rand, liveLen, k int) []int {
	if k > liveLen {
		k = liveLen
	}
	perm := r.Perm(liveLen)[:k]
	ids := append([]int(nil), perm...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func requireSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Groups, b.Groups) || !reflect.DeepEqual(a.Eliminated, b.Eliminated) {
		t.Fatalf("%s: results diverge\n original: %v / elim %v\n restored: %v / elim %v",
			label, a.Groups, a.Eliminated, b.Groups, b.Eliminated)
	}
}

// TestAnyExportRestore round-trips SGB-Any evaluators mid-stream across
// every strategy × metric × dimensionality and checks the restored
// evaluator is observationally identical: same Result immediately, and
// same Results after identical further appends and removals.
func TestAnyExportRestore(t *testing.T) {
	for _, alg := range []Algorithm{AllPairs, OnTheFlyIndex, GridIndex} {
		for _, metric := range []geom.Metric{geom.L2, geom.LInf} {
			for dims := 1; dims <= 3; dims++ {
				name := fmt.Sprintf("%v/%v/d=%d", alg, metric, dims)
				t.Run(name, func(t *testing.T) {
					r := rand.New(rand.NewSource(42))
					opt := Options{Metric: metric, Eps: 1.0, Algorithm: alg, Parallelism: 1}
					e, err := NewAnyEvaluator(dims, opt)
					if err != nil {
						t.Fatal(err)
					}
					for b := 0; b < 3; b++ {
						if err := e.Append(persistBatch(r, dims, 60)); err != nil {
							t.Fatal(err)
						}
					}
					if err := e.Remove(removalIDs(r, e.Len(), 25)); err != nil {
						t.Fatal(err)
					}

					re, err := RestoreAnyEvaluator(e.ExportState())
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, "post-restore", e.Result(), re.Result())

					// Identical further mutations must stay in lockstep.
					r2 := rand.New(rand.NewSource(7))
					for step := 0; step < 3; step++ {
						batch := persistBatch(r2, dims, 40)
						if err := e.Append(batch); err != nil {
							t.Fatal(err)
						}
						if err := re.Append(batch); err != nil {
							t.Fatal(err)
						}
						ids := removalIDs(r2, e.Len(), 15)
						if err := e.Remove(ids); err != nil {
							t.Fatal(err)
						}
						if err := re.Remove(append([]int(nil), ids...)); err != nil {
							t.Fatal(err)
						}
						requireSameResult(t, fmt.Sprintf("step %d", step), e.Result(), re.Result())
					}
				})
			}
		}
	}
}

// TestAllExportRestore round-trips SGB-All evaluators mid-stream across
// every ON-OVERLAP semantics × metric × dimensionality. SGB-All
// arbitration is order- and PRNG-sensitive, so the restored evaluator
// must replay identical further appends and removals bit-identically —
// including JOIN-ANY's random draws (the splitmix64 state travels with
// the snapshot) and FORM-NEW-GROUP's deferred set.
func TestAllExportRestore(t *testing.T) {
	for _, overlap := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
		for _, metric := range []geom.Metric{geom.L2, geom.LInf} {
			for dims := 1; dims <= 3; dims++ {
				name := fmt.Sprintf("%v/%v/d=%d", overlap, metric, dims)
				t.Run(name, func(t *testing.T) {
					r := rand.New(rand.NewSource(99))
					opt := Options{
						Metric: metric, Eps: 1.5, Overlap: overlap,
						Algorithm: GridIndex, Seed: 1234, Parallelism: 1,
					}
					e, err := NewAllEvaluator(dims, opt)
					if err != nil {
						t.Fatal(err)
					}
					for b := 0; b < 3; b++ {
						if err := e.Append(persistBatch(r, dims, 50)); err != nil {
							t.Fatal(err)
						}
					}
					if err := e.Remove(removalIDs(r, e.Len(), 20)); err != nil {
						t.Fatal(err)
					}

					re, err := RestoreAllEvaluator(e.ExportState())
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, "post-restore", e.Result(), re.Result())

					r2 := rand.New(rand.NewSource(5))
					for step := 0; step < 3; step++ {
						batch := persistBatch(r2, dims, 35)
						if err := e.Append(batch); err != nil {
							t.Fatal(err)
						}
						if err := re.Append(batch); err != nil {
							t.Fatal(err)
						}
						requireSameResult(t, fmt.Sprintf("append %d", step), e.Result(), re.Result())
						ids := removalIDs(r2, e.Len(), 12)
						if err := e.Remove(ids); err != nil {
							t.Fatal(err)
						}
						if err := re.Remove(append([]int(nil), ids...)); err != nil {
							t.Fatal(err)
						}
						requireSameResult(t, fmt.Sprintf("remove %d", step), e.Result(), re.Result())
					}
				})
			}
		}
	}
}

// TestAllExportRestoreStrategies pins the restore across the remaining
// SGB-All finder strategies (the rebuilt finder must re-register every
// live group, whatever the index structure).
func TestAllExportRestoreStrategies(t *testing.T) {
	for _, alg := range []Algorithm{AllPairs, BoundsCheck, OnTheFlyIndex} {
		t.Run(alg.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(3))
			opt := Options{Metric: geom.L2, Eps: 1.5, Overlap: JoinAny, Algorithm: alg, Seed: 9, Parallelism: 1}
			e, err := NewAllEvaluator(2, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Append(persistBatch(r, 2, 120)); err != nil {
				t.Fatal(err)
			}
			re, err := RestoreAllEvaluator(e.ExportState())
			if err != nil {
				t.Fatal(err)
			}
			batch := persistBatch(r, 2, 60)
			if err := e.Append(batch); err != nil {
				t.Fatal(err)
			}
			if err := re.Append(batch); err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "post-append", e.Result(), re.Result())
		})
	}
}

// TestExportIsolation checks the snapshot does not alias live state:
// mutating the evaluator after ExportState must not corrupt a later
// restore.
func TestExportIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	opt := Options{Metric: geom.LInf, Eps: 1.0, Algorithm: GridIndex, Parallelism: 1}
	e, err := NewAnyEvaluator(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append(persistBatch(r, 2, 80)); err != nil {
		t.Fatal(err)
	}
	st := e.ExportState()
	want := func() *Result {
		re, err := RestoreAnyEvaluator(st)
		if err != nil {
			t.Fatal(err)
		}
		return re.Result()
	}()
	// Mutate the original heavily.
	if err := e.Append(persistBatch(r, 2, 200)); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(removalIDs(r, e.Len(), 100)); err != nil {
		t.Fatal(err)
	}
	re, err := RestoreAnyEvaluator(st)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "isolation", want, re.Result())
}

// TestRestoreRejectsCorrupt drives the validation paths: a recovery
// layer handing over garbage must get an error, never a panic or a
// silently wrong evaluator.
func TestRestoreRejectsCorrupt(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	anyOpt := Options{Metric: geom.L2, Eps: 1.0, Algorithm: GridIndex, Parallelism: 1}
	e, err := NewAnyEvaluator(2, anyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append(persistBatch(r, 2, 30)); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove([]int{1, 5}); err != nil {
		t.Fatal(err)
	}
	base := e.ExportState()

	mutations := map[string]func(*AnyState){
		"ragged data":      func(s *AnyState) { s.Data = s.Data[:len(s.Data)-1] },
		"bad dims":         func(s *AnyState) { s.Dims = 0 },
		"bad eps":          func(s *AnyState) { s.Opt.Eps = -1 },
		"short uf":         func(s *AnyState) { s.UFParent = s.UFParent[:3] },
		"uf parent range":  func(s *AnyState) { s.UFParent[0] = 999 },
		"live range":       func(s *AnyState) { s.Live[0] = -2 },
		"live dup":         func(s *AnyState) { s.Live[1] = s.Live[0] },
		"live names dead":  func(s *AnyState) { s.Alive[s.Live[0]] = false },
		"dead mismatch":    func(s *AnyState) { s.Dead++ },
		"alive len":        func(s *AnyState) { s.Alive = s.Alive[:4] },
		"non-finite point": func(s *AnyState) { s.Data[0] = math.Inf(1) },
	}
	for name, mutate := range mutations {
		s := &AnyState{}
		*s = *base
		s.Data = append([]float64(nil), base.Data...)
		s.Live = append([]int32(nil), base.Live...)
		s.Alive = append([]bool(nil), base.Alive...)
		s.UFParent = append([]int32(nil), base.UFParent...)
		s.UFRank = append([]int8(nil), base.UFRank...)
		mutate(s)
		if _, err := RestoreAnyEvaluator(s); err == nil {
			t.Errorf("%s: corrupt AnyState accepted", name)
		}
	}

	allOpt := Options{Metric: geom.L2, Eps: 1.5, Overlap: Eliminate, Algorithm: GridIndex, Parallelism: 1}
	ae, err := NewAllEvaluator(2, allOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ae.Append(persistBatch(r, 2, 30)); err != nil {
		t.Fatal(err)
	}
	allBase := ae.ExportState()
	allMutations := map[string]func(*AllState){
		"member range":    func(s *AllState) { s.Groups[0][0] = 999 },
		"member twice":    func(s *AllState) { s.Groups[0] = append(s.Groups[0], s.Groups[0][0]) },
		"stage floor":     func(s *AllState) { s.StageFloor = len(s.Groups) + 1 },
		"eliminated oob":  func(s *AllState) { s.Eliminated = []int32{-1} },
		"ragged all data": func(s *AllState) { s.Data = s.Data[:len(s.Data)-1] },
	}
	for name, mutate := range allMutations {
		s := &AllState{}
		*s = *allBase
		s.Data = append([]float64(nil), allBase.Data...)
		s.Groups = make([][]int32, len(allBase.Groups))
		for i, g := range allBase.Groups {
			s.Groups[i] = append([]int32(nil), g...)
		}
		mutate(s)
		if _, err := RestoreAllEvaluator(s); err == nil {
			t.Errorf("%s: corrupt AllState accepted", name)
		}
	}
}
