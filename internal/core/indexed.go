package core

import (
	"slices"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/rtree"
)

// indexedFinder is the Index Bounds-Checking FindCloseGroups of
// Procedure 5: the ε-All bounding rectangles of the live groups are
// indexed in an on-the-fly R-tree (Groups_IX, Figure 6), so a window
// query with pi's ε-box retrieves the only groups that can be
// candidates or overlaps — O(n·log|G|) average case (Table 1).
//
// Because member MBRs are contained in their group's ε-All rectangle
// (clique members are pairwise within ε), a single index over the
// ε-All rectangles serves both the candidate and the overlap probes.
type indexedFinder struct {
	ix   *rtree.Tree
	dims int

	// Buffers reused across probes: the typed window-query hit list
	// (collected via Visit, so hits never round-trip through []any),
	// the candidate/overlap results, and the probe's ε-box.
	hits       []*group
	cands, ovs []*group
	pBox       geom.Rect
}

func newIndexedFinder(dims int) *indexedFinder {
	if dims == 0 {
		dims = 1
	}
	return &indexedFinder{ix: rtree.New(dims), dims: dims}
}

func (f *indexedFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points.At(pi)
	geom.EpsBoxInto(&f.pBox, p, st.opt.Eps)
	st.opt.Stats.addProbe(1)
	f.hits = f.hits[:0]
	f.ix.Visit(f.pBox, func(_ geom.Rect, data any) bool {
		f.hits = append(f.hits, data.(*group))
		return true
	})
	// Normalize the R-tree's traversal order to group-creation order so
	// that all strategies arbitrate JOIN-ANY identically for a given
	// seed (the grouping itself is strategy-independent; only the
	// candidate enumeration order would differ).
	slices.SortFunc(f.hits, func(a, b *group) int { return a.id - b.id })
	needOverlap := st.opt.Overlap != JoinAny
	f.cands, f.ovs = f.cands[:0], f.ovs[:0]
	for _, gj := range f.hits {
		if gj.id < st.stageFloor {
			continue // frozen by a FORM-NEW-GROUP recursion stage
		}
		f.cands, f.ovs = st.classifyGroup(pi, gj, p, &f.pBox, needOverlap, f.cands, f.ovs)
	}
	return f.cands, f.ovs
}

func (f *indexedFinder) groupCreated(st *sgbAllState, g *group) {
	g.indexedRect = g.epsRect.Clone()
	g.indexed = true
	st.opt.Stats.addUpdate(1)
	f.ix.Insert(g.indexedRect, g)
}

// groupChanged refreshes g's entry after a membership change. The
// window query only needs the indexed rectangle to CONTAIN the true
// ε-All rectangle (hits are verified exactly afterwards), so the entry
// is refreshed lazily:
//
//   - a removal can grow the ε-All rectangle beyond the indexed one —
//     reindex immediately (correctness);
//   - an insert only shrinks it — reindex merely when the stale entry
//     has become noticeably less selective (area hysteresis). Since the
//     rectangle's sides are bounded below by ε, a group reindexes O(1)
//     times over its lifetime instead of once per insert.
func (f *indexedFinder) groupChanged(st *sgbAllState, g *group) {
	if !g.indexed {
		return
	}
	h := st.opt.IndexHysteresis
	if h <= 0 {
		h = defaultHysteresis
	}
	if g.indexedRect.ContainsRect(g.epsRect) {
		if g.indexedRect.Area() <= h*g.epsRect.Area() {
			return // still selective enough; keep the stale entry
		}
	}
	st.opt.Stats.addUpdate(2)
	f.ix.Delete(g.indexedRect, g)
	g.indexedRect = g.epsRect.Clone()
	f.ix.Insert(g.indexedRect, g)
}

// defaultHysteresis is the staleness bound for indexed group
// rectangles: the entry is refreshed once its area exceeds this
// multiple of the true ε-All rectangle's area.
const defaultHysteresis = 1.8

func (f *indexedFinder) groupRemoved(st *sgbAllState, g *group) {
	if !g.indexed {
		return
	}
	st.opt.Stats.addUpdate(1)
	f.ix.Delete(g.indexedRect, g)
	g.indexed = false
}

// stageReset rebuilds Groups_IX empty at a FORM-NEW-GROUP recursion
// stage: every group created so far is frozen, so keeping its
// rectangle indexed would only produce window-query hits that the
// stage filter discards — on high-overlap inputs those stale hits
// dominated the runtime.
func (f *indexedFinder) stageReset(st *sgbAllState) {
	for _, g := range st.groups {
		if g != nil {
			g.indexed = false
		}
	}
	f.ix = rtree.New(f.dims)
}
