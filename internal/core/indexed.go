package core

import (
	"sort"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/rtree"
)

// indexedFinder is the Index Bounds-Checking FindCloseGroups of
// Procedure 5: the ε-All bounding rectangles of the live groups are
// indexed in an on-the-fly R-tree (Groups_IX, Figure 6), so a window
// query with pi's ε-box retrieves the only groups that can be
// candidates or overlaps — O(n·log|G|) average case (Table 1).
//
// Because member MBRs are contained in their group's ε-All rectangle
// (clique members are pairwise within ε), a single index over the
// ε-All rectangles serves both the candidate and the overlap probes.
type indexedFinder struct {
	ix   *rtree.Tree
	dims int
	buf  []any // reusable window-query result buffer
}

func newIndexedFinder(dims int) *indexedFinder {
	if dims == 0 {
		dims = 1
	}
	return &indexedFinder{ix: rtree.New(dims), dims: dims}
}

func (f *indexedFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points[pi]
	pBox := geom.EpsBox(p, st.opt.Eps)
	st.opt.Stats.addProbe(1)
	f.buf = f.buf[:0]
	f.buf = f.ix.Search(pBox, f.buf)
	// Normalize the R-tree's traversal order to group-creation order so
	// that all three strategies arbitrate JOIN-ANY identically for a
	// given seed (the grouping itself is strategy-independent; only the
	// candidate enumeration order would differ).
	sort.Slice(f.buf, func(i, j int) bool {
		return f.buf[i].(*group).id < f.buf[j].(*group).id
	})
	needOverlap := st.opt.Overlap != JoinAny
	for _, v := range f.buf {
		gj := v.(*group)
		if gj.id < st.stageFloor {
			continue // frozen by a FORM-NEW-GROUP recursion stage
		}
		st.opt.Stats.addRect(1)
		if gj.epsRect.Contains(p) && st.refine(pi, gj) {
			candidates = append(candidates, gj)
			continue
		}
		if !needOverlap {
			continue
		}
		st.opt.Stats.addRect(1)
		if pBox.Intersects(gj.mbr) && st.overlapsWith(pi, gj) {
			overlaps = append(overlaps, gj)
		}
	}
	return candidates, overlaps
}

func (f *indexedFinder) groupCreated(st *sgbAllState, g *group) {
	g.indexedRect = g.epsRect.Clone()
	g.indexed = true
	st.opt.Stats.addUpdate(1)
	f.ix.Insert(g.indexedRect, g)
}

// groupChanged refreshes g's entry after a membership change. The
// window query only needs the indexed rectangle to CONTAIN the true
// ε-All rectangle (hits are verified exactly afterwards), so the entry
// is refreshed lazily:
//
//   - a removal can grow the ε-All rectangle beyond the indexed one —
//     reindex immediately (correctness);
//   - an insert only shrinks it — reindex merely when the stale entry
//     has become noticeably less selective (area hysteresis). Since the
//     rectangle's sides are bounded below by ε, a group reindexes O(1)
//     times over its lifetime instead of once per insert.
func (f *indexedFinder) groupChanged(st *sgbAllState, g *group) {
	if !g.indexed {
		return
	}
	h := st.opt.IndexHysteresis
	if h <= 0 {
		h = defaultHysteresis
	}
	if g.indexedRect.ContainsRect(g.epsRect) {
		if g.indexedRect.Area() <= h*g.epsRect.Area() {
			return // still selective enough; keep the stale entry
		}
	}
	st.opt.Stats.addUpdate(2)
	f.ix.Delete(g.indexedRect, g)
	g.indexedRect = g.epsRect.Clone()
	f.ix.Insert(g.indexedRect, g)
}

// defaultHysteresis is the staleness bound for indexed group
// rectangles: the entry is refreshed once its area exceeds this
// multiple of the true ε-All rectangle's area.
const defaultHysteresis = 1.8

func (f *indexedFinder) groupRemoved(st *sgbAllState, g *group) {
	if !g.indexed {
		return
	}
	st.opt.Stats.addUpdate(1)
	f.ix.Delete(g.indexedRect, g)
	g.indexed = false
}

// stageReset rebuilds Groups_IX empty at a FORM-NEW-GROUP recursion
// stage: every group created so far is frozen, so keeping its
// rectangle indexed would only produce window-query hits that the
// stage filter discards — on high-overlap inputs those stale hits
// dominated the runtime.
func (f *indexedFinder) stageReset(st *sgbAllState) {
	for _, g := range st.groups {
		if g != nil {
			g.indexed = false
		}
	}
	f.ix = rtree.New(f.dims)
}

func rectEq(a, b geom.Rect) bool {
	return a.Min.Equal(b.Min) && a.Max.Equal(b.Max)
}
