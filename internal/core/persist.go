package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// This file is the persistence boundary of the resumable evaluators:
// ExportState copies the LOGICAL evaluation state — points, liveness,
// components or group membership, PRNG position — into plain slices a
// checkpoint writer can serialize, and the Restore constructors rebuild
// a working evaluator from such a snapshot. Derived structures (the
// SGB-Any Points_IX, the SGB-All finder, rect rows, hulls, Union-Find
// scratch) are deliberately NOT serialized: they are recomputed on
// restore from the logical state through the same registration steps
// the live evaluator runs, which keeps the on-disk format small and
// independent of index implementation details.
//
// Equivalence guarantees (exercised by persist_test.go):
//
//   - SGB-Any: components are order-independent, and restore re-adds
//     every live point to a fresh index, so a restored evaluator is
//     observationally identical to the original — same Results, same
//     behavior under further Append/Remove.
//   - SGB-All: arbitration depends on group ids, candidate enumeration
//     order, and the PRNG stream. Restore preserves all three — group
//     ids keep their creation-order numbering (deleted-group holes
//     included), finders enumerate candidates in id order, rect rows
//     are recomputed from members with the same order-insensitive
//     min/max folds, and the splitmix64 state resumes exactly — so a
//     restored evaluator replays future appends bit-identically.

// AnyState is the portable snapshot of an AnyEvaluator. All slices are
// owned by the state (ExportState copies out; Restore copies in).
type AnyState struct {
	Opt  Options // Stats stripped: counters are not evaluation state
	Dims int
	Data []float64 // flat coordinates of every stored point, stride Dims

	Live  []int32 // stored positions in arrival order; nil = identity
	Alive []bool  // liveness per stored position; nil = all alive
	Dead  int     // tombstone count (= number of false flags in Alive)

	UFParent []int32 // Union-Find forest over stored positions
	UFRank   []int8
	UFCount  int
}

// ExportState snapshots the evaluator's logical state. The evaluator
// remains usable; later mutations do not affect the snapshot.
func (e *AnyEvaluator) ExportState() *AnyState {
	opt := e.opt
	opt.Stats = nil
	parent, rank, count := e.uf.Snapshot()
	return &AnyState{
		Opt:      opt,
		Dims:     e.points.Dims(),
		Data:     append([]float64(nil), e.points.Data()...),
		Live:     append([]int32(nil), e.live...),
		Alive:    append([]bool(nil), e.alive...),
		Dead:     e.dead,
		UFParent: parent,
		UFRank:   rank,
		UFCount:  count,
	}
}

// RestoreAnyEvaluator rebuilds a resumable SGB-Any evaluation from a
// snapshot: the points and the Union-Find forest are adopted, and every
// live point is re-registered in a freshly built Points_IX. Corrupt
// snapshots (out-of-range positions, inconsistent liveness) are
// rejected rather than trusted — a checksummed checkpoint should never
// produce one, but recovery code must not panic on its inputs.
func RestoreAnyEvaluator(s *AnyState) (*AnyEvaluator, error) {
	opt := s.Opt
	opt.Stats = nil
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Algorithm == BoundsCheck {
		return nil, ErrBoundsCheckAny
	}
	if s.Dims < 1 {
		return nil, errors.New("core: restore: dims must be >= 1")
	}
	if len(s.Data)%s.Dims != 0 {
		return nil, fmt.Errorf("core: restore: %d coordinates is not a multiple of dims %d", len(s.Data), s.Dims)
	}
	n := len(s.Data) / s.Dims
	uf, ok := unionfind.Restore(
		append([]int32(nil), s.UFParent...),
		append([]int8(nil), s.UFRank...),
		s.UFCount)
	if !ok || uf.Len() != n {
		return nil, errors.New("core: restore: corrupt union-find snapshot")
	}
	if s.Dead != 0 && s.Alive == nil {
		// The index rebuild needs the bitmap to skip tombstones.
		return nil, errors.New("core: restore: dead count without liveness bitmap")
	}
	live, alive, err := checkLiveness(n, s.Live, s.Alive, s.Dead)
	if err != nil {
		return nil, err
	}
	e := &AnyEvaluator{
		opt:    opt,
		points: geom.Wrap(s.Dims, append([]float64(nil), s.Data...)),
		uf:     uf,
		live:   live,
		alive:  alive,
		dead:   s.Dead,
	}
	if err := e.points.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	// Rebuild Points_IX by registering every live stored position —
	// components are already known, so add (no probing) suffices,
	// mirroring the storage-compaction rebuild.
	e.ix = e.newIndex(s.Dims, n)
	for i := 0; i < n; i++ {
		if alive == nil || alive[i] {
			e.ix.add(e.points, i, e.opt)
		}
	}
	return e, nil
}

// AllState is the portable snapshot of an AllEvaluator.
type AllState struct {
	Opt  Options // Stats stripped
	Dims int
	Data []float64 // flat coordinates of every stored point, stride Dims

	Live []int32 // stored indices in arrival order; nil = identity
	Dead int

	// RandState is the splitmix64 seed state of the JOIN-ANY PRNG.
	// Draws are keyed per live rank (core.go: rng.drawAt), so this is a
	// constant of the evaluation — the seed base, not a stream cursor —
	// but it is still state: Options.Seed alone does not reconstruct it
	// for snapshots taken by future format versions.
	RandState uint64
	StageFloor int     // FORM-NEW-GROUP stage freeze floor
	Eliminated []int32 // stored indices dropped by ELIMINATE
	Deferred   []int32 // S′: stored indices deferred by FORM-NEW-GROUP

	// Groups holds each group's member list (stored indices, join
	// order) at its creation-order id; an empty entry is the hole of a
	// deleted group. Holes are preserved because ids feed candidate
	// ordering and the stage floor — renumbering would change
	// arbitration.
	Groups [][]int32
}

// ExportState snapshots the evaluator's logical state. The evaluator
// remains usable; later mutations do not affect the snapshot.
func (e *AllEvaluator) ExportState() *AllState {
	st := e.st
	opt := st.opt
	opt.Stats = nil
	s := &AllState{
		Opt:        opt,
		Dims:       st.dims,
		Data:       append([]float64(nil), st.points.Data()...),
		Live:       append([]int32(nil), e.live...),
		Dead:       e.dead,
		RandState:  st.rand.state,
		StageFloor: st.stageFloor,
		Eliminated: toInt32(st.eliminated),
		Deferred:   toInt32(st.deferred),
		Groups:     make([][]int32, len(st.groups)),
	}
	for i, g := range st.groups {
		if g == nil {
			continue // hole: stays an empty entry
		}
		s.Groups[i] = toInt32(g.members)
	}
	return s
}

// RestoreAllEvaluator rebuilds a resumable SGB-All evaluation from a
// snapshot. Group structs, rect rows (order-insensitive min/max folds
// over the members, so bit-identical to the originals), the pointGroup
// map, and the finder registrations are all recomputed; the convex
// hull caches start dirty and rebuild lazily. Corrupt snapshots are
// rejected, not trusted.
func RestoreAllEvaluator(s *AllState) (*AllEvaluator, error) {
	opt := s.Opt
	opt.Stats = nil
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if s.Dims < 1 {
		return nil, errors.New("core: restore: dims must be >= 1")
	}
	if len(s.Data)%s.Dims != 0 {
		return nil, fmt.Errorf("core: restore: %d coordinates is not a multiple of dims %d", len(s.Data), s.Dims)
	}
	n := len(s.Data) / s.Dims
	live, _, err := checkLiveness(n, s.Live, nil, s.Dead)
	if err != nil {
		return nil, err
	}
	if s.StageFloor < 0 || s.StageFloor > len(s.Groups) {
		return nil, errors.New("core: restore: stage floor out of range")
	}
	st := &sgbAllState{
		points:     geom.Wrap(s.Dims, append([]float64(nil), s.Data...)),
		opt:        opt,
		dims:       s.Dims,
		rand:       &rng{state: s.RandState},
		stageFloor: s.StageFloor,
		eliminated: toInt(s.Eliminated, n),
		deferred:   toInt(s.Deferred, n),
	}
	if st.eliminated == nil && len(s.Eliminated) > 0 || st.deferred == nil && len(s.Deferred) > 0 {
		return nil, errors.New("core: restore: eliminated/deferred index out of range")
	}
	if err := st.points.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	st.pointGroup = make([]int32, n)
	for i := range st.pointGroup {
		st.pointGroup[i] = -1
	}
	if live != nil {
		// Rebuild the stored-index → live-rank map the JOIN-ANY draws
		// key on (identical to the one the decremental replay builds).
		st.rank = make([]int32, n)
		for i := range st.rank {
			st.rank[i] = -1
		}
		for k, pos := range live {
			st.rank[pos] = int32(k)
		}
	}
	// Rebuild the group set at its original ids: rect rows are sized for
	// every id up front (holes get poisoned rows, exactly as removal
	// leaves them), member folds recompute the ε-All rectangle and MBR.
	stride := 4 * s.Dims
	st.rects = make([]float64, len(s.Groups)*stride)
	st.groups = make([]*group, 0, len(s.Groups))
	for id, members := range s.Groups {
		if len(members) == 0 {
			st.groups = append(st.groups, nil)
			st.rects[id*stride] = math.Inf(1)          // poisoned ε-All Min[0]
			st.rects[id*stride+2*s.Dims] = math.Inf(1) // poisoned MBR Min[0]
			continue
		}
		g := st.allocGroup()
		g.id = id
		g.members = make([]int, 0, len(members))
		for _, m := range members {
			if m < 0 || int(m) >= n {
				return nil, fmt.Errorf("core: restore: group %d member %d out of range", id, m)
			}
			if st.pointGroup[m] != -1 {
				return nil, fmt.Errorf("core: restore: point %d in two groups", m)
			}
			g.members = append(g.members, int(m))
			st.pointGroup[m] = int32(id)
		}
		st.bindRectRow(g)
		st.initRectRow(g, st.points.At(g.members[0]))
		for _, m := range g.members[1:] {
			p := st.points.At(m)
			g.epsRect.ShrinkToEpsBox(p, opt.Eps)
			g.mbr.ExtendPoint(p)
		}
		g.hullDirty = true
		st.groups = append(st.groups, g)
	}
	// Register the live groups with a fresh finder, in creation order —
	// the same sequence of groupCreated calls a replayed run would make.
	st.finder = newFinder(st)
	for _, g := range st.groups {
		if g != nil {
			st.finder.groupCreated(st, g)
		}
	}
	return &AllEvaluator{st: st, live: live, dead: s.Dead}, nil
}

// checkLiveness validates the live/alive/dead triple of a snapshot
// against n stored positions and returns defensive copies.
func checkLiveness(n int, live []int32, alive []bool, dead int) ([]int32, []bool, error) {
	if alive != nil && len(alive) != n {
		return nil, nil, errors.New("core: restore: liveness bitmap length mismatch")
	}
	deadSeen := 0
	for _, a := range alive {
		if !a {
			deadSeen++
		}
	}
	if alive != nil && deadSeen != dead {
		return nil, nil, errors.New("core: restore: dead count does not match liveness bitmap")
	}
	if live == nil {
		if dead != 0 {
			return nil, nil, errors.New("core: restore: tombstones without a live mapping")
		}
		return nil, copyBools(alive), nil
	}
	if len(live) != n-dead {
		return nil, nil, errors.New("core: restore: live mapping length mismatch")
	}
	seen := make([]bool, n)
	for _, pos := range live {
		if pos < 0 || int(pos) >= n || seen[pos] {
			return nil, nil, errors.New("core: restore: corrupt live mapping")
		}
		if alive != nil && !alive[pos] {
			return nil, nil, errors.New("core: restore: live mapping names a dead position")
		}
		seen[pos] = true
	}
	return append([]int32(nil), live...), copyBools(alive), nil
}

func copyBools(b []bool) []bool {
	if b == nil {
		return nil
	}
	return append([]bool(nil), b...)
}

func toInt32(xs []int) []int32 {
	if xs == nil {
		return nil
	}
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

// toInt widens back, rejecting out-of-range indices with a nil return
// (the caller raises the error; n bounds the valid index space).
func toInt(xs []int32, n int) []int {
	if xs == nil {
		return nil
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		if x < 0 || int(x) >= n {
			return nil
		}
		out[i] = int(x)
	}
	return out
}
