package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// mirrorSet tracks the surviving points the way a from-scratch caller
// would see them: a plain slice in arrival order that appends extend
// and removes compact.
type mirrorSet struct {
	pts []geom.Point
}

func (m *mirrorSet) appendBatch(b []geom.Point) { m.pts = append(m.pts, b...) }

func (m *mirrorSet) remove(ids []int) {
	dead := make(map[int]bool, len(ids))
	for _, id := range ids {
		dead[id] = true
	}
	kept := m.pts[:0]
	for i, p := range m.pts {
		if !dead[i] {
			kept = append(kept, p)
		}
	}
	m.pts = kept
}

// randBatch draws n random d-dimensional points in [0, span)^d.
func randBatch(rng *rand.Rand, n, dims int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dims)
		for k := range p {
			p[k] = rng.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

// randRemoveIDs draws a random subset of [0, n) of the given size.
func randRemoveIDs(rng *rand.Rand, n, k int) []int {
	ids := rng.Perm(n)[:k]
	return ids
}

// normalizeRes maps a result to a comparable shape (nil vs empty).
func normalizeRes(r *Result) [2]any {
	g := r.Groups
	if len(g) == 0 {
		g = nil
	}
	e := r.Eliminated
	if len(e) == 0 {
		e = nil
	}
	return [2]any{g, e}
}

// TestDecrementalAnyEquivalence drives an AnyEvaluator with randomized
// interleaved append/remove traffic and cross-checks every step
// against a from-scratch SGB-Any over the surviving points: groups,
// members, and ordering must deep-equal — removal may only split the
// victims' components, and the localized recluster must reproduce
// exactly the components of the survivors.
func TestDecrementalAnyEquivalence(t *testing.T) {
	algos := []Algorithm{GridIndex, OnTheFlyIndex, AllPairs}
	for _, metric := range []geom.Metric{geom.L2, geom.LInf} {
		for _, dims := range []int{1, 2, 3, 5} {
			for ai, algo := range algos {
				name := fmt.Sprintf("%s/d=%d/%v", metric, dims, algo)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(dims)*100 + int64(metric)*10 + int64(ai)))
					opt := Options{Metric: metric, Eps: 1, Algorithm: algo, Seed: 3, Parallelism: 1}
					ev, err := NewAnyEvaluator(dims, opt)
					if err != nil {
						t.Fatal(err)
					}
					mirror := &mirrorSet{}
					for step := 0; step < 24; step++ {
						if len(mirror.pts) == 0 || rng.Intn(3) != 0 {
							batch := randBatch(rng, 10+rng.Intn(50), dims, 8)
							if err := ev.Append(geom.FromPoints(batch)); err != nil {
								t.Fatalf("step %d: Append: %v", step, err)
							}
							mirror.appendBatch(batch)
						} else {
							k := 1 + rng.Intn(len(mirror.pts))
							if rng.Intn(4) == 0 {
								k = len(mirror.pts) // full eviction sometimes
							}
							ids := randRemoveIDs(rng, len(mirror.pts), k)
							if err := ev.Remove(ids); err != nil {
								t.Fatalf("step %d: Remove(%d ids of %d): %v", step, k, len(mirror.pts), err)
							}
							mirror.remove(ids)
						}
						if ev.Len() != len(mirror.pts) {
							t.Fatalf("step %d: Len = %d, want %d", step, ev.Len(), len(mirror.pts))
						}
						want, err := SGBAny(mirror.pts, opt)
						if err != nil {
							t.Fatalf("step %d: one-shot: %v", step, err)
						}
						got := ev.Result()
						if !reflect.DeepEqual(normalizeRes(want), normalizeRes(got)) {
							t.Fatalf("step %d (n=%d): decremental diverges\nfrom-scratch: %v\nmaintained:   %v",
								step, len(mirror.pts), want.Groups, got.Groups)
						}
					}
				})
			}
		}
	}
}

// TestDecrementalAllEquivalence is the SGB-All twin: after every
// append/remove interleaving the maintained grouping must be
// bit-identical (groups, member order, ELIMINATE victims, JOIN-ANY
// draws under the shared seed) to a from-scratch SGB-All over the
// surviving points — the replay-based maintenance guarantees it by
// construction, and this suite pins the live-id remapping on top.
func TestDecrementalAllEquivalence(t *testing.T) {
	algos := []Algorithm{GridIndex, OnTheFlyIndex, AllPairs, BoundsCheck}
	overlaps := []Overlap{JoinAny, Eliminate, FormNewGroup}
	for _, metric := range []geom.Metric{geom.L2, geom.LInf} {
		for _, dims := range []int{1, 2, 3, 5} {
			for oi, overlap := range overlaps {
				algo := algos[(dims+oi)%len(algos)]
				name := fmt.Sprintf("%s/d=%d/%v/%v", metric, dims, overlap, algo)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(dims)*1000 + int64(metric)*100 + int64(oi)))
					opt := Options{Metric: metric, Eps: 1, Overlap: overlap, Algorithm: algo, Seed: 7, Parallelism: 1}
					ev, err := NewAllEvaluator(dims, opt)
					if err != nil {
						t.Fatal(err)
					}
					mirror := &mirrorSet{}
					for step := 0; step < 16; step++ {
						if len(mirror.pts) == 0 || rng.Intn(3) != 0 {
							batch := randBatch(rng, 10+rng.Intn(40), dims, 8)
							if err := ev.Append(geom.FromPoints(batch)); err != nil {
								t.Fatalf("step %d: Append: %v", step, err)
							}
							mirror.appendBatch(batch)
						} else {
							k := 1 + rng.Intn(len(mirror.pts))
							ids := randRemoveIDs(rng, len(mirror.pts), k)
							if err := ev.Remove(ids); err != nil {
								t.Fatalf("step %d: Remove: %v", step, err)
							}
							mirror.remove(ids)
						}
						if ev.Len() != len(mirror.pts) {
							t.Fatalf("step %d: Len = %d, want %d", step, ev.Len(), len(mirror.pts))
						}
						want, err := SGBAll(mirror.pts, opt)
						if err != nil {
							t.Fatalf("step %d: one-shot: %v", step, err)
						}
						got := ev.Result()
						if !reflect.DeepEqual(normalizeRes(want), normalizeRes(got)) {
							t.Fatalf("step %d (n=%d): decremental diverges\nfrom-scratch: %v elim %v\nmaintained:   %v elim %v",
								step, len(mirror.pts), want.Groups, want.Eliminated, got.Groups, got.Eliminated)
						}
					}
				})
			}
		}
	}
}

// TestRemoveErrors covers the id-validation surface shared by both
// evaluators.
func TestRemoveErrors(t *testing.T) {
	opt := Options{Metric: geom.L2, Eps: 1, Algorithm: GridIndex}
	any, err := NewAnyEvaluator(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	all, err := NewAllEvaluator(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	pts := geom.FromPoints([]geom.Point{{0, 0}, {0.5, 0.5}, {5, 5}})
	if err := any.Append(pts); err != nil {
		t.Fatal(err)
	}
	if err := all.Append(pts); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		ids  []int
	}{
		{"negative", []int{-1}},
		{"out of range", []int{3}},
		{"duplicate", []int{1, 1}},
	} {
		if err := any.Remove(tc.ids); err == nil {
			t.Errorf("AnyEvaluator.Remove(%s %v): want error", tc.name, tc.ids)
		}
		if err := all.Remove(tc.ids); err == nil {
			t.Errorf("AllEvaluator.Remove(%s %v): want error", tc.name, tc.ids)
		}
	}
	// Empty batches are no-ops.
	if err := any.Remove(nil); err != nil {
		t.Fatal(err)
	}
	if err := all.Remove(nil); err != nil {
		t.Fatal(err)
	}
	if any.Len() != 3 || all.Len() != 3 {
		t.Fatalf("Len after no-op removes = %d/%d, want 3/3", any.Len(), all.Len())
	}
}

// TestRemoveSplitsComponent pins the canonical decremental scenario:
// deleting a bridge point splits its component in two, and LiveAt ids
// renumber compactly.
func TestRemoveSplitsComponent(t *testing.T) {
	opt := Options{Metric: geom.L2, Eps: 1.1, Algorithm: GridIndex}
	ev, err := NewAnyEvaluator(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	// a--b--c chained: one component; deleting b splits {a} from {c}.
	if err := ev.Append(geom.FromPoints([]geom.Point{{0, 0}, {1, 0}, {2, 0}})); err != nil {
		t.Fatal(err)
	}
	if n := len(ev.Result().Groups); n != 1 {
		t.Fatalf("before delete: %d components, want 1", n)
	}
	if err := ev.Remove([]int{1}); err != nil {
		t.Fatal(err)
	}
	res := ev.Result()
	if len(res.Groups) != 2 {
		t.Fatalf("after deleting the bridge: %d components, want 2: %v", len(res.Groups), res.Groups)
	}
	if !reflect.DeepEqual(res.Groups[0].Members, []int{0}) || !reflect.DeepEqual(res.Groups[1].Members, []int{1}) {
		t.Fatalf("ids did not renumber compactly: %v", res.Groups)
	}
	if got := ev.LiveAt(1); got[0] != 2 || got[1] != 0 {
		t.Fatalf("LiveAt(1) = %v, want (2, 0)", got)
	}
}
