package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sgb-db/sgb/internal/geom"
)

// TestExample2SGBAny reproduces the paper's Example 2: a5 bridges
// g1{a1,a2} and g2{a3,a4}, merging everything into one group of 5.
func TestExample2SGBAny(t *testing.T) {
	for _, alg := range []Algorithm{AllPairs, OnTheFlyIndex, GridIndex} {
		res, err := SGBAny(figure2Points(), Options{Metric: geom.LInf, Eps: 3, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.NumGroups() != 1 || len(res.Groups[0].Members) != 5 {
			t.Errorf("%v: groups = %v, want one group of 5", alg, res.Groups)
		}
	}
}

// TestFigure1bChain verifies the chain semantics of Figure 1b: points
// connected transitively through ≤ε hops form a single group even when
// the endpoints are far apart.
func TestFigure1bChain(t *testing.T) {
	var points []geom.Point
	for i := 0; i < 10; i++ {
		points = append(points, geom.Point{float64(i) * 2.9, 0})
	}
	points = append(points, geom.Point{100, 100}) // isolated
	for _, alg := range []Algorithm{AllPairs, OnTheFlyIndex, GridIndex} {
		res, err := SGBAny(points, Options{Metric: geom.L2, Eps: 3, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumGroups() != 2 {
			t.Fatalf("%v: %d groups, want 2", alg, res.NumGroups())
		}
		sizes := sortedSizes(res)
		if !equalIntSlices(sizes, []int{1, 10}) {
			t.Fatalf("%v: sizes = %v", alg, sizes)
		}
	}
}

// TestSGBAnyMatchesConnectedComponents is the defining property:
// SGB-Any must compute exactly the connected components of the
// ε-similarity graph, for both algorithms and metrics, on random and
// clustered data.
func TestSGBAnyMatchesConnectedComponents(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		var points []geom.Point
		if trial%2 == 0 {
			points = randomPoints(r, 20+r.Intn(200), 2, 12)
		} else {
			points = clusteredPoints(r, 20+r.Intn(200), 5, 12, 0.5)
		}
		eps := 0.2 + r.Float64()*1.2
		for _, m := range allMetrics {
			want := ConnectedComponents(points, m, eps)
			for _, alg := range []Algorithm{AllPairs, OnTheFlyIndex, GridIndex} {
				res, err := SGBAny(points, Options{Metric: m, Eps: eps, Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				if !SameGrouping(res.Groups, want) {
					t.Fatalf("trial %d %v/%v: partition mismatch", trial, m, alg)
				}
			}
		}
	}
}

// TestSGBAnyOrderInvariance: unlike SGB-All, the SGB-Any partition is
// independent of input order (connected components are order-free).
func TestSGBAnyOrderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	base := clusteredPoints(r, 150, 4, 8, 0.4)
	ref, err := SGBAny(base, Options{Metric: geom.L2, Eps: 0.7, Algorithm: OnTheFlyIndex})
	if err != nil {
		t.Fatal(err)
	}
	// Build the reference partition keyed by point identity.
	type key [2]float64
	refPart := make(map[key]int)
	for gi, g := range ref.Groups {
		for _, m := range g.Members {
			refPart[key{base[m][0], base[m][1]}] = gi
		}
	}
	for shuffle := 0; shuffle < 5; shuffle++ {
		perm := r.Perm(len(base))
		shuffled := make([]geom.Point, len(base))
		for i, p := range perm {
			shuffled[i] = base[p]
		}
		res, err := SGBAny(shuffled, Options{Metric: geom.L2, Eps: 0.7, Algorithm: OnTheFlyIndex})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumGroups() != ref.NumGroups() {
			t.Fatalf("shuffle %d: %d groups, want %d", shuffle, res.NumGroups(), ref.NumGroups())
		}
		// Same-group relation must be preserved.
		groupOf := make(map[key]int)
		for gi, g := range res.Groups {
			for _, m := range g.Members {
				groupOf[key{shuffled[m][0], shuffled[m][1]}] = gi
			}
		}
		seenPairs := make(map[[2]int]bool)
		for k1, g1 := range refPart {
			for k2, g2 := range refPart {
				same := g1 == g2
				if (groupOf[k1] == groupOf[k2]) != same {
					t.Fatalf("shuffle %d: pair grouping flipped", shuffle)
				}
				_ = seenPairs
			}
		}
	}
}

// TestSGBAnyQuickProperty uses testing/quick to fuzz point sets: the
// indexed result always matches brute-force components.
func TestSGBAnyQuickProperty(t *testing.T) {
	f := func(raw []float64, epsRaw float64) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 160 {
			raw = raw[:160]
		}
		eps := 0.1 + mod1(epsRaw)*2
		var points []geom.Point
		for i := 0; i+1 < len(raw); i += 2 {
			points = append(points, geom.Point{mod1(raw[i]) * 10, mod1(raw[i+1]) * 10})
		}
		res, err := SGBAny(points, Options{Metric: geom.L2, Eps: eps, Algorithm: OnTheFlyIndex})
		if err != nil {
			return false
		}
		return SameGrouping(res.Groups, ConnectedComponents(points, geom.L2, eps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// mod1 maps any float (including NaN/Inf) into [0,1).
func mod1(x float64) float64 {
	if x != x || x > 1e300 || x < -1e300 { // NaN or huge
		return 0.5
	}
	if x < 0 {
		x = -x
	}
	return x - float64(int64(x))
}

func TestSGBAnyRejectsBoundsCheck(t *testing.T) {
	_, err := SGBAny([]geom.Point{{0, 0}}, Options{Metric: geom.L2, Eps: 1, Algorithm: BoundsCheck})
	if err == nil {
		t.Fatal("SGB-Any accepted the Bounds-Checking strategy")
	}
}

func TestSGBAnyEmptyAndSingle(t *testing.T) {
	res, err := SGBAny(nil, Options{Metric: geom.L2, Eps: 1})
	if err != nil || res.NumGroups() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	res, err = SGBAny([]geom.Point{{5, 5}}, Options{Metric: geom.L2, Eps: 1, Algorithm: OnTheFlyIndex})
	if err != nil || res.NumGroups() != 1 {
		t.Fatalf("single: %v %v", res, err)
	}
}

// TestSGBAnyMergeStats: merges reported by Stats equal n - #groups
// (each union reduces the component count by one).
func TestSGBAnyMergeStats(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	points := clusteredPoints(r, 500, 6, 10, 0.4)
	st := &Stats{}
	res, err := SGBAny(points, Options{Metric: geom.LInf, Eps: 0.6, Algorithm: OnTheFlyIndex, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(points) - res.NumGroups())
	if st.GroupMerges != want {
		t.Fatalf("merges = %d, want %d", st.GroupMerges, want)
	}
}
