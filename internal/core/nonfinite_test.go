package core

import (
	"math"
	"strings"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// TestNonFiniteRejected pins the operator-surface half of the
// non-finite guard: NaN/±Inf coordinates are refused by every entry
// point — one-shot (both operators, slice and flat forms) and the
// incremental evaluators' appends — before they can reach the grid's
// integer cell quantization or the Morton bit-spread.
func TestNonFiniteRejected(t *testing.T) {
	opt := Options{Metric: geom.L2, Eps: 1, Algorithm: GridIndex}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		pts := []geom.Point{{0, 0}, {bad, 1}}
		if _, err := SGBAll(pts, opt); err == nil || !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("SGBAll(%v) = %v, want non-finite rejection", bad, err)
		}
		if _, err := SGBAny(pts, opt); err == nil || !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("SGBAny(%v) = %v, want non-finite rejection", bad, err)
		}
		ps := geom.FromPoints(pts)
		if _, err := SGBAllSet(ps, opt); err == nil {
			t.Fatalf("SGBAllSet accepted %v", bad)
		}
		if _, err := SGBAnySet(ps, opt); err == nil {
			t.Fatalf("SGBAnySet accepted %v", bad)
		}

		all, err := NewAllEvaluator(2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := all.Append(ps); err == nil {
			t.Fatalf("AllEvaluator.Append accepted %v", bad)
		}
		if all.Len() != 0 {
			t.Fatalf("rejected append left %d points in AllEvaluator", all.Len())
		}
		anyEv, err := NewAnyEvaluator(2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := anyEv.Append(ps); err == nil {
			t.Fatalf("AnyEvaluator.Append accepted %v", bad)
		}
		if anyEv.Len() != 0 {
			t.Fatalf("rejected append left %d points in AnyEvaluator", anyEv.Len())
		}
	}
}
