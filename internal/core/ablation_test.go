package core

import (
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// TestAblationsPreserveResults: the performance knobs (index refresh
// hysteresis, convex-hull refinement) must not change the grouping.
func TestAblationsPreserveResults(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	points := clusteredPoints(r, 400, 8, 12, 0.4)
	base := Options{Metric: geom.L2, Eps: 0.8, Overlap: Eliminate, Algorithm: OnTheFlyIndex, Seed: 3}

	ref, err := SGBAll(points, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		func() Options { o := base; o.IndexHysteresis = 1; return o }(),   // eager reindex
		func() Options { o := base; o.IndexHysteresis = 100; return o }(), // maximally stale
		func() Options { o := base; o.NoHullTest = true; return o }(),     // exact member scans
	}
	for i, opt := range variants {
		res, err := SGBAll(points, opt)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if !SameGrouping(ref.Groups, res.Groups) {
			t.Fatalf("variant %d changed the grouping", i)
		}
	}
}

// TestHysteresisReducesIndexUpdates verifies the design rationale: the
// lazy refresh performs far fewer R-tree updates than eager
// maintenance while staying correct.
func TestHysteresisReducesIndexUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	points := clusteredPoints(r, 1500, 10, 20, 0.3)

	eager := &Stats{}
	lazy := &Stats{}
	for _, run := range []struct {
		h  float64
		st *Stats
	}{{1, eager}, {0, lazy}} {
		opt := Options{
			Metric: geom.LInf, Eps: 0.6, Overlap: JoinAny,
			Algorithm: OnTheFlyIndex, IndexHysteresis: run.h, Stats: run.st,
		}
		if _, err := SGBAll(points, opt); err != nil {
			t.Fatal(err)
		}
	}
	if lazy.IndexUpdates >= eager.IndexUpdates {
		t.Fatalf("hysteresis did not reduce index updates: lazy=%d eager=%d",
			lazy.IndexUpdates, eager.IndexUpdates)
	}
	t.Logf("index updates: eager=%d lazy=%d (%.1fx fewer)",
		eager.IndexUpdates, lazy.IndexUpdates,
		float64(eager.IndexUpdates)/float64(lazy.IndexUpdates))
}

// TestHullTestSavesDistanceComputations verifies Procedure 6's point:
// under L2 with large dense groups, the hull refinement does far fewer
// distance computations than exact member scans.
func TestHullTestSavesDistanceComputations(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	// Few large dense clusters → groups with many members.
	points := clusteredPoints(r, 2000, 4, 30, 0.15)

	withHull := &Stats{}
	noHull := &Stats{}
	for _, run := range []struct {
		no bool
		st *Stats
	}{{false, withHull}, {true, noHull}} {
		opt := Options{
			Metric: geom.L2, Eps: 1.2, Overlap: JoinAny,
			Algorithm: OnTheFlyIndex, NoHullTest: run.no, Stats: run.st,
		}
		if _, err := SGBAll(points, opt); err != nil {
			t.Fatal(err)
		}
	}
	if withHull.DistanceComputations >= noHull.DistanceComputations {
		t.Fatalf("hull test did not reduce distance computations: hull=%d scan=%d",
			withHull.DistanceComputations, noHull.DistanceComputations)
	}
	if withHull.HullTests == 0 {
		t.Fatal("hull test never executed")
	}
	t.Logf("distance computations: hull=%d scan=%d (%.1fx fewer), hull tests=%d",
		withHull.DistanceComputations, noHull.DistanceComputations,
		float64(noHull.DistanceComputations)/float64(withHull.DistanceComputations),
		withHull.HullTests)
}
