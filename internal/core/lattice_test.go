package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// anyStrategies are the SGB-Any evaluation strategies the equivalence
// matrix cross-validates against (BoundsCheck does not exist for Any;
// its rejection is asserted separately below).
var anyStrategies = []Algorithm{AllPairs, OnTheFlyIndex, GridIndex}

// TestLatticeEquivalenceMatrix is the randomized lattice↔one-shot
// suite: for every ε level of randomly drawn EPS IN lists, SweepAny's
// answer must deep-equal an independent single-ε SGBAny run — same
// groups in the same canonical order with members in the same order —
// across {L2, L∞} × d ∈ {1, 2, 3, 5} × every SGB-Any strategy.
func TestLatticeEquivalenceMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	for trial := 0; trial < 6; trial++ {
		for _, m := range []geom.Metric{geom.L2, geom.LInf} {
			for _, d := range []int{1, 2, 3, 5} {
				n := 50 + r.Intn(150)
				span := 2.5 + r.Float64()*6
				points := randomPointsDim(r, n, d, span)
				k := 2 + r.Intn(7) // up to 8 levels
				epsList := make([]float64, 0, k)
				seen := map[float64]bool{}
				for len(epsList) < k {
					e := 0.05 + r.Float64()*2.2
					if !seen[e] {
						seen[e] = true
						epsList = append(epsList, e)
					}
				}
				swept, err := SweepAny(points, epsList, Options{Metric: m})
				if err != nil {
					t.Fatalf("%v d=%d: SweepAny: %v", m, d, err)
				}
				for li, eps := range epsList {
					for _, alg := range anyStrategies {
						oneShot, err := SGBAny(points, Options{Metric: m, Eps: eps, Algorithm: alg})
						if err != nil {
							t.Fatalf("%v d=%d eps=%v %v: SGBAny: %v", m, d, eps, alg, err)
						}
						if err := sameMembers(swept[li], oneShot); err != nil {
							t.Fatalf("%v d=%d eps=%v vs %v: lattice level diverges: %v", m, d, eps, alg, err)
						}
					}
				}
			}
		}
	}
}

// TestLatticeEquivalenceParallelOneShot pins the remaining strategy
// surface: lattice levels also match GridIndex one-shot runs forced
// through the parallel pipeline.
func TestLatticeEquivalenceParallelOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(809))
	points := randomPointsDim(r, 400, 2, 6)
	epsList := []float64{0.2, 0.55, 0.9, 1.4}
	swept, err := SweepAny(points, epsList, Options{Metric: geom.L2})
	if err != nil {
		t.Fatal(err)
	}
	for li, eps := range epsList {
		oneShot, err := SGBAny(points, Options{Metric: geom.L2, Eps: eps, Algorithm: GridIndex, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := sameMembers(swept[li], oneShot); err != nil {
			t.Fatalf("eps=%v vs parallel grid: %v", eps, err)
		}
	}
}

// TestLatticeIncrementalEquivalence: appending in batches to one
// LatticeEvaluator answers exactly like a one-shot run over the
// concatenation, at every level, after every batch.
func TestLatticeIncrementalEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(810))
	ev, err := NewLatticeEvaluator(3, Options{Metric: geom.L2, Eps: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	var all []geom.Point
	for batch := 0; batch < 4; batch++ {
		pts := randomPointsDim(r, 60, 3, 5)
		all = append(all, pts...)
		if err := ev.Append(pts, nil); err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.3, 1.1, 2.0} {
			got, err := ev.GroupsAt(eps)
			if err != nil {
				t.Fatal(err)
			}
			want, err := SGBAny(all, Options{Metric: geom.L2, Eps: eps})
			if err != nil {
				t.Fatal(err)
			}
			if err := sameMembers(got, want); err != nil {
				t.Fatalf("batch %d eps=%v: %v", batch, eps, err)
			}
		}
	}
}

// TestLatticeBoundsCheckRejected completes the four-strategy matrix:
// SGB-Any has no Bounds-Checking variant, and the lattice evaluator
// rejects it with the same named error the one-shot operator uses.
func TestLatticeBoundsCheckRejected(t *testing.T) {
	if _, err := NewLatticeEvaluator(2, Options{Metric: geom.L2, Eps: 1, Algorithm: BoundsCheck}); !errors.Is(err, ErrBoundsCheckAny) {
		t.Fatalf("NewLatticeEvaluator(BoundsCheck): got %v, want ErrBoundsCheckAny", err)
	}
	if _, err := SweepAny([]geom.Point{{0, 0}}, []float64{1}, Options{Metric: geom.L2, Algorithm: BoundsCheck}); !errors.Is(err, ErrBoundsCheckAny) {
		t.Fatalf("SweepAny(BoundsCheck): got %v, want ErrBoundsCheckAny", err)
	}
}

func TestValidateEpsList(t *testing.T) {
	cases := []struct {
		name string
		list []float64
		want error
	}{
		{"empty", nil, ErrEpsListEmpty},
		{"zero", []float64{0.5, 0}, ErrEpsListNonPositive},
		{"negative", []float64{-1}, ErrEpsListNonPositive},
		{"nan", []float64{math.NaN()}, ErrEpsListNonPositive},
		{"inf", []float64{math.Inf(1)}, ErrEpsListNonPositive},
		{"duplicate", []float64{0.5, 1, 0.5}, ErrEpsListDuplicate},
		{"ok", []float64{0.5, 1, 2}, nil},
	}
	for _, tc := range cases {
		err := ValidateEpsList(tc.list)
		if tc.want == nil {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestLatticeEpsAboveMax(t *testing.T) {
	ev, err := NewLatticeEvaluator(2, Options{Metric: geom.L2, Eps: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Append([]geom.Point{{0, 0}, {0.5, 0}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.GroupsAt(1.5); !errors.Is(err, ErrEpsAboveMax) {
		t.Fatalf("GroupsAt above ε_max: got %v", err)
	}
	if _, err := ev.Sweep([]float64{0.5, 1.5}); !errors.Is(err, ErrEpsAboveMax) {
		t.Fatalf("Sweep above ε_max: got %v", err)
	}
}

// TestLatticeQueryCostIsZero pins the cache-sharing contract: once the
// sweep is built, GroupsAt/Sweep charge no distance computations or
// index work to the caller's Stats (the shared-entry regression at the
// SQL layer relies on exactly this).
func TestLatticeQueryCostIsZero(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	ev, err := NewLatticeEvaluator(2, Options{Metric: geom.L2, Eps: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	var build Stats
	if err := ev.Append(randomPointsDim(r, 200, 2, 5), &build); err != nil {
		t.Fatal(err)
	}
	if build.DistanceComputations == 0 || build.IndexProbes == 0 {
		t.Fatalf("build charged no work: %+v", build)
	}
	if _, err := ev.Sweep([]float64{0.3, 0.9, 1.7}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.SweepSummaries([]float64{0.3, 0.9, 1.7}); err != nil {
		t.Fatal(err)
	}
	after := build
	// Queries take no Stats argument at all — re-appending nothing and
	// re-querying must leave the recorded counters untouched.
	if err := ev.Append(nil, &build); err != nil {
		t.Fatal(err)
	}
	if build != after {
		t.Fatalf("queries/no-op appends charged work: %+v vs %+v", build, after)
	}
}

// TestLatticeSummaryMatchesGroups cross-checks SummaryAt against the
// materialized groups it summarizes.
func TestLatticeSummaryMatchesGroups(t *testing.T) {
	r := rand.New(rand.NewSource(812))
	pts := randomPointsDim(r, 150, 2, 4)
	ev, err := NewLatticeEvaluator(2, Options{Metric: geom.LInf, Eps: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Append(pts, nil); err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.2, 0.6, 1.5} {
		sum, err := ev.SummaryAt(eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ev.GroupsAt(eps)
		if err != nil {
			t.Fatal(err)
		}
		largest, grouped := 0, 0
		for _, g := range res.Groups {
			if len(g.Members) > largest {
				largest = len(g.Members)
			}
			if len(g.Members) >= 2 {
				grouped += len(g.Members)
			}
		}
		wantFrac := float64(grouped) / float64(len(pts))
		if sum.Eps != eps || sum.Groups != len(res.Groups) || sum.Largest != largest || math.Abs(sum.GroupedFraction-wantFrac) > 1e-15 {
			t.Fatalf("eps=%v: summary %+v disagrees with groups (want %d groups, largest %d, frac %v)", eps, sum, len(res.Groups), largest, wantFrac)
		}
	}
}

// TestSweepAnyOrderAlignment: results align with the caller's list
// order, not ascending ε.
func TestSweepAnyOrderAlignment(t *testing.T) {
	pts := []geom.Point{{0}, {0.4}, {3}, {3.2}}
	epsList := []float64{2.0, 0.1, 0.5} // deliberately unsorted
	res, err := SweepAny(pts, epsList, Options{Metric: geom.L2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res[1].Groups); got != 4 {
		t.Fatalf("eps=0.1 level landed %d groups, want 4 (order misaligned?)", got)
	}
	if got := len(res[2].Groups); got != 2 {
		t.Fatalf("eps=0.5 level landed %d groups, want 2", got)
	}
	if got := len(res[0].Groups); got != 2 {
		t.Fatalf("eps=2.0 level landed %d groups, want 2", got)
	}
}
