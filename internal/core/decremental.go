package core

import (
	"fmt"
	"sort"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// This file holds the decremental arm of the resumable operators:
// point deletion for AnyEvaluator and AllEvaluator, the other half of
// the sliding-window workloads (MANET traces, geosocial check-ins,
// streaming eviction) the incremental subsystem exists for.
//
// The two operators earn very different deletion machinery, and the
// split mirrors the companion work on order-independent SGB semantics
// (PAPERS.md: "On Order-independent Semantics of the Similarity
// Group-By Relational Database Operator"):
//
//   - SGB-Any groups are the connected components of the ε-similarity
//     graph — order-independent, so deletion is well-defined and
//     local: removing a point can only SPLIT its own component, never
//     merge or perturb others. AnyEvaluator.Remove therefore dissolves
//     just the victims' components in the Union-Find forest and
//     re-unions their surviving members against the live index — exact
//     by the same argument that makes appending exact.
//
//   - SGB-All arbitration (JOIN-ANY draws, ELIMINATE victims,
//     FORM-NEW-GROUP deferrals) depends on which points were present
//     and in what order. No group surgery can reconstruct, say, a
//     point that was eliminated because of a now-deleted neighbor —
//     the retained state no longer holds that information. The only
//     maintenance that stays bit-identical to a from-scratch run over
//     the survivors is to replay the arbitration over them, which
//     AllEvaluator.Remove does (reusing the retained point log and
//     tombstoning victims; the log compacts once tombstones outnumber
//     the living). Serving anything cheaper would hand out groupings
//     no one-shot evaluation produces — exactly the class of staleness
//     bug the engine-level generation counter exists to prevent.
//
// In both cases ids are LIVE ids: Result numbers the surviving points
// 0..Len()-1 in arrival order, Remove accepts those numbers, and after
// a removal the survivors renumber compactly — so at every step the
// evaluator's id space matches a from-scratch evaluation of the
// surviving points (and, at the SQL layer, the row numbering of a
// table after DELETE compacts it).

// checkRemoveIDs validates a Remove id batch against n live points and
// returns it sorted. Already-sorted batches — every Window eviction,
// every SQL DELETE — are used as-is (the callers only read them);
// unsorted input is copied and sorted.
func checkRemoveIDs(ids []int, n int) ([]int, error) {
	sorted := ids
	if !sort.IntsAreSorted(sorted) {
		sorted = append([]int(nil), ids...)
		sort.Ints(sorted)
	}
	if sorted[0] < 0 || sorted[len(sorted)-1] >= n {
		return nil, fmt.Errorf("core: Remove id out of range [0, %d)", n)
	}
	for k := 1; k < len(sorted); k++ {
		if sorted[k] == sorted[k-1] {
			return nil, fmt.Errorf("core: duplicate Remove id %d", sorted[k])
		}
	}
	return sorted, nil
}

// Remove deletes the points with the given live ids and repairs
// connectivity. Deletion is localized and output-sensitive: a BFS
// through the ε-graph from the victims visits exactly the union of
// their components, those components are dissolved in the forest, and
// their surviving members re-union through the live index — the
// ε-graph of every other component is untouched, so the repaired
// partition is exactly the components of the surviving points. Ids
// compact after the call (see Result); cost is proportional to the
// affected components' probe work (plus a memmove of the live order),
// not the retained set.
func (e *AnyEvaluator) Remove(ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	sorted, err := checkRemoveIDs(ids, e.Len())
	if err != nil {
		return err
	}
	e.materializeLive()
	if e.alive == nil {
		e.alive = make([]bool, e.points.Len())
		for i := range e.alive {
			e.alive[i] = true
		}
	}

	// BFS from the victims while they are still registered: the
	// traversal crosses them, so it visits every member of every
	// affected component — and nothing else. A member of an unaffected
	// component cannot be within ε of any visited point (they would
	// have shared a component), so the recluster cannot leak outside
	// the visited set.
	if n := e.points.Len(); len(e.mark) < n {
		e.mark = append(e.mark, make([]uint32, n-len(e.mark))...)
	}
	e.markEpoch++
	if e.markEpoch == 0 { // wrapped: invalidate stale stamps
		clear(e.mark)
		e.markEpoch = 1
	}
	epoch := e.markEpoch
	e.queue = e.queue[:0]
	for _, id := range sorted {
		pos := e.live[id]
		if e.mark[pos] != epoch {
			e.mark[pos] = epoch
			e.queue = append(e.queue, pos)
		}
	}
	for qi := 0; qi < len(e.queue); qi++ {
		u := int(e.queue[qi])
		e.nbuf = e.ix.neighbors(e.points, u, e.opt, e.nbuf[:0])
		for _, w := range e.nbuf {
			if e.mark[w] != epoch {
				e.mark[w] = epoch
				e.queue = append(e.queue, w)
			}
		}
	}

	// Count the dissolving components (distinct victim roots) before
	// any forest surgery, then tombstone the victims and unregister
	// them from the index so the relink probes cannot resurrect them.
	roots := make(map[int]struct{}, len(sorted))
	for _, id := range sorted {
		roots[e.uf.Find(int(e.live[id]))] = struct{}{}
	}
	for _, id := range sorted {
		pos := int(e.live[id])
		e.alive[pos] = false
		e.ix.remove(e.points, pos, e.opt)
	}

	// Dissolve the affected components and rebuild them from their
	// survivors: exact, because deletion can only split a component.
	e.uf.DropSets(len(roots))
	for _, pos := range e.queue {
		e.uf.Reset(int(pos))
	}
	for _, pos := range e.queue {
		if e.alive[pos] {
			e.ix.relink(e.points, int(pos), e.opt, e.uf)
		}
	}

	// Compact the live order (ids renumber here).
	out := e.live[:0]
	for _, pos := range e.live {
		if e.alive[pos] {
			out = append(out, pos)
		}
	}
	e.live = out
	e.dead += len(sorted)
	if e.dead > len(e.live) {
		e.compact()
	}
	return nil
}

// compact rebuilds the evaluator over the surviving points once the
// tombstones outnumber them, bounding memory by the live set. The
// components are already known, so the rebuild renumbers the forest
// and re-registers the index without re-probing — O(live) work,
// amortized O(1) per removal by the load threshold.
func (e *AnyEvaluator) compact() {
	old, oldUF := e.points, e.uf
	dims := e.points.Dims()
	pts := geom.NewPointSetCap(dims, len(e.live))
	nuf := &unionfind.UF{}
	// Clear the tombstones before re-registering: the All-Pairs
	// strategy reads e.alive through its shared pointer, and every
	// surviving point is alive in the compacted numbering.
	e.alive = nil
	nix := e.newIndex(dims, len(e.live))
	rootSlot := make(map[int]int, len(e.live))
	for k, pos := range e.live {
		pts.AppendPoint(old.At(int(pos)))
		nuf.Add()
		nix.add(pts, k, e.opt)
		if r, seen := rootSlot[oldUF.Find(int(pos))]; seen {
			nuf.Union(k, r)
		} else {
			rootSlot[oldUF.Find(int(pos))] = k
		}
	}
	e.points, e.uf, e.ix = pts, nuf, nix
	e.live, e.dead = nil, 0
}

// Remove deletes the points with the given live ids. SGB-All
// arbitration is order- and presence-sensitive, so the grouping over
// the survivors is recomputed by replaying the per-point arbitration
// over them in arrival order — the one maintenance that stays
// bit-identical (groups, member order, JOIN-ANY draws under the
// retained seed, ELIMINATE victims) to a from-scratch evaluation of
// the surviving points. The retained point log is reused and compacts
// once tombstones outnumber the living; with Options.Stats attached,
// the replay re-counts its operations. Ids compact after the call
// (see Result).
func (e *AllEvaluator) Remove(ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	sorted, err := checkRemoveIDs(ids, e.Len())
	if err != nil {
		return err
	}
	e.materializeLive()
	removed := make(map[int]struct{}, len(sorted))
	for _, id := range sorted {
		removed[id] = struct{}{}
	}
	out := e.live[:0]
	for k, pos := range e.live {
		if _, hit := removed[k]; !hit {
			out = append(out, pos)
		}
	}
	e.live = out
	e.dead += len(sorted)

	pts := e.st.points
	if e.dead > len(e.live) {
		pts = pts.Gather(e.live)
		e.live, e.dead = nil, 0
	}
	e.replay(pts)
	return nil
}

// replay rebuilds the arbitration state from scratch over the live
// points of pts in arrival order, seeding the PRNG exactly as a
// one-shot run would. The old state is discarded wholesale (groups,
// finder, deferred set); the point log is shared. JOIN-ANY draws are
// keyed by live rank, so each survivor draws exactly the value a
// from-scratch run over the survivors would hand it — the rank map
// below is what aligns stored indices (with holes) to that compact
// numbering.
func (e *AllEvaluator) replay(pts *geom.PointSet) {
	st := &sgbAllState{
		points:     pts,
		opt:        e.st.opt,
		dims:       e.st.dims,
		rand:       newRNG(e.st.opt.Seed),
		pointGroup: make([]int32, pts.Len()),
	}
	for i := range st.pointGroup {
		st.pointGroup[i] = -1
	}
	st.finder = newFinder(st)
	e.st = st
	if e.live != nil {
		st.rank = make([]int32, pts.Len())
		for i := range st.rank {
			st.rank[i] = -1 // tombstoned positions never draw
		}
		for k, pos := range e.live {
			st.rank[pos] = int32(k)
		}
		for _, pos := range e.live {
			st.processOne(int(pos))
		}
		return
	}
	for i := 0; i < pts.Len(); i++ {
		st.processOne(i)
	}
}
