package core

import (
	"sort"
	"sync"
	"time"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
	"github.com/sgb-db/sgb/internal/partition"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// This file is the parallel arm of SGB-All — the end of the pipeline's
// Amdahl tail. The old pipeline parallelized only the ε-adjacency
// precomputation and then queued every point through one sequential
// arbitration loop; here arbitration itself runs on workers:
//
//	partition  — cut the input into multi-axis ε-tiles (internal/partition)
//	connect    — per-tile Union-Find over a bulk-loaded ε-grid plus
//	             frontier edges: the ε-connected components, on workers
//	arbitrate  — components are batched by point count and every batch
//	             arbitrates on a worker against a PRIVATE group set, in
//	             input order restricted to the batch, tracing the
//	             provenance key of each order-sensitive event (allTrace)
//	merge      — one sort over the traced keys reconstructs the global
//	             sequential creation / elimination order
//
// Why this is exact and not just close: SGB-All arbitration DECOMPOSES
// over the ε-connected components of the input.
//
//   - A point's candidate groups hold only points within ε of it, and
//     its overlap groups hold at least one such point (the finder
//     filters are conservative, but classifyGroup's refine /
//     overlapsWith verification is exact) — so every group a point
//     interacts with lives in its own component, and a worker state
//     holding several whole components can never fabricate or miss a
//     cross-component interaction.
//   - Within one component, the batch processes points in global input
//     order restricted to the component, so candidate sets, candidate
//     ENUMERATION order (finders sort by creation-order group id),
//     ELIMINATE victim order, and FORM-NEW-GROUP stage floors all
//     match the sequential run's, stage by stage (the deferred set of
//     a stage is processed in deferral order, which the trace keys
//     show is the global order restricted to the batch).
//   - JOIN-ANY draws are keyed by the drawing point's live rank
//     (rng.drawAt), not by a shared stream cursor, so a draw does not
//     depend on how many draws other components made before it.
//
// The one cross-component coupling the sequential operator had — the
// shared PRNG stream — was removed by the keyed-draw re-design, and
// everything else was already component-local. Conflicts between
// workers are therefore impossible by construction: "speculative"
// per-batch arbitration commits without a repair pass, and the merge
// is a pure order reconstruction, bit-identical to the sequential
// output (the equivalence suites in parallel_test.go enforce this
// across semantics × metrics × strategies × worker counts).

// sgbAllParallel runs the parallel SGB-All pipeline with the given
// worker count, returning the same Result a sequential run produces.
// It reports false when the input cannot be split into at least two
// ε-tiles (the caller then evaluates sequentially).
func sgbAllParallel(ps *geom.PointSet, opt Options, workers int) (*Result, bool) {
	n := ps.Len()
	phaseStart := time.Now() //sgblint:allow determinism wall-clock feeds phase-timing stats only, never result rows
	plan := partition.Split(ps, opt.Eps, workers)
	if plan == nil {
		return nil, false
	}
	opt.Stats.notePhase(phasePartition, &phaseStart)

	// Connect: ε-connected components = per-tile Union-Find (each tile
	// probes its own bulk-loaded, Morton-major ε-grid) + frontier edges,
	// folded into one global forest. This is the SGB-Any pipeline run
	// for its components only.
	uf := unionfind.New(n)
	tileUFs := make([]*unionfind.UF, len(plan.Tiles))
	frontEdges := make([][]unionfind.Edge, workers)
	connStats := make([]Stats, len(plan.Tiles)+workers)
	ftab := frontierGrid(ps, opt.Eps, plan.Frontier)
	var wg sync.WaitGroup
	for ti := range plan.Tiles {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tileUFs[ti] = tileComponents(plan.Tiles[ti].Points, opt, &connStats[ti])
		}(ti)
	}
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			lo, hi := chunkRange(len(plan.Frontier), workers, wi)
			frontEdges[wi] = frontierEdges(ps, opt, plan, ftab, lo, hi, &connStats[len(plan.Tiles)+wi])
		}(wi)
	}
	wg.Wait()
	for ti := range tileUFs {
		uf.Absorb(tileUFs[ti], plan.Tiles[ti].Global)
	}
	for _, es := range frontEdges {
		uf.UnionEdges(es)
	}
	for i := range connStats {
		opt.Stats.merge(&connStats[i])
	}
	opt.Stats.notePhase(phaseConnect, &phaseStart)

	// Schedule: number components by first appearance (ascending input
	// index), then cut the component sequence into contiguous batches
	// of near-equal point count — one batch per worker. Contiguity in
	// first-appearance order keeps a batch's points roughly input-
	// clustered, which keeps its private finder's filter work close to
	// the sequential run's.
	compOf := make([]int32, n)
	rootComp := make(map[int32]int32, workers*4)
	nComp := int32(0)
	for i := 0; i < n; i++ {
		root := int32(uf.Find(i))
		c, seen := rootComp[root]
		if !seen {
			c = nComp
			rootComp[root] = c
			nComp++
		}
		compOf[i] = c
	}
	nBatches := workers
	if int(nComp) < nBatches {
		nBatches = int(nComp)
	}
	compBatch := make([]int32, nComp)
	compSize := make([]int32, nComp)
	for i := 0; i < n; i++ {
		compSize[compOf[i]]++
	}
	{
		b, filled := int32(0), 0
		target := (n + nBatches - 1) / nBatches
		for c := int32(0); c < nComp; c++ {
			compBatch[c] = b
			filled += int(compSize[c])
			if filled >= target && int(b) < nBatches-1 {
				b++
				filled = 0
			}
		}
	}
	orders := make([][]int, nBatches)
	for i := 0; i < n; i++ {
		b := compBatch[compOf[i]]
		orders[b] = append(orders[b], i)
	}

	// Arbitrate: every batch runs the one true arbitration loop
	// (sgbAllState.run — the same code the sequential path executes)
	// over its points, against a private group set, with tracing on.
	// The global point set is shared read-only; pointGroup is shared
	// with component-disjoint writes.
	pointGroup := make([]int32, n)
	for i := range pointGroup {
		pointGroup[i] = -1
	}
	states := make([]*sgbAllState, nBatches)
	batchStats := make([]Stats, nBatches)
	for b := 0; b < nBatches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			local := opt
			local.Stats = &batchStats[b]
			st := &sgbAllState{
				points:     ps,
				opt:        local,
				dims:       ps.Dims(),
				rand:       newRNG(opt.Seed),
				pointGroup: pointGroup,
				trace:      &allTrace{},
			}
			st.finder = newFinder(st)
			st.run(orders[b], nil, 0)
			states[b] = st
		}(b)
	}
	wg.Wait()
	for b := range batchStats {
		opt.Stats.merge(&batchStats[b])
	}
	opt.Stats.notePhase(phaseArbitrate, &phaseStart)

	// Merge: order group creations and eliminations globally by their
	// provenance keys. No repair pass runs because none is ever needed —
	// see the file comment.
	type keyedGroup struct {
		key     []int32
		members []int
	}
	var groups []keyedGroup
	type keyedElim struct {
		key []int32
		pi  int
	}
	var elims []keyedElim
	for _, st := range states {
		for id, g := range st.groups {
			if g == nil || len(g.members) == 0 {
				continue
			}
			groups = append(groups, keyedGroup{key: st.trace.groupKeys[id], members: g.members})
		}
		for k, pi := range st.eliminated {
			elims = append(elims, keyedElim{key: st.trace.elimKeys[k], pi: pi})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return keyLess(groups[i].key, groups[j].key) })
	sort.Slice(elims, func(i, j int) bool { return keyLess(elims[i].key, elims[j].key) })
	res := &Result{}
	for _, g := range groups {
		res.Groups = append(res.Groups, Group{Members: g.members})
	}
	for _, e := range elims {
		res.Eliminated = append(res.Eliminated, e.pi)
	}
	opt.Stats.notePhase(phaseMerge, &phaseStart)
	return res, true
}

// tileComponents computes the ε-graph components of one tile: the
// tile's points are bulk-loaded into an ε-grid with the Morton-major
// slab layout, then every point collects its cell neighborhood and
// unions the exact within-ε pairs (half: j < i).
func tileComponents(tps *geom.PointSet, opt Options, stats *Stats) *unionfind.UF {
	uf := unionfind.New(tps.Len())
	tab := grid.BulkLoad(tps, opt.Eps)
	metric, eps := opt.Metric, opt.Eps
	var cur grid.Cursor
	var buf []int32
	for i := 0; i < tps.Len(); i++ {
		p := tps.At(i)
		stats.addProbe(1)
		buf = tab.CollectBox(&cur, p, eps, buf[:0])
		for _, j := range buf {
			if int(j) >= i {
				continue
			}
			stats.addDist(1)
			if metric.Within(p, tps.At(int(j)), eps) {
				uf.Union(i, int(j))
			}
		}
	}
	return uf
}

// allTrace records, during a traced SGB-All run, the provenance key of
// every order-sensitive output event — group creations, ELIMINATE
// victims, FORM-NEW-GROUP deferrals. The parallel pipeline arbitrates
// ε-connected components on private worker states and then merges
// their outputs into the global sequential order by sorting on these
// keys (see parallelall.go's pipeline below).
//
// The key of a processing occurrence is its position in the global
// processing order, written positionally so workers can compute it
// without coordination:
//
//	stage 0:  [pi]                     — the input index itself
//	stage s:  parent key ++ [j]        — the deferring occurrence's key
//	                                     plus the event's index among
//	                                     that occurrence's defer events
//
// Stage s occurrences run in the order their defer events fired during
// stage s-1, so "later stage" ⟺ longer key and, within a stage,
// lexicographic key order IS global processing order (induction over
// stages). Event keys extend the occurrence key with the event's
// intra-occurrence sequence number; group creation keys are the bare
// occurrence key (at most one group is created per occurrence).
type allTrace struct {
	cur []int32 // occurrence key of the point being processed
	seq int32   // intra-occurrence event counter

	groupKeys [][]int32 // creation key per group id (parallel to st.groups)
	elimKeys  [][]int32 // event key per entry of st.eliminated
	deferKeys [][]int32 // event key per entry of st.deferred
}

// beginStage0 starts the occurrence of input point pi at stage 0.
func (t *allTrace) beginStage0(pi int32) {
	t.cur = append(t.cur[:0], pi)
	t.seq = 0
}

// beginOccurrence starts a deferred occurrence with the given key (the
// defer event's key, owned by deferKeys — read-only here).
func (t *allTrace) beginOccurrence(key []int32) {
	t.cur = key
	t.seq = 0
}

// noteGroup records the creation key of the group just appended to
// st.groups.
func (t *allTrace) noteGroup() {
	t.groupKeys = append(t.groupKeys, append([]int32(nil), t.cur...))
}

// eventKey returns the key of the next event of the current occurrence.
func (t *allTrace) eventKey() []int32 {
	k := make([]int32, len(t.cur)+1)
	copy(k, t.cur)
	k[len(t.cur)] = t.seq
	t.seq++
	return k
}

// keyLess orders provenance keys: stage first (key length), then
// lexicographic — the global processing order.
func keyLess(a, b []int32) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
