package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/partition"
)

// Overlap selects the ON-OVERLAP arbitration semantics of SGB-All
// (Section 4.1). It is ignored by SGB-Any, where overlap merges groups.
type Overlap int

const (
	// JoinAny inserts an overlapping point into one randomly chosen
	// candidate group.
	JoinAny Overlap = iota
	// Eliminate discards overlapping points (all members of the overlap
	// set Oset are eliminated from the output).
	Eliminate
	// FormNewGroup collects overlapping points into a temporary set S′
	// and recursively runs SGB-All on S′ to form new groups.
	FormNewGroup
)

// String returns the SQL clause spelling of the overlap semantics.
func (o Overlap) String() string {
	switch o {
	case JoinAny:
		return "JOIN-ANY"
	case Eliminate:
		return "ELIMINATE"
	case FormNewGroup:
		return "FORM-NEW-GROUP"
	default:
		return fmt.Sprintf("Overlap(%d)", int(o))
	}
}

// Algorithm selects the evaluation strategy.
type Algorithm int

const (
	// AllPairs evaluates the similarity predicate against every
	// previously processed point (the paper's baseline; O(n²)).
	AllPairs Algorithm = iota
	// BoundsCheck maintains an ε-All bounding rectangle per group and
	// linearly scans group rectangles (Procedure 4; O(n·|G|)).
	BoundsCheck
	// OnTheFlyIndex additionally indexes the group rectangles (SGB-All,
	// Procedure 5) or the processed points (SGB-Any, Procedure 8) in an
	// R-tree (O(n·log|G|) / O(n log n) average case).
	OnTheFlyIndex
	// GridIndex replaces the R-tree with a uniform hash grid of ε-sized
	// cells: SGB-All registers each group's ε-All rectangle (side ≤ 2ε)
	// in the ≤3^d cells it covers, SGB-Any keeps processed points in
	// their home cell; probes scan the 3^d-cell neighborhood. Expected
	// O(1) per probe plus output size — the fastest strategy for the
	// fixed-radius queries the operators issue. The open-addressed
	// hashed-cell table supports any dimensionality, and SGB-Any inputs
	// are Morton (Z-order) preprocessed for probe locality (output ids
	// stay in input order); results are identical to the other
	// strategies for equal seeds at every d.
	GridIndex
)

// String names the algorithm as the paper's figures do.
func (a Algorithm) String() string {
	switch a {
	case AllPairs:
		return "All-Pairs"
	case BoundsCheck:
		return "Bounds-Checking"
	case OnTheFlyIndex:
		return "on-the-fly-Index"
	case GridIndex:
		return "ε-Grid"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures one similarity group-by evaluation.
type Options struct {
	// Metric is the Minkowski distance δ (geom.L2 or geom.LInf).
	Metric geom.Metric
	// Eps is the similarity threshold ε (must be > 0).
	Eps float64
	// Overlap is the SGB-All ON-OVERLAP clause; ignored by SGB-Any.
	Overlap Overlap
	// Algorithm selects the evaluation strategy (default AllPairs).
	Algorithm Algorithm
	// Seed seeds the JOIN-ANY arbitration PRNG; runs with equal seeds
	// and inputs produce identical groupings.
	Seed int64
	// Stats, when non-nil, accumulates operation counts for the run.
	Stats *Stats

	// Parallelism selects the worker count of the partition / connect /
	// arbitrate / merge pipeline. 0 (the default) means GOMAXPROCS,
	// engaged only for the GridIndex strategy and only once the input
	// is large enough to amortize the sharding overhead — explicitly
	// selected comparison strategies (All-Pairs, Bounds-Checking,
	// R-tree) keep their sequential evaluation shape so the paper's
	// strategy experiments measure what they name. 1 forces the
	// sequential path; any value ≥ 2 forces that many workers for any
	// strategy and input size. Negative values are rejected by
	// Validate. Groupings are bit-identical at every worker count:
	// SGB-Any components are order-independent, and parallel SGB-All
	// arbitrates whole ε-connected components on workers and merges
	// their outputs back into the sequential processing order (keyed
	// JOIN-ANY draws make components independent; see parallelall.go).
	Parallelism int

	// IndexHysteresis tunes when the on-the-fly index refreshes a
	// group's (shrinking) ε-All rectangle: the stale entry is kept
	// while its area is at most this multiple of the true rectangle's
	// area. 0 selects the default (1.8); 1 reindexes on every change
	// (the paper's eager maintenance). Exposed for the ablation bench.
	IndexHysteresis float64
	// NoHullTest disables the Convex Hull Test of Procedure 6 and
	// refines L2 candidates by exact member scans instead. Exposed for
	// the ablation bench; results are identical either way.
	NoHullTest bool
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if !(o.Eps > 0) || math.IsInf(o.Eps, 1) {
		return errors.New("core: similarity threshold ε must be positive and finite")
	}
	if o.Metric != geom.L2 && o.Metric != geom.LInf {
		return errors.New("core: unknown distance metric")
	}
	switch o.Overlap {
	case JoinAny, Eliminate, FormNewGroup:
	default:
		return errors.New("core: unknown ON-OVERLAP clause")
	}
	switch o.Algorithm {
	case AllPairs, BoundsCheck, OnTheFlyIndex, GridIndex:
	default:
		return errors.New("core: unknown algorithm")
	}
	if o.Parallelism < 0 {
		return errors.New("core: Parallelism must be >= 0 (0 means GOMAXPROCS)")
	}
	return nil
}

// parallelThreshold is the input size below which Parallelism = 0
// (auto) stays sequential: sharding a few thousand points costs more
// than it saves. An explicit Parallelism ≥ 2 bypasses the threshold,
// which is what the equivalence tests use to exercise the parallel
// pipeline on small inputs.
const parallelThreshold = 4096

// workers resolves the effective worker count for an input of n
// points. Auto mode (Parallelism = 0) engages only for GridIndex:
// requesting All-Pairs, Bounds-Checking, or the R-tree by name is a
// statement about which evaluation shape to run (the
// strategy-comparison experiments depend on it), so those stay
// sequential unless the caller explicitly asks for workers.
func (o Options) workers(n int) int {
	switch {
	case o.Parallelism == 1 || n < 2:
		return 1
	case o.Parallelism == 0 && (n < parallelThreshold || o.Algorithm != GridIndex):
		return 1
	}
	w := partition.Workers(o.Parallelism)
	if w > n {
		w = n
	}
	return w
}

// Stats counts the primitive operations a run performed; the Table 1
// complexity benches use these to verify the asymptotic claims
// empirically (distance computations dominate All-Pairs, rectangle
// tests dominate Bounds-Checking, index probes dominate the on-the-fly
// index).
type Stats struct {
	DistanceComputations int64 // ξ evaluations against concrete points
	RectTests            int64 // PointInRectangle / rectangle-overlap tests
	HullTests            int64 // convex-hull refinements (L2 only)
	IndexProbes          int64 // R-tree window queries
	IndexUpdates         int64 // R-tree inserts + deletes
	GroupsCreated        int64
	GroupMerges          int64 // SGB-Any merges
	RecursionDepth       int   // FORM-NEW-GROUP recursion depth reached

	// Per-phase wall-clock of the parallel SGB-All pipeline (zero when
	// the run stayed sequential). The split shows where a worker sweep
	// stops scaling: partition and merge are the sequential residue,
	// connect and arbitrate are the parallel sections.
	PartitionNanos int64 // multi-axis ε-tile planning
	ConnectNanos   int64 // per-tile + frontier ε-component discovery
	ArbitrateNanos int64 // per-batch traced arbitration
	MergeNanos     int64 // provenance-key sort + result assembly
}

func (s *Stats) addDist(n int64) {
	if s != nil {
		s.DistanceComputations += n
	}
}
func (s *Stats) addRect(n int64) {
	if s != nil {
		s.RectTests += n
	}
}
func (s *Stats) addHull(n int64) {
	if s != nil {
		s.HullTests += n
	}
}
func (s *Stats) addProbe(n int64) {
	if s != nil {
		s.IndexProbes += n
	}
}
func (s *Stats) addUpdate(n int64) {
	if s != nil {
		s.IndexUpdates += n
	}
}
func (s *Stats) addCreated(n int64) {
	if s != nil {
		s.GroupsCreated += n
	}
}
func (s *Stats) addMerge(n int64) {
	if s != nil {
		s.GroupMerges += n
	}
}
func (s *Stats) noteDepth(d int) {
	if s != nil && d > s.RecursionDepth {
		s.RecursionDepth = d
	}
}

// Phases of the parallel SGB-All pipeline, for notePhase.
const (
	phasePartition = iota
	phaseConnect
	phaseArbitrate
	phaseMerge
)

// notePhase charges the wall-clock since *start to the given pipeline
// phase and advances *start — nil-safe like the counters.
func (s *Stats) notePhase(phase int, start *time.Time) {
	now := time.Now() //sgblint:allow determinism wall-clock feeds phase-timing stats only, never result rows
	if s != nil {
		d := now.Sub(*start).Nanoseconds()
		switch phase {
		case phasePartition:
			s.PartitionNanos += d
		case phaseConnect:
			s.ConnectNanos += d
		case phaseArbitrate:
			s.ArbitrateNanos += d
		case phaseMerge:
			s.MergeNanos += d
		}
	}
	*start = now
}

// Merge folds another counter block into s: counters add, the
// recursion-depth high-water mark takes the max. The engine's shared
// evaluator cache uses it to aggregate per-entry work counters, and
// per-query blocks fold entry deltas through it.
func (s *Stats) Merge(o *Stats) { s.merge(o) }

// merge folds a worker-private Stats into s. Parallel stages hand each
// worker its own counter block so the hot path never shares cache
// lines; the coordinator merges after the workers join.
func (s *Stats) merge(o *Stats) {
	if s == nil || o == nil {
		return
	}
	s.DistanceComputations += o.DistanceComputations
	s.RectTests += o.RectTests
	s.HullTests += o.HullTests
	s.IndexProbes += o.IndexProbes
	s.IndexUpdates += o.IndexUpdates
	s.GroupsCreated += o.GroupsCreated
	s.GroupMerges += o.GroupMerges
	if o.RecursionDepth > s.RecursionDepth {
		s.RecursionDepth = o.RecursionDepth
	}
	s.PartitionNanos += o.PartitionNanos
	s.ConnectNanos += o.ConnectNanos
	s.ArbitrateNanos += o.ArbitrateNanos
	s.MergeNanos += o.MergeNanos
}

// Group is one output group; Members are indices into the input slice,
// in the order the points joined the group.
type Group struct {
	Members []int
}

// Result is the outcome of a similarity group-by evaluation.
type Result struct {
	// Groups holds the output groups in creation order.
	Groups []Group
	// Eliminated lists input indices dropped by ON-OVERLAP ELIMINATE
	// (empty under other semantics), in elimination order.
	Eliminated []int
}

// NumGroups returns the number of output groups.
func (r *Result) NumGroups() int { return len(r.Groups) }

// Sizes returns the group cardinalities in group order (the multiset
// the paper's COUNT(*) example queries report).
func (r *Result) Sizes() []int {
	out := make([]int, len(r.Groups))
	for i, g := range r.Groups {
		out[i] = len(g.Members)
	}
	return out
}

// checkInput validates points for dimensional consistency and returns
// the dimensionality (0 for an empty input).
func checkInput(points []geom.Point) (int, error) {
	if len(points) == 0 {
		return 0, nil
	}
	d := len(points[0])
	if d == 0 {
		return 0, errors.New("core: zero-dimensional point")
	}
	for i, p := range points {
		if len(p) != d {
			return 0, fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	return d, nil
}

// rng is a small deterministic PRNG (splitmix64) used for the JOIN-ANY
// arbitration; math/rand would also do, but an explicit generator keeps
// the operator self-contained and its state obvious.
//
// Draws are KEYED, not streamed: splitmix64 is a counter-based
// generator (the state advances by a fixed odd constant γ per step), so
// the k-th value of the stream is a pure function mix(state + (k+1)·γ)
// of the seed state. JOIN-ANY keys every draw by the drawing point's
// live rank (its position among the surviving points in arrival order)
// instead of consuming a shared sequential stream. The draws stay
// deterministic per (seed, point sequence) — and, crucially, they stop
// depending on HOW MANY other points happened to face a multi-candidate
// choice earlier, which is what lets the parallel pipeline arbitrate
// ε-connected components independently and the decremental path replay
// survivors, both bit-identical to a sequential run.
type rng struct{ state uint64 }

const splitmixGamma = 0x9E3779B97F4A7C15

func newRNG(seed int64) *rng { return &rng{state: uint64(seed)*splitmixGamma + 1} }

// drawAt returns the keyed uniform draw in [0, n) for key k ≥ 0: the
// (k+1)-th output of the splitmix64 stream seeded at r.state. r.state
// itself never advances.
func (r *rng) drawAt(k int, n int) int {
	z := r.state + (uint64(k)+1)*splitmixGamma
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(n))
}
