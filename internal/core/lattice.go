package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/lattice"
)

// Named ε-list validation errors, shared by the Go sweep API and the
// SQL planner (EPS IN / SIMILARITY CUBE lowering) so every surface
// rejects a bad list the same way.
var (
	// ErrEpsListEmpty rejects a sweep with no ε levels.
	ErrEpsListEmpty error = errValue("core: EPS IN list must name at least one ε level")
	// ErrEpsListNonPositive rejects a level that is not a positive
	// finite number.
	ErrEpsListNonPositive error = errValue("core: every ε level must be positive and finite")
	// ErrEpsListDuplicate rejects a repeated level — a duplicate would
	// emit the same grouping twice, which is never what the query meant.
	ErrEpsListDuplicate error = errValue("core: EPS IN list contains a duplicate ε level")
)

// ErrEpsAboveMax re-exports the lattice package's out-of-range query
// error: a dendrogram only knows merges below the ε_max its sweep
// enumerated.
var ErrEpsAboveMax = lattice.ErrEpsAboveMax

// ValidateEpsList checks an ε sweep list: non-empty, every level
// positive and finite, no duplicates. Returns one of the named errors
// above (wrapped with the offending level where there is one).
func ValidateEpsList(epsList []float64) error {
	if len(epsList) == 0 {
		return ErrEpsListEmpty
	}
	seen := make(map[float64]bool, len(epsList))
	for _, e := range epsList {
		if !(e > 0) || math.IsInf(e, 1) {
			return fmt.Errorf("%w (got %v)", ErrEpsListNonPositive, e)
		}
		if seen[e] {
			return fmt.Errorf("%w (%v)", ErrEpsListDuplicate, e)
		}
		seen[e] = true
	}
	return nil
}

// EpsSummary is one ε level's aggregate row — the SIMILARITY CUBE BY
// EPS unit (level, group count, largest group, grouped-point
// fraction).
type EpsSummary = lattice.Summary

// LatticeEvaluator is the resumable ε-lattice arm of SGB-Any: one
// grid-accelerated edge sweep maintained across Appends whose
// dendrogram answers GroupsAt(ε) for every ε ≤ ε_max — the multi-query
// sharing evaluator behind EPS IN (...) and SIMILARITY CUBE. Group
// output is bit-identical to an independent one-shot SGBAny run at the
// same ε (heights are compared in the metric's Within key space), for
// every algorithm strategy, since SGB-Any components are
// strategy-independent.
//
// Options.Eps is the evaluator's ε_max. Algorithm, Seed, Overlap, and
// Parallelism do not affect the result (components are
// strategy-independent and arbitration-free); BoundsCheck is still
// rejected, exactly as SGBAny rejects it. Unlike the Any/All
// evaluators, Options.Stats is NOT retained — each Append and query
// charges work to the *Stats argument of that call, so one shared
// evaluator can serve many sessions with per-session accounting.
type LatticeEvaluator struct {
	opt   Options
	sweep *lattice.Sweep
}

// NewLatticeEvaluator returns an empty ε-lattice evaluator over
// dims-dimensional points. opt.Eps is the largest answerable ε.
func NewLatticeEvaluator(dims int, opt Options) (*LatticeEvaluator, error) {
	opt.Stats = nil // per-call accounting only; see the type comment
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Algorithm == BoundsCheck {
		return nil, ErrBoundsCheckAny
	}
	sw, err := lattice.NewSweep(dims, opt.Metric, opt.Eps)
	if err != nil {
		return nil, err
	}
	return &LatticeEvaluator{opt: opt, sweep: sw}, nil
}

// Len returns the number of absorbed points.
func (e *LatticeEvaluator) Len() int { return e.sweep.Len() }

// Dims returns the evaluator's point dimensionality.
func (e *LatticeEvaluator) Dims() int { return e.sweep.Dims() }

// EpsMax returns the largest answerable threshold.
func (e *LatticeEvaluator) EpsMax() float64 { return e.sweep.EpsMax() }

// Append absorbs a batch of points. Work counters accumulate into st
// when non-nil; st is not retained.
func (e *LatticeEvaluator) Append(points []geom.Point, st *Stats) error {
	if _, err := checkInput(points); err != nil {
		return err
	}
	return e.AppendSet(geom.FromPoints(points), st)
}

// AppendSet is Append over flat point storage. The batch is copied.
func (e *LatticeEvaluator) AppendSet(ps *geom.PointSet, st *Stats) error {
	if ps == nil || ps.Len() == 0 {
		return nil
	}
	if ps.Dims() != e.sweep.Dims() {
		return fmt.Errorf("core: appended points have dimension %d, want %d", ps.Dims(), e.sweep.Dims())
	}
	if err := ps.CheckFinite(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	var ls lattice.Stats
	if err := e.sweep.Append(ps, &ls); err != nil {
		return err
	}
	st.addDist(ls.DistanceComputations)
	st.addProbe(ls.IndexProbes)
	st.addUpdate(ls.IndexUpdates)
	return nil
}

// GroupsAt materializes the grouping at threshold eps ≤ EpsMax(),
// identical to a one-shot SGBAny run at eps over the absorbed points.
// Queries perform no distance computations or index work — the
// dendrogram cut is a binary search plus an amortized Union-Find
// replay.
func (e *LatticeEvaluator) GroupsAt(eps float64) (*Result, error) {
	raw, err := e.sweep.Dendrogram().GroupsAt(eps)
	if err != nil {
		return nil, latticeQueryErr(err, e.sweep.EpsMax())
	}
	res := &Result{Groups: make([]Group, len(raw))}
	for i, g := range raw {
		res.Groups[i] = Group{Members: g}
	}
	return res, nil
}

// SummaryAt computes one ε level's aggregate row without
// materializing its groups.
func (e *LatticeEvaluator) SummaryAt(eps float64) (EpsSummary, error) {
	sum, err := e.sweep.Dendrogram().SummaryAt(eps)
	if err != nil {
		return EpsSummary{}, latticeQueryErr(err, e.sweep.EpsMax())
	}
	return sum, nil
}

// Sweep answers every level of epsList in one pass, results aligned to
// the caller's list order. The list is validated with ValidateEpsList
// and must not exceed EpsMax(). Internally levels are visited in
// ascending order so the dendrogram replay does one total pass
// regardless of list order.
func (e *LatticeEvaluator) Sweep(epsList []float64) ([]*Result, error) {
	order, err := e.sweepOrder(epsList)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(epsList))
	for _, i := range order {
		if out[i], err = e.GroupsAt(epsList[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepSummaries is Sweep for aggregate rows — the CUBE fast path.
func (e *LatticeEvaluator) SweepSummaries(epsList []float64) ([]EpsSummary, error) {
	order, err := e.sweepOrder(epsList)
	if err != nil {
		return nil, err
	}
	out := make([]EpsSummary, len(epsList))
	for _, i := range order {
		if out[i], err = e.SummaryAt(epsList[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepOrder validates epsList and returns its index permutation in
// ascending ε order.
func (e *LatticeEvaluator) sweepOrder(epsList []float64) ([]int, error) {
	if err := ValidateEpsList(epsList); err != nil {
		return nil, err
	}
	order := make([]int, len(epsList))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return epsList[order[a]] < epsList[order[b]] })
	return order, nil
}

// latticeQueryErr decorates an out-of-range query error with the
// evaluator's bound; other errors pass through.
func latticeQueryErr(err error, epsMax float64) error {
	if errors.Is(err, lattice.ErrEpsAboveMax) {
		return fmt.Errorf("%w (ε_max = %v)", ErrEpsAboveMax, epsMax)
	}
	return err
}

// SweepAny answers SGB-Any at every ε level of epsList in one
// evaluation: a single edge sweep below max(epsList) folded through a
// Union-Find, each level cut from the shared dendrogram. Results align
// with epsList's order, each bit-identical to SGBAny at that level.
// opt.Eps is ignored (the list defines the sweep's ε_max).
func SweepAny(points []geom.Point, epsList []float64, opt Options) ([]*Result, error) {
	if _, err := checkInput(points); err != nil {
		return nil, err
	}
	return SweepAnySet(geom.FromPoints(points), epsList, opt)
}

// SweepAnySet is SweepAny over flat point storage.
func SweepAnySet(ps *geom.PointSet, epsList []float64, opt Options) ([]*Result, error) {
	if err := ValidateEpsList(epsList); err != nil {
		return nil, err
	}
	opt.Eps = slicesMax(epsList)
	dims := 1
	if ps != nil && ps.Len() > 0 {
		dims = ps.Dims()
	}
	ev, err := NewLatticeEvaluator(dims, opt)
	if err != nil {
		return nil, err
	}
	if err := ev.AppendSet(ps, opt.Stats); err != nil {
		return nil, err
	}
	return ev.Sweep(epsList)
}

func slicesMax(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
