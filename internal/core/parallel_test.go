package core

import (
	"math/rand"
	"os"
	"reflect"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// The randomized parallel↔sequential equivalence suite: the parallel
// pipeline must produce member-for-member identical groupings at every
// worker count — SGB-Any under every algorithm, SGB-All under all
// three ON-OVERLAP semantics (JOIN-ANY with equal seeds) — across
// {L2, L∞} × d ∈ {1, 2, 3}.

func randTestPoints(r *rand.Rand, n, d int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

func trialsFor(t *testing.T) int {
	if testing.Short() {
		return 1
	}
	return 3
}

func TestParallelAnyEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 3} {
		for _, m := range []geom.Metric{geom.L2, geom.LInf} {
			for trial := 0; trial < trialsFor(t); trial++ {
				n := 200 + r.Intn(300)
				pts := randTestPoints(r, n, d, 7)
				eps := 0.1 + r.Float64()*0.4
				seq, err := SGBAny(pts, Options{Metric: m, Eps: eps, Algorithm: GridIndex, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, alg := range []Algorithm{AllPairs, OnTheFlyIndex, GridIndex} {
					for _, workers := range []int{2, 3, 8} {
						st := &Stats{}
						opt := Options{Metric: m, Eps: eps, Algorithm: alg, Parallelism: workers, Stats: st}
						got, err := SGBAny(pts, opt)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Groups, seq.Groups) {
							t.Fatalf("d=%d metric=%v alg=%v workers=%d eps=%.3f: parallel grouping differs from sequential (%d vs %d groups)",
								d, m, alg, workers, eps, len(got.Groups), len(seq.Groups))
						}
					}
				}
			}
		}
	}
}

func TestParallelAllEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3} {
		for _, m := range []geom.Metric{geom.L2, geom.LInf} {
			for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
				for trial := 0; trial < trialsFor(t); trial++ {
					n := 150 + r.Intn(250)
					pts := randTestPoints(r, n, d, 6)
					eps := 0.15 + r.Float64()*0.5
					seed := r.Int63()
					base := Options{Metric: m, Eps: eps, Overlap: ov, Seed: seed}
					for _, alg := range []Algorithm{GridIndex, OnTheFlyIndex} {
						seqOpt := base
						seqOpt.Algorithm = alg
						seqOpt.Parallelism = 1
						seq, err := SGBAll(pts, seqOpt)
						if err != nil {
							t.Fatal(err)
						}
						for _, workers := range []int{2, 5, 8} {
							parOpt := base
							parOpt.Algorithm = alg
							parOpt.Parallelism = workers
							got, err := SGBAll(pts, parOpt)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got.Groups, seq.Groups) {
								t.Fatalf("d=%d metric=%v overlap=%v alg=%v workers=%d eps=%.3f seed=%d: groups differ",
									d, m, ov, alg, workers, eps, seed)
							}
							if !reflect.DeepEqual(got.Eliminated, seq.Eliminated) {
								t.Fatalf("d=%d metric=%v overlap=%v alg=%v workers=%d: eliminated sets differ",
									d, m, ov, alg, workers)
							}
						}
					}
				}
			}
		}
	}
}

// TestParallelAnyMatchesComponents pins the parallel pipeline to the
// brute-force connected-components reference, not just to the
// sequential operator.
func TestParallelAnyMatchesComponents(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	pts := randTestPoints(r, 400, 2, 6)
	const eps = 0.3
	want := ConnectedComponents(pts, geom.L2, eps)
	got, err := SGBAny(pts, Options{Metric: geom.L2, Eps: eps, Algorithm: GridIndex, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !SameGrouping(got.Groups, want) {
		t.Fatalf("parallel SGB-Any does not match connected components: %d vs %d groups", len(got.Groups), len(want))
	}
}

// TestParallelCliquesValid sanity-checks the parallel SGB-All output
// invariants directly (clique property, full accounting).
func TestParallelCliquesValid(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	pts := randTestPoints(r, 300, 2, 5)
	for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
		res, err := SGBAll(pts, Options{Metric: geom.L2, Eps: 0.4, Overlap: ov, Algorithm: GridIndex, Parallelism: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCliques(pts, geom.L2, 0.4, res); err != nil {
			t.Fatalf("overlap=%v: %v", ov, err)
		}
	}
}

// TestParallelDenseSingleTile pins the degenerate-input fallback: a
// dense blob occupying one ε-cell cannot be partitioned, so the
// parallel dispatch must decline and the sequential path must still
// answer — identically to a forced-sequential run.
func TestParallelDenseSingleTile(t *testing.T) {
	n := 2000
	pts := make([]geom.Point, n)
	r := rand.New(rand.NewSource(13))
	for i := range pts {
		pts[i] = geom.Point{r.Float64() * 0.1, r.Float64() * 0.1}
	}
	base := Options{Metric: geom.L2, Eps: 1, Overlap: JoinAny, Algorithm: GridIndex, Seed: 3}
	seqOpt := base
	seqOpt.Parallelism = 1
	seq, err := SGBAll(pts, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	parOpt := base
	parOpt.Parallelism = 4
	parOpt.Stats = &Stats{}
	got, err := SGBAll(pts, parOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Groups, seq.Groups) {
		t.Fatal("single-tile fallback grouping differs from sequential")
	}
	if parOpt.Stats.ArbitrateNanos != 0 {
		t.Fatal("a declined split must not record parallel phase timings")
	}
}

// TestParallelAllStress is the conflict-heavy randomized stress suite
// the CI race job runs (SGB_STRESS=1, -race): clustered inputs tuned
// so most points face multi-candidate arbitration and overlap
// processing, at 8+ workers, deep-equal against the sequential run
// including eliminated rows and PRNG-sensitive member order. Without
// SGB_STRESS a single quick round runs so the suite never goes fully
// unexercised.
func TestParallelAllStress(t *testing.T) {
	rounds := 1
	if os.Getenv("SGB_STRESS") != "" {
		rounds = 12
	}
	r := rand.New(rand.NewSource(59))
	for round := 0; round < rounds; round++ {
		d := 2 + round%2
		// Clustered blobs two ε apart with dense cores: intra-cluster
		// points are mutual candidates of several groups, cluster rims
		// overlap neighboring groups — the arbitration-heavy regime.
		nClusters := 6 + r.Intn(6)
		eps := 0.3 + r.Float64()*0.2
		var pts []geom.Point
		for c := 0; c < nClusters; c++ {
			center := make(geom.Point, d)
			for j := range center {
				center[j] = r.Float64() * 6
			}
			for i, m := 0, 40+r.Intn(120); i < m; i++ {
				p := make(geom.Point, d)
				for j := range p {
					p[j] = center[j] + (r.Float64()-0.5)*3*eps
				}
				pts = append(pts, p)
			}
		}
		seed := r.Int63()
		for _, ov := range []Overlap{JoinAny, Eliminate, FormNewGroup} {
			base := Options{Metric: geom.L2, Eps: eps, Overlap: ov, Algorithm: GridIndex, Seed: seed}
			seqOpt := base
			seqOpt.Parallelism = 1
			seq, err := SGBAll(pts, seqOpt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{8, 13} {
				parOpt := base
				parOpt.Parallelism = workers
				got, err := SGBAll(pts, parOpt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Groups, seq.Groups) {
					t.Fatalf("round=%d overlap=%v workers=%d n=%d eps=%.3f seed=%d: groups differ (%d vs %d)",
						round, ov, workers, len(pts), eps, seed, len(got.Groups), len(seq.Groups))
				}
				if !reflect.DeepEqual(got.Eliminated, seq.Eliminated) {
					t.Fatalf("round=%d overlap=%v workers=%d: eliminated rows differ", round, ov, workers)
				}
			}
		}
	}
}

func TestValidateParallelism(t *testing.T) {
	base := Options{Metric: geom.L2, Eps: 1}
	for _, p := range []int{0, 1, 8} {
		opt := base
		opt.Parallelism = p
		if err := opt.Validate(); err != nil {
			t.Fatalf("Parallelism=%d should validate: %v", p, err)
		}
	}
	opt := base
	opt.Parallelism = -1
	if err := opt.Validate(); err == nil {
		t.Fatal("Parallelism=-1 must be rejected")
	}
}

// TestParallelismAutoThreshold verifies the auto setting stays
// sequential below the input-size threshold and for explicitly
// selected comparison strategies — and that explicit worker counts
// always engage. (There is no dimensionality cap anymore: the hashed
// cell keys let auto parallelism engage at every d.)
func TestParallelismAutoThreshold(t *testing.T) {
	opt := Options{Metric: geom.L2, Eps: 1, Algorithm: GridIndex}
	if w := opt.workers(parallelThreshold - 1); w != 1 {
		t.Fatalf("auto below threshold: got %d workers, want 1", w)
	}
	for _, alg := range []Algorithm{AllPairs, BoundsCheck, OnTheFlyIndex} {
		o := opt
		o.Algorithm = alg
		if w := o.workers(1 << 20); w != 1 {
			t.Fatalf("auto must not override explicit %v: got %d workers", alg, w)
		}
	}
	opt.Parallelism = 2
	if w := opt.workers(100); w != 2 {
		t.Fatalf("explicit parallelism on small input: got %d workers, want 2", w)
	}
	opt.Algorithm = AllPairs
	if w := opt.workers(100); w != 2 {
		t.Fatalf("explicit parallelism must engage for any algorithm, got %d", w)
	}
	opt.Parallelism = 1
	opt.Algorithm = GridIndex
	if w := opt.workers(1 << 20); w != 1 {
		t.Fatalf("Parallelism=1 must force sequential, got %d", w)
	}
}

// TestParallelPhaseTimings pins the per-phase accounting of the
// parallel SGB-All pipeline: a parallel run records wall-clock in
// every phase, a sequential run records none, and merging worker
// stats folds the nanos.
func TestParallelPhaseTimings(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	pts := randTestPoints(r, 500, 2, 6)
	st := &Stats{}
	_, err := SGBAll(pts, Options{Metric: geom.L2, Eps: 0.4, Overlap: JoinAny,
		Algorithm: GridIndex, Parallelism: 3, Seed: 1, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]int64{
		"partition": st.PartitionNanos,
		"connect":   st.ConnectNanos,
		"arbitrate": st.ArbitrateNanos,
		"merge":     st.MergeNanos,
	} {
		if v <= 0 {
			t.Fatalf("parallel run recorded no %s time", name)
		}
	}
	seqStats := &Stats{}
	_, err = SGBAll(pts, Options{Metric: geom.L2, Eps: 0.4, Overlap: JoinAny,
		Algorithm: GridIndex, Parallelism: 1, Seed: 1, Stats: seqStats})
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.PartitionNanos != 0 || seqStats.ArbitrateNanos != 0 {
		t.Fatal("sequential run must not record parallel phase timings")
	}
	var merged Stats
	merged.merge(st)
	merged.merge(st)
	if merged.ConnectNanos != 2*st.ConnectNanos {
		t.Fatal("Stats.merge must fold phase nanos")
	}
}
