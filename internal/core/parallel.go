package core

import (
	"sync"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
	"github.com/sgb-db/sgb/internal/partition"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// This file is the parallel arm of the evaluation pipeline:
//
//	partition  — stripe the input into ε-aligned slabs (internal/partition)
//	evaluate   — per-shard SGB-Any runs on worker goroutines, each into
//	             a private Union-Find over the shard's sub-PointSet
//	boundary   — per-cut band probes emitting cross-shard within-ε
//	             edges, also on workers
//	merge      — a single-threaded Union-Find reduction folding shard
//	             partitions and boundary edges into the global forest
//
// SGB-Any's connected-component semantics are order-independent, so
// the sharded evaluation is exact: every ε-edge of the similarity
// graph is either intra-shard (found by the shard-local run) or spans
// one cut between adjacent slabs (found by the boundary probe).

// sgbAnyParallel runs the sharded SGB-Any pipeline with the given
// worker count. It reports false when the input cannot be split into
// at least two ε-aligned slabs (the caller then evaluates
// sequentially).
func sgbAnyParallel(ps *geom.PointSet, opt Options, uf *unionfind.UF, workers int) bool {
	plan := partition.Split(ps, opt.Eps, workers)
	if plan == nil {
		return false
	}

	type shardResult struct {
		uf    *unionfind.UF
		stats Stats
	}
	shardRes := make([]shardResult, len(plan.Shards))
	boundEdges := make([][]unionfind.Edge, len(plan.Bounds))
	boundStats := make([]Stats, len(plan.Bounds))

	// Evaluate and boundary stages share the worker pool: both are
	// read-only over the input and write only worker-private state.
	var wg sync.WaitGroup
	for si := range plan.Shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sh := &plan.Shards[si]
			local := opt
			local.Stats = &shardRes[si].stats
			shardRes[si].uf = unionfind.New(sh.Points.Len())
			sgbAnyLocal(sh.Points, local, shardRes[si].uf)
		}(si)
	}
	for bi := range plan.Bounds {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			boundEdges[bi] = boundaryEdges(ps, opt, plan.Bounds[bi], &boundStats[bi])
		}(bi)
	}
	wg.Wait()

	// Merge: fold shard partitions and boundary edges into the shared
	// forest. Union-Find merging is order-independent, so the final
	// components are identical to a sequential run.
	for si := range plan.Shards {
		uf.Absorb(shardRes[si].uf, plan.Shards[si].Global)
		opt.Stats.merge(&shardRes[si].stats)
	}
	for bi := range plan.Bounds {
		opt.Stats.addMerge(int64(uf.UnionEdges(boundEdges[bi])))
		opt.Stats.merge(&boundStats[bi])
	}
	return true
}

// sgbAnyLocal runs one SGB-Any evaluation over a (sub-)PointSet into
// uf — the shard-local evaluate stage, shared with the sequential path
// in sgbAnySet. It drives the same resumable anyIndex step as the
// incremental evaluator, over the whole input at once.
func sgbAnyLocal(ps *geom.PointSet, opt Options, uf *unionfind.UF) {
	ix := newAnyIndex(ps.Dims(), ps.Len(), opt)
	for i := 0; i < ps.Len(); i++ {
		ix.step(ps, i, opt, uf)
	}
}

// boundaryEdges emits the within-ε pairs crossing one cut: left-band
// points are indexed in an ε-grid (the hashed-key table supports any
// dimensionality), right-band points probe it. Bands hold only the
// points of the two cells touching the cut, so this is a sliver of the
// input.
func boundaryEdges(ps *geom.PointSet, opt Options, b partition.Boundary, stats *Stats) []unionfind.Edge {
	if len(b.Left) == 0 || len(b.Right) == 0 {
		return nil
	}
	metric, eps := opt.Metric, opt.Eps
	var edges []unionfind.Edge
	tab := grid.NewCap(ps.Dims(), eps, len(b.Left))
	for _, l := range b.Left {
		tab.AddPoint(ps.At(int(l)), l)
	}
	var cur grid.Cursor
	var buf []int32
	for _, r := range b.Right {
		p := ps.At(int(r))
		stats.addProbe(1)
		buf = tab.CollectBox(&cur, p, eps, buf[:0])
		for _, l := range buf {
			stats.addDist(1)
			if metric.Within(p, ps.At(int(l)), eps) {
				edges = append(edges, unionfind.Edge{A: r, B: l})
			}
		}
	}
	return edges
}
