package core

import (
	"sync"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
	"github.com/sgb-db/sgb/internal/partition"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// This file is the parallel arm of the SGB-Any pipeline (SGB-All's
// parallel pipeline lives in parallelall.go and shares the frontier
// machinery below):
//
//	partition — cut the input into multi-axis ε-tiles (internal/partition)
//	evaluate  — per-tile SGB-Any runs on worker goroutines, each into
//	            a private Union-Find over the tile's sub-PointSet
//	frontier  — probes over the frontier band emitting cross-tile
//	            within-ε edges, chunked across workers against one
//	            bulk-loaded read-only ε-grid
//	merge     — a single-threaded Union-Find reduction folding tile
//	            partitions and frontier edges into the global forest
//
// SGB-Any's connected-component semantics are order-independent, so
// the tiled evaluation is exact: every ε-edge of the similarity graph
// is either intra-tile (found by the tile-local run) or has both
// endpoints in the frontier (found by the frontier probe) — the
// partition invariant proved in internal/partition.
//
// sgbAnyParallel runs the tiled SGB-Any pipeline with the given worker
// count. It reports false when the input cannot be split into at least
// two ε-tiles (the caller then evaluates sequentially).
func sgbAnyParallel(ps *geom.PointSet, opt Options, uf *unionfind.UF, workers int) bool {
	plan := partition.Split(ps, opt.Eps, workers)
	if plan == nil {
		return false
	}

	type tileResult struct {
		uf    *unionfind.UF
		stats Stats
	}
	tileRes := make([]tileResult, len(plan.Tiles))
	frontEdges := make([][]unionfind.Edge, workers)
	frontStats := make([]Stats, workers)
	ftab := frontierGrid(ps, opt.Eps, plan.Frontier)

	// Evaluate and frontier stages share the worker pool: both are
	// read-only over the input and write only worker-private state.
	var wg sync.WaitGroup
	for ti := range plan.Tiles {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tile := &plan.Tiles[ti]
			local := opt
			local.Stats = &tileRes[ti].stats
			tileRes[ti].uf = unionfind.New(tile.Points.Len())
			sgbAnyLocal(tile.Points, local, tileRes[ti].uf)
		}(ti)
	}
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			lo, hi := chunkRange(len(plan.Frontier), workers, wi)
			frontEdges[wi] = frontierEdges(ps, opt, plan, ftab, lo, hi, &frontStats[wi])
		}(wi)
	}
	wg.Wait()

	// Merge: fold tile partitions and frontier edges into the shared
	// forest. Union-Find merging is order-independent, so the final
	// components are identical to a sequential run.
	for ti := range plan.Tiles {
		uf.Absorb(tileRes[ti].uf, plan.Tiles[ti].Global)
		opt.Stats.merge(&tileRes[ti].stats)
	}
	for wi := range frontEdges {
		opt.Stats.addMerge(int64(uf.UnionEdges(frontEdges[wi])))
		opt.Stats.merge(&frontStats[wi])
	}
	return true
}

// sgbAnyLocal runs one SGB-Any evaluation over a (sub-)PointSet into
// uf — the tile-local evaluate stage, shared with the sequential path
// in sgbAnySet. It drives the same resumable anyIndex step as the
// incremental evaluator, over the whole input at once.
func sgbAnyLocal(ps *geom.PointSet, opt Options, uf *unionfind.UF) {
	ix := newAnyIndex(ps.Dims(), ps.Len(), opt)
	for i := 0; i < ps.Len(); i++ {
		ix.step(ps, i, opt, uf)
	}
}

// frontierGrid bulk-loads the plan's frontier points into an ε-grid
// (ids are positions into the frontier list; the hashed-key table
// supports any dimensionality, and the Morton-major slab layout keeps
// the workers' probe chains prefetch-friendly). The table is read-only
// afterwards: workers probe it concurrently with private Cursors.
func frontierGrid(ps *geom.PointSet, eps float64, frontier []int32) *grid.Table {
	fps := ps.Gather(frontier)
	return grid.BulkLoad(fps, eps)
}

// frontierEdges emits the within-ε pairs crossing tile boundaries for
// the frontier positions in [lo, hi): every such pair has both
// endpoints in the frontier (the partition invariant), each point
// probes the shared frontier grid for its band neighbors, and a pair
// is kept once — by its higher-id endpoint — when the endpoints land
// in different tiles and pass the exact distance test.
func frontierEdges(ps *geom.PointSet, opt Options, plan *partition.Plan, ftab *grid.Table, lo, hi int, stats *Stats) []unionfind.Edge {
	if lo >= hi {
		return nil
	}
	metric, eps := opt.Metric, opt.Eps
	var edges []unionfind.Edge
	var cur grid.Cursor
	var buf []int32
	for fi := lo; fi < hi; fi++ {
		gi := plan.Frontier[fi]
		p := ps.At(int(gi))
		stats.addProbe(1)
		buf = ftab.CollectBox(&cur, p, eps, buf[:0])
		for _, fj := range buf {
			gj := plan.Frontier[fj]
			if gj >= gi || plan.TileOf[gj] == plan.TileOf[gi] {
				continue
			}
			stats.addDist(1)
			if metric.Within(p, ps.At(int(gj)), eps) {
				edges = append(edges, unionfind.Edge{A: gi, B: gj})
			}
		}
	}
	return edges
}

// chunkRange splits n items into k near-equal contiguous chunks and
// returns the half-open bounds of chunk i.
func chunkRange(n, k, i int) (int, int) {
	return i * n / k, (i + 1) * n / k
}
