package core

import (
	"fmt"
	"sort"

	"github.com/sgb-db/sgb/internal/geom"
)

// The helpers in this file are reference implementations and invariant
// checkers. The test suite and the experiment harness use them to
// verify that the optimized strategies compute semantically valid
// groupings (and, for SGB-Any, the exact connected components).

// CheckCliques verifies the SGB-All output invariants over points:
// every group is a clique under (metric, eps), no input index appears
// twice across groups∪eliminated, and every input index is accounted
// for. It returns a descriptive error on the first violation.
func CheckCliques(points []geom.Point, metric geom.Metric, eps float64, res *Result) error {
	seen := make(map[int]string, len(points))
	for gi, g := range res.Groups {
		if len(g.Members) == 0 {
			return fmt.Errorf("group %d is empty", gi)
		}
		for _, m := range g.Members {
			if m < 0 || m >= len(points) {
				return fmt.Errorf("group %d references invalid index %d", gi, m)
			}
			if prev, dup := seen[m]; dup {
				return fmt.Errorf("index %d appears in group %d and %s", m, gi, prev)
			}
			seen[m] = fmt.Sprintf("group %d", gi)
		}
		for i := 0; i < len(g.Members); i++ {
			for j := i + 1; j < len(g.Members); j++ {
				a, b := g.Members[i], g.Members[j]
				if !metric.Within(points[a], points[b], eps) {
					return fmt.Errorf("group %d is not a clique: δ(p%d,p%d)=%.6g > ε=%g",
						gi, a, b, metric.Dist(points[a], points[b]), eps)
				}
			}
		}
	}
	for _, m := range res.Eliminated {
		if prev, dup := seen[m]; dup {
			return fmt.Errorf("index %d appears eliminated and in %s", m, prev)
		}
		seen[m] = "eliminated"
	}
	if len(seen) != len(points) {
		return fmt.Errorf("accounted for %d of %d input points", len(seen), len(points))
	}
	return nil
}

// ConnectedComponents computes the exact connected components of the
// ε-similarity graph by brute force (O(n²)); SGB-Any must produce this
// partition regardless of input order or algorithm. Components are
// ordered by smallest member, members ascending.
func ConnectedComponents(points []geom.Point, metric geom.Metric, eps float64) []Group {
	n := len(points)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if metric.Within(points[i], points[j], eps) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}
	slot := make(map[int]int)
	var groups []Group
	for i := 0; i < n; i++ {
		r := find(i)
		s, ok := slot[r]
		if !ok {
			s = len(groups)
			slot[r] = s
			groups = append(groups, Group{})
		}
		groups[s].Members = append(groups[s].Members, i)
	}
	return groups
}

// SameGrouping reports whether two group lists describe the same
// partition of the input (ignoring group order and member order).
func SameGrouping(a, b []Group) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(g Group) string {
		ms := append([]int(nil), g.Members...)
		sort.Ints(ms)
		return fmt.Sprint(ms)
	}
	counts := make(map[string]int, len(a))
	for _, g := range a {
		counts[key(g)]++
	}
	for _, g := range b {
		counts[key(g)]--
		if counts[key(g)] < 0 {
			return false
		}
	}
	return true
}
