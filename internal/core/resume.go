package core

import (
	"errors"
	"fmt"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// This file holds the resumable arm of the operators: evaluation state
// that survives between calls so that new points can be appended to an
// existing grouping without recomputing it. The one-shot entry points
// (SGBAllSet / SGBAnySet) and the evaluators below share every
// per-point step — processOne for SGB-All, anyIndex.step for SGB-Any —
// so an incremental run over batches b1, b2, ... produces exactly the
// grouping of a one-shot run over their concatenation. (For SGB-All
// the retained state is bit-identical after the same point sequence;
// for SGB-Any under the grid strategy the Morton preprocessing sorts
// per batch rather than globally, so internal processing order may
// differ from one-shot — harmless, as components are order-independent
// and both sides report input-order ids in canonical order.)
//
// The companion work on order-independent SGB semantics (PAPERS.md:
// "On Order-independent Semantics of the Similarity Group-By
// Relational Database Operator") is what makes the SGB-Any half
// trivially sound: connected components are independent of arrival
// order, so the live ε-grid plus Union-Find just keeps absorbing
// points. SGB-All is order-SENSITIVE by design, but its processing
// order is exactly arrival order, which appends extend — the only
// subtlety is FORM-NEW-GROUP's end-of-input recursion, finalized on a
// throwaway clone so the retained main-pass state stays appendable.

// AllEvaluator is resumable SGB-All evaluation state: a retained
// sgbAllState (groups, finder structures, arbitration PRNG) that
// Append extends batch by batch. Appends evaluate sequentially with
// the strategy selected by the options (Options.Parallelism is
// ignored; batches are expected to be small relative to the retained
// set, which is where incremental maintenance pays off). Remove
// (decremental.go) deletes points by replaying the arbitration over
// the survivors — SGB-All is order- and presence-sensitive, so that
// replay is the only maintenance that stays bit-identical to a
// from-scratch run.
type AllEvaluator struct {
	st *sgbAllState

	// live holds the stored indices of the surviving points in arrival
	// order; a point's public id is its index in live. nil means the
	// identity over [0, st.points.Len()) — nothing removed yet.
	// (SGB-All never Morton-reorders, so stored order is arrival
	// order.)
	live []int32
	// dead counts tombstoned stored indices; when they outnumber the
	// live points, Remove compacts the point log before replaying.
	dead int
}

// NewAllEvaluator returns an empty resumable SGB-All evaluation over
// dims-dimensional points.
func NewAllEvaluator(dims int, opt Options) (*AllEvaluator, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if dims < 1 {
		return nil, errors.New("core: evaluator dimensionality must be >= 1")
	}
	st := &sgbAllState{
		points: geom.NewPointSet(dims),
		opt:    opt,
		dims:   dims,
		rand:   newRNG(opt.Seed),
	}
	st.finder = newFinder(st)
	return &AllEvaluator{st: st}, nil
}

// Len returns the number of live points (appended and not removed).
func (e *AllEvaluator) Len() int {
	if e.live != nil {
		return len(e.live)
	}
	return e.st.points.Len()
}

// LiveAt returns the point with live id i (the id space Result and
// Remove use). The view is read-only and valid until the next
// mutation.
func (e *AllEvaluator) LiveAt(i int) geom.Point {
	if e.live != nil {
		return e.st.points.At(int(e.live[i]))
	}
	return e.st.points.At(i)
}

// materializeLive switches the identity mapping to an explicit one at
// the first removal.
func (e *AllEvaluator) materializeLive() {
	if e.live != nil {
		return
	}
	e.live = make([]int32, e.st.points.Len(), e.st.points.Len()+16)
	for i := range e.live {
		e.live[i] = int32(i)
	}
}

// Append absorbs a batch of points (copied into the evaluator's own
// storage) and advances the grouping exactly as a one-shot run would
// have, had the batch been the next stretch of its input. Under
// FORM-NEW-GROUP the points deferred into S′ accumulate across
// appends and are only resolved by Result, mirroring the one-shot
// operator's end-of-input recursion.
func (e *AllEvaluator) Append(ps *geom.PointSet) error {
	if ps == nil || ps.Len() == 0 {
		return nil
	}
	st := e.st
	if ps.Dims() != st.dims {
		return fmt.Errorf("core: appended points have dimension %d, want %d", ps.Dims(), st.dims)
	}
	if err := ps.CheckFinite(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	base := st.points.Len()
	st.points.AppendSet(ps)
	n := st.points.Len()
	for i := base; i < n; i++ {
		st.pointGroup = append(st.pointGroup, -1)
		if e.live != nil {
			e.live = append(e.live, int32(i))
			// A point appended after removals draws at its live rank,
			// exactly as a from-scratch run over the survivors plus this
			// batch would key it.
			st.rank = append(st.rank, int32(len(e.live)-1))
		}
	}
	for pi := base; pi < n; pi++ {
		st.processOne(pi)
	}
	return nil
}

// Result materializes the current grouping, equivalent to a one-shot
// evaluation over every live point in arrival order (identical groups
// and member order; identical PRNG draws under JOIN-ANY for equal
// seeds). Under FORM-NEW-GROUP the deferred set is resolved on a clone
// of the retained state, so calling Result neither perturbs future
// appends nor later Results — but it does replay that recursion each
// call (and re-counts it into Options.Stats, when attached). Member
// and Eliminated ids are live ids — compact indices over the surviving
// points in arrival order, exactly as a from-scratch run over them
// would number its input. The returned result owns its slices.
func (e *AllEvaluator) Result() *Result {
	st := e.st
	if st.opt.Overlap == FormNewGroup && len(st.deferred) > 0 {
		st = st.finalizeClone()
		next := st.deferred
		st.deferred = nil
		st.run(next, nil, 1)
	}
	res := materializeAll(st, true)
	if e.live != nil {
		// Stored indices → live ids. Only live indices can appear: the
		// post-removal replay processed nothing else.
		idx := make([]int32, e.st.points.Len())
		for k, pos := range e.live {
			idx[pos] = int32(k)
		}
		for _, g := range res.Groups {
			for mi, m := range g.Members {
				g.Members[mi] = int(idx[m])
			}
		}
		for i, m := range res.Eliminated {
			res.Eliminated[i] = int(idx[m])
		}
	}
	return res
}

// finalizeClone snapshots the main-pass state deeply enough that the
// FORM-NEW-GROUP recursion can run to completion on the copy without
// touching the retained originals: group structs are copied (the
// recursion's stageReset clears their index-registration flags, and
// frozen groups are otherwise immutable at depth ≥ 1), bookkeeping
// slices are copied (the recursion appends groups and placements),
// and the finder is rebuilt fresh (equivalent to the stageReset the
// recursion performs first thing). Points are shared read-only.
func (st *sgbAllState) finalizeClone() *sgbAllState {
	cl := &sgbAllState{
		points:     st.points,
		opt:        st.opt,
		dims:       st.dims,
		rand:       &rng{state: st.rand.state},
		groups:     make([]*group, len(st.groups)),
		stageFloor: st.stageFloor,
		eliminated: append([]int(nil), st.eliminated...),
		deferred:   append([]int(nil), st.deferred...),
		pointGroup: append([]int32(nil), st.pointGroup...),
		rank:       st.rank, // read-only: the recursion only draws through it
		rects:      append([]float64(nil), st.rects...),
	}
	for i, g := range st.groups {
		if g == nil {
			continue
		}
		g2 := *g
		// The grid registration range must not share backing with the
		// retained group (the copy above is shallow; these were value
		// arrays before the slice-keyed grid).
		g2.gridLo = append([]int64(nil), g.gridLo...)
		g2.gridHi = append([]int64(nil), g.gridHi...)
		cl.groups[i] = &g2
		// Rebind the copy's rectangle views into the clone's own rect
		// store, so the recursion's appends cannot alias the retained
		// rows.
		cl.bindRectRow(cl.groups[i])
	}
	cl.finder = newFinder(cl)
	return cl
}

// materializeAll extracts the output groups of an SGB-All state in
// creation order. With copyOut the result owns every slice (the
// resumable path must not alias live state the next Append mutates);
// the one-shot path hands over the state's slices directly.
func materializeAll(st *sgbAllState, copyOut bool) *Result {
	res := &Result{}
	for _, g := range st.groups {
		if g == nil || len(g.members) == 0 {
			continue
		}
		members := g.members
		if copyOut {
			members = append([]int(nil), members...)
		}
		res.Groups = append(res.Groups, Group{Members: members})
	}
	if copyOut {
		res.Eliminated = append([]int(nil), st.eliminated...)
	} else {
		res.Eliminated = st.eliminated
	}
	return res
}

// AnyEvaluator is resumable SGB-Any evaluation state: the live
// Points_IX (ε-grid, R-tree, or nothing for All-Pairs) plus the
// Union-Find forest, both of which support appends naturally. Because
// connected components are order-independent, the incremental result
// is exactly the one-shot result over the concatenated input —
// per-append cost is proportional to the batch's probe work, not the
// retained set size. Remove (decremental.go) deletes points again:
// components can only split, never merge, when a point vanishes, so a
// deletion reclusters just the victims' components.
//
// Under the grid strategy each appended batch is Morton (Z-order)
// preprocessed like the one-shot path: the batch's points are absorbed
// in Z-order of their ε-cells, and live remembers the arrival order of
// the stored positions so Result reports input-order ids. Reordering
// within a batch is sound for the same reason appending is: components
// do not depend on arrival order.
type AnyEvaluator struct {
	opt    Options
	points *geom.PointSet // append-only log; removals tombstone via alive
	uf     *unionfind.UF  // forest over stored positions (incl. dead)
	ix     anyIndex

	// live holds the stored positions of the surviving points in
	// arrival order; a point's public id is its index in live (so ids
	// compact after removals exactly as a from-scratch evaluation over
	// the survivors would number them). nil means the identity over
	// [0, points.Len()): every batch arrived in order and nothing was
	// removed.
	live []int32
	// alive flags stored positions (nil = everything alive). The
	// All-Pairs strategy reads it through a shared pointer, since it has
	// no index to unregister dead points from.
	alive []bool
	// dead counts tombstoned stored positions; when they outnumber the
	// live points, compact rebuilds the evaluator over the survivors so
	// steady-state windowed workloads hold memory proportional to the
	// window, not the history.
	dead int

	// Reusable Remove scratch: mark is an epoch-stamped visited array
	// over stored positions (the ε-graph BFS), queue its frontier, nbuf
	// the per-node neighbor buffer.
	mark      []uint32
	markEpoch uint32
	queue     []int32
	nbuf      []int32
}

// NewAnyEvaluator returns an empty resumable SGB-Any evaluation over
// dims-dimensional points.
func NewAnyEvaluator(dims int, opt Options) (*AnyEvaluator, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if dims < 1 {
		return nil, errors.New("core: evaluator dimensionality must be >= 1")
	}
	if opt.Algorithm == BoundsCheck {
		return nil, ErrBoundsCheckAny
	}
	e := &AnyEvaluator{
		opt:    opt,
		points: geom.NewPointSet(dims),
		uf:     &unionfind.UF{},
	}
	e.ix = e.newIndex(dims, 0)
	return e, nil
}

// newIndex instantiates the Points_IX strategy, wiring the All-Pairs
// variant to the evaluator's liveness bitmap (the other strategies
// unregister deleted points from their index instead).
func (e *AnyEvaluator) newIndex(dims, sizeHint int) anyIndex {
	ix := newAnyIndex(dims, sizeHint, e.opt)
	if _, ok := ix.(anyAllPairs); ok {
		ix = anyAllPairs{alive: &e.alive}
	}
	return ix
}

// Len returns the number of live points (appended and not removed).
func (e *AnyEvaluator) Len() int { return e.points.Len() - e.dead }

// LiveAt returns the point with live id i (the id space Result and
// Remove use). The view is read-only and valid until the next
// mutation.
func (e *AnyEvaluator) LiveAt(i int) geom.Point {
	if e.live != nil {
		return e.points.At(int(e.live[i]))
	}
	return e.points.At(i)
}

// materializeLive switches the identity mapping to an explicit one —
// the first Morton-reordered batch or the first removal needs it.
func (e *AnyEvaluator) materializeLive() {
	if e.live != nil {
		return
	}
	e.live = make([]int32, e.points.Len(), e.points.Len()+16)
	for i := range e.live {
		e.live[i] = int32(i)
	}
}

// Append absorbs a batch of points (copied into the evaluator's own
// storage): each point probes the live index for its within-ε
// neighbors, merges their components, and registers itself — the same
// step the one-shot evaluation runs.
func (e *AnyEvaluator) Append(ps *geom.PointSet) error {
	if ps == nil || ps.Len() == 0 {
		return nil
	}
	if ps.Dims() != e.points.Dims() {
		return fmt.Errorf("core: appended points have dimension %d, want %d", ps.Dims(), e.points.Dims())
	}
	if err := ps.CheckFinite(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	base := e.points.Len()
	batch := ps
	if bperm := mortonPermFor(ps, e.opt); bperm != nil {
		batch = ps.Gather(bperm)
		e.materializeLive()
		// Arrival order of the reordered batch: position base+j holds
		// the batch point bperm[j], so arrival offset o lives at the
		// position the inverse permutation names.
		inv := make([]int32, len(bperm))
		for j, orig := range bperm {
			inv[orig] = int32(j)
		}
		for _, j := range inv {
			e.live = append(e.live, int32(base)+j)
		}
	} else if e.live != nil {
		for k := 0; k < ps.Len(); k++ {
			e.live = append(e.live, int32(base+k))
		}
	}
	if e.alive != nil {
		for k := 0; k < ps.Len(); k++ {
			e.alive = append(e.alive, true)
		}
	}
	e.points.AppendSet(batch)
	for i := base; i < e.points.Len(); i++ {
		e.uf.Add()
		e.ix.step(e.points, i, e.opt, e.uf)
	}
	return nil
}

// Result materializes the current connected components in the same
// deterministic order as the one-shot operator (groups by smallest
// member index, members ascending, ids in original arrival order over
// the live points — the Morton reordering of grid-strategy batches and
// any removals are invisible here). The returned result owns its
// slices; calling Result repeatedly or interleaving it with Append and
// Remove is safe.
func (e *AnyEvaluator) Result() *Result {
	if e.live == nil {
		return &Result{Groups: groupsFromUF(e.uf, e.points.Len())}
	}
	return &Result{Groups: groupsFromUFLive(e.uf, e.live)}
}
