package core

import "github.com/sgb-db/sgb/internal/geom"

// refine decides whether a point that passed a group's ε-All rectangle
// filter truly satisfies the distance-to-all predicate.
//
// Under L∞ the rectangle test is exact (Definition 5), so refine is a
// no-op returning true.
//
// Under L2 the rectangle admits false positives — points inside the
// ε-All rectangle but outside some member's ε-circle (the grey area of
// Figure 7b). In two dimensions the Convex Hull Test of Procedure 6
// resolves them:
//
//   - a point inside the group's convex hull is within diam(g) ≤ ε of
//     every member, hence a true candidate;
//   - for a point outside the hull, the farthest member is a hull
//     vertex, so comparing against the farthest hull vertex decides.
//
// In dimensions other than two (the paper defers d > 3 to future work)
// we refine with an exact member scan, which preserves correctness at
// the cost of the filter's constant-time guarantee.
func (st *sgbAllState) refine(pi int, g *group) bool {
	if st.opt.Metric == geom.LInf {
		return true
	}
	if st.dims != 2 || st.opt.NoHullTest || len(g.members) <= smallGroupScan {
		return st.isCandidate(pi, g)
	}
	st.opt.Stats.addHull(1)
	hull := st.hullOf(g)
	p := st.points.At(pi)
	if hull.Contains(p) {
		return true
	}
	_, d := hull.Farthest(p, st.opt.Metric)
	st.opt.Stats.addDist(int64(hull.Len()))
	return d <= st.opt.Eps
}

// smallGroupScan is the membership count below which the L2 refinement
// scans members directly instead of consulting the hull: for tiny
// groups the exact scan is cheaper than (re)building and querying the
// hull, and it avoids the rebuild's allocations entirely. Results are
// identical either way — both paths are exact.
const smallGroupScan = 8
