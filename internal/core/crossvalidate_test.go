package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

// randomPointsDim draws n points uniformly from [0,span]^d.
func randomPointsDim(r *rand.Rand, n, d int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

// sameMembers reports whether two results are identical member-for-
// member: the same groups in the same creation order with members in
// the same join order, and the same elimination sequence.
func sameMembers(a, b *Result) error {
	if len(a.Groups) != len(b.Groups) {
		return fmt.Errorf("group count %d vs %d", len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		if !equalIntSlices(a.Groups[i].Members, b.Groups[i].Members) {
			return fmt.Errorf("group %d members %v vs %v", i, a.Groups[i].Members, b.Groups[i].Members)
		}
	}
	if !equalIntSlices(a.Eliminated, b.Eliminated) {
		return fmt.Errorf("eliminated %v vs %v", a.Eliminated, b.Eliminated)
	}
	return nil
}

// TestGridCrossValidationAll checks GridIndex member-for-member
// against the AllPairs reference for SGB-All on randomized inputs
// across {L2, L∞} × {JOIN-ANY, ELIMINATE, FORM-NEW-GROUP} × d∈{1,2,3}.
// Equal seeds must yield byte-identical groupings: the grid finder
// normalizes candidate enumeration to group-creation order, so even
// the randomized JOIN-ANY arbitration coincides.
func TestGridCrossValidationAll(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 20; trial++ {
		for _, d := range []int{1, 2, 3} {
			n := 40 + r.Intn(160)
			var points []geom.Point
			if trial%2 == 0 {
				points = randomPointsDim(r, n, d, 8)
			} else {
				// Dense regime: heavy candidate/overlap traffic.
				points = randomPointsDim(r, n, d, 2.5)
			}
			eps := 0.15 + r.Float64()*1.2
			seed := int64(trial * 31)
			for _, m := range allMetrics {
				for _, ov := range allOverlaps {
					opt := Options{Metric: m, Eps: eps, Overlap: ov, Seed: seed}
					opt.Algorithm = AllPairs
					want, err := SGBAll(points, opt)
					if err != nil {
						t.Fatal(err)
					}
					opt.Algorithm = GridIndex
					got, err := SGBAll(points, opt)
					if err != nil {
						t.Fatal(err)
					}
					if err := sameMembers(want, got); err != nil {
						t.Fatalf("trial %d d=%d %v/%v eps=%.3f: GridIndex differs from AllPairs: %v",
							trial, d, m, ov, eps, err)
					}
					if err := CheckCliques(points, m, eps, got); err != nil {
						t.Fatalf("trial %d d=%d %v/%v: invalid grouping: %v", trial, d, m, ov, err)
					}
				}
			}
		}
	}
}

// TestGridCrossValidationAny checks SGB-Any under GridIndex against
// both the AllPairs operator and the brute-force connected components,
// across metrics and d∈{1,2,3}.
func TestGridCrossValidationAny(t *testing.T) {
	r := rand.New(rand.NewSource(4052))
	for trial := 0; trial < 20; trial++ {
		for _, d := range []int{1, 2, 3} {
			n := 40 + r.Intn(160)
			points := randomPointsDim(r, n, d, 6)
			eps := 0.15 + r.Float64()*0.9
			for _, m := range allMetrics {
				opt := Options{Metric: m, Eps: eps, Algorithm: AllPairs}
				want, err := SGBAny(points, opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.Algorithm = GridIndex
				got, err := SGBAny(points, opt)
				if err != nil {
					t.Fatal(err)
				}
				// groupsFromUF emits a canonical order, so the grid
				// result must be identical member-for-member, not just
				// the same partition.
				if err := sameMembers(want, got); err != nil {
					t.Fatalf("trial %d d=%d %v eps=%.3f: %v", trial, d, m, eps, err)
				}
				if !SameGrouping(got.Groups, ConnectedComponents(points, m, eps)) {
					t.Fatalf("trial %d d=%d %v: partition differs from brute force", trial, d, m)
				}
			}
		}
	}
}

// TestGridHighDimCrossValidation: the hashed-cell grid lifted the old
// d ≤ 4 cap, so the GridIndex strategy must agree with AllPairs
// member-for-member at d ∈ {5, 6, 8} — for SGB-All across every
// ON-OVERLAP semantics and metric, and for SGB-Any (where the Morton
// preprocessing and its output remap are in play) against both
// AllPairs and the brute-force connected components.
func TestGridHighDimCrossValidation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		for _, d := range []int{5, 6, 8} {
			n := 60 + r.Intn(120)
			// Span shrinks with d so the ε-balls keep finding neighbors
			// in high dimensions.
			points := randomPointsDim(r, n, d, 2.2)
			eps := 0.6 + r.Float64()*0.6
			seed := int64(trial*17 + d)
			for _, m := range allMetrics {
				for _, ov := range allOverlaps {
					opt := Options{Metric: m, Eps: eps, Overlap: ov, Seed: seed}
					opt.Algorithm = AllPairs
					want, err := SGBAll(points, opt)
					if err != nil {
						t.Fatal(err)
					}
					opt.Algorithm = GridIndex
					got, err := SGBAll(points, opt)
					if err != nil {
						t.Fatal(err)
					}
					if err := sameMembers(want, got); err != nil {
						t.Fatalf("trial %d d=%d %v/%v eps=%.3f: %v", trial, d, m, ov, eps, err)
					}
					if err := CheckCliques(points, m, eps, got); err != nil {
						t.Fatalf("trial %d d=%d %v/%v: invalid grouping: %v", trial, d, m, ov, err)
					}
				}
				optAny := Options{Metric: m, Eps: eps, Algorithm: AllPairs}
				wantAny, err := SGBAny(points, optAny)
				if err != nil {
					t.Fatal(err)
				}
				optAny.Algorithm = GridIndex
				gotAny, err := SGBAny(points, optAny)
				if err != nil {
					t.Fatal(err)
				}
				if err := sameMembers(wantAny, gotAny); err != nil {
					t.Fatalf("trial %d d=%d %v SGB-Any: %v", trial, d, m, err)
				}
				if !SameGrouping(gotAny.Groups, ConnectedComponents(points, m, eps)) {
					t.Fatalf("trial %d d=%d %v: partition differs from brute force", trial, d, m)
				}
			}
		}
	}
}

// TestAnyMortonRemap pins the Morton remap invariant on inputs large
// enough to engage the Z-order preprocessing (n >= mortonMinPoints):
// the grid result must be member-for-member identical — input-order
// ids, canonical group order — to the never-reordered AllPairs run.
func TestAnyMortonRemap(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, d := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 10; trial++ {
			n := mortonMinPoints + r.Intn(800)
			points := randomPointsDim(r, n, d, 7)
			eps := 0.3 + r.Float64()*0.7
			for _, m := range allMetrics {
				want, err := SGBAny(points, Options{Metric: m, Eps: eps, Algorithm: AllPairs})
				if err != nil {
					t.Fatal(err)
				}
				got, err := SGBAny(points, Options{Metric: m, Eps: eps, Algorithm: GridIndex, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				if err := sameMembers(want, got); err != nil {
					t.Fatalf("d=%d n=%d %v eps=%.3f: %v", d, n, m, eps, err)
				}
			}
		}
	}
}

// TestAnyEvaluatorMortonRemap drives the incremental SGB-Any evaluator
// with batches large enough to be Z-order reordered, interleaved with
// small (unreordered) batches, and demands the retained grouping match
// the one-shot evaluation over the concatenation after every append.
func TestAnyEvaluatorMortonRemap(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	opt := Options{Metric: geom.L2, Eps: 0.5, Algorithm: GridIndex}
	ev, err := NewAnyEvaluator(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	all := geom.NewPointSet(2)
	for _, batchN := range []int{5, 200, 3, 150, mortonMinPoints, 1, 400} {
		batch := geom.NewPointSetCap(2, batchN)
		for i := 0; i < batchN; i++ {
			p := batch.Extend()
			p[0], p[1] = r.Float64()*10, r.Float64()*10
		}
		if err := ev.Append(batch); err != nil {
			t.Fatal(err)
		}
		all.AppendSet(batch)
		want, err := SGBAnySet(all, Options{Metric: geom.L2, Eps: 0.5, Algorithm: AllPairs})
		if err != nil {
			t.Fatal(err)
		}
		if err := sameMembers(want, ev.Result()); err != nil {
			t.Fatalf("after %d points: %v", all.Len(), err)
		}
	}
}

// TestGridStatsCounters: the grid strategy reports one probe per input
// point and strictly fewer rectangle tests than the linear
// Bounds-Checking scan on clustered data.
func TestGridStatsCounters(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	points := clusteredPoints(r, 600, 12, 40, 0.3)
	grid := &Stats{}
	bounds := &Stats{}
	if _, err := SGBAll(points, Options{
		Metric: geom.LInf, Eps: 0.5, Overlap: JoinAny, Algorithm: GridIndex, Stats: grid,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := SGBAll(points, Options{
		Metric: geom.LInf, Eps: 0.5, Overlap: JoinAny, Algorithm: BoundsCheck, Stats: bounds,
	}); err != nil {
		t.Fatal(err)
	}
	if grid.IndexProbes != int64(len(points)) {
		t.Errorf("grid probes = %d, want %d", grid.IndexProbes, len(points))
	}
	if grid.RectTests >= bounds.RectTests {
		t.Errorf("grid rect tests %d should be below linear scan %d", grid.RectTests, bounds.RectTests)
	}
}
