package core

import (
	"math"

	"github.com/sgb-db/sgb/internal/convexhull"
	"github.com/sgb-db/sgb/internal/geom"
)

// group is the runtime state of one SGB-All group (the paper's
// AggHashEntry extension: a tuple store plus the ε-All bounding
// rectangle of Definition 5, plus the cached convex hull used by the L2
// refinement of Procedure 6).
type group struct {
	id      int
	members []int // input indices in join order

	// epsRect is the ε-All bounding rectangle R_{ε-All}: the
	// intersection of every member's ε-box. Under L∞ a point inside
	// epsRect is within ε of all members (exact test); under L2 the
	// rectangle is a conservative filter (Figure 7b) refined by the
	// convex-hull test. It is maintained in place (ShrinkToEpsBox), so
	// nothing else may alias its corner storage. Its corners are views
	// into the state's flat rect-row store (see sgbAllState.rects).
	epsRect geom.Rect

	// mbr is the minimum bounding rectangle of the members themselves,
	// used by the overlap-rectangle filter: a point can only be within
	// ε of some member if its ε-box intersects mbr. Because members of
	// a clique group are pairwise within ε, mbr ⊆ epsRect always holds.
	// Like epsRect, its corners view the flat rect-row store.
	mbr geom.Rect

	// indexedRect remembers the exact rectangle currently stored in
	// Groups_IX so delete-before-reinsert removes the right entry.
	indexedRect geom.Rect
	indexed     bool

	// gridLo/gridHi remember the cell range this group's ε-All
	// rectangle is currently registered under in the ε-grid (GridIndex
	// strategy), so registration updates remove exactly the old cells.
	// Allocated once at first registration and updated in place.
	gridLo, gridHi []int64
	gridOn         bool

	// hull caches the 2-D convex hull for the L2 refinement; it is
	// rebuilt lazily after membership changes.
	hull      *convexhull.Hull
	hullDirty bool
}

// sgbAllState carries the evolving group set plus the evaluation
// context shared by all SGB-All strategies.
type sgbAllState struct {
	points *geom.PointSet
	opt    Options
	dims   int

	groups []*group // live groups, in creation order (nil = deleted)
	finder finder   // strategy: populates candidate & overlap sets
	rand   *rng

	// rects is the flat structure-of-arrays store of the group probe
	// rectangles: group id g owns the row
	// rects[g*4d : (g+1)*4d] = [ε-All Min | ε-All Max | MBR Min | MBR Max].
	// Each group's epsRect and mbr corners are views into its row, so
	// the in-place maintenance (ShrinkToEpsBox, ExtendPoint) writes the
	// flat array directly, while the grid finder's filter step scans
	// rows by id without dereferencing group structs — the probe loop's
	// former cache-miss hot spot. Rows of removed groups are poisoned
	// with +Inf so no rectangle test can pass them.
	rects []float64

	// groupBlocks backs allocGroup: group structs pooled in fixed-size
	// blocks (stable addresses, one allocation per block).
	groupBlocks [][]group

	// stageFloor freezes groups created before the current
	// FORM-NEW-GROUP recursion stage: points of the deferred set S′
	// form new groups among themselves only (Example 1 puts the
	// overlapping point a5 into a fresh singleton group g3 even though
	// it is within ε of g1 and g2). Groups with id < stageFloor are
	// invisible to candidate and overlap detection.
	stageFloor int

	eliminated []int // points dropped by ELIMINATE
	deferred   []int // S′: points deferred by FORM-NEW-GROUP

	// pointGroup maps each placed input index to the id of the group
	// currently holding it (-1 while unplaced, eliminated, or
	// deferred). Maintenance is one store per placement, so the
	// sequential strategies pay nothing measurable for it; the parallel
	// pipeline's worker states share one array with component-disjoint
	// writes.
	pointGroup []int32

	// rank maps stored point index → live rank (the point's position
	// among the surviving points in arrival order), the key of its
	// JOIN-ANY draw. nil means the identity: stored order IS live order,
	// which holds for every one-shot run and for evaluators that never
	// removed a point. The decremental replay populates it so a
	// replayed survivor draws with the same key a from-scratch run over
	// the survivors would use.
	rank []int32

	// trace, when non-nil, records the provenance keys the parallel
	// SGB-All merge sorts by (see parallelall.go). Sequential runs leave
	// it nil.
	trace *allTrace

	hullPts     []geom.Point       // scratch member-point views for hull rebuilds
	hullScratch convexhull.Scratch // reusable sort/chain buffers for hull rebuilds
}

// drawKey returns the JOIN-ANY draw key of stored point pi: its live
// rank.
func (st *sgbAllState) drawKey(pi int) int {
	if st.rank != nil {
		return int(st.rank[pi])
	}
	return pi
}

// eliminatePoint records m as dropped by ELIMINATE (and its event key,
// when the parallel pipeline is tracing).
func (st *sgbAllState) eliminatePoint(m int) {
	st.eliminated = append(st.eliminated, m)
	if st.trace != nil {
		st.trace.elimKeys = append(st.trace.elimKeys, st.trace.eventKey())
	}
}

// deferPoint records m as deferred into the FORM-NEW-GROUP set S′ (and
// its event key, when the parallel pipeline is tracing).
func (st *sgbAllState) deferPoint(m int) {
	st.deferred = append(st.deferred, m)
	if st.trace != nil {
		st.trace.deferKeys = append(st.trace.deferKeys, st.trace.eventKey())
	}
}

// finder abstracts FindCloseGroups over the strategies.
type finder interface {
	// findCloseGroups fills candidates with groups pi may join (the
	// similarity predicate holds against every member) and, when the
	// overlap clause requires it, overlaps with groups where the
	// predicate holds for at least one but not all members. The
	// returned slices are only valid until the next findCloseGroups
	// call (finders reuse them across probes).
	findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group)
	// groupInserted / groupChanged / groupRemoved keep any auxiliary
	// structure (the R-tree or the ε-grid) synchronized with group
	// mutations.
	groupCreated(st *sgbAllState, g *group)
	groupChanged(st *sgbAllState, g *group)
	groupRemoved(st *sgbAllState, g *group)
	// stageReset marks the start of a FORM-NEW-GROUP recursion stage:
	// every existing group is frozen (invisible to candidacy), so any
	// auxiliary structure can be cleared rather than queried and
	// filtered. Groups frozen by a stage are never mutated again.
	stageReset(st *sgbAllState)
}

// rectStride is the flat rect-row width: two rectangles of two corners.
func (st *sgbAllState) rectStride() int { return 4 * st.dims }

// bindRectRow points g's rectangle views at its row of the flat store.
func (st *sgbAllState) bindRectRow(g *group) {
	d := st.dims
	base := g.id * st.rectStride()
	row := st.rects[base : base+4*d : base+4*d]
	g.epsRect.Min = geom.Point(row[0*d : 1*d : 1*d])
	g.epsRect.Max = geom.Point(row[1*d : 2*d : 2*d])
	g.mbr.Min = geom.Point(row[2*d : 3*d : 3*d])
	g.mbr.Max = geom.Point(row[3*d : 4*d : 4*d])
}

// newRectRow appends g's row to the flat store and initializes it for
// the singleton {p}. When the append would move the backing array,
// every live group's views are rebound first — amortized O(1) per
// group over the geometric growth.
func (st *sgbAllState) newRectRow(g *group, p geom.Point) {
	stride := st.rectStride()
	if len(st.rects)+stride > cap(st.rects) {
		newCap := 2 * cap(st.rects)
		if min := 64 * stride; newCap < min {
			newCap = min
		}
		grown := make([]float64, len(st.rects), newCap)
		copy(grown, st.rects)
		st.rects = grown
		for _, og := range st.groups {
			if og != nil {
				st.bindRectRow(og)
			}
		}
	}
	st.rects = st.rects[:len(st.rects)+stride]
	st.bindRectRow(g)
	st.initRectRow(g, p)
}

// initRectRow resets g's rectangles to the singleton {p}: the ε-All
// rectangle is p's ε-box, the member MBR degenerates to p.
func (st *sgbAllState) initRectRow(g *group, p geom.Point) {
	eps := st.opt.Eps
	for i, v := range p {
		g.epsRect.Min[i], g.epsRect.Max[i] = v-eps, v+eps
		g.mbr.Min[i], g.mbr.Max[i] = v, v
	}
}

// poisonRectRow makes every rectangle test fail for a removed group,
// so a stale id can never survive the filter step.
func (st *sgbAllState) poisonRectRow(g *group) {
	g.epsRect.Min[0] = math.Inf(1)
	g.mbr.Min[0] = math.Inf(1)
}

// allocGroup hands out group structs from fixed-size blocks: one
// allocation per groupBlockSize groups instead of one each, and blocks
// never move, so the *group pointers held in st.groups and the finder
// buffers stay valid for the state's lifetime.
func (st *sgbAllState) allocGroup() *group {
	const groupBlockSize = 128
	if n := len(st.groupBlocks); n == 0 || len(st.groupBlocks[n-1]) == cap(st.groupBlocks[n-1]) {
		st.groupBlocks = append(st.groupBlocks, make([]group, 0, groupBlockSize))
	}
	blk := &st.groupBlocks[len(st.groupBlocks)-1]
	*blk = append(*blk, group{})
	return &(*blk)[len(*blk)-1]
}

// newGroupFor creates a fresh singleton group for point pi.
func (st *sgbAllState) newGroupFor(pi int) *group {
	p := st.points.At(pi)
	g := st.allocGroup()
	g.id = len(st.groups)
	g.members = append(g.members, pi)
	st.newRectRow(g, p)
	g.hullDirty = true
	st.groups = append(st.groups, g)
	st.pointGroup[pi] = int32(g.id)
	if st.trace != nil {
		st.trace.noteGroup()
	}
	st.opt.Stats.addCreated(1)
	st.finder.groupCreated(st, g)
	return g
}

// insert adds pi to g and maintains the ε-All rectangle invariant:
// the rectangle shrinks to the intersection with pi's ε-box
// (Figures 5c–5e) in place — no allocation on the per-point hot path.
// Maintenance is O(1) per insert, as the paper notes.
func (st *sgbAllState) insert(pi int, g *group) {
	p := st.points.At(pi)
	g.members = append(g.members, pi)
	st.pointGroup[pi] = int32(g.id)
	g.epsRect.ShrinkToEpsBox(p, st.opt.Eps)
	g.mbr.ExtendPoint(p)
	// The cached convex hull stays valid when the new member lies
	// inside it — the common case in dense groups, and the reason the
	// hull refinement's amortized cost stays near the paper's
	// O(log log k) per test instead of an O(k log k) rebuild per insert.
	if g.hullDirty || g.hull == nil || len(p) != 2 || !g.hull.Contains(p) {
		g.hullDirty = true
	}
	st.finder.groupChanged(st, g)
}

// removeMembers deletes the given input indices from g, rebuilding the
// group's rectangles from the surviving members (removals can only
// grow the ε-All rectangle, so an incremental update is impossible).
// Empty groups are dropped. Used by ELIMINATE and FORM-NEW-GROUP
// overlap processing.
func (st *sgbAllState) removeMembers(g *group, victims map[int]bool) {
	kept := g.members[:0]
	for _, m := range g.members {
		if !victims[m] {
			kept = append(kept, m)
		} else {
			st.pointGroup[m] = -1
		}
	}
	g.members = kept
	if len(g.members) == 0 {
		st.groups[g.id] = nil
		st.poisonRectRow(g)
		st.finder.groupRemoved(st, g)
		return
	}
	st.initRectRow(g, st.points.At(g.members[0]))
	for _, m := range g.members[1:] {
		p := st.points.At(m)
		g.epsRect.ShrinkToEpsBox(p, st.opt.Eps)
		g.mbr.ExtendPoint(p)
	}
	g.hullDirty = true
	st.finder.groupChanged(st, g)
}

// hullOf returns the cached convex hull of g, rebuilding it if stale.
// Only meaningful in two dimensions.
func (st *sgbAllState) hullOf(g *group) *convexhull.Hull {
	if g.hullDirty || g.hull == nil {
		pts := st.hullPts[:0]
		for _, m := range g.members {
			pts = append(pts, st.points.At(m))
		}
		st.hullPts = pts
		if g.hull == nil {
			g.hull = &convexhull.Hull{}
		}
		// Rebuild in place: the group's vertex storage and the state's
		// sort/chain scratch are both reused, so large-group rebuilds
		// stop allocating once the buffers have grown.
		st.hullScratch.ComputeInto(g.hull, pts)
		g.hullDirty = false
	}
	return g.hull
}

// classifyGroup runs the Procedure 4–6 verification sequence for one
// group surfaced by a finder's filter step: the PointInRectangleTest
// against the ε-All rectangle plus exact refinement decides candidacy;
// otherwise the OverlapRectangleTest against the member MBR plus a
// member scan decides overlap. It appends gj to cands or ovs and
// returns both. Shared by every bounds-based finder (Bounds-Checking,
// R-tree, ε-grid) so the strategies cannot drift apart.
func (st *sgbAllState) classifyGroup(pi int, gj *group, p geom.Point, pBox *geom.Rect, needOverlap bool, cands, ovs []*group) ([]*group, []*group) {
	st.opt.Stats.addRect(1)
	if gj.epsRect.Contains(p) && st.refine(pi, gj) {
		return append(cands, gj), ovs
	}
	if !needOverlap {
		return cands, ovs
	}
	st.opt.Stats.addRect(1)
	if pBox.Intersects(gj.mbr) && st.overlapsWith(pi, gj) {
		ovs = append(ovs, gj)
	}
	return cands, ovs
}

// isCandidate reports whether pi may join g: the similarity predicate
// must hold against every member. The strategy-independent exact check;
// bounds-based strategies call it only for refinement.
func (st *sgbAllState) isCandidate(pi int, g *group) bool {
	p := st.points.At(pi)
	metric, eps := st.opt.Metric, st.opt.Eps
	for _, m := range g.members {
		st.opt.Stats.addDist(1)
		if !metric.Within(p, st.points.At(m), eps) {
			return false
		}
	}
	return true
}

// overlapsWith reports whether pi is within ε of at least one member of
// g (the OverlapGroups membership criterion, given pi is not a
// candidate).
func (st *sgbAllState) overlapsWith(pi int, g *group) bool {
	p := st.points.At(pi)
	metric, eps := st.opt.Metric, st.opt.Eps
	for _, m := range g.members {
		st.opt.Stats.addDist(1)
		if metric.Within(p, st.points.At(m), eps) {
			return true
		}
	}
	return false
}
