package core

// allPairsFinder is the naive FindCloseGroups of Procedure 2: it
// evaluates the distance-to-all similarity predicate between pi and
// every previously processed point. With n input points this incurs
// C(n,2) distance computations, the O(n²) baseline of Table 1.
type allPairsFinder struct{}

func (f *allPairsFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points[pi]
	for _, gj := range st.groups[st.stageFloor:] {
		if gj == nil {
			continue
		}
		candidateFlag := true
		overlapFlag := false
		for _, m := range gj.members {
			st.opt.Stats.addDist(1)
			if st.opt.Metric.Within(p, st.points[m], st.opt.Eps) {
				overlapFlag = true
			} else {
				candidateFlag = false
				if st.opt.Overlap == JoinAny {
					// JOIN-ANY never consults OverlapGroups, so the
					// scan can stop at the first failing member.
					break
				}
			}
		}
		if candidateFlag {
			candidates = append(candidates, gj)
		} else if st.opt.Overlap != JoinAny && overlapFlag {
			overlaps = append(overlaps, gj)
		}
	}
	return candidates, overlaps
}

func (f *allPairsFinder) groupCreated(*sgbAllState, *group) {}
func (f *allPairsFinder) groupChanged(*sgbAllState, *group) {}
func (f *allPairsFinder) groupRemoved(*sgbAllState, *group) {}
func (f *allPairsFinder) stageReset(*sgbAllState)           {}
