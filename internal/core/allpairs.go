package core

// allPairsFinder is the naive FindCloseGroups of Procedure 2: it
// evaluates the distance-to-all similarity predicate between pi and
// every previously processed point. With n input points this incurs
// C(n,2) distance computations, the O(n²) baseline of Table 1.
type allPairsFinder struct {
	cands, ovs []*group // result buffers, reused across probes
}

func (f *allPairsFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points.At(pi)
	f.cands, f.ovs = f.cands[:0], f.ovs[:0]
	metric, eps := st.opt.Metric, st.opt.Eps
	for _, gj := range st.groups[st.stageFloor:] {
		if gj == nil {
			continue
		}
		candidateFlag := true
		overlapFlag := false
		for _, m := range gj.members {
			st.opt.Stats.addDist(1)
			if metric.Within(p, st.points.At(m), eps) {
				overlapFlag = true
			} else {
				candidateFlag = false
				if st.opt.Overlap == JoinAny {
					// JOIN-ANY never consults OverlapGroups, so the
					// scan can stop at the first failing member.
					break
				}
			}
		}
		if candidateFlag {
			f.cands = append(f.cands, gj)
		} else if st.opt.Overlap != JoinAny && overlapFlag {
			f.ovs = append(f.ovs, gj)
		}
	}
	return f.cands, f.ovs
}

func (f *allPairsFinder) groupCreated(*sgbAllState, *group) {}
func (f *allPairsFinder) groupChanged(*sgbAllState, *group) {}
func (f *allPairsFinder) groupRemoved(*sgbAllState, *group) {}
func (f *allPairsFinder) stageReset(*sgbAllState)           {}
