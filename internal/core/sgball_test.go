package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/sgb-db/sgb/internal/geom"
)

var allAlgorithms = []Algorithm{AllPairs, BoundsCheck, OnTheFlyIndex, GridIndex}
var allOverlaps = []Overlap{JoinAny, Eliminate, FormNewGroup}
var allMetrics = []geom.Metric{geom.L2, geom.LInf}

func sortedSizes(r *Result) []int {
	s := r.Sizes()
	sort.Ints(s)
	return s
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// figure2Points reconstructs the running example of Figure 2 /
// Examples 1–2: after processing a1..a4 the groups are g1{a1,a2} and
// g2{a3,a4}; a5 is within ε=3 (L∞) of every member of both groups.
func figure2Points() []geom.Point {
	return []geom.Point{
		{2, 5}, // a1
		{3, 6}, // a2
		{7, 5}, // a3
		{8, 6}, // a4
		{5, 4}, // a5: within 3 of a1..a4 under L∞
	}
}

// TestExample1JoinAny reproduces the paper's Example 1: JOIN-ANY yields
// groups of sizes {3,2} (a5 joins either group).
func TestExample1JoinAny(t *testing.T) {
	for _, alg := range allAlgorithms {
		res, err := SGBAll(figure2Points(), Options{
			Metric: geom.LInf, Eps: 3, Overlap: JoinAny, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := sortedSizes(res)
		if !equalIntSlices(got, []int{2, 3}) {
			t.Errorf("%v: JOIN-ANY sizes = %v, want {2,3}", alg, got)
		}
		if len(res.Eliminated) != 0 {
			t.Errorf("%v: JOIN-ANY eliminated %v", alg, res.Eliminated)
		}
	}
}

// TestExample1Eliminate: ELIMINATE drops a5, leaving {2,2}.
func TestExample1Eliminate(t *testing.T) {
	for _, alg := range allAlgorithms {
		res, err := SGBAll(figure2Points(), Options{
			Metric: geom.LInf, Eps: 3, Overlap: Eliminate, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := sortedSizes(res)
		if !equalIntSlices(got, []int{2, 2}) {
			t.Errorf("%v: ELIMINATE sizes = %v, want {2,2}", alg, got)
		}
		if !equalIntSlices(res.Eliminated, []int{4}) {
			t.Errorf("%v: eliminated = %v, want [4]", alg, res.Eliminated)
		}
	}
}

// TestExample1FormNewGroup: FORM-NEW-GROUP creates g3{a5}: {2,2,1}.
// Critically, a5 does NOT rejoin g1 or g2 during the recursive pass.
func TestExample1FormNewGroup(t *testing.T) {
	for _, alg := range allAlgorithms {
		res, err := SGBAll(figure2Points(), Options{
			Metric: geom.LInf, Eps: 3, Overlap: FormNewGroup, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := sortedSizes(res)
		if !equalIntSlices(got, []int{1, 2, 2}) {
			t.Errorf("%v: FORM-NEW-GROUP sizes = %v, want {1,2,2}", alg, got)
		}
	}
}

// figure4Points reconstructs Figure 4: at x's arrival the groups are
// g1{a1,a2,a3}, g2{b1,b2}, g3{c1,c2,c3}, g4{d1,d2}; with ε=4 (L∞),
// CandidateGroups(x) = {g2,g3} and OverlapGroups(x) = {g1} (only a3 is
// within ε of x).
func figure4Points() []geom.Point {
	return []geom.Point{
		{3, 11},  // a1
		{5, 11},  // a2
		{6, 9},   // a3 (within 4 of x)
		{8, 2},   // b1
		{9, 3},   // b2
		{12, 9},  // c1
		{13, 10}, // c2
		{14, 9},  // c3
		{20, 20}, // d1
		{21, 21}, // d2
		{10, 6},  // x
	}
}

func TestFigure4Eliminate(t *testing.T) {
	for _, alg := range allAlgorithms {
		res, err := SGBAll(figure4Points(), Options{
			Metric: geom.LInf, Eps: 4, Overlap: Eliminate, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// x dropped (two candidates), a3 deleted from g1 (overlap victim).
		got := sortedSizes(res)
		if !equalIntSlices(got, []int{2, 2, 2, 3}) {
			t.Errorf("%v: sizes = %v, want {2,2,2,3}", alg, got)
		}
		wantElim := []int{10, 2} // x first (ProcessEliminate), then a3 (ProcessOverlap)
		if !equalIntSlices(res.Eliminated, wantElim) {
			t.Errorf("%v: eliminated = %v, want %v", alg, res.Eliminated, wantElim)
		}
	}
}

func TestFigure4FormNewGroup(t *testing.T) {
	for _, alg := range allAlgorithms {
		res, err := SGBAll(figure4Points(), Options{
			Metric: geom.LInf, Eps: 4, Overlap: FormNewGroup, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// x and a3 move to S′ and form a new group together
		// (L∞(x, a3) = 4 ≤ ε).
		got := sortedSizes(res)
		if !equalIntSlices(got, []int{2, 2, 2, 2, 3}) {
			t.Errorf("%v: sizes = %v, want {2,2,2,2,3}", alg, got)
		}
		// The new group must contain exactly {a3, x}.
		found := false
		for _, g := range res.Groups {
			ms := append([]int(nil), g.Members...)
			sort.Ints(ms)
			if equalIntSlices(ms, []int{2, 10}) {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: no group {a3,x} in %v", alg, res.Groups)
		}
	}
}

func TestFigure4JoinAny(t *testing.T) {
	for _, alg := range allAlgorithms {
		res, err := SGBAll(figure4Points(), Options{
			Metric: geom.LInf, Eps: 4, Overlap: JoinAny, Algorithm: alg, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// x joins g2 or g3; g1 keeps a3. Total points = 11, 4 groups.
		if res.NumGroups() != 4 {
			t.Errorf("%v: %d groups, want 4", alg, res.NumGroups())
		}
		total := 0
		for _, g := range res.Groups {
			total += len(g.Members)
		}
		if total != 11 {
			t.Errorf("%v: %d members, want 11", alg, total)
		}
	}
}

// TestL2FalsePositiveRejected: the classic Figure 7b case — a point
// inside the ε-All rectangle but outside the ε-circle must not join
// under L2, while it does join under L∞.
func TestL2FalsePositiveRejected(t *testing.T) {
	points := []geom.Point{{0, 0}, {1.9, 1.9}}
	for _, alg := range allAlgorithms {
		res, err := SGBAll(points, Options{Metric: geom.L2, Eps: 2, Overlap: JoinAny, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.NumGroups() != 2 {
			t.Errorf("%v: L2 grouped a false positive: %v", alg, res.Groups)
		}
		res, err = SGBAll(points, Options{Metric: geom.LInf, Eps: 2, Overlap: JoinAny, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.NumGroups() != 1 {
			t.Errorf("%v: LInf should group the pair: %v", alg, res.Groups)
		}
	}
}

// TestHullRefinementDeepGroup exercises the convex-hull test on groups
// large enough to have interior (non-hull) members.
func TestHullRefinementDeepGroup(t *testing.T) {
	// Dense cluster of 30 points in a 0.5-radius disc, then probes.
	r := rand.New(rand.NewSource(3))
	var points []geom.Point
	for i := 0; i < 30; i++ {
		points = append(points, geom.Point{r.Float64() * 0.5, r.Float64() * 0.5})
	}
	points = append(points, geom.Point{0.25, 0.25}) // interior: must join
	points = append(points, geom.Point{1.4, 1.4})   // outside ε of far corner under L2
	for _, alg := range allAlgorithms {
		res, err := SGBAll(points, Options{Metric: geom.L2, Eps: 1.0, Overlap: JoinAny, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := CheckCliques(points, geom.L2, 1.0, res); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
	}
}

func randomPoints(r *rand.Rand, n, d int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64() * span
		}
		pts[i] = p
	}
	return pts
}

// clusteredPoints emulates the spatial skew of check-in data: points
// drawn around k hot-spots.
func clusteredPoints(r *rand.Rand, n, k int, span, sigma float64) []geom.Point {
	centers := randomPoints(r, k, 2, span)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[r.Intn(k)]
		pts[i] = geom.Point{c[0] + r.NormFloat64()*sigma, c[1] + r.NormFloat64()*sigma}
	}
	return pts
}

// TestAlgorithmsAgree is the central cross-validation property: for any
// input, metric, and overlap clause, the three strategies produce the
// identical grouping (the optimizations are exact filters, and JOIN-ANY
// arbitration is normalized to group-creation order).
func TestAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		var points []geom.Point
		if trial%2 == 0 {
			points = randomPoints(r, 30+r.Intn(120), 2, 10)
		} else {
			points = clusteredPoints(r, 30+r.Intn(120), 4, 10, 0.4)
		}
		eps := 0.2 + r.Float64()*1.5
		for _, m := range allMetrics {
			for _, ov := range allOverlaps {
				var ref *Result
				for _, alg := range allAlgorithms {
					res, err := SGBAll(points, Options{
						Metric: m, Eps: eps, Overlap: ov, Algorithm: alg, Seed: int64(trial),
					})
					if err != nil {
						t.Fatalf("trial %d %v/%v/%v: %v", trial, m, ov, alg, err)
					}
					if err := CheckCliques(points, m, eps, res); err != nil {
						t.Fatalf("trial %d %v/%v/%v: invalid grouping: %v",
							trial, m, ov, alg, err)
					}
					if ref == nil {
						ref = res
						continue
					}
					if !SameGrouping(ref.Groups, res.Groups) {
						t.Fatalf("trial %d %v/%v: %v grouping differs from AllPairs\nref=%v\ngot=%v",
							trial, m, ov, alg, ref.Groups, res.Groups)
					}
					if !equalIntSlices(ref.Eliminated, res.Eliminated) {
						t.Fatalf("trial %d %v/%v: %v eliminated %v != ref %v",
							trial, m, ov, alg, res.Eliminated, ref.Eliminated)
					}
				}
			}
		}
	}
}

// TestJoinAnyIsPartition: under JOIN-ANY every input point lands in
// exactly one group.
func TestJoinAnyIsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	points := clusteredPoints(r, 400, 6, 20, 0.5)
	for _, alg := range allAlgorithms {
		res, err := SGBAll(points, Options{Metric: geom.L2, Eps: 1, Overlap: JoinAny, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, g := range res.Groups {
			total += len(g.Members)
		}
		if total != len(points) {
			t.Errorf("%v: partition covers %d of %d", alg, total, len(points))
		}
		if len(res.Eliminated) != 0 {
			t.Errorf("%v: JOIN-ANY eliminated points", alg)
		}
	}
}

// TestSeedReproducibility: identical seeds give identical groupings;
// different seeds may differ (JOIN-ANY arbitration) but remain valid.
func TestSeedReproducibility(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	points := clusteredPoints(r, 300, 5, 10, 0.6)
	opt := Options{Metric: geom.LInf, Eps: 0.8, Overlap: JoinAny, Algorithm: OnTheFlyIndex, Seed: 42}
	a, err := SGBAll(points, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SGBAll(points, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !SameGrouping(a.Groups, b.Groups) {
		t.Fatal("same seed produced different groupings")
	}
}

// TestSingletonAndEmptyInputs covers the trivial boundaries.
func TestSingletonAndEmptyInputs(t *testing.T) {
	for _, alg := range allAlgorithms {
		res, err := SGBAll(nil, Options{Metric: geom.L2, Eps: 1, Algorithm: alg})
		if err != nil || res.NumGroups() != 0 {
			t.Fatalf("%v: empty input: %v %v", alg, res, err)
		}
		res, err = SGBAll([]geom.Point{{1, 2}}, Options{Metric: geom.L2, Eps: 1, Algorithm: alg})
		if err != nil || res.NumGroups() != 1 || len(res.Groups[0].Members) != 1 {
			t.Fatalf("%v: single input: %v %v", alg, res, err)
		}
	}
}

func TestIdenticalPointsFormOneGroup(t *testing.T) {
	pts := []geom.Point{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	for _, alg := range allAlgorithms {
		for _, ov := range allOverlaps {
			res, err := SGBAll(pts, Options{Metric: geom.L2, Eps: 0.5, Overlap: ov, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if res.NumGroups() != 1 || len(res.Groups[0].Members) != 4 {
				t.Errorf("%v/%v: %v", alg, ov, res.Groups)
			}
		}
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := SGBAll([]geom.Point{{1}}, Options{Metric: geom.L2, Eps: 0}); err == nil {
		t.Error("accepted ε=0")
	}
	if _, err := SGBAll([]geom.Point{{1}}, Options{Metric: geom.L2, Eps: math.NaN(), Algorithm: GridIndex}); err == nil {
		t.Error("accepted ε=NaN")
	}
	if _, err := SGBAll([]geom.Point{{1}}, Options{Metric: geom.L2, Eps: math.Inf(1), Algorithm: GridIndex}); err == nil {
		t.Error("accepted ε=+Inf")
	}
	if _, err := SGBAll([]geom.Point{{1}}, Options{Metric: geom.Metric(9), Eps: 1}); err == nil {
		t.Error("accepted bad metric")
	}
	if _, err := SGBAll([]geom.Point{{1}}, Options{Metric: geom.L2, Eps: 1, Overlap: Overlap(9)}); err == nil {
		t.Error("accepted bad overlap")
	}
	if _, err := SGBAll([]geom.Point{{1}}, Options{Metric: geom.L2, Eps: 1, Algorithm: Algorithm(9)}); err == nil {
		t.Error("accepted bad algorithm")
	}
	if _, err := SGBAll([]geom.Point{{1, 2}, {1}}, Options{Metric: geom.L2, Eps: 1}); err == nil {
		t.Error("accepted mixed dimensionality")
	}
}

// TestThreeDimensional exercises d=3 (the paper's other target
// dimensionality); the hull refinement falls back to exact scans.
func TestThreeDimensional(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	points := randomPoints(r, 150, 3, 5)
	for _, m := range allMetrics {
		var ref *Result
		for _, alg := range allAlgorithms {
			res, err := SGBAll(points, Options{Metric: m, Eps: 0.8, Overlap: JoinAny, Algorithm: alg, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckCliques(points, m, 0.8, res); err != nil {
				t.Fatalf("%v/%v: %v", m, alg, err)
			}
			if ref == nil {
				ref = res
			} else if !SameGrouping(ref.Groups, res.Groups) {
				t.Fatalf("%v/%v: grouping differs", m, alg)
			}
		}
	}
}

// TestStatsCounters verifies that the operation counters reflect the
// complexity ordering of Table 1: All-Pairs does strictly more distance
// computations than Bounds-Checking, which does at least as many
// rectangle tests as the index probes.
func TestStatsCounters(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	points := clusteredPoints(r, 600, 12, 40, 0.3)
	counts := map[Algorithm]*Stats{}
	for _, alg := range allAlgorithms {
		st := &Stats{}
		if _, err := SGBAll(points, Options{
			Metric: geom.LInf, Eps: 0.5, Overlap: JoinAny, Algorithm: alg, Stats: st,
		}); err != nil {
			t.Fatal(err)
		}
		counts[alg] = st
	}
	if counts[AllPairs].DistanceComputations <= counts[BoundsCheck].DistanceComputations {
		t.Errorf("All-Pairs distances %d should exceed Bounds-Checking %d",
			counts[AllPairs].DistanceComputations, counts[BoundsCheck].DistanceComputations)
	}
	if counts[OnTheFlyIndex].RectTests >= counts[BoundsCheck].RectTests {
		t.Errorf("index rect tests %d should be below linear scan %d",
			counts[OnTheFlyIndex].RectTests, counts[BoundsCheck].RectTests)
	}
	if counts[OnTheFlyIndex].IndexProbes != int64(len(points)) {
		t.Errorf("index probes = %d, want one per point (%d)",
			counts[OnTheFlyIndex].IndexProbes, len(points))
	}
	if counts[BoundsCheck].GroupsCreated != counts[OnTheFlyIndex].GroupsCreated {
		t.Errorf("group counts differ: %d vs %d",
			counts[BoundsCheck].GroupsCreated, counts[OnTheFlyIndex].GroupsCreated)
	}
}

// TestEliminateAccounting: every input index ends up either grouped or
// eliminated, never both (CheckCliques verifies, this adds scale).
func TestEliminateAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	points := clusteredPoints(r, 800, 8, 15, 0.8)
	for _, alg := range allAlgorithms {
		res, err := SGBAll(points, Options{Metric: geom.L2, Eps: 0.9, Overlap: Eliminate, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCliques(points, geom.L2, 0.9, res); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Eliminated) == 0 {
			t.Logf("%v: note: no eliminations in this workload", alg)
		}
	}
}

// TestFormNewGroupRecursionTerminates stresses overlapping clusters
// that force deep S′ recursion.
func TestFormNewGroupRecursionTerminates(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	// A dense line of points with spacing ~ε/2 creates heavy chained
	// overlap, the worst case for FORM-NEW-GROUP.
	var points []geom.Point
	for i := 0; i < 300; i++ {
		points = append(points, geom.Point{float64(i) * 0.45, r.Float64() * 0.1})
	}
	st := &Stats{}
	res, err := SGBAll(points, Options{
		Metric: geom.LInf, Eps: 1, Overlap: FormNewGroup, Algorithm: OnTheFlyIndex, Stats: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCliques(points, geom.LInf, 1, res); err != nil {
		t.Fatal(err)
	}
	if st.RecursionDepth == 0 {
		t.Error("expected nonzero FORM-NEW-GROUP recursion depth")
	}
	t.Logf("recursion depth: %d, groups: %d", st.RecursionDepth, res.NumGroups())
}
