package core

import (
	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/rtree"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// SGBAny evaluates the SGB-Any (DISTANCE-TO-ANY) operator: every output
// group is a maximal connected component of the ε-similarity graph — a
// point belongs to a group if it is within ε of at least one member.
// Overlapping groups merge (Figure 8), so no ON-OVERLAP clause exists
// and opt.Overlap is ignored.
//
// Supported algorithms: AllPairs (naive; evaluates the predicate
// against every processed point) and OnTheFlyIndex (Procedures 7–8: an
// R-tree over the processed points plus a Union-Find over group
// membership). BoundsCheck is rejected: the paper shows ε-rectangle
// bounds degenerate into chain-like regions under distance-to-any
// semantics, and the convex-hull refinement is unsound there (its
// diameter may exceed ε), so no bounds-checking variant exists.
func SGBAny(points []geom.Point, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Algorithm == BoundsCheck {
		return nil, errBoundsCheckAny
	}
	dims, err := checkInput(points)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if len(points) == 0 {
		return res, nil
	}

	uf := unionfind.New(len(points))
	switch opt.Algorithm {
	case AllPairs:
		sgbAnyAllPairs(points, opt, uf)
	case OnTheFlyIndex:
		sgbAnyIndexed(points, dims, opt, uf)
	}
	res.Groups = groupsFromUF(uf, len(points))
	return res, nil
}

var errBoundsCheckAny = errValue("core: SGB-Any has no Bounds-Checking variant (see Section 7.1); use AllPairs or OnTheFlyIndex")

type errValue string

func (e errValue) Error() string { return string(e) }

// sgbAnyAllPairs is the naive baseline: every prior point is tested
// against the incoming point (O(n²) distance computations).
func sgbAnyAllPairs(points []geom.Point, opt Options, uf *unionfind.UF) {
	for i := 1; i < len(points); i++ {
		p := points[i]
		for j := 0; j < i; j++ {
			opt.Stats.addDist(1)
			if opt.Metric.Within(p, points[j], opt.Eps) {
				if uf.Find(i) != uf.Find(j) {
					opt.Stats.addMerge(1)
				}
				uf.Union(i, j)
			}
		}
	}
}

// sgbAnyIndexed is Procedure 7/8: Points_IX maintains the processed
// points; for each incoming point a window query retrieves the points
// whose ε-box intersects (exact under L∞; verified under L2 by
// VerifyPoints), and GetGroups/MergeGroupsInsert collapse the candidate
// groups through the Union-Find forest.
func sgbAnyIndexed(points []geom.Point, dims int, opt Options, uf *unionfind.UF) {
	ix := rtree.New(dims)
	// Point ids are stored pre-boxed so the per-point index insert does
	// not allocate an interface value.
	ids := make([]any, len(points))
	for i := range ids {
		ids[i] = i
	}
	for i, p := range points {
		pBox := geom.EpsBox(p, opt.Eps)
		opt.Stats.addProbe(1)
		ix.Visit(pBox, func(_ geom.Rect, data any) bool {
			j := data.(int)
			if opt.Metric == geom.L2 {
				// VerifyPoints: the ε-box over-approximates the
				// ε-ball under L2, so confirm the true distance.
				opt.Stats.addDist(1)
				if !opt.Metric.Within(p, points[j], opt.Eps) {
					return true
				}
			}
			if uf.Find(i) != uf.Find(j) {
				opt.Stats.addMerge(1)
				uf.Union(i, j)
			}
			return true
		})
		opt.Stats.addUpdate(1)
		ix.Insert(geom.PointRect(p), ids[i])
	}
}

// groupsFromUF extracts the final partition in deterministic order:
// groups sorted by their smallest member index, members ascending.
func groupsFromUF(uf *unionfind.UF, n int) []Group {
	firstSeen := make(map[int]int) // root -> group slot
	var groups []Group
	for i := 0; i < n; i++ {
		r := uf.Find(i)
		slot, ok := firstSeen[r]
		if !ok {
			slot = len(groups)
			firstSeen[r] = slot
			groups = append(groups, Group{})
		}
		groups[slot].Members = append(groups[slot].Members, i)
	}
	return groups
}
