package core

import (
	"fmt"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
	"github.com/sgb-db/sgb/internal/rtree"
	"github.com/sgb-db/sgb/internal/unionfind"
)

// SGBAny evaluates the SGB-Any (DISTANCE-TO-ANY) operator: every output
// group is a maximal connected component of the ε-similarity graph — a
// point belongs to a group if it is within ε of at least one member.
// Overlapping groups merge (Figure 8), so no ON-OVERLAP clause exists
// and opt.Overlap is ignored.
//
// Supported algorithms: AllPairs (naive; evaluates the predicate
// against every processed point), OnTheFlyIndex (Procedures 7–8: an
// R-tree over the processed points plus a Union-Find over group
// membership), and GridIndex (processed points live in their ε-sized
// home cell; neighbors are found by scanning the 3^d adjacent cells).
// BoundsCheck is rejected: the paper shows ε-rectangle bounds
// degenerate into chain-like regions under distance-to-any semantics,
// and the convex-hull refinement is unsound there (its diameter may
// exceed ε), so no bounds-checking variant exists.
func SGBAny(points []geom.Point, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if _, err := checkInput(points); err != nil {
		return nil, err
	}
	return sgbAnySet(geom.FromPoints(points), opt)
}

// SGBAnySet is SGBAny over flat point storage (see SGBAllSet).
func SGBAnySet(ps *geom.PointSet, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return sgbAnySet(ps, opt)
}

func sgbAnySet(ps *geom.PointSet, opt Options) (*Result, error) {
	if opt.Algorithm == BoundsCheck {
		return nil, ErrBoundsCheckAny
	}
	res := &Result{}
	if ps == nil || ps.Len() == 0 {
		return res, nil
	}
	if err := ps.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Morton preprocessing: reorder the input along the Z-curve of its
	// ε-cells so consecutive probes touch neighboring grid cells (the
	// id slabs stay cache-resident). Sound for SGB-Any only — connected
	// components are order-independent — and transparent to callers:
	// output member ids are remapped back to input order. SGB-All never
	// reorders; its arbitration semantics are input-order sensitive.
	perm := mortonPermFor(ps, opt)
	eval := ps
	if perm != nil {
		eval = ps.Gather(perm)
	}

	// Pipeline dispatch: with more than one worker the evaluation runs
	// as partition → shard-local evaluate → Union-Find merge (see
	// parallel.go); otherwise (or when the input spans too few ε-cells
	// to cut) the whole input is one shard evaluated inline.
	uf := unionfind.New(eval.Len())
	if w := opt.workers(eval.Len()); w < 2 || !sgbAnyParallel(eval, opt, uf, w) {
		sgbAnyLocal(eval, opt, uf)
	}
	res.Groups = groupsFromUFPerm(uf, eval.Len(), perm)
	return res, nil
}

// mortonMinPoints is the input size below which Morton preprocessing is
// skipped: the sort + gather cannot pay for itself on a handful of
// points.
const mortonMinPoints = 32

// mortonPermFor decides whether to Z-order an SGB-Any input and returns
// the permutation (nil = evaluate in input order). Only the grid
// strategy profits — its probe locality is exactly cell adjacency — so
// the explicitly named comparison strategies keep their evaluation
// shape.
func mortonPermFor(ps *geom.PointSet, opt Options) []int32 {
	if opt.Algorithm != GridIndex || ps.Len() < mortonMinPoints {
		return nil
	}
	return geom.MortonPerm(ps, opt.Eps)
}

// ErrBoundsCheckAny rejects the one strategy × semantics combination
// that does not exist; exported so callers configuring SGB-Any (the
// incremental handle, the planner) can reject it eagerly with the same
// error.
var ErrBoundsCheckAny error = errValue("core: SGB-Any has no Bounds-Checking variant (see Section 7.1); use AllPairs, OnTheFlyIndex, or GridIndex")

type errValue string

func (e errValue) Error() string { return string(e) }

// anyIndex is the resumable Points_IX state of one SGB-Any evaluation:
// step absorbs point i — it finds i's within-ε neighbors among the
// points absorbed before it, merges their components in uf, and
// registers i for future probes. The batch path (sgbAnyLocal) and the
// incremental evaluator (AnyEvaluator) drive the very same step, so
// appending batches cannot drift from a one-shot run.
//
// The four maintenance methods serve decremental evaluation
// (AnyEvaluator.Remove): neighbors lists a registered point's within-ε
// neighbors (the BFS edges of the localized recluster), remove
// unregisters a deleted point so later probes cannot see it, relink
// re-unions an already-registered survivor with its live within-ε
// neighbors, and add registers a point without probing (the
// storage-compaction rebuild, where components are already known and
// only the index must be rebuilt).
type anyIndex interface {
	step(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF)
	neighbors(ps *geom.PointSet, i int, opt Options, buf []int32) []int32
	remove(ps *geom.PointSet, i int, opt Options)
	relink(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF)
	add(ps *geom.PointSet, i int, opt Options)
}

// newAnyIndex instantiates the Points_IX strategy selected by the
// options (BoundsCheck is rejected earlier; see errBoundsCheckAny).
// sizeHint presizes the grid directory when the input size is known
// up front (0 for incremental evaluators that grow from empty).
func newAnyIndex(dims, sizeHint int, opt Options) anyIndex {
	switch opt.Algorithm {
	case AllPairs:
		return anyAllPairs{}
	case OnTheFlyIndex:
		return &anyRTree{ix: rtree.New(dims)}
	case GridIndex:
		return &anyGrid{tab: grid.NewCap(dims, opt.Eps, sizeHint)}
	default:
		panic("core: unknown SGB-Any algorithm")
	}
}

// anyAllPairs is the naive baseline: every prior point is tested
// against the incoming point (O(n²) distance computations over a full
// run). It keeps no index, so deletion support is a liveness filter:
// the evaluator shares its alive bitmap through the pointer, and step
// skips tombstoned points (one-shot runs leave it nil — every stored
// point is live there).
type anyAllPairs struct{ alive *[]bool }

func (a anyAllPairs) live(j int) bool {
	return a.alive == nil || *a.alive == nil || (*a.alive)[j]
}

func (a anyAllPairs) step(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF) {
	metric, eps := opt.Metric, opt.Eps
	p := ps.At(i)
	for j := 0; j < i; j++ {
		if !a.live(j) {
			continue
		}
		opt.Stats.addDist(1)
		if metric.Within(p, ps.At(j), eps) {
			if uf.Find(i) != uf.Find(j) {
				opt.Stats.addMerge(1)
			}
			uf.Union(i, j)
		}
	}
}

func (a anyAllPairs) neighbors(ps *geom.PointSet, i int, opt Options, buf []int32) []int32 {
	metric, eps := opt.Metric, opt.Eps
	p := ps.At(i)
	for j := 0; j < ps.Len(); j++ {
		if j == i || !a.live(j) {
			continue
		}
		opt.Stats.addDist(1)
		if metric.Within(p, ps.At(j), eps) {
			buf = append(buf, int32(j))
		}
	}
	return buf
}

func (anyAllPairs) remove(*geom.PointSet, int, Options) {} // no index to maintain

func (a anyAllPairs) relink(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF) {
	metric, eps := opt.Metric, opt.Eps
	p := ps.At(i)
	for j := 0; j < ps.Len(); j++ {
		if j == i || !a.live(j) {
			continue
		}
		opt.Stats.addDist(1)
		if metric.Within(p, ps.At(j), eps) {
			if uf.Find(i) != uf.Find(j) {
				opt.Stats.addMerge(1)
			}
			uf.Union(i, j)
		}
	}
}

func (anyAllPairs) add(*geom.PointSet, int, Options) {} // no index to maintain

// anyRTree is Procedure 7/8: Points_IX maintains the processed points
// in an R-tree; for each incoming point a window query retrieves the
// points whose ε-box intersects (exact under L∞; verified under L2 by
// VerifyPoints), and GetGroups/MergeGroupsInsert collapse the candidate
// groups through the Union-Find forest.
type anyRTree struct {
	ix *rtree.Tree
	// ids stores point ids pre-boxed so the per-point index insert does
	// not allocate an interface value; it grows on demand so the
	// incremental evaluator can keep extending it across appends.
	ids  []any
	pBox geom.Rect
}

func (a *anyRTree) step(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF) {
	for len(a.ids) <= i {
		a.ids = append(a.ids, len(a.ids))
	}
	p := ps.At(i)
	geom.EpsBoxInto(&a.pBox, p, opt.Eps)
	opt.Stats.addProbe(1)
	a.ix.Visit(a.pBox, func(_ geom.Rect, data any) bool {
		j := data.(int)
		if opt.Metric == geom.L2 {
			// VerifyPoints: the ε-box over-approximates the
			// ε-ball under L2, so confirm the true distance.
			opt.Stats.addDist(1)
			if !ps.Within(opt.Metric, i, j, opt.Eps) {
				return true
			}
		}
		if uf.Find(i) != uf.Find(j) {
			opt.Stats.addMerge(1)
			uf.Union(i, j)
		}
		return true
	})
	opt.Stats.addUpdate(1)
	a.ix.Insert(geom.PointRect(p), a.ids[i])
}

func (a *anyRTree) neighbors(ps *geom.PointSet, i int, opt Options, buf []int32) []int32 {
	p := ps.At(i)
	geom.EpsBoxInto(&a.pBox, p, opt.Eps)
	opt.Stats.addProbe(1)
	a.ix.Visit(a.pBox, func(_ geom.Rect, data any) bool {
		j := data.(int)
		if j == i {
			return true
		}
		if opt.Metric == geom.L2 {
			opt.Stats.addDist(1)
			if !ps.Within(opt.Metric, i, j, opt.Eps) {
				return true
			}
		}
		buf = append(buf, int32(j))
		return true
	})
	return buf
}

func (a *anyRTree) remove(ps *geom.PointSet, i int, opt Options) {
	opt.Stats.addUpdate(1)
	a.ix.Delete(geom.PointRect(ps.At(i)), i)
}

func (a *anyRTree) relink(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF) {
	p := ps.At(i)
	geom.EpsBoxInto(&a.pBox, p, opt.Eps)
	opt.Stats.addProbe(1)
	a.ix.Visit(a.pBox, func(_ geom.Rect, data any) bool {
		j := data.(int)
		if j == i {
			return true
		}
		if opt.Metric == geom.L2 {
			opt.Stats.addDist(1)
			if !ps.Within(opt.Metric, i, j, opt.Eps) {
				return true
			}
		}
		if uf.Find(i) != uf.Find(j) {
			opt.Stats.addMerge(1)
			uf.Union(i, j)
		}
		return true
	})
}

func (a *anyRTree) add(ps *geom.PointSet, i int, opt Options) {
	for len(a.ids) <= i {
		a.ids = append(a.ids, len(a.ids))
	}
	opt.Stats.addUpdate(1)
	a.ix.Insert(geom.PointRect(ps.At(i)), a.ids[i])
}

// anyGrid is the ε-grid Points_IX: each processed point is registered
// in its home cell, and the neighbors of an incoming point are found by
// scanning the 3^d cells its ε-box covers. The cell neighborhood
// over-approximates the ε-ball under both metrics, so every hit is
// verified by an exact distance test. Union-Find merging is
// order-independent, so the resulting components are identical to the
// other strategies — and, unlike the SGB-All finder, the probe needs no
// sort or dedup: each point lives in exactly one cell, and merge order
// cannot influence the components.
type anyGrid struct {
	tab *grid.Table
	cur grid.Cursor
	buf []int32
}

func (a *anyGrid) step(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF) {
	metric, eps := opt.Metric, opt.Eps
	p := ps.At(i)
	opt.Stats.addProbe(1)
	a.buf = a.tab.CollectBox(&a.cur, p, eps, a.buf[:0])
	for _, j32 := range a.buf {
		j := int(j32)
		opt.Stats.addDist(1)
		if !metric.Within(p, ps.At(j), eps) {
			continue
		}
		if uf.Find(i) != uf.Find(j) {
			opt.Stats.addMerge(1)
			uf.Union(i, j)
		}
	}
	opt.Stats.addUpdate(1)
	a.tab.AddPoint(p, int32(i))
}

func (a *anyGrid) neighbors(ps *geom.PointSet, i int, opt Options, buf []int32) []int32 {
	metric, eps := opt.Metric, opt.Eps
	p := ps.At(i)
	opt.Stats.addProbe(1)
	a.buf = a.tab.CollectBox(&a.cur, p, eps, a.buf[:0])
	for _, j32 := range a.buf {
		j := int(j32)
		if j == i {
			continue
		}
		opt.Stats.addDist(1)
		if metric.Within(p, ps.At(j), eps) {
			buf = append(buf, j32)
		}
	}
	return buf
}

func (a *anyGrid) remove(ps *geom.PointSet, i int, opt Options) {
	opt.Stats.addUpdate(1)
	a.tab.RemovePoint(ps.At(i), int32(i))
}

func (a *anyGrid) relink(ps *geom.PointSet, i int, opt Options, uf *unionfind.UF) {
	metric, eps := opt.Metric, opt.Eps
	p := ps.At(i)
	opt.Stats.addProbe(1)
	a.buf = a.tab.CollectBox(&a.cur, p, eps, a.buf[:0])
	for _, j32 := range a.buf {
		j := int(j32)
		if j == i {
			continue
		}
		opt.Stats.addDist(1)
		if !metric.Within(p, ps.At(j), eps) {
			continue
		}
		if uf.Find(i) != uf.Find(j) {
			opt.Stats.addMerge(1)
			uf.Union(i, j)
		}
	}
}

func (a *anyGrid) add(ps *geom.PointSet, i int, opt Options) {
	opt.Stats.addUpdate(1)
	a.tab.AddPoint(ps.At(i), int32(i))
}

// groupsFromUF extracts the final partition in deterministic order:
// groups sorted by their smallest member index, members ascending.
// Roots map to group slots through a flat array rather than a map —
// the extraction runs once per Result on the incremental paths, and
// the array form cuts its constant by an order of magnitude at the
// window benchmark's sizes.
func groupsFromUF(uf *unionfind.UF, n int) []Group {
	slot := newSlots(n)
	var groups []Group
	for i := 0; i < n; i++ {
		r := uf.Find(i)
		s := slot[r]
		if s < 0 {
			s = int32(len(groups))
			slot[r] = s
			groups = append(groups, Group{})
		}
		groups[s].Members = append(groups[s].Members, i)
	}
	return groups
}

// newSlots returns a root → group-slot array of -1 sentinels.
func newSlots(n int) []int32 {
	slot := make([]int32, n)
	for i := range slot {
		slot[i] = -1
	}
	return slot
}

// groupsFromUFPerm is groupsFromUF over a Morton-permuted evaluation:
// uf holds components over permuted positions (perm[pos] = original
// input index), and the output must be indistinguishable from an
// unpermuted run — groups ordered by smallest original member, members
// ascending in original input order. Iterating original indices and
// resolving each through the inverse permutation produces exactly that.
func groupsFromUFPerm(uf *unionfind.UF, n int, perm []int32) []Group {
	if perm == nil {
		return groupsFromUF(uf, n)
	}
	inv := make([]int32, n)
	for pos, orig := range perm {
		inv[orig] = int32(pos)
	}
	return groupsFromUFLive(uf, inv)
}

// groupsFromUFLive extracts the partition of the listed stored
// positions, reporting each point by its index in live (live[id] =
// stored position of the point with output id). Both the
// Morton-permuted one-shot path (live = inverse permutation over every
// point) and the decremental evaluator (live = surviving positions in
// arrival order) reduce to this: groups ordered by smallest output id,
// members ascending.
func groupsFromUFLive(uf *unionfind.UF, live []int32) []Group {
	slot := newSlots(uf.Len())
	var groups []Group
	for o, pos := range live {
		r := uf.Find(int(pos))
		s := slot[r]
		if s < 0 {
			s = int32(len(groups))
			slot[r] = s
			groups = append(groups, Group{})
		}
		groups[s].Members = append(groups[s].Members, o)
	}
	return groups
}
