// Package core implements the paper's primary contribution: the
// similarity group-by operators SGB-All (DISTANCE-TO-ALL) and SGB-Any
// (DISTANCE-TO-ANY) over multi-dimensional data, with the three
// ON-OVERLAP semantics (JOIN-ANY, ELIMINATE, FORM-NEW-GROUP) and the
// three evaluation strategies evaluated in the paper:
//
//   - AllPairs        — the naive baseline (Procedure 2),
//   - BoundsCheck     — ε-All bounding rectangles (Procedure 4),
//   - OnTheFlyIndex   — R-tree-indexed bounding rectangles (Procedure 5)
//     and, for SGB-Any, an R-tree over points plus a
//     Union-Find over group membership (Procedure 8),
//
// plus a fourth strategy beyond the paper:
//
//   - GridIndex       — a uniform hash grid with ε-sized cells
//     (internal/grid, a flat open-addressed table with slab-pooled id
//     lists — no dimensionality cap) in place of the R-tree; the
//     textbook structure for fixed-radius queries. SGB-Any inputs are
//     additionally Morton (Z-order) preordered for probe locality;
//     output ids are remapped so results always index the input order.
//
// # Evaluation shapes
//
// Each operator runs in one of three shapes, all producing identical
// groupings for equal seeds:
//
//   - One-shot sequential (SGBAll / SGBAny and their *Set variants):
//     points are processed in arrival order against the strategy
//     selected by Options.Algorithm.
//   - Parallel pipeline (Options.Parallelism > 1; parallel.go):
//     partition → shard-local evaluate → merge for SGB-Any, and
//     worker-precomputed ε-adjacency feeding the sequential
//     arbitration loop for SGB-All (adjfinder.go).
//   - Resumable / incremental (AllEvaluator, AnyEvaluator; resume.go):
//     retained evaluation state that Append extends batch by batch,
//     sharing the exact per-point step with the one-shot path so an
//     incremental run over batches equals a one-shot run over their
//     concatenation. internal/incr wraps these in the public handle.
//
// # Invariants
//
//   - SGB-All output groups are cliques of the ε-similarity graph;
//     SGB-Any output groups are its maximal connected components
//     (checked by CheckCliques / CheckComponents in validate.go).
//   - Every strategy enumerates candidate groups in group-creation
//     order, so the JOIN-ANY arbitration consumes identical PRNG draws
//     regardless of strategy, worker count, or batching — groupings
//     are bit-identical for equal seeds.
//   - Each group's ε-All bounding rectangle (Definition 5) is the
//     intersection of its members' ε-boxes: a point inside it is
//     within ε of every member under L∞, and a candidate under L2
//     pending the Convex Hull Test (Procedure 6, hulltest.go).
//
// The operators are deliberately order-sensitive: like the paper's
// PostgreSQL executor they process tuples in arrival order, and the
// JOIN-ANY arbitration picks a pseudo-random candidate group (seedable
// through Options.Seed for reproducibility). Only SGB-Any's components
// are order-independent — the property (from the companion paper on
// order-independent SGB semantics, see PAPERS.md) that makes both the
// sharded parallel merge and incremental appends exact.
package core
