package core

import (
	"fmt"

	"github.com/sgb-db/sgb/internal/geom"
)

// SGBAll evaluates the SGB-All (DISTANCE-TO-ALL) operator over points:
// every output group is a clique of the ε-similarity graph, and points
// qualifying for multiple groups are arbitrated by opt.Overlap.
// Members are reported as indices into points. This is Procedure 1 of
// the paper with the strategy selected by opt.Algorithm.
func SGBAll(points []geom.Point, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if _, err := checkInput(points); err != nil {
		return nil, err
	}
	return sgbAllSet(geom.FromPoints(points), opt)
}

// SGBAllSet is SGBAll over flat point storage; exec builds the
// PointSet directly from the tuple store, and FromPoints adapts
// []Point callers (zero-copy when the points already view one flat
// buffer).
func SGBAllSet(ps *geom.PointSet, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return sgbAllSet(ps, opt)
}

func sgbAllSet(ps *geom.PointSet, opt Options) (*Result, error) {
	res := &Result{}
	if ps == nil || ps.Len() == 0 {
		return res, nil
	}
	if err := ps.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Pipeline dispatch: with more than one worker, whole ε-connected
	// components arbitrate concurrently on worker-private states and
	// their outputs merge back into the sequential processing order —
	// bit-identical groups for every ON-OVERLAP semantics (see
	// parallelall.go). The parallel path declines degenerate inputs
	// (everything in one ε-tile), which then run sequentially below.
	if w := opt.workers(ps.Len()); w > 1 {
		if r, ok := sgbAllParallel(ps, opt, w); ok {
			return r, nil
		}
	}

	st := &sgbAllState{
		points:     ps,
		opt:        opt,
		dims:       ps.Dims(),
		rand:       newRNG(opt.Seed),
		pointGroup: make([]int32, ps.Len()),
	}
	for i := range st.pointGroup {
		st.pointGroup[i] = -1
	}
	st.finder = newFinder(st)

	order := make([]int, ps.Len())
	for i := range order {
		order[i] = i
	}
	st.run(order, nil, 0)
	return materializeAll(st, false), nil
}

// run executes one SGB-All pass over the given input order. Under
// FORM-NEW-GROUP semantics the overlapping points deferred into S′ are
// grouped by a recursive pass that only considers groups formed at its
// own recursion stage ("form new groups out of the points in Oset"),
// exactly as Example 1 creates the singleton group g3{a5}.
// keys, when tracing, carries the occurrence key of each order entry
// (nil at depth 0, where a point's key is just itself).
func (st *sgbAllState) run(order []int, keys [][]int32, depth int) {
	st.opt.Stats.noteDepth(depth)
	// Groups created before this stage are frozen for candidacy: the
	// recursive pass must not re-admit deferred points into the groups
	// that deferred them. The finder respects this via the stage floor.
	stageFloor := len(st.groups)
	if depth == 0 {
		stageFloor = 0
	}
	prevFloor := st.stageFloor
	st.stageFloor = stageFloor
	defer func() { st.stageFloor = prevFloor }()
	if depth > 0 {
		st.finder.stageReset(st)
	}

	st.processPoints(order, keys)

	// FORM-NEW-GROUP: recursively group the deferred set S′ until it is
	// empty. Each stage strictly shrinks S′ (a deferred point implies at
	// least two placed points at its stage), so the recursion terminates.
	if st.opt.Overlap == FormNewGroup && len(st.deferred) > 0 {
		next := st.deferred
		st.deferred = nil
		var nextKeys [][]int32
		if st.trace != nil {
			nextKeys = st.trace.deferKeys
			st.trace.deferKeys = nil
		}
		st.run(next, nextKeys, depth+1)
	}
}

// processPoints runs the main per-point arbitration loop of
// Procedure 1 over the given input order, one processOne per point.
func (st *sgbAllState) processPoints(order []int, keys [][]int32) {
	if st.trace == nil {
		for _, pi := range order {
			st.processOne(pi)
		}
		return
	}
	for oi, pi := range order {
		if keys == nil {
			st.trace.beginStage0(int32(pi))
		} else {
			st.trace.beginOccurrence(keys[oi])
		}
		st.processOne(pi)
	}
}

// processOne arbitrates a single input point: probe for candidate and
// overlap groups, place (or defer / eliminate) the point, then apply
// the overlap clause to the partially matching groups. It is the
// single place points enter the grouping state — run drives it (via
// processPoints) for one-shot evaluation including the FORM-NEW-GROUP
// recursion stages, and the incremental AllEvaluator drives it batch
// by batch, so retained state after k points is identical either way.
func (st *sgbAllState) processOne(pi int) {
	candidates, overlaps := st.finder.findCloseGroups(st, pi)
	st.processGroupingAll(pi, candidates)
	if st.opt.Overlap != JoinAny && len(overlaps) > 0 {
		st.processOverlap(pi, overlaps)
	}
}

// processGroupingAll is Procedure 3: place pi into a new group, an
// existing group, or arbitrate via the ON-OVERLAP clause.
func (st *sgbAllState) processGroupingAll(pi int, candidates []*group) {
	switch len(candidates) {
	case 0:
		st.newGroupFor(pi)
	case 1:
		st.insert(pi, candidates[0])
	default:
		switch st.opt.Overlap {
		case JoinAny:
			st.insert(pi, candidates[st.rand.drawAt(st.drawKey(pi), len(candidates))])
		case Eliminate:
			// ProcessEliminate: drop pi from the output.
			st.eliminatePoint(pi)
		case FormNewGroup:
			// ProcessNewGroup: defer pi into S′ for the recursive pass.
			st.deferPoint(pi)
		}
	}
}

// processOverlap is the final step of Procedure 1: groups in
// OverlapGroups contain some (but not all) members within ε of pi;
// those members are themselves overlap points (they satisfy the
// predicate with pi's group as well as their own). ELIMINATE deletes
// them; FORM-NEW-GROUP moves them into S′.
func (st *sgbAllState) processOverlap(pi int, overlaps []*group) {
	p := st.points.At(pi)
	for _, g := range overlaps {
		victims := make(map[int]bool)
		for _, m := range g.members {
			st.opt.Stats.addDist(1)
			if st.opt.Metric.Within(p, st.points.At(m), st.opt.Eps) {
				victims[m] = true
			}
		}
		if len(victims) == 0 {
			continue
		}
		switch st.opt.Overlap {
		case Eliminate:
			for _, m := range g.members {
				if victims[m] {
					st.eliminatePoint(m)
				}
			}
		case FormNewGroup:
			for _, m := range g.members {
				if victims[m] {
					st.deferPoint(m)
				}
			}
		}
		st.removeMembers(g, victims)
	}
}

// newFinder instantiates the strategy selected by the options.
func newFinder(st *sgbAllState) finder {
	switch st.opt.Algorithm {
	case AllPairs:
		return &allPairsFinder{}
	case BoundsCheck:
		return &boundsFinder{}
	case OnTheFlyIndex:
		return newIndexedFinder(st.dims)
	case GridIndex:
		// Hashed cell keys support any dimensionality, so the grid is
		// the strategy at every d — no R-tree fallback.
		return newGridFinder(st.dims, st.opt.Eps, st.points.Len())
	default:
		panic("core: unknown algorithm")
	}
}
