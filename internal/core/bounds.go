package core

import "github.com/sgb-db/sgb/internal/geom"

// boundsFinder is the Bounds-Checking FindCloseGroups of Procedure 4:
// each group carries its ε-All bounding rectangle (Definition 5), so
// deciding candidacy takes a constant number of comparisons per group
// instead of one per member — O(n·|G|) overall (Table 1).
type boundsFinder struct{}

func (f *boundsFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points[pi]
	var pBox geom.Rect
	needOverlap := st.opt.Overlap != JoinAny
	if needOverlap {
		pBox = geom.EpsBox(p, st.opt.Eps)
	}
	for _, gj := range st.groups[st.stageFloor:] {
		if gj == nil {
			continue
		}
		st.opt.Stats.addRect(1)
		if gj.epsRect.Contains(p) && st.refine(pi, gj) {
			// PointInRectangleTest passed (and, under L2, the
			// convex-hull refinement of Procedure 6).
			candidates = append(candidates, gj)
			continue
		}
		if !needOverlap {
			continue
		}
		// OverlapRectangleTest: pi can only be within ε of a member if
		// its ε-box intersects the group's member MBR; on a hit the
		// members are inspected to verify the overlap is nonempty.
		st.opt.Stats.addRect(1)
		if pBox.Intersects(gj.mbr) && st.overlapsWith(pi, gj) {
			overlaps = append(overlaps, gj)
		}
	}
	return candidates, overlaps
}

func (f *boundsFinder) groupCreated(*sgbAllState, *group) {}
func (f *boundsFinder) groupChanged(*sgbAllState, *group) {}
func (f *boundsFinder) groupRemoved(*sgbAllState, *group) {}
func (f *boundsFinder) stageReset(*sgbAllState)           {}
