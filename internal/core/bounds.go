package core

import "github.com/sgb-db/sgb/internal/geom"

// boundsFinder is the Bounds-Checking FindCloseGroups of Procedure 4:
// each group carries its ε-All bounding rectangle (Definition 5), so
// deciding candidacy takes a constant number of comparisons per group
// instead of one per member — O(n·|G|) overall (Table 1).
type boundsFinder struct {
	cands, ovs []*group  // result buffers, reused across probes
	pBox       geom.Rect // scratch ε-box of the probe point
}

func (f *boundsFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points.At(pi)
	f.cands, f.ovs = f.cands[:0], f.ovs[:0]
	needOverlap := st.opt.Overlap != JoinAny
	if needOverlap {
		geom.EpsBoxInto(&f.pBox, p, st.opt.Eps)
	}
	for _, gj := range st.groups[st.stageFloor:] {
		if gj == nil {
			continue
		}
		f.cands, f.ovs = st.classifyGroup(pi, gj, p, &f.pBox, needOverlap, f.cands, f.ovs)
	}
	return f.cands, f.ovs
}

func (f *boundsFinder) groupCreated(*sgbAllState, *group) {}
func (f *boundsFinder) groupChanged(*sgbAllState, *group) {}
func (f *boundsFinder) groupRemoved(*sgbAllState, *group) {}
func (f *boundsFinder) stageReset(*sgbAllState)           {}
