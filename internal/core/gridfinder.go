package core

import (
	"slices"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
)

// gridFinder is the GridIndex FindCloseGroups for SGB-All: live groups
// register their ε-All bounding rectangle in every ε-sized cell it
// covers (at most 3^d cells — the rectangle's sides are bounded by 2ε).
//
//   - Candidates: a group whose ε-All rectangle contains pi is
//     necessarily registered in pi's home cell, so the candidate probe
//     is a single directory lookup.
//   - Overlaps: a group overlapping pi's ε-box is registered in one of
//     the cells that box covers (quantization is monotone), so the
//     overlap probe scans the ≤3^d-cell neighborhood.
//
// Collected group ids are deduplicated through an epoch-stamped seen
// array (a group registered in several scanned cells appears once per
// cell) and then sorted into group-creation order before verification:
// SGB-All's arbitration is order-sensitive — JOIN-ANY consumes PRNG
// draws per candidate and ELIMINATE / FORM-NEW-GROUP emit victims in
// enumeration order — so every strategy must enumerate groups
// identically. (The SGB-Any grid probe needs neither pass: Union-Find
// merging is order-independent and each point registers in exactly one
// cell.) Verification reuses the exact PointInRectangle / refine /
// overlap machinery of Procedures 4–6.
type gridFinder struct {
	tab *grid.Table
	cur grid.Cursor

	// Buffers reused across probes.
	ids        []int32
	seen       []uint32 // per-group epoch stamps: probe-local dedup
	epoch      uint32
	cands, ovs []*group
	pBox       geom.Rect

	// Scratch cell range for groupChanged's recompute.
	rngLo, rngHi []int64
}

func newGridFinder(dims int, eps float64, sizeHint int) *gridFinder {
	return &gridFinder{tab: grid.NewCap(dims, eps, sizeHint)}
}

func (f *gridFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points.At(pi)
	st.opt.Stats.addProbe(1)
	needOverlap := st.opt.Overlap != JoinAny
	f.ids = f.ids[:0]
	if needOverlap {
		f.ids = f.tab.CollectBox(&f.cur, p, st.opt.Eps, f.ids)
		geom.EpsBoxInto(&f.pBox, p, st.opt.Eps)
		// Multi-cell scan: drop the once-per-cell repeats before the
		// creation-order sort, so the sort runs over unique ids only.
		if n := len(st.groups); n > len(f.seen) {
			f.seen = append(f.seen, make([]uint32, n-len(f.seen))...)
		}
		f.epoch++
		if f.epoch == 0 { // wrapped: invalidate stale stamps
			clear(f.seen)
			f.epoch = 1
		}
		uniq := f.ids[:0]
		for _, id := range f.ids {
			if f.seen[id] == f.epoch {
				continue
			}
			f.seen[id] = f.epoch
			uniq = append(uniq, id)
		}
		f.ids = uniq
	} else {
		// JOIN-ANY only needs candidate groups, and those must cover
		// pi's home cell; a group registers once per cell, so the
		// single-cell scan is duplicate-free already.
		f.ids = f.tab.CollectPointCell(p, f.ids)
	}
	slices.Sort(f.ids)
	// Filter step over the flat rect-row store: both rectangle tests
	// read rows by id instead of dereferencing group structs, so the
	// loop's memory traffic is the sorted row scan — the group pointer
	// is only chased for ids that survive a rectangle filter and need
	// exact verification (same tests, same Stats counts as
	// classifyGroup).
	d := st.dims
	stride := 4 * d
	rects := st.rects
	floor := st.stageFloor
	f.cands, f.ovs = f.cands[:0], f.ovs[:0]
	for _, id := range f.ids {
		if int(id) < floor {
			continue
		}
		row := rects[int(id)*stride : int(id)*stride+stride]
		st.opt.Stats.addRect(1)
		if rowContains(row, p, d) {
			gj := st.groups[id]
			if gj == nil {
				continue // poisoned rows can't get here; defensive
			}
			if st.refine(pi, gj) {
				f.cands = append(f.cands, gj)
				continue
			}
			if !needOverlap {
				continue
			}
			st.opt.Stats.addRect(1)
			if rowIntersects(row[2*d:], &f.pBox, d) && st.overlapsWith(pi, gj) {
				f.ovs = append(f.ovs, gj)
			}
			continue
		}
		if !needOverlap {
			continue
		}
		st.opt.Stats.addRect(1)
		if rowIntersects(row[2*d:], &f.pBox, d) {
			if gj := st.groups[id]; gj != nil && st.overlapsWith(pi, gj) {
				f.ovs = append(f.ovs, gj)
			}
		}
	}
	return f.cands, f.ovs
}

// rowContains is Rect.Contains over one ε-All row half ([Min | Max]).
func rowContains(row []float64, p geom.Point, d int) bool {
	for i, v := range p {
		if v < row[i] || v > row[d+i] {
			return false
		}
	}
	return true
}

// rowIntersects is Rect.Intersects between the probe ε-box and one MBR
// row half ([Min | Max]).
func rowIntersects(row []float64, b *geom.Rect, d int) bool {
	for i := 0; i < d; i++ {
		if row[i] > b.Max[i] || b.Min[i] > row[d+i] {
			return false
		}
	}
	return true
}

func (f *gridFinder) groupCreated(st *sgbAllState, g *group) {
	g.gridLo, g.gridHi = f.tab.RangeOf(g.epsRect, g.gridLo, g.gridHi)
	g.gridOn = true
	st.opt.Stats.addUpdate(1)
	f.tab.AddRange(g.gridLo, g.gridHi, int32(g.id))
}

// groupChanged re-registers g when its ε-All rectangle no longer
// matches its registered cell range. Like the R-tree finder, the
// registration only has to COVER the true rectangle (probe hits are
// verified exactly), so shrinks are absorbed lazily:
//
//   - a removal can grow the rectangle outside the registered cells —
//     re-register immediately (correctness);
//   - an insert only shrinks it — re-register merely when the stale
//     range covers noticeably more cells than the true one. The
//     initial range is at most 3^d cells and the true range at least
//     one, so a group re-registers O(1) times over its lifetime
//     instead of once per boundary-crossing insert.
func (f *gridFinder) groupChanged(st *sgbAllState, g *group) {
	if !g.gridOn {
		return
	}
	f.rngLo, f.rngHi = f.tab.RangeOf(g.epsRect, f.rngLo, f.rngHi)
	if slices.Equal(f.rngLo, g.gridLo) && slices.Equal(f.rngHi, g.gridHi) {
		return
	}
	if contained, staleN, trueN := rangeWithin(f.rngLo, f.rngHi, g.gridLo, g.gridHi); contained &&
		4*staleN <= 9*trueN { // stale/true ≤ 2.25: still selective enough
		return
	}
	st.opt.Stats.addUpdate(2)
	f.tab.RemoveRange(g.gridLo, g.gridHi, int32(g.id))
	copy(g.gridLo, f.rngLo)
	copy(g.gridHi, f.rngHi)
	f.tab.AddRange(g.gridLo, g.gridHi, int32(g.id))
}

// rangeWithin reports whether cell range [lo,hi] lies inside [oLo,oHi]
// and returns both ranges' cell counts.
func rangeWithin(lo, hi, oLo, oHi []int64) (contained bool, outerN, innerN int64) {
	contained = true
	outerN, innerN = 1, 1
	for i := range lo {
		if lo[i] < oLo[i] || hi[i] > oHi[i] {
			contained = false
		}
		outerN *= oHi[i] - oLo[i] + 1
		innerN *= hi[i] - lo[i] + 1
	}
	return contained, outerN, innerN
}

func (f *gridFinder) groupRemoved(st *sgbAllState, g *group) {
	if !g.gridOn {
		return
	}
	st.opt.Stats.addUpdate(1)
	f.tab.RemoveRange(g.gridLo, g.gridHi, int32(g.id))
	g.gridOn = false
}

// stageReset clears the grid at a FORM-NEW-GROUP recursion stage:
// every existing group is frozen and must stay invisible, so dropping
// all registrations at once beats filtering stale hits per probe.
func (f *gridFinder) stageReset(st *sgbAllState) {
	for _, g := range st.groups {
		if g != nil {
			g.gridOn = false
		}
	}
	f.tab.Reset()
}
