package core

import (
	"slices"

	"github.com/sgb-db/sgb/internal/geom"
	"github.com/sgb-db/sgb/internal/grid"
)

// gridFinder is the GridIndex FindCloseGroups for SGB-All: live groups
// register their ε-All bounding rectangle in every ε-sized cell it
// covers (at most 3^d cells — the rectangle's sides are bounded by 2ε).
//
//   - Candidates: a group whose ε-All rectangle contains pi is
//     necessarily registered in pi's home cell, so the candidate probe
//     is a single map lookup.
//   - Overlaps: a group overlapping pi's ε-box is registered in one of
//     the cells that box covers (quantization is monotone), so the
//     overlap probe scans the ≤3^d-cell neighborhood.
//
// Collected group ids are sorted into group-creation order before
// verification, so JOIN-ANY arbitration is bit-identical to the other
// strategies for a given seed. Verification reuses the exact
// PointInRectangle / refine / overlap machinery of Procedures 4–6.
type gridFinder struct {
	tab *grid.Table

	// Buffers reused across probes.
	ids        []int32
	cands, ovs []*group
	pBox       geom.Rect
}

func newGridFinder(dims int, eps float64) *gridFinder {
	return &gridFinder{tab: grid.New(dims, eps)}
}

func (f *gridFinder) findCloseGroups(st *sgbAllState, pi int) (candidates, overlaps []*group) {
	p := st.points.At(pi)
	st.opt.Stats.addProbe(1)
	needOverlap := st.opt.Overlap != JoinAny
	f.ids = f.ids[:0]
	if needOverlap {
		lo, hi := f.tab.RangeOfBox(p, st.opt.Eps)
		f.ids = f.tab.Collect(lo, hi, f.ids)
		geom.EpsBoxInto(&f.pBox, p, st.opt.Eps)
	} else {
		// JOIN-ANY only needs candidate groups, and those must cover
		// pi's home cell.
		f.ids = f.tab.CollectCell(f.tab.CellOf(p), f.ids)
	}
	// Creation-order normalization doubles as the dedup key: a group
	// registered in several scanned cells appears as a run of equal
	// ids.
	slices.Sort(f.ids)
	f.cands, f.ovs = f.cands[:0], f.ovs[:0]
	prev := int32(-1)
	for _, id := range f.ids {
		if id == prev {
			continue
		}
		prev = id
		gj := st.groups[id]
		if gj == nil || gj.id < st.stageFloor {
			continue
		}
		f.cands, f.ovs = st.classifyGroup(pi, gj, p, &f.pBox, needOverlap, f.cands, f.ovs)
	}
	return f.cands, f.ovs
}

func (f *gridFinder) groupCreated(st *sgbAllState, g *group) {
	g.gridLo, g.gridHi = f.tab.RangeOf(g.epsRect)
	g.gridOn = true
	st.opt.Stats.addUpdate(1)
	f.tab.AddRange(g.gridLo, g.gridHi, int32(g.id))
}

// groupChanged re-registers g when its ε-All rectangle no longer
// matches its registered cell range. Like the R-tree finder, the
// registration only has to COVER the true rectangle (probe hits are
// verified exactly), so shrinks are absorbed lazily:
//
//   - a removal can grow the rectangle outside the registered cells —
//     re-register immediately (correctness);
//   - an insert only shrinks it — re-register merely when the stale
//     range covers noticeably more cells than the true one. The
//     initial range is at most 3^d cells and the true range at least
//     one, so a group re-registers O(1) times over its lifetime
//     instead of once per boundary-crossing insert.
func (f *gridFinder) groupChanged(st *sgbAllState, g *group) {
	if !g.gridOn {
		return
	}
	lo, hi := f.tab.RangeOf(g.epsRect)
	if lo == g.gridLo && hi == g.gridHi {
		return
	}
	if contained, staleN, trueN := rangeWithin(lo, hi, g.gridLo, g.gridHi, f.tab.Dims()); contained &&
		4*staleN <= 9*trueN { // stale/true ≤ 2.25: still selective enough
		return
	}
	st.opt.Stats.addUpdate(2)
	f.tab.RemoveRange(g.gridLo, g.gridHi, int32(g.id))
	g.gridLo, g.gridHi = lo, hi
	f.tab.AddRange(lo, hi, int32(g.id))
}

// rangeWithin reports whether cell range [lo,hi] lies inside [oLo,oHi]
// and returns both ranges' cell counts.
func rangeWithin(lo, hi, oLo, oHi grid.Cell, dims int) (contained bool, outerN, innerN int64) {
	contained = true
	outerN, innerN = 1, 1
	for i := 0; i < dims; i++ {
		if lo[i] < oLo[i] || hi[i] > oHi[i] {
			contained = false
		}
		outerN *= oHi[i] - oLo[i] + 1
		innerN *= hi[i] - lo[i] + 1
	}
	return contained, outerN, innerN
}

func (f *gridFinder) groupRemoved(st *sgbAllState, g *group) {
	if !g.gridOn {
		return
	}
	st.opt.Stats.addUpdate(1)
	f.tab.RemoveRange(g.gridLo, g.gridHi, int32(g.id))
	g.gridOn = false
}

// stageReset clears the grid at a FORM-NEW-GROUP recursion stage:
// every existing group is frozen and must stay invisible, so dropping
// all registrations at once beats filtering stale hits per probe.
func (f *gridFinder) stageReset(st *sgbAllState) {
	for _, g := range st.groups {
		if g != nil {
			g.gridOn = false
		}
	}
	f.tab.Reset()
}
